#include "models/baselines.hpp"

#include <algorithm>

namespace bwshare::models {

std::vector<double> LinearLogGPModel::penalties(
    const graph::CommGraph& graph) const {
  return std::vector<double>(static_cast<size_t>(graph.size()), 1.0);
}

std::vector<double> LinearLogGPModel::predict_times(
    const graph::CommGraph& graph,
    const topo::NetworkCalibration& /*cal*/) const {
  std::vector<double> times;
  times.reserve(static_cast<size_t>(graph.size()));
  for (const auto& c : graph.comms())
    times.push_back(params_.latency + 2.0 * params_.overhead +
                    params_.gap_per_byte * std::max(0.0, c.bytes - 1.0));
  return times;
}

std::vector<double> KimLeeModel::penalties(
    const graph::CommGraph& graph) const {
  std::vector<double> out(static_cast<size_t>(graph.size()), 1.0);
  for (graph::CommId i = 0; i < graph.size(); ++i) {
    if (graph.is_intra_node(i)) continue;
    const int multiplicity =
        std::max(graph.delta_o(i), graph.delta_i(i));
    out[static_cast<size_t>(i)] = std::max(1, multiplicity);
  }
  return out;
}

}  // namespace bwshare::models
