// Myrinet 2000 congestion model (paper §V-B).
//
// Reproduces: Fig. 2 column 2 (measured Myrinet penalties), the Fig. 5/6
// send/wait state enumeration, and feeds the Fig. 9 HPL-on-Myrinet
// prediction. Reference entry: docs/MODELS.md §"Myrinet 2000".
//
// A descriptive model built on the NIC's Stop & Go flow control: at any
// moment each communication is either sending or waiting, and a sending
// communication silences every communication that shares its source node or
// its destination node. The feasible send-sets are the maximal independent
// sets of the conflict graph (see models/mis.hpp).
//
// From the enumeration (paper Fig 5/6):
//   * emission coefficient of c  = number of state sets where c sends;
//   * per source node, every outgoing communication is clamped to the
//     *minimum* emission coefficient among that node's outgoing
//     communications (the NIC shares the card fairly, so everyone moves at
//     the slowest sibling's pace);
//   * penalty(c) = (#state sets) / (clamped emission coefficient).
//
// State-set counts multiply across connected components of the conflict
// graph, and the penalty ratio only depends on the communication's own
// component, so enumeration is done per component.
#pragma once

#include <cstdint>

#include "graph/conflict.hpp"
#include "models/mis.hpp"
#include "models/penalty_model.hpp"

namespace bwshare::models {

struct MyrinetParams {
  /// Conflict rule; the paper's model uses same-source-or-same-destination.
  graph::ConflictRule rule = graph::ConflictRule::kSharedEndpointSameDirection;
  /// Safety valve for pathological graphs.
  size_t max_state_sets = 1u << 20;
};

class MyrinetModel final : public PenaltyModel {
 public:
  explicit MyrinetModel(MyrinetParams params = {});

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::vector<double> penalties(
      const graph::CommGraph& graph) const override;

  /// Full analysis exposed for tests and the fig-5/6 bench.
  struct Analysis {
    /// Global number of state sets (product over components).
    uint64_t num_state_sets = 1;
    /// Emission coefficient per comm, scaled to the *global* set count
    /// (as the paper's fig 6 "Sum" row reports).
    std::vector<uint64_t> emission;
    /// After the per-source-node minimum (fig 6 "Minimum" row).
    std::vector<uint64_t> min_emission;
    std::vector<double> penalty;
    /// The explicit global state sets; only filled by analyze() when
    /// `materialize_sets` and the graph is small (fig-5 style displays).
    std::vector<std::vector<graph::CommId>> state_sets;
    bool complete = true;
  };

  [[nodiscard]] Analysis analyze(const graph::CommGraph& graph,
                                 bool materialize_sets = false) const;

 private:
  MyrinetParams params_;
};

}  // namespace bwshare::models
