// Baseline communication models the paper compares against conceptually
// (§II): the LogP/LogGP family, which ignores sharing entirely, and the
// Kim-Lee Myrinet model [7], which multiplies a piecewise-linear cost by the
// maximum number of communications in the sharing conflict.
// Reference entries: docs/MODELS.md §"Linear LogGP" / §"Kim–Lee".
#pragma once

#include "models/penalty_model.hpp"

namespace bwshare::models {

/// LogGP-style linear model: T = L + 2o + G·(k-1) per message, no sharing.
/// As a penalty model it always answers 1 — the strawman that motivates the
/// paper (§II: "these linear models poorly predict communication delays").
class LinearLogGPModel final : public PenaltyModel {
 public:
  struct Params {
    double latency = 45e-6;       // L
    double overhead = 2e-6;       // o (per end)
    double gap_per_byte = 8e-9;   // G
  };

  LinearLogGPModel() : params_() {}
  explicit LinearLogGPModel(const Params& params) : params_(params) {}

  [[nodiscard]] std::string name() const override { return "loggp"; }
  [[nodiscard]] std::vector<double> penalties(
      const graph::CommGraph& graph) const override;
  [[nodiscard]] std::vector<double> predict_times(
      const graph::CommGraph& graph,
      const topo::NetworkCalibration& cal) const override;

 private:
  Params params_;
};

/// Kim & Lee [7]: delay = (conflict multiplicity) x linear cost, where the
/// multiplicity is the maximum number of communications sharing a network
/// path with this one. On a fat tree the shared resources are the two host
/// links, so the multiplicity is max(Δo(src), Δi(dst)).
class KimLeeModel final : public PenaltyModel {
 public:
  [[nodiscard]] std::string name() const override { return "kimlee"; }
  [[nodiscard]] std::vector<double> penalties(
      const graph::CommGraph& graph) const override;
};

}  // namespace bwshare::models
