#include "models/penalty_model.hpp"

#include "util/error.hpp"

namespace bwshare::models {

std::vector<double> PenaltyModel::predict_times(
    const graph::CommGraph& graph, const topo::NetworkCalibration& cal) const {
  const auto ps = penalties(graph);
  BWS_ASSERT(ps.size() == static_cast<size_t>(graph.size()),
             "model returned wrong number of penalties");
  std::vector<double> times(ps.size());
  for (size_t i = 0; i < ps.size(); ++i) {
    const auto& c = graph.comm(static_cast<graph::CommId>(i));
    const double bandwidth = graph.is_intra_node(static_cast<graph::CommId>(i))
                                 ? cal.shm_bandwidth
                                 : cal.reference_bandwidth();
    times[i] = cal.latency + ps[i] * c.bytes / bandwidth;
  }
  return times;
}

}  // namespace bwshare::models
