#include "models/mis.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace bwshare::models {

AdjacencyMatrix::AdjacencyMatrix(int n)
    : n_(n), adj_(static_cast<size_t>(n),
                  std::vector<bool>(static_cast<size_t>(n), false)) {
  BWS_CHECK(n >= 0, "adjacency matrix size must be non-negative");
}

void AdjacencyMatrix::add_edge(int a, int b) {
  BWS_CHECK(a >= 0 && a < n_ && b >= 0 && b < n_, "vertex out of range");
  BWS_CHECK(a != b, "self loops not allowed");
  adj_[static_cast<size_t>(a)][static_cast<size_t>(b)] = true;
  adj_[static_cast<size_t>(b)][static_cast<size_t>(a)] = true;
}

bool AdjacencyMatrix::adjacent(int a, int b) const {
  BWS_CHECK(a >= 0 && a < n_ && b >= 0 && b < n_, "vertex out of range");
  return adj_[static_cast<size_t>(a)][static_cast<size_t>(b)];
}

namespace {

/// Dynamic bitset over uint64 words, sized for one graph.
class Bits {
 public:
  explicit Bits(int n) : n_(n), words_((static_cast<size_t>(n) + 63) / 64) {}

  void set(int i) { words_[static_cast<size_t>(i) >> 6] |= 1ULL << (i & 63); }
  void reset(int i) {
    words_[static_cast<size_t>(i) >> 6] &= ~(1ULL << (i & 63));
  }
  [[nodiscard]] bool test(int i) const {
    return (words_[static_cast<size_t>(i) >> 6] >> (i & 63)) & 1ULL;
  }
  [[nodiscard]] bool empty() const {
    for (uint64_t w : words_)
      if (w) return false;
    return true;
  }
  [[nodiscard]] int count() const {
    int total = 0;
    for (uint64_t w : words_) total += __builtin_popcountll(w);
    return total;
  }
  [[nodiscard]] Bits and_with(const Bits& other) const {
    Bits out(n_);
    for (size_t i = 0; i < words_.size(); ++i)
      out.words_[i] = words_[i] & other.words_[i];
    return out;
  }
  [[nodiscard]] Bits and_not(const Bits& other) const {
    Bits out(n_);
    for (size_t i = 0; i < words_.size(); ++i)
      out.words_[i] = words_[i] & ~other.words_[i];
    return out;
  }
  [[nodiscard]] int first() const {
    for (size_t w = 0; w < words_.size(); ++w)
      if (words_[w]) return static_cast<int>(w * 64) + __builtin_ctzll(words_[w]);
    return -1;
  }
  /// Iterate set bits.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t word = words_[w];
      while (word) {
        const int bit = __builtin_ctzll(word);
        fn(static_cast<int>(w * 64) + bit);
        word &= word - 1;
      }
    }
  }

 private:
  int n_;
  std::vector<uint64_t> words_;
};

/// Bron–Kerbosch with pivot on the complement graph.
class Enumerator {
 public:
  Enumerator(const AdjacencyMatrix& graph, size_t max_sets)
      : n_(graph.size()), max_sets_(max_sets) {
    // Complement neighbourhoods: cn_[v] = vertices *compatible* with v
    // (non-adjacent in the conflict graph, excluding v itself).
    cn_.reserve(static_cast<size_t>(n_));
    for (int v = 0; v < n_; ++v) {
      Bits row(n_);
      for (int w = 0; w < n_; ++w)
        if (w != v && !graph.adjacent(v, w)) row.set(w);
      cn_.push_back(row);
    }
  }

  MisResult run() {
    MisResult result;
    if (n_ == 0) {
      result.sets.push_back({});  // the empty graph has one (empty) MIS
      return result;
    }
    Bits p(n_);
    for (int v = 0; v < n_; ++v) p.set(v);
    Bits x(n_);
    std::vector<int> current;
    expand(p, x, current, result);
    std::sort(result.sets.begin(), result.sets.end());
    return result;
  }

 private:
  void expand(Bits p, Bits x, std::vector<int>& current, MisResult& result) {
    if (!result.complete) return;
    if (p.empty() && x.empty()) {
      if (result.sets.size() >= max_sets_) {
        result.complete = false;
        return;
      }
      std::vector<int> set = current;
      std::sort(set.begin(), set.end());
      result.sets.push_back(std::move(set));
      return;
    }
    // Pivot: vertex of P ∪ X with the most compatible vertices inside P.
    int pivot = -1;
    int best = -1;
    auto consider = [&](int v) {
      const int gain = p.and_with(cn_[static_cast<size_t>(v)]).count();
      if (gain > best) {
        best = gain;
        pivot = v;
      }
    };
    p.for_each(consider);
    x.for_each(consider);

    // Candidates: P minus the pivot's compatible set.
    Bits candidates = p.and_not(cn_[static_cast<size_t>(pivot)]);
    std::vector<int> order;
    candidates.for_each([&](int v) { order.push_back(v); });

    for (int v : order) {
      Bits new_p = p.and_with(cn_[static_cast<size_t>(v)]);
      Bits new_x = x.and_with(cn_[static_cast<size_t>(v)]);
      current.push_back(v);
      expand(new_p, new_x, current, result);
      current.pop_back();
      if (!result.complete) return;
      p.reset(v);
      x.set(v);
    }
  }

  int n_;
  size_t max_sets_;
  std::vector<Bits> cn_;
};

}  // namespace

MisResult enumerate_maximal_independent_sets(const AdjacencyMatrix& graph,
                                             size_t max_sets) {
  BWS_CHECK(max_sets > 0, "max_sets must be positive");
  return Enumerator(graph, max_sets).run();
}

std::vector<uint64_t> emission_counts(const MisResult& result,
                                      int num_vertices) {
  std::vector<uint64_t> counts(static_cast<size_t>(num_vertices), 0);
  for (const auto& set : result.sets)
    for (int v : set) {
      BWS_CHECK(v >= 0 && v < num_vertices, "vertex out of range in MIS");
      ++counts[static_cast<size_t>(v)];
    }
  return counts;
}

}  // namespace bwshare::models
