// Gigabit Ethernet congestion model (paper §V-A).
//
// Reproduces: Fig. 2 column 1 (measured GigE penalties 1.5 / 2.25), Fig. 4
// (γo/γi parameter estimation schemes) and feeds the Fig. 8 HPL-on-GigE
// prediction. Reference entry: docs/MODELS.md §"Gigabit Ethernet".
//
// A quantitative model with three card-specific parameters:
//   β   — per-stream sharing efficiency (fig 2: two streams cost 1.5 = 2β,
//         three cost 2.25 = 3β with β = 0.75)
//   γo  — spread between strongly-slow and other *outgoing* communications
//   γi  — same for *incoming* communications
//
// For a communication i with outgoing degree Δo = Δo(src(i)) and incoming
// degree Δi = Δi(dst(i)), and strongly-slow sets Cm_o/Cm_i (Definition 1,
// implemented in graph/conflict.hpp):
//
//   p_o = 1                                         if Δo = 1
//       = Δo·β·(1 + γo·(Δo − |Cm_o|))               if i ∈ Cm_o
//       = Δo·β·(1 − γo/|Cm_o|)                      otherwise
//   p_i analogous with Δi, γi, Cm_i
//   p   = max(p_o, p_i), clamped to >= 1.
#pragma once

#include "models/penalty_model.hpp"

namespace bwshare::models {

struct GigeParams {
  double beta = 0.75;    // paper §V-A
  double gamma_o = 0.115;  // paper fig 4
  double gamma_i = 0.036;  // paper fig 4
};

class GigabitEthernetModel final : public PenaltyModel {
 public:
  explicit GigabitEthernetModel(GigeParams params = {});

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::vector<double> penalties(
      const graph::CommGraph& graph) const override;

  [[nodiscard]] const GigeParams& params() const { return params_; }

  /// Per-communication breakdown, exposed for tests and the fig-4 bench.
  struct Breakdown {
    double p_out = 1.0;
    double p_in = 1.0;
    double penalty = 1.0;
    int delta_o = 0;
    int delta_i = 0;
    int card_cm_o = 0;
    int card_cm_i = 0;
    bool in_cm_o = false;
    bool in_cm_i = false;
  };
  [[nodiscard]] Breakdown breakdown(const graph::CommGraph& graph,
                                    graph::CommId id) const;

 private:
  GigeParams params_;
};

}  // namespace bwshare::models
