#include "models/estimation.hpp"

#include "graph/schemes.hpp"
#include "stats/descriptive.hpp"
#include "util/error.hpp"

namespace bwshare::models {

double measure_reference_time(const MeasureFn& measure, double bytes) {
  const auto g = graph::schemes::outgoing_fan(1, bytes);
  const auto times = measure(g);
  BWS_CHECK(times.size() == 1, "reference measurement must return one time");
  BWS_CHECK(times[0] > 0.0, "reference time must be positive");
  return times[0];
}

BetaEstimate estimate_beta(const MeasureFn& measure, double bytes,
                           int max_fan) {
  BWS_CHECK(max_fan >= 2, "need at least degree-2 conflicts to estimate beta");
  const double t_ref = measure_reference_time(measure, bytes);

  BetaEstimate est;
  stats::Accumulator acc;
  for (int fan = 2; fan <= max_fan; ++fan) {
    const auto g = graph::schemes::outgoing_fan(fan, bytes);
    const auto times = measure(g);
    BWS_CHECK(static_cast<int>(times.size()) == fan,
              "measurement size mismatch");
    // Average penalty of the fan, divided by the number of communications
    // ("we divide the values that we get by the number of communication").
    stats::Accumulator fan_acc;
    for (double t : times) fan_acc.add(t / t_ref);
    const double beta_k = fan_acc.mean() / fan;
    est.per_degree.push_back(beta_k);
    acc.add(beta_k);
  }
  est.beta = acc.mean();
  return est;
}

GammaEstimate estimate_gammas(const MeasureFn& measure, double beta,
                              double bytes) {
  BWS_CHECK(beta > 0.0, "beta must be positive");
  GammaEstimate est;
  est.t_ref = measure_reference_time(measure, bytes);

  const auto g = graph::schemes::fig4_scheme(bytes);
  const auto times = measure(g);
  BWS_CHECK(times.size() == 6, "fig-4 scheme has six communications");
  const auto a = g.find("a");
  const auto f = g.find("f");
  BWS_ASSERT(a && f, "fig-4 scheme must define comms a and f");
  est.t_a = times[static_cast<size_t>(*a)];
  est.t_f = times[static_cast<size_t>(*f)];

  // a is the non-strongly-slow outgoing comm of a degree-3 conflict;
  // f the non-strongly-slow incoming comm of a degree-3 conflict.
  est.gamma_o = 1.0 - est.t_a / (3.0 * beta * est.t_ref);
  est.gamma_i = 1.0 - est.t_f / (3.0 * beta * est.t_ref);
  return est;
}

GigeParams estimate_gige_params(const MeasureFn& measure, double beta_bytes,
                                double gamma_bytes, int max_fan) {
  GigeParams params;
  params.beta = estimate_beta(measure, beta_bytes, max_fan).beta;
  const auto gamma = estimate_gammas(measure, params.beta, gamma_bytes);
  // The estimators can produce slightly negative gammas when the substrate
  // shares perfectly fairly; clamp into the model's valid domain.
  params.gamma_o = std::max(0.0, gamma.gamma_o);
  params.gamma_i = std::max(0.0, gamma.gamma_i);
  return params;
}

}  // namespace bwshare::models
