// The predictive-model interface (paper §V).
//
// Reproduces: the §IV-B penalty definition p_i = T_i / T_ref that every
// figure of the paper is phrased in; concrete models (gige.hpp §V-A,
// myrinet.hpp §V-B, infiniband.hpp, baselines.hpp §II) implement it.
// Per-model equations, parameters and CLI invocations: docs/MODELS.md.
//
// A penalty model looks at a communication graph — the set of point-to-point
// communications that are in flight at the same time — and assigns each
// communication a penalty p >= 1: the factor by which bandwidth sharing
// inflates its completion time relative to an unconflicted transfer
// (paper §IV-B: p_i = T_i / T_ref).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "graph/comm_graph.hpp"
#include "topo/network.hpp"

namespace bwshare::models {

class PenaltyModel {
 public:
  virtual ~PenaltyModel() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Penalty for every communication in `graph` (same order as
  /// graph.comms()). Intra-node communications always get 1.0.
  [[nodiscard]] virtual std::vector<double> penalties(
      const graph::CommGraph& graph) const = 0;

  /// Predicted completion time of communication `id` under `cal`, assuming
  /// all communications of `graph` are concurrent for their whole duration.
  /// Default: latency + penalty * bytes / reference_bandwidth.
  [[nodiscard]] virtual std::vector<double> predict_times(
      const graph::CommGraph& graph,
      const topo::NetworkCalibration& cal) const;
};

using PenaltyModelPtr = std::unique_ptr<PenaltyModel>;

}  // namespace bwshare::models
