// Model registry: build a penalty model by name or pick the paper's model
// for a given interconnect.
#pragma once

#include <string>
#include <vector>

#include "models/penalty_model.hpp"
#include "topo/network.hpp"

namespace bwshare::models {

/// "gige", "myrinet", "infiniband", "loggp", "kimlee" (default parameters).
[[nodiscard]] PenaltyModelPtr make_model(const std::string& name);

/// The model the paper associates with each interconnect.
[[nodiscard]] PenaltyModelPtr model_for(topo::NetworkTech tech);

/// All registered model names.
[[nodiscard]] std::vector<std::string> model_names();

}  // namespace bwshare::models
