// InfiniBand (InfiniHost III) penalty model.
//
// Reproduces: Fig. 2 column 3 (measured InfiniBand penalties, in particular
// scheme 5's 3.66 / 2.035 split). The paper's conclusion lists this model as
// work in progress; the formulation below is our extension of §V to
// credit-based flow control. Reference entry: docs/MODELS.md §"InfiniBand".
//
// The paper's conclusion lists this model as work in progress; we implement
// it as the natural extension the measured behaviour suggests (fig 2, third
// column). Credit-based flow control yields near-fair sharing per direction
// with a per-stream efficiency β_ib (1.725/2 = 0.86, 2.61/3 = 0.87), but the
// host adapter's DMA path is shared between directions: when a node both
// sends and receives, penalties follow a weighted-bus rule that exactly
// matches fig 2 scheme 5 (outgoing 3.66 = β·(Δo + w·Δi)/f_duplex with
// w = 1.8, f_duplex = 1.14; incoming 2.035 = 3.66/1.8).
#pragma once

#include "models/penalty_model.hpp"

namespace bwshare::models {

struct InfinibandParams {
  double beta = 0.87;          // per-stream sharing efficiency
  double rx_weight = 1.8;      // receive flows get this weight on the bus
  double duplex_factor = 1.14; // combined TX+RX capacity / link capacity
};

class InfinibandModel final : public PenaltyModel {
 public:
  explicit InfinibandModel(InfinibandParams params = {});

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::vector<double> penalties(
      const graph::CommGraph& graph) const override;

  [[nodiscard]] const InfinibandParams& params() const { return params_; }

 private:
  InfinibandParams params_;
};

}  // namespace bwshare::models
