#include "models/myrinet.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace bwshare::models {

MyrinetModel::MyrinetModel(MyrinetParams params) : params_(params) {
  BWS_CHECK(params_.max_state_sets > 0, "max_state_sets must be positive");
}

std::string MyrinetModel::name() const { return "myrinet"; }

MyrinetModel::Analysis MyrinetModel::analyze(const graph::CommGraph& graph,
                                             bool materialize_sets) const {
  Analysis out;
  const int n = graph.size();
  out.emission.assign(static_cast<size_t>(n), 0);
  out.min_emission.assign(static_cast<size_t>(n), 0);
  out.penalty.assign(static_cast<size_t>(n), 1.0);
  if (n == 0) return out;

  const graph::ConflictGraph conflicts(graph, params_.rule);
  const auto components = conflicts.components();

  // Per-component enumeration. Component set counts multiply globally.
  std::vector<uint64_t> comp_sets(components.size(), 1);
  // In-component emission count per comm.
  std::vector<uint64_t> local_emission(static_cast<size_t>(n), 0);
  std::vector<size_t> comp_of(static_cast<size_t>(n), 0);
  // Per-component materialized sets (comm ids), for cross-product display.
  std::vector<std::vector<std::vector<graph::CommId>>> comp_mis(
      components.size());

  for (size_t ci = 0; ci < components.size(); ++ci) {
    const auto& comp = components[ci];
    AdjacencyMatrix local(static_cast<int>(comp.size()));
    for (size_t a = 0; a < comp.size(); ++a) {
      comp_of[static_cast<size_t>(comp[a])] = ci;
      for (size_t b = a + 1; b < comp.size(); ++b)
        if (conflicts.conflicts(comp[a], comp[b]))
          local.add_edge(static_cast<int>(a), static_cast<int>(b));
    }
    const MisResult mis =
        enumerate_maximal_independent_sets(local, params_.max_state_sets);
    if (!mis.complete) out.complete = false;
    comp_sets[ci] = mis.sets.size();
    const auto counts = emission_counts(mis, static_cast<int>(comp.size()));
    for (size_t a = 0; a < comp.size(); ++a)
      local_emission[static_cast<size_t>(comp[a])] = counts[a];
    if (materialize_sets) {
      comp_mis[ci].reserve(mis.sets.size());
      for (const auto& set : mis.sets) {
        std::vector<graph::CommId> ids;
        ids.reserve(set.size());
        for (int v : set) ids.push_back(comp[static_cast<size_t>(v)]);
        comp_mis[ci].push_back(std::move(ids));
      }
    }
  }

  // Global state-set count (saturating).
  unsigned __int128 total = 1;
  constexpr uint64_t kLimit = std::numeric_limits<uint64_t>::max();
  for (uint64_t m : comp_sets) {
    total *= m;
    if (total > kLimit) {
      total = kLimit;
      out.complete = false;
      break;
    }
  }
  out.num_state_sets = static_cast<uint64_t>(total);

  // Global emission = local count x product of the other components' counts.
  for (graph::CommId i = 0; i < n; ++i) {
    const size_t ci = comp_of[static_cast<size_t>(i)];
    const uint64_t others =
        comp_sets[ci] == 0 ? 0 : out.num_state_sets / comp_sets[ci];
    out.emission[static_cast<size_t>(i)] =
        local_emission[static_cast<size_t>(i)] * others;
  }

  // Per-source-node minimum over outgoing *network* communications: the NIC
  // shares the card fairly, so each outgoing comm moves at the slowest
  // sibling's pace (paper fig 6 "Minimum" row).
  std::vector<uint64_t> min_local(static_cast<size_t>(n), 0);
  for (graph::CommId i = 0; i < n; ++i) {
    if (graph.is_intra_node(i)) {
      out.min_emission[static_cast<size_t>(i)] =
          out.emission[static_cast<size_t>(i)];
      min_local[static_cast<size_t>(i)] =
          local_emission[static_cast<size_t>(i)];
      continue;
    }
    uint64_t lo = local_emission[static_cast<size_t>(i)];
    uint64_t lo_global = out.emission[static_cast<size_t>(i)];
    for (graph::CommId j : graph.same_source(i)) {
      lo = std::min(lo, local_emission[static_cast<size_t>(j)]);
      lo_global = std::min(lo_global, out.emission[static_cast<size_t>(j)]);
    }
    min_local[static_cast<size_t>(i)] = lo;
    out.min_emission[static_cast<size_t>(i)] = lo_global;
  }

  // Penalty = #sets / clamped emission, computed per component so the result
  // is exact even when the global product saturates.
  for (graph::CommId i = 0; i < n; ++i) {
    const size_t ci = comp_of[static_cast<size_t>(i)];
    const uint64_t lo = min_local[static_cast<size_t>(i)];
    if (lo == 0) {
      // A comm that never sends in any state set (cannot happen for maximal
      // sets, but be defensive against an early enumeration stop).
      out.penalty[static_cast<size_t>(i)] =
          static_cast<double>(comp_sets[ci]);
      continue;
    }
    out.penalty[static_cast<size_t>(i)] =
        static_cast<double>(comp_sets[ci]) / static_cast<double>(lo);
  }

  if (materialize_sets) {
    // Cross product across components (small graphs only).
    std::vector<std::vector<graph::CommId>> sets{{}};
    for (size_t ci = 0; ci < components.size(); ++ci) {
      std::vector<std::vector<graph::CommId>> next;
      next.reserve(sets.size() * comp_mis[ci].size());
      for (const auto& prefix : sets)
        for (const auto& choice : comp_mis[ci]) {
          auto merged = prefix;
          merged.insert(merged.end(), choice.begin(), choice.end());
          next.push_back(std::move(merged));
          BWS_CHECK(next.size() <= params_.max_state_sets,
                    "too many state sets to materialize");
        }
      sets = std::move(next);
    }
    for (auto& set : sets) std::sort(set.begin(), set.end());
    std::sort(sets.begin(), sets.end());
    out.state_sets = std::move(sets);
  }

  return out;
}

std::vector<double> MyrinetModel::penalties(
    const graph::CommGraph& graph) const {
  return analyze(graph).penalty;
}

}  // namespace bwshare::models
