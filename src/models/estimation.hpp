// Model parameter estimation (paper §V-A).
//
// The GigE parameters are estimated from measurements:
//   β  — run simple outgoing conflicts C<-X-> of increasing degree, divide
//        each measured penalty by the degree, average;
//   γo — from the fig-4 scheme: γo = 1 − t_a / (3·β·t_ref);
//   γi — likewise:              γi = 1 − t_f / (3·β·t_ref).
// where t_ref is the time of the same message without concurrency.
//
// Measurements are abstracted as a callback so the estimators run equally
// against the flowsim substrate, the packet-level simulators, or (on a real
// cluster) recorded data.
#pragma once

#include <functional>
#include <vector>

#include "graph/comm_graph.hpp"
#include "models/gige.hpp"

namespace bwshare::models {

/// Returns per-communication completion times for a scheme run in isolation
/// (all communications start together), in graph.comms() order.
using MeasureFn =
    std::function<std::vector<double>(const graph::CommGraph&)>;

struct BetaEstimate {
  double beta = 0.0;
  /// Penalty/degree samples per fan degree (2..max_fan), for reporting.
  std::vector<double> per_degree;
};

/// Estimate β from outgoing fans of degree 2..max_fan with `bytes` messages.
[[nodiscard]] BetaEstimate estimate_beta(const MeasureFn& measure,
                                         double bytes = 20e6,
                                         int max_fan = 4);

struct GammaEstimate {
  double gamma_o = 0.0;
  double gamma_i = 0.0;
  double t_ref = 0.0;  // unconflicted reference time at the probe size
  double t_a = 0.0;    // fig-4 communication a
  double t_f = 0.0;    // fig-4 communication f
};

/// Estimate γo and γi from the fig-4 scheme with `bytes` messages.
[[nodiscard]] GammaEstimate estimate_gammas(const MeasureFn& measure,
                                            double beta, double bytes = 4e6);

/// Full GigE calibration: β then γo/γi.
[[nodiscard]] GigeParams estimate_gige_params(const MeasureFn& measure,
                                              double beta_bytes = 20e6,
                                              double gamma_bytes = 4e6,
                                              int max_fan = 4);

/// Unconflicted reference time for a `bytes` message (paper §IV-B's
/// "referential time": one MPI_Send node 0 -> node 1, nothing else).
[[nodiscard]] double measure_reference_time(const MeasureFn& measure,
                                            double bytes);

}  // namespace bwshare::models
