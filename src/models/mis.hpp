// Maximal-independent-set enumeration over conflict graphs.
//
// Reproduces: the feasible send-set enumeration behind the paper's Fig. 5/6
// Myrinet state tables (§V-B); the MyrinetModel's emission coefficients are
// counts over the sets enumerated here. See docs/MODELS.md §"Myrinet 2000".
//
// The Myrinet model (paper §V-B) considers every feasible combination of
// communication states where a communication is either "send" or "wait",
// under the rule: a sending communication forces every conflicting
// communication (same source node or same destination node) to wait, and no
// communication waits needlessly. The feasible "send" sets are therefore
// exactly the *maximal independent sets* of the conflict graph.
//
// Enumeration is Bron–Kerbosch with pivoting on the complement graph
// (maximal independent sets of G = maximal cliques of G̅), over dynamic
// bitsets. Components are enumerated independently by the caller
// (state-set counts multiply across components).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bwshare::models {

/// Dense undirected adjacency used by the enumerator.
class AdjacencyMatrix {
 public:
  explicit AdjacencyMatrix(int n);

  void add_edge(int a, int b);
  [[nodiscard]] bool adjacent(int a, int b) const;
  [[nodiscard]] int size() const { return n_; }

 private:
  int n_;
  std::vector<std::vector<bool>> adj_;
};

struct MisResult {
  /// Each entry is a maximal independent set (sorted vertex lists).
  std::vector<std::vector<int>> sets;
  /// False if enumeration stopped early at `max_sets`.
  bool complete = true;
};

/// Enumerate all maximal independent sets of the graph, stopping after
/// `max_sets` (a safety valve; paper-scale graphs produce a handful).
[[nodiscard]] MisResult enumerate_maximal_independent_sets(
    const AdjacencyMatrix& graph, size_t max_sets = 1u << 20);

/// Number of maximal independent sets containing each vertex
/// ("emission coefficients" before the per-node minimum of §V-B).
[[nodiscard]] std::vector<uint64_t> emission_counts(const MisResult& result,
                                                    int num_vertices);

}  // namespace bwshare::models
