#include "models/gige.hpp"

#include <algorithm>

#include "graph/conflict.hpp"
#include "util/error.hpp"

namespace bwshare::models {

GigabitEthernetModel::GigabitEthernetModel(GigeParams params)
    : params_(params) {
  BWS_CHECK(params_.beta > 0.0, "beta must be positive");
  BWS_CHECK(params_.gamma_o >= 0.0 && params_.gamma_o < 1.0,
            "gamma_o must be in [0,1)");
  BWS_CHECK(params_.gamma_i >= 0.0 && params_.gamma_i < 1.0,
            "gamma_i must be in [0,1)");
}

std::string GigabitEthernetModel::name() const { return "gige"; }

GigabitEthernetModel::Breakdown GigabitEthernetModel::breakdown(
    const graph::CommGraph& graph, graph::CommId id) const {
  Breakdown b;
  if (graph.is_intra_node(id)) return b;

  b.delta_o = graph.delta_o(id);
  b.delta_i = graph.delta_i(id);
  const auto slow = graph::strongly_slow_sets(graph, id);
  b.card_cm_o = static_cast<int>(slow.cm_o.size());
  b.card_cm_i = static_cast<int>(slow.cm_i.size());
  b.in_cm_o = slow.in_cm_o;
  b.in_cm_i = slow.in_cm_i;

  const double beta = params_.beta;
  if (b.delta_o <= 1) {
    b.p_out = 1.0;
  } else if (b.in_cm_o) {
    b.p_out = b.delta_o * beta *
              (1.0 + params_.gamma_o * (b.delta_o - b.card_cm_o));
  } else {
    b.p_out = b.delta_o * beta * (1.0 - params_.gamma_o / b.card_cm_o);
  }

  if (b.delta_i <= 1) {
    b.p_in = 1.0;
  } else if (b.in_cm_i) {
    b.p_in = b.delta_i * beta *
             (1.0 + params_.gamma_i * (b.delta_i - b.card_cm_i));
  } else {
    b.p_in = b.delta_i * beta * (1.0 - params_.gamma_i / b.card_cm_i);
  }

  // The paper's penalty is relative to an unconflicted transfer, so it can
  // never drop below 1 (a conflict cannot speed a communication up).
  b.penalty = std::max(1.0, std::max(b.p_out, b.p_in));
  return b;
}

std::vector<double> GigabitEthernetModel::penalties(
    const graph::CommGraph& graph) const {
  std::vector<double> out(static_cast<size_t>(graph.size()), 1.0);
  for (graph::CommId i = 0; i < graph.size(); ++i)
    out[static_cast<size_t>(i)] = breakdown(graph, i).penalty;
  return out;
}

}  // namespace bwshare::models
