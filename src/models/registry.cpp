#include "models/registry.hpp"

#include "models/baselines.hpp"
#include "models/gige.hpp"
#include "models/infiniband.hpp"
#include "models/myrinet.hpp"
#include "util/error.hpp"

namespace bwshare::models {

PenaltyModelPtr make_model(const std::string& name) {
  if (name == "gige") return std::make_unique<GigabitEthernetModel>();
  if (name == "myrinet") return std::make_unique<MyrinetModel>();
  if (name == "infiniband") return std::make_unique<InfinibandModel>();
  if (name == "loggp") return std::make_unique<LinearLogGPModel>();
  if (name == "kimlee") return std::make_unique<KimLeeModel>();
  BWS_THROW("unknown model '" + name + "'");
}

PenaltyModelPtr model_for(topo::NetworkTech tech) {
  switch (tech) {
    case topo::NetworkTech::kGigabitEthernet: return make_model("gige");
    case topo::NetworkTech::kMyrinet2000: return make_model("myrinet");
    case topo::NetworkTech::kInfinibandInfinihost3:
      return make_model("infiniband");
  }
  BWS_THROW("invalid network technology");
}

std::vector<std::string> model_names() {
  return {"gige", "myrinet", "infiniband", "loggp", "kimlee"};
}

}  // namespace bwshare::models
