#include "models/infiniband.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace bwshare::models {

InfinibandModel::InfinibandModel(InfinibandParams params) : params_(params) {
  BWS_CHECK(params_.beta > 0.0, "beta must be positive");
  BWS_CHECK(params_.rx_weight > 0.0, "rx_weight must be positive");
  BWS_CHECK(params_.duplex_factor > 0.0, "duplex_factor must be positive");
}

std::string InfinibandModel::name() const { return "infiniband"; }

std::vector<double> InfinibandModel::penalties(
    const graph::CommGraph& graph) const {
  std::vector<double> out(static_cast<size_t>(graph.size()), 1.0);
  const double beta = params_.beta;
  const double w = params_.rx_weight;
  const double df = params_.duplex_factor;

  for (graph::CommId i = 0; i < graph.size(); ++i) {
    if (graph.is_intra_node(i)) continue;
    const auto& c = graph.comm(i);
    const int out_src = graph.out_degree(c.src);
    const int in_src = graph.in_degree(c.src);
    const int in_dst = graph.in_degree(c.dst);
    const int out_dst = graph.out_degree(c.dst);

    // Source side: pure outgoing conflict shares the TX direction fairly;
    // a duplex conflict shares the weighted host bus.
    double p_src;
    if (in_src == 0) {
      p_src = out_src <= 1 ? 1.0 : beta * out_src;
    } else {
      p_src = beta * (out_src + w * in_src) / df;
    }

    // Destination side, symmetric; this comm is a receive flow there, so its
    // share of the bus is w times larger.
    double p_dst;
    if (out_dst == 0) {
      p_dst = in_dst <= 1 ? 1.0 : beta * in_dst;
    } else {
      p_dst = beta * (w * in_dst + out_dst) / (df * w);
    }

    out[static_cast<size_t>(i)] = std::max(1.0, std::max(p_src, p_dst));
  }
  return out;
}

}  // namespace bwshare::models
