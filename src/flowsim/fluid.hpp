// Weighted max-min fair fluid allocation (progressive filling).
//
// The "measured" substrate models a transfer as a fluid flow crossing a set
// of capacity constraints:
//   * its own per-stream cap (single-stream efficiency x link rate),
//   * every directed link on its route,
//   * the host duplex bus at its two endpoints (TX+RX share one IO path).
// Rates are the weighted max-min fair allocation: all flows grow their rate
// proportionally to their weight until a constraint saturates; saturated
// flows freeze and the rest keep growing.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/arena.hpp"

namespace bwshare::flowsim {

using FlowIndex = int;
using ResourceIndex = int;

/// One capacity constraint over a set of member flows.
struct Resource {
  double capacity = 0.0;
  std::vector<FlowIndex> members;
};

/// Allocation problem: `num_flows` flows with weights, a per-flow rate cap
/// (<= 0 means uncapped) and shared resources.
struct AllocationProblem {
  int num_flows = 0;
  std::vector<double> weights;  // growth weight per flow (default 1)
  std::vector<double> caps;     // per-flow rate cap, <= 0 for none
  std::vector<Resource> resources;
};

/// Non-owning view forms of Resource/AllocationProblem for the allocation-
/// free hot path: callers build the spans in a util::Arena (or any storage
/// outliving the solve) and max_min_rates_into writes rates in place.
struct ResourceView {
  double capacity = 0.0;
  std::span<const FlowIndex> members;
};

struct AllocationProblemView {
  int num_flows = 0;
  std::span<const double> weights;  // empty or one per flow (default 1)
  std::span<const double> caps;     // empty or one per flow, <= 0 for none
  std::span<const ResourceView> resources;
};

/// Weighted max-min fair rates, bytes/s per flow.
/// Throws bwshare::Error on malformed problems (negative capacity, members
/// out of range). Flows not covered by any finite constraint get rate
/// infinity replaced by their cap; it is an error if such a flow is also
/// uncapped.
[[nodiscard]] std::vector<double> max_min_rates(
    const AllocationProblem& problem);

/// View-based core of max_min_rates: writes the allocation into `out`
/// (size == num_flows) using `scratch` for transient state, touching the
/// global allocator only if the arena has to grow. Bit-identical to
/// max_min_rates on the same problem — the vector API is a wrapper over this.
void max_min_rates_into(const AllocationProblemView& problem,
                        util::Arena& scratch, std::span<double> out);

}  // namespace bwshare::flowsim
