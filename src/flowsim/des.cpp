#include "flowsim/des.hpp"

#include <utility>

namespace bwshare::flowsim {

core::EventHandle Simulator::schedule_at(double when, Handler handler) {
  return reactor_.schedule_at(when, std::move(handler));
}

core::EventHandle Simulator::schedule_in(double delay, Handler handler) {
  return reactor_.schedule_in(delay, std::move(handler));
}

size_t Simulator::run(double max_time) { return reactor_.run(max_time); }

}  // namespace bwshare::flowsim
