#include "flowsim/des.hpp"

#include "util/error.hpp"

namespace bwshare::flowsim {

void Simulator::schedule_at(double when, Handler handler) {
  BWS_CHECK(when >= now_, "cannot schedule an event in the past");
  queue_.push(Event{when, next_seq_++, std::move(handler)});
}

void Simulator::schedule_in(double delay, Handler handler) {
  BWS_CHECK(delay >= 0.0, "delay must be non-negative");
  schedule_at(now_ + delay, std::move(handler));
}

size_t Simulator::run(double max_time) {
  size_t processed = 0;
  while (!queue_.empty()) {
    // priority_queue::top returns const&; the handler must be moved out
    // before pop, so copy the metadata first.
    const Event& top = queue_.top();
    if (top.when > max_time) break;
    Handler handler = std::move(const_cast<Event&>(top).handler);
    now_ = top.when;
    queue_.pop();
    handler();
    ++processed;
  }
  return processed;
}

void Simulator::clear() {
  while (!queue_.empty()) queue_.pop();
}

}  // namespace bwshare::flowsim
