#include "flowsim/fluid.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace bwshare::flowsim {

void max_min_rates_into(const AllocationProblemView& problem,
                        util::Arena& scratch, std::span<double> out) {
  const int n = problem.num_flows;
  BWS_CHECK(n >= 0, "num_flows must be non-negative");
  BWS_CHECK(problem.weights.empty() ||
                problem.weights.size() == static_cast<size_t>(n),
            "weights must be empty or one per flow");
  BWS_CHECK(problem.caps.empty() ||
                problem.caps.size() == static_cast<size_t>(n),
            "caps must be empty or one per flow");
  BWS_CHECK(out.size() == static_cast<size_t>(n),
            "output span must have one slot per flow");

  util::Arena::Frame frame(scratch);
  std::span<double> weights = scratch.make_span_uninit<double>(
      static_cast<size_t>(n));
  if (problem.weights.empty())
    std::fill(weights.begin(), weights.end(), 1.0);
  else
    std::copy(problem.weights.begin(), problem.weights.end(), weights.begin());
  for (double w : weights) BWS_CHECK(w > 0.0, "flow weights must be positive");

  for (const auto& r : problem.resources) {
    BWS_CHECK(r.capacity >= 0.0, "resource capacity must be non-negative");
    for (FlowIndex f : r.members)
      BWS_CHECK(f >= 0 && f < n,
                strformat("resource member %d out of range [0,%d)", f, n));
  }

  std::span<double> rates = out;
  std::fill(rates.begin(), rates.end(), 0.0);
  std::span<char> frozen = scratch.make_span<char>(static_cast<size_t>(n));
  std::span<char> saturated = scratch.make_span<char>(problem.resources.size());
  if (n == 0) return;

  // Progressive filling: unfrozen flow f has rate w_f * t. In each round,
  // find the constraint that saturates at the smallest t.
  double t = 0.0;
  int remaining = n;
  while (remaining > 0) {
    double best_t = std::numeric_limits<double>::infinity();
    // Per-flow caps: flow f saturates its own cap at t = cap_f / w_f.
    if (!problem.caps.empty()) {
      for (FlowIndex f = 0; f < n; ++f) {
        if (frozen[static_cast<size_t>(f)]) continue;
        const double cap = problem.caps[static_cast<size_t>(f)];
        if (cap > 0.0)
          best_t = std::min(best_t, cap / weights[static_cast<size_t>(f)]);
      }
    }
    for (size_t ri = 0; ri < problem.resources.size(); ++ri) {
      if (saturated[ri]) continue;
      const auto& r = problem.resources[ri];
      double frozen_load = 0.0;
      double active_weight = 0.0;
      for (FlowIndex f : r.members) {
        if (frozen[static_cast<size_t>(f)])
          frozen_load += rates[static_cast<size_t>(f)];
        else
          active_weight += weights[static_cast<size_t>(f)];
      }
      if (active_weight <= 0.0) continue;  // nothing left to constrain
      const double t_c = (r.capacity - frozen_load) / active_weight;
      best_t = std::min(best_t, std::max(t_c, t));
    }
    BWS_CHECK(best_t < std::numeric_limits<double>::infinity(),
              "unconstrained flow: every flow needs a cap or a resource");
    t = best_t;

    // Freeze every flow pinned by a constraint that is tight at t.
    bool froze_any = false;
    if (!problem.caps.empty()) {
      for (FlowIndex f = 0; f < n; ++f) {
        if (frozen[static_cast<size_t>(f)]) continue;
        const double cap = problem.caps[static_cast<size_t>(f)];
        if (cap > 0.0 &&
            weights[static_cast<size_t>(f)] * t >= cap * (1.0 - 1e-12)) {
          rates[static_cast<size_t>(f)] = cap;
          frozen[static_cast<size_t>(f)] = true;
          --remaining;
          froze_any = true;
        }
      }
    }
    for (size_t ri = 0; ri < problem.resources.size(); ++ri) {
      if (saturated[ri]) continue;
      const auto& r = problem.resources[ri];
      double frozen_load = 0.0;
      double active_weight = 0.0;
      for (FlowIndex f : r.members) {
        if (frozen[static_cast<size_t>(f)])
          frozen_load += rates[static_cast<size_t>(f)];
        else
          active_weight += weights[static_cast<size_t>(f)];
      }
      if (active_weight <= 0.0) {
        saturated[ri] = true;
        continue;
      }
      if (frozen_load + active_weight * t >= r.capacity * (1.0 - 1e-12)) {
        for (FlowIndex f : r.members) {
          if (frozen[static_cast<size_t>(f)]) continue;
          rates[static_cast<size_t>(f)] = weights[static_cast<size_t>(f)] * t;
          frozen[static_cast<size_t>(f)] = true;
          --remaining;
          froze_any = true;
        }
        saturated[ri] = true;
      }
    }
    // Numerical safety: if nothing froze (degenerate capacities), freeze the
    // flows at the current rate to guarantee termination.
    if (!froze_any) {
      for (FlowIndex f = 0; f < n; ++f) {
        if (frozen[static_cast<size_t>(f)]) continue;
        rates[static_cast<size_t>(f)] = weights[static_cast<size_t>(f)] * t;
        frozen[static_cast<size_t>(f)] = true;
        --remaining;
      }
    }
  }
}

std::vector<double> max_min_rates(const AllocationProblem& problem) {
  std::vector<ResourceView> resources;
  resources.reserve(problem.resources.size());
  for (const auto& r : problem.resources)
    resources.push_back({r.capacity, r.members});
  AllocationProblemView view;
  view.num_flows = problem.num_flows;
  view.weights = problem.weights;
  view.caps = problem.caps;
  view.resources = resources;
  std::vector<double> rates(
      static_cast<size_t>(std::max(problem.num_flows, 0)), 0.0);
  max_min_rates_into(view, util::Arena::thread_local_instance(), rates);
  return rates;
}

}  // namespace bwshare::flowsim
