#include "flowsim/packet.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <memory>

#include "flowsim/des.hpp"
#include "util/error.hpp"

namespace bwshare::flowsim {

namespace {

using topo::FlowControlKind;

struct Packet {
  int flow = 0;
  bool last = false;
};

/// Single-queue FIFO server (a link direction): serves one packet at a time
/// at a fixed serialization delay and hands it to `sink`.
class FifoServer {
 public:
  using Sink = std::function<void(Packet)>;

  FifoServer(Simulator& sim, double service_time, Sink sink)
      : sim_(sim), service_time_(service_time), sink_(std::move(sink)) {}

  void push(Packet p) {
    queue_.push_back(p);
    if (!busy_) start_next();
  }

  [[nodiscard]] bool idle() const { return !busy_ && queue_.empty(); }
  [[nodiscard]] size_t backlog() const { return queue_.size(); }

 private:
  void start_next() {
    if (queue_.empty()) {
      busy_ = false;
      return;
    }
    busy_ = true;
    const Packet p = queue_.front();
    queue_.pop_front();
    sim_.schedule_in(service_time_, [this, p] {
      sink_(p);
      start_next();
    });
  }

  Simulator& sim_;
  double service_time_;
  Sink sink_;
  std::deque<Packet> queue_;
  bool busy_ = false;
};

/// Host IO engine: one server shared by every flow touching the host, with
/// per-flow weighted round-robin — receive flows carry the calibration's RX
/// weight. Models the duplex bus behaviour of §III / fig 2 scheme 5 and
/// mirrors the fluid substrate's weighted max-min bus resource.
class HostIoServer {
 public:
  using Sink = std::function<void(Packet, bool /*rx*/)>;

  HostIoServer(Simulator& sim, double service_time, double rx_weight,
               Sink sink)
      : sim_(sim),
        service_time_(service_time),
        rx_weight_(rx_weight),
        sink_(std::move(sink)) {}

  void push(Packet p, bool rx) {
    auto& q = queues_[key(p.flow, rx)];
    if (q.weight == 0.0) q.weight = rx ? rx_weight_ : 1.0;
    if (q.packets.empty()) {
      // A queue waking up must not claim "missed" service history: align its
      // virtual time with the least-served backlogged queue.
      bool any = false;
      double floor = 0.0;
      for (const auto& [k, other] : queues_) {
        if (other.packets.empty()) continue;
        const double vt = other.served / other.weight;
        if (!any || vt < floor) floor = vt;
        any = true;
      }
      if (any) q.served = std::max(q.served, floor * q.weight);
    }
    q.packets.push_back(p);
    q.rx = rx;
    if (!busy_) start_next();
  }

 private:
  struct FlowQueue {
    std::deque<Packet> packets;
    double weight = 0.0;
    double served = 0.0;
    bool rx = false;
  };

  static long key(int flow, bool rx) { return flow * 2 + (rx ? 1 : 0); }

  void start_next() {
    // Weighted round-robin: among backlogged flow queues, serve the one
    // furthest behind its weighted share.
    FlowQueue* best = nullptr;
    for (auto& [k, q] : queues_) {
      if (q.packets.empty()) continue;
      if (!best || q.served / q.weight < best->served / best->weight)
        best = &q;
    }
    if (!best) {
      busy_ = false;
      return;
    }
    busy_ = true;
    const Packet p = best->packets.front();
    const bool rx = best->rx;
    best->packets.pop_front();
    best->served += 1.0;
    sim_.schedule_in(service_time_, [this, p, rx] {
      sink_(p, rx);
      start_next();
    });
  }

  Simulator& sim_;
  double service_time_;
  double rx_weight_;
  Sink sink_;
  std::map<long, FlowQueue> queues_;
  bool busy_ = false;
};

struct FlowState {
  topo::NodeId src = 0;
  topo::NodeId dst = 0;
  long total_packets = 0;
  long injected = 0;
  long delivered = 0;
  long acked = 0;      // window mode
  long in_network = 0; // credit mode
  double next_pace = 0.0;
  double cwnd = 4.0;   // window mode: packets, ramps to window_packets
  double finish = -1.0;
  bool intra_node = false;
};

class PacketSim {
 public:
  PacketSim(const graph::CommGraph& graph, const PacketSimConfig& config)
      : graph_(graph), cfg_(config) {
    const auto& cal = cfg_.cal;
    ser_link_ = cal.mtu / cal.link_bandwidth;
    ser_io_ = cal.mtu / (cal.link_bandwidth * cal.host_duplex_factor);
    pace_ = cal.mtu / (cal.link_bandwidth * cal.single_stream_efficiency);

    flows_.resize(static_cast<size_t>(graph.size()));
    std::map<topo::NodeId, int> tx_count;
    std::map<topo::NodeId, int> rx_count;
    for (graph::CommId i = 0; i < graph.size(); ++i) {
      auto& f = flows_[static_cast<size_t>(i)];
      const auto& c = graph.comm(i);
      f.src = c.src;
      f.dst = c.dst;
      f.intra_node = graph.is_intra_node(i);
      f.total_packets =
          std::max<long>(1, static_cast<long>((c.bytes + cal.mtu - 1.0) /
                                              cal.mtu));
      if (!f.intra_node) {
        ++tx_count[c.src];
        ++rx_count[c.dst];
      }
    }
    // Duplex saturation per host (same gate as the fluid substrate): the IO
    // engine throttles to duplex_factor x link only under heavy
    // bidirectional load; otherwise it runs non-binding at 2 x link.
    for (const auto& [node, tx] : tx_count) {
      const auto rx_it = rx_count.find(node);
      if (rx_it != rx_count.end() && tx + rx_it->second >= 4)
        duplex_saturated_[node] = true;
    }
  }

  std::vector<double> run() {
    for (graph::CommId i = 0; i < graph_.size(); ++i) try_inject(i);
    size_t events = sim_.run();
    BWS_CHECK(events < cfg_.max_events, "packet simulation exceeded max_events");

    std::vector<double> times(flows_.size());
    for (size_t i = 0; i < flows_.size(); ++i) {
      BWS_ASSERT(flows_[i].finish >= 0.0, "flow did not complete");
      times[i] = flows_[i].finish + cfg_.cal.latency;
    }
    return times;
  }

 private:
  FifoServer& uplink(topo::NodeId node) {
    auto it = uplinks_.find(node);
    if (it == uplinks_.end()) {
      it = uplinks_
               .emplace(node, std::make_unique<FifoServer>(
                                  sim_, ser_link_,
                                  [this](Packet p) { after_uplink(p); }))
               .first;
    }
    return *it->second;
  }

  FifoServer& downlink(topo::NodeId node) {
    auto it = downlinks_.find(node);
    if (it == downlinks_.end()) {
      it = downlinks_
               .emplace(node, std::make_unique<FifoServer>(
                                  sim_, ser_link_,
                                  [this](Packet p) { after_downlink(p); }))
               .first;
    }
    return *it->second;
  }

  HostIoServer& host_io(topo::NodeId node) {
    auto it = host_io_.find(node);
    if (it == host_io_.end()) {
      const bool saturated = duplex_saturated_.count(node) != 0;
      const double ser =
          saturated ? ser_io_
                    : cfg_.cal.mtu / (2.0 * cfg_.cal.link_bandwidth);
      const double rx_weight = saturated ? cfg_.cal.rx_bus_weight : 1.0;
      it = host_io_
               .emplace(node, std::make_unique<HostIoServer>(
                                  sim_, ser, rx_weight,
                                  [this](Packet p, bool rx) {
                                    after_host_io(p, rx);
                                  }))
               .first;
    }
    return *it->second;
  }

  [[nodiscard]] bool may_inject(const FlowState& f) const {
    if (f.injected >= f.total_packets) return false;
    if (f.intra_node) return true;  // no network flow control applies
    switch (cfg_.cal.flow_control) {
      case FlowControlKind::kTcpPauseFrames:
        return f.injected - f.acked < static_cast<long>(f.cwnd);
      case FlowControlKind::kStopAndGo:
        return f.injected - f.delivered < 4;  // shallow NIC pipeline
      case FlowControlKind::kCreditBased:
        return f.in_network < cfg_.credits;
    }
    return false;
  }

  void try_inject(int flow_id) {
    auto& f = flows_[static_cast<size_t>(flow_id)];
    if (f.injected >= f.total_packets || pending_inject_[flow_id]) return;
    if (!may_inject(f)) return;

    const double when = std::max(sim_.now(), f.next_pace);
    if (f.intra_node) {
      // Shared-memory copy: paced at the shm bandwidth, no network stages.
      const double shm_pace = cfg_.cal.mtu / cfg_.cal.shm_bandwidth;
      pending_inject_[flow_id] = true;
      sim_.schedule_at(std::max(sim_.now(), f.next_pace), [this, flow_id,
                                                           shm_pace] {
        auto& fl = flows_[static_cast<size_t>(flow_id)];
        pending_inject_[flow_id] = false;
        ++fl.injected;
        fl.next_pace = sim_.now() + shm_pace;
        sim_.schedule_in(shm_pace, [this, flow_id] { deliver(flow_id); });
        try_inject(flow_id);
      });
      return;
    }

    // All modes: injection passes the source host IO engine first (NIC DMA),
    // then the mode-specific network stage.
    pending_inject_[flow_id] = true;
    sim_.schedule_at(when, [this, flow_id] {
      auto& fl = flows_[static_cast<size_t>(flow_id)];
      pending_inject_[flow_id] = false;
      ++fl.injected;
      ++fl.in_network;
      fl.next_pace = sim_.now() + pace_;
      Packet p{flow_id, fl.injected == fl.total_packets};
      host_io(fl.src).push(p, /*rx=*/false);
      try_inject(flow_id);
    });
  }

  // Path: src host IO -> (uplink -> downlink | wormhole path) -> dst host IO.
  void after_host_io(Packet p, bool rx) {
    auto& f = flows_[static_cast<size_t>(p.flow)];
    if (!rx) {
      if (cfg_.cal.flow_control == FlowControlKind::kStopAndGo) {
        wormhole_waiting_.push_back(p);
        pump_wormhole();
      } else {
        uplink(f.src).push(p);
      }
    } else {
      deliver(p.flow);
    }
  }

  void after_uplink(Packet p) {
    auto& f = flows_[static_cast<size_t>(p.flow)];
    downlink(f.dst).push(p);
  }

  void after_downlink(Packet p) {
    auto& f = flows_[static_cast<size_t>(p.flow)];
    if (cfg_.cal.flow_control == FlowControlKind::kCreditBased) {
      // Credit returns to the sender one propagation delay later.
      sim_.schedule_in(cfg_.cal.latency, [this, flow = p.flow] {
        --flows_[static_cast<size_t>(flow)].in_network;
        try_inject(flow);
      });
    }
    host_io(f.dst).push(p, /*rx=*/true);
  }

  // Wormhole engine: grant the path (uplink+downlink) to the first waiting
  // packet whose links are both free; blocked packets wait (Stop state).
  void pump_wormhole() {
    for (auto it = wormhole_waiting_.begin(); it != wormhole_waiting_.end();) {
      const Packet p = *it;
      auto& f = flows_[static_cast<size_t>(p.flow)];
      if (link_busy_[f.src * 2] || link_busy_[f.dst * 2 + 1]) {
        ++it;
        continue;
      }
      it = wormhole_waiting_.erase(it);
      link_busy_[f.src * 2] = true;
      link_busy_[f.dst * 2 + 1] = true;
      // Cut-through: one serialization across the whole path.
      sim_.schedule_in(ser_link_, [this, p] {
        auto& fl = flows_[static_cast<size_t>(p.flow)];
        link_busy_[fl.src * 2] = false;
        link_busy_[fl.dst * 2 + 1] = false;
        host_io(fl.dst).push(p, /*rx=*/true);
        pump_wormhole();
      });
    }
  }

  void deliver(int flow_id) {
    auto& f = flows_[static_cast<size_t>(flow_id)];
    ++f.delivered;
    if (cfg_.cal.flow_control == FlowControlKind::kTcpPauseFrames &&
        !f.intra_node) {
      // ACK after one propagation delay opens the window (and grows cwnd).
      sim_.schedule_in(cfg_.cal.latency, [this, flow_id] {
        auto& fl = flows_[static_cast<size_t>(flow_id)];
        ++fl.acked;
        fl.cwnd = std::min<double>(cfg_.window_packets, fl.cwnd + 1.0);
        try_inject(flow_id);
      });
    }
    if (f.delivered == f.total_packets) {
      f.finish = sim_.now();
    } else {
      // Delivery may reopen the Stop&Go pipeline (and never hurts others).
      try_inject(flow_id);
    }
  }

  const graph::CommGraph& graph_;
  PacketSimConfig cfg_;
  Simulator sim_;
  double ser_link_ = 0.0;
  double ser_io_ = 0.0;
  double pace_ = 0.0;
  std::vector<FlowState> flows_;
  std::map<topo::NodeId, std::unique_ptr<FifoServer>> uplinks_;
  std::map<topo::NodeId, std::unique_ptr<FifoServer>> downlinks_;
  std::map<topo::NodeId, std::unique_ptr<HostIoServer>> host_io_;
  std::map<int, bool> pending_inject_;
  std::map<int, bool> link_busy_;  // node*2 = uplink, node*2+1 = downlink
  std::map<topo::NodeId, bool> duplex_saturated_;
  std::deque<Packet> wormhole_waiting_;
};

}  // namespace

std::vector<double> measure_scheme_packet(const graph::CommGraph& graph,
                                          const PacketSimConfig& config) {
  BWS_CHECK(config.cal.link_bandwidth > 0.0, "link bandwidth must be set");
  BWS_CHECK(config.window_packets > 0, "window must be positive");
  BWS_CHECK(config.credits > 0, "credits must be positive");
  if (graph.empty()) return {};
  PacketSim sim(graph, config);
  return sim.run();
}

std::vector<double> measure_penalties_packet(const graph::CommGraph& graph,
                                             const PacketSimConfig& config) {
  const auto times = measure_scheme_packet(graph, config);
  std::vector<double> penalties(times.size(), 1.0);
  for (graph::CommId i = 0; i < graph.size(); ++i) {
    const auto& c = graph.comm(i);
    const double t_ref = graph.is_intra_node(i)
                             ? config.cal.latency + c.bytes / config.cal.shm_bandwidth
                             : config.cal.reference_time(c.bytes);
    penalties[static_cast<size_t>(i)] = times[static_cast<size_t>(i)] / t_ref;
  }
  return penalties;
}

}  // namespace bwshare::flowsim
