#include "flowsim/fluid_network.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <unordered_map>

#include "util/error.hpp"

namespace bwshare::flowsim {

std::vector<double> RateProvider::rates(
    const graph::CommGraph& active,
    std::span<const graph::CommId> subset) const {
  // Safe default for providers without a restricted solver: solve the full
  // graph and project. Always exact, never faster.
  const auto all = rates(active);
  std::vector<double> out;
  out.reserve(subset.size());
  for (const graph::CommId id : subset) {
    BWS_CHECK(id >= 0 && id < active.size(), "subset comm id out of range");
    out.push_back(all[static_cast<size_t>(id)]);
  }
  return out;
}

void RateProvider::rates_into(const graph::CommGraph& active,
                              util::Arena& /*scratch*/,
                              std::span<double> out) const {
  // Safe default: the allocating full solve, copied out. Providers on the
  // engine's hot path override this with an arena-native implementation.
  const auto all = rates(active);
  BWS_CHECK(out.size() == all.size(), "rates_into output span size mismatch");
  std::copy(all.begin(), all.end(), out.begin());
}

std::vector<int> RateProvider::coupling_keys(topo::NodeId /*src*/,
                                             topo::NodeId /*dst*/) const {
  return {};
}

bool RateProvider::covers_all(std::span<const graph::CommId> subset,
                              int size) {
  if (static_cast<int>(subset.size()) != size) return false;
  for (size_t k = 0; k < subset.size(); ++k)
    if (subset[k] != static_cast<graph::CommId>(k)) return false;
  return true;
}

std::vector<graph::CommId> RateProvider::coupling_closure(
    const graph::CommGraph& active,
    std::span<const graph::CommId> subset) const {
  const int n = active.size();
  util::Arena& arena = util::Arena::thread_local_instance();
  util::Arena::Frame frame(arena);

  // Node incidence as sorted-bucket arrays in the arena (the former
  // unordered_map<NodeId, vector> table). Intra-node comms contribute their
  // node once, matching the previous dedup of src == dst.
  auto node_buf =
      arena.make_span_uninit<topo::NodeId>(2 * static_cast<size_t>(n));
  size_t nn = 0;
  for (graph::CommId i = 0; i < n; ++i) {
    const auto& c = active.comm(i);
    node_buf[nn++] = c.src;
    if (c.dst != c.src) node_buf[nn++] = c.dst;
  }
  std::sort(node_buf.begin(), node_buf.begin() + nn);
  const size_t m = static_cast<size_t>(
      std::unique(node_buf.begin(), node_buf.begin() + nn) - node_buf.begin());
  const auto nodes = node_buf.first(m);
  const auto node_idx = [&](topo::NodeId v) {
    return static_cast<size_t>(
        std::lower_bound(nodes.begin(), nodes.end(), v) - nodes.begin());
  };
  auto node_off = arena.make_span<int>(m + 1);
  for (graph::CommId i = 0; i < n; ++i) {
    const auto& c = active.comm(i);
    ++node_off[node_idx(c.src) + 1];
    if (c.dst != c.src) ++node_off[node_idx(c.dst) + 1];
  }
  for (size_t k = 0; k < m; ++k) node_off[k + 1] += node_off[k];
  auto at_node = arena.make_span_uninit<graph::CommId>(nn);
  {
    auto cur = arena.make_span_uninit<int>(m);
    std::copy(node_off.begin(), node_off.begin() + static_cast<long>(m),
              cur.begin());
    for (graph::CommId i = 0; i < n; ++i) {
      const auto& c = active.comm(i);
      at_node[static_cast<size_t>(cur[node_idx(c.src)]++)] = i;
      if (c.dst != c.src)
        at_node[static_cast<size_t>(cur[node_idx(c.dst)]++)] = i;
    }
  }

  // Per-comm coupling keys, flattened. coupling_keys is a virtual returning
  // a vector — the one allocation this path keeps; the incidence table over
  // the keys is arena-backed (sorted (key, comm) pairs, grouped by key).
  struct KeyUse {
    int key;
    graph::CommId comm;
    bool operator<(const KeyUse& o) const {
      return key != o.key ? key < o.key : comm < o.comm;
    }
  };
  std::vector<KeyUse> key_uses;
  auto key_off = arena.make_span<int>(static_cast<size_t>(n) + 1);
  for (graph::CommId i = 0; i < n; ++i) {
    const auto& c = active.comm(i);
    for (const int k : coupling_keys(c.src, c.dst))
      key_uses.push_back({k, i});
    key_off[static_cast<size_t>(i) + 1] = static_cast<int>(key_uses.size());
  }
  // key_uses is in comm order here: [key_off[i], key_off[i+1]) are comm i's
  // keys. Keep that view and sort an arena copy into key-grouped order.
  auto by_key = arena.make_span_uninit<KeyUse>(key_uses.size());
  std::copy(key_uses.begin(), key_uses.end(), by_key.begin());
  std::sort(by_key.begin(), by_key.end());
  const auto key_bucket = [&](int key) {
    const auto lo = std::lower_bound(
        by_key.begin(), by_key.end(),
        KeyUse{key, std::numeric_limits<graph::CommId>::min()});
    auto hi = lo;
    while (hi != by_key.end() && hi->key == key) ++hi;
    return std::span<const KeyUse>{lo, hi};
  };

  auto in = arena.make_span<char>(static_cast<size_t>(n));
  auto stack = arena.make_span_uninit<graph::CommId>(static_cast<size_t>(n));
  size_t top = 0;
  for (const graph::CommId id : subset) {
    BWS_CHECK(id >= 0 && id < n, "subset comm id out of range");
    if (!in[static_cast<size_t>(id)]) {
      in[static_cast<size_t>(id)] = 1;
      stack[top++] = id;
    }
  }
  while (top > 0) {
    const graph::CommId i = stack[--top];
    const auto visit = [&](graph::CommId j) {
      if (in[static_cast<size_t>(j)]) return;
      in[static_cast<size_t>(j)] = 1;
      stack[top++] = j;
    };
    const auto& c = active.comm(i);
    const size_t s = node_idx(c.src);
    for (int p = node_off[s]; p < node_off[s + 1]; ++p)
      visit(at_node[static_cast<size_t>(p)]);
    if (c.dst != c.src) {
      const size_t d = node_idx(c.dst);
      for (int p = node_off[d]; p < node_off[d + 1]; ++p)
        visit(at_node[static_cast<size_t>(p)]);
    }
    for (int p = key_off[static_cast<size_t>(i)];
         p < key_off[static_cast<size_t>(i) + 1]; ++p)
      for (const KeyUse& u : key_bucket(key_uses[static_cast<size_t>(p)].key))
        visit(u.comm);
  }

  std::vector<graph::CommId> closed;
  for (graph::CommId i = 0; i < n; ++i)
    if (in[static_cast<size_t>(i)]) closed.push_back(i);
  return closed;
}

FluidRateProvider::FluidRateProvider(topo::NetworkCalibration cal,
                                     std::optional<topo::FatTree> topology)
    : cal_(cal), topology_(std::move(topology)) {
  BWS_CHECK(cal_.link_bandwidth > 0.0, "link bandwidth must be positive");
  BWS_CHECK(cal_.single_stream_efficiency > 0.0 &&
                cal_.single_stream_efficiency <= 1.0,
            "single-stream efficiency must be in (0,1]");
}

AllocationProblem FluidRateProvider::build_problem(
    const graph::CommGraph& active) const {
  const int n = active.size();
  const double link = cal_.link_bandwidth;

  AllocationProblem problem;
  problem.num_flows = n;
  problem.weights.assign(static_cast<size_t>(n), 1.0);
  problem.caps.assign(static_cast<size_t>(n), 0.0);

  // Group flows by endpoint. Keyed by node id; .first = TX members,
  // .second = RX members (network flows only).
  std::map<topo::NodeId, std::vector<FlowIndex>> tx_at;
  std::map<topo::NodeId, std::vector<FlowIndex>> rx_at;
  std::map<topo::NodeId, std::vector<FlowIndex>> shm_at;
  for (graph::CommId i = 0; i < n; ++i) {
    const auto& c = active.comm(i);
    if (active.is_intra_node(i)) {
      shm_at[c.src].push_back(i);
      problem.caps[static_cast<size_t>(i)] = cal_.shm_bandwidth;
      continue;
    }
    tx_at[c.src].push_back(i);
    rx_at[c.dst].push_back(i);
    problem.caps[static_cast<size_t>(i)] =
        link * cal_.single_stream_efficiency;
  }

  // Host duplex saturation: the NIC's DMA path degrades to ~duplex_factor x
  // link only under heavy bidirectional load — at least three flows with
  // both directions active (fig 2 scheme 5's income/outgo anomaly). Mild
  // bidirectional traffic (e.g. a ring, or 2 TX + 1 RX) runs at full duplex,
  // which is why the paper's same-direction conflict models stay accurate on
  // the fig-7 graphs.
  const auto duplex_saturated = [&](topo::NodeId node) {
    const auto tx_it = tx_at.find(node);
    const auto rx_it = rx_at.find(node);
    if (tx_it == tx_at.end() || rx_it == rx_at.end()) return false;
    const size_t tx_n = tx_it->second.size();
    const size_t rx_n = rx_it->second.size();
    return tx_n + rx_n >= 4 && tx_n >= 1 && rx_n >= 1;
  };

  // RX weighting: a receive flow entering a duplex-saturated host gets
  // priority on the shared bus (Stop&Go / credit FC favour the receive DMA
  // engine; see topo/network.hpp).
  for (const auto& [node, rx] : rx_at) {
    if (!duplex_saturated(node)) continue;
    for (FlowIndex f : rx)
      problem.weights[static_cast<size_t>(f)] = cal_.rx_bus_weight;
  }

  // Host TX link (one direction of the cable).
  for (const auto& [node, members] : tx_at)
    problem.resources.push_back(Resource{link, members});
  // Host RX link.
  for (const auto& [node, members] : rx_at)
    problem.resources.push_back(Resource{link, members});
  // Host duplex bus when saturated.
  for (const auto& [node, tx] : tx_at) {
    if (!duplex_saturated(node)) continue;
    Resource bus{link * cal_.host_duplex_factor, tx};
    const auto& rx = rx_at.at(node);
    bus.members.insert(bus.members.end(), rx.begin(), rx.end());
    problem.resources.push_back(std::move(bus));
  }
  // Shared-memory engine per node for intra-node copies.
  for (const auto& [node, members] : shm_at)
    problem.resources.push_back(Resource{cal_.shm_bandwidth, members});

  // Fat-tree inner links, when a topology is attached.
  if (topology_) {
    std::map<topo::LinkId, std::vector<FlowIndex>> on_link;
    for (graph::CommId i = 0; i < n; ++i) {
      if (active.is_intra_node(i)) continue;
      const auto& c = active.comm(i);
      for (topo::LinkId l : topology_->route(c.src, c.dst)) {
        // Host up/down links are already modelled above; only inner links
        // add information.
        if (l == topology_->host_uplink(c.src) ||
            l == topology_->host_downlink(c.dst))
          continue;
        on_link[l].push_back(i);
      }
    }
    for (const auto& [l, members] : on_link)
      problem.resources.push_back(
          Resource{topology_->link(l).capacity, members});
  }

  return problem;
}

std::vector<double> FluidRateProvider::rates(
    const graph::CommGraph& active) const {
  std::vector<double> out(static_cast<size_t>(active.size()), 0.0);
  rates_into(active, util::Arena::thread_local_instance(), out);
  return out;
}

void FluidRateProvider::rates_into(const graph::CommGraph& active,
                                   util::Arena& scratch,
                                   std::span<double> out) const {
  const int n = active.size();
  BWS_CHECK(out.size() == static_cast<size_t>(n),
            "rates_into output span size mismatch");
  if (n == 0) return;
  util::Arena::Frame frame(scratch);
  const double link = cal_.link_bandwidth;

  auto weights = scratch.make_span_uninit<double>(static_cast<size_t>(n));
  std::fill(weights.begin(), weights.end(), 1.0);
  auto caps = scratch.make_span_uninit<double>(static_cast<size_t>(n));
  auto intra = scratch.make_span_uninit<char>(static_cast<size_t>(n));

  // Sorted-unique endpoint node table — the arena stand-in for the three
  // std::map<NodeId, vector<FlowIndex>> incidence maps of build_problem().
  // Iterating node indices ascending reproduces the maps' ascending-key
  // order exactly, which pins the resource ordering (and thus bitwise
  // results) to the vector path.
  auto node_buf =
      scratch.make_span_uninit<topo::NodeId>(2 * static_cast<size_t>(n));
  size_t nn = 0;
  for (graph::CommId i = 0; i < n; ++i) {
    const auto& c = active.comm(i);
    intra[static_cast<size_t>(i)] = active.is_intra_node(i) ? 1 : 0;
    if (intra[static_cast<size_t>(i)]) {
      caps[static_cast<size_t>(i)] = cal_.shm_bandwidth;
      node_buf[nn++] = c.src;
    } else {
      caps[static_cast<size_t>(i)] = link * cal_.single_stream_efficiency;
      node_buf[nn++] = c.src;
      node_buf[nn++] = c.dst;
    }
  }
  std::sort(node_buf.begin(), node_buf.begin() + nn);
  const size_t m = static_cast<size_t>(
      std::unique(node_buf.begin(), node_buf.begin() + nn) - node_buf.begin());
  const auto nodes = node_buf.first(m);
  const auto node_idx = [&](topo::NodeId v) {
    return static_cast<size_t>(
        std::lower_bound(nodes.begin(), nodes.end(), v) - nodes.begin());
  };

  // Per-node member buckets (counts -> prefix offsets -> fill in comm order,
  // matching the push_back order of the map-based construction).
  auto tx_n = scratch.make_span<int>(m);
  auto rx_n = scratch.make_span<int>(m);
  auto shm_n = scratch.make_span<int>(m);
  for (graph::CommId i = 0; i < n; ++i) {
    const auto& c = active.comm(i);
    if (intra[static_cast<size_t>(i)]) {
      ++shm_n[node_idx(c.src)];
    } else {
      ++tx_n[node_idx(c.src)];
      ++rx_n[node_idx(c.dst)];
    }
  }
  auto tx_off = scratch.make_span_uninit<int>(m + 1);
  auto rx_off = scratch.make_span_uninit<int>(m + 1);
  auto shm_off = scratch.make_span_uninit<int>(m + 1);
  tx_off[0] = rx_off[0] = shm_off[0] = 0;
  for (size_t k = 0; k < m; ++k) {
    tx_off[k + 1] = tx_off[k] + tx_n[k];
    rx_off[k + 1] = rx_off[k] + rx_n[k];
    shm_off[k + 1] = shm_off[k] + shm_n[k];
  }
  auto tx_members =
      scratch.make_span_uninit<FlowIndex>(static_cast<size_t>(tx_off[m]));
  auto rx_members =
      scratch.make_span_uninit<FlowIndex>(static_cast<size_t>(rx_off[m]));
  auto shm_members =
      scratch.make_span_uninit<FlowIndex>(static_cast<size_t>(shm_off[m]));
  {
    auto tx_cur = scratch.make_span_uninit<int>(m);
    auto rx_cur = scratch.make_span_uninit<int>(m);
    auto shm_cur = scratch.make_span_uninit<int>(m);
    std::copy(tx_off.begin(), tx_off.begin() + static_cast<long>(m),
              tx_cur.begin());
    std::copy(rx_off.begin(), rx_off.begin() + static_cast<long>(m),
              rx_cur.begin());
    std::copy(shm_off.begin(), shm_off.begin() + static_cast<long>(m),
              shm_cur.begin());
    for (graph::CommId i = 0; i < n; ++i) {
      const auto& c = active.comm(i);
      if (intra[static_cast<size_t>(i)]) {
        shm_members[static_cast<size_t>(shm_cur[node_idx(c.src)]++)] = i;
      } else {
        tx_members[static_cast<size_t>(tx_cur[node_idx(c.src)]++)] = i;
        rx_members[static_cast<size_t>(rx_cur[node_idx(c.dst)]++)] = i;
      }
    }
  }
  const auto tx_bucket = [&](size_t k) {
    return std::span<const FlowIndex>(
        tx_members.data() + tx_off[k], static_cast<size_t>(tx_n[k]));
  };
  const auto rx_bucket = [&](size_t k) {
    return std::span<const FlowIndex>(
        rx_members.data() + rx_off[k], static_cast<size_t>(rx_n[k]));
  };

  // Host duplex saturation (see build_problem for the modelling rationale).
  auto sat = scratch.make_span_uninit<char>(m);
  for (size_t k = 0; k < m; ++k)
    sat[k] = (tx_n[k] >= 1 && rx_n[k] >= 1 && tx_n[k] + rx_n[k] >= 4) ? 1 : 0;

  // RX weighting at duplex-saturated hosts.
  for (size_t k = 0; k < m; ++k) {
    if (!(rx_n[k] > 0 && sat[k])) continue;
    for (const FlowIndex f : rx_bucket(k))
      weights[static_cast<size_t>(f)] = cal_.rx_bus_weight;
  }

  // Fat-tree inner links: (link, comm) pairs collected in comm order, then
  // sorted by (link, comm) — groups come out in ascending link id with
  // members in comm order, matching the std::map<LinkId, vector> ordering.
  struct LinkUse {
    topo::LinkId link;
    graph::CommId comm;
    bool operator<(const LinkUse& o) const {
      return link != o.link ? link < o.link : comm < o.comm;
    }
  };
  std::span<LinkUse> link_uses;
  size_t n_link_groups = 0;
  if (topology_) {
    auto pairs =
        scratch.make_span_uninit<LinkUse>(2 * static_cast<size_t>(n));
    size_t np = 0;
    for (graph::CommId i = 0; i < n; ++i) {
      if (intra[static_cast<size_t>(i)]) continue;
      const auto& c = active.comm(i);
      topo::LinkId inner[2];
      const int cnt = topology_->inner_links(c.src, c.dst, inner);
      for (int j = 0; j < cnt; ++j) pairs[np++] = {inner[j], i};
    }
    std::sort(pairs.begin(), pairs.begin() + np);
    link_uses = pairs.first(np);
    for (size_t p = 0; p < np; ++p)
      if (p == 0 || link_uses[p].link != link_uses[p - 1].link)
        ++n_link_groups;
  }

  // Resource table, in build_problem order: host TX per node, host RX per
  // node, duplex bus at saturated nodes, shm engine per node, inner links.
  size_t n_res = n_link_groups;
  size_t dup_total = 0;
  for (size_t k = 0; k < m; ++k) {
    if (tx_n[k] > 0) ++n_res;
    if (rx_n[k] > 0) ++n_res;
    if (tx_n[k] > 0 && sat[k]) {
      ++n_res;
      dup_total += static_cast<size_t>(tx_n[k] + rx_n[k]);
    }
    if (shm_n[k] > 0) ++n_res;
  }
  auto resources = scratch.make_span<ResourceView>(n_res);
  auto dup_buf = scratch.make_span_uninit<FlowIndex>(dup_total);
  size_t res_at = 0;
  size_t dup_at = 0;
  for (size_t k = 0; k < m; ++k)
    if (tx_n[k] > 0) resources[res_at++] = {link, tx_bucket(k)};
  for (size_t k = 0; k < m; ++k)
    if (rx_n[k] > 0) resources[res_at++] = {link, rx_bucket(k)};
  for (size_t k = 0; k < m; ++k) {
    if (!(tx_n[k] > 0 && sat[k])) continue;
    FlowIndex* const base = dup_buf.data() + dup_at;
    for (const FlowIndex f : tx_bucket(k)) dup_buf[dup_at++] = f;
    for (const FlowIndex f : rx_bucket(k)) dup_buf[dup_at++] = f;
    resources[res_at++] = {
        link * cal_.host_duplex_factor,
        std::span<const FlowIndex>(
            base, static_cast<size_t>(tx_n[k] + rx_n[k]))};
  }
  for (size_t k = 0; k < m; ++k)
    if (shm_n[k] > 0)
      resources[res_at++] = {
          cal_.shm_bandwidth,
          std::span<const FlowIndex>(
              shm_members.data() + shm_off[k], static_cast<size_t>(shm_n[k]))};
  for (size_t p = 0; p < link_uses.size();) {
    const topo::LinkId l = link_uses[p].link;
    size_t q = p;
    while (q < link_uses.size() && link_uses[q].link == l) ++q;
    // The pair run is strided (link, comm) — compact the comms into a
    // contiguous member span.
    auto members = scratch.make_span_uninit<FlowIndex>(q - p);
    for (size_t r = p; r < q; ++r) members[r - p] = link_uses[r].comm;
    resources[res_at++] = {topology_->link(l).capacity, members};
    p = q;
  }
  BWS_ASSERT(res_at == n_res, "resource table fill mismatch");

  AllocationProblemView view;
  view.num_flows = n;
  view.weights = weights;
  view.caps = caps;
  view.resources = resources;
  max_min_rates_into(view, scratch, out);
}

std::vector<int> FluidRateProvider::coupling_keys(topo::NodeId src,
                                                  topo::NodeId dst) const {
  if (!topology_ || src == dst) return {};
  std::vector<int> keys;
  for (const topo::LinkId l : topology_->route(src, dst)) {
    if (l == topology_->host_uplink(src) || l == topology_->host_downlink(dst))
      continue;
    keys.push_back(l);
  }
  return keys;
}

std::vector<double> FluidRateProvider::rates(
    const graph::CommGraph& active,
    std::span<const graph::CommId> subset) const {
  if (subset.empty()) return {};
  // Common fast path (the engine hands us a self-contained component
  // graph): no induction needed.
  if (covers_all(subset, active.size())) return rates(active);

  // Expand to the coupling closure — shared endpoints, plus shared fat-tree
  // inner links when a topology is attached (via coupling_keys) — solve the
  // closed set in isolation, and project back. Never ignore a shared link.
  const auto closed = coupling_closure(active, subset);
  std::vector<size_t> pos_of(static_cast<size_t>(active.size()), 0);
  for (size_t p = 0; p < closed.size(); ++p)
    pos_of[static_cast<size_t>(closed[p])] = p;
  const auto closed_rates = rates(graph::induced_subgraph(active, closed));
  std::vector<double> out;
  out.reserve(subset.size());
  for (const graph::CommId id : subset)
    out.push_back(closed_rates[pos_of[static_cast<size_t>(id)]]);
  return out;
}

std::vector<double> measure_scheme(const graph::CommGraph& graph,
                                   const RateProvider& provider,
                                   double latency) {
  const int n = graph.size();
  std::vector<double> finish(static_cast<size_t>(n), 0.0);
  if (n == 0) return finish;

  std::vector<double> remaining(static_cast<size_t>(n));
  std::vector<bool> done(static_cast<size_t>(n), false);
  for (graph::CommId i = 0; i < n; ++i)
    remaining[static_cast<size_t>(i)] = graph.comm(i).bytes;

  double now = 0.0;
  int active_count = n;
  while (active_count > 0) {
    // Rebuild the active sub-graph (original labels preserved so debugging
    // output stays readable).
    graph::CommGraph active;
    std::vector<graph::CommId> index;  // active id -> original id
    for (graph::CommId i = 0; i < n; ++i) {
      if (done[static_cast<size_t>(i)]) continue;
      const auto& c = graph.comm(i);
      const std::string_view lbl = graph.label(i);
      if (lbl.empty())
        active.add(c.src, c.dst, remaining[static_cast<size_t>(i)]);
      else
        active.add(std::string(lbl), c.src, c.dst,
                   remaining[static_cast<size_t>(i)]);
      index.push_back(i);
    }
    const auto rates = provider.rates(active);
    BWS_ASSERT(rates.size() == index.size(), "rate provider size mismatch");

    // Next completion.
    double dt = std::numeric_limits<double>::infinity();
    for (size_t k = 0; k < index.size(); ++k) {
      BWS_CHECK(rates[k] > 0.0, "active communication got zero rate");
      dt = std::min(dt, remaining[static_cast<size_t>(index[k])] / rates[k]);
    }
    now += dt;
    for (size_t k = 0; k < index.size(); ++k) {
      const graph::CommId i = index[k];
      remaining[static_cast<size_t>(i)] -= rates[k] * dt;
      if (remaining[static_cast<size_t>(i)] <= 1e-6) {
        done[static_cast<size_t>(i)] = true;
        finish[static_cast<size_t>(i)] = now + latency;
        --active_count;
      }
    }
  }
  return finish;
}

std::vector<double> measure_scheme_fluid(const graph::CommGraph& graph,
                                         const topo::NetworkCalibration& cal) {
  const FluidRateProvider provider(cal);
  return measure_scheme(graph, provider, cal.latency);
}

std::vector<double> measure_penalties(const graph::CommGraph& graph,
                                      const topo::NetworkCalibration& cal) {
  const auto times = measure_scheme_fluid(graph, cal);
  std::vector<double> penalties(times.size(), 1.0);
  for (graph::CommId i = 0; i < graph.size(); ++i) {
    const auto& c = graph.comm(i);
    const double t_ref = graph.is_intra_node(i)
                             ? cal.latency + c.bytes / cal.shm_bandwidth
                             : cal.reference_time(c.bytes);
    penalties[static_cast<size_t>(i)] = times[static_cast<size_t>(i)] / t_ref;
  }
  return penalties;
}

std::vector<double> saturated_penalties(const graph::CommGraph& graph,
                                        const topo::NetworkCalibration& cal) {
  const FluidRateProvider provider(cal);
  const auto rates = provider.rates(graph);
  std::vector<double> penalties(rates.size(), 1.0);
  for (graph::CommId i = 0; i < graph.size(); ++i) {
    const double ref = graph.is_intra_node(i) ? cal.shm_bandwidth
                                              : cal.reference_bandwidth();
    penalties[static_cast<size_t>(i)] = ref / rates[static_cast<size_t>(i)];
  }
  return penalties;
}

}  // namespace bwshare::flowsim
