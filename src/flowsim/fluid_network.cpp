#include "flowsim/fluid_network.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <unordered_map>

#include "util/error.hpp"

namespace bwshare::flowsim {

std::vector<double> RateProvider::rates(
    const graph::CommGraph& active,
    std::span<const graph::CommId> subset) const {
  // Safe default for providers without a restricted solver: solve the full
  // graph and project. Always exact, never faster.
  const auto all = rates(active);
  std::vector<double> out;
  out.reserve(subset.size());
  for (const graph::CommId id : subset) {
    BWS_CHECK(id >= 0 && id < active.size(), "subset comm id out of range");
    out.push_back(all[static_cast<size_t>(id)]);
  }
  return out;
}

std::vector<int> RateProvider::coupling_keys(topo::NodeId /*src*/,
                                             topo::NodeId /*dst*/) const {
  return {};
}

bool RateProvider::covers_all(std::span<const graph::CommId> subset,
                              int size) {
  if (static_cast<int>(subset.size()) != size) return false;
  for (size_t k = 0; k < subset.size(); ++k)
    if (subset[k] != static_cast<graph::CommId>(k)) return false;
  return true;
}

std::vector<graph::CommId> RateProvider::coupling_closure(
    const graph::CommGraph& active,
    std::span<const graph::CommId> subset) const {
  const int n = active.size();
  std::unordered_map<topo::NodeId, std::vector<graph::CommId>> at_node;
  std::unordered_map<int, std::vector<graph::CommId>> at_key;
  std::vector<std::vector<int>> keys(static_cast<size_t>(n));
  for (graph::CommId i = 0; i < n; ++i) {
    const auto& c = active.comm(i);
    at_node[c.src].push_back(i);
    if (c.dst != c.src) at_node[c.dst].push_back(i);
    keys[static_cast<size_t>(i)] = coupling_keys(c.src, c.dst);
    for (const int k : keys[static_cast<size_t>(i)]) at_key[k].push_back(i);
  }

  std::vector<char> in(static_cast<size_t>(n), 0);
  std::vector<graph::CommId> stack;
  for (const graph::CommId id : subset) {
    BWS_CHECK(id >= 0 && id < n, "subset comm id out of range");
    if (!in[static_cast<size_t>(id)]) {
      in[static_cast<size_t>(id)] = 1;
      stack.push_back(id);
    }
  }
  while (!stack.empty()) {
    const graph::CommId i = stack.back();
    stack.pop_back();
    const auto visit = [&](const std::vector<graph::CommId>& coupled) {
      for (const graph::CommId j : coupled) {
        if (in[static_cast<size_t>(j)]) continue;
        in[static_cast<size_t>(j)] = 1;
        stack.push_back(j);
      }
    };
    const auto& c = active.comm(i);
    visit(at_node.at(c.src));
    if (c.dst != c.src) visit(at_node.at(c.dst));
    for (const int k : keys[static_cast<size_t>(i)]) visit(at_key.at(k));
  }

  std::vector<graph::CommId> closed;
  for (graph::CommId i = 0; i < n; ++i)
    if (in[static_cast<size_t>(i)]) closed.push_back(i);
  return closed;
}

FluidRateProvider::FluidRateProvider(topo::NetworkCalibration cal,
                                     std::optional<topo::FatTree> topology)
    : cal_(cal), topology_(std::move(topology)) {
  BWS_CHECK(cal_.link_bandwidth > 0.0, "link bandwidth must be positive");
  BWS_CHECK(cal_.single_stream_efficiency > 0.0 &&
                cal_.single_stream_efficiency <= 1.0,
            "single-stream efficiency must be in (0,1]");
}

AllocationProblem FluidRateProvider::build_problem(
    const graph::CommGraph& active) const {
  const int n = active.size();
  const double link = cal_.link_bandwidth;

  AllocationProblem problem;
  problem.num_flows = n;
  problem.weights.assign(static_cast<size_t>(n), 1.0);
  problem.caps.assign(static_cast<size_t>(n), 0.0);

  // Group flows by endpoint. Keyed by node id; .first = TX members,
  // .second = RX members (network flows only).
  std::map<topo::NodeId, std::vector<FlowIndex>> tx_at;
  std::map<topo::NodeId, std::vector<FlowIndex>> rx_at;
  std::map<topo::NodeId, std::vector<FlowIndex>> shm_at;
  for (graph::CommId i = 0; i < n; ++i) {
    const auto& c = active.comm(i);
    if (active.is_intra_node(i)) {
      shm_at[c.src].push_back(i);
      problem.caps[static_cast<size_t>(i)] = cal_.shm_bandwidth;
      continue;
    }
    tx_at[c.src].push_back(i);
    rx_at[c.dst].push_back(i);
    problem.caps[static_cast<size_t>(i)] =
        link * cal_.single_stream_efficiency;
  }

  // Host duplex saturation: the NIC's DMA path degrades to ~duplex_factor x
  // link only under heavy bidirectional load — at least three flows with
  // both directions active (fig 2 scheme 5's income/outgo anomaly). Mild
  // bidirectional traffic (e.g. a ring, or 2 TX + 1 RX) runs at full duplex,
  // which is why the paper's same-direction conflict models stay accurate on
  // the fig-7 graphs.
  const auto duplex_saturated = [&](topo::NodeId node) {
    const auto tx_it = tx_at.find(node);
    const auto rx_it = rx_at.find(node);
    if (tx_it == tx_at.end() || rx_it == rx_at.end()) return false;
    const size_t tx_n = tx_it->second.size();
    const size_t rx_n = rx_it->second.size();
    return tx_n + rx_n >= 4 && tx_n >= 1 && rx_n >= 1;
  };

  // RX weighting: a receive flow entering a duplex-saturated host gets
  // priority on the shared bus (Stop&Go / credit FC favour the receive DMA
  // engine; see topo/network.hpp).
  for (const auto& [node, rx] : rx_at) {
    if (!duplex_saturated(node)) continue;
    for (FlowIndex f : rx)
      problem.weights[static_cast<size_t>(f)] = cal_.rx_bus_weight;
  }

  // Host TX link (one direction of the cable).
  for (const auto& [node, members] : tx_at)
    problem.resources.push_back(Resource{link, members});
  // Host RX link.
  for (const auto& [node, members] : rx_at)
    problem.resources.push_back(Resource{link, members});
  // Host duplex bus when saturated.
  for (const auto& [node, tx] : tx_at) {
    if (!duplex_saturated(node)) continue;
    Resource bus{link * cal_.host_duplex_factor, tx};
    const auto& rx = rx_at.at(node);
    bus.members.insert(bus.members.end(), rx.begin(), rx.end());
    problem.resources.push_back(std::move(bus));
  }
  // Shared-memory engine per node for intra-node copies.
  for (const auto& [node, members] : shm_at)
    problem.resources.push_back(Resource{cal_.shm_bandwidth, members});

  // Fat-tree inner links, when a topology is attached.
  if (topology_) {
    std::map<topo::LinkId, std::vector<FlowIndex>> on_link;
    for (graph::CommId i = 0; i < n; ++i) {
      if (active.is_intra_node(i)) continue;
      const auto& c = active.comm(i);
      for (topo::LinkId l : topology_->route(c.src, c.dst)) {
        // Host up/down links are already modelled above; only inner links
        // add information.
        if (l == topology_->host_uplink(c.src) ||
            l == topology_->host_downlink(c.dst))
          continue;
        on_link[l].push_back(i);
      }
    }
    for (const auto& [l, members] : on_link)
      problem.resources.push_back(
          Resource{topology_->link(l).capacity, members});
  }

  return problem;
}

std::vector<double> FluidRateProvider::rates(
    const graph::CommGraph& active) const {
  if (active.empty()) return {};
  return max_min_rates(build_problem(active));
}

std::vector<int> FluidRateProvider::coupling_keys(topo::NodeId src,
                                                  topo::NodeId dst) const {
  if (!topology_ || src == dst) return {};
  std::vector<int> keys;
  for (const topo::LinkId l : topology_->route(src, dst)) {
    if (l == topology_->host_uplink(src) || l == topology_->host_downlink(dst))
      continue;
    keys.push_back(l);
  }
  return keys;
}

std::vector<double> FluidRateProvider::rates(
    const graph::CommGraph& active,
    std::span<const graph::CommId> subset) const {
  if (subset.empty()) return {};
  // Common fast path (the engine hands us a self-contained component
  // graph): no induction needed.
  if (covers_all(subset, active.size())) return rates(active);

  // Expand to the coupling closure — shared endpoints, plus shared fat-tree
  // inner links when a topology is attached (via coupling_keys) — solve the
  // closed set in isolation, and project back. Never ignore a shared link.
  const auto closed = coupling_closure(active, subset);
  std::vector<size_t> pos_of(static_cast<size_t>(active.size()), 0);
  for (size_t p = 0; p < closed.size(); ++p)
    pos_of[static_cast<size_t>(closed[p])] = p;
  const auto closed_rates = rates(graph::induced_subgraph(active, closed));
  std::vector<double> out;
  out.reserve(subset.size());
  for (const graph::CommId id : subset)
    out.push_back(closed_rates[pos_of[static_cast<size_t>(id)]]);
  return out;
}

std::vector<double> measure_scheme(const graph::CommGraph& graph,
                                   const RateProvider& provider,
                                   double latency) {
  const int n = graph.size();
  std::vector<double> finish(static_cast<size_t>(n), 0.0);
  if (n == 0) return finish;

  std::vector<double> remaining(static_cast<size_t>(n));
  std::vector<bool> done(static_cast<size_t>(n), false);
  for (graph::CommId i = 0; i < n; ++i)
    remaining[static_cast<size_t>(i)] = graph.comm(i).bytes;

  double now = 0.0;
  int active_count = n;
  while (active_count > 0) {
    // Rebuild the active sub-graph (original labels preserved so debugging
    // output stays readable).
    graph::CommGraph active;
    std::vector<graph::CommId> index;  // active id -> original id
    for (graph::CommId i = 0; i < n; ++i) {
      if (done[static_cast<size_t>(i)]) continue;
      const auto& c = graph.comm(i);
      active.add(c.label, c.src, c.dst, remaining[static_cast<size_t>(i)]);
      index.push_back(i);
    }
    const auto rates = provider.rates(active);
    BWS_ASSERT(rates.size() == index.size(), "rate provider size mismatch");

    // Next completion.
    double dt = std::numeric_limits<double>::infinity();
    for (size_t k = 0; k < index.size(); ++k) {
      BWS_CHECK(rates[k] > 0.0, "active communication got zero rate");
      dt = std::min(dt, remaining[static_cast<size_t>(index[k])] / rates[k]);
    }
    now += dt;
    for (size_t k = 0; k < index.size(); ++k) {
      const graph::CommId i = index[k];
      remaining[static_cast<size_t>(i)] -= rates[k] * dt;
      if (remaining[static_cast<size_t>(i)] <= 1e-6) {
        done[static_cast<size_t>(i)] = true;
        finish[static_cast<size_t>(i)] = now + latency;
        --active_count;
      }
    }
  }
  return finish;
}

std::vector<double> measure_scheme_fluid(const graph::CommGraph& graph,
                                         const topo::NetworkCalibration& cal) {
  const FluidRateProvider provider(cal);
  return measure_scheme(graph, provider, cal.latency);
}

std::vector<double> measure_penalties(const graph::CommGraph& graph,
                                      const topo::NetworkCalibration& cal) {
  const auto times = measure_scheme_fluid(graph, cal);
  std::vector<double> penalties(times.size(), 1.0);
  for (graph::CommId i = 0; i < graph.size(); ++i) {
    const auto& c = graph.comm(i);
    const double t_ref = graph.is_intra_node(i)
                             ? cal.latency + c.bytes / cal.shm_bandwidth
                             : cal.reference_time(c.bytes);
    penalties[static_cast<size_t>(i)] = times[static_cast<size_t>(i)] / t_ref;
  }
  return penalties;
}

std::vector<double> saturated_penalties(const graph::CommGraph& graph,
                                        const topo::NetworkCalibration& cal) {
  const FluidRateProvider provider(cal);
  const auto rates = provider.rates(graph);
  std::vector<double> penalties(rates.size(), 1.0);
  for (graph::CommId i = 0; i < graph.size(); ++i) {
    const double ref = graph.is_intra_node(i) ? cal.shm_bandwidth
                                              : cal.reference_bandwidth();
    penalties[static_cast<size_t>(i)] = ref / rates[static_cast<size_t>(i)];
  }
  return penalties;
}

}  // namespace bwshare::flowsim
