// The fluid "measured" substrate: maps a communication graph onto a
// weighted max-min allocation problem shaped by the interconnect calibration
// (per-stream efficiency, duplex bus, RX weighting) and integrates flow
// completion over time.
//
// This plays the role of the paper's physical clusters: every experiment's
// "measured" times T_m come from here (or from the packet-level simulators
// in flowsim/packet.hpp, which agree with the fluid model within a few
// percent — see bench/abl_fluid_vs_packet).
//
// See docs/PERFORMANCE.md for the component-restricted solving contract
// (`rates(active, subset)` / `coupling_keys`) that the incremental
// sim::Engine builds on, and the invariants a subset must satisfy.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "flowsim/fluid.hpp"
#include "graph/comm_graph.hpp"
#include "topo/fattree.hpp"
#include "topo/network.hpp"
#include "util/arena.hpp"

namespace bwshare::flowsim {

/// Instantaneous rate oracle: given the set of concurrently active
/// communications (as a CommGraph over cluster nodes), return each one's
/// transfer rate in bytes/s. Implementations: FluidRateProvider (substrate
/// ground truth) and sim::ModelRateProvider (the paper's predictive models).
///
/// Reentrancy contract: every entry point is const and must be *logically*
/// const — no mutable members, no static or global scratch, no caching.
/// sim::Engine's parallel flush (EngineConfig::solve == kParallel) calls
/// rates(active, subset) concurrently from several pool threads, one call
/// per disjoint component, against the same provider instance. Concurrent
/// calls over disjoint subsets must behave as if run one after another —
/// which const purity gives for free. The in-tree providers satisfy this by
/// construction (all solver state lives on the calling thread's stack);
/// new implementations must preserve it, or kParallel replays race. The
/// TSan CI job exercises exactly this path.
class RateProvider {
 public:
  virtual ~RateProvider() = default;
  [[nodiscard]] virtual std::vector<double> rates(
      const graph::CommGraph& active) const = 0;

  /// Allocation-free entry point for the engine's steady state: rates for the
  /// whole of `active`, written into `out` (size == active.size()), with all
  /// transient solver state drawn from `scratch` (typically the calling
  /// thread's util::Arena::thread_local_instance()). Bit-identical to
  /// rates(active). The base default forwards to rates(active) and copies —
  /// correct for any provider, but it allocates; providers on the hot path
  /// override it (FluidRateProvider builds the max-min problem entirely in
  /// the arena). The reentrancy contract above applies unchanged: the arena
  /// is caller-owned per-thread state, not provider state.
  virtual void rates_into(const graph::CommGraph& active, util::Arena& scratch,
                          std::span<double> out) const;

  /// Component-restricted entry point: rates for `subset` only (returned in
  /// subset order), always equal to the corresponding entries of
  /// rates(active). A restricted solve is exact when the solved set is
  /// closed under shared endpoints — every communication of `active` that
  /// shares a node with a member is itself a member — and under any extra
  /// coupling the provider declares via coupling_keys(); implementations
  /// therefore expand `subset` to its coupling closure before solving
  /// (a no-op for the already-closed components the simulator hands in).
  /// The base default solves the full graph and projects. See
  /// docs/PERFORMANCE.md.
  [[nodiscard]] virtual std::vector<double> rates(
      const graph::CommGraph& active,
      std::span<const graph::CommId> subset) const;

  /// Opaque keys of shared resources beyond the two endpoint hosts that a
  /// src -> dst communication would occupy (e.g. fat-tree inner links). Two
  /// communications whose key sets intersect must be solved in the same
  /// component even when they share no endpoint. The default declares no
  /// extra coupling.
  [[nodiscard]] virtual std::vector<int> coupling_keys(
      topo::NodeId src, topo::NodeId dst) const;

 protected:
  /// True when `subset` is exactly 0..size-1 — the engine's common case,
  /// where a restricted solve needs no induction at all.
  [[nodiscard]] static bool covers_all(std::span<const graph::CommId> subset,
                                       int size);

  /// Smallest superset of `subset` closed under shared endpoints and shared
  /// coupling_keys() within `active`, in ascending comm-id order (BFS over
  /// node/key incidence, O(comms + keys)). Solving the closure in isolation
  /// is exact, so restricted entry points expand first and project back.
  [[nodiscard]] std::vector<graph::CommId> coupling_closure(
      const graph::CommGraph& active,
      std::span<const graph::CommId> subset) const;
};

/// Max-min fluid rates under a network calibration, optionally constrained
/// by a fat-tree topology's inner links.
class FluidRateProvider final : public RateProvider {
 public:
  explicit FluidRateProvider(topo::NetworkCalibration cal,
                             std::optional<topo::FatTree> topology = {});

  [[nodiscard]] std::vector<double> rates(
      const graph::CommGraph& active) const override;

  /// Arena-backed full-graph solve: the incidence buckets, member lists,
  /// weights/caps and the max-min solver's own scratch all live in `scratch`;
  /// after arena warm-up a call makes zero global allocations (the vector
  /// rates() overloads are wrappers over this). Resource construction order
  /// replicates build_problem() exactly (ascending node id, then ascending
  /// inner-link id), so results are bitwise equal to the vector path.
  void rates_into(const graph::CommGraph& active, util::Arena& scratch,
                  std::span<double> out) const override;

  /// Solves the induced subproblem of `subset`'s coupling closure and
  /// projects back. With an attached fat-tree topology the closure also
  /// merges components coupled through shared inner links (coupling_keys),
  /// so a restricted solve never silently ignores a shared link.
  [[nodiscard]] std::vector<double> rates(
      const graph::CommGraph& active,
      std::span<const graph::CommId> subset) const override;

  /// Inner (non host-adjacent) fat-tree links on the src -> dst route; empty
  /// without an attached topology.
  [[nodiscard]] std::vector<int> coupling_keys(
      topo::NodeId src, topo::NodeId dst) const override;

  [[nodiscard]] const topo::NetworkCalibration& calibration() const {
    return cal_;
  }

  /// Expose the constructed allocation problem (tests/ablation).
  [[nodiscard]] AllocationProblem build_problem(
      const graph::CommGraph& active) const;

 private:
  topo::NetworkCalibration cal_;
  std::optional<topo::FatTree> topology_;
};

/// One communication's simulated timing.
struct CommTiming {
  double start = 0.0;
  double finish = 0.0;
  [[nodiscard]] double duration() const { return finish - start; }
};

/// Run all communications of `graph` starting at t=0 under `provider`,
/// integrating piecewise-constant rates until each completes. Returns
/// per-comm completion times (graph order), including one-way latency.
[[nodiscard]] std::vector<double> measure_scheme(const graph::CommGraph& graph,
                                                 const RateProvider& provider,
                                                 double latency);

/// Convenience: fluid measurement under a calibration (the experiments'
/// standard T_m source).
[[nodiscard]] std::vector<double> measure_scheme_fluid(
    const graph::CommGraph& graph, const topo::NetworkCalibration& cal);

/// Per-communication penalties relative to the unconflicted reference time
/// at each comm's size (the paper's P_i = T_i / T_ref definition, §IV-B).
/// Completion-based: comms that outlive their rivals speed up at the end,
/// which dilutes their penalty.
[[nodiscard]] std::vector<double> measure_penalties(
    const graph::CommGraph& graph, const topo::NetworkCalibration& cal);

/// Instantaneous penalties while *all* communications of the scheme are in
/// flight: p_i = reference_rate / rate_i. This is the regime the paper's
/// fig-2 numbers describe (every task streams 20 MB simultaneously) and the
/// quantity the §V models predict.
[[nodiscard]] std::vector<double> saturated_penalties(
    const graph::CommGraph& graph, const topo::NetworkCalibration& cal);

}  // namespace bwshare::flowsim
