// Packet-level network simulators for the three flow-control mechanisms the
// paper describes (§III):
//
//   * kTcpPauseFrames — Gigabit Ethernet: windowed injection (TCP sliding
//     window; ACK per delivered packet) over store-and-forward links. The
//     window bounds in-flight data, so queues never overflow — the
//     802.3x pause behaviour appears as senders idling when the window is
//     closed.
//   * kStopAndGo — Myrinet 2000: wormhole cut-through. A packet crosses the
//     network only when its whole path (source uplink + destination
//     downlink) is free, and holds it for one serialization time; contending
//     flows alternate Stop/Go grants round-robin.
//   * kCreditBased — InfiniBand: a sender consumes a buffer credit of the
//     destination link per packet and gets it back when the packet drains.
//
// All modes share the host model: per-flow injection paced at the
// single-stream efficiency, and a host IO engine of capacity
// duplex_factor x link shared between directions with RX priority weight.
//
// These simulators are the high-fidelity cross-check of the fluid substrate
// (bench/abl_fluid_vs_packet); the fluid model is what experiments use.
#pragma once

#include <vector>

#include "graph/comm_graph.hpp"
#include "topo/network.hpp"

namespace bwshare::flowsim {

struct PacketSimConfig {
  topo::NetworkCalibration cal;
  /// TCP window in packets (kTcpPauseFrames); effective cwnd after ramp-up.
  int window_packets = 64;
  /// Link-level credits per flow (kCreditBased).
  int credits = 16;
  /// Safety cap on simulated events.
  size_t max_events = 50'000'000;
};

/// Simulate all communications of `graph` starting at t=0 at packet
/// granularity; returns per-comm completion times (graph order).
[[nodiscard]] std::vector<double> measure_scheme_packet(
    const graph::CommGraph& graph, const PacketSimConfig& config);

/// Penalties P_i = T_i / T_ref from the packet simulator.
[[nodiscard]] std::vector<double> measure_penalties_packet(
    const graph::CommGraph& graph, const PacketSimConfig& config);

}  // namespace bwshare::flowsim
