// Discrete-event simulation core used by the packet-level network
// simulators: a time-ordered event queue with stable FIFO ordering for
// simultaneous events.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace bwshare::flowsim {

class Simulator {
 public:
  using Handler = std::function<void()>;

  /// Current simulation time, seconds.
  [[nodiscard]] double now() const { return now_; }

  /// Schedule `handler` at absolute time `when` (>= now).
  void schedule_at(double when, Handler handler);
  /// Schedule `handler` `delay` seconds from now.
  void schedule_in(double delay, Handler handler);

  /// Run until the queue drains or `max_time` is reached.
  /// Returns the number of events processed.
  size_t run(double max_time = 1e18);

  /// Drop all pending events.
  void clear();

  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    double when;
    uint64_t seq;
    Handler handler;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  double now_ = 0.0;
  uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace bwshare::flowsim
