// Discrete-event simulation front end used by the packet-level network
// simulators. Since the event-core unification this is a thin facade over
// core::Reactor — the same core::EventQueue that indexes sim::Engine's
// transfer finish times also orders these handlers (time-ordered, stable
// FIFO for simultaneous events), so both backends share one tested core.
#pragma once

#include "core/clock.hpp"

namespace bwshare::flowsim {

class Simulator {
 public:
  using Handler = core::Reactor::Handler;

  /// Current simulation time, seconds.
  [[nodiscard]] double now() const { return reactor_.now(); }

  /// Schedule `handler` at absolute time `when` (>= now). The returned
  /// handle can cancel() the event while it is still pending.
  core::EventHandle schedule_at(double when, Handler handler);
  /// Schedule `handler` `delay` seconds from now.
  core::EventHandle schedule_in(double delay, Handler handler);

  /// Drop a pending event by its handle. Returns false if the event
  /// already fired, was cancelled, or was cleared.
  bool cancel(core::EventHandle h) { return reactor_.cancel(h); }

  /// Run until the queue drains or `max_time` is reached.
  /// Returns the number of events processed.
  size_t run(double max_time = 1e18);

  /// Drop all pending events.
  void clear() { reactor_.clear(); }

  [[nodiscard]] bool empty() const { return reactor_.empty(); }
  [[nodiscard]] size_t pending() const { return reactor_.pending(); }

 private:
  core::Reactor reactor_;
};

}  // namespace bwshare::flowsim
