// Seeded synthetic communication-scheme generator — the scenario-diversity
// source for eval::Sweep campaigns. The four checked-in .scheme files and the
// paper's built-in figures cover a handful of shapes; the generator produces
// unbounded families of them, reproducibly from a single seed (util/rng.hpp):
//
//   ring      task i -> i+1 around `nodes` nodes (the §VI-D HPL pattern)
//   hotspot   every other node either sends into or receives from node 0
//             (seed-chosen direction per node; income/outgo congestion)
//   random    `comms` arcs with uniform endpoints, src != dst
//   alltoall  every ordered pair, the densest conflict structure
//
// Message sizes: uniform `bytes`, or a log-uniform mix when `spread` > 0
// (each size is bytes * 2^U(-spread, +spread)).
//
// Specs parse from the sweep axis syntax "family:key=value,...", e.g.
// "random:nodes=12,comms=18,bytes=4M,spread=1".
#pragma once

#include <string>
#include <string_view>

#include "graph/comm_graph.hpp"

namespace bwshare::graph {

enum class SchemeFamily { kRing, kHotspot, kUniformRandom, kAllToAll };

[[nodiscard]] std::string to_string(SchemeFamily family);
[[nodiscard]] SchemeFamily scheme_family_from_string(const std::string& name);

struct GeneratorSpec {
  SchemeFamily family = SchemeFamily::kUniformRandom;
  /// Cluster nodes in the scheme; [2, 256] (alltoall: [2, 8], the Myrinet
  /// model's state enumeration is exponential in conflict density).
  int nodes = 8;
  /// Arc count for the random family only; 0 means 2 * nodes. Other
  /// families derive it from `nodes`.
  int comms = 0;
  /// Base message size in bytes, > 0 (paper figures use 4 MB / 20 MB).
  double bytes = 4e6;
  /// Size-mix exponent in [0, 8]: sizes are bytes * 2^U(-spread, +spread);
  /// 0 gives uniform sizes.
  double spread = 0.0;

  /// Throws bwshare::Error on any out-of-range parameter.
  void validate() const;
};

/// Parse "family:key=value,..." (keys: nodes, comms, bytes, spread; bytes
/// accepts util/strings.hpp size suffixes). "family:" alone means defaults.
/// Throws bwshare::Error on unknown family, unknown key, malformed value,
/// or an invalid resulting spec.
[[nodiscard]] GeneratorSpec parse_generator_spec(std::string_view text);

/// Deterministically expand `spec` with `seed`: identical (spec, seed) pairs
/// always yield identical graphs, independent of platform or thread count.
[[nodiscard]] CommGraph generate_scheme(const GeneratorSpec& spec,
                                        uint64_t seed);

}  // namespace bwshare::graph
