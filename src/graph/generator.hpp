// Seeded synthetic communication-scheme generator — the scenario-diversity
// source for eval::Sweep campaigns. The four checked-in .scheme files and the
// paper's built-in figures cover a handful of shapes; the generator produces
// unbounded families of them, reproducibly from a single seed (util/rng.hpp):
//
//   ring      task i -> i+1 around `nodes` nodes (the §VI-D HPL pattern)
//   hotspot   every other node either sends into or receives from node 0
//             (seed-chosen direction per node; income/outgo congestion)
//   random    `comms` arcs with uniform endpoints, src != dst
//   alltoall  every ordered pair, the densest conflict structure
//
// Message sizes: uniform `bytes`, or a log-uniform mix when `spread` > 0
// (each size is bytes * 2^U(-spread, +spread)).
//
// Specs parse from the sweep axis syntax "family:key=value,...", e.g.
// "random:nodes=12,comms=18,bytes=4M,spread=1".
//
// This file is also the home of the *dynamic-cluster* scenario sources:
// seeded Poisson scripts of membership churn (join / leave / fail) and of
// background cross-traffic flows. They are plain data — the engine-side
// semantics live in sim/scenario.hpp — so that graph/ stays below sim/ in
// the layering.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "graph/comm_graph.hpp"

namespace bwshare::graph {

enum class SchemeFamily { kRing, kHotspot, kUniformRandom, kAllToAll };

[[nodiscard]] std::string to_string(SchemeFamily family);
[[nodiscard]] SchemeFamily scheme_family_from_string(const std::string& name);

struct GeneratorSpec {
  SchemeFamily family = SchemeFamily::kUniformRandom;
  /// Cluster nodes in the scheme; [2, 256] (alltoall: [2, 8], the Myrinet
  /// model's state enumeration is exponential in conflict density).
  int nodes = 8;
  /// Arc count for the random family only; 0 means 2 * nodes. Other
  /// families derive it from `nodes`.
  int comms = 0;
  /// Base message size in bytes, > 0 (paper figures use 4 MB / 20 MB).
  double bytes = 4e6;
  /// Size-mix exponent in [0, 8]: sizes are bytes * 2^U(-spread, +spread);
  /// 0 gives uniform sizes.
  double spread = 0.0;

  /// Throws bwshare::Error on any out-of-range parameter.
  void validate() const;
};

/// Parse "family:key=value,..." (keys: nodes, comms, bytes, spread; bytes
/// accepts util/strings.hpp size suffixes). "family:" alone means defaults.
/// Throws bwshare::Error on unknown family, unknown key, malformed value,
/// or an invalid resulting spec.
[[nodiscard]] GeneratorSpec parse_generator_spec(std::string_view text);

/// Deterministically expand `spec` with `seed`: identical (spec, seed) pairs
/// always yield identical graphs, independent of platform or thread count.
[[nodiscard]] CommGraph generate_scheme(const GeneratorSpec& spec,
                                        uint64_t seed);

// ---------------------------------------------------------------------------
// Membership churn scripts
// ---------------------------------------------------------------------------

enum class ChurnKind {
  kJoin,   ///< a down node comes (back) up
  kLeave,  ///< a node departs gracefully: in-flight transfers drain
  kFail    ///< a node crashes: its in-flight transfers abort immediately
};

[[nodiscard]] std::string to_string(ChurnKind kind);

/// One scripted membership event. `node` indexes the cluster the scenario is
/// replayed on; `time` is absolute simulation time in seconds.
struct ChurnEvent {
  double time = 0.0;
  ChurnKind kind = ChurnKind::kFail;
  int node = 0;
};

struct ChurnSpec {
  /// Poisson arrival rate of membership events, in events per second of
  /// simulated time; >= 0 (0 yields an empty script).
  double rate = 0.0;
  /// Script horizon in seconds, > 0. Events past the horizon are not drawn.
  double horizon = 1.0;
  /// Cluster size the script targets; [2, 65536].
  int nodes = 8;
  /// Probability that a departure is a kFail (vs kLeave); [0, 1].
  double p_fail = 0.5;

  /// Throws bwshare::Error on any out-of-range parameter.
  void validate() const;
};

/// Deterministically draw a membership script: Poisson arrivals at
/// `spec.rate` over [0, spec.horizon). The generator tracks the up/down set
/// (all nodes start up), so leaves/fails always target an up node and joins
/// a down node — scripts are self-consistent by construction. With every
/// node down, further departures are skipped until a join. Identical
/// (spec, seed) pairs yield identical scripts.
[[nodiscard]] std::vector<ChurnEvent> generate_churn(const ChurnSpec& spec,
                                                     uint64_t seed);

// ---------------------------------------------------------------------------
// Background cross-traffic scripts
// ---------------------------------------------------------------------------

/// One injected flow that contends for links without belonging to the
/// measured job: no task posts it and nothing blocks on it.
struct BackgroundFlow {
  double time = 0.0;  ///< injection time, seconds
  int src = 0;        ///< source cluster node
  int dst = 1;        ///< destination cluster node, != src
  double bytes = 0.0;
};

struct BackgroundSpec {
  /// Poisson injection rate in flows per second of simulated time; >= 0.
  double rate = 0.0;
  /// Script horizon in seconds, > 0.
  double horizon = 1.0;
  /// Cluster size the script targets; [2, 65536]. Endpoints are drawn
  /// uniformly with src != dst.
  int nodes = 8;
  /// Base flow size in bytes, > 0.
  double bytes = 1e6;
  /// Size-mix exponent in [0, 8], same convention as GeneratorSpec::spread.
  double spread = 0.0;

  /// Throws bwshare::Error on any out-of-range parameter.
  void validate() const;
};

/// Deterministically draw a cross-traffic script: Poisson arrivals at
/// `spec.rate` over [0, spec.horizon), uniform endpoints, log-uniform sizes
/// when spread > 0. Identical (spec, seed) pairs yield identical scripts.
[[nodiscard]] std::vector<BackgroundFlow> generate_background(
    const BackgroundSpec& spec, uint64_t seed);

}  // namespace bwshare::graph
