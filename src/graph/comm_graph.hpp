// Communication graphs (paper §IV-A, §V).
//
// A communication graph G has cluster nodes as vertices and concurrent
// point-to-point communications as labelled arcs. The models consume the
// node degrees: Δo(v) = number of communications leaving v (outgoing
// degree), Δi(v) = number arriving at v (incoming degree).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "topo/cluster.hpp"

namespace bwshare::graph {

using CommId = int;

/// One point-to-point communication: an arc src -> dst carrying `bytes`.
struct Comm {
  std::string label;      // "a", "b", ... as in the paper's figures
  topo::NodeId src = 0;
  topo::NodeId dst = 0;
  double bytes = 0.0;
};

class CommGraph {
 public:
  CommGraph() = default;

  /// Add a communication; label must be unique and src != dst for network
  /// communications (intra-node arcs are allowed but flagged).
  CommId add(std::string label, topo::NodeId src, topo::NodeId dst,
             double bytes);

  [[nodiscard]] int size() const { return static_cast<int>(comms_.size()); }
  [[nodiscard]] bool empty() const { return comms_.empty(); }
  [[nodiscard]] const Comm& comm(CommId id) const;
  [[nodiscard]] const std::vector<Comm>& comms() const { return comms_; }

  /// Find a communication by its label.
  [[nodiscard]] std::optional<CommId> find(const std::string& label) const;

  /// Largest node id referenced plus one.
  [[nodiscard]] int num_nodes() const { return num_nodes_; }

  /// Outgoing degree Δo(v): number of communications with source v.
  [[nodiscard]] int out_degree(topo::NodeId v) const;
  /// Incoming degree Δi(v): number of communications with destination v.
  [[nodiscard]] int in_degree(topo::NodeId v) const;

  /// Δo(i) = Δo(src(i)) and Δi(i) = Δi(dst(i)) for a communication.
  [[nodiscard]] int delta_o(CommId id) const;
  [[nodiscard]] int delta_i(CommId id) const;

  /// Co(i): ids of communications sharing i's source (including i).
  [[nodiscard]] std::vector<CommId> same_source(CommId id) const;
  /// Ci(i): ids of communications sharing i's destination (including i).
  [[nodiscard]] std::vector<CommId> same_destination(CommId id) const;

  [[nodiscard]] std::vector<CommId> comms_from(topo::NodeId v) const;
  [[nodiscard]] std::vector<CommId> comms_to(topo::NodeId v) const;

  /// True if the arc stays inside one SMP node (never crosses the network).
  [[nodiscard]] bool is_intra_node(CommId id) const;

 private:
  std::vector<Comm> comms_;
  std::unordered_map<std::string, CommId> by_label_;  // find()/dup check
  int num_nodes_ = 0;
};

/// Subgraph containing exactly the listed communications, in `ids` order,
/// with labels and endpoints preserved. Degrees computed on the subgraph
/// match the full graph whenever `ids` is closed under shared endpoints —
/// the invariant behind component-restricted rate solving (see
/// flowsim::RateProvider::rates(active, subset) and docs/PERFORMANCE.md).
[[nodiscard]] CommGraph induced_subgraph(const CommGraph& graph,
                                         std::span<const CommId> ids);

}  // namespace bwshare::graph
