// Communication graphs (paper §IV-A, §V).
//
// A communication graph G has cluster nodes as vertices and concurrent
// point-to-point communications as labelled arcs. The models consume the
// node degrees: Δo(v) = number of communications leaving v (outgoing
// degree), Δi(v) = number arriving at v (incoming degree).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "topo/cluster.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace bwshare::graph {

using CommId = int;

/// One point-to-point communication: an arc src -> dst carrying `bytes`.
/// The comm id *is* the identity on the hot path; human-readable labels are
/// interned at parse time and kept in side storage (CommGraph::label()) for
/// DOT output, rendering and error paths.
struct Comm {
  topo::NodeId src = 0;
  topo::NodeId dst = 0;
  double bytes = 0.0;
};

class CommGraph {
 public:
  CommGraph() = default;

  /// Add a labelled communication (the parse-time path); label must be
  /// unique and src != dst for network communications (intra-node arcs are
  /// allowed but flagged). The label is interned: stored once, indexed for
  /// find(), and never consulted again on the solving path.
  CommId add(std::string label, topo::NodeId src, topo::NodeId dst,
             double bytes);

  /// Add an unlabelled communication — the allocation-free hot path used by
  /// the simulator's per-component scratch graphs. No string storage, no
  /// label-index update; label() returns "" for such comms.
  CommId add(topo::NodeId src, topo::NodeId dst, double bytes);

  [[nodiscard]] int size() const { return static_cast<int>(comms_.size()); }
  [[nodiscard]] bool empty() const { return comms_.empty(); }
  // Inline: the rate solvers read every comm of the active graph per solve.
  [[nodiscard]] const Comm& comm(CommId id) const {
    BWS_CHECK(id >= 0 && id < size(),
              strformat("comm id %d out of range [0,%d)", id, size()));
    return comms_[static_cast<size_t>(id)];
  }
  [[nodiscard]] const std::vector<Comm>& comms() const { return comms_; }

  /// Human-readable label of a communication; empty for comms added via the
  /// unlabelled overload.
  [[nodiscard]] std::string_view label(CommId id) const;

  /// Find a communication by its label.
  [[nodiscard]] std::optional<CommId> find(const std::string& label) const;

  /// Drop all communications but keep allocated capacity — scratch graphs
  /// rebuilt per component solve reuse their storage across flushes.
  void clear();

  /// Pre-size comm storage (capacity is retained by clear()).
  void reserve(int n) { comms_.reserve(static_cast<size_t>(n)); }

  /// Largest node id referenced plus one.
  [[nodiscard]] int num_nodes() const { return num_nodes_; }

  /// Outgoing degree Δo(v): number of communications with source v.
  [[nodiscard]] int out_degree(topo::NodeId v) const;
  /// Incoming degree Δi(v): number of communications with destination v.
  [[nodiscard]] int in_degree(topo::NodeId v) const;

  /// Δo(i) = Δo(src(i)) and Δi(i) = Δi(dst(i)) for a communication.
  [[nodiscard]] int delta_o(CommId id) const;
  [[nodiscard]] int delta_i(CommId id) const;

  /// Co(i): ids of communications sharing i's source (including i).
  [[nodiscard]] std::vector<CommId> same_source(CommId id) const;
  /// Ci(i): ids of communications sharing i's destination (including i).
  [[nodiscard]] std::vector<CommId> same_destination(CommId id) const;

  [[nodiscard]] std::vector<CommId> comms_from(topo::NodeId v) const;
  [[nodiscard]] std::vector<CommId> comms_to(topo::NodeId v) const;

  /// True if the arc stays inside one SMP node (never crosses the network).
  [[nodiscard]] bool is_intra_node(CommId id) const;

 private:
  std::vector<Comm> comms_;
  // Interned labels, parallel to comms_ but only as long as the last
  // labelled add — unlabelled comms past the end implicitly have "".
  std::vector<std::string> labels_;
  std::unordered_map<std::string, CommId> by_label_;  // find()/dup check
  int num_nodes_ = 0;
};

/// Subgraph containing exactly the listed communications, in `ids` order,
/// with labels and endpoints preserved. Degrees computed on the subgraph
/// match the full graph whenever `ids` is closed under shared endpoints —
/// the invariant behind component-restricted rate solving (see
/// flowsim::RateProvider::rates(active, subset) and docs/PERFORMANCE.md).
[[nodiscard]] CommGraph induced_subgraph(const CommGraph& graph,
                                         std::span<const CommId> ids);

}  // namespace bwshare::graph
