#include "graph/conflict.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace bwshare::graph {

std::string to_string(ConflictKind kind) {
  switch (kind) {
    case ConflictKind::kNone: return "none";
    case ConflictKind::kOutgoing: return "outgoing";
    case ConflictKind::kIncome: return "income";
    case ConflictKind::kIncomeOutgo: return "income/outgo";
    case ConflictKind::kMixed: return "mixed";
  }
  return "?";
}

ConflictKind CommConflicts::dominant() const {
  const int count = (outgoing ? 1 : 0) + (income ? 1 : 0) +
                    (income_outgo ? 1 : 0);
  if (count == 0) return ConflictKind::kNone;
  if (count > 1) return ConflictKind::kMixed;
  if (outgoing) return ConflictKind::kOutgoing;
  if (income) return ConflictKind::kIncome;
  return ConflictKind::kIncomeOutgo;
}

std::vector<CommConflicts> classify_conflicts(const CommGraph& graph) {
  std::vector<CommConflicts> out(static_cast<size_t>(graph.size()));
  for (CommId i = 0; i < graph.size(); ++i) {
    if (graph.is_intra_node(i)) continue;
    auto& c = out[static_cast<size_t>(i)];
    const auto& comm = graph.comm(i);
    c.outgoing = graph.out_degree(comm.src) > 1;
    c.income = graph.in_degree(comm.dst) > 1;
    // Income/outgo: the source also receives, or the destination also sends.
    c.income_outgo = graph.in_degree(comm.src) > 0 ||
                     graph.out_degree(comm.dst) > 0;
  }
  return out;
}

ConflictGraph::ConflictGraph(const CommGraph& graph, ConflictRule rule)
    : n_(graph.size()),
      adj_(static_cast<size_t>(n_),
           std::vector<bool>(static_cast<size_t>(n_), false)) {
  for (CommId i = 0; i < n_; ++i) {
    if (graph.is_intra_node(i)) continue;
    for (CommId j = i + 1; j < n_; ++j) {
      if (graph.is_intra_node(j)) continue;
      const auto& a = graph.comm(i);
      const auto& b = graph.comm(j);
      bool conflict = a.src == b.src || a.dst == b.dst;
      if (rule == ConflictRule::kSharedHost)
        conflict = conflict || a.src == b.dst || a.dst == b.src;
      if (conflict) {
        adj_[static_cast<size_t>(i)][static_cast<size_t>(j)] = true;
        adj_[static_cast<size_t>(j)][static_cast<size_t>(i)] = true;
      }
    }
  }
}

bool ConflictGraph::conflicts(CommId a, CommId b) const {
  BWS_CHECK(a >= 0 && a < n_ && b >= 0 && b < n_, "comm id out of range");
  return adj_[static_cast<size_t>(a)][static_cast<size_t>(b)];
}

const std::vector<bool>& ConflictGraph::row(CommId a) const {
  BWS_CHECK(a >= 0 && a < n_, "comm id out of range");
  return adj_[static_cast<size_t>(a)];
}

int ConflictGraph::degree(CommId a) const {
  const auto& r = row(a);
  return static_cast<int>(std::count(r.begin(), r.end(), true));
}

std::vector<std::vector<CommId>> ConflictGraph::components() const {
  std::vector<std::vector<CommId>> comps;
  std::vector<bool> seen(static_cast<size_t>(n_), false);
  for (CommId start = 0; start < n_; ++start) {
    if (seen[static_cast<size_t>(start)]) continue;
    std::vector<CommId> comp;
    std::vector<CommId> stack{start};
    seen[static_cast<size_t>(start)] = true;
    while (!stack.empty()) {
      const CommId v = stack.back();
      stack.pop_back();
      comp.push_back(v);
      for (CommId w = 0; w < n_; ++w) {
        if (!seen[static_cast<size_t>(w)] &&
            adj_[static_cast<size_t>(v)][static_cast<size_t>(w)]) {
          seen[static_cast<size_t>(w)] = true;
          stack.push_back(w);
        }
      }
    }
    std::sort(comp.begin(), comp.end());
    comps.push_back(std::move(comp));
  }
  return comps;
}

StronglySlowSets strongly_slow_sets(const CommGraph& graph, CommId id) {
  StronglySlowSets out;
  const auto co = graph.same_source(id);
  const auto ci = graph.same_destination(id);

  int max_di = 0;
  for (CommId j : co) max_di = std::max(max_di, graph.delta_i(j));
  for (CommId j : co)
    if (graph.delta_i(j) == max_di) out.cm_o.push_back(j);

  int max_do = 0;
  for (CommId j : ci) max_do = std::max(max_do, graph.delta_o(j));
  for (CommId j : ci)
    if (graph.delta_o(j) == max_do) out.cm_i.push_back(j);

  out.in_cm_o =
      std::find(out.cm_o.begin(), out.cm_o.end(), id) != out.cm_o.end();
  out.in_cm_i =
      std::find(out.cm_i.begin(), out.cm_i.end(), id) != out.cm_i.end();
  return out;
}

}  // namespace bwshare::graph
