// Parser for the communication-scheme description language.
//
// Grammar (newline-separated statements, '#' comments):
//
//   scheme "pretty name"            # optional, once
//   nodes 8                         # optional; inferred from comms otherwise
//   size 20M                        # default message size for later comms
//   comm a 0 -> 1                   # labelled arc, default size
//   comm b 0 -> 2 size 4MiB         # per-comm size override
//   comm c 3 <- 0                   # back arrow: equivalent to 0 -> 3
//
// Example:
//   scheme "fig2/S3"
//   size 20M
//   comm a 0 -> 1
//   comm b 0 -> 2
//   comm c 0 -> 3
#pragma once

#include <string>
#include <string_view>

#include "graph/comm_graph.hpp"

namespace bwshare::graph {

struct ParsedScheme {
  std::string name;
  CommGraph graph;
  /// `nodes N` directive if present, else graph.num_nodes().
  int declared_nodes = 0;
};

/// Parse scheme source text. Throws bwshare::Error with line numbers on any
/// syntax or semantic problem (duplicate labels, node out of declared range).
[[nodiscard]] ParsedScheme parse_scheme(std::string_view source);

/// Parse a scheme from a file.
[[nodiscard]] ParsedScheme parse_scheme_file(const std::string& path);

/// Serialize a graph back to scheme-language text (round-trips with
/// parse_scheme).
[[nodiscard]] std::string to_scheme_text(const CommGraph& graph,
                                         const std::string& name = "");

}  // namespace bwshare::graph
