#include "graph/generator.hpp"

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/parse.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace bwshare::graph {

std::string to_string(SchemeFamily family) {
  switch (family) {
    case SchemeFamily::kRing: return "ring";
    case SchemeFamily::kHotspot: return "hotspot";
    case SchemeFamily::kUniformRandom: return "random";
    case SchemeFamily::kAllToAll: return "alltoall";
  }
  BWS_THROW("invalid SchemeFamily");
}

SchemeFamily scheme_family_from_string(const std::string& name) {
  if (name == "ring") return SchemeFamily::kRing;
  if (name == "hotspot") return SchemeFamily::kHotspot;
  if (name == "random") return SchemeFamily::kUniformRandom;
  if (name == "alltoall") return SchemeFamily::kAllToAll;
  BWS_THROW("unknown scheme family '" + name +
            "' (expected ring, hotspot, random or alltoall)");
}

void GeneratorSpec::validate() const {
  BWS_CHECK(nodes >= 2 && nodes <= 256,
            strformat("generator: nodes must be in [2, 256], got %d", nodes));
  if (family == SchemeFamily::kAllToAll) {
    // The Myrinet model enumerates maximal independent sets of the conflict
    // graph; on all-to-all that cost grows ~10x per node (measured: 2 s at
    // 8 nodes, 19 s at 9), so larger instances would wedge a whole sweep.
    BWS_CHECK(nodes <= 8,
              strformat("generator: alltoall supports at most 8 nodes "
                        "(got %d); the conflict state space explodes beyond",
                        nodes));
  }
  if (family == SchemeFamily::kUniformRandom) {
    BWS_CHECK(comms >= 0 && comms <= 4096,
              strformat("generator: comms must be in [0, 4096], got %d",
                        comms));
  } else {
    BWS_CHECK(comms == 0, "generator: comms is only meaningful for the "
                          "random family");
  }
  BWS_CHECK(bytes > 0.0, strformat("generator: bytes must be > 0, got %g",
                                   bytes));
  BWS_CHECK(spread >= 0.0 && spread <= 8.0,
            strformat("generator: spread must be in [0, 8], got %g", spread));
}

GeneratorSpec parse_generator_spec(std::string_view text) {
  const auto colon = text.find(':');
  BWS_CHECK(colon != std::string_view::npos,
            "generator spec must look like 'family:key=value,...', got '" +
                std::string(text) + "'");
  GeneratorSpec spec;
  spec.family =
      scheme_family_from_string(std::string(trim(text.substr(0, colon))));
  const std::string_view params = text.substr(colon + 1);
  if (!trim(params).empty()) {
    for (const auto& item : split(params, ',')) {
      const auto eq = item.find('=');
      BWS_CHECK(eq != std::string::npos,
                "generator parameter '" + item + "' is not key=value");
      const std::string key(trim(std::string_view(item).substr(0, eq)));
      const std::string value(trim(std::string_view(item).substr(eq + 1)));
      // Bounds-checked before the int cast: strtol's long would otherwise
      // wrap values like 2^32+2 into the valid range silently.
      const auto parse_int = [&value](const char* what) {
        long v = 0;
        const auto st = try_parse_long(value, v, -1000000, 1000000);
        BWS_CHECK(st != ParseIntStatus::kMalformed,
                  strformat("generator: %s expects an integer, got '%s'",
                            what, value.c_str()));
        BWS_CHECK(st == ParseIntStatus::kOk,
                  strformat("generator: %s value '%s' is out of range", what,
                            value.c_str()));
        return static_cast<int>(v);
      };
      if (key == "nodes") {
        spec.nodes = parse_int("nodes");
      } else if (key == "comms") {
        spec.comms = parse_int("comms");
      } else if (key == "bytes") {
        spec.bytes = parse_size(value);
      } else if (key == "spread") {
        char* end = nullptr;
        spec.spread = std::strtod(value.c_str(), &end);
        BWS_CHECK(end && *end == '\0',
                  "generator: spread expects a number, got '" + value + "'");
      } else {
        BWS_THROW("generator: unknown parameter '" + key +
                  "' (expected nodes, comms, bytes or spread)");
      }
    }
  }
  spec.validate();
  return spec;
}

namespace {

double draw_bytes(const GeneratorSpec& spec, Rng& rng) {
  if (spec.spread == 0.0) return spec.bytes;
  return spec.bytes * std::exp2(rng.uniform(-spec.spread, spec.spread));
}

}  // namespace

CommGraph generate_scheme(const GeneratorSpec& spec, uint64_t seed) {
  spec.validate();
  // Salt the seed with the family so e.g. ring and hotspot at the same seed
  // do not share their size draws.
  uint64_t salt = seed ^ (0x9e3779b97f4a7c15ULL *
                          (static_cast<uint64_t>(spec.family) + 1));
  Rng rng(splitmix64(salt));
  CommGraph g;
  const int n = spec.nodes;
  switch (spec.family) {
    case SchemeFamily::kRing:
      for (int i = 0; i < n; ++i) {
        g.add(strformat("c%d", i), i, (i + 1) % n, draw_bytes(spec, rng));
      }
      break;
    case SchemeFamily::kHotspot:
      // Node 0 is the hot spot; node 1 always sends into it so every
      // instance has at least one income conflict.
      for (int v = 1; v < n; ++v) {
        const bool into_hotspot = v == 1 || rng.below(2) == 0;
        const int src = into_hotspot ? v : 0;
        const int dst = into_hotspot ? 0 : v;
        g.add(strformat("c%d", v - 1), src, dst, draw_bytes(spec, rng));
      }
      break;
    case SchemeFamily::kUniformRandom: {
      const int m = spec.comms == 0 ? 2 * n : spec.comms;
      for (int k = 0; k < m; ++k) {
        const int src = static_cast<int>(rng.below(static_cast<uint64_t>(n)));
        int dst = static_cast<int>(rng.below(static_cast<uint64_t>(n - 1)));
        if (dst >= src) ++dst;  // uniform over the n-1 non-self targets
        g.add(strformat("c%d", k), src, dst, draw_bytes(spec, rng));
      }
      break;
    }
    case SchemeFamily::kAllToAll:
      for (int src = 0; src < n; ++src) {
        for (int dst = 0; dst < n; ++dst) {
          if (src == dst) continue;
          g.add(strformat("c%d_%d", src, dst), src, dst,
                draw_bytes(spec, rng));
        }
      }
      break;
  }
  return g;
}

std::string to_string(ChurnKind kind) {
  switch (kind) {
    case ChurnKind::kJoin: return "join";
    case ChurnKind::kLeave: return "leave";
    case ChurnKind::kFail: return "fail";
  }
  BWS_THROW("invalid ChurnKind");
}

void ChurnSpec::validate() const {
  BWS_CHECK(rate >= 0.0 && std::isfinite(rate),
            strformat("churn: rate must be finite and >= 0, got %g", rate));
  BWS_CHECK(horizon > 0.0 && std::isfinite(horizon),
            strformat("churn: horizon must be finite and > 0, got %g",
                      horizon));
  // The per-event up/down scan is O(nodes), so the cap tracks the largest
  // bench cluster (bench/engine_scaling --nodes 65536) rather than the
  // generator's comms cap.
  BWS_CHECK(nodes >= 2 && nodes <= 65536,
            strformat("churn: nodes must be in [2, 65536], got %d", nodes));
  BWS_CHECK(p_fail >= 0.0 && p_fail <= 1.0,
            strformat("churn: p_fail must be in [0, 1], got %g", p_fail));
}

std::vector<ChurnEvent> generate_churn(const ChurnSpec& spec, uint64_t seed) {
  spec.validate();
  std::vector<ChurnEvent> script;
  if (spec.rate == 0.0) return script;
  uint64_t salt = seed ^ 0xc2b2ae3d27d4eb4fULL;  // keep churn draws disjoint
  Rng rng(splitmix64(salt));                     // from scheme/background
  std::vector<bool> up(static_cast<size_t>(spec.nodes), true);
  int num_up = spec.nodes;
  double t = 0.0;
  while (true) {
    t += rng.exponential(spec.rate);
    if (t >= spec.horizon) break;
    // Departures target an up node, joins a down node; the k-th candidate is
    // found by a linear scan so the draw only depends on (spec, seed).
    const bool departure = num_up == spec.nodes ||
                           (num_up > 0 && rng.uniform() < 0.5);
    const int pool = departure ? num_up : spec.nodes - num_up;
    if (pool == 0) continue;  // every node down and the coin said departure
    int pick = static_cast<int>(rng.below(static_cast<uint64_t>(pool)));
    int node = -1;
    for (int v = 0; v < spec.nodes; ++v) {
      if (up[static_cast<size_t>(v)] == departure && pick-- == 0) {
        node = v;
        break;
      }
    }
    ChurnEvent ev;
    ev.time = t;
    ev.node = node;
    if (departure) {
      ev.kind = rng.uniform() < spec.p_fail ? ChurnKind::kFail
                                            : ChurnKind::kLeave;
      up[static_cast<size_t>(node)] = false;
      --num_up;
    } else {
      ev.kind = ChurnKind::kJoin;
      up[static_cast<size_t>(node)] = true;
      ++num_up;
    }
    script.push_back(ev);
  }
  return script;
}

void BackgroundSpec::validate() const {
  BWS_CHECK(rate >= 0.0 && std::isfinite(rate),
            strformat("background: rate must be finite and >= 0, got %g",
                      rate));
  BWS_CHECK(horizon > 0.0 && std::isfinite(horizon),
            strformat("background: horizon must be finite and > 0, got %g",
                      horizon));
  BWS_CHECK(nodes >= 2 && nodes <= 65536,
            strformat("background: nodes must be in [2, 65536], got %d",
                      nodes));
  BWS_CHECK(bytes > 0.0, strformat("background: bytes must be > 0, got %g",
                                   bytes));
  BWS_CHECK(spread >= 0.0 && spread <= 8.0,
            strformat("background: spread must be in [0, 8], got %g",
                      spread));
}

std::vector<BackgroundFlow> generate_background(const BackgroundSpec& spec,
                                                uint64_t seed) {
  spec.validate();
  std::vector<BackgroundFlow> script;
  if (spec.rate == 0.0) return script;
  uint64_t salt = seed ^ 0x165667b19e3779f9ULL;  // disjoint from churn draws
  Rng rng(splitmix64(salt));
  const auto n = static_cast<uint64_t>(spec.nodes);
  double t = 0.0;
  while (true) {
    t += rng.exponential(spec.rate);
    if (t >= spec.horizon) break;
    BackgroundFlow f;
    f.time = t;
    f.src = static_cast<int>(rng.below(n));
    f.dst = static_cast<int>(rng.below(n - 1));
    if (f.dst >= f.src) ++f.dst;  // uniform over the n-1 non-self targets
    f.bytes = spec.bytes;
    if (spec.spread > 0.0) {
      f.bytes *= std::exp2(rng.uniform(-spec.spread, spec.spread));
    }
    script.push_back(f);
  }
  return script;
}

}  // namespace bwshare::graph
