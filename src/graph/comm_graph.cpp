#include "graph/comm_graph.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace bwshare::graph {

CommId CommGraph::add(std::string label, topo::NodeId src, topo::NodeId dst,
                      double bytes) {
  BWS_CHECK(!label.empty(), "communication label must not be empty");
  BWS_CHECK(src >= 0 && dst >= 0, "node ids must be non-negative");
  BWS_CHECK(bytes >= 0.0, "message size must be non-negative");
  const CommId id = static_cast<CommId>(comms_.size());
  // The label index keeps add() O(1) — graphs are rebuilt per refresh on
  // the simulator's hot path, so a linear duplicate scan would make every
  // rebuild quadratic.
  BWS_CHECK(by_label_.emplace(label, id).second,
            "duplicate communication label '" + label + "'");
  // Backfill ""s if unlabelled comms came first, so labels_ stays parallel.
  labels_.resize(static_cast<size_t>(id));
  labels_.push_back(std::move(label));
  comms_.push_back(Comm{src, dst, bytes});
  num_nodes_ = std::max(num_nodes_, std::max(src, dst) + 1);
  return id;
}

CommId CommGraph::add(topo::NodeId src, topo::NodeId dst, double bytes) {
  BWS_CHECK(src >= 0 && dst >= 0, "node ids must be non-negative");
  BWS_CHECK(bytes >= 0.0, "message size must be non-negative");
  const CommId id = static_cast<CommId>(comms_.size());
  comms_.push_back(Comm{src, dst, bytes});
  num_nodes_ = std::max(num_nodes_, std::max(src, dst) + 1);
  return id;
}

std::string_view CommGraph::label(CommId id) const {
  BWS_CHECK(id >= 0 && id < size(),
            strformat("comm id %d out of range [0,%d)", id, size()));
  if (static_cast<size_t>(id) >= labels_.size()) return {};
  return labels_[static_cast<size_t>(id)];
}

std::optional<CommId> CommGraph::find(const std::string& label) const {
  const auto it = by_label_.find(label);
  if (it == by_label_.end()) return std::nullopt;
  return it->second;
}

void CommGraph::clear() {
  comms_.clear();
  labels_.clear();
  by_label_.clear();
  num_nodes_ = 0;
}

int CommGraph::out_degree(topo::NodeId v) const {
  int deg = 0;
  for (const auto& c : comms_)
    if (c.src == v && c.src != c.dst) ++deg;
  return deg;
}

int CommGraph::in_degree(topo::NodeId v) const {
  int deg = 0;
  for (const auto& c : comms_)
    if (c.dst == v && c.src != c.dst) ++deg;
  return deg;
}

int CommGraph::delta_o(CommId id) const { return out_degree(comm(id).src); }

int CommGraph::delta_i(CommId id) const { return in_degree(comm(id).dst); }

std::vector<CommId> CommGraph::same_source(CommId id) const {
  const topo::NodeId v = comm(id).src;
  return comms_from(v);
}

std::vector<CommId> CommGraph::same_destination(CommId id) const {
  const topo::NodeId v = comm(id).dst;
  return comms_to(v);
}

std::vector<CommId> CommGraph::comms_from(topo::NodeId v) const {
  std::vector<CommId> out;
  for (CommId i = 0; i < size(); ++i) {
    const auto& c = comms_[static_cast<size_t>(i)];
    if (c.src == v && c.src != c.dst) out.push_back(i);
  }
  return out;
}

std::vector<CommId> CommGraph::comms_to(topo::NodeId v) const {
  std::vector<CommId> out;
  for (CommId i = 0; i < size(); ++i) {
    const auto& c = comms_[static_cast<size_t>(i)];
    if (c.dst == v && c.src != c.dst) out.push_back(i);
  }
  return out;
}

bool CommGraph::is_intra_node(CommId id) const {
  const auto& c = comm(id);
  return c.src == c.dst;
}

CommGraph induced_subgraph(const CommGraph& graph,
                           std::span<const CommId> ids) {
  CommGraph sub;
  sub.reserve(static_cast<int>(ids.size()));
  for (const CommId id : ids) {
    const Comm& c = graph.comm(id);
    const std::string_view lbl = graph.label(id);
    if (lbl.empty())
      sub.add(c.src, c.dst, c.bytes);
    else
      sub.add(std::string(lbl), c.src, c.dst, c.bytes);
  }
  return sub;
}

}  // namespace bwshare::graph
