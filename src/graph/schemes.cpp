#include "graph/schemes.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace bwshare::graph::schemes {

CommGraph fig2_scheme(int k, double bytes) {
  BWS_CHECK(k >= 1 && k <= 6, "fig 2 scheme index must be in [1,6]");
  CommGraph g;
  g.add("a", 0, 1, bytes);
  if (k >= 2) g.add("b", 0, 2, bytes);
  if (k >= 3) g.add("c", 0, 3, bytes);
  if (k >= 4) g.add("d", 4, 1, bytes);
  if (k >= 5) g.add("e", 5, 0, bytes);
  if (k >= 6) g.add("f", 6, 3, bytes);
  return g;
}

std::vector<CommGraph> fig2_all(double bytes) {
  std::vector<CommGraph> out;
  out.reserve(6);
  for (int k = 1; k <= 6; ++k) out.push_back(fig2_scheme(k, bytes));
  return out;
}

CommGraph fig4_scheme(double bytes) {
  CommGraph g;
  g.add("a", 0, 1, bytes);
  g.add("b", 0, 2, bytes);
  g.add("c", 0, 3, bytes);
  g.add("d", 1, 2, bytes);
  g.add("e", 1, 3, bytes);
  g.add("f", 4, 3, bytes);
  return g;
}

CommGraph fig5_scheme(double bytes) {
  CommGraph g;
  g.add("a", 0, 1, bytes);
  g.add("b", 0, 2, bytes);
  g.add("c", 0, 3, bytes);
  g.add("d", 4, 1, bytes);
  g.add("e", 2, 1, bytes);
  g.add("f", 2, 5, bytes);
  return g;
}

CommGraph mk1_tree(double bytes) {
  CommGraph g;
  g.add("a", 0, 1, bytes);
  g.add("b", 0, 2, bytes);
  g.add("c", 3, 0, bytes);
  g.add("d", 4, 2, bytes);
  g.add("e", 1, 5, bytes);
  g.add("f", 6, 3, bytes);
  g.add("g", 3, 7, bytes);
  return g;
}

CommGraph mk2_complete(double bytes) {
  CommGraph g;
  g.add("a", 0, 1, bytes);
  g.add("b", 0, 2, bytes);
  g.add("c", 0, 3, bytes);
  g.add("d", 0, 4, bytes);
  g.add("e", 2, 1, bytes);
  g.add("f", 1, 4, bytes);
  g.add("g", 1, 3, bytes);
  g.add("h", 4, 3, bytes);
  g.add("i", 3, 2, bytes);
  g.add("j", 4, 2, bytes);
  return g;
}

CommGraph outgoing_fan(int fan, double bytes) {
  BWS_CHECK(fan >= 1, "fan must be >= 1");
  CommGraph g;
  for (int i = 1; i <= fan; ++i)
    g.add(strformat("c%d", i), 0, i, bytes);
  return g;
}

CommGraph incoming_fan(int fan, double bytes) {
  BWS_CHECK(fan >= 1, "fan must be >= 1");
  CommGraph g;
  for (int i = 1; i <= fan; ++i)
    g.add(strformat("c%d", i), i, 0, bytes);
  return g;
}

CommGraph ring(int n, double bytes, bool wrap) {
  BWS_CHECK(n >= 2, "ring needs at least two nodes");
  CommGraph g;
  const int last = wrap ? n : n - 1;
  for (int i = 0; i < last; ++i)
    g.add(strformat("r%d", i), i, (i + 1) % n, bytes);
  return g;
}

}  // namespace bwshare::graph::schemes
