// Conflict analysis (paper §IV-A and §V).
//
// Elementary conflicts seen by one communication (paper Fig. 1):
//   - outgoing  C<-X->  : shares its source with other outgoing comms
//   - income    C->X<-  : shares its destination with other incoming comms
//   - income/outgo      : its source also receives, or its destination also
//                         sends (full-duplex host interaction)
//
// The Myrinet model's state enumeration uses the *conflict graph*: two
// communications conflict iff they have the same source node or the same
// destination node (§V-B rule). An extended rule additionally linking
// income/outgo pairs is provided for ablation studies.
//
// components() also underpins the incremental simulator: rates factorize
// over connected components, so sim::Engine re-solves only the components
// an event touches. Reference entry: docs/PERFORMANCE.md §"Invariants".
#pragma once

#include <string>
#include <vector>

#include "graph/comm_graph.hpp"

namespace bwshare::graph {

enum class ConflictKind {
  kNone,
  kOutgoing,       // C<-X->
  kIncome,         // C->X<-
  kIncomeOutgo,    // C->X-> or C<-X<-
  kMixed,          // several of the above at once
};

[[nodiscard]] std::string to_string(ConflictKind kind);

/// Elementary conflicts a single communication participates in.
struct CommConflicts {
  bool outgoing = false;
  bool income = false;
  bool income_outgo = false;

  [[nodiscard]] ConflictKind dominant() const;
  [[nodiscard]] bool any() const { return outgoing || income || income_outgo; }
};

/// Classify every communication of the graph (intra-node comms never
/// conflict on the network).
[[nodiscard]] std::vector<CommConflicts> classify_conflicts(
    const CommGraph& graph);

/// Which pairs of communications conflict.
enum class ConflictRule {
  /// Same source node or same destination node (paper §V-B).
  kSharedEndpointSameDirection,
  /// Additionally treats src(i)==dst(j) or dst(i)==src(j) as a conflict
  /// (full-duplex host interaction; ablation only).
  kSharedHost,
};

/// Undirected conflict-graph adjacency: adj[i][j] == true iff comms i and j
/// conflict under `rule`. Intra-node comms conflict with nothing.
class ConflictGraph {
 public:
  ConflictGraph(const CommGraph& graph, ConflictRule rule);

  [[nodiscard]] int size() const { return n_; }
  [[nodiscard]] bool conflicts(CommId a, CommId b) const;
  [[nodiscard]] const std::vector<bool>& row(CommId a) const;
  [[nodiscard]] int degree(CommId a) const;

  /// Connected components of the conflict graph (each component's state
  /// space factorizes, which the Myrinet model exploits).
  [[nodiscard]] std::vector<std::vector<CommId>> components() const;

 private:
  int n_ = 0;
  std::vector<std::vector<bool>> adj_;
};

/// The strongly-slow sets of the Gigabit Ethernet model (Definition 1).
///
/// Cm_o(i): communications leaving src(i) whose destination in-degree is the
/// maximum over that set — the "strongly slow outgoing" communications.
/// Cm_i(i): communications entering dst(i) whose source out-degree is the
/// maximum over that set.
struct StronglySlowSets {
  std::vector<CommId> cm_o;
  std::vector<CommId> cm_i;
  bool in_cm_o = false;  // whether the query comm belongs to Cm_o
  bool in_cm_i = false;
};

[[nodiscard]] StronglySlowSets strongly_slow_sets(const CommGraph& graph,
                                                  CommId id);

}  // namespace bwshare::graph
