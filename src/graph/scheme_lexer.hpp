// Lexer for the communication-scheme description language (the paper's §IV-B
// mentions "a specific description language" used to feed schemes to their
// measurement software; this is our equivalent).
//
// Token kinds: identifiers, numbers (with optional size suffix), strings,
// '->', '<-', punctuation, newlines (significant), comments '#...'.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace bwshare::graph {

enum class TokenKind {
  kIdent,
  kNumber,    // raw text kept; may carry a size suffix ("20M", "4MiB")
  kString,    // double-quoted
  kArrow,     // ->
  kBackArrow, // <-
  kLBrace,
  kRBrace,
  kComma,
  kNewline,
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  int line = 0;
};

[[nodiscard]] std::string to_string(TokenKind kind);

/// Tokenize a scheme source. Throws bwshare::Error with line info on bad
/// characters or unterminated strings. Consecutive newlines are collapsed.
[[nodiscard]] std::vector<Token> tokenize_scheme(std::string_view source);

}  // namespace bwshare::graph
