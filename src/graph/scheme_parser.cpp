#include "graph/scheme_parser.hpp"

#include <fstream>
#include <limits>
#include <sstream>

#include "graph/scheme_lexer.hpp"
#include "util/error.hpp"
#include "util/parse.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace bwshare::graph {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  ParsedScheme parse() {
    ParsedScheme out;
    double default_size = 20 * MB;  // the paper's referential message size
    bool seen_name = false;

    skip_newlines();
    while (!at(TokenKind::kEnd)) {
      const Token& head = expect(TokenKind::kIdent, "statement keyword");
      if (head.text == "scheme") {
        BWS_CHECK(!seen_name, where() + "duplicate 'scheme' directive");
        out.name = expect(TokenKind::kString, "scheme name").text;
        seen_name = true;
      } else if (head.text == "nodes") {
        out.declared_nodes = parse_int("node count");
        BWS_CHECK(out.declared_nodes > 0,
                  where() + "'nodes' must be positive");
      } else if (head.text == "size") {
        default_size = parse_size_token();
      } else if (head.text == "comm") {
        parse_comm(out, default_size);
      } else {
        BWS_THROW(where() + "unknown statement '" + head.text + "'");
      }
      end_statement();
    }

    if (out.declared_nodes == 0) out.declared_nodes = out.graph.num_nodes();
    BWS_CHECK(out.graph.num_nodes() <= out.declared_nodes,
              strformat("scheme references node %d but declares only %d nodes",
                        out.graph.num_nodes() - 1, out.declared_nodes));
    return out;
  }

 private:
  void parse_comm(ParsedScheme& out, double default_size) {
    const std::string label = expect(TokenKind::kIdent, "comm label").text;
    const int first = parse_int("source node");
    int src = first;
    int dst = 0;
    if (at(TokenKind::kArrow)) {
      advance();
      dst = parse_int("destination node");
    } else if (at(TokenKind::kBackArrow)) {
      advance();
      // "a 3 <- 0" means node 0 sends to node 3.
      dst = first;
      src = parse_int("source node");
    } else {
      BWS_THROW(where() + "expected '->' or '<-' after node id");
    }
    double size = default_size;
    if (at(TokenKind::kIdent) && peek().text == "size") {
      advance();
      size = parse_size_token();
    }
    out.graph.add(label, src, dst, size);
  }

  [[nodiscard]] const Token& peek() const { return tokens_[pos_]; }
  [[nodiscard]] bool at(TokenKind kind) const { return peek().kind == kind; }
  void advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  const Token& expect(TokenKind kind, const std::string& what) {
    BWS_CHECK(at(kind), where() + "expected " + what + " (" +
                            to_string(kind) + "), got " +
                            to_string(peek().kind) + " '" + peek().text + "'");
    const Token& token = peek();
    advance();
    return token;
  }

  int parse_int(const std::string& what) {
    const Token& token = expect(TokenKind::kNumber, what);
    long v = 0;
    switch (try_parse_long(token.text, v, std::numeric_limits<long>::min(),
                           std::numeric_limits<int>::max())) {
      case ParseIntStatus::kOk:
        BWS_CHECK(v >= 0, where() + what + " must be non-negative");
        return static_cast<int>(v);
      case ParseIntStatus::kMalformed:
        BWS_THROW(where() + what + " must be an integer, got '" + token.text +
                  "'");
      case ParseIntStatus::kOutOfRange:
        break;
    }
    BWS_THROW(where() + what + " out of range: '" + token.text + "'");
  }

  double parse_size_token() {
    const Token& token = expect(TokenKind::kNumber, "size literal");
    return parse_size(token.text);
  }

  void end_statement() {
    if (at(TokenKind::kEnd)) return;
    expect(TokenKind::kNewline, "end of statement");
    skip_newlines();
  }

  void skip_newlines() {
    while (at(TokenKind::kNewline)) advance();
  }

  [[nodiscard]] std::string where() const {
    return strformat("line %d: ", peek().line);
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

ParsedScheme parse_scheme(std::string_view source) {
  return Parser(tokenize_scheme(source)).parse();
}

ParsedScheme parse_scheme_file(const std::string& path) {
  std::ifstream in(path);
  BWS_CHECK(in.good(), "cannot open scheme file '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    return parse_scheme(buf.str());
  } catch (const Error& e) {
    throw Error(path + ": " + e.what());
  }
}

std::string to_scheme_text(const CommGraph& graph, const std::string& name) {
  std::ostringstream os;
  if (!name.empty()) os << "scheme \"" << name << "\"\n";
  os << "nodes " << graph.num_nodes() << "\n";
  for (CommId i = 0; i < graph.size(); ++i) {
    const auto& c = graph.comm(i);
    os << "comm " << graph.label(i) << " " << c.src << " -> " << c.dst
       << " size " << strformat("%.0f", c.bytes) << "\n";
  }
  return os.str();
}

}  // namespace bwshare::graph
