// Graphviz export of communication graphs, optionally annotated with
// per-communication penalties — handy for eyeballing reconstructed paper
// figures.
#pragma once

#include <map>
#include <string>

#include "graph/comm_graph.hpp"

namespace bwshare::graph {

/// Render as a Graphviz digraph. `annotations` maps comm label -> extra edge
/// label text (e.g. "p=2.25").
[[nodiscard]] std::string to_dot(
    const CommGraph& graph,
    const std::map<std::string, std::string>& annotations = {});

}  // namespace bwshare::graph
