#include "graph/dot.hpp"

#include <sstream>

namespace bwshare::graph {

std::string to_dot(const CommGraph& graph,
                   const std::map<std::string, std::string>& annotations) {
  std::ostringstream os;
  os << "digraph comms {\n";
  os << "  rankdir=TB;\n  node [shape=circle];\n";
  for (topo::NodeId v = 0; v < graph.num_nodes(); ++v)
    os << "  n" << v << " [label=\"" << v << "\"];\n";
  for (CommId i = 0; i < graph.size(); ++i) {
    const auto& c = graph.comm(i);
    const std::string label(graph.label(i));
    os << "  n" << c.src << " -> n" << c.dst << " [label=\"" << label;
    const auto it = annotations.find(label);
    if (it != annotations.end()) os << "\\n" << it->second;
    os << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace bwshare::graph
