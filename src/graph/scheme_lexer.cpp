#include "graph/scheme_lexer.hpp"

#include <cctype>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace bwshare::graph {

std::string to_string(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kNumber: return "number";
    case TokenKind::kString: return "string";
    case TokenKind::kArrow: return "'->'";
    case TokenKind::kBackArrow: return "'<-'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kComma: return "','";
    case TokenKind::kNewline: return "newline";
    case TokenKind::kEnd: return "end of input";
  }
  return "?";
}

namespace {
bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}
bool is_number_char(char c) {
  // Keep suffixes attached: "20M", "4MiB", "1.5e6".
  return std::isalnum(static_cast<unsigned char>(c)) || c == '.' ||
         c == '+' || c == '-';
}
}  // namespace

std::vector<Token> tokenize_scheme(std::string_view src) {
  std::vector<Token> tokens;
  int line = 1;
  size_t i = 0;
  auto push = [&](TokenKind kind, std::string text) {
    tokens.push_back(Token{kind, std::move(text), line});
  };
  auto push_newline = [&]() {
    if (!tokens.empty() && tokens.back().kind != TokenKind::kNewline)
      push(TokenKind::kNewline, "\\n");
  };

  while (i < src.size()) {
    const char c = src[i];
    if (c == '\n') {
      push_newline();
      ++line;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      continue;
    }
    if (c == '#') {  // comment to end of line
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }
    if (c == '-' && i + 1 < src.size() && src[i + 1] == '>') {
      push(TokenKind::kArrow, "->");
      i += 2;
      continue;
    }
    if (c == '<' && i + 1 < src.size() && src[i + 1] == '-') {
      push(TokenKind::kBackArrow, "<-");
      i += 2;
      continue;
    }
    if (c == '{') { push(TokenKind::kLBrace, "{"); ++i; continue; }
    if (c == '}') { push(TokenKind::kRBrace, "}"); ++i; continue; }
    if (c == ',') { push(TokenKind::kComma, ","); ++i; continue; }
    if (c == '"') {
      size_t j = i + 1;
      while (j < src.size() && src[j] != '"' && src[j] != '\n') ++j;
      BWS_CHECK(j < src.size() && src[j] == '"',
                strformat("line %d: unterminated string", line));
      push(TokenKind::kString, std::string(src.substr(i + 1, j - i - 1)));
      i = j + 1;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      while (j < src.size() && is_number_char(src[j])) {
        // '+'/'-' only valid right after an exponent 'e'/'E'.
        if ((src[j] == '+' || src[j] == '-') &&
            !(j > i && (src[j - 1] == 'e' || src[j - 1] == 'E')))
          break;
        ++j;
      }
      push(TokenKind::kNumber, std::string(src.substr(i, j - i)));
      i = j;
      continue;
    }
    if (is_ident_start(c)) {
      size_t j = i;
      while (j < src.size() && is_ident_char(src[j])) ++j;
      push(TokenKind::kIdent, std::string(src.substr(i, j - i)));
      i = j;
      continue;
    }
    BWS_THROW(strformat("line %d: unexpected character '%c'", line, c));
  }
  push_newline();
  push(TokenKind::kEnd, "");
  return tokens;
}

}  // namespace bwshare::graph
