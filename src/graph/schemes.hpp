// The concrete communication schemes used in the paper's figures, rebuilt
// from the figures' arrow geometry (reconstruction notes in DESIGN.md §2).
#pragma once

#include <vector>

#include "graph/comm_graph.hpp"

namespace bwshare::graph::schemes {

/// Fig 2 scheme k (1-based, k in [1,6]): the incremental congestion study.
///   S1: a:0->1
///   S2: + b:0->2
///   S3: + c:0->3
///   S4: + d:4->1          (income conflict at node 1)
///   S5: + e:5->0          (income/outgo duplex conflict at node 0)
///   S6: + f:6->3          (weak income conflict at node 3)
/// All messages are `bytes` long (paper: 20 MB).
[[nodiscard]] CommGraph fig2_scheme(int k, double bytes = 20e6);

/// All six Fig 2 schemes in order.
[[nodiscard]] std::vector<CommGraph> fig2_all(double bytes = 20e6);

/// Fig 4 scheme used to estimate/verify the GigE γ parameters (4 MB):
/// a:0->1, b:0->2, c:0->3, d:1->2, e:1->3, f:4->3.
[[nodiscard]] CommGraph fig4_scheme(double bytes = 4e6);

/// Fig 5 graph of the Myrinet state-set example:
/// a:0->1, b:0->2, c:0->3, d:4->1, e:2->1, f:2->5.
[[nodiscard]] CommGraph fig5_scheme(double bytes = 20e6);

/// Fig 7 MK1: directed tree on 8 nodes,
/// a:0->1, b:0->2, c:3->0, d:4->2, e:1->5, f:6->3, g:3->7.
[[nodiscard]] CommGraph mk1_tree(double bytes = 4e6);

/// Fig 7 MK2: orientation of the complete graph on 5 nodes (10 comms):
/// a:0->1, b:0->2, c:0->3, d:0->4, e:2->1, f:1->4, g:1->3, h:4->3,
/// i:3->2, j:4->2.
[[nodiscard]] CommGraph mk2_complete(double bytes = 4e6);

/// Simple outgoing conflict C<-X->: `fan` comms 0->1, 0->2, ..., 0->fan.
/// Used to estimate the GigE β parameter (§V-A).
[[nodiscard]] CommGraph outgoing_fan(int fan, double bytes = 20e6);

/// Simple income conflict C->X<-: comms 1->0, 2->0, ..., fan->0.
[[nodiscard]] CommGraph incoming_fan(int fan, double bytes = 20e6);

/// Ring scheme task n -> n+1 over `n` nodes (the HPL §VI-D pattern).
[[nodiscard]] CommGraph ring(int n, double bytes = 20e6, bool wrap = true);

}  // namespace bwshare::graph::schemes
