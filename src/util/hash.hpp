// Structural hashing: a small order-sensitive 64-bit mixer for fingerprinting
// in-memory values (serve query fingerprints, the engine's component-solution
// memo keys). Not cryptographic; collision resistance is "good enough for a
// cache key", nothing more.
//
// Stability contract: digests are stable within one build of the library —
// two identical mix sequences in the same process always produce the same
// digest, on every platform (the mixing is pure 64-bit integer arithmetic and
// doubles are absorbed by bit pattern). Digests are NOT guaranteed stable
// across releases: the mixing constants or framing may change in any PR, so
// digests must never be persisted or compared across processes running
// different builds. (docs/SERVING.md repeats this for the serve fingerprints.)
//
// The algorithm is deliberately simple enough to re-implement in a test
// (tests/util/test_hash.cpp keeps an independent reference copy):
//
//   state starts at kSeed (0x9e3779b97f4a7c15)
//   absorb(w):   s = state ^ w; state = splitmix64(s)   [util/rng.hpp]
//   mix_u64(v):  absorb(v)
//   mix_i64(v):  absorb(uint64_t(v))           // two's complement
//   mix_f64(v):  absorb(bit pattern of v)      // NaNs/-0.0 by their bits
//   mix_bool(v): absorb(v ? 1 : 0)
//   mix_str(s):  absorb(s.size()), then absorb each 8-byte chunk of s packed
//                little-endian (byte i of a chunk shifted left 8*i bits), the
//                final partial chunk zero-padded
//   digest():    splitmix64 of a copy of state (does not advance the state)
//
// Framing is the caller's responsibility: the mixer does not tag types, so
// mix_u64(0) and mix_f64(+0.0) absorb the same word. mix_str is
// length-prefixed, which keeps adjacent strings from sliding into each other
// ("ab","c" vs "a","bc" differ).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>

namespace bwshare::util {

class StructuralHash {
 public:
  /// Initial state; also the digest of an empty mix sequence's pre-image.
  static constexpr uint64_t kSeed = 0x9e3779b97f4a7c15ULL;

  void mix_u64(uint64_t v);
  void mix_i64(int64_t v) { mix_u64(static_cast<uint64_t>(v)); }
  /// Absorbs the IEEE-754 bit pattern: -0.0 != +0.0, every NaN by its bits.
  /// Right for memo keys (the engine's purity contract is over bits), so
  /// callers wanting semantic equality must canonicalize first.
  void mix_f64(double v);
  void mix_bool(bool v) { mix_u64(v ? 1 : 0); }
  void mix_str(std::string_view s);

  /// Final scramble of the current state; the state itself is not advanced,
  /// so digest() can be taken mid-sequence and mixing can continue.
  [[nodiscard]] uint64_t digest() const;

 private:
  void absorb(uint64_t w);

  uint64_t state_ = kSeed;
};

/// One-shot convenience for the common "hash a few words" case.
[[nodiscard]] uint64_t hash_words(std::initializer_list<uint64_t> words);

/// Fixed-width lowercase hex of a digest, for logs and JSON responses.
[[nodiscard]] std::string hash_hex(uint64_t digest);

}  // namespace bwshare::util
