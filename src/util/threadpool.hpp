// Fixed-size worker pool for CPU-bound fan-out (the eval::Sweep campaign
// runner). Deliberately minimal: submit void() jobs, wait until the queue
// drains. Determinism is the caller's job — sweep jobs write results into
// pre-allocated slots keyed by job index, so output never depends on
// completion order or thread count.
#pragma once

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bwshare::util {

class ThreadPool {
 public:
  /// Spawn `num_threads` workers; 0 means hardware_threads().
  explicit ThreadPool(int num_threads = 0);
  /// Joins all workers; pending jobs still in the queue are discarded.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a job. Jobs may themselves submit further jobs.
  void submit(std::function<void()> job);

  /// Block until every submitted job has finished. If any job threw, the
  /// first exception is rethrown here (later ones are dropped). The pool
  /// stays usable after wait_idle().
  void wait_idle();

  [[nodiscard]] int num_threads() const {
    return static_cast<int>(workers_.size());
  }

  /// std::thread::hardware_concurrency() clamped to >= 1.
  [[nodiscard]] static int hardware_threads();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_work_;   // workers wait for jobs
  std::condition_variable cv_idle_;   // wait_idle waits for quiescence
  size_t in_flight_ = 0;              // jobs popped but not finished
  bool stop_ = false;
  std::exception_ptr first_error_;    // guarded by mu_
};

/// Run fn(0), ..., fn(n-1) across the pool and wait for all of them.
/// Rethrows the first exception any iteration produced.
void parallel_for(ThreadPool& pool, int n, const std::function<void(int)>& fn);

}  // namespace bwshare::util
