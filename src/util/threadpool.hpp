// Fixed-size worker pool for CPU-bound fan-out (the eval::Sweep campaign
// runner and the engine's parallel component solver). Deliberately minimal:
// submit void() jobs, wait until the queue drains — or scope a batch with a
// TaskGroup and wait for just that batch, which lets several clients share
// one pool without waiting on each other's work. Determinism is the
// caller's job — sweep jobs write results into pre-allocated slots keyed by
// job index, the engine stages per-component rates and commits them
// sequentially, so output never depends on completion order or thread
// count.
#pragma once

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bwshare::util {

class ThreadPool {
 public:
  /// Spawn `num_threads` workers; 0 means hardware_threads().
  explicit ThreadPool(int num_threads = 0);
  /// Joins all workers; pending jobs still in the queue are discarded.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a job. Jobs may themselves submit further jobs.
  void submit(std::function<void()> job);

  /// Block until every submitted job has finished. If any job threw, the
  /// first exception is rethrown here (later ones are dropped). The pool
  /// stays usable after wait_idle().
  void wait_idle();

  [[nodiscard]] int num_threads() const {
    return static_cast<int>(workers_.size());
  }

  /// True when the calling thread is one of *this* pool's workers. Used by
  /// TaskGroup::wait to refuse blocking a worker on work only workers can
  /// run (the classic nested-wait deadlock).
  [[nodiscard]] bool on_worker_thread() const;

  /// std::thread::hardware_concurrency() clamped to >= 1.
  [[nodiscard]] static int hardware_threads();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_work_;   // workers wait for jobs
  std::condition_variable cv_idle_;   // wait_idle waits for quiescence
  size_t in_flight_ = 0;              // jobs popped but not finished
  bool stop_ = false;
  std::exception_ptr first_error_;    // guarded by mu_
};

/// A waitable batch of jobs on a shared ThreadPool. Unlike
/// ThreadPool::wait_idle — which waits for *every* job in the pool —
/// TaskGroup::wait blocks only until this group's own tasks finish, so
/// independent clients (e.g. one engine flush per sweep cell) can share a
/// pool without serializing on each other.
///
/// Semantics:
///   * run() may be called from any thread, including from inside a pool
///     worker (a group task may spawn more tasks into its own group);
///   * wait() rethrows the first exception any task of the group threw
///     (later ones are dropped) and leaves the group empty and reusable;
///   * wait() from a pool worker throws bwshare::Error instead of
///     deadlocking: a worker blocked in wait() cannot run the queued tasks
///     it is waiting for (with every worker waiting, nobody runs anything);
///   * the destructor blocks until the group drains, discarding any pending
///     exception — call wait() explicitly to observe errors.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Submit one task into the group.
  void run(std::function<void()> task);

  /// Block until every task of this group has finished; rethrow the first
  /// task exception. The group is empty and reusable afterwards. Must not
  /// be called from one of the pool's own workers (throws).
  void wait();

 private:
  ThreadPool& pool_;
  std::mutex mu_;
  std::condition_variable cv_done_;
  size_t pending_ = 0;                // guarded by mu_
  std::exception_ptr first_error_;    // guarded by mu_
};

/// Run fn(0), ..., fn(n-1) across the pool and wait for all of them.
/// Rethrows the first exception any iteration produced. Scoped through a
/// TaskGroup, so only its own iterations are awaited — other work sharing
/// the pool neither delays nor is delayed by this call.
void parallel_for(ThreadPool& pool, int n, const std::function<void(int)>& fn);

}  // namespace bwshare::util
