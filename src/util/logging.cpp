#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "util/error.hpp"

namespace bwshare {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::once_flag g_env_once;
std::mutex g_io_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void init_from_env() {
  if (const char* env = std::getenv("BWSHARE_LOG")) {
    try {
      g_level.store(parse_log_level(env));
    } catch (const Error&) {
      // Ignore malformed env var; keep the default.
    }
  }
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() {
  std::call_once(g_env_once, init_from_env);
  return g_level.load();
}

LogLevel parse_log_level(const std::string& name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) lower.push_back(static_cast<char>(std::tolower(c)));
  if (lower == "trace") return LogLevel::kTrace;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  BWS_THROW("unknown log level '" + name + "'");
}

namespace detail {

void log_line(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_io_mutex);
  std::fprintf(stderr, "[bwshare %-5s] %s\n", level_name(level),
               message.c_str());
}

}  // namespace detail

}  // namespace bwshare
