#include "util/arena.hpp"

#include <algorithm>
#include <cstring>

#include "util/error.hpp"

namespace bwshare::util {

namespace {
constexpr std::size_t kMinChunk = 1024;
}  // namespace

Arena::Arena(std::size_t initial_capacity) {
  Chunk c;
  c.size = std::max(initial_capacity, kMinChunk);
  c.data = std::make_unique<std::byte[]>(c.size);
  chunks_.push_back(std::move(c));
}

Arena::~Arena() = default;

void Arena::next_chunk(std::size_t min_bytes) {
  // Advance to a retained spare if one fits, otherwise grow.
  if (active_ + 1 < chunks_.size() && chunks_[active_ + 1].size >= min_bytes) {
    ++active_;
    chunks_[active_].used = 0;
  } else {
    grow(min_bytes);
  }
}

void Arena::grow(std::size_t min_bytes) {
  // Geometric growth keyed off total capacity so repeated overflow converges
  // in O(log n) chunks.
  std::size_t want = std::max(min_bytes, capacity());
  Chunk c;
  c.size = std::max(want, kMinChunk);
  c.data = std::make_unique<std::byte[]>(c.size);
  // Drop unusably small spares beyond the active chunk, then append.
  chunks_.resize(active_ + 1);
  chunks_.push_back(std::move(c));
  ++active_;
  chunks_[active_].used = 0;
}

Arena::Marker Arena::mark() const {
  return Marker{active_, chunks_[active_].used};
}

void Arena::rewind(const Marker& m) {
  BWS_ASSERT(m.chunk <= active_, "arena rewind to a future mark");
  // Chunks after m.chunk stay owned (as spares) but their contents are freed.
  for (std::size_t i = m.chunk + 1; i <= active_; ++i) chunks_[i].used = 0;
  active_ = m.chunk;
  chunks_[active_].used = m.used;
}

void Arena::reset() {
  std::size_t want = std::max(high_water_, chunks_[0].size);
  if (chunks_.size() == 1 && chunks_[0].size >= want) {
    chunks_[0].used = 0;
    active_ = 0;
    return;
  }
  Chunk c;
  c.size = want;
  c.data = std::make_unique<std::byte[]>(c.size);
  chunks_.clear();
  chunks_.push_back(std::move(c));
  active_ = 0;
}

std::size_t Arena::capacity() const {
  std::size_t total = 0;
  for (const Chunk& c : chunks_) total += c.size;
  return total;
}

std::size_t Arena::in_use() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i <= active_; ++i) total += chunks_[i].used;
  return total;
}

Arena& Arena::thread_local_instance() {
  thread_local Arena arena(1 << 16);
  return arena;
}

}  // namespace bwshare::util
