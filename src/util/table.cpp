#include "util/table.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace bwshare {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  BWS_CHECK(!headers_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  BWS_CHECK(cells.size() == headers_.size(),
            strformat("row has %zu cells, table has %zu columns", cells.size(),
                      headers_.size()));
  rows_.push_back(std::move(cells));
}

void TextTable::add_row_numeric(const std::string& label,
                                const std::vector<double>& values,
                                int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(strformat("%.*f", precision, v));
  add_row(std::move(cells));
}

std::string TextTable::render(int indent) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  const std::string margin(static_cast<size_t>(indent), ' ');
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    os << margin;
    for (size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      if (c + 1 < cells.size())
        os << std::string(widths[c] - cells[c].size() + 2, ' ');
    }
    os << '\n';
  };
  emit_row(headers_);
  size_t total = margin.size();
  for (size_t c = 0; c < widths.size(); ++c)
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  os << margin << std::string(total - margin.size(), '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string TextTable::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << util::csv_escape(cells[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void TextTable::write_csv(const std::string& path) const {
  std::ofstream out(path);
  BWS_CHECK(out.good(), "cannot open '" + path + "' for writing");
  out << to_csv();
  BWS_CHECK(out.good(), "error while writing '" + path + "'");
}

void print_banner(std::ostream& os, const std::string& title) {
  os << '\n' << "== " << title << " " << std::string(std::max<size_t>(
      4, 76 - title.size()), '=') << '\n';
}

}  // namespace bwshare
