// Unit helpers. All quantities in bwshare use SI base units:
//   time       -> seconds   (double)
//   data size  -> bytes     (double; message sizes are exact in the int range)
//   bandwidth  -> bytes per second (double)
// The helpers below exist so call sites read as `20 * MiB` or
// `gigabits_per_sec(1.0)` instead of bare magic numbers.
#pragma once

namespace bwshare {

inline constexpr double KiB = 1024.0;
inline constexpr double MiB = 1024.0 * 1024.0;
inline constexpr double GiB = 1024.0 * 1024.0 * 1024.0;

inline constexpr double KB = 1e3;
inline constexpr double MB = 1e6;
inline constexpr double GB = 1e9;

/// Convert a link speed quoted in gigabits per second to bytes per second.
[[nodiscard]] constexpr double gigabits_per_sec(double gbps) {
  return gbps * 1e9 / 8.0;
}

/// Convert a link speed quoted in megabits per second to bytes per second.
[[nodiscard]] constexpr double megabits_per_sec(double mbps) {
  return mbps * 1e6 / 8.0;
}

inline constexpr double microseconds = 1e-6;
inline constexpr double milliseconds = 1e-3;

}  // namespace bwshare
