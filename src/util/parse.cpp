#include "util/parse.hpp"

#include <cerrno>
#include <cstdlib>

#include "util/error.hpp"

namespace bwshare {

namespace {

[[nodiscard]] bool is_digit(char c) { return c >= '0' && c <= '9'; }

}  // namespace

ParseIntStatus try_parse_long(std::string_view text, long& out, long min,
                              long max) {
  if (text.empty()) return ParseIntStatus::kMalformed;
  // strtol skips leading whitespace and accepts a lone sign prefix on
  // garbage; reject both up front so the only accepted shape is
  // [+-]?digits.
  size_t first = 0;
  if (text[0] == '+' || text[0] == '-') first = 1;
  if (first == text.size() || !is_digit(text[first]))
    return ParseIntStatus::kMalformed;
  const std::string buf(text);  // strtol needs NUL termination
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size()) return ParseIntStatus::kMalformed;
  if (errno == ERANGE || v < min || v > max)
    return ParseIntStatus::kOutOfRange;
  out = v;
  return ParseIntStatus::kOk;
}

ParseIntStatus try_parse_u64(std::string_view text, std::uint64_t& out) {
  if (text.empty()) return ParseIntStatus::kMalformed;
  for (const char c : text)
    if (!is_digit(c)) return ParseIntStatus::kMalformed;
  const std::string buf(text);
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size()) return ParseIntStatus::kMalformed;
  if (errno == ERANGE) return ParseIntStatus::kOutOfRange;
  out = static_cast<std::uint64_t>(v);
  return ParseIntStatus::kOk;
}

long parse_long(std::string_view text, const std::string& what, long min,
                long max) {
  long v = 0;
  switch (try_parse_long(text, v, min, max)) {
    case ParseIntStatus::kOk:
      return v;
    case ParseIntStatus::kMalformed:
      BWS_THROW(what + " must be an integer, got '" + std::string(text) +
                "'");
    case ParseIntStatus::kOutOfRange:
      BWS_THROW(what + " out of range: '" + std::string(text) + "'");
  }
  BWS_THROW("unreachable");  // GCC: not all control paths visibly return
}

int parse_int(std::string_view text, const std::string& what, int min,
              int max) {
  return static_cast<int>(
      parse_long(text, what, static_cast<long>(min), static_cast<long>(max)));
}

}  // namespace bwshare
