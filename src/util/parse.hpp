// Strict integer parsing, consolidated. Before this helper the repo carried
// N hand-rolled strtol validations (scheme_parser, generator, cli, trace_io,
// sweep, bwshare_cli) and only one of them checked ERANGE — a huge literal
// silently truncated everywhere else. Every call site now funnels through
// here and keeps its own error message by switching on ParseIntStatus (or
// using the throwing wrappers, which phrase errors the way scheme_parser
// always did).
//
// Strictness contract (deliberately tighter than raw strtol):
//   * the whole string must parse — trailing garbage ("12x") is kMalformed;
//   * no leading whitespace (" 5" is kMalformed; callers trim explicitly);
//   * an empty string, a lone sign, and hex/octal prefixes are kMalformed
//     ("0x10" stops at 'x'; base is always 10);
//   * "+5"/"-5" are accepted (strtol sign handling), except by the unsigned
//     parser, which accepts digits only — strtoull would wrap "-1" to
//     2^64-1;
//   * any value outside [min, max] — including strtol's own ERANGE clamp —
//     is kOutOfRange, so casts to int never wrap.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>

namespace bwshare {

enum class ParseIntStatus {
  kOk,
  kMalformed,   // empty, lone sign, leading whitespace, trailing garbage
  kOutOfRange,  // parsed but outside the requested [min, max] (or ERANGE)
};

/// Parse a base-10 integer into `out`. On kOk, `out` is within [min, max];
/// on any other status `out` is untouched.
[[nodiscard]] ParseIntStatus try_parse_long(
    std::string_view text, long& out,
    long min = std::numeric_limits<long>::min(),
    long max = std::numeric_limits<long>::max());

/// Digits-only unsigned parse (no sign at all: strtoull would silently wrap
/// "-1" into 2^64-1, which is how seeds used to mis-parse).
[[nodiscard]] ParseIntStatus try_parse_u64(std::string_view text,
                                           std::uint64_t& out);

/// Throwing wrapper: bwshare::Error("<what> must be an integer, got
/// '<text>'") on kMalformed, Error("<what> out of range: '<text>'") on
/// kOutOfRange — the phrasing docs/SCHEME_DSL.md documents.
[[nodiscard]] long parse_long(std::string_view text, const std::string& what,
                              long min = std::numeric_limits<long>::min(),
                              long max = std::numeric_limits<long>::max());

/// parse_long constrained to int's range (plus any tighter [min, max]), so
/// the cast can never wrap.
[[nodiscard]] int parse_int(std::string_view text, const std::string& what,
                            int min = std::numeric_limits<int>::min(),
                            int max = std::numeric_limits<int>::max());

}  // namespace bwshare
