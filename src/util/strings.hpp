// Small string utilities: printf-style formatting into std::string (GCC 12
// lacks std::format), splitting, trimming and human-readable quantities.
#pragma once

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace bwshare {

/// printf-style formatting returning a std::string.
[[nodiscard]] std::string strformat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// vprintf-style variant of strformat().
[[nodiscard]] std::string vstrformat(const char* fmt, va_list args);

/// Split `s` on `sep`, keeping empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

/// Split `s` on runs of whitespace, dropping empty fields.
[[nodiscard]] std::vector<std::string> split_ws(std::string_view s);

/// Strip leading and trailing whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

/// True if `s` begins with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

/// Render a byte count as "20 MB", "1.5 GiB", ... (power-of-two units).
[[nodiscard]] std::string human_bytes(double bytes);

/// Render a duration in seconds as "12.3 ms", "4.56 s", ...
[[nodiscard]] std::string human_seconds(double seconds);

/// Parse a size with optional suffix: "20M", "4MiB", "512k", "1G", "64".
/// Decimal suffixes k/M/G are powers of ten; KiB/MiB/GiB are powers of two.
/// Throws bwshare::Error on malformed input.
[[nodiscard]] double parse_size(std::string_view text);

}  // namespace bwshare
