#pragma once

// Global-allocation counter for the zero-allocation tests and the bench's
// steady-state alloc columns.
//
// alloc_count() returns the number of global operator-new calls made by this
// process so far. The counting operator new/delete replacements live in
// alloc_counter.cpp; because bwshare_core is a static library, they are only
// linked into binaries that reference alloc_count() — ordinary tools keep the
// stock allocator.
//
// Usage: take a delta around the region of interest. The count is process-
// wide and monotonically increasing; it is relaxed-atomic, so deltas taken on
// one thread include allocations made by others during the window (that is
// what the steady-state tests want: *nobody* may allocate per event).

#include <cstdint>

namespace bwshare::util {

std::uint64_t alloc_count() noexcept;

}  // namespace bwshare::util
