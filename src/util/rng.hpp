// Deterministic pseudo-random number generation (splitmix64 seeding +
// xoshiro256**). All stochastic behaviour in bwshare (random task placement,
// packet jitter, synthetic workloads) flows through Rng so experiments are
// reproducible from a single seed.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace bwshare {

/// splitmix64 step; used to expand a single seed into a full state.
[[nodiscard]] constexpr uint64_t splitmix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = uint64_t;

  explicit constexpr Rng(uint64_t seed = 0x2545f4914f6cdd1dULL) {
    uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  constexpr uint64_t operator()() {
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Unbiased via rejection.
  constexpr uint64_t below(uint64_t n) {
    if (n == 0) return 0;
    const uint64_t threshold = (0 - n) % n;  // 2^64 mod n
    while (true) {
      const uint64_t r = (*this)();
      if (r >= threshold) return r % n;
    }
  }

  /// Standard normal via Marsaglia polar method.
  double normal() {
    while (true) {
      const double u = uniform(-1.0, 1.0);
      const double v = uniform(-1.0, 1.0);
      const double s = u * u + v * v;
      if (s > 0.0 && s < 1.0) {
        return u * std::sqrt(-2.0 * std::log(s) / s);
      }
    }
  }

  /// Exponential with the given rate parameter (mean 1/rate).
  double exponential(double rate) {
    return -std::log1p(-uniform()) / rate;
  }

 private:
  static constexpr uint64_t rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4]{};
};

}  // namespace bwshare
