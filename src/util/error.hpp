// Error handling primitives for bwshare.
//
// The library throws `bwshare::Error` for user-facing failures (bad scheme
// files, inconsistent cluster definitions, ...) and uses BWS_ASSERT for
// internal invariants that indicate a programming error.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace bwshare {

/// Exception type thrown by all bwshare components.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_error(std::string_view file, int line,
                              const std::string& message);
[[noreturn]] void assert_fail(std::string_view file, int line,
                              std::string_view condition,
                              const std::string& message);
}  // namespace detail

}  // namespace bwshare

/// Throw a bwshare::Error with source location attached.
#define BWS_THROW(msg) ::bwshare::detail::throw_error(__FILE__, __LINE__, (msg))

/// Validate a user-facing precondition; throws bwshare::Error on failure.
#define BWS_CHECK(cond, msg)                                              \
  do {                                                                    \
    if (!(cond)) ::bwshare::detail::throw_error(__FILE__, __LINE__, (msg)); \
  } while (false)

/// Internal invariant; indicates a bug in bwshare itself when it fires.
#define BWS_ASSERT(cond, msg)                                             \
  do {                                                                    \
    if (!(cond))                                                          \
      ::bwshare::detail::assert_fail(__FILE__, __LINE__, #cond, (msg));   \
  } while (false)
