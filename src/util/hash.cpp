#include "util/hash.hpp"

#include <algorithm>
#include <bit>

#include "util/rng.hpp"
#include "util/strings.hpp"

namespace bwshare::util {

void StructuralHash::absorb(uint64_t w) {
  uint64_t s = state_ ^ w;
  state_ = splitmix64(s);
}

void StructuralHash::mix_u64(uint64_t v) { absorb(v); }

void StructuralHash::mix_f64(double v) {
  absorb(std::bit_cast<uint64_t>(v));
}

void StructuralHash::mix_str(std::string_view s) {
  absorb(s.size());
  for (size_t base = 0; base < s.size(); base += 8) {
    uint64_t w = 0;
    const size_t n = std::min<size_t>(8, s.size() - base);
    // Explicit little-endian packing: byte i of the chunk lands in bits
    // [8i, 8i+8), independent of the host's endianness.
    for (size_t i = 0; i < n; ++i) {
      w |= static_cast<uint64_t>(static_cast<unsigned char>(s[base + i]))
           << (8 * i);
    }
    absorb(w);
  }
}

uint64_t StructuralHash::digest() const {
  uint64_t s = state_;
  return splitmix64(s);
}

uint64_t hash_words(std::initializer_list<uint64_t> words) {
  StructuralHash h;
  for (const uint64_t w : words) h.mix_u64(w);
  return h.digest();
}

std::string hash_hex(uint64_t digest) {
  return strformat("%016llx", static_cast<unsigned long long>(digest));
}

}  // namespace bwshare::util
