// Tiny command-line flag parser for the bench and example binaries.
// Supports `--name value`, `--name=value` and boolean `--flag` forms.
#pragma once

#include <initializer_list>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace bwshare {

class CliArgs {
 public:
  /// Parse argv. Unrecognized positional arguments are kept in order.
  CliArgs(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;
  [[nodiscard]] long get_int(const std::string& name, long fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// Flags given on the command line but absent from `allowed`, in
  /// alphabetical order. Lets binaries reject typos ("--node" for
  /// "--nodes") instead of silently ignoring them.
  [[nodiscard]] std::vector<std::string> unknown_flags(
      std::initializer_list<std::string_view> allowed) const;
  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace bwshare
