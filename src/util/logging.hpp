// Minimal leveled logger. Writes to stderr; level is settable globally and
// via the BWSHARE_LOG environment variable (trace|debug|info|warn|error).
#pragma once

#include <sstream>
#include <string>

namespace bwshare {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Parse "debug", "info", ... (case-insensitive). Throws on unknown names.
[[nodiscard]] LogLevel parse_log_level(const std::string& name);

namespace detail {
void log_line(LogLevel level, const std::string& message);

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage() { log_line(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace bwshare

#define BWS_LOG(level)                                      \
  if (::bwshare::log_level() <= (level))                    \
  ::bwshare::detail::LogMessage(level)

#define BWS_TRACE BWS_LOG(::bwshare::LogLevel::kTrace)
#define BWS_DEBUG BWS_LOG(::bwshare::LogLevel::kDebug)
#define BWS_INFO BWS_LOG(::bwshare::LogLevel::kInfo)
#define BWS_WARN BWS_LOG(::bwshare::LogLevel::kWarn)
#define BWS_ERROR BWS_LOG(::bwshare::LogLevel::kError)
