#include "util/strings.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"
#include "util/units.hpp"

namespace bwshare {

std::string vstrformat(const char* fmt, va_list args) {
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args_copy);
  va_end(args_copy);
  if (needed < 0) return {};
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  return out;
}

std::string strformat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::string out = vstrformat(fmt, args);
  va_end(args);
  return out;
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string human_bytes(double bytes) {
  const double abs = std::fabs(bytes);
  if (abs >= GiB) return strformat("%.3g GiB", bytes / GiB);
  if (abs >= MiB) return strformat("%.3g MiB", bytes / MiB);
  if (abs >= KiB) return strformat("%.3g KiB", bytes / KiB);
  return strformat("%.0f B", bytes);
}

std::string human_seconds(double seconds) {
  const double abs = std::fabs(seconds);
  if (abs >= 1.0) return strformat("%.3g s", seconds);
  if (abs >= 1e-3) return strformat("%.3g ms", seconds * 1e3);
  if (abs >= 1e-6) return strformat("%.3g us", seconds * 1e6);
  return strformat("%.3g ns", seconds * 1e9);
}

double parse_size(std::string_view text) {
  const std::string_view t = trim(text);
  BWS_CHECK(!t.empty(), "empty size literal");
  char* end = nullptr;
  const std::string buf(t);
  const double value = std::strtod(buf.c_str(), &end);
  BWS_CHECK(end != buf.c_str(), "malformed size literal: '" + buf + "'");
  std::string_view suffix = trim(std::string_view(end));
  if (suffix.empty()) return value;
  if (suffix == "k" || suffix == "K" || suffix == "KB") return value * KB;
  if (suffix == "M" || suffix == "MB") return value * MB;
  if (suffix == "G" || suffix == "GB") return value * GB;
  if (suffix == "KiB") return value * KiB;
  if (suffix == "MiB") return value * MiB;
  if (suffix == "GiB") return value * GiB;
  if (suffix == "B") return value;
  BWS_THROW("unknown size suffix '" + std::string(suffix) + "' in '" + buf +
            "'");
}

}  // namespace bwshare
