#include "util/csv.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <utility>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace bwshare::util {

std::string csv_escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\r\n") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (const char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strformat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string format_fixed(double v, int precision) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v,
                                 std::chars_format::fixed, precision);
  BWS_ASSERT(res.ec == std::errc(), "to_chars failed");
  return std::string(buf, res.ptr);
}

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  BWS_CHECK(!header_.empty(), "CsvWriter: header must not be empty");
}

void CsvWriter::add_row(std::vector<std::string> row) {
  BWS_CHECK(row.size() == header_.size(),
            strformat("CsvWriter: row has %zu fields, header has %zu",
                      row.size(), header_.size()));
  rows_.push_back(std::move(row));
}

std::string CsvWriter::render() const {
  std::string out;
  const auto append_line = [&out](const std::vector<std::string>& fields) {
    for (size_t i = 0; i < fields.size(); ++i) {
      if (i != 0) out.push_back(',');
      out += csv_escape(fields[i]);
    }
    out.push_back('\n');
  };
  append_line(header_);
  for (const auto& row : rows_) append_line(row);
  return out;
}

void write_text_file(const std::string& path, std::string_view content) {
  std::ofstream file(path, std::ios::binary);
  BWS_CHECK(file.good(), "cannot open '" + path + "' for writing");
  file.write(content.data(), static_cast<std::streamsize>(content.size()));
  file.flush();
  BWS_CHECK(file.good(), "failed writing '" + path + "'");
}

void CsvWriter::write_file(const std::string& path) const {
  write_text_file(path, render());
}

namespace {

// A field is emitted bare only when it matches the JSON number grammar
// (RFC 8259 §6) AND parses finite. strtod alone is too permissive — it
// accepts hex ("0x10"), leading '+' and ".5", all invalid JSON.
bool is_json_number(const std::string& field) {
  const auto digit = [](char c) { return c >= '0' && c <= '9'; };
  size_t i = 0;
  const size_t n = field.size();
  if (i < n && field[i] == '-') ++i;
  if (i == n || !digit(field[i])) return false;
  if (field[i] == '0') {
    ++i;  // no leading zeros: "0" or "0.x", never "01"
  } else {
    while (i < n && digit(field[i])) ++i;
  }
  if (i < n && field[i] == '.') {
    ++i;
    if (i == n || !digit(field[i])) return false;
    while (i < n && digit(field[i])) ++i;
  }
  if (i < n && (field[i] == 'e' || field[i] == 'E')) {
    ++i;
    if (i < n && (field[i] == '+' || field[i] == '-')) ++i;
    if (i == n || !digit(field[i])) return false;
    while (i < n && digit(field[i])) ++i;
  }
  if (i != n) return false;
  return std::isfinite(std::strtod(field.c_str(), nullptr));
}

}  // namespace

std::string rows_to_json(const CsvWriter& table) {
  std::string out = "[";
  const auto& header = table.header();
  for (size_t r = 0; r < table.rows().size(); ++r) {
    const auto& row = table.rows()[r];
    out += r == 0 ? "\n  {" : ",\n  {";
    for (size_t i = 0; i < row.size(); ++i) {
      if (i != 0) out += ", ";
      out += '"';
      out += json_escape(header[i]);
      out += "\": ";
      if (is_json_number(row[i])) {
        out += row[i];
      } else {
        out += '"';
        out += json_escape(row[i]);
        out += '"';
      }
    }
    out += "}";
  }
  out += table.rows().empty() ? "]" : "\n]";
  return out;
}

}  // namespace bwshare::util
