// Tabular result writers for the sweep subsystem: RFC-4180-style CSV plus a
// JSON rendering of the same rows. Both render from the same in-memory rows,
// so a sweep emitted as CSV and JSON is guaranteed to carry identical
// values. All formatting is caller-side (fields arrive as strings), which
// keeps the output byte-stable across platforms and thread counts.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace bwshare::util {

/// Quote a CSV field when needed (contains comma, quote, CR or LF);
/// embedded quotes are doubled per RFC 4180.
[[nodiscard]] std::string csv_escape(std::string_view field);

/// Write `content` to `path` (binary, overwriting). Throws bwshare::Error
/// if the file cannot be opened or the write fails/truncates.
void write_text_file(const std::string& path, std::string_view content);

/// Escape a string for inclusion inside a JSON string literal (quotes,
/// backslash, control characters).
[[nodiscard]] std::string json_escape(std::string_view s);

/// Locale-independent fixed-point formatting (std::to_chars): a host
/// application that calls setlocale() must not turn "12.5" into "12,5" in
/// machine-readable output. Shared by the sweep and campaign table writers.
[[nodiscard]] std::string format_fixed(double v, int precision);

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  /// Append one row; must have exactly as many fields as the header.
  void add_row(std::vector<std::string> row);

  [[nodiscard]] size_t num_rows() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& header() const {
    return header_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const {
    return rows_;
  }

  /// Header line + one line per row, '\n' line endings.
  [[nodiscard]] std::string render() const;

  void write_file(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Render the table as a JSON array of objects keyed by the header. Fields
/// that parse completely as finite numbers are emitted unquoted; everything
/// else becomes a JSON string.
[[nodiscard]] std::string rows_to_json(const CsvWriter& table);

}  // namespace bwshare::util
