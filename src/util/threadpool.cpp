#include "util/threadpool.hpp"

#include <utility>

#include "util/error.hpp"

namespace bwshare::util {

namespace {
// Which pool (if any) owns the current thread. Set once per worker at
// spawn; lets on_worker_thread() answer without locking.
thread_local const ThreadPool* t_worker_pool = nullptr;
}  // namespace

int ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) num_threads = hardware_threads();
  BWS_CHECK(num_threads <= 4096,
            "ThreadPool: num_threads must be <= 4096");
  workers_.reserve(static_cast<size_t>(num_threads));
  try {
    for (int i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  } catch (...) {
    // Thread creation failed (rlimit, OOM): join the workers that did
    // spawn, or their joinable destructors would std::terminate.
    {
      const std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_work_.notify_all();
    for (auto& worker : workers_) worker.join();
    throw;
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& worker : workers_) worker.join();
}

bool ThreadPool::on_worker_thread() const { return t_worker_pool == this; }

void ThreadPool::submit(std::function<void()> job) {
  BWS_CHECK(job != nullptr, "ThreadPool::submit: empty job");
  {
    const std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(job));
  }
  cv_work_.notify_one();
}

void ThreadPool::wait_idle() {
  BWS_CHECK(!on_worker_thread(),
            "ThreadPool::wait_idle must not be called from a pool worker "
            "(the waiting worker cannot run the jobs it waits for)");
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  if (first_error_) {
    const std::exception_ptr err = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop() {
  t_worker_pool = this;
  while (true) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_) return;
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    std::exception_ptr error;
    try {
      job();
    } catch (...) {
      error = std::current_exception();
    }
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (error && !first_error_) first_error_ = error;
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

TaskGroup::~TaskGroup() {
  // Drain without rethrow: destructors must not throw. Errors a caller
  // cares about are observed through an explicit wait(). A worker-thread
  // destructor with pending tasks would deadlock just like wait() — that is
  // a usage bug wait() would have flagged; nothing to do about it here
  // beyond draining, which is a no-op when pending_ == 0 (the common case
  // of wait() having already run).
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return pending_ == 0; });
}

void TaskGroup::run(std::function<void()> task) {
  BWS_CHECK(task != nullptr, "TaskGroup::run: empty task");
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++pending_;
  }
  pool_.submit([this, task = std::move(task)] {
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (error && !first_error_) first_error_ = error;
      if (--pending_ == 0) cv_done_.notify_all();
    }
  });
}

void TaskGroup::wait() {
  BWS_CHECK(!pool_.on_worker_thread(),
            "TaskGroup::wait must not be called from a pool worker: a "
            "worker blocked here cannot run the queued tasks it waits for "
            "(nested-submit deadlock)");
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return pending_ == 0; });
  if (first_error_) {
    const std::exception_ptr err = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void parallel_for(ThreadPool& pool, int n,
                  const std::function<void(int)>& fn) {
  TaskGroup group(pool);
  for (int i = 0; i < n; ++i) {
    group.run([&fn, i] { fn(i); });
  }
  group.wait();
}

}  // namespace bwshare::util
