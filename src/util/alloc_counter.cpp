#include "util/alloc_counter.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {
// constinit: safe to bump from allocations that run before main().
constinit std::atomic<std::uint64_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  return std::malloc(size);
}

void* counted_alloc_aligned(std::size_t size, std::size_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = align;
  // aligned_alloc requires size to be a multiple of alignment.
  std::size_t rounded = (size + align - 1) / align * align;
  return std::aligned_alloc(align, rounded);
}
}  // namespace

namespace bwshare::util {

std::uint64_t alloc_count() noexcept {
  return g_alloc_count.load(std::memory_order_relaxed);
}

}  // namespace bwshare::util

// Counting replacements for every global allocation entry point. All forms
// funnel to malloc/free, so mixing (e.g. sized delete of a nothrow-new
// pointer) stays consistent, and sanitizers still intercept the underlying
// malloc.

void* operator new(std::size_t size) {
  void* p = counted_alloc(size);
  if (!p) throw std::bad_alloc{};
  return p;
}

void* operator new[](std::size_t size) {
  void* p = counted_alloc(size);
  if (!p) throw std::bad_alloc{};
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = counted_alloc_aligned(size, static_cast<std::size_t>(align));
  if (!p) throw std::bad_alloc{};
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = counted_alloc_aligned(size, static_cast<std::size_t>(align));
  if (!p) throw std::bad_alloc{};
  return p;
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t, std::size_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t, std::size_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}
