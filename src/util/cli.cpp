#include "util/cli.hpp"

#include <cstdlib>

#include "util/error.hpp"
#include "util/parse.hpp"
#include "util/strings.hpp"

namespace bwshare {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!starts_with(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--name value` if the next token is not itself a flag, else boolean.
    if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "true";
    }
  }
}

std::vector<std::string> CliArgs::unknown_flags(
    std::initializer_list<std::string_view> allowed) const {
  std::vector<std::string> unknown;
  for (const auto& entry : values_) {
    bool found = false;
    for (const auto candidate : allowed) {
      if (entry.first == candidate) {
        found = true;
        break;
      }
    }
    if (!found) unknown.push_back(entry.first);
  }
  return unknown;  // values_ is an ordered map, so already alphabetical
}

bool CliArgs::has(const std::string& name) const {
  return values_.count(name) != 0;
}

std::string CliArgs::get(const std::string& name,
                         const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

long CliArgs::get_int(const std::string& name, long fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  long v = 0;
  switch (try_parse_long(it->second, v)) {
    case ParseIntStatus::kOk:
      return v;
    case ParseIntStatus::kOutOfRange:
      BWS_THROW("flag --" + name + " integer out of range: '" + it->second +
                "'");
    case ParseIntStatus::kMalformed:
      break;
  }
  BWS_THROW("flag --" + name + " expects an integer, got '" + it->second +
            "'");
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  BWS_CHECK(end && *end == '\0',
            "flag --" + name + " expects a number, got '" + it->second + "'");
  return v;
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  BWS_THROW("flag --" + name + " expects a boolean, got '" + v + "'");
}

}  // namespace bwshare
