// Aligned text tables and CSV output. The bench harness prints every
// reproduced paper table through TextTable so rows line up with the paper's
// layout, and can mirror the same rows to CSV for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace bwshare {

/// A simple row/column table with aligned text rendering.
class TextTable {
 public:
  /// Create a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Append a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  void add_row_numeric(const std::string& label,
                       const std::vector<double>& values, int precision = 3);

  [[nodiscard]] size_t num_rows() const { return rows_.size(); }
  [[nodiscard]] size_t num_cols() const { return headers_.size(); }

  /// Render with padded columns, a header underline and `indent` spaces of
  /// left margin.
  [[nodiscard]] std::string render(int indent = 2) const;

  /// Render as RFC-4180-ish CSV (quotes cells containing commas/quotes).
  [[nodiscard]] std::string to_csv() const;

  /// Write CSV to a file; throws bwshare::Error on I/O failure.
  void write_csv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Print a section banner used by the bench binaries.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace bwshare
