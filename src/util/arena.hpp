#pragma once

// Chunked bump arena for per-flush solve scratch.
//
// The steady-state event loop builds the same transient structures on every
// component solve: induced subgraphs, incidence buckets, the allocation
// problem handed to the max-min solver. An Arena serves those out of a few
// large chunks with pointer-bump allocation, so after warm-up a flush costs
// zero calls into the global allocator.
//
// Contract:
//   - allocate()/make_span() return storage valid until the next rewind()
//     past the corresponding mark (or reset()/destruction).
//   - Types placed in the arena must be trivially destructible; rewind does
//     not run destructors.
//   - Not thread-safe. Use one Arena per thread: thread_local_instance()
//     hands each thread (pool workers included) its own instance.
//   - reset() consolidates all chunks into a single chunk at least as large
//     as the high-water mark, so a warmed arena never grows again for
//     same-shaped workloads.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "util/error.hpp"

namespace bwshare::util {

class Arena {
 public:
  explicit Arena(std::size_t initial_capacity = 4096);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Raw storage, aligned to `align` (must be a power of two). The bump is
  // inline — a solve makes dozens of these per component, so the common case
  // must not pay a call; chunk advance/growth is the out-of-line tail.
  void* allocate(std::size_t bytes, std::size_t align) {
    BWS_ASSERT(align != 0 && (align & (align - 1)) == 0,
               "arena alignment must be a power of two");
    if (bytes == 0) bytes = 1;
    for (;;) {
      Chunk& c = chunks_[active_];
      const std::size_t base = reinterpret_cast<std::size_t>(c.data.get());
      const std::size_t at =
          ((base + c.used + align - 1) & ~(align - 1)) - base;
      if (at + bytes <= c.size) {
        c.used = at + bytes;
        const std::size_t used_now = in_use();
        if (used_now > high_water_) high_water_ = used_now;
        return c.data.get() + at;
      }
      next_chunk(bytes + align);
    }
  }

  // A value-initialized span of n objects of trivially-destructible type T.
  template <typename T>
  std::span<T> make_span(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena storage is rewound without running destructors");
    if (n == 0) return {};
    T* p = static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
    std::uninitialized_value_construct_n(p, n);
    return {p, n};
  }

  // An uninitialized span for callers that overwrite every element.
  template <typename T>
  std::span<T> make_span_uninit(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena storage is rewound without running destructors");
    static_assert(std::is_trivially_default_constructible_v<T>,
                  "make_span_uninit requires a trivial type");
    if (n == 0) return {};
    T* p = static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
    return {p, n};
  }

  // Position bookmark: rewind() frees everything allocated after mark().
  // Storage allocated before the mark stays valid.
  struct Marker {
    std::size_t chunk = 0;
    std::size_t used = 0;
  };
  Marker mark() const;
  void rewind(const Marker& m);

  // RAII frame: rewinds to the construction-time mark on scope exit.
  class Frame {
   public:
    explicit Frame(Arena& arena) : arena_(arena), mark_(arena.mark()) {}
    ~Frame() { arena_.rewind(mark_); }
    Frame(const Frame&) = delete;
    Frame& operator=(const Frame&) = delete;

   private:
    Arena& arena_;
    Marker mark_;
  };

  // Drops all allocations and consolidates the chunk list into one chunk of
  // at least high-water capacity. One allocator call at most; afterwards a
  // repeat of the same workload is allocation-free.
  void reset();

  std::size_t capacity() const;  // total bytes owned across chunks
  std::size_t in_use() const;    // bytes handed out since the last full rewind

  // One arena per thread, created on first use. Pool workers each get their
  // own, so parallel component solves never contend on scratch.
  static Arena& thread_local_instance();

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  // Advance to a retained spare that fits `min_bytes`, or grow a new chunk.
  void next_chunk(std::size_t min_bytes);
  void grow(std::size_t min_bytes);

  // chunks_[0..active_] are live; chunks past active_ are retained spares
  // (kept so rewind() can cheaply reactivate them).
  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace bwshare::util
