#include "util/error.hpp"

#include <sstream>

namespace bwshare::detail {

namespace {
std::string_view basename_of(std::string_view file) {
  const auto pos = file.find_last_of('/');
  return pos == std::string_view::npos ? file : file.substr(pos + 1);
}
}  // namespace

void throw_error(std::string_view file, int line, const std::string& message) {
  std::ostringstream os;
  os << message << " [" << basename_of(file) << ":" << line << "]";
  throw Error(os.str());
}

void assert_fail(std::string_view file, int line, std::string_view condition,
                 const std::string& message) {
  std::ostringstream os;
  os << "internal invariant violated: (" << condition << ") " << message
     << " [" << basename_of(file) << ":" << line << "]";
  throw Error(os.str());
}

}  // namespace bwshare::detail
