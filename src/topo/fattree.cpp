#include "topo/fattree.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace bwshare::topo {

FatTree::FatTree(const Params& params) : params_(params) {
  BWS_CHECK(params_.num_hosts >= 1, "fat tree needs at least one host");
  BWS_CHECK(params_.radix >= 1, "fat tree radix must be >= 1");
  BWS_CHECK(params_.host_bandwidth > 0.0, "host bandwidth must be positive");
  BWS_CHECK(params_.num_core >= 1, "fat tree needs at least one core switch");
  num_edges_ = (params_.num_hosts + params_.radix - 1) / params_.radix;

  links_.reserve(static_cast<size_t>(2 * params_.num_hosts +
                                     2 * num_edges_ * params_.num_core));
  for (int h = 0; h < params_.num_hosts; ++h)
    links_.push_back(
        {strformat("host%d.up", h), params_.host_bandwidth});
  for (int h = 0; h < params_.num_hosts; ++h)
    links_.push_back(
        {strformat("host%d.down", h), params_.host_bandwidth});
  edge_up_base_ = static_cast<LinkId>(links_.size());
  const double uplink_bw = params_.host_bandwidth * params_.uplink_factor;
  for (int e = 0; e < num_edges_; ++e)
    for (int c = 0; c < params_.num_core; ++c)
      links_.push_back({strformat("edge%d->core%d", e, c), uplink_bw});
  edge_down_base_ = static_cast<LinkId>(links_.size());
  for (int e = 0; e < num_edges_; ++e)
    for (int c = 0; c < params_.num_core; ++c)
      links_.push_back({strformat("core%d->edge%d", c, e), uplink_bw});
}

FatTree FatTree::for_cluster(const ClusterSpec& cluster, int radix) {
  Params p;
  p.num_hosts = cluster.num_nodes();
  p.radix = radix;
  p.host_bandwidth = cluster.network().link_bandwidth;
  p.uplink_factor = 4.0;
  p.num_core = 2;
  return FatTree(p);
}

const Link& FatTree::link(LinkId id) const {
  BWS_CHECK(id >= 0 && id < num_links(),
            strformat("link id %d out of range [0,%d)", id, num_links()));
  return links_[static_cast<size_t>(id)];
}

LinkId FatTree::host_uplink(NodeId h) const {
  BWS_CHECK(h >= 0 && h < params_.num_hosts, "host out of range");
  return h;
}

LinkId FatTree::host_downlink(NodeId h) const {
  BWS_CHECK(h >= 0 && h < params_.num_hosts, "host out of range");
  return params_.num_hosts + h;
}

int FatTree::edge_of(NodeId h) const {
  BWS_CHECK(h >= 0 && h < params_.num_hosts, "host out of range");
  return h / params_.radix;
}

LinkId FatTree::edge_up(int edge, int core) const {
  return edge_up_base_ + edge * params_.num_core + core;
}

LinkId FatTree::edge_down(int edge, int core) const {
  return edge_down_base_ + edge * params_.num_core + core;
}

int FatTree::core_for(int src_edge, int dst_edge) const {
  // Deterministic spreading: same pair always uses the same core switch.
  return (src_edge * 31 + dst_edge * 17) % params_.num_core;
}

std::vector<LinkId> FatTree::route(NodeId src, NodeId dst) const {
  BWS_CHECK(src >= 0 && src < params_.num_hosts, "src host out of range");
  BWS_CHECK(dst >= 0 && dst < params_.num_hosts, "dst host out of range");
  if (src == dst) return {};
  const int se = edge_of(src);
  const int de = edge_of(dst);
  if (se == de) return {host_uplink(src), host_downlink(dst)};
  const int core = core_for(se, de);
  return {host_uplink(src), edge_up(se, core), edge_down(de, core),
          host_downlink(dst)};
}

int FatTree::inner_links(NodeId src, NodeId dst, LinkId out[2]) const {
  BWS_CHECK(src >= 0 && src < params_.num_hosts, "src host out of range");
  BWS_CHECK(dst >= 0 && dst < params_.num_hosts, "dst host out of range");
  if (src == dst) return 0;
  const int se = edge_of(src);
  const int de = edge_of(dst);
  if (se == de) return 0;
  const int core = core_for(se, de);
  out[0] = edge_up(se, core);
  out[1] = edge_down(de, core);
  return 2;
}

}  // namespace bwshare::topo
