// Cluster description (paper §VI-A): number of nodes, cores per node, and the
// interconnect. Nodes are numbered iteratively starting at 0, as in the
// paper's simulator.
#pragma once

#include <string>
#include <vector>

#include "topo/network.hpp"

namespace bwshare::topo {

using NodeId = int;
using CoreId = int;

struct NodeSpec {
  int cores = 1;
  double memory_bytes = 4.0 * 1024 * 1024 * 1024;
};

/// A cluster: homogeneous or heterogeneous set of SMP nodes plus the network.
class ClusterSpec {
 public:
  ClusterSpec(std::string name, std::vector<NodeSpec> nodes,
              NetworkCalibration network);

  /// Homogeneous cluster of `num_nodes` nodes with `cores_per_node` cores.
  static ClusterSpec uniform(std::string name, int num_nodes,
                             int cores_per_node, NetworkCalibration network);

  /// The three clusters used in the paper (§IV-C).
  static ClusterSpec ibm_eserver326_gige(int num_nodes = 53);
  static ClusterSpec ibm_eserver325_myrinet(int num_nodes = 72);
  static ClusterSpec bull_novascale_ib(int num_nodes = 26);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] int num_nodes() const { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] const NodeSpec& node(NodeId id) const;
  [[nodiscard]] int total_cores() const;
  [[nodiscard]] const NetworkCalibration& network() const { return network_; }

 private:
  std::string name_;
  std::vector<NodeSpec> nodes_;
  NetworkCalibration network_;
};

}  // namespace bwshare::topo
