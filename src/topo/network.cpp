#include "topo/network.hpp"

#include "util/error.hpp"
#include "util/units.hpp"

namespace bwshare::topo {

std::string to_string(NetworkTech tech) {
  switch (tech) {
    case NetworkTech::kGigabitEthernet: return "GigabitEthernet";
    case NetworkTech::kMyrinet2000: return "Myrinet2000";
    case NetworkTech::kInfinibandInfinihost3: return "InfinibandInfinihost3";
  }
  return "?";
}

NetworkTech network_tech_from_string(const std::string& name) {
  if (name == "GigabitEthernet" || name == "gige" || name == "ethernet")
    return NetworkTech::kGigabitEthernet;
  if (name == "Myrinet2000" || name == "myrinet" || name == "mx")
    return NetworkTech::kMyrinet2000;
  if (name == "InfinibandInfinihost3" || name == "infiniband" || name == "ib")
    return NetworkTech::kInfinibandInfinihost3;
  BWS_THROW("unknown network technology '" + name + "'");
}

NetworkCalibration gigabit_ethernet_calibration() {
  NetworkCalibration c;
  c.tech = NetworkTech::kGigabitEthernet;
  c.flow_control = FlowControlKind::kTcpPauseFrames;
  c.link_bandwidth = gigabits_per_sec(1.0);
  // One TCP stream on the paper's Opteron/BCM5704 nodes reaches ~75% of the
  // wire (fig 2: two streams -> 1.5 penalty each, i.e. together they fill the
  // link a single stream could not).
  c.single_stream_efficiency = 0.75;
  // Under simultaneous send+receive the host IO path behaves close to
  // half-duplex (fig 2 scheme 5: adding one incoming flow pushes the three
  // outgoing penalties from ~2.2 to ~3-4).
  c.host_duplex_factor = 1.0;
  c.rx_bus_weight = 1.1;
  c.latency = 45e-6;
  c.mtu = 1500.0;
  c.shm_bandwidth = 1.2e9;
  return c;
}

NetworkCalibration myrinet2000_calibration() {
  NetworkCalibration c;
  c.tech = NetworkTech::kMyrinet2000;
  c.flow_control = FlowControlKind::kStopAndGo;
  c.link_bandwidth = 250e6;  // Myrinet 2000: 2 Gb/s per direction.
  // OS-bypass (MX) drives the wire at ~95% with one stream; sharing is then
  // an almost pure serialization (fig 2: 1.9, 2.8 per stream).
  c.single_stream_efficiency = 0.95;
  c.host_duplex_factor = 1.03;
  // Stop&Go favours the receive direction when the NIC DMA engines contend
  // (fig 2 scheme 5: incoming e at 2.5 vs outgoing a,b,c at 4.2-4.4).
  c.rx_bus_weight = 1.75;
  c.latency = 8e-6;
  c.mtu = 4096.0;
  c.shm_bandwidth = 1.2e9;
  return c;
}

NetworkCalibration infiniband_calibration() {
  NetworkCalibration c;
  c.tech = NetworkTech::kInfinibandInfinihost3;
  c.flow_control = FlowControlKind::kCreditBased;
  c.link_bandwidth = 1e9;  // InfiniHost III 4X SDR: 8 Gb/s data rate.
  c.single_stream_efficiency = 0.87;  // fig 2: 1.725/2, 2.61/3.
  c.host_duplex_factor = 1.14;
  c.rx_bus_weight = 1.8;
  c.latency = 4e-6;
  c.mtu = 2048.0;
  c.shm_bandwidth = 1.5e9;
  return c;
}

NetworkCalibration calibration_for(NetworkTech tech) {
  switch (tech) {
    case NetworkTech::kGigabitEthernet: return gigabit_ethernet_calibration();
    case NetworkTech::kMyrinet2000: return myrinet2000_calibration();
    case NetworkTech::kInfinibandInfinihost3: return infiniband_calibration();
  }
  BWS_THROW("invalid network technology");
}

}  // namespace bwshare::topo
