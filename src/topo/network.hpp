// Interconnect technologies and their calibration constants.
//
// The paper studies three interconnects (§III): Gigabit Ethernet (TCP +
// IEEE 802.3x pause frames), Myrinet 2000 (cut-through wormhole with a
// Stop & Go NIC protocol) and InfiniBand InfiniHost III (credit-based link
// flow control). `NetworkCalibration` captures the handful of constants our
// substrate needs to reproduce each card's measured sharing behaviour
// (paper Fig. 2); they are fixed once here and reused by every experiment.
#pragma once

#include <string>

namespace bwshare::topo {

enum class NetworkTech {
  kGigabitEthernet,
  kMyrinet2000,
  kInfinibandInfinihost3,
};

[[nodiscard]] std::string to_string(NetworkTech tech);
[[nodiscard]] NetworkTech network_tech_from_string(const std::string& name);

/// Flow-control behaviour class (paper §III).
enum class FlowControlKind {
  kTcpPauseFrames,   // GigE: TCP sliding window + 802.3x pause
  kStopAndGo,        // Myrinet: cut-through wormhole, Stop & Go
  kCreditBased,      // InfiniBand: credits per virtual lane
};

/// Constants describing one interconnect generation.
struct NetworkCalibration {
  NetworkTech tech = NetworkTech::kGigabitEthernet;
  FlowControlKind flow_control = FlowControlKind::kTcpPauseFrames;

  /// Raw signalling capacity of a host link, bytes/s (one direction).
  double link_bandwidth = 0.0;
  /// Fraction of the link a *single* stream achieves (host/MPI overheads).
  /// This is what makes the paper's GigE penalties 1.5/2.25 rather than
  /// 2/3: one TCP stream only reaches ~75% of the wire, while several
  /// streams together saturate it.
  double single_stream_efficiency = 1.0;
  /// Combined TX+RX host capacity as a multiple of link_bandwidth. 1.0 means
  /// the host memory/IO path behaves half-duplex under bidirectional load
  /// (observed on the paper's GigE nodes); 2.0 means full duplex.
  double host_duplex_factor = 2.0;
  /// Relative weight of an incoming flow when the host duplex bus is
  /// saturated (>1 favours reception, as Stop&Go and credit FC do).
  double rx_bus_weight = 1.0;
  /// One-way small-message latency, seconds.
  double latency = 0.0;
  /// Maximum transmission unit, bytes (packet-level simulators).
  double mtu = 1500.0;
  /// Intra-node (shared memory) copy bandwidth, bytes/s.
  double shm_bandwidth = 0.0;

  /// Effective bandwidth of a single unconflicted stream, bytes/s.
  [[nodiscard]] double reference_bandwidth() const {
    return link_bandwidth * single_stream_efficiency;
  }
  /// Time for one unconflicted message of `bytes`, the paper's T_ref.
  [[nodiscard]] double reference_time(double bytes) const {
    return latency + bytes / reference_bandwidth();
  }
};

/// Calibrations matching the paper's three clusters (§IV-C):
///  - IBM eServer 326, BCM5704 GigE, MPICH
///  - IBM eServer 325, Myrinet 2000, MPI MX
///  - BULL Novascale, InfiniHost III, MPIBULL2
[[nodiscard]] NetworkCalibration gigabit_ethernet_calibration();
[[nodiscard]] NetworkCalibration myrinet2000_calibration();
[[nodiscard]] NetworkCalibration infiniband_calibration();

[[nodiscard]] NetworkCalibration calibration_for(NetworkTech tech);

}  // namespace bwshare::topo
