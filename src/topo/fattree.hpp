// Fat-tree topology and routing. All three clusters in the paper use a fat
// tree (§IV-C); we build a two-level folded tree (edge + core switches) with
// a configurable oversubscription factor and deterministic core selection.
//
// Every physical cable is represented as two *directed* links so the fluid
// allocator can account full-duplex capacity per direction.
#pragma once

#include <string>
#include <vector>

#include "topo/cluster.hpp"

namespace bwshare::topo {

using LinkId = int;

struct Link {
  std::string name;
  double capacity = 0.0;  // bytes/s for this direction
};

/// Two-level fat tree: hosts attach to edge switches; edge switches attach to
/// every core switch. With `uplink_factor >= radix` the tree is non-blocking.
class FatTree {
 public:
  struct Params {
    int num_hosts = 8;
    /// Hosts per edge switch.
    int radix = 8;
    /// Host link capacity, bytes/s, per direction.
    double host_bandwidth = 0.0;
    /// Capacity of each edge<->core cable as a multiple of host_bandwidth.
    double uplink_factor = 4.0;
    /// Number of core switches.
    int num_core = 2;
  };

  explicit FatTree(const Params& params);

  /// Build a fat tree matching a cluster description (one host per node).
  static FatTree for_cluster(const ClusterSpec& cluster, int radix = 16);

  [[nodiscard]] int num_hosts() const { return params_.num_hosts; }
  [[nodiscard]] int num_links() const { return static_cast<int>(links_.size()); }
  [[nodiscard]] const Link& link(LinkId id) const;

  /// Directed link carrying traffic from host `h` into the network.
  [[nodiscard]] LinkId host_uplink(NodeId h) const;
  /// Directed link delivering traffic from the network to host `h`.
  [[nodiscard]] LinkId host_downlink(NodeId h) const;

  /// Ordered directed links traversed by a message src -> dst.
  /// src == dst yields an empty route (intra-node traffic bypasses the NIC).
  [[nodiscard]] std::vector<LinkId> route(NodeId src, NodeId dst) const;

  /// Allocation-free variant for the hot path: writes the inner (non
  /// host-adjacent) links of route(src, dst) into `out` in route order and
  /// returns their count (0 for intra-node/same-edge pairs, 2 otherwise).
  int inner_links(NodeId src, NodeId dst, LinkId out[2]) const;

  /// Edge switch a host attaches to.
  [[nodiscard]] int edge_of(NodeId h) const;
  [[nodiscard]] int num_edges() const { return num_edges_; }

 private:
  [[nodiscard]] LinkId edge_up(int edge, int core) const;
  [[nodiscard]] LinkId edge_down(int edge, int core) const;
  [[nodiscard]] int core_for(int src_edge, int dst_edge) const;

  Params params_;
  int num_edges_ = 0;
  std::vector<Link> links_;
  // Link layout: [host up | host down | edge-up(e,c) | edge-down(e,c)].
  LinkId edge_up_base_ = 0;
  LinkId edge_down_base_ = 0;
};

}  // namespace bwshare::topo
