#include "topo/cluster.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace bwshare::topo {

ClusterSpec::ClusterSpec(std::string name, std::vector<NodeSpec> nodes,
                         NetworkCalibration network)
    : name_(std::move(name)), nodes_(std::move(nodes)), network_(network) {
  BWS_CHECK(!nodes_.empty(), "cluster needs at least one node");
  for (const auto& node : nodes_)
    BWS_CHECK(node.cores >= 1, "node needs at least one core");
  BWS_CHECK(network_.link_bandwidth > 0.0, "network bandwidth must be set");
}

ClusterSpec ClusterSpec::uniform(std::string name, int num_nodes,
                                 int cores_per_node,
                                 NetworkCalibration network) {
  BWS_CHECK(num_nodes >= 1, "cluster needs at least one node");
  std::vector<NodeSpec> nodes(static_cast<size_t>(num_nodes),
                              NodeSpec{cores_per_node, 4.0 * GiB});
  return ClusterSpec(std::move(name), std::move(nodes), network);
}

ClusterSpec ClusterSpec::ibm_eserver326_gige(int num_nodes) {
  return uniform("IBM eServer 326 (2x Opteron 248, GigE BCM5704)", num_nodes,
                 2, gigabit_ethernet_calibration());
}

ClusterSpec ClusterSpec::ibm_eserver325_myrinet(int num_nodes) {
  return uniform("IBM eServer 325 (2x Opteron 246, Myrinet 2000)", num_nodes,
                 2, myrinet2000_calibration());
}

ClusterSpec ClusterSpec::bull_novascale_ib(int num_nodes) {
  return uniform("BULL Novascale (2x Woodcrest, InfiniHost III)", num_nodes, 4,
                 infiniband_calibration());
}

const NodeSpec& ClusterSpec::node(NodeId id) const {
  BWS_CHECK(id >= 0 && id < num_nodes(),
            strformat("node id %d out of range [0,%d)", id, num_nodes()));
  return nodes_[static_cast<size_t>(id)];
}

int ClusterSpec::total_cores() const {
  int total = 0;
  for (const auto& node : nodes_) total += node.cores;
  return total;
}

}  // namespace bwshare::topo
