// The paper's §IV-B measurement software, reimplemented over the simulator:
//
//   "The parameters of the software are: iteration number of MPI_SEND; a
//    referential time (one 20 MB MPI_Send node 0 -> node 1 with nothing
//    else); a description of the communication task scheme. At the end, the
//    software gives us the penalty P_i = T_i / T_ref for each task."
//
// A communication scheme (graph::CommGraph over cluster nodes) is turned
// into an MPI job: one sender and one receiver task per communication,
// pinned to the scheme's nodes; warm-up rounds precede measured rounds, and
// a barrier separates iterations so every round starts simultaneously.
#pragma once

#include <vector>

#include "flowsim/fluid_network.hpp"
#include "graph/comm_graph.hpp"
#include "topo/cluster.hpp"

namespace bwshare::mpi {

struct MeasurementConfig {
  /// Measured iterations of each MPI_Send.
  int iterations = 3;
  /// Unmeasured warm-up iterations (the paper uses them to defeat cache
  /// effects).
  int warmup = 1;
  /// Message size for the referential time probe.
  double reference_bytes = 20e6;
};

struct PenaltyMeasurement {
  /// Referential time T_ref at reference_bytes.
  double t_ref = 0.0;
  /// Per-communication mean sender time T_i (graph order).
  std::vector<double> times;
  /// Per-communication penalty P_i = T_i / t_ref_i, where t_ref_i is the
  /// referential time scaled to comm i's size.
  std::vector<double> penalties;
};

/// Run the measurement software for `scheme` on `cluster`, with transfer
/// rates supplied by `provider` (fluid substrate or a model).
[[nodiscard]] PenaltyMeasurement measure_scheme_penalties(
    const graph::CommGraph& scheme, const topo::ClusterSpec& cluster,
    const flowsim::RateProvider& provider, const MeasurementConfig& config = {});

/// A MeasureFn (models/estimation.hpp signature) backed by this software.
[[nodiscard]] std::vector<double> measure_times(
    const graph::CommGraph& scheme, const topo::ClusterSpec& cluster,
    const flowsim::RateProvider& provider, const MeasurementConfig& config = {});

}  // namespace bwshare::mpi
