#include "mpi/minimpi.hpp"

#include "util/error.hpp"

namespace bwshare::mpi {

void Rank::send(sim::TaskId to, double bytes) {
  BWS_CHECK(to != rank_, "a task cannot MPI_Send to itself");
  BWS_CHECK(to >= 0 && to < size_, "send destination out of range");
  trace_.push(rank_, sim::Event::send(to, bytes));
}

void Rank::recv(sim::TaskId from, double bytes) {
  BWS_CHECK(from >= 0 && from < size_, "receive source out of range");
  trace_.push(rank_, sim::Event::recv(from, bytes));
}

void Rank::recv_any(double bytes) {
  trace_.push(rank_, sim::Event::recv_any(bytes));
}

void Rank::isend(sim::TaskId to, double bytes) {
  BWS_CHECK(to != rank_, "a task cannot MPI_Isend to itself");
  BWS_CHECK(to >= 0 && to < size_, "send destination out of range");
  trace_.push(rank_, sim::Event::isend(to, bytes));
}

void Rank::irecv(sim::TaskId from, double bytes) {
  BWS_CHECK(from >= 0 && from < size_, "receive source out of range");
  trace_.push(rank_, sim::Event::irecv(from, bytes));
}

void Rank::wait_all() { trace_.push(rank_, sim::Event::wait_all()); }

void Rank::compute(double seconds) {
  trace_.push(rank_, sim::Event::compute(seconds));
}

void Rank::barrier() { trace_.push(rank_, sim::Event::barrier()); }

MiniMpi::MiniMpi(int size) : trace_(size) {
  BWS_CHECK(size >= 1, "MiniMPI needs at least one rank");
}

void MiniMpi::run(const std::function<void(Rank&)>& body) {
  for (sim::TaskId r = 0; r < trace_.num_tasks(); ++r) {
    Rank rank(trace_, r, trace_.num_tasks());
    body(rank);
  }
}

const sim::AppTrace& MiniMpi::trace() const {
  trace_.validate();
  return trace_;
}

}  // namespace bwshare::mpi
