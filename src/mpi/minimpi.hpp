// MiniMPI: a small MPI-flavoured programming interface whose calls record
// application traces for the simulator. Task functions are written like MPI
// programs (rank/size/send/recv/barrier); running them produces the
// sim::AppTrace the engine replays. This mirrors how the paper gathers
// application events (an instrumented MPI, §VI-D) without needing a real
// MPI installation.
//
//   MiniMpi mpi(4);
//   mpi.run([](Rank& self) {
//     if (self.rank() == 0) self.send(1, 20 * MB);
//     if (self.rank() == 1) self.recv(0, 20 * MB);
//     self.barrier();
//   });
//   sim::AppTrace trace = mpi.trace();
#pragma once

#include <functional>

#include "sim/events.hpp"

namespace bwshare::mpi {

/// Per-task recording handle passed to user task functions.
class Rank {
 public:
  Rank(sim::AppTrace& trace, sim::TaskId rank, int size)
      : trace_(trace), rank_(rank), size_(size) {}

  [[nodiscard]] sim::TaskId rank() const { return rank_; }
  [[nodiscard]] int size() const { return size_; }

  /// Blocking send (MPI_Send).
  void send(sim::TaskId to, double bytes);
  /// Blocking receive from a specific source.
  void recv(sim::TaskId from, double bytes);
  /// Blocking receive with MPI_ANY_SOURCE.
  void recv_any(double bytes);
  /// Non-blocking send (MPI_Isend); complete it with wait_all().
  void isend(sim::TaskId to, double bytes);
  /// Non-blocking receive (MPI_Irecv); complete it with wait_all().
  void irecv(sim::TaskId from, double bytes);
  /// Wait for every outstanding isend/irecv (MPI_Waitall).
  void wait_all();
  /// Local computation for `seconds`.
  void compute(double seconds);
  /// Synchronization barrier (must be called by every rank the same number
  /// of times; AppTrace::validate enforces it).
  void barrier();

 private:
  sim::AppTrace& trace_;
  sim::TaskId rank_;
  int size_;
};

class MiniMpi {
 public:
  explicit MiniMpi(int size);

  /// Run `body` once per rank, recording every call. May be called several
  /// times; events append in order.
  void run(const std::function<void(Rank&)>& body);

  /// The recorded (validated) trace.
  [[nodiscard]] const sim::AppTrace& trace() const;

  [[nodiscard]] int size() const { return trace_.num_tasks(); }

 private:
  sim::AppTrace trace_;
};

}  // namespace bwshare::mpi
