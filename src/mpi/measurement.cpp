#include "mpi/measurement.hpp"

#include <map>

#include "sim/engine.hpp"
#include "util/error.hpp"

namespace bwshare::mpi {

namespace {

/// Build the measurement job: tasks 2i (sender) and 2i+1 (receiver) per
/// communication, `rounds` iterations separated by barriers.
sim::AppTrace build_job(const graph::CommGraph& scheme, int rounds) {
  sim::AppTrace trace(2 * scheme.size());
  for (int round = 0; round < rounds; ++round) {
    for (graph::CommId i = 0; i < scheme.size(); ++i) {
      const auto& c = scheme.comm(i);
      (void)c;
      trace.push(2 * i, sim::Event::send(2 * i + 1, scheme.comm(i).bytes));
      trace.push(2 * i + 1, sim::Event::recv(2 * i, scheme.comm(i).bytes));
    }
    trace.push_barrier_all();
  }
  trace.validate();
  return trace;
}

sim::Placement build_placement(const graph::CommGraph& scheme) {
  std::vector<topo::NodeId> nodes(static_cast<size_t>(2 * scheme.size()));
  for (graph::CommId i = 0; i < scheme.size(); ++i) {
    nodes[static_cast<size_t>(2 * i)] = scheme.comm(i).src;
    nodes[static_cast<size_t>(2 * i + 1)] = scheme.comm(i).dst;
  }
  return sim::Placement(std::move(nodes));
}

/// Mean sender-side time of the last `measured` rounds for each comm.
std::vector<double> sender_times(const sim::SimResult& result,
                                 const graph::CommGraph& scheme, int rounds,
                                 int measured) {
  // Records group by (src_task): comm i uses tasks 2i -> 2i+1; they appear
  // once per round in posting order.
  std::map<sim::TaskId, std::vector<const sim::CommRecord*>> by_sender;
  for (const auto& rec : result.comms)
    by_sender[rec.src_task].push_back(&rec);

  std::vector<double> times(static_cast<size_t>(scheme.size()), 0.0);
  for (graph::CommId i = 0; i < scheme.size(); ++i) {
    const auto& records = by_sender[2 * i];
    BWS_ASSERT(static_cast<int>(records.size()) == rounds,
               "unexpected record count for a measured communication");
    double total = 0.0;
    for (int r = rounds - measured; r < rounds; ++r) {
      const auto& rec = *records[static_cast<size_t>(r)];
      const double t = rec.sender_time > 0.0 ? rec.sender_time
                                             : rec.finish - rec.send_post;
      total += t;
    }
    times[static_cast<size_t>(i)] = total / measured;
  }
  return times;
}

/// Referential time: one message of `bytes` from node 0 to node 1, alone.
double probe_reference(double bytes, const topo::ClusterSpec& cluster,
                       const flowsim::RateProvider& provider,
                       const MeasurementConfig& cfg) {
  graph::CommGraph single;
  single.add("ref", 0, 1, bytes);
  const int rounds = cfg.warmup + cfg.iterations;
  const auto trace = build_job(single, rounds);
  const auto placement = build_placement(single);
  const auto result = sim::run_simulation(trace, cluster, placement, provider);
  return sender_times(result, single, rounds, cfg.iterations)[0];
}

}  // namespace

PenaltyMeasurement measure_scheme_penalties(const graph::CommGraph& scheme,
                                            const topo::ClusterSpec& cluster,
                                            const flowsim::RateProvider& provider,
                                            const MeasurementConfig& cfg) {
  BWS_CHECK(!scheme.empty(), "scheme has no communications");
  BWS_CHECK(cfg.iterations >= 1, "need at least one measured iteration");
  BWS_CHECK(cfg.warmup >= 0, "warmup must be non-negative");
  BWS_CHECK(scheme.num_nodes() <= cluster.num_nodes(),
            "scheme references more nodes than the cluster has");

  PenaltyMeasurement out;
  out.t_ref = probe_reference(cfg.reference_bytes, cluster, provider, cfg);

  const int rounds = cfg.warmup + cfg.iterations;
  const auto trace = build_job(scheme, rounds);
  const auto placement = build_placement(scheme);
  const auto result = sim::run_simulation(trace, cluster, placement, provider);
  out.times = sender_times(result, scheme, rounds, cfg.iterations);

  // Reference per distinct message size (all fig-2 schemes are uniform, but
  // synthetic graphs may mix sizes).
  std::map<double, double> ref_for_size;
  out.penalties.resize(out.times.size());
  for (graph::CommId i = 0; i < scheme.size(); ++i) {
    const double bytes = scheme.comm(i).bytes;
    auto it = ref_for_size.find(bytes);
    if (it == ref_for_size.end()) {
      const double ref = bytes == cfg.reference_bytes
                             ? out.t_ref
                             : probe_reference(bytes, cluster, provider, cfg);
      it = ref_for_size.emplace(bytes, ref).first;
    }
    out.penalties[static_cast<size_t>(i)] =
        out.times[static_cast<size_t>(i)] / it->second;
  }
  return out;
}

std::vector<double> measure_times(const graph::CommGraph& scheme,
                                  const topo::ClusterSpec& cluster,
                                  const flowsim::RateProvider& provider,
                                  const MeasurementConfig& config) {
  return measure_scheme_penalties(scheme, cluster, provider, config).times;
}

}  // namespace bwshare::mpi
