// The event-core's finish-time priority index: an indexed binary min-heap
// over (time, tie) with stable, generation-tagged slot handles. Both event
// loops in the repo run on it — sim::Engine keys in-flight transfers and
// compute wake-ups by predicted finish time, flowsim::des::Simulator (via
// core::Reactor) keys scheduled handlers — so O(log n) push/pop and
// O(log n) decrease/increase-key replace the per-event linear scans the
// engine used to do (docs/PERFORMANCE.md, "The event-core").
//
// Determinism contract: the heap order is the strict lexicographic order on
// (time, tie). Callers must make ties unique (the engine uses the comm's
// posting-record id, the reactor a monotone sequence number), which makes
// pop order a pure function of the entry set — independent of insertion
// order, update history, or slot reuse.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace bwshare::core {

/// Opaque ticket for one queued entry. Handles are *stable*: heap
/// reordering never invalidates them, only pop/erase of the entry itself
/// does. They are generation-tagged, so a stale handle (kept after its
/// entry left the queue, even if the slot was since recycled) is detected
/// by contains()/update()/erase() instead of silently aliasing a new entry.
using EventHandle = std::uint64_t;

/// Never a live handle (generations start at 1).
inline constexpr EventHandle kNullEventHandle = 0;

template <typename Payload>
class EventQueue {
 public:
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] bool empty() const { return heap_.empty(); }

  /// Insert an entry; O(log n). `tie` breaks equal times (lower pops first)
  /// and should be unique across live entries for full determinism.
  EventHandle push(double time, std::uint64_t tie, Payload payload) {
    std::uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else {
      slots_.emplace_back();
      slot = static_cast<std::uint32_t>(slots_.size()) - 1;
    }
    Slot& s = slots_[slot];
    s.time = time;
    s.tie = tie;
    s.payload = std::move(payload);
    s.alive = true;
    ++s.gen;
    s.pos = static_cast<std::uint32_t>(heap_.size());
    heap_.push_back(slot);
    sift_up(s.pos);
    return (static_cast<EventHandle>(s.gen) << 32) | slot;
  }

  /// True iff `h` refers to an entry still in the queue.
  [[nodiscard]] bool contains(EventHandle h) const {
    const std::uint32_t slot = static_cast<std::uint32_t>(h & 0xffffffffu);
    const std::uint32_t gen = static_cast<std::uint32_t>(h >> 32);
    return slot < slots_.size() && slots_[slot].alive &&
           slots_[slot].gen == gen;
  }

  /// Re-key a live entry to `time` (decrease *or* increase); O(log n).
  void update(EventHandle h, double time) {
    Slot& s = slots_[checked_slot(h)];
    s.time = time;
    sift_up(s.pos);
    sift_down(s.pos);
  }

  /// Remove a live entry by handle; O(log n).
  void erase(EventHandle h) { remove_at(slots_[checked_slot(h)].pos); }

  [[nodiscard]] double time_of(EventHandle h) const {
    return slots_[checked_slot(h)].time;
  }

  [[nodiscard]] double top_time() const {
    BWS_CHECK(!heap_.empty(), "EventQueue::top_time on an empty queue");
    return slots_[heap_.front()].time;
  }

  [[nodiscard]] std::uint64_t top_tie() const {
    BWS_CHECK(!heap_.empty(), "EventQueue::top_tie on an empty queue");
    return slots_[heap_.front()].tie;
  }

  /// Payload of the minimum entry (valid until the next mutation).
  [[nodiscard]] const Payload& top() const {
    BWS_CHECK(!heap_.empty(), "EventQueue::top on an empty queue");
    return slots_[heap_.front()].payload;
  }

  /// Remove and return the minimum entry's payload; O(log n).
  Payload pop() {
    BWS_CHECK(!heap_.empty(), "EventQueue::pop on an empty queue");
    Payload out = std::move(slots_[heap_.front()].payload);
    remove_at(0);
    return out;
  }

  void clear() {
    for (const std::uint32_t slot : heap_) {
      slots_[slot].alive = false;
      slots_[slot].payload = Payload{};
      free_.push_back(slot);
    }
    heap_.clear();
  }

  /// Test hook: verify the heap invariant and the slot <-> position index.
  [[nodiscard]] bool check_heap() const {
    for (std::uint32_t pos = 0; pos < heap_.size(); ++pos) {
      if (slots_[heap_[pos]].pos != pos) return false;
      if (!slots_[heap_[pos]].alive) return false;
      if (pos > 0 && before(heap_[pos], heap_[(pos - 1) / 2])) return false;
    }
    return true;
  }

 private:
  struct Slot {
    double time = 0.0;
    std::uint64_t tie = 0;
    std::uint32_t gen = 0;  // bumped on every (re)allocation of the slot
    std::uint32_t pos = 0;  // index into heap_ while alive
    bool alive = false;
    Payload payload{};
  };

  [[nodiscard]] std::uint32_t checked_slot(EventHandle h) const {
    BWS_CHECK(contains(h), "stale or invalid EventQueue handle");
    return static_cast<std::uint32_t>(h & 0xffffffffu);
  }

  [[nodiscard]] bool before(std::uint32_t a, std::uint32_t b) const {
    const Slot& sa = slots_[a];
    const Slot& sb = slots_[b];
    if (sa.time != sb.time) return sa.time < sb.time;
    return sa.tie < sb.tie;
  }

  void place(std::uint32_t pos, std::uint32_t slot) {
    heap_[pos] = slot;
    slots_[slot].pos = pos;
  }

  void sift_up(std::uint32_t pos) {
    const std::uint32_t slot = heap_[pos];
    while (pos > 0) {
      const std::uint32_t parent = (pos - 1) / 2;
      if (!before(slot, heap_[parent])) break;
      place(pos, heap_[parent]);
      pos = parent;
    }
    place(pos, slot);
  }

  void sift_down(std::uint32_t pos) {
    const std::uint32_t slot = heap_[pos];
    const std::uint32_t n = static_cast<std::uint32_t>(heap_.size());
    while (true) {
      std::uint32_t child = 2 * pos + 1;
      if (child >= n) break;
      if (child + 1 < n && before(heap_[child + 1], heap_[child])) ++child;
      if (!before(heap_[child], slot)) break;
      place(pos, heap_[child]);
      pos = child;
    }
    place(pos, slot);
  }

  void remove_at(std::uint32_t pos) {
    const std::uint32_t slot = heap_[pos];
    const std::uint32_t last = heap_.back();
    heap_.pop_back();
    if (pos < heap_.size()) {
      place(pos, last);
      sift_up(pos);
      sift_down(slots_[last].pos);
    }
    slots_[slot].alive = false;
    slots_[slot].payload = Payload{};
    free_.push_back(slot);
  }

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> heap_;  // heap of slot indices
  std::vector<std::uint32_t> free_;
};

}  // namespace bwshare::core
