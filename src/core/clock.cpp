#include "core/clock.hpp"

#include <utility>

namespace bwshare::core {

EventHandle Reactor::schedule_at(double when, Handler handler) {
  BWS_CHECK(when >= clock_.now(), "cannot schedule an event in the past");
  return queue_.push(when, next_seq_++, std::move(handler));
}

EventHandle Reactor::schedule_in(double delay, Handler handler) {
  BWS_CHECK(delay >= 0.0, "delay must be non-negative");
  return schedule_at(clock_.now() + delay, std::move(handler));
}

bool Reactor::cancel(EventHandle h) {
  if (!queue_.contains(h)) return false;
  queue_.erase(h);
  return true;
}

size_t Reactor::run(double max_time) {
  size_t processed = 0;
  while (!queue_.empty()) {
    if (queue_.top_time() > max_time) break;
    clock_.advance_to(queue_.top_time());
    Handler handler = queue_.pop();
    handler();
    ++processed;
  }
  return processed;
}

}  // namespace bwshare::core
