// The event-core's time source and reactor. core::Clock is the one
// monotone simulation clock both backends advance (sim::Engine hops it to
// the next queue entry, flowsim::des charges scheduled handlers against
// it); core::Reactor pairs a Clock with an EventQueue of handlers — the
// classic discrete-event loop — and is what flowsim::des::Simulator now
// wraps. See docs/ARCHITECTURE.md ("The event-core") for how the two
// simulators share this layer.
#pragma once

#include <cstdint>
#include <functional>

#include "core/event_queue.hpp"

namespace bwshare::core {

/// Monotone simulation time. Advancing backwards is a bug in the caller's
/// event ordering, so it throws instead of silently rewinding.
class Clock {
 public:
  [[nodiscard]] double now() const { return now_; }

  /// Jump to absolute time `t` (>= now).
  void advance_to(double t) {
    BWS_CHECK(t >= now_, "simulation clock cannot run backwards");
    now_ = t;
  }

  /// Advance by a non-negative duration.
  void advance_by(double dt) {
    BWS_CHECK(dt >= 0.0, "clock duration must be non-negative");
    now_ += dt;
  }

 private:
  double now_ = 0.0;
};

/// A Clock driving an EventQueue of handlers: schedule callbacks at
/// absolute or relative times, then run() pops them in (time, FIFO) order.
/// schedule_* return the entry's EventHandle so a pending event can be
/// cancel()ed in O(log n); stale handles (already fired, cancelled or
/// cleared) are recognised and reported, never aliased.
class Reactor {
 public:
  using Handler = std::function<void()>;

  [[nodiscard]] double now() const { return clock_.now(); }

  /// Schedule `handler` at absolute time `when` (>= now).
  EventHandle schedule_at(double when, Handler handler);
  /// Schedule `handler` `delay` seconds from now.
  EventHandle schedule_in(double delay, Handler handler);

  /// Drop a pending event. Returns false (and does nothing) if the handle
  /// is stale — the event already fired, was cancelled, or was cleared.
  bool cancel(EventHandle h);

  /// Run until the queue drains or the next event lies beyond `max_time`.
  /// Returns the number of events processed.
  size_t run(double max_time = 1e18);

  /// Drop all pending events (the clock keeps its position).
  void clear() { queue_.clear(); }

  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] size_t pending() const { return queue_.size(); }

 private:
  Clock clock_;
  std::uint64_t next_seq_ = 0;  // FIFO tie-break for simultaneous events
  EventQueue<Handler> queue_;
};

}  // namespace bwshare::core
