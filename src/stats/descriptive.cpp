#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace bwshare::stats {

void Accumulator::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void Accumulator::merge(const Accumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Accumulator::mean() const { return count_ == 0 ? 0.0 : mean_; }

double Accumulator::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::min() const { return min_; }
double Accumulator::max() const { return max_; }

double mean(std::span<const double> xs) {
  Accumulator acc;
  for (double x : xs) acc.add(x);
  return acc.mean();
}

double variance(std::span<const double> xs) {
  Accumulator acc;
  for (double x : xs) acc.add(x);
  return acc.variance();
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double percentile(std::span<const double> xs, double q) {
  BWS_CHECK(!xs.empty(), "percentile of empty series");
  BWS_CHECK(q >= 0.0 && q <= 100.0, "percentile q must be in [0,100]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double mean_abs(std::span<const double> xs) {
  Accumulator acc;
  for (double x : xs) acc.add(std::fabs(x));
  return acc.mean();
}

double rmse(std::span<const double> a, std::span<const double> b) {
  BWS_CHECK(a.size() == b.size(), "rmse: size mismatch");
  BWS_CHECK(!a.empty(), "rmse of empty series");
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(a.size()));
}

double pearson(std::span<const double> a, std::span<const double> b) {
  BWS_CHECK(a.size() == b.size(), "pearson: size mismatch");
  if (a.size() < 2) return 0.0;
  const double ma = mean(a);
  const double mb = mean(b);
  double cov = 0.0;
  double va = 0.0;
  double vb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  if (va == 0.0 || vb == 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

}  // namespace bwshare::stats
