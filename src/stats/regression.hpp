// Ordinary least squares fits. The GigE model's β parameter is estimated as
// the slope of penalty vs. conflict degree through the origin (§V-A); the
// general linear fit backs the LogGP-style baseline's (latency, 1/bandwidth)
// calibration.
#pragma once

#include <span>

namespace bwshare::stats {

/// Result of a simple linear regression y ≈ intercept + slope·x.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  /// Coefficient of determination.
  double r_squared = 0.0;
};

/// OLS fit of y = a + b·x. Requires at least two distinct x values.
[[nodiscard]] LinearFit fit_linear(std::span<const double> x,
                                   std::span<const double> y);

/// OLS fit of y = b·x (regression through the origin).
[[nodiscard]] double fit_proportional(std::span<const double> x,
                                      std::span<const double> y);

}  // namespace bwshare::stats
