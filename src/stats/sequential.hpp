// Sequential best-arm identification over bootstrapped confidence
// intervals — the decision core behind eval::Campaign's adaptive
// Monte-Carlo loops (docs/EXPERIMENTS.md "Campaigns").
//
// The caller owns sampling: it feeds replicate values for a set of
// candidate arms (lower is better — makespans, error percentages) in
// rounds, and after each round asks finish_round() whether the configured
// stopping rule has fired. Three rules, after MAGPIE's simmer/BAI loop:
//
//   * kCiWidth  — precision: stop once every surviving arm's bootstrap CI
//     half-width is below `tolerance` relative to its point estimate. No
//     arm is eliminated; the answer is "every candidate, measured tightly".
//   * kBestArm  — identification: stop once the leader's CI separates from
//     every surviving rival's (leader.high < rival.low for all rivals). No
//     elimination either: all arms keep sampling until full separation, so
//     the final report carries a comparable interval per arm.
//   * kCutoff   — elimination: each round, drop every arm whose CI lower
//     bound exceeds the incumbent leader's CI upper bound (it can no
//     longer win at this confidence), and stop when one survivor remains.
//     Eliminated arms stop costing replicates — the MAGPIE
//     threshold-cutoff idiom, and the rule that saves the most work.
//
// Every rule also terminates when each surviving arm reaches
// `max_replicates` (status kExhausted); the leader is still reported.
// All decisions are made from the sample values alone, in arm-index order,
// with bootstrap resampling seeded per arm — so a campaign's verdict is a
// pure function of its samples, independent of thread count or timing.
//
// Confidence semantics: `confidence` is the level of each per-arm bootstrap
// interval, i.e. decisions are made at per-comparison confidence, not
// family-wise (no multiplicity correction across arms or rounds).
// tests/stats/test_sequential.cpp measures the resulting campaign-level
// accuracy empirically on planted-winner arms.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stats/bootstrap.hpp"

namespace bwshare::stats {

enum class StoppingRule { kCiWidth, kBestArm, kCutoff };

[[nodiscard]] std::string to_string(StoppingRule rule);
/// Accepts "ci-width", "best-arm", "cutoff"; throws bwshare::Error.
[[nodiscard]] StoppingRule stopping_rule_from_string(const std::string& name);

struct SequentialConfig {
  StoppingRule rule = StoppingRule::kBestArm;
  /// kCiWidth: relative half-width target, (high-low)/2 <= tolerance*|point|
  /// (absolute width when the point estimate is 0). Must be > 0.
  double tolerance = 0.05;
  /// Two-sided level of every per-arm bootstrap interval, in (0,1).
  double confidence = 0.95;
  /// No elimination or stop decision is taken before every surviving arm
  /// has at least this many replicates.
  int min_replicates = 8;
  /// Hard per-arm budget; reaching it on all survivors stops the campaign.
  int max_replicates = 256;
  /// Bootstrap resamples per interval.
  size_t resamples = 400;
  /// Base seed for the bootstrap resampling streams (salted per arm).
  uint64_t ci_seed = 42;

  /// Throws bwshare::Error on any out-of-range field.
  void validate() const;
};

/// Why the campaign stopped (kContinue = it has not).
enum class SequentialStatus {
  kContinue,
  kCiWidth,     // every surviving CI under tolerance
  kBestArm,     // leader separated from every surviving rival
  kCutoff,      // eliminations left a single survivor
  kExhausted,   // every survivor reached max_replicates (or none survive)
};

[[nodiscard]] std::string to_string(SequentialStatus status);

struct SequentialArm {
  std::vector<double> samples;
  Interval ci{};          // meaningful once has_ci
  bool has_ci = false;
  bool eliminated = false;  // dropped by the kCutoff rule
  bool error = false;       // the caller's executor failed this arm
  /// Round (1-based) the arm was eliminated or errored; -1 while in play.
  int out_round = -1;

  [[nodiscard]] bool surviving() const { return !eliminated && !error; }
};

/// Lower-is-better sequential test over `num_arms` candidates.
class SequentialTest {
 public:
  /// Validates the config; throws bwshare::Error (also on num_arms == 0).
  SequentialTest(SequentialConfig config, size_t num_arms);

  /// Record one replicate value for an arm. Ignored (by contract the
  /// caller should not sample them) only in the sense that callers must
  /// not add samples to eliminated/errored arms — that throws.
  void add_sample(size_t arm, double value);

  /// Mark an arm failed (executor error). It leaves the pool immediately:
  /// no further samples, excluded from every decision.
  void mark_error(size_t arm);

  /// Close the current round: recompute the bootstrap CI of every
  /// surviving arm (in arm order, deterministically seeded), apply the
  /// kCutoff eliminations, and evaluate the stopping rule. Rounds are
  /// 1-based; decisions are deferred until every surviving arm has
  /// min_replicates samples.
  [[nodiscard]] SequentialStatus finish_round();

  [[nodiscard]] const SequentialConfig& config() const { return config_; }
  [[nodiscard]] size_t num_arms() const { return arms_.size(); }
  [[nodiscard]] const SequentialArm& arm(size_t i) const;
  [[nodiscard]] size_t num_surviving() const;
  /// Rounds closed so far (== finish_round() calls).
  [[nodiscard]] int rounds() const { return rounds_; }
  /// Surviving arm with the lowest point estimate (ties: lowest index);
  /// falls back to sample mean before the first CI. -1 if none survive.
  [[nodiscard]] int leader() const;
  /// Total replicates recorded across all arms (error arms included).
  [[nodiscard]] size_t total_samples() const;

 private:
  void refresh_intervals();

  SequentialConfig config_;
  std::vector<SequentialArm> arms_;
  int rounds_ = 0;
};

}  // namespace bwshare::stats
