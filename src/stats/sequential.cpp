#include "stats/sequential.hpp"

#include <cmath>
#include <limits>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace bwshare::stats {

namespace {

// Deterministic per-arm salt for the bootstrap streams: two chained
// splitmix64 steps disperse (base, salt) so neighbouring arms get
// uncorrelated resampling sequences.
uint64_t mix_seed(uint64_t base, uint64_t salt) {
  uint64_t state = base;
  const uint64_t whitened = splitmix64(state);
  state = whitened ^ (salt + 0x9e3779b97f4a7c15ULL);
  return splitmix64(state);
}

}  // namespace

std::string to_string(StoppingRule rule) {
  switch (rule) {
    case StoppingRule::kCiWidth: return "ci-width";
    case StoppingRule::kBestArm: return "best-arm";
    case StoppingRule::kCutoff: return "cutoff";
  }
  return "?";
}

StoppingRule stopping_rule_from_string(const std::string& name) {
  if (name == "ci-width") return StoppingRule::kCiWidth;
  if (name == "best-arm") return StoppingRule::kBestArm;
  if (name == "cutoff") return StoppingRule::kCutoff;
  BWS_THROW("unknown stopping rule '" + name +
            "' (expected ci-width, best-arm or cutoff)");
}

std::string to_string(SequentialStatus status) {
  switch (status) {
    case SequentialStatus::kContinue: return "continue";
    case SequentialStatus::kCiWidth: return "ci-width";
    case SequentialStatus::kBestArm: return "best-arm";
    case SequentialStatus::kCutoff: return "cutoff";
    case SequentialStatus::kExhausted: return "max-replicates";
  }
  return "?";
}

void SequentialConfig::validate() const {
  BWS_CHECK(std::isfinite(tolerance) && tolerance > 0.0,
            strformat("sequential: tolerance must be finite and > 0, got %g",
                      tolerance));
  BWS_CHECK(confidence > 0.0 && confidence < 1.0,
            strformat("sequential: confidence must be in (0,1), got %g",
                      confidence));
  BWS_CHECK(min_replicates >= 1,
            strformat("sequential: min_replicates must be >= 1, got %d",
                      min_replicates));
  BWS_CHECK(max_replicates >= min_replicates,
            strformat("sequential: max_replicates (%d) must be >= "
                      "min_replicates (%d)",
                      max_replicates, min_replicates));
  BWS_CHECK(resamples >= 1, "sequential: resamples must be >= 1");
}

SequentialTest::SequentialTest(SequentialConfig config, size_t num_arms)
    : config_(config) {
  config_.validate();
  BWS_CHECK(num_arms >= 1, "sequential: at least one arm is required");
  arms_.resize(num_arms);
}

void SequentialTest::add_sample(size_t arm, double value) {
  BWS_CHECK(arm < arms_.size(),
            strformat("sequential: arm %zu out of range (%zu arms)", arm,
                      arms_.size()));
  BWS_CHECK(arms_[arm].surviving(),
            strformat("sequential: arm %zu is out of play (eliminated or "
                      "errored) and must not be sampled",
                      arm));
  arms_[arm].samples.push_back(value);
}

void SequentialTest::mark_error(size_t arm) {
  BWS_CHECK(arm < arms_.size(),
            strformat("sequential: arm %zu out of range (%zu arms)", arm,
                      arms_.size()));
  if (arms_[arm].error) return;  // idempotent: one error verdict per arm
  arms_[arm].error = true;
  arms_[arm].eliminated = false;
  arms_[arm].out_round = rounds_ + 1;  // the round currently being sampled
}

const SequentialArm& SequentialTest::arm(size_t i) const {
  BWS_CHECK(i < arms_.size(),
            strformat("sequential: arm %zu out of range (%zu arms)", i,
                      arms_.size()));
  return arms_[i];
}

size_t SequentialTest::num_surviving() const {
  size_t n = 0;
  for (const auto& a : arms_) n += a.surviving() ? 1 : 0;
  return n;
}

int SequentialTest::leader() const {
  int best = -1;
  double best_value = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < arms_.size(); ++i) {
    const auto& a = arms_[i];
    if (!a.surviving() || a.samples.empty()) continue;
    double value = 0.0;
    if (a.has_ci) {
      value = a.ci.point;
    } else {
      for (const double x : a.samples) value += x;
      value /= static_cast<double>(a.samples.size());
    }
    if (value < best_value) {  // strict: ties keep the lowest arm index
      best_value = value;
      best = static_cast<int>(i);
    }
  }
  return best;
}

size_t SequentialTest::total_samples() const {
  size_t n = 0;
  for (const auto& a : arms_) n += a.samples.size();
  return n;
}

void SequentialTest::refresh_intervals() {
  for (size_t i = 0; i < arms_.size(); ++i) {
    auto& a = arms_[i];
    if (!a.surviving() || a.samples.empty()) continue;
    // The per-arm seed is stable across rounds, so a CI depends only on
    // (samples, config) — never on how many rounds it took to gather them.
    a.ci = bootstrap_mean_ci(a.samples, config_.resamples, config_.confidence,
                             mix_seed(config_.ci_seed, i));
    a.has_ci = true;
  }
}

SequentialStatus SequentialTest::finish_round() {
  ++rounds_;
  refresh_intervals();

  if (num_surviving() == 0) return SequentialStatus::kExhausted;

  // No verdict of any kind before min_replicates: early CIs on a handful of
  // replicates are too noisy to eliminate on (the MAGPIE loop has the same
  // warm-up guard).
  for (const auto& a : arms_) {
    if (a.surviving() &&
        a.samples.size() < static_cast<size_t>(config_.min_replicates)) {
      return SequentialStatus::kContinue;
    }
  }

  if (config_.rule == StoppingRule::kCutoff) {
    // Threshold cutoff: any arm whose best case (CI lower bound) is worse
    // than the incumbent's worst case (CI upper bound) cannot win at this
    // confidence — drop it now and stop paying for its replicates.
    const int incumbent = leader();
    if (incumbent >= 0) {
      const double threshold = arms_[static_cast<size_t>(incumbent)].ci.high;
      for (size_t i = 0; i < arms_.size(); ++i) {
        auto& a = arms_[i];
        if (static_cast<int>(i) == incumbent || !a.surviving()) continue;
        if (a.ci.low > threshold) {
          a.eliminated = true;
          a.out_round = rounds_;
        }
      }
    }
    if (num_surviving() <= 1) return SequentialStatus::kCutoff;
  }

  if (config_.rule == StoppingRule::kBestArm) {
    const int lead = leader();
    if (lead >= 0) {
      const double lead_high = arms_[static_cast<size_t>(lead)].ci.high;
      bool separated = true;
      for (size_t i = 0; i < arms_.size(); ++i) {
        if (static_cast<int>(i) == lead || !arms_[i].surviving()) continue;
        if (!(lead_high < arms_[i].ci.low)) {
          separated = false;
          break;
        }
      }
      if (separated) return SequentialStatus::kBestArm;
    }
  }

  if (config_.rule == StoppingRule::kCiWidth) {
    bool all_tight = true;
    for (const auto& a : arms_) {
      if (!a.surviving()) continue;
      const double half = (a.ci.high - a.ci.low) / 2.0;
      const double scale = std::fabs(a.ci.point);
      // Relative to the point estimate; absolute when the estimate is 0
      // (a relative target on zero would never be met).
      const bool tight =
          scale > 0.0 ? half <= config_.tolerance * scale
                      : half <= config_.tolerance;
      if (!tight) {
        all_tight = false;
        break;
      }
    }
    if (all_tight) return SequentialStatus::kCiWidth;
  }

  bool all_exhausted = true;
  for (const auto& a : arms_) {
    if (a.surviving() &&
        a.samples.size() < static_cast<size_t>(config_.max_replicates)) {
      all_exhausted = false;
      break;
    }
  }
  if (all_exhausted) return SequentialStatus::kExhausted;

  return SequentialStatus::kContinue;
}

}  // namespace bwshare::stats
