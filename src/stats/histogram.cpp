#include "stats/histogram.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace bwshare::stats {

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  BWS_CHECK(hi > lo, "histogram range must be non-empty");
  BWS_CHECK(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  long idx = static_cast<long>((x - lo_) / width);
  idx = std::clamp<long>(idx, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<size_t>(idx)];
  ++total_;
}

void Histogram::add_all(std::span<const double> xs) {
  for (double x : xs) add(x);
}

double Histogram::bin_low(size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::bin_high(size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i + 1);
}

std::string Histogram::render(int width) const {
  const size_t peak = *std::max_element(counts_.begin(), counts_.end());
  std::ostringstream os;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const int bar =
        peak == 0 ? 0
                  : static_cast<int>(static_cast<double>(counts_[i]) /
                                     static_cast<double>(peak) * width);
    os << strformat("  [%8.3g, %8.3g) %6zu ", bin_low(i), bin_high(i),
                    counts_[i])
       << std::string(static_cast<size_t>(bar), '#') << '\n';
  }
  return os.str();
}

}  // namespace bwshare::stats
