// Bootstrap confidence intervals for experiment summaries. The paper reports
// single-run E_abs values; our substrate is stochastic (packet jitter, random
// placement), so bench binaries report a mean with a percentile-bootstrap CI.
#pragma once

#include <functional>
#include <span>

#include "util/rng.hpp"

namespace bwshare::stats {

struct Interval {
  double low = 0.0;
  double high = 0.0;
  double point = 0.0;
};

/// Percentile bootstrap CI for `statistic` over `xs`.
/// `level` is the two-sided confidence level, e.g. 0.95.
///
/// An empty `xs` throws std::invalid_argument with the message
/// "bootstrap_ci: empty series", and `resamples == 0` throws
/// std::invalid_argument with the message "bootstrap_ci: resamples must be
/// positive" — catchable precondition failures, distinct from
/// bwshare::Error, so callers aggregating optional series (e.g.
/// interference summaries with no completed communications) can branch on
/// the type. Out-of-range `level` still throws bwshare::Error. Both
/// messages are pinned by tests/stats/test_bootstrap.cpp.
[[nodiscard]] Interval bootstrap_ci(
    std::span<const double> xs,
    const std::function<double(std::span<const double>)>& statistic,
    size_t resamples = 1000, double level = 0.95, uint64_t seed = 42);

/// Convenience: bootstrap CI of the mean.
[[nodiscard]] Interval bootstrap_mean_ci(std::span<const double> xs,
                                         size_t resamples = 1000,
                                         double level = 0.95,
                                         uint64_t seed = 42);

}  // namespace bwshare::stats
