// Fixed-width histogram with text rendering, used by example binaries to
// visualize penalty and error distributions.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace bwshare::stats {

class Histogram {
 public:
  /// `bins` equal-width bins covering [lo, hi); out-of-range samples clamp to
  /// the first/last bin.
  Histogram(double lo, double hi, size_t bins);

  void add(double x);
  void add_all(std::span<const double> xs);

  [[nodiscard]] size_t total() const { return total_; }
  [[nodiscard]] size_t bin_count(size_t i) const { return counts_.at(i); }
  [[nodiscard]] size_t num_bins() const { return counts_.size(); }
  [[nodiscard]] double bin_low(size_t i) const;
  [[nodiscard]] double bin_high(size_t i) const;

  /// ASCII bar rendering, widest bar = `width` characters.
  [[nodiscard]] std::string render(int width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<size_t> counts_;
  size_t total_ = 0;
};

}  // namespace bwshare::stats
