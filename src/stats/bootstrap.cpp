#include "stats/bootstrap.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "stats/descriptive.hpp"
#include "util/error.hpp"

namespace bwshare::stats {

Interval bootstrap_ci(
    std::span<const double> xs,
    const std::function<double(std::span<const double>)>& statistic,
    size_t resamples, double level, uint64_t seed) {
  // Documented contract (bootstrap.hpp): an empty series is a catchable
  // std::invalid_argument, not a bwshare::Error. The message is pinned by
  // tests/stats/test_bootstrap.cpp.
  if (xs.empty()) throw std::invalid_argument("bootstrap_ci: empty series");
  // Same catchable-precondition contract as the empty series: zero resamples
  // used to fall through to percentile() over an empty estimate vector and
  // return a silently degenerate {0, 0, point} interval.
  if (resamples == 0) {
    throw std::invalid_argument("bootstrap_ci: resamples must be positive");
  }
  BWS_CHECK(level > 0.0 && level < 1.0, "confidence level must be in (0,1)");
  Rng rng(seed);
  std::vector<double> resample(xs.size());
  std::vector<double> estimates;
  estimates.reserve(resamples);
  for (size_t r = 0; r < resamples; ++r) {
    for (auto& v : resample) v = xs[rng.below(xs.size())];
    estimates.push_back(statistic(resample));
  }
  const double alpha = (1.0 - level) / 2.0;
  Interval out;
  out.point = statistic(xs);
  out.low = percentile(estimates, alpha * 100.0);
  out.high = percentile(estimates, (1.0 - alpha) * 100.0);
  return out;
}

Interval bootstrap_mean_ci(std::span<const double> xs, size_t resamples,
                           double level, uint64_t seed) {
  return bootstrap_ci(
      xs, [](std::span<const double> s) { return mean(s); }, resamples, level,
      seed);
}

}  // namespace bwshare::stats
