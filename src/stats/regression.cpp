#include "stats/regression.hpp"

#include <cmath>

#include "stats/descriptive.hpp"
#include "util/error.hpp"

namespace bwshare::stats {

LinearFit fit_linear(std::span<const double> x, std::span<const double> y) {
  BWS_CHECK(x.size() == y.size(), "fit_linear: size mismatch");
  BWS_CHECK(x.size() >= 2, "fit_linear needs at least two points");
  const double mx = mean(x);
  const double my = mean(y);
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    sxx += (x[i] - mx) * (x[i] - mx);
    sxy += (x[i] - mx) * (y[i] - my);
    syy += (y[i] - my) * (y[i] - my);
  }
  BWS_CHECK(sxx > 0.0, "fit_linear needs at least two distinct x values");
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = syy == 0.0 ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

double fit_proportional(std::span<const double> x, std::span<const double> y) {
  BWS_CHECK(x.size() == y.size(), "fit_proportional: size mismatch");
  BWS_CHECK(!x.empty(), "fit_proportional needs at least one point");
  double sxy = 0.0;
  double sxx = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    sxy += x[i] * y[i];
    sxx += x[i] * x[i];
  }
  BWS_CHECK(sxx > 0.0, "fit_proportional needs a nonzero x");
  return sxy / sxx;
}

}  // namespace bwshare::stats
