// Descriptive statistics: an online (Welford) accumulator plus batch helpers
// on spans of doubles. Used for model parameter estimation (averaging
// penalties over conflict sweeps) and for experiment reporting.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace bwshare::stats {

/// Online mean/variance/min/max accumulator (Welford's algorithm).
class Accumulator {
 public:
  void add(double x);
  void merge(const Accumulator& other);

  [[nodiscard]] size_t count() const { return count_; }
  [[nodiscard]] double mean() const;
  /// Unbiased sample variance (n-1 denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return mean() * static_cast<double>(count_); }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

[[nodiscard]] double mean(std::span<const double> xs);
[[nodiscard]] double variance(std::span<const double> xs);
[[nodiscard]] double stddev(std::span<const double> xs);
[[nodiscard]] double median(std::span<const double> xs);

/// Linear-interpolated percentile, q in [0, 100].
[[nodiscard]] double percentile(std::span<const double> xs, double q);

/// Mean of absolute values — the paper's E_abs aggregates |E_rel| this way.
[[nodiscard]] double mean_abs(std::span<const double> xs);

/// Root mean square error between two equally sized series.
[[nodiscard]] double rmse(std::span<const double> a, std::span<const double> b);

/// Pearson correlation coefficient; 0 if either series is constant.
[[nodiscard]] double pearson(std::span<const double> a,
                             std::span<const double> b);

}  // namespace bwshare::stats
