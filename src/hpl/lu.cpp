#include "hpl/lu.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace bwshare::hpl {

Matrix::Matrix(int rows, int cols)
    : rows_(rows), cols_(cols),
      data_(static_cast<size_t>(rows) * static_cast<size_t>(cols), 0.0) {
  BWS_CHECK(rows >= 0 && cols >= 0, "matrix dimensions must be non-negative");
}

double& Matrix::at(int r, int c) {
  BWS_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_,
            strformat("matrix index (%d,%d) out of %dx%d", r, c, rows_, cols_));
  return data_[static_cast<size_t>(c) * static_cast<size_t>(rows_) +
               static_cast<size_t>(r)];
}

double Matrix::at(int r, int c) const {
  return const_cast<Matrix*>(this)->at(r, c);
}

Matrix Matrix::random(int n, uint64_t seed) {
  Matrix m(n, n);
  Rng rng(seed);
  for (int c = 0; c < n; ++c)
    for (int r = 0; r < n; ++r)
      m.at(r, c) = rng.uniform(-1.0, 1.0) + (r == c ? 4.0 : 0.0);
  return m;
}

Matrix Matrix::identity(int n) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

Matrix Matrix::multiply(const Matrix& other) const {
  BWS_CHECK(cols_ == other.rows_, "matrix product shape mismatch");
  Matrix out(rows_, other.cols_);
  for (int c = 0; c < other.cols_; ++c)
    for (int k = 0; k < cols_; ++k) {
      const double v = other.at(k, c);
      if (v == 0.0) continue;
      for (int r = 0; r < rows_; ++r) out.at(r, c) += at(r, k) * v;
    }
  return out;
}

double Matrix::max_abs_diff(const Matrix& other) const {
  BWS_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
            "matrix diff shape mismatch");
  double worst = 0.0;
  for (size_t i = 0; i < data_.size(); ++i)
    worst = std::max(worst, std::fabs(data_[i] - other.data_[i]));
  return worst;
}

LuResult blocked_lu(Matrix a, int block) {
  const int n = a.rows();
  BWS_CHECK(a.rows() == a.cols(), "LU needs a square matrix");
  BWS_CHECK(block >= 1, "block size must be >= 1");

  LuResult result{std::move(a), {}, 0};
  Matrix& m = result.lu;
  result.pivots.resize(static_cast<size_t>(n));

  for (int j0 = 0; j0 < n; j0 += block) {
    const int jb = std::min(block, n - j0);
    // --- Panel factorization (unblocked LU on columns j0..j0+jb). ---------
    for (int j = j0; j < j0 + jb; ++j) {
      int piv = j;
      double best = std::fabs(m.at(j, j));
      for (int r = j + 1; r < n; ++r) {
        if (std::fabs(m.at(r, j)) > best) {
          best = std::fabs(m.at(r, j));
          piv = r;
        }
      }
      BWS_CHECK(best > 1e-12, "matrix is numerically singular");
      result.pivots[static_cast<size_t>(j)] = piv;
      if (piv != j)
        for (int c = 0; c < n; ++c) std::swap(m.at(j, c), m.at(piv, c));
      const double inv = 1.0 / m.at(j, j);
      for (int r = j + 1; r < n; ++r) {
        m.at(r, j) *= inv;
        ++result.flops;
      }
      // Update the rest of the panel only (right-looking within the panel).
      for (int c = j + 1; c < j0 + jb; ++c) {
        const double u = m.at(j, c);
        if (u == 0.0) continue;
        for (int r = j + 1; r < n; ++r) {
          m.at(r, c) -= m.at(r, j) * u;
          result.flops += 2;
        }
      }
    }
    // --- Triangular solve on the U block row: L11^-1 * A12. ---------------
    for (int c = j0 + jb; c < n; ++c) {
      for (int k = j0; k < j0 + jb; ++k) {
        const double u = m.at(k, c);
        if (u == 0.0) continue;
        for (int r = k + 1; r < j0 + jb; ++r) {
          m.at(r, c) -= m.at(r, k) * u;
          result.flops += 2;
        }
      }
    }
    // --- Trailing update: A22 -= L21 * U12 (the GEMM). ---------------------
    for (int c = j0 + jb; c < n; ++c) {
      for (int k = j0; k < j0 + jb; ++k) {
        const double u = m.at(k, c);
        if (u == 0.0) continue;
        for (int r = j0 + jb; r < n; ++r) {
          m.at(r, c) -= m.at(r, k) * u;
          result.flops += 2;
        }
      }
    }
  }
  return result;
}

Matrix apply_pivots(const Matrix& a, const std::vector<int>& pivots) {
  Matrix out = a;
  for (int j = 0; j < static_cast<int>(pivots.size()); ++j) {
    const int piv = pivots[static_cast<size_t>(j)];
    if (piv != j)
      for (int c = 0; c < out.cols(); ++c)
        std::swap(out.at(j, c), out.at(piv, c));
  }
  return out;
}

Matrix reconstruct(const LuResult& result) {
  const int n = result.lu.rows();
  Matrix l = Matrix::identity(n);
  Matrix u(n, n);
  for (int c = 0; c < n; ++c)
    for (int r = 0; r < n; ++r) {
      if (r > c)
        l.at(r, c) = result.lu.at(r, c);
      else
        u.at(r, c) = result.lu.at(r, c);
    }
  return l.multiply(u);
}

std::vector<double> lu_solve(const LuResult& result, std::vector<double> b) {
  const int n = result.lu.rows();
  BWS_CHECK(static_cast<int>(b.size()) == n, "rhs size mismatch");
  // Apply pivots.
  for (int j = 0; j < n; ++j) {
    const int piv = result.pivots[static_cast<size_t>(j)];
    if (piv != j) std::swap(b[static_cast<size_t>(j)], b[static_cast<size_t>(piv)]);
  }
  // Forward substitution (unit lower).
  for (int j = 0; j < n; ++j)
    for (int r = j + 1; r < n; ++r)
      b[static_cast<size_t>(r)] -= result.lu.at(r, j) * b[static_cast<size_t>(j)];
  // Backward substitution.
  for (int j = n - 1; j >= 0; --j) {
    b[static_cast<size_t>(j)] /= result.lu.at(j, j);
    for (int r = 0; r < j; ++r)
      b[static_cast<size_t>(r)] -= result.lu.at(r, j) * b[static_cast<size_t>(j)];
  }
  return b;
}

double panel_flops(double m, double nb) {
  // Unblocked LU of an m x nb panel: sum over columns j of
  // (m-j-1) divisions + 2(m-j-1)(nb-j-1) update flops.
  double total = 0.0;
  for (int j = 0; j < static_cast<int>(nb); ++j) {
    const double rows = std::max(0.0, m - j - 1);
    total += rows + 2.0 * rows * std::max(0.0, nb - j - 1);
  }
  return total;
}

double update_flops(double m, double n, double nb) {
  // Triangular solve: n columns x ~nb^2/2 multiply-adds each; GEMM:
  // 2 m n nb.
  return n * nb * (nb - 1.0) + 2.0 * m * n * nb;
}

double total_lu_flops(double n) { return 2.0 / 3.0 * n * n * n; }

}  // namespace bwshare::hpl
