// HPL communication-trace generator (paper §VI-D).
//
// The paper runs Linpack "with a communication scheme where each task n send
// message to the task n + 1 for a problem size of 20500" and extracts the
// events with an instrumented MPE. We generate the same event structure
// analytically from the blocked LU algorithm (validated in src/hpl/lu.cpp):
//
//   columns are distributed block-cyclically over P tasks; for each panel k:
//     * the owner factorizes the panel           (compute: panel_flops)
//     * the panel is broadcast along the ring     (send n -> n+1, §VI-D)
//     * every task updates its share of the trailing matrix
//                                                (compute: update share)
//
// Message size for panel k = rows_below(k) x NB x 8 bytes, exactly HPL's
// panel payload.
#pragma once

#include "sim/events.hpp"

namespace bwshare::hpl {

struct HplParams {
  /// Problem size (paper: 20500).
  int n = 20500;
  /// Block size.
  int nb = 120;
  /// Number of MPI tasks.
  int tasks = 16;
  /// Per-task sustained compute rate, flop/s (2 GHz Opteron era: ~3.2e9).
  double flops_per_second = 3.2e9;
  /// Insert a barrier between iterations (the paper's measurement method
  /// synchronizes with barriers).
  bool barrier_per_iteration = false;
  /// Stop after this many panels (0 = full factorization). Keeps benches
  /// fast while preserving the communication pattern.
  int max_panels = 0;
  /// Depth-1 lookahead (HPL's default): the next panel's owner updates its
  /// panel columns first, factorizes and *starts broadcasting the next
  /// panel while the current broadcast is still travelling the ring*. This
  /// is what makes communications overlap — and therefore conflict — on
  /// co-located placements.
  bool lookahead = true;
};

/// Build the per-task event trace of one HPL factorization.
[[nodiscard]] sim::AppTrace make_hpl_trace(const HplParams& params);

/// Bytes of one panel broadcast at iteration k (8-byte doubles).
[[nodiscard]] double panel_bytes(const HplParams& params, int k);

/// Number of panel iterations.
[[nodiscard]] int num_panels(const HplParams& params);

}  // namespace bwshare::hpl
