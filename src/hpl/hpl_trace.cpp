#include "hpl/hpl_trace.hpp"

#include <algorithm>

#include "hpl/lu.hpp"
#include "util/error.hpp"

namespace bwshare::hpl {

int num_panels(const HplParams& params) {
  const int panels = (params.n + params.nb - 1) / params.nb;
  return params.max_panels > 0 ? std::min(panels, params.max_panels) : panels;
}

double panel_bytes(const HplParams& params, int k) {
  const double rows = std::max(0, params.n - k * params.nb);
  const double cols = std::min(params.nb, params.n - k * params.nb);
  return rows * cols * 8.0;
}

sim::AppTrace make_hpl_trace(const HplParams& params) {
  BWS_CHECK(params.n >= 1, "problem size must be positive");
  BWS_CHECK(params.nb >= 1, "block size must be positive");
  BWS_CHECK(params.tasks >= 2, "HPL trace needs at least two tasks");
  BWS_CHECK(params.flops_per_second > 0.0, "compute rate must be positive");

  const int p = params.tasks;
  sim::AppTrace trace(p);

  const int panels = num_panels(params);
  // With lookahead, each task's receive of panel k+1 is posted as an Irecv
  // during iteration k (after it forwarded panel k) and completed with a
  // WaitAll where the blocking receive would have been — so the next
  // broadcast travels while the trailing updates run, exactly HPL's
  // comm/compute overlap. `irecv_posted[t]` tracks that protocol state.
  std::vector<bool> irecv_posted(static_cast<size_t>(p), false);

  auto receive_panel = [&](int task, int prev, double bytes) {
    if (irecv_posted[static_cast<size_t>(task)]) {
      trace.push(task, sim::Event::wait_all());
      irecv_posted[static_cast<size_t>(task)] = false;
    } else {
      trace.push(task, sim::Event::recv(prev, bytes));
    }
  };

  for (int k = 0; k < panels; ++k) {
    const int owner = k % p;
    const int next_owner = (k + 1) % p;
    const double m = std::max(0, params.n - k * params.nb);
    const double nb = std::min(params.nb, params.n - k * params.nb);
    const double bytes = panel_bytes(params, k);
    const double t_panel = panel_flops(m, nb) / params.flops_per_second;
    const double next_bytes = k + 1 < panels ? panel_bytes(params, k + 1) : 0.0;

    // Trailing matrix after this panel.
    const double trailing_cols = std::max(0.0, m - nb);
    const double per_task_cols = trailing_cols / p;
    const double t_update =
        update_flops(m - nb, per_task_cols, nb) / params.flops_per_second;

    // Post the lookahead Irecv for panel k+1 on everyone but its owner.
    auto post_lookahead_irecv = [&](int task) {
      if (!params.lookahead || k + 1 >= panels || next_bytes <= 0.0) return;
      if (task == next_owner) return;
      trace.push(task,
                 sim::Event::irecv((task + p - 1) % p, next_bytes));
      irecv_posted[static_cast<size_t>(task)] = true;
    };

    // Panel owner: factorize and start the ring.
    trace.push(owner, sim::Event::compute(t_panel));
    if (bytes > 0.0)
      trace.push(owner, sim::Event::send((owner + 1) % p, bytes));
    post_lookahead_irecv(owner);
    if (t_update > 0.0) trace.push(owner, sim::Event::compute(t_update));

    // Ring forwarding: task j receives from its predecessor and forwards,
    // except the last task in the ring, which only receives.
    if (bytes > 0.0) {
      for (int hop = 1; hop < p; ++hop) {
        const int task = (owner + hop) % p;
        const int prev = (owner + hop - 1) % p;
        receive_panel(task, prev, bytes);
        if (hop != p - 1)
          trace.push(task, sim::Event::send((task + 1) % p, bytes));
        post_lookahead_irecv(task);
        if (t_update > 0.0) trace.push(task, sim::Event::compute(t_update));
      }
    } else if (t_update > 0.0) {
      for (int hop = 1; hop < p; ++hop)
        trace.push((owner + hop) % p, sim::Event::compute(t_update));
    }

    if (params.barrier_per_iteration) trace.push_barrier_all();
  }

  trace.validate();
  return trace;
}

}  // namespace bwshare::hpl
