// Dense blocked LU factorization with partial pivoting.
//
// The paper's application benchmark is Linpack/HPL (§VI-D). We cannot run a
// 2008 cluster's HPL, but the *communication structure* the paper traces is
// fully determined by the LU algorithm. This module provides a real,
// tested LU implementation:
//   * used at small N to validate the factorization and the flop model that
//     the trace generator (hpl_trace.hpp) relies on;
//   * the flop counts (panel factorization vs trailing update) are the exact
//     quantities behind HPL's compute events.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bwshare::hpl {

/// Column-major dense matrix.
class Matrix {
 public:
  Matrix(int rows, int cols);

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }
  [[nodiscard]] double& at(int r, int c);
  [[nodiscard]] double at(int r, int c) const;

  /// Deterministic pseudo-random test matrix (diagonally dominated enough
  /// to be well conditioned).
  static Matrix random(int n, uint64_t seed);
  static Matrix identity(int n);

  [[nodiscard]] Matrix multiply(const Matrix& other) const;
  [[nodiscard]] double max_abs_diff(const Matrix& other) const;

 private:
  int rows_;
  int cols_;
  std::vector<double> data_;
};

struct LuResult {
  Matrix lu;                 // packed L\U factors
  std::vector<int> pivots;   // row swaps applied at each step
  long long flops = 0;       // floating-point operations actually performed
};

/// Right-looking blocked LU with partial pivoting (HPL's algorithm shape).
/// Throws bwshare::Error if the matrix is numerically singular.
[[nodiscard]] LuResult blocked_lu(Matrix a, int block);

/// Reconstruct P*A from packed factors (test helper).
[[nodiscard]] Matrix reconstruct(const LuResult& result);

/// Apply the recorded pivots to a copy of `a` (test helper).
[[nodiscard]] Matrix apply_pivots(const Matrix& a,
                                  const std::vector<int>& pivots);

/// Solve A x = b using the packed factors (validates the factorization).
[[nodiscard]] std::vector<double> lu_solve(const LuResult& result,
                                           std::vector<double> b);

/// Analytic flop counts used by the HPL trace generator.
/// Panel factorization of an m x nb panel.
[[nodiscard]] double panel_flops(double m, double nb);
/// Trailing-submatrix update after a panel: (m x nb) * (nb x n) GEMM plus
/// the triangular solve on the U block row.
[[nodiscard]] double update_flops(double m, double n, double nb);
/// Total LU flops (~ 2/3 N^3).
[[nodiscard]] double total_lu_flops(double n);

}  // namespace bwshare::hpl
