#include "sim/report.hpp"

#include <sstream>

#include "util/strings.hpp"
#include "util/table.hpp"

namespace bwshare::sim {

std::string render_task_table(const SimResult& result) {
  TextTable t({"task", "finish", "compute", "send-blk", "recv-blk",
               "barrier", "sends", "recvs"});
  for (size_t i = 0; i < result.tasks.size(); ++i) {
    const auto& s = result.tasks[i];
    t.add_row({strformat("%zu", i), human_seconds(s.finish_time),
               human_seconds(s.compute_seconds),
               human_seconds(s.send_blocked_seconds),
               human_seconds(s.recv_blocked_seconds),
               human_seconds(s.barrier_wait_seconds),
               strformat("%d", s.sends), strformat("%d", s.recvs)});
  }
  return t.render();
}

std::string render_comm_table(const SimResult& result, size_t max_rows) {
  TextTable t({"src", "dst", "bytes", "start", "finish", "penalty"});
  size_t rows = 0;
  for (const auto& c : result.comms) {
    if (max_rows != 0 && rows++ >= max_rows) break;
    t.add_row({strformat("%d@n%d", c.src_task, c.src_node),
               strformat("%d@n%d", c.dst_task, c.dst_node),
               human_bytes(c.bytes), human_seconds(c.start),
               human_seconds(c.finish), strformat("%.3f", c.penalty)});
  }
  return t.render();
}

std::string render_summary(const SimResult& result) {
  double bytes = 0.0;
  for (const auto& c : result.comms) bytes += c.bytes;
  std::ostringstream os;
  os << "makespan " << human_seconds(result.makespan) << ", "
     << result.comms.size() << " communications moving " << human_bytes(bytes)
     << ", average penalty " << strformat("%.3f", result.average_penalty());
  if (result.aborted_comms > 0)
    os << ", " << result.aborted_comms << " aborted by failures";
  if (result.background_comms > 0 || result.background_skipped > 0)
    os << ", " << result.background_comms << " background flows ("
       << result.background_skipped << " skipped)";
  return os.str();
}

std::string render_multi_job_table(const MultiJobResult& result) {
  TextTable t({"job", "tasks", "alone", "shared", "interference"});
  for (const auto& j : result.jobs) {
    t.add_row({j.name, strformat("%d", j.num_tasks),
               human_seconds(j.makespan_alone),
               human_seconds(j.makespan_shared),
               strformat("%+.1f%%", j.interference_pct)});
  }
  return t.render();
}

}  // namespace bwshare::sim
