#include "sim/trace_io.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace bwshare::sim {

std::string write_trace(const AppTrace& trace) {
  std::ostringstream os;
  os << "tasks " << trace.num_tasks() << "\n";
  for (TaskId t = 0; t < trace.num_tasks(); ++t) {
    for (const auto& e : trace.program(t)) {
      switch (e.kind) {
        case EventKind::kCompute:
          os << t << " compute " << strformat("%.9g", e.seconds) << "\n";
          break;
        case EventKind::kSend:
        case EventKind::kIsend:
          os << t << (e.kind == EventKind::kSend ? " send " : " isend ")
             << e.peer << " " << strformat("%.0f", e.bytes) << "\n";
          break;
        case EventKind::kRecv:
        case EventKind::kIrecv:
          os << t << (e.kind == EventKind::kRecv ? " recv " : " irecv ");
          if (e.peer == kAnySource)
            os << "any";
          else
            os << e.peer;
          os << " " << strformat("%.0f", e.bytes) << "\n";
          break;
        case EventKind::kWaitAll:
          os << t << " waitall\n";
          break;
        case EventKind::kBarrier:
          os << t << " barrier\n";
          break;
      }
    }
  }
  return os.str();
}

AppTrace read_trace(std::string_view text) {
  std::istringstream is{std::string(text)};
  std::string line;
  int line_no = 0;
  AppTrace trace;
  bool have_tasks = false;

  auto fail = [&](const std::string& msg) -> void {
    BWS_THROW(strformat("trace line %d: %s", line_no, msg.c_str()));
  };

  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const auto fields = split_ws(line);
    if (fields.empty()) continue;

    if (fields[0] == "tasks") {
      if (have_tasks) fail("duplicate 'tasks' directive");
      if (fields.size() != 2) fail("'tasks' takes one argument");
      const int n = std::atoi(fields[1].c_str());
      if (n < 1) fail("task count must be >= 1");
      trace = AppTrace(n);
      have_tasks = true;
      continue;
    }
    if (!have_tasks) fail("'tasks' directive must come first");

    const int t = std::atoi(fields[0].c_str());
    if (t < 0 || t >= trace.num_tasks()) fail("task id out of range");
    if (fields.size() < 2) fail("missing event kind");
    const std::string& kind = fields[1];
    if (kind == "compute") {
      if (fields.size() != 3) fail("compute takes a duration");
      trace.push(t, Event::compute(std::atof(fields[2].c_str())));
    } else if (kind == "send" || kind == "isend") {
      if (fields.size() != 4) fail(kind + " takes peer and size");
      const Event e = kind == "send"
                          ? Event::send(std::atoi(fields[2].c_str()),
                                        std::atof(fields[3].c_str()))
                          : Event::isend(std::atoi(fields[2].c_str()),
                                         std::atof(fields[3].c_str()));
      trace.push(t, e);
    } else if (kind == "recv" || kind == "irecv") {
      if (fields.size() != 4) fail(kind + " takes peer and size");
      const TaskId peer =
          fields[2] == "any" ? kAnySource : std::atoi(fields[2].c_str());
      const Event e = kind == "recv"
                          ? Event::recv(peer, std::atof(fields[3].c_str()))
                          : Event::irecv(peer, std::atof(fields[3].c_str()));
      trace.push(t, e);
    } else if (kind == "waitall") {
      trace.push(t, Event::wait_all());
    } else if (kind == "barrier") {
      trace.push(t, Event::barrier());
    } else {
      fail("unknown event kind '" + kind + "'");
    }
  }
  BWS_CHECK(have_tasks, "trace has no 'tasks' directive");
  return trace;
}

void write_trace_file(const AppTrace& trace, const std::string& path) {
  std::ofstream out(path);
  BWS_CHECK(out.good(), "cannot open '" + path + "' for writing");
  out << write_trace(trace);
  BWS_CHECK(out.good(), "error writing '" + path + "'");
}

AppTrace read_trace_file(const std::string& path) {
  std::ifstream in(path);
  BWS_CHECK(in.good(), "cannot open trace file '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    return read_trace(buf.str());
  } catch (const Error& e) {
    throw Error(path + ": " + e.what());
  }
}

}  // namespace bwshare::sim
