#include "sim/trace_io.hpp"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/error.hpp"
#include "util/parse.hpp"
#include "util/strings.hpp"

namespace bwshare::sim {

std::string write_trace(const AppTrace& trace) {
  std::ostringstream os;
  os << "tasks " << trace.num_tasks() << "\n";
  for (TaskId t = 0; t < trace.num_tasks(); ++t) {
    for (const auto& e : trace.program(t)) {
      switch (e.kind) {
        case EventKind::kCompute:
          os << t << " compute " << strformat("%.9g", e.seconds) << "\n";
          break;
        case EventKind::kSend:
        case EventKind::kIsend:
          os << t << (e.kind == EventKind::kSend ? " send " : " isend ")
             << e.peer << " " << strformat("%.0f", e.bytes) << "\n";
          break;
        case EventKind::kRecv:
        case EventKind::kIrecv:
          os << t << (e.kind == EventKind::kRecv ? " recv " : " irecv ");
          if (e.peer == kAnySource)
            os << "any";
          else
            os << e.peer;
          os << " " << strformat("%.0f", e.bytes) << "\n";
          break;
        case EventKind::kWaitAll:
          os << t << " waitall\n";
          break;
        case EventKind::kBarrier:
          os << t << " barrier\n";
          break;
      }
    }
  }
  return os.str();
}

AppTrace read_trace(std::string_view text) {
  std::istringstream is{std::string(text)};
  std::string line;
  int line_no = 0;
  AppTrace trace;
  bool have_tasks = false;

  auto fail = [&](const std::string& msg) -> void {
    BWS_THROW(strformat("trace line %d: %s", line_no, msg.c_str()));
  };
  auto parse_task = [&](const std::string& field,
                        const std::string& what) -> TaskId {
    long t = 0;
    switch (try_parse_long(field, t, 0, trace.num_tasks() - 1)) {
      case ParseIntStatus::kMalformed:
        fail("malformed " + what + " '" + field + "'");
        break;
      case ParseIntStatus::kOutOfRange:
        fail(what + " out of range");
        break;
      case ParseIntStatus::kOk:
        break;
    }
    return static_cast<TaskId>(t);
  };
  auto parse_number = [&](const std::string& field,
                          const std::string& what) -> double {
    char* end = nullptr;
    const double v = std::strtod(field.c_str(), &end);
    if (end == field.c_str() || *end != '\0')
      fail("malformed " + what + " '" + field + "'");
    if (!std::isfinite(v) || v < 0.0)
      fail(what + " must be finite and non-negative");
    return v;
  };

  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const auto fields = split_ws(line);
    if (fields.empty()) continue;

    if (fields[0] == "tasks") {
      if (have_tasks) fail("duplicate 'tasks' directive");
      if (fields.size() != 2) fail("'tasks' takes one argument");
      long n = 0;
      switch (try_parse_long(fields[1], n, 1,
                             std::numeric_limits<int>::max())) {
        case ParseIntStatus::kMalformed:
          fail("malformed task count '" + fields[1] + "'");
          break;
        case ParseIntStatus::kOutOfRange:
          fail("task count out of range");
          break;
        case ParseIntStatus::kOk:
          break;
      }
      trace = AppTrace(static_cast<int>(n));
      have_tasks = true;
      continue;
    }
    if (!have_tasks) fail("'tasks' directive must come first");

    // "* <event>" applies the event to every task (e.g. "* barrier").
    std::vector<TaskId> targets;
    if (fields[0] == "*") {
      for (TaskId t = 0; t < trace.num_tasks(); ++t) targets.push_back(t);
    } else {
      targets.push_back(parse_task(fields[0], "task id"));
    }
    if (fields.size() < 2) fail("missing event kind");
    const std::string& kind = fields[1];
    Event event = Event::barrier();
    if (kind == "compute") {
      if (fields.size() != 3) fail("compute takes a duration");
      event = Event::compute(parse_number(fields[2], "duration"));
    } else if (kind == "send" || kind == "isend") {
      if (fields.size() != 4) fail(kind + " takes peer and size");
      const TaskId peer = parse_task(fields[2], "peer");
      const double bytes = parse_number(fields[3], "size");
      event = kind == "send" ? Event::send(peer, bytes)
                             : Event::isend(peer, bytes);
    } else if (kind == "recv" || kind == "irecv") {
      if (fields.size() != 4) fail(kind + " takes peer and size");
      const TaskId peer =
          fields[2] == "any" ? kAnySource : parse_task(fields[2], "peer");
      const double bytes = parse_number(fields[3], "size");
      event = kind == "recv" ? Event::recv(peer, bytes)
                             : Event::irecv(peer, bytes);
    } else if (kind == "waitall") {
      event = Event::wait_all();
    } else if (kind != "barrier") {
      fail("unknown event kind '" + kind + "'");
    }
    for (const TaskId t : targets) trace.push(t, event);
  }
  BWS_CHECK(have_tasks, "trace has no 'tasks' directive");
  return trace;
}

void write_trace_file(const AppTrace& trace, const std::string& path) {
  std::ofstream out(path);
  BWS_CHECK(out.good(), "cannot open '" + path + "' for writing");
  out << write_trace(trace);
  BWS_CHECK(out.good(), "error writing '" + path + "'");
}

AppTrace read_trace_file(const std::string& path) {
  std::ifstream in(path);
  BWS_CHECK(in.good(), "cannot open trace file '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    return read_trace(buf.str());
  } catch (const Error& e) {
    throw Error(path + ": " + e.what());
  }
}

}  // namespace bwshare::sim
