#include "sim/solve_memo.hpp"

namespace bwshare::sim {

bool SolveMemo::lookup(uint64_t key, std::vector<double>& rates,
                       bool& from_frozen) {
  if (frozen_ != nullptr && frozen_->lookup(key, rates)) {
    std::lock_guard<std::mutex> lock(mu_);
    ++frozen_hits_;
    from_frozen = true;
    return true;
  }
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = staged_.find(key);
  if (it != staged_.end()) {
    rates = it->second;
    ++staged_hits_;
    from_frozen = false;
    return true;
  }
  ++misses_;
  return false;
}

void SolveMemo::stage(uint64_t key, const std::vector<double>& rates) {
  std::lock_guard<std::mutex> lock(mu_);
  staged_.emplace(key, rates);
}

size_t SolveMemo::frozen_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return frozen_hits_;
}

size_t SolveMemo::staged_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return staged_hits_;
}

size_t SolveMemo::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

}  // namespace bwshare::sim
