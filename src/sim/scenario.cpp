#include "sim/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace bwshare::sim {

int Scenario::num_jobs() const {
  if (job_of.empty()) return 1;
  return 1 + *std::max_element(job_of.begin(), job_of.end());
}

void Scenario::validate(int num_tasks, int num_nodes) const {
  for (const auto& ev : churn) {
    BWS_CHECK(std::isfinite(ev.time) && ev.time >= 0.0,
              strformat("scenario: churn event time must be finite and >= 0, "
                        "got %g",
                        ev.time));
    BWS_CHECK(ev.node >= 0 && ev.node < num_nodes,
              strformat("scenario: churn event node %d outside cluster of %d",
                        ev.node, num_nodes));
  }
  for (const auto& f : background) {
    BWS_CHECK(std::isfinite(f.time) && f.time >= 0.0,
              strformat("scenario: background flow time must be finite and "
                        ">= 0, got %g",
                        f.time));
    BWS_CHECK(f.src >= 0 && f.src < num_nodes && f.dst >= 0 &&
                  f.dst < num_nodes,
              strformat("scenario: background flow %d->%d outside cluster "
                        "of %d",
                        f.src, f.dst, num_nodes));
    BWS_CHECK(f.src != f.dst, "scenario: background flow src == dst");
    BWS_CHECK(f.bytes > 0.0,
              strformat("scenario: background flow bytes must be > 0, got %g",
                        f.bytes));
  }
  for (const int v : down_at_start) {
    BWS_CHECK(v >= 0 && v < num_nodes,
              strformat("scenario: down_at_start node %d outside cluster "
                        "of %d",
                        v, num_nodes));
  }
  if (job_of.empty()) return;
  BWS_CHECK(static_cast<int>(job_of.size()) == num_tasks,
            strformat("scenario: job_of covers %zu tasks but the trace "
                      "has %d",
                      job_of.size(), num_tasks));
  const int jobs = num_jobs();
  std::vector<int> count(static_cast<size_t>(jobs), 0);
  for (const int j : job_of) {
    BWS_CHECK(j >= 0, strformat("scenario: negative job id %d", j));
    ++count[static_cast<size_t>(j)];
  }
  for (int j = 0; j < jobs; ++j) {
    BWS_CHECK(count[static_cast<size_t>(j)] > 0,
              strformat("scenario: job ids must be dense, job %d has no "
                        "tasks",
                        j));
  }
}

}  // namespace bwshare::sim
