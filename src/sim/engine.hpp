// The paper's simulator (§VI-A): replays application traces (compute +
// communication events) on a cluster under a task placement, draining
// in-flight communications at rates given by a RateProvider.
//
// Two providers close the loop of the evaluation (§VI-B):
//   * sim::ModelRateProvider   -> predicted times T_p (the §V models);
//   * flowsim::FluidRateProvider -> "measured" times T_m (the substrate that
//     stands in for the physical clusters).
//
// Semantics:
//   * Blocking MPI_Send with rendezvous for messages >= eager_threshold:
//     the sender blocks until the transfer drains (plus it unblocks at drain
//     time; the receiver additionally pays the one-way latency).
//   * Messages below eager_threshold are buffered: the sender continues
//     immediately; the transfer starts once the receive is posted.
//   * Receives match by source, in posting order; kAnySource matches the
//     earliest posted pending send (the paper's MPI_ANY_SOURCE method).
//   * Barriers release when every task has arrived.
//
// Rate refresh is incremental and component-scoped by default: when a
// transfer starts or finishes, only the connected component(s) of the
// conflict structure it touches are re-solved, and untouched components keep
// their cached rates with lazily advanced byte counts. Dirty components are
// not solved mid-event but at the next *flush point* (the top of the event
// loop, or just before a barrier cost advances the clock) — the clock cannot
// move in between, so deferral is unobservable, and it batches all the
// components a same-time event cascade touched into one multi-component
// solve. That batch is what EngineConfig::solve fans out:
// SolveMode::kParallel computes each component's rates on a shared
// util::ThreadPool (components are disjoint by construction, and providers
// are const-safe over disjoint subsets), then commits them sequentially in
// component-id order, so completion times are bit-identical to kSerial at
// any thread count. The event loop itself runs on the shared event-core
// (core::EventQueue): predicted finish times and compute wake-ups are
// indexed heap entries, re-keyed in O(log n) when a component re-solve
// changes a prediction, so finding the next event never scans the active
// set. See docs/PERFORMANCE.md for the invariants and
// bench/engine_scaling.cpp for the measured speedups; EngineConfig::refresh,
// ::queue and ::solve select the strategies.
#pragma once

#include <string>
#include <vector>

#include "flowsim/fluid_network.hpp"
#include "sim/events.hpp"
#include "sim/scenario.hpp"
#include "sim/schedule.hpp"
#include "topo/cluster.hpp"

namespace bwshare::util {
class ThreadPool;
}

namespace bwshare::sim {

class SolveMemo;

/// Rate-refresh strategy (docs/PERFORMANCE.md).
enum class RefreshMode {
  /// Re-solve every alive component on every event, trusting none of the
  /// incremental caching (the reference behaviour; O(events x active-set
  /// solve)). Bit-identical to kIncremental, not merely 1e-9-close
  /// (docs/PERFORMANCE.md, tests/sim/test_engine_churn.cpp).
  kFull,
  /// Re-solve only the dirty conflict components an event touched;
  /// untouched components keep cached rates and advance bytes lazily.
  kIncremental,
  /// Run incrementally, but re-solve the full set after every refresh and
  /// throw if any cached rate drifts from the full solution by more than
  /// 1e-9 relative. Under QueueMode::kHeap it additionally re-derives every
  /// event choice by the legacy linear scan and throws if heap order ever
  /// diverges from scan order. Equivalence harness for tests and benchmarks.
  kCrossCheck,
};

/// How the event loop finds the next completion / wake-up
/// (docs/PERFORMANCE.md, "The event-core").
enum class QueueMode {
  /// Indexed finish-time heap (core::EventQueue): O(log n) per event.
  kHeap,
  /// Legacy per-event linear scans over every transfer slot and task (the
  /// pre-event-core behaviour). Kept for A/B benchmarking — both modes are
  /// bit-identical, which kCrossCheck asserts at every event.
  kScan,
};

/// Where the per-component rate solves of a flush run
/// (docs/PERFORMANCE.md, "The parallel component solver").
enum class SolveMode {
  /// One component after another on the calling thread.
  kSerial,
  /// Each component's rates are computed as an independent task on a
  /// util::ThreadPool (components are disjoint, providers const-safe), then
  /// committed sequentially in component-id order. Bit-identical to kSerial
  /// at any thread count — which RefreshMode::kCrossCheck asserts by
  /// re-solving every component serially after the parallel pass.
  kParallel,
};

struct EngineConfig {
  /// Messages at least this long use rendezvous (sender blocks).
  double eager_threshold = 64.0 * 1024.0;
  /// Extra cost charged to every barrier release.
  double barrier_cost = 0.0;
  /// Abort if simulated time exceeds this (deadlock safety net).
  double max_time = 1e9;
  /// How rates are refreshed when the active transfer set changes.
  RefreshMode refresh = RefreshMode::kIncremental;
  /// How the next event is selected.
  QueueMode queue = QueueMode::kHeap;
  /// Where a flush runs its per-component solves.
  SolveMode solve = SolveMode::kSerial;
  /// Pool for SolveMode::kParallel (not owned; must outlive the
  /// simulation). Inject one shared pool per process so concurrent engines
  /// (e.g. sweep cells) don't oversubscribe the machine. When null and
  /// solve == kParallel, the engine lazily creates a private pool with
  /// `solve_threads` workers.
  util::ThreadPool* solve_pool = nullptr;
  /// Worker count for the lazily created private pool (0 = hardware).
  /// Ignored when `solve_pool` is injected.
  int solve_threads = 0;
  /// Cross-query component-solution memo (sim/solve_memo.hpp; not owned,
  /// must outlive the simulation). When set, every component rate solve
  /// first consults the memo — a hit returns the cached bits, which the
  /// provider purity contract guarantees equal a fresh solve — and every
  /// miss stages its solution for the owner to publish. Null (the default)
  /// means solve fresh always; results are bit-identical either way, the
  /// memo only changes how much work a replay does.
  SolveMemo* solve_memo = nullptr;
};

/// One completed communication, as the simulator saw it.
struct CommRecord {
  TaskId src_task = 0;
  TaskId dst_task = 0;
  topo::NodeId src_node = 0;
  topo::NodeId dst_node = 0;
  double bytes = 0.0;
  double send_post = 0.0;   // when the sender entered MPI_Send
  double recv_post = 0.0;   // when the receiver posted the receive
  double start = 0.0;       // when the transfer began draining
  double finish = 0.0;      // when the receiver unblocked
  /// Observed penalty: duration / unconflicted reference duration. For an
  /// aborted record it covers the partial drain only.
  double penalty = 1.0;
  /// An injected background flow (Scenario::background): src_task/dst_task
  /// are -1, no task ever blocked on it.
  bool background = false;
  /// Cut short by a node failure (ChurnKind::kFail): `finish` is the abort
  /// time and the bytes only partially moved.
  bool aborted = false;

  [[nodiscard]] double duration() const { return finish - start; }
  /// Time the *sender* was blocked in MPI_Send (the paper's measured T_i).
  double sender_time = 0.0;
};

struct TaskStats {
  double finish_time = 0.0;
  double compute_seconds = 0.0;
  double send_blocked_seconds = 0.0;  // the paper's per-task S_m / S_p sum
  double recv_blocked_seconds = 0.0;
  double barrier_wait_seconds = 0.0;
  int sends = 0;
  int recvs = 0;
};

struct SimResult {
  double makespan = 0.0;
  std::vector<TaskStats> tasks;
  std::vector<CommRecord> comms;
  /// Transfers cut short by a ChurnKind::kFail (measured job + background).
  size_t aborted_comms = 0;
  /// Background flows admitted into the active set.
  size_t background_comms = 0;
  /// Background flows dropped because an endpoint node was down.
  size_t background_skipped = 0;

  /// Mean observed penalty over the measured job's completed records;
  /// background and aborted records are excluded.
  [[nodiscard]] double average_penalty() const;
  /// Sum of sender-side communication times for one task (the quantity the
  /// paper aggregates per task for the HPL evaluation, §VI-B).
  [[nodiscard]] double task_comm_time(TaskId t) const;
};

/// Exact equality over everything a replay derives: makespan, the scenario
/// counters, and every per-comm / per-task field, compared bit for bit
/// (no epsilon). The predicate behind the engine's mode-equivalence suites
/// and the serving layer's conformance contract (docs/SERVING.md); the
/// gtest twin with per-field diagnostics lives in
/// tests/common/result_expect.hpp.
[[nodiscard]] bool bit_identical(const SimResult& a, const SimResult& b);

/// Run `trace` on `cluster` with tasks placed by `placement`, rates from
/// `provider`. Throws bwshare::Error on deadlock or malformed traces.
[[nodiscard]] SimResult run_simulation(const AppTrace& trace,
                                       const topo::ClusterSpec& cluster,
                                       const Placement& placement,
                                       const flowsim::RateProvider& provider,
                                       const EngineConfig& config = {});

/// Same replay under a dynamic-cluster `scenario` (sim/scenario.hpp):
/// membership churn, background cross-traffic, multi-job barriers. An empty
/// scenario is bit-identical to the overload above.
[[nodiscard]] SimResult run_simulation(const AppTrace& trace,
                                       const topo::ClusterSpec& cluster,
                                       const Placement& placement,
                                       const flowsim::RateProvider& provider,
                                       const Scenario& scenario,
                                       const EngineConfig& config = {});

}  // namespace bwshare::sim
