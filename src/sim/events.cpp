#include "sim/events.hpp"

#include <map>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace bwshare::sim {

Event Event::compute(double seconds) {
  BWS_CHECK(seconds >= 0.0, "compute duration must be non-negative");
  Event e;
  e.kind = EventKind::kCompute;
  e.seconds = seconds;
  return e;
}

Event Event::send(TaskId to, double bytes) {
  BWS_CHECK(to >= 0, "send target must be a task id");
  BWS_CHECK(bytes >= 0.0, "message size must be non-negative");
  Event e;
  e.kind = EventKind::kSend;
  e.peer = to;
  e.bytes = bytes;
  return e;
}

Event Event::recv(TaskId from, double bytes) {
  BWS_CHECK(from >= 0 || from == kAnySource, "bad receive source");
  BWS_CHECK(bytes >= 0.0, "message size must be non-negative");
  Event e;
  e.kind = EventKind::kRecv;
  e.peer = from;
  e.bytes = bytes;
  return e;
}

Event Event::recv_any(double bytes) { return recv(kAnySource, bytes); }

Event Event::isend(TaskId to, double bytes) {
  Event e = send(to, bytes);
  e.kind = EventKind::kIsend;
  return e;
}

Event Event::irecv(TaskId from, double bytes) {
  Event e = recv(from, bytes);
  e.kind = EventKind::kIrecv;
  return e;
}

Event Event::wait_all() {
  Event e;
  e.kind = EventKind::kWaitAll;
  return e;
}

Event Event::barrier() {
  Event e;
  e.kind = EventKind::kBarrier;
  return e;
}

AppTrace::AppTrace(int num_tasks) {
  BWS_CHECK(num_tasks >= 1, "trace needs at least one task");
  programs_.resize(static_cast<size_t>(num_tasks));
}

void AppTrace::push(TaskId t, Event e) { program(t).push_back(e); }

void AppTrace::push_barrier_all() {
  for (auto& p : programs_) p.push_back(Event::barrier());
}

double AppTrace::total_compute_seconds() const {
  double total = 0.0;
  for (const auto& p : programs_)
    for (const auto& e : p)
      if (e.kind == EventKind::kCompute) total += e.seconds;
  return total;
}

double AppTrace::total_bytes_sent() const {
  double total = 0.0;
  for (const auto& p : programs_)
    for (const auto& e : p)
      if (e.kind == EventKind::kSend) total += e.bytes;
  return total;
}

size_t AppTrace::total_events() const {
  size_t total = 0;
  for (const auto& p : programs_) total += p.size();
  return total;
}

size_t AppTrace::total_sends() const {
  size_t total = 0;
  for (const auto& p : programs_)
    for (const auto& e : p)
      if (e.kind == EventKind::kSend || e.kind == EventKind::kIsend) ++total;
  return total;
}

void AppTrace::validate() const {
  // Sends to each destination must be covered by that destination's
  // receives (counting any-source receives as wildcards), and vice versa.
  std::map<TaskId, size_t> sends_to;     // dst -> count
  std::map<TaskId, size_t> recvs_at;     // dst -> count (incl. wildcards)
  size_t barriers_first = program(0).size() + 1;  // sentinel
  for (TaskId t = 0; t < num_tasks(); ++t) {
    size_t barriers = 0;
    for (const auto& e : program(t)) {
      switch (e.kind) {
        case EventKind::kSend:
        case EventKind::kIsend:
          BWS_CHECK(e.peer < num_tasks(),
                    strformat("task %d sends to unknown task %d", t, e.peer));
          BWS_CHECK(e.peer != t, strformat("task %d sends to itself", t));
          ++sends_to[e.peer];
          break;
        case EventKind::kRecv:
        case EventKind::kIrecv:
          BWS_CHECK(e.peer == kAnySource || e.peer < num_tasks(),
                    strformat("task %d receives from unknown task %d", t,
                              e.peer));
          ++recvs_at[t];
          break;
        case EventKind::kBarrier:
          ++barriers;
          break;
        case EventKind::kCompute:
        case EventKind::kWaitAll:
          break;
      }
    }
    if (t == 0)
      barriers_first = barriers;
    else
      BWS_CHECK(barriers == barriers_first,
                strformat("task %d has %zu barriers, task 0 has %zu", t,
                          barriers, barriers_first));
  }
  for (const auto& [dst, n] : sends_to)
    BWS_CHECK(recvs_at[dst] == n,
              strformat("task %d is sent %zu messages but posts %zu receives",
                        dst, n, recvs_at[dst]));
  for (const auto& [dst, n] : recvs_at)
    BWS_CHECK(sends_to[dst] == n,
              strformat("task %d posts %zu receives but is sent %zu messages",
                        dst, n, sends_to[dst]));
}

std::string to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kCompute: return "compute";
    case EventKind::kSend: return "send";
    case EventKind::kRecv: return "recv";
    case EventKind::kIsend: return "isend";
    case EventKind::kIrecv: return "irecv";
    case EventKind::kWaitAll: return "waitall";
    case EventKind::kBarrier: return "barrier";
  }
  return "?";
}

AppTrace trace_from_scheme(const graph::CommGraph& scheme) {
  AppTrace trace(scheme.num_nodes());
  for (graph::CommId i = 0; i < scheme.size(); ++i) {
    const auto& c = scheme.comm(i);
    trace.push(c.dst, Event::irecv(c.src, c.bytes));
  }
  for (graph::CommId i = 0; i < scheme.size(); ++i) {
    const auto& c = scheme.comm(i);
    trace.push(c.src, Event::isend(c.dst, c.bytes));
  }
  for (TaskId t = 0; t < trace.num_tasks(); ++t)
    trace.push(t, Event::wait_all());
  return trace;
}

}  // namespace bwshare::sim
