#include "sim/rate_model.hpp"

#include "util/error.hpp"

namespace bwshare::sim {

ModelRateProvider::ModelRateProvider(
    std::shared_ptr<const models::PenaltyModel> model,
    topo::NetworkCalibration cal)
    : model_(std::move(model)), cal_(cal) {
  BWS_CHECK(model_ != nullptr, "model must not be null");
  BWS_CHECK(cal_.link_bandwidth > 0.0, "calibration must be set");
}

std::vector<double> ModelRateProvider::rates(
    const graph::CommGraph& active) const {
  const auto penalties = model_->penalties(active);
  std::vector<double> rates(penalties.size(), 0.0);
  for (graph::CommId i = 0; i < active.size(); ++i) {
    const double ref = active.is_intra_node(i) ? cal_.shm_bandwidth
                                               : cal_.reference_bandwidth();
    rates[static_cast<size_t>(i)] = ref / penalties[static_cast<size_t>(i)];
  }
  return rates;
}

std::vector<double> ModelRateProvider::rates(
    const graph::CommGraph& active,
    std::span<const graph::CommId> subset) const {
  if (subset.empty()) return {};
  if (covers_all(subset, active.size())) return rates(active);
  // Penalties are local to an endpoint-closed set (see rate_model.hpp), so
  // expanding to the closure (a no-op for the simulator's already-closed
  // components) makes the restricted solve exact for any subset, and the
  // model never needs to see the rest of the graph.
  const auto closed = coupling_closure(active, subset);
  std::vector<size_t> pos_of(static_cast<size_t>(active.size()), 0);
  for (size_t p = 0; p < closed.size(); ++p)
    pos_of[static_cast<size_t>(closed[p])] = p;
  const auto closed_rates = rates(graph::induced_subgraph(active, closed));
  std::vector<double> out;
  out.reserve(subset.size());
  for (const graph::CommId id : subset)
    out.push_back(closed_rates[pos_of[static_cast<size_t>(id)]]);
  return out;
}

}  // namespace bwshare::sim
