#include "sim/rate_model.hpp"

#include "util/error.hpp"

namespace bwshare::sim {

ModelRateProvider::ModelRateProvider(
    std::shared_ptr<const models::PenaltyModel> model,
    topo::NetworkCalibration cal)
    : model_(std::move(model)), cal_(cal) {
  BWS_CHECK(model_ != nullptr, "model must not be null");
  BWS_CHECK(cal_.link_bandwidth > 0.0, "calibration must be set");
}

std::vector<double> ModelRateProvider::rates(
    const graph::CommGraph& active) const {
  const auto penalties = model_->penalties(active);
  std::vector<double> rates(penalties.size(), 0.0);
  for (graph::CommId i = 0; i < active.size(); ++i) {
    const double ref = active.is_intra_node(i) ? cal_.shm_bandwidth
                                               : cal_.reference_bandwidth();
    rates[static_cast<size_t>(i)] = ref / penalties[static_cast<size_t>(i)];
  }
  return rates;
}

}  // namespace bwshare::sim
