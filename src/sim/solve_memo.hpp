// Cross-query memoization of component rate solves — the warm-start
// machinery behind serve::QueryService (docs/SERVING.md).
//
// The engine's incremental refresh already scopes every rate solve to one
// coupling-closed connected component, and flowsim::RateProvider documents
// rates() as a *pure function of the induced subproblem*: the same members
// (source node, destination node, remaining bytes — by bit pattern) against
// the same provider always yield the same rate vector, bit for bit. That
// purity is what makes cross-query reuse safe by construction: a memo hit
// returns exactly the bits a fresh solve would have produced, so warm-started
// replays are bit-identical to cold ones — the cache only ever saves work,
// never changes an answer. RefreshMode-style paranoia is still available:
// a SolveMemo built with verify=true re-solves every hit against the provider
// and throws on the first diverging bit (the serve suite's oracle mode).
//
// Keying: the engine hashes (salt, then per member in record order: src node,
// dst node, remaining-bytes bit pattern) with util::StructuralHash. The salt
// must identify everything else that can influence the provider's arithmetic
// — provider kind, network calibration, penalty model — and is supplied by
// the owner (serve::QueryService derives it from the query's network/model).
// Slot indices, record ids and display labels are deliberately excluded:
// they vary across replays of equivalent subproblems.
//
// Concurrency: one SolveMemo belongs to one replay. Its *frozen* store (the
// cross-query SolveStore) is read-only for the whole replay; fresh solutions
// are staged privately and only published by the owner after the replay
// completes. Lookups and stages are mutex-guarded so SolveMode::kParallel
// flushes stay race-free. Within a replay two distinct components can share
// a key (same structure); whichever solves first stages the entry and the
// other may hit it — either way the bits are identical (purity again), so
// replay results never depend on thread timing.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

namespace bwshare::sim {

/// Read-only source of previously published component solutions. Lookups
/// must be thread-safe and must not mutate any state observable by other
/// lookups (serve::WarmStore satisfies this by only reordering/evicting at
/// commit time, never during reads).
class SolveStore {
 public:
  virtual ~SolveStore() = default;
  /// Fill `rates` and return true when `key` is present.
  virtual bool lookup(uint64_t key, std::vector<double>& rates) const = 0;
};

/// Per-replay memo handed to the engine via EngineConfig::solve_memo.
class SolveMemo {
 public:
  /// `frozen` may be null (pure recording); it must outlive the memo.
  /// `verify` re-solves every hit and demands bitwise agreement.
  explicit SolveMemo(const SolveStore* frozen = nullptr, uint64_t salt = 0,
                     bool verify = false)
      : frozen_(frozen), salt_(salt), verify_(verify) {}

  SolveMemo(const SolveMemo&) = delete;
  SolveMemo& operator=(const SolveMemo&) = delete;

  [[nodiscard]] uint64_t salt() const { return salt_; }
  [[nodiscard]] bool verify() const { return verify_; }

  /// Frozen store first, then this replay's own staged entries.
  /// Returns true on a hit; `from_frozen` reports which tier answered.
  bool lookup(uint64_t key, std::vector<double>& rates, bool& from_frozen);

  /// Record a fresh solution; insert-if-absent (a concurrent duplicate of
  /// the same key necessarily carries identical bits, see header comment).
  void stage(uint64_t key, const std::vector<double>& rates);

  /// This replay's fresh solutions, ordered by key — the deterministic
  /// publication order the owner commits to the cross-query store.
  [[nodiscard]] const std::map<uint64_t, std::vector<double>>& staged() const {
    return staged_;
  }

  /// Hits answered by the frozen store — the "this replay warm-started off
  /// earlier queries" signal. Deterministic for a given frozen store: every
  /// component solve performs exactly one lookup and the solve sequence is
  /// part of the engine's bit-identical contract.
  [[nodiscard]] size_t frozen_hits() const;
  /// Hits answered by this replay's own staged entries.
  [[nodiscard]] size_t staged_hits() const;
  [[nodiscard]] size_t misses() const;

 private:
  const SolveStore* frozen_;
  const uint64_t salt_;
  const bool verify_;

  mutable std::mutex mu_;
  std::map<uint64_t, std::vector<double>> staged_;
  size_t frozen_hits_ = 0;
  size_t staged_hits_ = 0;
  size_t misses_ = 0;
};

}  // namespace bwshare::sim
