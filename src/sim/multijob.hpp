// Multi-job co-scheduling (ROADMAP item 4): replay N independently traced
// jobs on ONE shared cluster and quantify what sharing cost each of them.
//
// The merge is mechanical: task ids are offset per job, peer references
// remapped (kAnySource is job-local in spirit but safe as-is — pending sends
// are matched by the receiver's global task id, and jobs never address each
// other), and barriers stay job-scoped through Scenario::job_of, so job A's
// barrier never waits on job B. The contention is then real: all transfers
// share nodes, links and the rate provider's coupling structure.
//
// For each job the runner also replays it ALONE on the same cluster under
// the same churn/background scenario; the interference percentage is the
// makespan inflation attributable purely to the co-scheduled jobs:
//
//   interference_pct = (makespan_shared / makespan_alone - 1) * 100
//
// sim::render_multi_job_table (sim/report.hpp) formats the outcome.
#pragma once

#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace bwshare::sim {

/// One job of a co-scheduled replay: its trace and where its tasks sit on
/// the shared cluster. Placements may overlap across jobs — that is the
/// point — but each must be valid for the cluster on its own.
struct JobSpec {
  std::string name;
  AppTrace trace;
  Placement placement;
};

struct JobOutcome {
  std::string name;
  int num_tasks = 0;
  /// Makespan of this job replayed alone on the same cluster and scenario.
  double makespan_alone = 0.0;
  /// Finish time of this job's last task in the shared replay.
  double makespan_shared = 0.0;
  /// (makespan_shared / makespan_alone - 1) * 100.
  double interference_pct = 0.0;
};

struct MultiJobResult {
  /// The shared replay, tasks concatenated in job order.
  SimResult combined;
  std::vector<JobOutcome> jobs;
  /// Task -> job id in the combined replay (also what the engine saw).
  std::vector<int> job_of;
};

/// Co-schedule `jobs` on `cluster` and report per-job interference.
/// `scenario` may carry churn/background scripts (applied to the shared run
/// AND every alone run, so interference isolates the co-scheduling effect);
/// its job_of must be empty — the runner derives it. Throws bwshare::Error
/// on an empty job list, an invalid per-job trace, or a scenario that
/// already assigns jobs.
[[nodiscard]] MultiJobResult run_multi_job(
    const std::vector<JobSpec>& jobs, const topo::ClusterSpec& cluster,
    const flowsim::RateProvider& provider, const Scenario& scenario = {},
    const EngineConfig& config = {});

}  // namespace bwshare::sim
