#include "sim/schedule.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace bwshare::sim {

std::string to_string(SchedulingPolicy policy) {
  switch (policy) {
    case SchedulingPolicy::kRoundRobinNode: return "RRN";
    case SchedulingPolicy::kRoundRobinProcessor: return "RRP";
    case SchedulingPolicy::kRandom: return "Random";
  }
  return "?";
}

SchedulingPolicy scheduling_policy_from_string(const std::string& name) {
  if (name == "RRN" || name == "rrn") return SchedulingPolicy::kRoundRobinNode;
  if (name == "RRP" || name == "rrp")
    return SchedulingPolicy::kRoundRobinProcessor;
  if (name == "Random" || name == "random") return SchedulingPolicy::kRandom;
  BWS_THROW("unknown scheduling policy '" + name + "'");
}

Placement::Placement(std::vector<topo::NodeId> node_of_task)
    : node_of_task_(std::move(node_of_task)) {
  for (topo::NodeId n : node_of_task_)
    BWS_CHECK(n >= 0, "placement references a negative node id");
}

Placement make_placement(SchedulingPolicy policy,
                         const topo::ClusterSpec& cluster, int num_tasks,
                         uint64_t seed) {
  BWS_CHECK(num_tasks >= 1, "need at least one task");
  BWS_CHECK(num_tasks <= cluster.total_cores(),
            strformat("cluster has %d cores for %d tasks",
                      cluster.total_cores(), num_tasks));

  // One slot per core, in node order: [n0,n0,n1,n1,...] for 2-core nodes.
  std::vector<topo::NodeId> slots;
  slots.reserve(static_cast<size_t>(cluster.total_cores()));
  for (topo::NodeId n = 0; n < cluster.num_nodes(); ++n)
    for (int c = 0; c < cluster.node(n).cores; ++c) slots.push_back(n);

  std::vector<topo::NodeId> node_of(static_cast<size_t>(num_tasks));
  switch (policy) {
    case SchedulingPolicy::kRoundRobinNode: {
      // Cycle over nodes; a node accepts as many rounds as it has cores.
      std::vector<int> used(static_cast<size_t>(cluster.num_nodes()), 0);
      int t = 0;
      while (t < num_tasks) {
        bool placed_any = false;
        for (topo::NodeId n = 0; n < cluster.num_nodes() && t < num_tasks;
             ++n) {
          if (used[static_cast<size_t>(n)] >= cluster.node(n).cores) continue;
          ++used[static_cast<size_t>(n)];
          node_of[static_cast<size_t>(t++)] = n;
          placed_any = true;
        }
        BWS_ASSERT(placed_any, "round-robin placement made no progress");
      }
      break;
    }
    case SchedulingPolicy::kRoundRobinProcessor: {
      for (int t = 0; t < num_tasks; ++t)
        node_of[static_cast<size_t>(t)] = slots[static_cast<size_t>(t)];
      break;
    }
    case SchedulingPolicy::kRandom: {
      Rng rng(seed);
      // Fisher-Yates over the core slots, then take the first num_tasks.
      for (size_t i = slots.size() - 1; i > 0; --i)
        std::swap(slots[i], slots[rng.below(i + 1)]);
      for (int t = 0; t < num_tasks; ++t)
        node_of[static_cast<size_t>(t)] = slots[static_cast<size_t>(t)];
      break;
    }
  }
  return Placement(std::move(node_of));
}

}  // namespace bwshare::sim
