// Dynamic-cluster scenarios for sim::run_simulation: membership churn
// (join / leave / fail), background cross-traffic, and multi-job
// co-scheduling. A Scenario is plain data layered on the graph-level script
// types (graph/generator.hpp); the engine-side semantics are:
//
//   * kFail   — the node goes down and every in-flight transfer with an
//     endpoint on it ABORTS at the event time: partial bytes are kept in the
//     record (CommRecord::aborted), the endpoints unblock immediately, and
//     the dirtied conflict components re-solve at the next flush point.
//   * kLeave  — the node goes down but in-flight transfers DRAIN normally
//     (graceful departure). Down nodes stop admitting background flows.
//   * kJoin   — the node comes (back) up and admits background flows again.
//
//   Node state gates background-flow admission only: the measured job is a
//   transient-fault model — its tasks keep executing and its transfers keep
//   draining (or abort, on kFail) so the replay always terminates, and the
//   disruption shows up as aborted records and inflated completion times.
//
//   * Background flows are task-less transfers: they contend for nodes and
//     coupling keys like any member of the active set (so they join and
//     split conflict components), but nothing blocks on them and they are
//     excluded from average_penalty().
//
//   * job_of assigns each task to a job; barriers synchronize WITHIN a job
//     only, so N independently-traced jobs merged into one AppTrace
//     co-schedule on the shared cluster. sim/multijob.hpp builds such merged
//     replays and reports per-job interference.
//
// Script events are replayed on the engine's core::EventQueue keyed by
// (time, script order) — identical under every RefreshMode / QueueMode /
// SolveMode, which tests/sim/test_engine_churn.cpp enforces bit-exactly.
#pragma once

#include <vector>

#include "graph/generator.hpp"

namespace bwshare::sim {

struct Scenario {
  /// Membership script (absolute times; any order — the engine sorts by
  /// (time, index)).
  std::vector<graph::ChurnEvent> churn;
  /// Cross-traffic script (absolute times).
  std::vector<graph::BackgroundFlow> background;
  /// Nodes that start down (admit no background flows until a kJoin).
  std::vector<int> down_at_start;
  /// Per-task job id (empty = every task in job 0). Ids must be dense:
  /// every id in [0, max] occupied.
  std::vector<int> job_of;

  [[nodiscard]] bool empty() const {
    return churn.empty() && background.empty() && down_at_start.empty() &&
           job_of.empty();
  }

  /// Number of co-scheduled jobs (1 when job_of is empty).
  [[nodiscard]] int num_jobs() const;

  /// Check the scenario against the replay it will drive. Throws
  /// bwshare::Error on out-of-range nodes/times/bytes, a job_of that does
  /// not cover every task, or non-dense job ids.
  void validate(int num_tasks, int num_nodes) const;
};

}  // namespace bwshare::sim
