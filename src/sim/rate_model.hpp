// RateProvider adapter for the paper's penalty models: whenever the set of
// in-flight communications changes, the model is re-evaluated on the
// instantaneous communication graph and each transfer drains at
// reference_bandwidth / penalty. This is how the §VI-A simulator applies the
// §V models to application traces.
#pragma once

#include <memory>

#include "flowsim/fluid_network.hpp"
#include "models/penalty_model.hpp"
#include "topo/network.hpp"

namespace bwshare::sim {

class ModelRateProvider final : public flowsim::RateProvider {
 public:
  ModelRateProvider(std::shared_ptr<const models::PenaltyModel> model,
                    topo::NetworkCalibration cal);

  [[nodiscard]] std::vector<double> rates(
      const graph::CommGraph& active) const override;

  [[nodiscard]] const topo::NetworkCalibration& calibration() const {
    return cal_;
  }
  [[nodiscard]] const models::PenaltyModel& model() const { return *model_; }

 private:
  std::shared_ptr<const models::PenaltyModel> model_;
  topo::NetworkCalibration cal_;
};

}  // namespace bwshare::sim
