// RateProvider adapter for the paper's penalty models: whenever the set of
// in-flight communications changes, the model is re-evaluated on the
// instantaneous communication graph and each transfer drains at
// reference_bandwidth / penalty. This is how the §VI-A simulator applies the
// §V models to application traces.
#pragma once

#include <memory>

#include "flowsim/fluid_network.hpp"
#include "models/penalty_model.hpp"
#include "topo/network.hpp"

namespace bwshare::sim {

/// Const-safe and reentrant like every RateProvider (see the base class
/// contract): the penalty model is shared immutable state, all solve
/// scratch is stack-local, so the engine's parallel flush may call
/// rates(active, subset) from several threads over disjoint components.
class ModelRateProvider final : public flowsim::RateProvider {
 public:
  ModelRateProvider(std::shared_ptr<const models::PenaltyModel> model,
                    topo::NetworkCalibration cal);

  [[nodiscard]] std::vector<double> rates(
      const graph::CommGraph& active) const override;

  /// Component-restricted solve: evaluates the penalty model on the induced
  /// subgraph of `subset`'s endpoint closure only. Exact because every paper
  /// model is local to an endpoint-closed component — penalties depend on
  /// node degrees, strongly-slow sets, and conflict-graph components, all
  /// fully determined inside such a set (see docs/PERFORMANCE.md).
  [[nodiscard]] std::vector<double> rates(
      const graph::CommGraph& active,
      std::span<const graph::CommId> subset) const override;

  [[nodiscard]] const topo::NetworkCalibration& calibration() const {
    return cal_;
  }
  [[nodiscard]] const models::PenaltyModel& model() const { return *model_; }

 private:
  std::shared_ptr<const models::PenaltyModel> model_;
  topo::NetworkCalibration cal_;
};

}  // namespace bwshare::sim
