// Application traces (paper §VI-A): "one or more applications represented by
// a sequence of events. There are two kind of events: compute events and
// communication events."
//
// We add an explicit Barrier event because the paper's measurement method
// (§IV-B) synchronizes tasks with MPI barriers between iterations.
#pragma once

#include <string>
#include <vector>

#include "graph/comm_graph.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace bwshare::sim {

using TaskId = int;

/// Matches any sender (the paper's MPI_ANY_SOURCE receive).
inline constexpr TaskId kAnySource = -1;

enum class EventKind {
  kCompute,
  kSend,     // blocking MPI_Send
  kRecv,     // blocking MPI_Recv
  kIsend,    // non-blocking MPI_Isend: posts the send, task continues
  kIrecv,    // non-blocking MPI_Irecv: posts the receive, task continues
  kWaitAll,  // MPI_Waitall on every outstanding Isend/Irecv of this task
  kBarrier,
};

struct Event {
  EventKind kind = EventKind::kCompute;
  /// kCompute: duration in seconds.
  double seconds = 0.0;
  /// kSend/kRecv: peer task (kAnySource allowed for kRecv only).
  TaskId peer = 0;
  /// kSend/kRecv: message length in bytes (as passed to MPI_Send; the
  /// envelope the MPI implementation adds is part of the calibration).
  double bytes = 0.0;

  static Event compute(double seconds);
  static Event send(TaskId to, double bytes);
  static Event recv(TaskId from, double bytes);
  static Event recv_any(double bytes);
  static Event isend(TaskId to, double bytes);
  static Event irecv(TaskId from, double bytes);
  static Event wait_all();
  static Event barrier();
};

/// One task's program: the ordered list of its events.
using TaskProgram = std::vector<Event>;

/// A traced application: one program per MPI task (index == task id).
class AppTrace {
 public:
  AppTrace() = default;
  explicit AppTrace(int num_tasks);

  [[nodiscard]] int num_tasks() const { return static_cast<int>(programs_.size()); }
  // Inline: the engine fetches a program on every task step.
  [[nodiscard]] const TaskProgram& program(TaskId t) const {
    BWS_CHECK(t >= 0 && t < num_tasks(),
              strformat("task %d out of range [0,%d)", t, num_tasks()));
    return programs_[static_cast<size_t>(t)];
  }
  [[nodiscard]] TaskProgram& program(TaskId t) {
    BWS_CHECK(t >= 0 && t < num_tasks(),
              strformat("task %d out of range [0,%d)", t, num_tasks()));
    return programs_[static_cast<size_t>(t)];
  }

  /// Append an event to task `t`'s program.
  void push(TaskId t, Event e);

  /// Append a barrier to every task.
  void push_barrier_all();

  /// Totals, for reporting.
  [[nodiscard]] double total_compute_seconds() const;
  [[nodiscard]] double total_bytes_sent() const;
  [[nodiscard]] size_t total_events() const;

  /// Number of kSend/kIsend events — the communication-record count a replay
  /// of this trace produces (the engine pre-sizes its result with it).
  [[nodiscard]] size_t total_sends() const;

  /// Sanity-check the trace: every send must have a matching receive
  /// (by task pair and order-insensitive multiset of sizes), barriers must
  /// be consistent. Throws bwshare::Error when violated.
  void validate() const;

 private:
  std::vector<TaskProgram> programs_;
};

[[nodiscard]] std::string to_string(EventKind kind);

/// Lift a static communication scheme into a one-phase trace: task i stands
/// on node i, every communication is posted non-blocking (all receives, then
/// all sends, in scheme order), then every task waits. All transfers start
/// at t=0 in one event cascade, so the first flush carries the scheme's full
/// component structure. This is how the engine-equivalence fuzz suites and
/// the serving layer replay scheme workloads through run_simulation.
[[nodiscard]] AppTrace trace_from_scheme(const graph::CommGraph& scheme);

}  // namespace bwshare::sim
