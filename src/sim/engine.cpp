#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <span>
#include <type_traits>

#include "core/clock.hpp"
#include "core/event_queue.hpp"
#include "sim/solve_memo.hpp"
#include "util/arena.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/strings.hpp"
#include "util/threadpool.hpp"

namespace bwshare::sim {

double SimResult::average_penalty() const {
  double total = 0.0;
  size_t count = 0;
  for (const auto& c : comms) {
    if (c.background || c.aborted) continue;  // not the measured job's story
    total += c.penalty;
    ++count;
  }
  if (count == 0) return 1.0;
  return total / static_cast<double>(count);
}

double SimResult::task_comm_time(TaskId t) const {
  BWS_CHECK(t >= 0 && t < static_cast<TaskId>(tasks.size()),
            "task out of range");
  return tasks[static_cast<size_t>(t)].send_blocked_seconds;
}

bool bit_identical(const SimResult& a, const SimResult& b) {
  if (a.makespan != b.makespan) return false;
  if (a.aborted_comms != b.aborted_comms) return false;
  if (a.background_comms != b.background_comms) return false;
  if (a.background_skipped != b.background_skipped) return false;
  if (a.comms.size() != b.comms.size()) return false;
  for (size_t i = 0; i < a.comms.size(); ++i) {
    const CommRecord& x = a.comms[i];
    const CommRecord& y = b.comms[i];
    if (x.src_task != y.src_task || x.dst_task != y.dst_task ||
        x.src_node != y.src_node || x.dst_node != y.dst_node ||
        x.bytes != y.bytes || x.send_post != y.send_post ||
        x.recv_post != y.recv_post || x.start != y.start ||
        x.finish != y.finish || x.penalty != y.penalty ||
        x.sender_time != y.sender_time || x.background != y.background ||
        x.aborted != y.aborted) {
      return false;
    }
  }
  if (a.tasks.size() != b.tasks.size()) return false;
  for (size_t t = 0; t < a.tasks.size(); ++t) {
    const TaskStats& x = a.tasks[t];
    const TaskStats& y = b.tasks[t];
    if (x.finish_time != y.finish_time ||
        x.compute_seconds != y.compute_seconds ||
        x.send_blocked_seconds != y.send_blocked_seconds ||
        x.recv_blocked_seconds != y.recv_blocked_seconds ||
        x.barrier_wait_seconds != y.barrier_wait_seconds ||
        x.sends != y.sends || x.recvs != y.recvs) {
      return false;
    }
  }
  return true;
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

enum class TaskState { kReady, kComputing, kSendBlocked, kRecvBlocked,
                       kWaitAll, kBarrier, kDone };

struct PendingSend {
  TaskId src = 0;
  uint64_t order = 0;   // global posting order (any-source matching)
  double bytes = 0.0;
  double post_time = 0.0;
  bool rendezvous = false;
  bool tracked = false;  // posted via kIsend; completes a WaitAll request
  size_t record = 0;     // index into result.comms
};

struct PendingRecv {
  TaskId peer = kAnySource;
  uint64_t order = 0;
  double bytes = 0.0;
  double post_time = 0.0;
  bool nonblocking = false;  // posted via kIrecv
};

/// One in-flight transfer, stored in a stable slot. `remaining` is only
/// valid as of `advance_time` — bytes are integrated lazily, when the
/// transfer's component is next touched (docs/PERFORMANCE.md).
///
/// Deliberately trivially copyable: slots are recycled with a plain
/// assignment and completion snapshots the struct by value, so any owning
/// member here would put an allocation on the per-event path. The provider
/// coupling keys (the one variable-length attribute) live in the engine's
/// parallel `slot_keys_` side storage, whose vectors keep their capacity
/// across slot reuse.
struct Transfer {
  size_t record = 0;
  TaskId src = 0;
  TaskId dst = 0;
  topo::NodeId src_node = 0;
  topo::NodeId dst_node = 0;
  double remaining = 0.0;     // bytes left, as of advance_time
  double advance_time = 0.0;  // sim time `remaining` refers to
  double rate = 0.0;
  double finish_pred = kInf;  // advance_time + remaining / rate
  bool rendezvous = false;
  bool src_tracked = false;      // sender posted via kIsend
  bool dst_nonblocking = false;  // receiver posted via kIrecv
  bool background = false;       // task-less injected flow; src/dst unused
  bool alive = false;
  int component = -1;
  /// Entry in the finish-time queue (QueueMode::kHeap). Stable across
  /// component dissolve/regroup — only a re-solve that changes finish_pred
  /// re-keys it, and only completion erases it.
  core::EventHandle qh = core::kNullEventHandle;
};
static_assert(std::is_trivially_copyable_v<Transfer>,
              "Transfer is snapshotted by value on the hot path");

/// Per-thread solve scratch: the component's induced communication graph
/// plus the memo path's rate buffers. One instance per thread (pool workers
/// included) so parallel component solves never share or allocate — the
/// graph and vectors keep their capacity across solves.
struct SolveScratch {
  graph::CommGraph sub;
  std::vector<double> memo_rates;
  std::vector<double> memo_verify;
};

SolveScratch& solve_scratch() {
  thread_local SolveScratch scratch;
  return scratch;
}

/// A connected component of the coupling structure over active transfers:
/// two transfers belong together iff they share an endpoint node or a
/// provider coupling key (transitively). `nodes`/`keys` record the
/// ownership entries this component asserted, so freeing it can clear
/// exactly those slots of the flat owner arrays. Component objects are
/// pooled (free_components_) with their vectors' capacity retained, so
/// dissolve/regroup cycles stop allocating once warmed.
struct Component {
  std::vector<size_t> members;  // alive transfer slots
  std::vector<topo::NodeId> nodes;
  std::vector<int> keys;
  bool alive = false;
  bool dirty = false;
  /// A member was removed since the component was last clean. Only a
  /// shrunken component can split, so only these need the dissolve/regroup
  /// pass at the next flush; a component that merely grew keeps its grouping
  /// (attach_transfer materialized any merges eagerly) and just has its
  /// members' byte counts advanced — the same instant a dissolve would have.
  bool shrunk = false;
};

/// One scripted scenario event, merged from Scenario::churn and
/// Scenario::background in declaration order. Replayed off a dedicated
/// core::EventQueue keyed by (time, script index) — the same sequence under
/// every RefreshMode / QueueMode / SolveMode.
struct ScriptEvent {
  enum class Kind { kJoin, kLeave, kFail, kFlow };
  Kind kind = Kind::kFlow;
  double time = 0.0;
  int node = 0;        // membership events
  int src = 0;         // kFlow
  int dst = 0;         // kFlow
  double bytes = 0.0;  // kFlow
};

class Engine {
 public:
  Engine(const AppTrace& trace, const topo::ClusterSpec& cluster,
         const Placement& placement, const flowsim::RateProvider& provider,
         const Scenario& scenario, const EngineConfig& config)
      : trace_(trace),
        cluster_(cluster),
        placement_(placement),
        provider_(provider),
        cfg_(config) {
    BWS_CHECK(placement_.num_tasks() == trace_.num_tasks(),
              "placement task count must match the trace");
    for (int t = 0; t < trace_.num_tasks(); ++t)
      BWS_CHECK(placement_.node_of(t) < cluster_.num_nodes(),
                "placement references a node outside the cluster");
    const int n = trace_.num_tasks();
    state_.assign(static_cast<size_t>(n), TaskState::kReady);
    pc_.assign(static_cast<size_t>(n), 0);
    ready_at_.assign(static_cast<size_t>(n), 0.0);
    blocked_since_.assign(static_cast<size_t>(n), 0.0);
    result_.tasks.assign(static_cast<size_t>(n), TaskStats{});
    pending_sends_.resize(static_cast<size_t>(n));
    pending_recvs_.resize(static_cast<size_t>(n));
    // A first unmatched post would otherwise buy each queue's capacity-1
    // buffer mid-replay — a first-touch allocation tail that trickles on for
    // as long as fresh (task, direction) pairs keep appearing. Paying all of
    // them here keeps the steady-state loop allocation-free.
    for (auto& q : pending_sends_) q.reserve(1);
    for (auto& q : pending_recvs_) q.reserve(1);
    outstanding_requests_.assign(static_cast<size_t>(n), 0);
    // One record per send is known up front; background flows may push a few
    // more, but reserving the floor keeps the replay free of the geometric
    // regrowth memcpy over what is by far the engine's largest result array.
    result_.comms.reserve(trace_.total_sends());

    node_owner_.assign(static_cast<size_t>(cluster_.num_nodes()), -1);
    node_up_.assign(static_cast<size_t>(cluster_.num_nodes()), true);
    for (const int v : scenario.down_at_start)
      node_up_[static_cast<size_t>(v)] = false;
    job_of_ = scenario.job_of;
    if (job_of_.empty()) job_of_.assign(static_cast<size_t>(n), 0);
    int num_jobs = 1;
    for (const int j : job_of_) num_jobs = std::max(num_jobs, j + 1);
    job_size_.assign(static_cast<size_t>(num_jobs), 0);
    for (const int j : job_of_) ++job_size_[static_cast<size_t>(j)];
    job_barrier_arrivals_.assign(static_cast<size_t>(num_jobs), 0);

    // Merge the scenario scripts into one queue; churn events precede
    // background flows at equal times (seq order below).
    script_.reserve(scenario.churn.size() + scenario.background.size());
    for (const auto& ev : scenario.churn) {
      ScriptEvent se;
      se.kind = ev.kind == graph::ChurnKind::kJoin ? ScriptEvent::Kind::kJoin
                : ev.kind == graph::ChurnKind::kLeave
                    ? ScriptEvent::Kind::kLeave
                    : ScriptEvent::Kind::kFail;
      se.time = ev.time;
      se.node = ev.node;
      script_.push_back(se);
    }
    for (const auto& f : scenario.background) {
      ScriptEvent se;
      se.kind = ScriptEvent::Kind::kFlow;
      se.time = f.time;
      se.src = f.src;
      se.dst = f.dst;
      se.bytes = f.bytes;
      script_.push_back(se);
    }
    for (size_t i = 0; i < script_.size(); ++i)
      script_q_.push(script_[i].time, static_cast<uint64_t>(i), i);
  }

  SimResult run() {
    // Drive every task as far as it can go, then hop to the next event.
    for (TaskId t = 0; t < trace_.num_tasks(); ++t) advance_task(t);
    const bool heap = cfg_.queue == QueueMode::kHeap;
    while (num_done_ < trace_.num_tasks()) {
      // Flush point: solve every component the last event cascade dirtied,
      // before any prediction below is read. The clock has not moved since
      // they turned dirty, so deferring the solves to here is unobservable.
      flush_refresh();
      // A predicted finish can sit in the past (a barrier cost overshot
      // it); the transfer then completes, late, at the current time.
      const double next_compute =
          heap ? (compute_q_.empty()
                      ? kInf
                      : std::max(compute_q_.top_time(), now()))
               : earliest_compute_end();
      const double next_transfer =
          heap ? (transfer_q_.empty()
                      ? kInf
                      : std::max(transfer_q_.top_time(), now()))
               : earliest_transfer_end();
      // Scenario scripts ride their own queue in both QueueModes; like a
      // predicted finish, a scripted time can sit in the past after a
      // barrier cost overshot it.
      const double next_script =
          script_q_.empty() ? kInf : std::max(script_q_.top_time(), now());
      if (heap && cfg_.refresh == RefreshMode::kCrossCheck) {
        // Queue-order equivalence: the heap's next-event times must match
        // the legacy scans exactly, at every event.
        BWS_CHECK(earliest_compute_end() == next_compute,
                  strformat("event queue diverged from scan on the next "
                            "compute wake-up: heap %.17g vs scan %.17g at "
                            "t=%.9g",
                            next_compute, earliest_compute_end(), now()));
        BWS_CHECK(earliest_transfer_end() == next_transfer,
                  strformat("event queue diverged from scan on the next "
                            "completion: heap %.17g vs scan %.17g at t=%.9g",
                            next_transfer, earliest_transfer_end(), now()));
      }
      const double next = std::min({next_compute, next_transfer, next_script});
      BWS_CHECK(next < kInf, deadlock_message());
      BWS_CHECK(next <= cfg_.max_time, "simulation exceeded max_time");
      clock_.advance_to(next);
      // Script events fire first at equal times: a failure at t aborts
      // transfers before a same-t completion is chosen, in every mode.
      if (next_script <= next) {
        process_script_event();
      } else if (next_transfer <= next_compute) {
        complete_one_transfer();
      } else {
        wake_computers();
      }
    }
    result_.makespan = now();
    for (TaskId t = 0; t < trace_.num_tasks(); ++t)
      result_.tasks[static_cast<size_t>(t)].finish_time =
          std::max(result_.tasks[static_cast<size_t>(t)].finish_time, 0.0);
    return std::move(result_);
  }

 private:
  [[nodiscard]] double now() const { return clock_.now(); }

  // --- task stepping -------------------------------------------------------

  /// Put `t` to sleep until `until` (a compute burst, or modelled receive
  /// latency): the state bookkeeping plus, in heap mode, the wake-up queue
  /// entry. A computing task owns exactly one compute_q_ entry, popped when
  /// it wakes — nothing ever re-keys it.
  void begin_compute(TaskId t, double until) {
    state_[static_cast<size_t>(t)] = TaskState::kComputing;
    ready_at_[static_cast<size_t>(t)] = until;
    if (cfg_.queue == QueueMode::kHeap)
      compute_q_.push(until, static_cast<uint64_t>(t), t);
  }

  void advance_task(TaskId t) {
    auto& st = state_[static_cast<size_t>(t)];
    while (st == TaskState::kReady) {
      const auto& program = trace_.program(t);
      if (pc_[static_cast<size_t>(t)] >= program.size()) {
        st = TaskState::kDone;
        ++num_done_;
        result_.tasks[static_cast<size_t>(t)].finish_time = now();
        return;
      }
      const Event& e = program[pc_[static_cast<size_t>(t)]++];
      switch (e.kind) {
        case EventKind::kCompute:
          begin_compute(t, now() + e.seconds);
          result_.tasks[static_cast<size_t>(t)].compute_seconds += e.seconds;
          return;
        case EventKind::kSend:
          post_send(t, e, /*nonblocking=*/false);
          return;  // state set inside (may stay kReady for eager)
        case EventKind::kIsend:
          post_send(t, e, /*nonblocking=*/true);
          // The send may have completed the task's program synchronously
          // (eager path advances); stop if the state moved on.
          if (st != TaskState::kReady) return;
          break;
        case EventKind::kRecv:
          post_recv(t, e, /*nonblocking=*/false);
          return;
        case EventKind::kIrecv:
          post_recv(t, e, /*nonblocking=*/true);
          break;  // task stays ready; loop continues
        case EventKind::kWaitAll:
          if (outstanding_requests_[static_cast<size_t>(t)] > 0) {
            st = TaskState::kWaitAll;
            blocked_since_[static_cast<size_t>(t)] = now();
            return;
          }
          break;  // nothing outstanding: fall through to the next event
        case EventKind::kBarrier:
          arrive_barrier(t);
          return;
      }
    }
  }

  void post_send(TaskId t, const Event& e, bool nonblocking) {
    auto& stats = result_.tasks[static_cast<size_t>(t)];
    ++stats.sends;
    const bool rendezvous = !nonblocking && e.bytes >= cfg_.eager_threshold;

    CommRecord rec;
    rec.src_task = t;
    rec.dst_task = e.peer;
    rec.src_node = placement_.node_of(t);
    rec.dst_node = placement_.node_of(e.peer);
    rec.bytes = e.bytes;
    rec.send_post = now();
    result_.comms.push_back(rec);
    const size_t record = result_.comms.size() - 1;

    PendingSend ps;
    ps.src = t;
    ps.order = next_order_++;
    ps.bytes = e.bytes;
    ps.post_time = now();
    ps.rendezvous = rendezvous;
    ps.tracked = nonblocking;
    ps.record = record;

    if (rendezvous) {
      state_[static_cast<size_t>(t)] = TaskState::kSendBlocked;
      blocked_since_[static_cast<size_t>(t)] = now();
    } else {
      state_[static_cast<size_t>(t)] = TaskState::kReady;
      if (nonblocking) ++outstanding_requests_[static_cast<size_t>(t)];
    }

    // Try to match an already-posted receive at the destination.
    auto& recvs = pending_recvs_[static_cast<size_t>(e.peer)];
    for (auto it = recvs.begin(); it != recvs.end(); ++it) {
      if (it->peer == kAnySource || it->peer == t) {
        result_.comms[record].recv_post = it->post_time;
        const bool dst_nonblocking = it->nonblocking;
        recvs.erase(it);
        start_transfer(ps, e.peer, dst_nonblocking);
        if (!rendezvous && !nonblocking) advance_task(t);
        return;
      }
    }
    pending_sends_[static_cast<size_t>(e.peer)].push_back(ps);
    if (!rendezvous && !nonblocking) advance_task(t);
  }

  void post_recv(TaskId t, const Event& e, bool nonblocking) {
    auto& stats = result_.tasks[static_cast<size_t>(t)];
    ++stats.recvs;
    if (nonblocking) {
      ++outstanding_requests_[static_cast<size_t>(t)];
    } else {
      state_[static_cast<size_t>(t)] = TaskState::kRecvBlocked;
      blocked_since_[static_cast<size_t>(t)] = now();
    }

    // Match the earliest pending send addressed to us (by posting order).
    auto& sends = pending_sends_[static_cast<size_t>(t)];
    auto best = sends.end();
    for (auto it = sends.begin(); it != sends.end(); ++it) {
      if (e.peer != kAnySource && it->src != e.peer) continue;
      if (best == sends.end() || it->order < best->order) best = it;
    }
    if (best != sends.end()) {
      PendingSend ps = *best;
      sends.erase(best);
      result_.comms[ps.record].recv_post = now();
      start_transfer(ps, t, nonblocking);
      return;
    }
    PendingRecv pr;
    pr.peer = e.peer;
    pr.order = next_order_++;
    pr.bytes = e.bytes;
    pr.post_time = now();
    pr.nonblocking = nonblocking;
    pending_recvs_[static_cast<size_t>(t)].push_back(pr);
  }

  void arrive_barrier(TaskId t) {
    state_[static_cast<size_t>(t)] = TaskState::kBarrier;
    blocked_since_[static_cast<size_t>(t)] = now();
    // Barriers synchronize within a job: co-scheduled jobs never wait on
    // each other's barriers (with a single job this is the global barrier).
    const int job = job_of_[static_cast<size_t>(t)];
    ++job_barrier_arrivals_[static_cast<size_t>(job)];
    if (job_barrier_arrivals_[static_cast<size_t>(job)] <
        job_size_[static_cast<size_t>(job)])
      return;
    // The whole job arrived: release it. In-flight transfers are untouched —
    // their byte counts advance lazily when their component is next
    // refreshed.
    job_barrier_arrivals_[static_cast<size_t>(job)] = 0;
    for (TaskId u = 0; u < trace_.num_tasks(); ++u) {
      if (job_of_[static_cast<size_t>(u)] != job) continue;
      if (state_[static_cast<size_t>(u)] != TaskState::kBarrier) continue;
      result_.tasks[static_cast<size_t>(u)].barrier_wait_seconds +=
          now() - blocked_since_[static_cast<size_t>(u)];
      state_[static_cast<size_t>(u)] = TaskState::kReady;
    }
    // Flush point: the barrier cost is about to advance the clock, so any
    // component a completion dirtied earlier in this event must re-solve
    // now — its members would otherwise integrate bytes across the cost
    // interval at stale rates.
    flush_refresh();
    clock_.advance_by(cfg_.barrier_cost);
    for (TaskId u = 0; u < trace_.num_tasks(); ++u)
      if (state_[static_cast<size_t>(u)] == TaskState::kReady) advance_task(u);
  }

  // --- transfers -----------------------------------------------------------

  /// Integrate the bytes `tr` moved since its last advance. Clamped at zero:
  /// a transfer can overshoot its end when a barrier cost pushes `now()` past
  /// its predicted finish; it then completes (late) at the current time.
  void advance(Transfer& tr) {
    if (now() > tr.advance_time && tr.rate > 0.0)
      tr.remaining =
          std::max(0.0, tr.remaining - tr.rate * (now() - tr.advance_time));
    tr.advance_time = now();
  }

  size_t alloc_slot() {
    size_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      transfers_.emplace_back();
      slot_keys_.emplace_back();
      slot = transfers_.size() - 1;
    }
    transfers_[slot] = Transfer{};
    slot_keys_[slot].clear();  // keeps capacity for the next key set
    return slot;
  }

  /// Fetch the provider's coupling keys for a fresh transfer into its slot's
  /// side storage. Providers without extra coupling return an empty vector
  /// (no allocation); with coupling the capacity retained in slot_keys_ is
  /// replaced by the returned vector's.
  void set_slot_keys(size_t slot) {
    const Transfer& tr = transfers_[slot];
    slot_keys_[slot] = provider_.coupling_keys(tr.src_node, tr.dst_node);
  }

  void start_transfer(const PendingSend& ps, TaskId dst,
                      bool dst_nonblocking) {
    const size_t slot = alloc_slot();
    Transfer& tr = transfers_[slot];
    tr.record = ps.record;
    tr.src = ps.src;
    tr.dst = dst;
    tr.src_node = placement_.node_of(ps.src);
    tr.dst_node = placement_.node_of(dst);
    tr.remaining = std::max(ps.bytes, 1.0);  // 0-length still costs latency
    tr.advance_time = now();
    tr.rendezvous = ps.rendezvous;
    tr.src_tracked = ps.tracked;
    tr.dst_nonblocking = dst_nonblocking;
    tr.alive = true;
    set_slot_keys(slot);
    // The finish-time index entry lives as long as the transfer does; the
    // refresh below re-keys it to the first real prediction.
    if (cfg_.queue == QueueMode::kHeap)
      tr.qh = transfer_q_.push(kInf, static_cast<uint64_t>(tr.record), slot);
    result_.comms[ps.record].start = now();
    ++num_active_;
    attach_transfer(slot);
    refresh_rates();
  }

  // --- scenario scripts ----------------------------------------------------

  /// Pop and apply the next scripted event. One event per main-loop turn, so
  /// every flush point between same-time script events is honoured exactly
  /// the same way in all refresh modes.
  void process_script_event() {
    BWS_ASSERT(!script_q_.empty(), "no script event pending");
    const size_t idx = script_q_.top();
    script_q_.pop();
    const ScriptEvent& ev = script_[idx];
    switch (ev.kind) {
      case ScriptEvent::Kind::kJoin:
        node_up_[static_cast<size_t>(ev.node)] = true;
        break;
      case ScriptEvent::Kind::kLeave:
        // Graceful departure: stop admitting background flows, but let the
        // node's in-flight transfers drain.
        node_up_[static_cast<size_t>(ev.node)] = false;
        break;
      case ScriptEvent::Kind::kFail:
        node_up_[static_cast<size_t>(ev.node)] = false;
        fail_node(ev.node);
        break;
      case ScriptEvent::Kind::kFlow:
        inject_background(ev);
        break;
    }
  }

  /// Crash semantics: every in-flight transfer with an endpoint on the
  /// failed node aborts at the event time, in posting (record) order so all
  /// refresh/queue/solve modes observe the same cascade.
  void fail_node(int node) {
    aborting_.clear();
    for (size_t s = 0; s < transfers_.size(); ++s) {
      const Transfer& tr = transfers_[s];
      if (tr.alive && (tr.src_node == static_cast<topo::NodeId>(node) ||
                       tr.dst_node == static_cast<topo::NodeId>(node)))
        aborting_.push_back(s);
    }
    std::sort(aborting_.begin(), aborting_.end(), [&](size_t a, size_t b) {
      return transfers_[a].record < transfers_[b].record;
    });
    // abort_transfer can cascade into new transfers (an unblocked task may
    // post its next send), but new slots are never aborted: the snapshot
    // above fixes the victim set at the failure instant.
    for (const size_t s : aborting_) abort_transfer(s);
  }

  /// Mirror of complete_one_transfer for a transfer cut short by a node
  /// failure: keep the partial byte count in the record, unblock both
  /// endpoints immediately (the failure is observed with no delivery
  /// latency), and leave the dirtied components for the next flush.
  void abort_transfer(size_t slot) {
    advance(transfers_[slot]);
    const Transfer tr = transfers_[slot];
    detach_transfer(slot);

    auto& rec = result_.comms[tr.record];
    rec.aborted = true;
    rec.finish = now();
    const double ref = reference_duration(rec);
    rec.penalty = ref > 0.0 ? (rec.finish - rec.start) / ref : 1.0;
    ++result_.aborted_comms;

    if (tr.background) {
      refresh_rates();
      return;
    }
    if (tr.rendezvous) {
      auto& stats = result_.tasks[static_cast<size_t>(tr.src)];
      rec.sender_time = now() - rec.send_post;
      stats.send_blocked_seconds +=
          now() - blocked_since_[static_cast<size_t>(tr.src)];
      state_[static_cast<size_t>(tr.src)] = TaskState::kReady;
    } else {
      rec.sender_time = 0.0;
    }
    if (tr.src_tracked) retire_request(tr.src, /*latency=*/0.0);
    if (tr.dst_nonblocking) {
      retire_request(tr.dst, /*latency=*/0.0);
    } else {
      auto& stats = result_.tasks[static_cast<size_t>(tr.dst)];
      stats.recv_blocked_seconds +=
          now() - blocked_since_[static_cast<size_t>(tr.dst)];
      state_[static_cast<size_t>(tr.dst)] = TaskState::kReady;
    }

    refresh_rates();
    if (state_[static_cast<size_t>(tr.src)] == TaskState::kReady)
      advance_task(tr.src);
    if (state_[static_cast<size_t>(tr.dst)] == TaskState::kReady)
      advance_task(tr.dst);
  }

  /// Admit one background flow: a task-less transfer that contends for
  /// nodes/coupling keys like any other active-set member but blocks nobody.
  /// Flows touching a down node are dropped (counted, not queued).
  void inject_background(const ScriptEvent& ev) {
    if (!node_up_[static_cast<size_t>(ev.src)] ||
        !node_up_[static_cast<size_t>(ev.dst)]) {
      ++result_.background_skipped;
      return;
    }
    CommRecord rec;
    rec.src_task = kAnySource;  // -1: no task on either side
    rec.dst_task = kAnySource;
    rec.src_node = static_cast<topo::NodeId>(ev.src);
    rec.dst_node = static_cast<topo::NodeId>(ev.dst);
    rec.bytes = ev.bytes;
    rec.send_post = now();
    rec.recv_post = now();
    rec.start = now();
    rec.background = true;
    result_.comms.push_back(rec);
    const size_t record = result_.comms.size() - 1;
    ++result_.background_comms;

    const size_t slot = alloc_slot();
    Transfer& tr = transfers_[slot];
    tr.record = record;
    tr.background = true;
    tr.src_node = rec.src_node;
    tr.dst_node = rec.dst_node;
    tr.remaining = std::max(ev.bytes, 1.0);
    tr.advance_time = now();
    tr.alive = true;
    set_slot_keys(slot);
    if (cfg_.queue == QueueMode::kHeap)
      tr.qh = transfer_q_.push(kInf, static_cast<uint64_t>(tr.record), slot);
    ++num_active_;
    attach_transfer(slot);
    refresh_rates();
  }

  // --- component tracking --------------------------------------------------

  int new_component() {
    int c;
    if (!free_components_.empty()) {
      c = free_components_.back();
      free_components_.pop_back();
    } else {
      components_.emplace_back();
      c = static_cast<int>(components_.size()) - 1;
    }
    auto& comp = components_[static_cast<size_t>(c)];
    comp.alive = true;
    comp.dirty = false;
    comp.shrunk = false;
    comp.members.clear();
    comp.nodes.clear();
    comp.keys.clear();
    return c;
  }

  void mark_dirty(int c) {
    auto& comp = components_[static_cast<size_t>(c)];
    if (!comp.dirty) {
      comp.dirty = true;
      dirty_.push_back(c);
    }
  }

  /// Release a component id, clearing exactly the ownership slots it still
  /// holds (slots taken over by a merge point elsewhere and are left).
  void free_component(int c) {
    auto& comp = components_[static_cast<size_t>(c)];
    for (const topo::NodeId nd : comp.nodes) {
      auto& owner = node_owner_[static_cast<size_t>(nd)];
      if (owner == c) owner = -1;
    }
    for (const int k : comp.keys) {
      auto& owner = key_owner_[static_cast<size_t>(k)];
      if (owner == c) owner = -1;
    }
    comp.alive = false;
    comp.dirty = false;
    comp.shrunk = false;
    comp.members.clear();
    comp.nodes.clear();
    comp.keys.clear();
    free_components_.push_back(c);
  }

  void merge_into(int target, int victim) {
    auto& t = components_[static_cast<size_t>(target)];
    auto& v = components_[static_cast<size_t>(victim)];
    // A shrunken victim may be splittable; the union inherits that doubt.
    if (v.shrunk) t.shrunk = true;
    for (const size_t s : v.members) transfers_[s].component = target;
    t.members.insert(t.members.end(), v.members.begin(), v.members.end());
    for (const topo::NodeId nd : v.nodes) {
      node_owner_[static_cast<size_t>(nd)] = target;
      t.nodes.push_back(nd);
    }
    for (const int k : v.keys) {
      key_owner_[static_cast<size_t>(k)] = target;
      t.keys.push_back(k);
    }
    v.alive = false;
    v.dirty = false;
    v.shrunk = false;
    v.members.clear();
    v.nodes.clear();
    v.keys.clear();
    free_components_.push_back(victim);
  }

  /// Place `slot` into the component owning any of its endpoint nodes or
  /// coupling keys, merging every component it bridges; a transfer touching
  /// nothing active starts its own. The touched component turns dirty.
  void attach_transfer(size_t slot) {
    Transfer& tr = transfers_[slot];
    int target = -1;
    const auto fold = [&](int c) {
      if (c == target) return;
      if (target == -1) {
        target = c;
        return;
      }
      if (components_[static_cast<size_t>(c)].members.size() >
          components_[static_cast<size_t>(target)].members.size())
        std::swap(target, c);
      merge_into(target, c);
    };
    const auto key_owner = [&](int k) {
      return static_cast<size_t>(k) < key_owner_.size()
                 ? key_owner_[static_cast<size_t>(k)]
                 : -1;
    };
    if (const int c = node_owner_[static_cast<size_t>(tr.src_node)]; c != -1)
      fold(c);
    if (const int c = node_owner_[static_cast<size_t>(tr.dst_node)]; c != -1)
      fold(c);
    const std::vector<int>& keys = slot_keys_[slot];
    for (const int k : keys)
      if (const int c = key_owner(k); c != -1) fold(c);
    if (target == -1) target = new_component();
    tr.component = target;
    auto& comp = components_[static_cast<size_t>(target)];
    comp.members.push_back(slot);
    node_owner_[static_cast<size_t>(tr.src_node)] = target;
    comp.nodes.push_back(tr.src_node);
    if (tr.dst_node != tr.src_node) {
      node_owner_[static_cast<size_t>(tr.dst_node)] = target;
      comp.nodes.push_back(tr.dst_node);
    }
    for (const int k : keys) {
      // Key ids come from the provider and are dense but unbounded a priori;
      // the array grows to the high-water key id and stays there.
      if (static_cast<size_t>(k) >= key_owner_.size())
        key_owner_.resize(static_cast<size_t>(k) + 1, -1);
      key_owner_[static_cast<size_t>(k)] = target;
      comp.keys.push_back(k);
    }
    mark_dirty(target);
  }

  /// Remove a finished transfer; the remnant component turns dirty (it may
  /// split — the next rebuild regroups it).
  void detach_transfer(size_t slot) {
    Transfer& tr = transfers_[slot];
    const int c = tr.component;
    auto& members = components_[static_cast<size_t>(c)].members;
    members.erase(std::find(members.begin(), members.end(), slot));
    if (cfg_.queue == QueueMode::kHeap) {
      transfer_q_.erase(tr.qh);
      tr.qh = core::kNullEventHandle;
    }
    tr.alive = false;
    tr.component = -1;
    slot_keys_[slot].clear();  // keeps capacity for reuse
    free_slots_.push_back(slot);
    --num_active_;
    if (members.empty()) {
      free_component(c);
    } else {
      mark_dirty(c);
      components_[static_cast<size_t>(c)].shrunk = true;
    }
  }

  /// Dissolve every dirty component that lost a member — advancing its
  /// members' byte counts to `now()` — and regroup the released transfers
  /// from scratch. Closure guarantees the released transfers can only
  /// regroup among themselves, so clean components are never disturbed. A
  /// dirty component that only *grew* cannot split (and any merge it needed
  /// was materialized eagerly by attach_transfer), so it keeps its grouping
  /// and only has its members advanced — at the same sim time a dissolve
  /// would have advanced them, the clock having been pinned since the
  /// dirtying event. Afterwards `dirty_` lists every component still needing
  /// a solve (kept and freshly formed, flags set).
  void rebuild_dirty_components() {
    if (dirty_.empty()) return;
    loose_.clear();
    kept_.clear();
    for (const int c : dirty_) {
      auto& comp = components_[static_cast<size_t>(c)];
      if (!comp.alive || !comp.dirty) continue;
      if (!comp.shrunk) {
        for (const size_t s : comp.members) advance(transfers_[s]);
        kept_.push_back(c);
        continue;
      }
      for (const size_t s : comp.members) {
        advance(transfers_[s]);
        transfers_[s].component = -1;
        loose_.push_back(s);
      }
      comp.members.clear();
      free_component(c);
    }
    dirty_.swap(kept_);  // kept components stay queued for the solve
    for (const size_t s : loose_) attach_transfer(s);
  }

  /// Event handlers call this after mutating the active set. Only kFull
  /// re-solves immediately (the reference behaviour). The incremental modes
  /// defer: dirty components accumulate until the next flush point — the
  /// top of the event loop, or just before a barrier cost advances the
  /// clock. The clock cannot move in between, so deferral is unobservable;
  /// what it buys is batching, e.g. a barrier release posting N transfers
  /// yields ONE flush with N disjoint dirty components, which is the fan-out
  /// SolveMode::kParallel feeds to the pool.
  void refresh_rates() {
    if (cfg_.refresh == RefreshMode::kFull) refresh_full();
  }

  /// Solve everything dirtied since the last flush. See refresh_rates().
  void flush_refresh() {
    switch (cfg_.refresh) {
      case RefreshMode::kFull:
        break;  // refresh_rates() already re-solved eagerly
      case RefreshMode::kIncremental:
        resolve_dirty();
        break;
      case RefreshMode::kCrossCheck:
        resolve_dirty();
        cross_check();
        check_queue_keys();
        break;
    }
  }

  /// Regroup the dirty components, then solve each one and commit the
  /// results. The two phases are explicit: the *compute* phase reads shared
  /// engine state (transfers, components, the provider) strictly const and
  /// writes only its own staging slot — under SolveMode::kParallel each
  /// component is an independent pool task; components are disjoint by
  /// closure, and providers are const-safe over disjoint subsets (see
  /// flowsim::RateProvider). The *commit* phase then writes rates back,
  /// re-keys the finish-time queue and clears dirty flags sequentially, in
  /// ascending component id, so the engine state after a flush is
  /// bit-identical to kSerial at any thread count.
  void resolve_dirty() {
    rebuild_dirty_components();
    solve_list_.clear();
    for (const int c : dirty_) {
      auto& comp = components_[static_cast<size_t>(c)];
      if (!comp.alive || !comp.dirty) continue;
      comp.dirty = false;
      if (comp.members.empty()) continue;
      // Members in posting (record) order: the restricted problem's flow
      // ordering then matches refresh_full()'s, keeping the two refresh
      // modes' arithmetic identical.
      std::sort(comp.members.begin(), comp.members.end(),
                [&](size_t a, size_t b) {
                  return transfers_[a].record < transfers_[b].record;
                });
      solve_list_.push_back(c);
    }
    dirty_.clear();
    if (solve_list_.empty()) return;
    std::sort(solve_list_.begin(), solve_list_.end());
    // Flat staging: one shared rate buffer with per-component offsets, sized
    // once per flush. Replaces a vector-of-vectors whose inner buffers were
    // reallocated whenever the component mix shifted.
    staged_off_.assign(1, 0);
    for (const int c : solve_list_)
      staged_off_.push_back(
          staged_off_.back() +
          components_[static_cast<size_t>(c)].members.size());
    if (staged_rates_.size() < staged_off_.back())
      staged_rates_.resize(staged_off_.back());
    const auto staged = [&](size_t i) {
      return std::span<double>(staged_rates_.data() + staged_off_[i],
                               staged_off_[i + 1] - staged_off_[i]);
    };

    const bool parallel =
        cfg_.solve == SolveMode::kParallel && solve_list_.size() > 1;
    if (parallel) {
      util::ThreadPool& pool = solve_pool();
      util::TaskGroup group(pool);
      // Chunked round-robin: enough tasks to balance uneven component
      // sizes, few enough to keep per-task overhead negligible.
      const size_t chunks =
          std::min(solve_list_.size(),
                   static_cast<size_t>(pool.num_threads()) * 4);
      for (size_t chunk = 0; chunk < chunks; ++chunk) {
        group.run([this, chunk, chunks, &staged] {
          for (size_t i = chunk; i < solve_list_.size(); i += chunks)
            compute_component_rates(solve_list_[i], staged(i));
        });
      }
      group.wait();  // rethrows the first provider failure, if any
    } else {
      for (size_t i = 0; i < solve_list_.size(); ++i)
        compute_component_rates(solve_list_[i], staged(i));
    }

    if (parallel && cfg_.refresh == RefreshMode::kCrossCheck) {
      // Parallel-solve oracle: every component the pool solved is re-solved
      // serially on this thread; any bit of divergence fails the replay.
      for (size_t i = 0; i < solve_list_.size(); ++i) {
        const std::span<const double> got = staged(i);
        oracle_rates_.resize(got.size());
        compute_component_rates(solve_list_[i], oracle_rates_);
        for (size_t k = 0; k < got.size(); ++k) {
          BWS_CHECK(got[k] == oracle_rates_[k],
                    strformat("parallel solve diverged from serial: "
                              "component %d member %zu rate %.17g vs %.17g "
                              "at t=%.9g",
                              solve_list_[i], k, got[k], oracle_rates_[k],
                              now()));
        }
      }
    }

    for (size_t i = 0; i < solve_list_.size(); ++i)
      commit_component(solve_list_[i], staged(i));
  }

  /// Compute phase of one component solve: build the induced communication
  /// graph of the component's members and hand it to the provider's
  /// component-restricted entry point. Reads shared state strictly const —
  /// safe to run concurrently with other components' compute phases.
  ///
  /// With EngineConfig::solve_memo set, the induced subproblem is first
  /// hashed — (salt, then per member: src node, dst node, remaining-bytes
  /// bit pattern), content only, never slots or labels — and looked up. A
  /// hit returns the memoized bits, which the RateProvider purity contract
  /// (flowsim/fluid_network.hpp) guarantees equal a fresh solve, so replays
  /// stay bit-identical whatever the memo contains; a verify-mode memo
  /// proves that on every hit by re-solving anyway. Misses solve fresh and
  /// stage the solution for cross-query publication (sim/solve_memo.hpp).
  void compute_component_rates(int c, std::span<double> out) const {
    const auto& comp = components_[static_cast<size_t>(c)];
    BWS_ASSERT(out.size() == comp.members.size(), "rate size mismatch");
    SolveScratch& scratch = solve_scratch();
    const auto solve_fresh = [&](std::span<double> rates) {
      // The induced graph and the provider's solver state are both reused
      // per-thread scratch: the CommGraph keeps its capacity across solves
      // (unlabeled adds — the memo key and the provider ignore labels) and
      // the arena serves the max-min problem construction. The engine always
      // hands the provider a whole closed component, so the full-graph entry
      // point applies; it is bit-identical to the subset overload, which
      // takes the covers_all shortcut to the very same code.
      graph::CommGraph& sub = scratch.sub;
      sub.clear();
      sub.reserve(static_cast<int>(comp.members.size()));
      for (const size_t s : comp.members) {
        const Transfer& tr = transfers_[s];
        sub.add(tr.src_node, tr.dst_node, tr.remaining);
      }
      provider_.rates_into(sub, util::Arena::thread_local_instance(), rates);
    };
    SolveMemo* const memo = cfg_.solve_memo;
    if (memo == nullptr) {
      solve_fresh(out);
      return;
    }
    util::StructuralHash h;
    h.mix_u64(memo->salt());
    for (const size_t s : comp.members) {
      const Transfer& tr = transfers_[s];
      h.mix_i64(tr.src_node);
      h.mix_i64(tr.dst_node);
      h.mix_f64(tr.remaining);
    }
    const uint64_t key = h.digest();
    bool from_frozen = false;
    std::vector<double>& hit = scratch.memo_rates;
    if (memo->lookup(key, hit, from_frozen)) {
      BWS_CHECK(hit.size() == comp.members.size(),
                "solve memo returned a rate vector of the wrong size "
                "(key collision or a mis-salted store)");
      if (memo->verify()) {
        std::vector<double>& fresh = scratch.memo_verify;
        fresh.resize(hit.size());
        solve_fresh(fresh);
        for (size_t k = 0; k < fresh.size(); ++k) {
          BWS_CHECK(hit[k] == fresh[k],
                    strformat("solve memo hit diverged from a fresh solve: "
                              "component %d member %zu rate %.17g vs %.17g "
                              "at t=%.9g",
                              c, k, hit[k], fresh[k], now()));
        }
      }
      std::copy(hit.begin(), hit.end(), out.begin());
      return;
    }
    solve_fresh(out);
    hit.assign(out.begin(), out.end());
    memo->stage(key, hit);
  }

  /// Commit phase: write one component's staged rates back into its
  /// transfers and re-key their finish-time queue entries. Sequential only.
  void commit_component(int c, std::span<const double> rates) {
    const auto& comp = components_[static_cast<size_t>(c)];
    for (size_t k = 0; k < comp.members.size(); ++k) {
      BWS_CHECK(rates[k] > 0.0, "provider returned a zero rate");
      Transfer& tr = transfers_[comp.members[k]];
      tr.rate = rates[k];
      tr.finish_pred = tr.advance_time + tr.remaining / tr.rate;
      if (cfg_.queue == QueueMode::kHeap)
        transfer_q_.update(tr.qh, tr.finish_pred);
    }
  }

  /// The pool parallel flushes run on: the injected one, else a lazily
  /// created private pool (solve_threads workers).
  util::ThreadPool& solve_pool() {
    if (cfg_.solve_pool != nullptr) return *cfg_.solve_pool;
    if (!owned_pool_)
      owned_pool_ = std::make_unique<util::ThreadPool>(cfg_.solve_threads);
    return *owned_pool_;
  }

  /// Alive transfer slots in posting (record) order — the deterministic
  /// ordering both refresh modes share.
  [[nodiscard]] std::vector<size_t> active_slots_by_record() const {
    std::vector<size_t> slots;
    slots.reserve(num_active_);
    for (size_t s = 0; s < transfers_.size(); ++s)
      if (transfers_[s].alive) slots.push_back(s);
    std::sort(slots.begin(), slots.end(), [&](size_t a, size_t b) {
      return transfers_[a].record < transfers_[b].record;
    });
    return slots;
  }

  [[nodiscard]] graph::CommGraph full_active_graph(
      const std::vector<size_t>& slots) const {
    graph::CommGraph active;
    for (const size_t s : slots) {
      const Transfer& tr = transfers_[s];
      active.add(tr.src_node, tr.dst_node, tr.remaining);
    }
    return active;
  }

  /// Reference behaviour: re-solve the whole active set on every event,
  /// trusting none of the incremental caching. Each alive component is
  /// solved as its own restricted problem — the identical arithmetic
  /// resolve_dirty() runs on a dirty component. Flows in different
  /// components share no links or coupling keys, so the partition cannot
  /// change the solution; and byte counts advance exactly where the
  /// incremental path advances them (rebuild_dirty_components, i.e. only
  /// when a component dissolves) so the drain integration steps at the
  /// same instants. Together that makes kFull bit-identical to
  /// kIncremental (the contract tests/sim/test_engine_churn.cpp asserts)
  /// instead of merely 1e-9-close. cross_check() keeps the single
  /// whole-set solve, so the 1e-9 oracle still compares genuinely
  /// different arithmetic.
  void refresh_full() {
    rebuild_dirty_components();
    for (const int c : dirty_) {
      auto& comp = components_[static_cast<size_t>(c)];
      if (comp.alive) comp.dirty = false;
    }
    dirty_.clear();
    if (num_active_ == 0) return;
    std::vector<double>& rates = oracle_rates_;  // reused serial scratch
    for (size_t c = 0; c < components_.size(); ++c) {
      auto& comp = components_[c];
      if (!comp.alive || comp.members.empty()) continue;
      std::sort(comp.members.begin(), comp.members.end(),
                [&](size_t a, size_t b) {
                  return transfers_[a].record < transfers_[b].record;
                });
      rates.resize(comp.members.size());
      compute_component_rates(static_cast<int>(c), rates);
      commit_component(static_cast<int>(c), rates);
    }
  }

  /// kCrossCheck: after the incremental refresh, re-solve the full set and
  /// fail loudly if any cached component rate drifts beyond 1e-9 relative.
  void cross_check() const {
    if (num_active_ == 0) return;
    const auto slots = active_slots_by_record();
    const auto rates = provider_.rates(full_active_graph(slots));
    BWS_ASSERT(rates.size() == slots.size(), "rate size mismatch");
    for (size_t k = 0; k < slots.size(); ++k) {
      const double full = rates[k];
      const double inc = transfers_[slots[k]].rate;
      BWS_CHECK(std::abs(full - inc) <=
                    1e-9 * std::max(std::abs(full), std::abs(inc)),
                strformat("incremental refresh diverged from full solve: "
                          "comm record %zu rate %.17g vs %.17g at t=%.9g",
                          transfers_[slots[k]].record, inc, full, now()));
    }
  }

  /// kCrossCheck under kHeap: every alive transfer's queue key must equal
  /// its cached finish prediction — a commit that re-keyed the wrong entry
  /// (or forgot one) surfaces here instead of as a silent mis-ordering.
  void check_queue_keys() const {
    if (cfg_.queue != QueueMode::kHeap) return;
    for (const auto& tr : transfers_) {
      if (!tr.alive) continue;
      BWS_CHECK(transfer_q_.time_of(tr.qh) == tr.finish_pred,
                strformat("finish-time queue key diverged from the cached "
                          "prediction: comm record %zu keyed %.17g vs "
                          "%.17g at t=%.9g",
                          tr.record, transfer_q_.time_of(tr.qh),
                          tr.finish_pred, now()));
    }
  }

  [[nodiscard]] double earliest_transfer_end() const {
    double best = kInf;
    for (const auto& tr : transfers_)
      if (tr.alive) best = std::min(best, tr.finish_pred);
    return std::max(best, now());
  }

  [[nodiscard]] double earliest_compute_end() const {
    double best = kInf;
    for (TaskId t = 0; t < trace_.num_tasks(); ++t)
      if (state_[static_cast<size_t>(t)] == TaskState::kComputing)
        best = std::min(best, ready_at_[static_cast<size_t>(t)]);
    // A wake-up can sit in the past when another job's barrier cost overshot
    // it (barriers are per-job but the cost advances the shared clock); the
    // task then wakes, late, at the current time.
    return std::max(best, now());
  }

  /// Legacy selection: linear argmin over every transfer slot. Drives
  /// QueueMode::kScan and the kCrossCheck order assertion under kHeap.
  [[nodiscard]] size_t scan_next_transfer() const {
    size_t done = transfers_.size();
    for (size_t s = 0; s < transfers_.size(); ++s) {
      const Transfer& tr = transfers_[s];
      if (!tr.alive) continue;
      if (done == transfers_.size() ||
          tr.finish_pred < transfers_[done].finish_pred ||
          (tr.finish_pred == transfers_[done].finish_pred &&
           tr.record < transfers_[done].record))
        done = s;
    }
    BWS_ASSERT(done < transfers_.size(), "no transfer completed");
    return done;
  }

  void complete_one_transfer() {
    // Finish the transfer with the earliest predicted completion; ties go to
    // the one posted first (lowest record — the tie key the finish-time heap
    // shares with the legacy scan, so both select identically). Only its own
    // component needs its bytes advanced.
    size_t done;
    if (cfg_.queue == QueueMode::kHeap) {
      BWS_ASSERT(!transfer_q_.empty(), "no transfer completed");
      done = transfer_q_.top();
      if (cfg_.refresh == RefreshMode::kCrossCheck) {
        const size_t scan = scan_next_transfer();
        BWS_CHECK(scan == done,
                  strformat("event queue diverged from scan on the completing "
                            "transfer: heap slot %zu (record %zu) vs scan "
                            "slot %zu (record %zu) at t=%.9g",
                            done, transfers_[done].record, scan,
                            transfers_[scan].record, now()));
      }
    } else {
      done = scan_next_transfer();
    }
    advance(transfers_[done]);
    BWS_ASSERT(
        transfers_[done].remaining <=
            1e-6 + 1e-9 * result_.comms[transfers_[done].record].bytes,
        "completing a transfer with significant bytes left");

    const Transfer tr = transfers_[done];
    detach_transfer(done);

    auto& rec = result_.comms[tr.record];
    const double latency = latency_for(rec);
    rec.finish = now() + latency;
    const double ref = reference_duration(rec);
    rec.penalty = ref > 0.0 ? (rec.finish - rec.start) / ref : 1.0;

    // A background flow blocks nobody: record it and re-solve the remnant.
    if (tr.background) {
      refresh_rates();
      return;
    }

    // Unblock the sender (rendezvous) at drain time.
    if (tr.rendezvous) {
      auto& stats = result_.tasks[static_cast<size_t>(tr.src)];
      rec.sender_time = now() - rec.send_post;
      stats.send_blocked_seconds += now() - blocked_since_[static_cast<size_t>(tr.src)];
      state_[static_cast<size_t>(tr.src)] = TaskState::kReady;
    } else {
      rec.sender_time = 0.0;
    }
    // Retire a tracked Isend; may release the sender's WaitAll.
    if (tr.src_tracked) retire_request(tr.src, /*latency=*/0.0);
    // Unblock the receiver one latency later; the delay is modelled as a
    // tiny compute burst so event ordering stays exact.
    if (tr.dst_nonblocking) {
      // Non-blocking receive: retire the request; release a pending WaitAll
      // when it was the last one.
      retire_request(tr.dst, latency);
    } else {
      auto& stats = result_.tasks[static_cast<size_t>(tr.dst)];
      stats.recv_blocked_seconds +=
          (now() + latency) - blocked_since_[static_cast<size_t>(tr.dst)];
      if (latency > 0.0) {
        begin_compute(tr.dst, now() + latency);
      } else {
        state_[static_cast<size_t>(tr.dst)] = TaskState::kReady;
      }
    }

    refresh_rates();
    if (state_[static_cast<size_t>(tr.src)] == TaskState::kReady)
      advance_task(tr.src);
    if (state_[static_cast<size_t>(tr.dst)] == TaskState::kReady)
      advance_task(tr.dst);
  }

  /// Retire one non-blocking request of `task`; if it was the last one and
  /// the task sits in WaitAll, release it (after `latency` for receives).
  void retire_request(TaskId task, double latency) {
    auto& outstanding = outstanding_requests_[static_cast<size_t>(task)];
    BWS_ASSERT(outstanding > 0, "request completion without a request");
    --outstanding;
    if (outstanding != 0 ||
        state_[static_cast<size_t>(task)] != TaskState::kWaitAll)
      return;
    auto& stats = result_.tasks[static_cast<size_t>(task)];
    stats.recv_blocked_seconds +=
        (now() + latency) - blocked_since_[static_cast<size_t>(task)];
    if (latency > 0.0) {
      begin_compute(task, now() + latency);
    } else {
      state_[static_cast<size_t>(task)] = TaskState::kReady;
    }
  }

  void wake_computers() {
    if (cfg_.queue == QueueMode::kHeap) {
      wake_computers_heap();
      return;
    }
    for (TaskId t = 0; t < trace_.num_tasks(); ++t) {
      if (state_[static_cast<size_t>(t)] == TaskState::kComputing &&
          ready_at_[static_cast<size_t>(t)] <= now() + 1e-15) {
        state_[static_cast<size_t>(t)] = TaskState::kReady;
        advance_task(t);
      }
    }
  }

  /// Heap-mode replica of the legacy ascending-id wake sweep above. The
  /// sweep wakes eligible computing tasks in increasing task id, re-checking
  /// eligibility after every wake — a wake can cascade into a barrier
  /// release that advances the clock past more deadlines, or start
  /// zero-length computes. Tasks that become eligible *behind* the sweep
  /// position are re-queued for the next main-loop turn, exactly like the
  /// scan (which never revisits lower indices mid-sweep).
  void wake_computers_heap() {
    // `eligible_` is a reused vector kept sorted by task id — it replaces a
    // std::set that node-allocated on every insert. Task ids are unique here
    // (one compute_q_ entry per computing task), so id order is total and
    // the in-place std::sort after each drain reproduces the set's iteration
    // order exactly; insert/erase churn is a memmove, never an allocation.
    const auto drain = [&] {
      bool grew = false;
      while (!compute_q_.empty() &&
             compute_q_.top_time() <= now() + 1e-15) {
        eligible_.push_back({compute_q_.top(), compute_q_.top_time()});
        compute_q_.pop();
        grew = true;
      }
      if (grew)
        std::sort(eligible_.begin(), eligible_.end(),
                  [](const Wake& a, const Wake& b) { return a.task < b.task; });
    };
    eligible_.clear();
    drain();
    TaskId last = -1;
    while (!eligible_.empty()) {
      const auto it = std::upper_bound(
          eligible_.begin(), eligible_.end(), last,
          [](TaskId id, const Wake& e) { return id < e.task; });
      if (it == eligible_.end()) break;
      const TaskId t = it->task;
      eligible_.erase(it);
      last = t;
      state_[static_cast<size_t>(t)] = TaskState::kReady;
      advance_task(t);
      drain();
    }
    // Entries behind the sweep position (or beyond a break) are re-queued,
    // ascending id, for the next main-loop turn — the heap's pop order is
    // key-determined, so the push order is immaterial.
    for (const auto& e : eligible_)
      compute_q_.push(e.when, static_cast<uint64_t>(e.task), e.task);
    eligible_.clear();
  }

  // --- helpers -------------------------------------------------------------

  [[nodiscard]] double latency_for(const CommRecord& rec) const {
    return rec.src_node == rec.dst_node ? 0.0 : cluster_.network().latency;
  }

  [[nodiscard]] double reference_duration(const CommRecord& rec) const {
    const auto& net = cluster_.network();
    if (rec.src_node == rec.dst_node)
      return rec.bytes / net.shm_bandwidth;
    return net.latency + rec.bytes / net.reference_bandwidth();
  }

  [[nodiscard]] std::string deadlock_message() const {
    std::string msg = "simulation deadlock: ";
    for (TaskId t = 0; t < trace_.num_tasks(); ++t) {
      const char* s = "?";
      switch (state_[static_cast<size_t>(t)]) {
        case TaskState::kReady: s = "ready"; break;
        case TaskState::kComputing: s = "computing"; break;
        case TaskState::kSendBlocked: s = "send"; break;
        case TaskState::kRecvBlocked: s = "recv"; break;
        case TaskState::kWaitAll: s = "waitall"; break;
        case TaskState::kBarrier: s = "barrier"; break;
        case TaskState::kDone: s = "done"; break;
      }
      msg += strformat("task%d=%s ", t, s);
    }
    return msg;
  }

  const AppTrace& trace_;
  const topo::ClusterSpec& cluster_;
  const Placement& placement_;
  const flowsim::RateProvider& provider_;
  EngineConfig cfg_;

  core::Clock clock_;  // the shared event-core time source
  uint64_t next_order_ = 0;
  int num_done_ = 0;

  std::vector<TaskState> state_;
  std::vector<size_t> pc_;
  std::vector<double> ready_at_;
  std::vector<double> blocked_since_;
  // Match queues, keyed by dst task. Vectors, not deques: a deque heap-
  // allocates its node map on construction (2N of them would dominate engine
  // setup) and churns nodes on push/pop; these queues hold a handful of
  // entries, so an in-place erase is a short memmove and the capacity sticks.
  std::vector<std::vector<PendingSend>> pending_sends_;
  std::vector<std::vector<PendingRecv>> pending_recvs_;
  std::vector<int> outstanding_requests_;

  // Dynamic-cluster state (sim/scenario.hpp). node_up_ gates background-flow
  // admission; job_of_/job_size_/job_barrier_arrivals_ scope barriers to
  // their job; script_ replays off its own (time, script index) queue.
  std::vector<bool> node_up_;
  std::vector<int> job_of_;
  std::vector<int> job_size_;
  std::vector<int> job_barrier_arrivals_;
  std::vector<ScriptEvent> script_;
  core::EventQueue<size_t> script_q_;
  std::vector<size_t> aborting_;  // fail_node victim snapshot

  // The event-core indices (QueueMode::kHeap): alive transfers keyed by
  // predicted finish time (tie: posting record), computing tasks keyed by
  // wake-up time (tie: task id).
  core::EventQueue<size_t> transfer_q_;
  core::EventQueue<TaskId> compute_q_;

  /// One drained compute_q_ entry awaiting its wake (wake_computers_heap).
  struct Wake {
    TaskId task;
    double when;
  };
  std::vector<Wake> eligible_;  // wake sweep scratch, sorted by task id

  std::vector<Transfer> transfers_;  // slot-addressed; see Transfer::alive
  std::vector<std::vector<int>> slot_keys_;  // coupling keys, slot-parallel
  std::vector<size_t> free_slots_;
  size_t num_active_ = 0;
  std::vector<Component> components_;
  std::vector<int> free_components_;
  std::vector<int> dirty_;                        // dirty component ids
  std::vector<size_t> loose_;                     // rebuild scratch
  std::vector<int> kept_;                         // rebuild scratch
  std::vector<int> solve_list_;                   // flush work list
  std::vector<double> staged_rates_;              // staged rates, flat
  std::vector<size_t> staged_off_;                // per-component offsets
  std::vector<double> oracle_rates_;              // serial re-solve scratch
  std::unique_ptr<util::ThreadPool> owned_pool_;  // lazy kParallel fallback
  // Component ownership as dense arrays: node_owner_ is sized to the cluster
  // up front; key_owner_ grows to the high-water coupling-key id. -1 = free.
  // Entries are erased (reset to -1) exactly once, at dissolve, so plain
  // sentinels suffice — no epoch stamps needed.
  std::vector<int> node_owner_;
  std::vector<int> key_owner_;
  SimResult result_;
};

}  // namespace

SimResult run_simulation(const AppTrace& trace,
                         const topo::ClusterSpec& cluster,
                         const Placement& placement,
                         const flowsim::RateProvider& provider,
                         const EngineConfig& config) {
  return run_simulation(trace, cluster, placement, provider, Scenario{},
                        config);
}

SimResult run_simulation(const AppTrace& trace,
                         const topo::ClusterSpec& cluster,
                         const Placement& placement,
                         const flowsim::RateProvider& provider,
                         const Scenario& scenario,
                         const EngineConfig& config) {
  BWS_CHECK(trace.num_tasks() >= 1, "trace needs at least one task");
  scenario.validate(trace.num_tasks(), cluster.num_nodes());
  Engine engine(trace, cluster, placement, provider, scenario, config);
  return engine.run();
}

}  // namespace bwshare::sim
