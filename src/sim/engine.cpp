#include "sim/engine.hpp"

#include <algorithm>
#include <deque>
#include <limits>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace bwshare::sim {

double SimResult::average_penalty() const {
  if (comms.empty()) return 1.0;
  double total = 0.0;
  for (const auto& c : comms) total += c.penalty;
  return total / static_cast<double>(comms.size());
}

double SimResult::task_comm_time(TaskId t) const {
  BWS_CHECK(t >= 0 && t < static_cast<TaskId>(tasks.size()),
            "task out of range");
  return tasks[static_cast<size_t>(t)].send_blocked_seconds;
}

namespace {

enum class TaskState { kReady, kComputing, kSendBlocked, kRecvBlocked,
                       kWaitAll, kBarrier, kDone };

struct PendingSend {
  TaskId src = 0;
  uint64_t order = 0;   // global posting order (any-source matching)
  double bytes = 0.0;
  double post_time = 0.0;
  bool rendezvous = false;
  bool tracked = false;  // posted via kIsend; completes a WaitAll request
  size_t record = 0;     // index into result.comms
};

struct PendingRecv {
  TaskId peer = kAnySource;
  uint64_t order = 0;
  double bytes = 0.0;
  double post_time = 0.0;
  bool nonblocking = false;  // posted via kIrecv
};

struct Transfer {
  size_t record = 0;
  TaskId src = 0;
  TaskId dst = 0;
  double remaining = 0.0;
  bool rendezvous = false;
  bool src_tracked = false;      // sender posted via kIsend
  bool dst_nonblocking = false;  // receiver posted via kIrecv
  double rate = 0.0;  // refreshed on every active-set change
};

class Engine {
 public:
  Engine(const AppTrace& trace, const topo::ClusterSpec& cluster,
         const Placement& placement, const flowsim::RateProvider& provider,
         const EngineConfig& config)
      : trace_(trace),
        cluster_(cluster),
        placement_(placement),
        provider_(provider),
        cfg_(config) {
    BWS_CHECK(placement_.num_tasks() == trace_.num_tasks(),
              "placement task count must match the trace");
    for (int t = 0; t < trace_.num_tasks(); ++t)
      BWS_CHECK(placement_.node_of(t) < cluster_.num_nodes(),
                "placement references a node outside the cluster");
    const int n = trace_.num_tasks();
    state_.assign(static_cast<size_t>(n), TaskState::kReady);
    pc_.assign(static_cast<size_t>(n), 0);
    ready_at_.assign(static_cast<size_t>(n), 0.0);
    blocked_since_.assign(static_cast<size_t>(n), 0.0);
    result_.tasks.assign(static_cast<size_t>(n), TaskStats{});
    pending_sends_.resize(static_cast<size_t>(n));
    pending_recvs_.resize(static_cast<size_t>(n));
    outstanding_requests_.assign(static_cast<size_t>(n), 0);
  }

  SimResult run() {
    // Drive every task as far as it can go, then hop to the next event.
    for (TaskId t = 0; t < trace_.num_tasks(); ++t) advance_task(t);
    while (true) {
      if (all_done()) break;
      const double next_compute = earliest_compute_end();
      const double next_transfer = earliest_transfer_end();
      const double next = std::min(next_compute, next_transfer);
      BWS_CHECK(next < std::numeric_limits<double>::infinity(),
                deadlock_message());
      BWS_CHECK(next <= cfg_.max_time, "simulation exceeded max_time");
      now_ = next;
      if (next_transfer <= next_compute) {
        complete_one_transfer();
      } else {
        wake_computers();
      }
    }
    result_.makespan = now_;
    for (TaskId t = 0; t < trace_.num_tasks(); ++t)
      result_.tasks[static_cast<size_t>(t)].finish_time =
          std::max(result_.tasks[static_cast<size_t>(t)].finish_time, 0.0);
    return std::move(result_);
  }

 private:
  // --- task stepping -------------------------------------------------------

  void advance_task(TaskId t) {
    auto& st = state_[static_cast<size_t>(t)];
    while (st == TaskState::kReady) {
      const auto& program = trace_.program(t);
      if (pc_[static_cast<size_t>(t)] >= program.size()) {
        st = TaskState::kDone;
        result_.tasks[static_cast<size_t>(t)].finish_time = now_;
        return;
      }
      const Event& e = program[pc_[static_cast<size_t>(t)]++];
      switch (e.kind) {
        case EventKind::kCompute:
          st = TaskState::kComputing;
          ready_at_[static_cast<size_t>(t)] = now_ + e.seconds;
          result_.tasks[static_cast<size_t>(t)].compute_seconds += e.seconds;
          return;
        case EventKind::kSend:
          post_send(t, e, /*nonblocking=*/false);
          return;  // state set inside (may stay kReady for eager)
        case EventKind::kIsend:
          post_send(t, e, /*nonblocking=*/true);
          // The send may have completed the task's program synchronously
          // (eager path advances); stop if the state moved on.
          if (st != TaskState::kReady) return;
          break;
        case EventKind::kRecv:
          post_recv(t, e, /*nonblocking=*/false);
          return;
        case EventKind::kIrecv:
          post_recv(t, e, /*nonblocking=*/true);
          break;  // task stays ready; loop continues
        case EventKind::kWaitAll:
          if (outstanding_requests_[static_cast<size_t>(t)] > 0) {
            st = TaskState::kWaitAll;
            blocked_since_[static_cast<size_t>(t)] = now_;
            return;
          }
          break;  // nothing outstanding: fall through to the next event
        case EventKind::kBarrier:
          arrive_barrier(t);
          return;
      }
    }
  }

  void post_send(TaskId t, const Event& e, bool nonblocking) {
    auto& stats = result_.tasks[static_cast<size_t>(t)];
    ++stats.sends;
    const bool rendezvous = !nonblocking && e.bytes >= cfg_.eager_threshold;

    CommRecord rec;
    rec.src_task = t;
    rec.dst_task = e.peer;
    rec.src_node = placement_.node_of(t);
    rec.dst_node = placement_.node_of(e.peer);
    rec.bytes = e.bytes;
    rec.send_post = now_;
    result_.comms.push_back(rec);
    const size_t record = result_.comms.size() - 1;

    PendingSend ps;
    ps.src = t;
    ps.order = next_order_++;
    ps.bytes = e.bytes;
    ps.post_time = now_;
    ps.rendezvous = rendezvous;
    ps.tracked = nonblocking;
    ps.record = record;

    if (rendezvous) {
      state_[static_cast<size_t>(t)] = TaskState::kSendBlocked;
      blocked_since_[static_cast<size_t>(t)] = now_;
    } else {
      state_[static_cast<size_t>(t)] = TaskState::kReady;
      if (nonblocking) ++outstanding_requests_[static_cast<size_t>(t)];
    }

    // Try to match an already-posted receive at the destination.
    auto& recvs = pending_recvs_[static_cast<size_t>(e.peer)];
    for (auto it = recvs.begin(); it != recvs.end(); ++it) {
      if (it->peer == kAnySource || it->peer == t) {
        result_.comms[record].recv_post = it->post_time;
        const bool dst_nonblocking = it->nonblocking;
        recvs.erase(it);
        start_transfer(ps, e.peer, dst_nonblocking);
        if (!rendezvous && !nonblocking) advance_task(t);
        return;
      }
    }
    pending_sends_[static_cast<size_t>(e.peer)].push_back(ps);
    if (!rendezvous && !nonblocking) advance_task(t);
  }

  void post_recv(TaskId t, const Event& e, bool nonblocking) {
    auto& stats = result_.tasks[static_cast<size_t>(t)];
    ++stats.recvs;
    if (nonblocking) {
      ++outstanding_requests_[static_cast<size_t>(t)];
    } else {
      state_[static_cast<size_t>(t)] = TaskState::kRecvBlocked;
      blocked_since_[static_cast<size_t>(t)] = now_;
    }

    // Match the earliest pending send addressed to us (by posting order).
    auto& sends = pending_sends_[static_cast<size_t>(t)];
    auto best = sends.end();
    for (auto it = sends.begin(); it != sends.end(); ++it) {
      if (e.peer != kAnySource && it->src != e.peer) continue;
      if (best == sends.end() || it->order < best->order) best = it;
    }
    if (best != sends.end()) {
      PendingSend ps = *best;
      sends.erase(best);
      result_.comms[ps.record].recv_post = now_;
      start_transfer(ps, t, nonblocking);
      return;
    }
    PendingRecv pr;
    pr.peer = e.peer;
    pr.order = next_order_++;
    pr.bytes = e.bytes;
    pr.post_time = now_;
    pr.nonblocking = nonblocking;
    pending_recvs_[static_cast<size_t>(t)].push_back(pr);
  }

  void arrive_barrier(TaskId t) {
    state_[static_cast<size_t>(t)] = TaskState::kBarrier;
    blocked_since_[static_cast<size_t>(t)] = now_;
    ++barrier_arrivals_;
    if (barrier_arrivals_ < trace_.num_tasks()) return;
    // Everyone arrived: release.
    drain_to_now();
    barrier_arrivals_ = 0;
    for (TaskId u = 0; u < trace_.num_tasks(); ++u) {
      if (state_[static_cast<size_t>(u)] != TaskState::kBarrier) continue;
      result_.tasks[static_cast<size_t>(u)].barrier_wait_seconds +=
          now_ - blocked_since_[static_cast<size_t>(u)];
      state_[static_cast<size_t>(u)] = TaskState::kReady;
    }
    now_ += cfg_.barrier_cost;
    drain_to_now();
    for (TaskId u = 0; u < trace_.num_tasks(); ++u)
      if (state_[static_cast<size_t>(u)] == TaskState::kReady) advance_task(u);
  }

  // --- transfers -----------------------------------------------------------

  /// Account the bytes every active transfer moved since the last drain.
  /// Must run before any rate refresh or change to the transfer set.
  void drain_to_now() {
    if (now_ > drain_time_) {
      for (auto& tr : transfers_)
        tr.remaining = std::max(0.0, tr.remaining - tr.rate * (now_ - drain_time_));
    }
    drain_time_ = now_;
  }

  void start_transfer(const PendingSend& ps, TaskId dst,
                      bool dst_nonblocking) {
    drain_to_now();
    Transfer tr;
    tr.record = ps.record;
    tr.src = ps.src;
    tr.dst = dst;
    tr.remaining = std::max(ps.bytes, 1.0);  // 0-length still costs latency
    tr.rendezvous = ps.rendezvous;
    tr.src_tracked = ps.tracked;
    tr.dst_nonblocking = dst_nonblocking;
    result_.comms[ps.record].start = now_;
    transfers_.push_back(tr);
    refresh_rates();
  }

  void refresh_rates() {
    if (transfers_.empty()) return;
    graph::CommGraph active;
    for (size_t k = 0; k < transfers_.size(); ++k) {
      const auto& tr = transfers_[k];
      active.add(strformat("t%zu", k), placement_.node_of(tr.src),
                 placement_.node_of(tr.dst), tr.remaining);
    }
    const auto rates = provider_.rates(active);
    BWS_ASSERT(rates.size() == transfers_.size(), "rate size mismatch");
    for (size_t k = 0; k < transfers_.size(); ++k) {
      BWS_CHECK(rates[k] > 0.0, "provider returned a zero rate");
      transfers_[k].rate = rates[k];
    }
  }

  [[nodiscard]] double earliest_transfer_end() const {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& tr : transfers_)
      best = std::min(best, drain_time_ + tr.remaining / tr.rate);
    return std::max(best, now_);
  }

  [[nodiscard]] double earliest_compute_end() const {
    double best = std::numeric_limits<double>::infinity();
    for (TaskId t = 0; t < trace_.num_tasks(); ++t)
      if (state_[static_cast<size_t>(t)] == TaskState::kComputing)
        best = std::min(best, ready_at_[static_cast<size_t>(t)]);
    return best;
  }

  void complete_one_transfer() {
    // Drain all transfers to `now_`, then finish the one closest to zero.
    // Rounding error accumulates over many partial drains of large
    // transfers, so completion is judged by remaining *time* with a
    // tolerance relative to the message size.
    drain_to_now();
    size_t done = transfers_.size();
    double best_time = std::numeric_limits<double>::infinity();
    for (size_t k = 0; k < transfers_.size(); ++k) {
      const double t_left = transfers_[k].remaining / transfers_[k].rate;
      if (t_left < best_time) {
        best_time = t_left;
        done = k;
      }
    }
    BWS_ASSERT(done < transfers_.size(), "no transfer completed");
    BWS_ASSERT(
        transfers_[done].remaining <=
            1e-6 + 1e-9 * result_.comms[transfers_[done].record].bytes,
        "completing a transfer with significant bytes left");

    const Transfer tr = transfers_[static_cast<size_t>(done)];
    transfers_.erase(transfers_.begin() + static_cast<long>(done));

    auto& rec = result_.comms[tr.record];
    const double latency = latency_for(rec);
    rec.finish = now_ + latency;
    const double ref = reference_duration(rec);
    rec.penalty = ref > 0.0 ? (rec.finish - rec.start) / ref : 1.0;

    // Unblock the sender (rendezvous) at drain time.
    if (tr.rendezvous) {
      auto& stats = result_.tasks[static_cast<size_t>(tr.src)];
      rec.sender_time = now_ - rec.send_post;
      stats.send_blocked_seconds += now_ - blocked_since_[static_cast<size_t>(tr.src)];
      state_[static_cast<size_t>(tr.src)] = TaskState::kReady;
    } else {
      rec.sender_time = 0.0;
    }
    // Retire a tracked Isend; may release the sender's WaitAll.
    if (tr.src_tracked) retire_request(tr.src, /*latency=*/0.0);
    // Unblock the receiver one latency later; the delay is modelled as a
    // tiny compute burst so event ordering stays exact.
    if (tr.dst_nonblocking) {
      // Non-blocking receive: retire the request; release a pending WaitAll
      // when it was the last one.
      retire_request(tr.dst, latency);
    } else {
      auto& stats = result_.tasks[static_cast<size_t>(tr.dst)];
      stats.recv_blocked_seconds +=
          (now_ + latency) - blocked_since_[static_cast<size_t>(tr.dst)];
      if (latency > 0.0) {
        state_[static_cast<size_t>(tr.dst)] = TaskState::kComputing;
        ready_at_[static_cast<size_t>(tr.dst)] = now_ + latency;
      } else {
        state_[static_cast<size_t>(tr.dst)] = TaskState::kReady;
      }
    }

    refresh_rates();
    if (state_[static_cast<size_t>(tr.src)] == TaskState::kReady)
      advance_task(tr.src);
    if (state_[static_cast<size_t>(tr.dst)] == TaskState::kReady)
      advance_task(tr.dst);
  }

  /// Retire one non-blocking request of `task`; if it was the last one and
  /// the task sits in WaitAll, release it (after `latency` for receives).
  void retire_request(TaskId task, double latency) {
    auto& outstanding = outstanding_requests_[static_cast<size_t>(task)];
    BWS_ASSERT(outstanding > 0, "request completion without a request");
    --outstanding;
    if (outstanding != 0 ||
        state_[static_cast<size_t>(task)] != TaskState::kWaitAll)
      return;
    auto& stats = result_.tasks[static_cast<size_t>(task)];
    stats.recv_blocked_seconds +=
        (now_ + latency) - blocked_since_[static_cast<size_t>(task)];
    if (latency > 0.0) {
      state_[static_cast<size_t>(task)] = TaskState::kComputing;
      ready_at_[static_cast<size_t>(task)] = now_ + latency;
    } else {
      state_[static_cast<size_t>(task)] = TaskState::kReady;
    }
  }

  void wake_computers() {
    for (TaskId t = 0; t < trace_.num_tasks(); ++t) {
      if (state_[static_cast<size_t>(t)] == TaskState::kComputing &&
          ready_at_[static_cast<size_t>(t)] <= now_ + 1e-15) {
        state_[static_cast<size_t>(t)] = TaskState::kReady;
        advance_task(t);
      }
    }
  }

  // --- helpers -------------------------------------------------------------

  [[nodiscard]] double latency_for(const CommRecord& rec) const {
    return rec.src_node == rec.dst_node ? 0.0 : cluster_.network().latency;
  }

  [[nodiscard]] double reference_duration(const CommRecord& rec) const {
    const auto& net = cluster_.network();
    if (rec.src_node == rec.dst_node)
      return rec.bytes / net.shm_bandwidth;
    return net.latency + rec.bytes / net.reference_bandwidth();
  }

  [[nodiscard]] bool all_done() const {
    for (TaskId t = 0; t < trace_.num_tasks(); ++t)
      if (state_[static_cast<size_t>(t)] != TaskState::kDone) return false;
    return true;
  }

  [[nodiscard]] std::string deadlock_message() const {
    std::string msg = "simulation deadlock: ";
    for (TaskId t = 0; t < trace_.num_tasks(); ++t) {
      const char* s = "?";
      switch (state_[static_cast<size_t>(t)]) {
        case TaskState::kReady: s = "ready"; break;
        case TaskState::kComputing: s = "computing"; break;
        case TaskState::kSendBlocked: s = "send"; break;
        case TaskState::kRecvBlocked: s = "recv"; break;
        case TaskState::kWaitAll: s = "waitall"; break;
        case TaskState::kBarrier: s = "barrier"; break;
        case TaskState::kDone: s = "done"; break;
      }
      msg += strformat("task%d=%s ", t, s);
    }
    return msg;
  }

  const AppTrace& trace_;
  const topo::ClusterSpec& cluster_;
  const Placement& placement_;
  const flowsim::RateProvider& provider_;
  EngineConfig cfg_;

  double now_ = 0.0;
  double drain_time_ = 0.0;
  uint64_t next_order_ = 0;
  int barrier_arrivals_ = 0;

  std::vector<TaskState> state_;
  std::vector<size_t> pc_;
  std::vector<double> ready_at_;
  std::vector<double> blocked_since_;
  std::vector<std::deque<PendingSend>> pending_sends_;  // keyed by dst
  std::vector<std::deque<PendingRecv>> pending_recvs_;  // keyed by dst
  std::vector<int> outstanding_requests_;
  std::vector<Transfer> transfers_;
  SimResult result_;
};

}  // namespace

SimResult run_simulation(const AppTrace& trace,
                         const topo::ClusterSpec& cluster,
                         const Placement& placement,
                         const flowsim::RateProvider& provider,
                         const EngineConfig& config) {
  BWS_CHECK(trace.num_tasks() >= 1, "trace needs at least one task");
  Engine engine(trace, cluster, placement, provider, config);
  return engine.run();
}

}  // namespace bwshare::sim
