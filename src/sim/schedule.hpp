// Task placement (paper §VI-A/§VI-D): "Scheduling of tasks on nodes. It can
// be user defined or using Round-Robin scheduling." The HPL evaluation uses
// three policies:
//   RRN    — Round-Robin per Node: tasks assigned cyclically across nodes;
//   RRP    — Round-Robin per Processor: fill each node's cores first;
//   Random — random assignment.
#pragma once

#include <string>
#include <vector>

#include "topo/cluster.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace bwshare::sim {

enum class SchedulingPolicy { kRoundRobinNode, kRoundRobinProcessor, kRandom };

[[nodiscard]] std::string to_string(SchedulingPolicy policy);
[[nodiscard]] SchedulingPolicy scheduling_policy_from_string(
    const std::string& name);

/// task id -> node id.
class Placement {
 public:
  Placement() = default;
  explicit Placement(std::vector<topo::NodeId> node_of_task);

  [[nodiscard]] int num_tasks() const {
    return static_cast<int>(node_of_task_.size());
  }
  // Inline: consulted on every send posting.
  [[nodiscard]] topo::NodeId node_of(int task) const {
    BWS_CHECK(task >= 0 && task < num_tasks(),
              strformat("task %d out of range [0,%d)", task, num_tasks()));
    return node_of_task_[static_cast<size_t>(task)];
  }
  [[nodiscard]] const std::vector<topo::NodeId>& nodes() const {
    return node_of_task_;
  }

  /// Tasks placed on the same node communicate through shared memory.
  [[nodiscard]] bool colocated(int a, int b) const {
    return node_of(a) == node_of(b);
  }

 private:
  std::vector<topo::NodeId> node_of_task_;
};

/// Build a placement of `num_tasks` tasks on `cluster` under `policy`.
/// `seed` is used by the random policy only. Throws if the cluster lacks
/// cores for the task count.
[[nodiscard]] Placement make_placement(SchedulingPolicy policy,
                                       const topo::ClusterSpec& cluster,
                                       int num_tasks, uint64_t seed = 42);

}  // namespace bwshare::sim
