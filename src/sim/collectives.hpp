// Collective-communication trace builders.
//
// The paper's HPL workload uses one specific collective implementation — a
// ring broadcast (task n -> n+1). This module generalizes that: it emits
// event traces for the classic algorithms so the simulator can compare how
// each interacts with bandwidth sharing (see bench/ext_collectives).
//
// All builders append to an existing AppTrace so collectives can be mixed
// with application phases.
#pragma once

#include "sim/events.hpp"

namespace bwshare::sim {

/// Ring broadcast from `root`: root -> root+1 -> ... -> root-1.
/// (The HPL §VI-D pattern.) p-1 sequential messages of `bytes`.
void append_ring_broadcast(AppTrace& trace, TaskId root, double bytes);

/// Binomial-tree broadcast from `root`: ceil(log2 p) rounds; round r has
/// 2^r concurrent messages — the classic latency-optimal tree whose
/// concurrent sends *do* conflict on SMP nodes.
void append_binomial_broadcast(AppTrace& trace, TaskId root, double bytes);

/// Scatter from `root`: root sends a distinct `bytes` block to every other
/// task, back to back — a pure outgoing conflict C<-X-> of degree p-1.
void append_scatter(AppTrace& trace, TaskId root, double bytes);

/// Gather to `root`: every task sends `bytes` to root (any-source receives)
/// — a pure income conflict C->X<- of degree p-1.
void append_gather(AppTrace& trace, TaskId root, double bytes);

/// Ring allreduce on `bytes` of payload: reduce-scatter + allgather,
/// 2(p-1) rounds of bytes/p messages, all ring neighbours concurrently.
void append_ring_allreduce(AppTrace& trace, double bytes);

/// Naive all-to-all: every task sends `bytes` to every other task,
/// scheduled round-robin (round r: task i sends to i+r) to avoid trivial
/// serialization. The densest conflict pattern of all.
void append_all_to_all(AppTrace& trace, double bytes);

}  // namespace bwshare::sim
