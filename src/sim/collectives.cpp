#include "sim/collectives.hpp"

#include "util/error.hpp"

namespace bwshare::sim {

namespace {
int ranks_of(const AppTrace& trace) {
  const int p = trace.num_tasks();
  BWS_CHECK(p >= 2, "collectives need at least two tasks");
  return p;
}
}  // namespace

void append_ring_broadcast(AppTrace& trace, TaskId root, double bytes) {
  const int p = ranks_of(trace);
  BWS_CHECK(root >= 0 && root < p, "root out of range");
  trace.push(root, Event::send((root + 1) % p, bytes));
  for (int hop = 1; hop < p; ++hop) {
    const TaskId task = (root + hop) % p;
    trace.push(task, Event::recv((root + hop - 1) % p, bytes));
    if (hop != p - 1) trace.push(task, Event::send((task + 1) % p, bytes));
  }
}

void append_binomial_broadcast(AppTrace& trace, TaskId root, double bytes) {
  const int p = ranks_of(trace);
  BWS_CHECK(root >= 0 && root < p, "root out of range");
  // Relative rank v receives from v - msb(v) and then sends to v + 2^r for
  // every r with msb(v) < 2^r and v + 2^r < p. Emitting events per task in
  // round order keeps each program consistent.
  for (int v = 0; v < p; ++v) {
    const TaskId task = (root + v) % p;
    int first_round = 0;
    if (v != 0) {
      int msb = 1;
      while (msb * 2 <= v) msb *= 2;
      trace.push(task, Event::recv((root + (v - msb)) % p, bytes));
      first_round = 1;
      while ((1 << (first_round - 1)) < msb) ++first_round;
    }
    for (int r = first_round; (1 << r) < p; ++r) {
      const int peer = v + (1 << r);
      if (peer < p) trace.push(task, Event::send((root + peer) % p, bytes));
    }
  }
}

void append_scatter(AppTrace& trace, TaskId root, double bytes) {
  const int p = ranks_of(trace);
  BWS_CHECK(root >= 0 && root < p, "root out of range");
  // Non-blocking sends so all p-1 messages leave concurrently: the paper's
  // outgoing conflict C<-X-> of degree p-1.
  for (int t = 0; t < p; ++t) {
    if (t == root) continue;
    trace.push(root, Event::isend(t, bytes));
    trace.push(t, Event::recv(root, bytes));
  }
  trace.push(root, Event::wait_all());
}

void append_gather(AppTrace& trace, TaskId root, double bytes) {
  const int p = ranks_of(trace);
  BWS_CHECK(root >= 0 && root < p, "root out of range");
  // Root posts every receive up front (as MPI_Gather implementations do),
  // so the p-1 senders stream concurrently: the income conflict C->X<- of
  // degree p-1.
  for (int t = 0; t < p; ++t) {
    if (t == root) continue;
    trace.push(root, Event::irecv(t, bytes));
    trace.push(t, Event::send(root, bytes));
  }
  trace.push(root, Event::wait_all());
}

void append_ring_allreduce(AppTrace& trace, double bytes) {
  const int p = ranks_of(trace);
  const double chunk = bytes / p;
  // Reduce-scatter then allgather: 2(p-1) rounds; every round, all ring
  // links are busy at once (irecv first so the cycle cannot deadlock).
  for (int round = 0; round < 2 * (p - 1); ++round) {
    for (int t = 0; t < p; ++t) {
      trace.push(t, Event::irecv((t + p - 1) % p, chunk));
      trace.push(t, Event::isend((t + 1) % p, chunk));
      trace.push(t, Event::wait_all());
    }
  }
}

void append_all_to_all(AppTrace& trace, double bytes) {
  const int p = ranks_of(trace);
  // Round r: task i exchanges with i+r and i-r. Non-blocking pairs per
  // round, so each round saturates every host in both directions.
  for (int r = 1; r < p; ++r) {
    for (int t = 0; t < p; ++t) {
      trace.push(t, Event::irecv((t + p - r) % p, bytes));
      trace.push(t, Event::isend((t + r) % p, bytes));
      trace.push(t, Event::wait_all());
    }
  }
}

}  // namespace bwshare::sim
