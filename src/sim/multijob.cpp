#include "sim/multijob.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace bwshare::sim {

namespace {

/// Shift one job's program onto the global task-id range. kAnySource stays
/// kAnySource: the receive still only matches sends addressed to this task,
/// and no other job ever addresses it.
Event offset_event(Event e, TaskId offset) {
  switch (e.kind) {
    case EventKind::kSend:
    case EventKind::kIsend:
    case EventKind::kRecv:
    case EventKind::kIrecv:
      if (e.peer != kAnySource) e.peer += offset;
      break;
    case EventKind::kCompute:
    case EventKind::kWaitAll:
    case EventKind::kBarrier:
      break;
  }
  return e;
}

}  // namespace

MultiJobResult run_multi_job(const std::vector<JobSpec>& jobs,
                             const topo::ClusterSpec& cluster,
                             const flowsim::RateProvider& provider,
                             const Scenario& scenario,
                             const EngineConfig& config) {
  BWS_CHECK(!jobs.empty(), "multi-job: need at least one job");
  BWS_CHECK(scenario.job_of.empty(),
            "multi-job: the scenario's job_of is derived from the job list; "
            "leave it empty");

  int total_tasks = 0;
  for (const auto& job : jobs) {
    BWS_CHECK(job.trace.num_tasks() >= 1,
              "multi-job: job '" + job.name + "' has no tasks");
    // Each job must be a well-formed application on its own; the merged
    // trace is deliberately NOT validated globally (jobs have independent
    // barrier counts).
    job.trace.validate();
    BWS_CHECK(job.placement.num_tasks() == job.trace.num_tasks(),
              "multi-job: job '" + job.name +
                  "' placement does not cover its tasks");
    total_tasks += job.trace.num_tasks();
  }

  AppTrace merged(total_tasks);
  std::vector<topo::NodeId> merged_nodes;
  merged_nodes.reserve(static_cast<size_t>(total_tasks));
  std::vector<int> job_of;
  job_of.reserve(static_cast<size_t>(total_tasks));
  TaskId offset = 0;
  for (size_t j = 0; j < jobs.size(); ++j) {
    const auto& job = jobs[j];
    for (TaskId t = 0; t < job.trace.num_tasks(); ++t) {
      for (const Event& e : job.trace.program(t))
        merged.push(offset + t, offset_event(e, offset));
      merged_nodes.push_back(job.placement.node_of(t));
      job_of.push_back(static_cast<int>(j));
    }
    offset += job.trace.num_tasks();
  }

  Scenario shared = scenario;
  shared.job_of = job_of;

  MultiJobResult out;
  out.job_of = job_of;
  out.combined = run_simulation(merged, cluster, Placement(merged_nodes),
                                provider, shared, config);

  offset = 0;
  for (const auto& job : jobs) {
    JobOutcome jo;
    jo.name = job.name;
    jo.num_tasks = job.trace.num_tasks();
    // Alone baseline: same cluster, same churn/background scripts — the
    // delta to the shared replay is purely the co-scheduled jobs.
    const SimResult alone = run_simulation(job.trace, cluster, job.placement,
                                           provider, scenario, config);
    jo.makespan_alone = alone.makespan;
    for (TaskId t = 0; t < job.trace.num_tasks(); ++t)
      jo.makespan_shared = std::max(
          jo.makespan_shared,
          out.combined.tasks[static_cast<size_t>(offset + t)].finish_time);
    jo.interference_pct =
        jo.makespan_alone > 0.0
            ? (jo.makespan_shared / jo.makespan_alone - 1.0) * 100.0
            : 0.0;
    out.jobs.push_back(std::move(jo));
    offset += job.trace.num_tasks();
  }
  return out;
}

}  // namespace bwshare::sim
