// Text serialization of application traces (our MPE-substitute; the paper
// instrumented MPICH's MPE library to extract HPL's events, §VI-D).
//
// Format: one statement per line, '#' comments:
//   tasks 4
//   0 compute 0.52
//   0 send 1 4000000
//   1 recv 0 4000000
//   1 recv any 4000000
//   * barrier            # every task
#pragma once

#include <string>
#include <string_view>

#include "sim/events.hpp"

namespace bwshare::sim {

[[nodiscard]] std::string write_trace(const AppTrace& trace);
[[nodiscard]] AppTrace read_trace(std::string_view text);

void write_trace_file(const AppTrace& trace, const std::string& path);
[[nodiscard]] AppTrace read_trace_file(const std::string& path);

}  // namespace bwshare::sim
