// Human-readable summaries of simulation results — the §VI-A simulator's
// outputs: per-task durations, total time, conflict kinds, average penalty
// and communication sizes.
#pragma once

#include <string>

#include "sim/engine.hpp"
#include "sim/multijob.hpp"

namespace bwshare::sim {

/// Per-task table: finish, compute, send-blocked, recv-blocked, barrier.
[[nodiscard]] std::string render_task_table(const SimResult& result);

/// Per-communication table: endpoints, size, start/finish, penalty.
/// Lists at most `max_rows` rows (0 = all).
[[nodiscard]] std::string render_comm_table(const SimResult& result,
                                            size_t max_rows = 0);

/// One-paragraph summary (makespan, average penalty, bytes moved; aborted /
/// background counts appear only when the scenario produced any).
[[nodiscard]] std::string render_summary(const SimResult& result);

/// Per-job co-scheduling table: tasks, alone/shared makespan, interference.
[[nodiscard]] std::string render_multi_job_table(const MultiJobResult& result);

}  // namespace bwshare::sim
