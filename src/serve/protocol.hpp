// The JSON-lines wire protocol in front of serve::QueryService — the
// `bwshare_cli serve` daemon (docs/SERVING.md has the full grammar).
//
// One request per line, each a *flat* JSON object (string / number / bool /
// null values only — no nesting; this is a protocol, not a JSON library).
// A blank line flushes the accumulated batch through
// QueryService::query_batch and emits one response line per request, in
// request order. `{"op":"stats"}` flushes, then emits a counters line.
// EOF flushes. Malformed lines flush, then produce an ok=false line —
// ordering is preserved even for garbage.
//
// Responses are rendered with locale-independent fixed-point formatting
// (util::format_fixed), so the emitted byte stream for a given request
// stream is identical at any service thread count — the CI smoke `cmp`s
// a 1-thread run against a 4-thread run.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "serve/service.hpp"

namespace bwshare::serve {

/// A value in a flat request object.
struct JsonValue {
  enum class Kind { kString, kNumber, kBool, kNull };
  Kind kind = Kind::kNull;
  std::string str;     // kString: unescaped text; kNumber: raw spelling
  double num = 0.0;    // kNumber only
  bool boolean = false;  // kBool only
};

/// Key/value pairs in source order (duplicates are rejected at parse time).
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;

/// Parse one request line: a single flat JSON object, nothing before or
/// after it. Throws bwshare::Error on malformed input, nested values or
/// duplicate keys.
[[nodiscard]] JsonObject parse_flat_json_object(std::string_view line);

/// Map a parsed object onto a Query. Unknown keys and wrongly typed values
/// throw bwshare::Error — a misspelled axis must not silently become a
/// default. (`op` is accepted and must be "query".)
[[nodiscard]] Query query_from_json(const JsonObject& obj);

/// One response line (no trailing newline).
[[nodiscard]] std::string response_to_json(const Response& r);

/// One stats line (no trailing newline).
[[nodiscard]] std::string stats_to_json(const ServiceStats& s);

/// The daemon loop: read request lines from `in`, serve them, write
/// response lines to `out`. Returns the number of ok=false response lines
/// emitted (0 = a fully clean run).
size_t run_serve_loop(std::istream& in, std::ostream& out,
                      const ServiceConfig& config);

}  // namespace bwshare::serve
