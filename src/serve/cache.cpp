#include "serve/cache.hpp"

#include <utility>

namespace bwshare::serve {

std::shared_ptr<const QueryResult> ResultCache::lookup(uint64_t fp) {
  const auto it = map_.find(fp);
  if (it == map_.end()) return nullptr;
  mru_.splice(mru_.begin(), mru_, it->second.first);
  return it->second.second;
}

void ResultCache::insert(uint64_t fp,
                         std::shared_ptr<const QueryResult> result) {
  if (capacity_ == 0) return;
  const auto it = map_.find(fp);
  if (it != map_.end()) {
    mru_.splice(mru_.begin(), mru_, it->second.first);
    it->second.second = std::move(result);
    return;
  }
  mru_.push_front(fp);
  map_.emplace(fp, std::make_pair(mru_.begin(), std::move(result)));
  while (map_.size() > capacity_) {
    map_.erase(mru_.back());
    mru_.pop_back();
    ++evictions_;
  }
}

std::vector<uint64_t> ResultCache::keys_mru_first() const {
  return {mru_.begin(), mru_.end()};
}

bool WarmStore::lookup(uint64_t key, std::vector<double>& rates) const {
  const auto it = map_.find(key);
  if (it == map_.end()) return false;
  rates = it->second.second;
  return true;
}

void WarmStore::commit(
    const std::map<uint64_t, std::vector<double>>& staged) {
  if (capacity_ == 0) return;
  for (const auto& [key, rates] : staged) {
    const auto it = map_.find(key);
    if (it != map_.end()) {
      // Same key => same bits (the solve-memo purity contract); only the
      // commit recency needs refreshing.
      commit_order_.splice(commit_order_.begin(), commit_order_,
                           it->second.first);
      continue;
    }
    commit_order_.push_front(key);
    map_.emplace(key, std::make_pair(commit_order_.begin(), rates));
  }
  while (map_.size() > capacity_) {
    map_.erase(commit_order_.back());
    commit_order_.pop_back();
    ++evictions_;
  }
}

}  // namespace bwshare::serve
