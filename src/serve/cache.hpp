// The serving layer's two memo tiers (docs/SERVING.md):
//
//   * ResultCache — whole completed replays, fingerprint -> QueryResult,
//     bounded true-LRU. A hit returns the memoized result object itself
//     (shared_ptr identity, no copy), which is bit-identical to a fresh
//     replay by the determinism contract the conformance suite enforces.
//   * WarmStore — component-level rate solutions published by completed
//     replays, the frozen sim::SolveStore behind cross-query warm-start.
//     Bounded LRU *by commit*: recency moves only when a replay publishes,
//     never on lookup, so concurrent lookups during a batch are plain const
//     reads and response bytes cannot depend on pool scheduling.
//
// Neither container locks: QueryService touches them only from its
// sequential planning/commit phases (service.cpp); during the parallel
// execution phase the WarmStore is frozen and only read through the
// const lookup().
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "eval/sweep.hpp"
#include "sim/engine.hpp"
#include "sim/schedule.hpp"
#include "sim/solve_memo.hpp"

namespace bwshare::serve {

/// One executed query, as cached and as returned: the sweep-style summary
/// row plus the full replay evidence behind it.
struct QueryResult {
  eval::SweepCell cell;  // summary numbers; ok=false + error on failure
  sim::Placement placement;
  std::shared_ptr<const sim::SimResult> measured;
  std::shared_ptr<const sim::SimResult> predicted;
  uint64_t fingerprint = 0;
  /// serve::hash_sim_result over measured then predicted, combined — the
  /// one-number replay identity the response line carries.
  uint64_t result_hash = 0;
};

/// Bounded LRU of completed replays, keyed by query fingerprint.
/// Capacity 0 = serve-through: nothing is ever stored, every lookup misses.
class ResultCache {
 public:
  explicit ResultCache(size_t capacity) : capacity_(capacity) {}

  /// Null on miss; a hit returns the stored object and marks it
  /// most-recently-used.
  [[nodiscard]] std::shared_ptr<const QueryResult> lookup(uint64_t fp);

  /// Insert (or refresh) and mark most-recently-used, evicting the
  /// least-recently-used entry when over capacity.
  void insert(uint64_t fp, std::shared_ptr<const QueryResult> result);

  [[nodiscard]] size_t size() const { return map_.size(); }
  [[nodiscard]] size_t capacity() const { return capacity_; }
  [[nodiscard]] size_t evictions() const { return evictions_; }
  /// Fingerprints, most-recently-used first — the eviction-order pins in
  /// tests/serve/test_fingerprint.cpp read this.
  [[nodiscard]] std::vector<uint64_t> keys_mru_first() const;

 private:
  size_t capacity_;
  // front = most recently used
  std::list<uint64_t> mru_;
  std::unordered_map<
      uint64_t, std::pair<std::list<uint64_t>::iterator,
                          std::shared_ptr<const QueryResult>>>
      map_;
  size_t evictions_ = 0;
};

/// Bounded store of component rate solutions, the frozen tier every
/// replay's sim::SolveMemo reads. Capacity 0 disables warm-start.
class WarmStore final : public sim::SolveStore {
 public:
  explicit WarmStore(size_t capacity) : capacity_(capacity) {}

  /// Const read, safe to call concurrently from executing replays; never
  /// reorders or evicts (see header comment).
  bool lookup(uint64_t key, std::vector<double>& rates) const override;

  /// Publish one replay's staged solutions (sim::SolveMemo::staged(), which
  /// iterates in key order — deterministic). Existing keys refresh their
  /// commit recency; overflow evicts the least-recently-committed entries.
  void commit(const std::map<uint64_t, std::vector<double>>& staged);

  [[nodiscard]] size_t size() const { return map_.size(); }
  [[nodiscard]] size_t capacity() const { return capacity_; }
  [[nodiscard]] size_t evictions() const { return evictions_; }

 private:
  size_t capacity_;
  // front = most recently committed
  std::list<uint64_t> commit_order_;
  std::unordered_map<uint64_t,
                     std::pair<std::list<uint64_t>::iterator,
                               std::vector<double>>>
      map_;
  size_t evictions_ = 0;
};

}  // namespace bwshare::serve
