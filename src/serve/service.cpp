#include "serve/service.hpp"

#include <cmath>
#include <map>
#include <utility>

#include "eval/sweep.hpp"
#include "sim/solve_memo.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/strings.hpp"
#include "util/threadpool.hpp"

namespace bwshare::serve {

namespace {

/// Solve-memo salts separate the two replay sides (and the model on the
/// predicted side) so a measured component solution can never answer a
/// predicted lookup even when the induced subproblems coincide.
uint64_t memo_salt(const char* side, topo::NetworkTech tech,
                   const std::string& model) {
  util::StructuralHash h;
  h.mix_str("bwshare.serve.memo");
  h.mix_str(side);
  h.mix_i64(static_cast<int64_t>(tech));
  h.mix_str(model);
  return h.digest();
}

/// E_abs fallback for workloads whose tasks never block in a send.
///
/// `run_cell_detailed` reports the paper's §VI task-level metric: the mean
/// over tasks of |S_p - S_m| / S_m, where S is the per-task blocked-send
/// sum. Scheme queries are lifted to nonblocking traces (isend + wait_all,
/// sim::trace_from_scheme), so no task ever blocks in a send and that
/// metric is vacuously empty — it would read 0.000 while the makespans
/// visibly disagree. When the task-level metric has no signal, fall back
/// to the paper's fig-2 per-communication metric: the mean over paired
/// comm records of |T_p - T_m| / T_m. Both replays run the same trace
/// under the same placement and scenario, so records pair by index.
double comm_level_eabs(const sim::SimResult& measured,
                       const sim::SimResult& predicted) {
  BWS_CHECK(measured.comms.size() == predicted.comms.size(),
            "serve: measured/predicted comm record counts diverge");
  double total = 0.0;
  size_t count = 0;
  for (size_t i = 0; i < measured.comms.size(); ++i) {
    const sim::CommRecord& m = measured.comms[i];
    const sim::CommRecord& p = predicted.comms[i];
    if (m.background || m.aborted || p.background || p.aborted) continue;
    const double mt = m.finish - m.start;
    const double pt = p.finish - p.start;
    if (mt <= 0.0) continue;
    total += std::fabs(pt - mt) / mt * 100.0;
    ++count;
  }
  if (count == 0) return 0.0;
  return total / static_cast<double>(count);
}

/// True when at least one task accrued blocked-send time — i.e. the
/// task-level E_abs had something to average over.
bool has_task_level_signal(const sim::SimResult& measured) {
  for (sim::TaskId t = 0;
       t < static_cast<sim::TaskId>(measured.tasks.size()); ++t) {
    if (measured.task_comm_time(t) > 0.0) return true;
  }
  return false;
}

}  // namespace

std::string to_string(Source source) {
  switch (source) {
    case Source::kError: return "error";
    case Source::kCold: return "cold";
    case Source::kWarm: return "warm";
    case Source::kCache: return "cache";
    case Source::kCoalesced: return "coalesced";
  }
  BWS_THROW("unknown serve::Source");
}

/// One distinct replay a batch must execute: the canonical query, the
/// request slots it answers (leader first), and the per-replay solve memos
/// whose frozen tier is the service WarmStore.
struct QueryService::Job {
  CanonicalQuery cq;
  std::vector<size_t> request_slots;
  std::unique_ptr<sim::SolveMemo> measured_memo;
  std::unique_ptr<sim::SolveMemo> predicted_memo;
  // Filled by the parallel phase:
  std::shared_ptr<QueryResult> result;
  bool warm = false;
};

QueryService::QueryService(ServiceConfig config)
    : cfg_(config),
      results_(config.cache_capacity),
      solves_(config.warm_start ? config.memo_capacity : 0),
      pool_(std::make_unique<util::ThreadPool>(config.threads)) {}

QueryService::~QueryService() = default;

Response QueryService::query(const Query& q) {
  return query_batch({q}).front();
}

std::vector<Response> QueryService::query_batch(
    const std::vector<Query>& queries) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Response> responses(queries.size());
  std::vector<std::unique_ptr<Job>> jobs;
  // fingerprint -> job index, for single-flight coalescing within the batch
  std::map<uint64_t, size_t> planned;

  // Phase 1 — plan, sequentially in request order. Every cache and
  // coalescing decision happens here, before any replay runs, so the
  // response for each slot is fixed no matter how the pool schedules
  // phase 2.
  for (size_t i = 0; i < queries.size(); ++i) {
    Response& r = responses[i];
    ++stats_.queries;
    CanonicalQuery cq;
    try {
      cq = canonicalize(queries[i]);
    } catch (const std::exception& e) {
      r.id = queries[i].id;
      r.ok = false;
      r.source = Source::kError;
      r.error = e.what();
      ++stats_.errors;
      continue;
    }
    r.id = cq.id;
    r.fingerprint = cq.fingerprint;
    if (auto hit = results_.lookup(cq.fingerprint)) {
      r.ok = hit->cell.ok;
      r.error = hit->cell.error;
      r.source = Source::kCache;
      r.result = std::move(hit);
      ++stats_.cache_hits;
      continue;
    }
    if (const auto it = planned.find(cq.fingerprint); it != planned.end()) {
      jobs[it->second]->request_slots.push_back(i);
      r.source = Source::kCoalesced;
      ++stats_.coalesced;
      continue;
    }
    auto job = std::make_unique<Job>();
    const sim::SolveStore* frozen = cfg_.warm_start ? &solves_ : nullptr;
    job->measured_memo = std::make_unique<sim::SolveMemo>(
        frozen, memo_salt("measured", cq.tech, cq.model), cfg_.verify);
    job->predicted_memo = std::make_unique<sim::SolveMemo>(
        frozen, memo_salt("predicted", cq.tech, cq.model), cfg_.verify);
    job->cq = std::move(cq);
    job->request_slots.push_back(i);
    planned.emplace(job->cq.fingerprint, jobs.size());
    jobs.push_back(std::move(job));
  }

  // Phase 2 — execute the distinct replays on the pool. The WarmStore is
  // frozen for the duration: replays read it through the const lookup and
  // stage their own solutions privately in their memos.
  util::parallel_for(*pool_, static_cast<int>(jobs.size()), [&](int j) {
    Job& job = *jobs[static_cast<size_t>(j)];
    const CanonicalQuery& cq = job.cq;
    eval::CellJob cell_job;
    cell_job.workload = &cq.workload;
    cell_job.tech = cq.tech;
    cell_job.model = cq.model;
    cell_job.shape = {cq.nodes, cq.cores};
    cell_job.policy = cq.policy;
    cell_job.churn = cq.churn;
    cell_job.background = cq.background;
    cell_job.seed = cq.seed;
    eval::CellHooks hooks;
    hooks.measured_memo = job.measured_memo.get();
    hooks.predicted_memo = job.predicted_memo.get();
    eval::CellOutcome out = eval::run_cell_detailed(cell_job, hooks);
    job.warm = job.measured_memo->frozen_hits() +
                   job.predicted_memo->frozen_hits() >
               0;
    if (cfg_.verify && out.cell.ok && job.warm) {
      // Service-level oracle: a warm replay must equal a fully cold one
      // bitwise. (The per-hit oracle inside SolveMemo already re-solved
      // every individual hit; this closes the loop end to end.)
      const eval::CellOutcome cold = eval::run_cell_detailed(cell_job);
      BWS_CHECK(cold.cell.ok,
                strformat("serve verify: cold re-run failed: %s",
                          cold.cell.error.c_str()));
      BWS_CHECK(sim::bit_identical(*out.measured, *cold.measured),
                "serve verify: warm-started measured replay diverged from "
                "a cold run");
      BWS_CHECK(sim::bit_identical(*out.predicted, *cold.predicted),
                "serve verify: warm-started predicted replay diverged from "
                "a cold run");
    }
    auto result = std::make_shared<QueryResult>();
    result->cell = std::move(out.cell);
    result->placement = std::move(out.placement);
    result->measured = std::move(out.measured);
    result->predicted = std::move(out.predicted);
    result->fingerprint = cq.fingerprint;
    if (result->cell.ok && !has_task_level_signal(*result->measured)) {
      result->cell.eabs_pct =
          comm_level_eabs(*result->measured, *result->predicted);
    }
    if (result->cell.ok) {
      result->result_hash = util::hash_words(
          {hash_sim_result(*result->measured),
           hash_sim_result(*result->predicted)});
    }
    job.result = std::move(result);
  });

  // Phase 3 — commit, sequentially in job-creation order (== first-request
  // order), so cache contents and counters are independent of pool
  // scheduling.
  for (const auto& job_ptr : jobs) {
    const Job& job = *job_ptr;
    ++stats_.replays;
    if (job.warm) ++stats_.warm_replays;
    stats_.solve_hits += job.measured_memo->frozen_hits() +
                         job.predicted_memo->frozen_hits();
    stats_.solve_misses +=
        job.measured_memo->misses() + job.predicted_memo->misses();
    const bool ok = job.result->cell.ok;
    if (ok) {
      solves_.commit(job.measured_memo->staged());
      solves_.commit(job.predicted_memo->staged());
      // Failed replays are deliberately not cached: a retry re-executes.
      results_.insert(job.cq.fingerprint, job.result);
    }
    for (size_t k = 0; k < job.request_slots.size(); ++k) {
      Response& r = responses[job.request_slots[k]];
      r.ok = ok;
      if (ok) {
        if (k == 0) r.source = job.warm ? Source::kWarm : Source::kCold;
        // Followers keep the kCoalesced tag set during planning.
        r.result = job.result;
      } else {
        r.source = Source::kError;
        r.error = job.result->cell.error;
        ++stats_.errors;
      }
    }
  }
  return responses;
}

ServiceStats QueryService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServiceStats s = stats_;
  s.result_evictions = results_.evictions();
  s.solve_evictions = solves_.evictions();
  s.cached_results = results_.size();
  s.stored_solutions = solves_.size();
  return s;
}

}  // namespace bwshare::serve
