#include "serve/fingerprint.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "graph/generator.hpp"
#include "graph/scheme_parser.hpp"
#include "models/registry.hpp"
#include "sim/events.hpp"
#include "sim/trace_io.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/strings.hpp"

namespace bwshare::serve {

namespace {

/// Absorb the resolved workload: pure event content, per task in task
/// order. Labels, file paths and scheme names are display-only and
/// deliberately absent.
void mix_trace(util::StructuralHash& h, const sim::AppTrace& trace) {
  h.mix_i64(trace.num_tasks());
  for (sim::TaskId t = 0; t < trace.num_tasks(); ++t) {
    const sim::TaskProgram& prog = trace.program(t);
    h.mix_u64(prog.size());
    for (const sim::Event& e : prog) {
      h.mix_i64(static_cast<int64_t>(e.kind));
      h.mix_i64(e.peer);
      h.mix_f64(e.bytes);
      h.mix_f64(e.seconds);
    }
  }
}

}  // namespace

CanonicalQuery canonicalize(const Query& q) {
  CanonicalQuery cq;
  cq.id = q.id;

  const int workloads = (q.scheme.empty() ? 0 : 1) +
                        (q.scheme_text.empty() ? 0 : 1) +
                        (q.trace.empty() ? 0 : 1) +
                        (q.trace_text.empty() ? 0 : 1);
  BWS_CHECK(workloads == 1,
            "query needs exactly one workload field: scheme, scheme_text, "
            "trace or trace_text");

  cq.tech = topo::network_tech_from_string(q.network);
  // Resolve "network" to the interconnect's own model *before* hashing, so
  // {"model":"network"} and the explicit name are the same query.
  cq.model = (q.model == "network" || q.model.empty()
                  ? models::model_for(cq.tech)
                  : models::make_model(q.model))
                 ->name();

  BWS_CHECK(q.nodes >= 1 && q.nodes <= 1000000,
            strformat("query: nodes must be in [1, 1000000], got %d",
                      q.nodes));
  BWS_CHECK(q.cores >= 1 && q.cores <= 1000000,
            strformat("query: cores must be in [1, 1000000], got %d",
                      q.cores));
  cq.cores = q.cores;
  cq.policy = sim::scheduling_policy_from_string(q.schedule);
  BWS_CHECK(q.churn >= 0.0 && std::isfinite(q.churn),
            strformat("query: churn must be finite and >= 0, got %g",
                      q.churn));
  BWS_CHECK(q.background >= 0.0 && std::isfinite(q.background),
            strformat("query: background must be finite and >= 0, got %g",
                      q.background));
  cq.churn = q.churn;
  cq.background = q.background;
  cq.seed = q.seed;

  // Resolve the workload to a trace. Schemes — builtin, file, generator or
  // inline — are lifted through sim::trace_from_scheme, so every served
  // query replays through the one run_simulation path the conformance suite
  // compares against; the cluster grows to fit a scheme, mirroring
  // eval::run_cell.
  if (!q.trace.empty()) {
    cq.workload = eval::resolve_trace_workload(q.trace);
    cq.nodes = q.nodes;
  } else if (!q.trace_text.empty()) {
    auto trace = sim::read_trace(q.trace_text);
    trace.validate();
    cq.workload.key = "trace_text";
    cq.workload.trace =
        std::make_shared<const sim::AppTrace>(std::move(trace));
    cq.nodes = q.nodes;
  } else {
    graph::CommGraph graph;
    if (!q.scheme.empty()) {
      const auto w = eval::resolve_scheme_workload(q.scheme);
      graph = w.generator ? graph::generate_scheme(*w.generator, q.seed)
                          : *w.scheme;
      cq.workload.key = q.scheme;
    } else {
      auto parsed = graph::parse_scheme(q.scheme_text);
      graph = std::move(parsed.graph);
      cq.workload.key =
          parsed.name.empty() ? std::string("scheme_text") : parsed.name;
    }
    BWS_CHECK(graph.size() > 0, "query: scheme has no communications");
    cq.nodes = std::max(q.nodes, graph.num_nodes());
    cq.workload.trace = std::make_shared<const sim::AppTrace>(
        sim::trace_from_scheme(graph));
  }

  // The seed only reaches the replay through random placement and the
  // scenario scripts (a generator expansion is already baked into the trace
  // content above); otherwise canonicalize it away.
  cq.seed_live = cq.policy == sim::SchedulingPolicy::kRandom ||
                 cq.churn > 0.0 || cq.background > 0.0;

  util::StructuralHash h;
  h.mix_str("bwshare.serve.query.v1");
  mix_trace(h, *cq.workload.trace);
  h.mix_i64(static_cast<int64_t>(cq.tech));
  h.mix_str(cq.model);
  h.mix_i64(cq.nodes);
  h.mix_i64(cq.cores);
  h.mix_i64(static_cast<int64_t>(cq.policy));
  h.mix_f64(cq.churn);
  h.mix_f64(cq.background);
  h.mix_u64(cq.seed_live ? cq.seed : 0);
  // The engine semantics every served replay runs under (the defaults — no
  // knob exposes them yet). Hashed so exposing one later cannot alias onto
  // fingerprints minted before. Execution strategy (refresh/queue/solve) is
  // excluded on purpose: bit-identical by the engine contract.
  const sim::EngineConfig engine;
  h.mix_f64(engine.eager_threshold);
  h.mix_f64(engine.barrier_cost);
  h.mix_f64(engine.max_time);
  cq.fingerprint = h.digest();
  return cq;
}

uint64_t hash_sim_result(const sim::SimResult& r) {
  util::StructuralHash h;
  h.mix_f64(r.makespan);
  h.mix_u64(r.aborted_comms);
  h.mix_u64(r.background_comms);
  h.mix_u64(r.background_skipped);
  h.mix_u64(r.comms.size());
  for (const sim::CommRecord& c : r.comms) {
    h.mix_i64(c.src_task);
    h.mix_i64(c.dst_task);
    h.mix_i64(c.src_node);
    h.mix_i64(c.dst_node);
    h.mix_f64(c.bytes);
    h.mix_f64(c.send_post);
    h.mix_f64(c.recv_post);
    h.mix_f64(c.start);
    h.mix_f64(c.finish);
    h.mix_f64(c.penalty);
    h.mix_f64(c.sender_time);
    h.mix_bool(c.background);
    h.mix_bool(c.aborted);
  }
  h.mix_u64(r.tasks.size());
  for (const sim::TaskStats& t : r.tasks) {
    h.mix_f64(t.finish_time);
    h.mix_f64(t.compute_seconds);
    h.mix_f64(t.send_blocked_seconds);
    h.mix_f64(t.recv_blocked_seconds);
    h.mix_f64(t.barrier_wait_seconds);
    h.mix_i64(t.sends);
    h.mix_i64(t.recvs);
  }
  return h.digest();
}

}  // namespace bwshare::serve
