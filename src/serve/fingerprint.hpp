// Query canonicalization and fingerprinting for serve::QueryService
// (docs/SERVING.md).
//
// A Query arrives as surface syntax — a builtin scheme name, a .scheme or
// .trace path, inline scheme/trace text, axis spellings like "gige" or
// "RRN". Canonicalization resolves all of it to *content*: every workload
// becomes a validated sim::AppTrace (schemes through sim::trace_from_scheme,
// generator specs expanded with the query's seed), the interconnect and
// model to their registry identities, the cluster to its effective shape.
// The fingerprint is a util::StructuralHash over that resolved content, so
// two queries that mean the same replay hash the same even when they were
// spelled differently (path vs inline text, "network" vs the explicit model
// name, a cluster too small for its scheme vs one already grown), and any
// semantically distinct field — one byte more, one node elsewhere — hashes
// differently.
//
// Deliberately excluded from the fingerprint:
//   * `id` — client correlation tag, echoed verbatim;
//   * the seed, when it cannot affect the replay (placement policy is
//     deterministic and no churn/background script is drawn) — it is
//     canonicalized to 0 so "seed":7 and "seed":9 share a cache line;
//   * execution strategy (refresh/queue/solve modes, thread counts): the
//     engine contract makes those bit-identical, so caching across them is
//     exactly as safe as caching across repeats.
//
// Stability: fingerprints inherit the util::StructuralHash contract — stable
// within one build, NOT across releases. Never persist them.
#pragma once

#include <cstdint>
#include <string>

#include "eval/sweep.hpp"
#include "sim/engine.hpp"
#include "sim/schedule.hpp"
#include "topo/network.hpp"

namespace bwshare::serve {

/// One prediction request, as parsed off the wire (serve/protocol.hpp) or
/// built programmatically. Exactly one of scheme / scheme_text / trace /
/// trace_text must be set.
struct Query {
  /// Client correlation tag, echoed in the response; never fingerprinted.
  std::string id;
  /// Scheme workload, SweepSpec::schemes grammar: a builtin name
  /// (optionally "@SIZE"), a .scheme path, or a generator spec
  /// "family:key=value,...".
  std::string scheme;
  /// Inline scheme DSL source (docs/SCHEME_DSL.md).
  std::string scheme_text;
  /// Trace-file path (sim/trace_io format).
  std::string trace;
  /// Inline trace text.
  std::string trace_text;
  std::string network = "gige";
  /// Penalty model name, or "network" for the interconnect's own model.
  std::string model = "network";
  int nodes = 16;
  int cores = 2;
  std::string schedule = "RRN";
  /// Dynamic-cluster scenario rates (events/s resp. flows/s over a 1 s
  /// horizon — the sweep axes' convention).
  double churn = 0.0;
  double background = 0.0;
  /// Drives random placement, churn/background scripts and generator
  /// expansion. Inert (and canonicalized away) when none of those apply.
  uint64_t seed = 42;
};

/// A Query resolved to executable content plus its fingerprint.
struct CanonicalQuery {
  std::string id;
  /// Always a trace workload (schemes are lifted via trace_from_scheme);
  /// `key` keeps the query's display spelling.
  eval::ResolvedWorkload workload;
  topo::NetworkTech tech{};
  std::string model;  // resolved registry name
  int nodes = 0;      // effective: grown to fit a scheme workload
  int cores = 0;
  sim::SchedulingPolicy policy = sim::SchedulingPolicy::kRoundRobinNode;
  double churn = 0.0;
  double background = 0.0;
  uint64_t seed = 0;
  /// True when the seed can still influence the replay (random placement
  /// or a nonzero scenario rate); false means it was canonicalized to 0
  /// in the fingerprint.
  bool seed_live = false;
  uint64_t fingerprint = 0;
};

/// Resolve and fingerprint one query. Throws bwshare::Error on malformed
/// input: no workload (or more than one), unknown network/model/schedule,
/// out-of-range shape or rates, unparsable scheme/trace content.
[[nodiscard]] CanonicalQuery canonicalize(const Query& q);

/// Content hash of a full replay result — every field bit_identical()
/// compares. Two SimResults hash equal iff a bitwise comparison passes
/// (modulo 64-bit collisions), which is what lets the serving conformance
/// suite pin "the cached answer IS the fresh answer" through one number.
[[nodiscard]] uint64_t hash_sim_result(const sim::SimResult& r);

}  // namespace bwshare::serve
