#include "serve/protocol.hpp"

#include <cmath>
#include <cstdlib>
#include <istream>
#include <ostream>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/parse.hpp"
#include "util/strings.hpp"

namespace bwshare::serve {

namespace {

class FlatJsonParser {
 public:
  explicit FlatJsonParser(std::string_view text) : text_(text) {}

  JsonObject parse() {
    JsonObject obj;
    skip_ws();
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
    } else {
      while (true) {
        skip_ws();
        BWS_CHECK(peek() == '"',
                  strformat("serve request: expected a key at column %zu",
                            pos_ + 1));
        std::string key = parse_string();
        for (const auto& [k, v] : obj) {
          BWS_CHECK(k != key,
                    strformat("serve request: duplicate key \"%s\"",
                              key.c_str()));
        }
        skip_ws();
        expect(':');
        skip_ws();
        obj.emplace_back(std::move(key), parse_value());
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        break;
      }
    }
    skip_ws();
    BWS_CHECK(pos_ == text_.size(),
              strformat("serve request: trailing content at column %zu",
                        pos_ + 1));
    return obj;
  }

 private:
  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\r' || text_[pos_] == '\n')) {
      ++pos_;
    }
  }

  void expect(char c) {
    BWS_CHECK(peek() == c,
              strformat("serve request: expected '%c' at column %zu", c,
                        pos_ + 1));
    ++pos_;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      BWS_CHECK(pos_ < text_.size(),
                "serve request: unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      BWS_CHECK(pos_ < text_.size(),
                "serve request: unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          BWS_CHECK(pos_ + 4 <= text_.size(),
                    "serve request: truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            unsigned digit = 0;
            if (h >= '0' && h <= '9') digit = static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              digit = static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              digit = static_cast<unsigned>(h - 'A' + 10);
            else
              BWS_THROW("serve request: bad \\u escape");
            code = code * 16 + digit;
          }
          // ASCII only; anything beyond it has no business in a request.
          BWS_CHECK(code < 0x80,
                    "serve request: non-ASCII \\u escapes are not supported");
          out.push_back(static_cast<char>(code));
          break;
        }
        default:
          BWS_THROW(strformat("serve request: bad escape '\\%c'", e));
      }
    }
  }

  JsonValue parse_value() {
    JsonValue v;
    char c = peek();
    if (c == '"') {
      v.kind = JsonValue::Kind::kString;
      v.str = parse_string();
      return v;
    }
    if (c == '{' || c == '[') {
      BWS_THROW("serve request: nested objects/arrays are not supported "
                "(flat JSON only)");
    }
    const size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != ',' &&
           text_[pos_] != '}' && text_[pos_] != ' ' &&
           text_[pos_] != '\t') {
      ++pos_;
    }
    const std::string tok(text_.substr(start, pos_ - start));
    if (tok == "true" || tok == "false") {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = tok == "true";
      return v;
    }
    if (tok == "null") return v;  // kNull
    char* end = nullptr;
    const double num = std::strtod(tok.c_str(), &end);
    BWS_CHECK(!tok.empty() && end == tok.c_str() + tok.size() &&
                  std::isfinite(num),
              strformat("serve request: bad value '%s'", tok.c_str()));
    v.kind = JsonValue::Kind::kNumber;
    v.num = num;
    v.str = tok;
    return v;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

std::string want_string(const JsonValue& v, const char* key) {
  BWS_CHECK(v.kind == JsonValue::Kind::kString,
            strformat("serve request: \"%s\" must be a string", key));
  return v.str;
}

double want_number(const JsonValue& v, const char* key) {
  BWS_CHECK(v.kind == JsonValue::Kind::kNumber,
            strformat("serve request: \"%s\" must be a number", key));
  return v.num;
}

int want_int(const JsonValue& v, const char* key) {
  const double d = want_number(v, key);
  const int i = static_cast<int>(d);
  BWS_CHECK(static_cast<double>(i) == d,
            strformat("serve request: \"%s\" must be an integer", key));
  return i;
}

uint64_t want_u64(const JsonValue& v, const char* key) {
  // Accept both 42 and "42" (a JSON double cannot carry every 64-bit
  // seed); both keep their raw spelling in v.str, parsed digits-only here.
  BWS_CHECK(v.kind == JsonValue::Kind::kNumber ||
                v.kind == JsonValue::Kind::kString,
            strformat("serve request: \"%s\" must be an unsigned integer",
                      key));
  uint64_t out = 0;
  BWS_CHECK(try_parse_u64(v.str, out) == ParseIntStatus::kOk,
            strformat("serve request: \"%s\" must be an unsigned integer, "
                      "got '%s'",
                      key, v.str.c_str()));
  return out;
}

}  // namespace

JsonObject parse_flat_json_object(std::string_view line) {
  return FlatJsonParser(line).parse();
}

Query query_from_json(const JsonObject& obj) {
  Query q;
  for (const auto& [key, value] : obj) {
    if (key == "op") {
      const std::string op = want_string(value, "op");
      BWS_CHECK(op == "query",
                strformat("serve request: unexpected op \"%s\" in a query "
                          "batch",
                          op.c_str()));
    } else if (key == "id") {
      q.id = want_string(value, "id");
    } else if (key == "scheme") {
      q.scheme = want_string(value, "scheme");
    } else if (key == "scheme_text") {
      q.scheme_text = want_string(value, "scheme_text");
    } else if (key == "trace") {
      q.trace = want_string(value, "trace");
    } else if (key == "trace_text") {
      q.trace_text = want_string(value, "trace_text");
    } else if (key == "network") {
      q.network = want_string(value, "network");
    } else if (key == "model") {
      q.model = want_string(value, "model");
    } else if (key == "nodes") {
      q.nodes = want_int(value, "nodes");
    } else if (key == "cores") {
      q.cores = want_int(value, "cores");
    } else if (key == "schedule") {
      q.schedule = want_string(value, "schedule");
    } else if (key == "churn") {
      q.churn = want_number(value, "churn");
    } else if (key == "background") {
      q.background = want_number(value, "background");
    } else if (key == "seed") {
      q.seed = want_u64(value, "seed");
    } else {
      BWS_THROW(strformat("serve request: unknown key \"%s\"", key.c_str()));
    }
  }
  return q;
}

std::string response_to_json(const Response& r) {
  std::string out = "{";
  out += strformat("\"id\":\"%s\"", util::json_escape(r.id).c_str());
  out += strformat(",\"ok\":%s", r.ok ? "true" : "false");
  out += strformat(",\"source\":\"%s\"", to_string(r.source).c_str());
  if (r.fingerprint != 0) {
    out += strformat(",\"fingerprint\":\"%s\"",
                     util::hash_hex(r.fingerprint).c_str());
  }
  if (!r.ok) {
    out += strformat(",\"error\":\"%s\"",
                     util::json_escape(r.error).c_str());
    out += "}";
    return out;
  }
  const eval::SweepCell& cell = r.result->cell;
  out += strformat(",\"workload\":\"%s\"",
                   util::json_escape(cell.workload).c_str());
  out += strformat(",\"network\":\"%s\"",
                   util::json_escape(cell.network).c_str());
  out += strformat(",\"model\":\"%s\"",
                   util::json_escape(cell.model).c_str());
  out += strformat(",\"nodes\":%d,\"cores\":%d", cell.nodes, cell.cores);
  out += strformat(",\"policy\":\"%s\"",
                   util::json_escape(cell.policy).c_str());
  out += strformat(",\"tasks\":%d", cell.units);
  out += strformat(",\"measured_s\":%s",
                   util::format_fixed(cell.measured_s, 9).c_str());
  out += strformat(",\"predicted_s\":%s",
                   util::format_fixed(cell.predicted_s, 9).c_str());
  out += strformat(",\"eabs_pct\":%s",
                   util::format_fixed(cell.eabs_pct, 6).c_str());
  out += strformat(",\"result_hash\":\"%s\"",
                   util::hash_hex(r.result->result_hash).c_str());
  out += "}";
  return out;
}

std::string stats_to_json(const ServiceStats& s) {
  std::string out = "{\"op\":\"stats\"";
  const auto field = [&out](const char* name, uint64_t v) {
    out += strformat(",\"%s\":%llu", name,
                     static_cast<unsigned long long>(v));
  };
  field("queries", s.queries);
  field("errors", s.errors);
  field("replays", s.replays);
  field("cache_hits", s.cache_hits);
  field("coalesced", s.coalesced);
  field("warm_replays", s.warm_replays);
  field("solve_hits", s.solve_hits);
  field("solve_misses", s.solve_misses);
  field("result_evictions", s.result_evictions);
  field("solve_evictions", s.solve_evictions);
  field("cached_results", s.cached_results);
  field("stored_solutions", s.stored_solutions);
  out += "}";
  return out;
}

size_t run_serve_loop(std::istream& in, std::ostream& out,
                      const ServiceConfig& config) {
  QueryService service(config);
  std::vector<Query> pending;
  size_t failures = 0;

  const auto flush = [&] {
    if (pending.empty()) return;
    std::vector<Query> batch;
    batch.swap(pending);
    for (const Response& r : service.query_batch(batch)) {
      if (!r.ok) ++failures;
      out << response_to_json(r) << '\n';
    }
    out.flush();
  };

  std::string line;
  while (std::getline(in, line)) {
    const std::string_view trimmed = trim(line);
    if (trimmed.empty()) {
      flush();
      continue;
    }
    std::string protocol_error;
    try {
      JsonObject obj = parse_flat_json_object(trimmed);
      bool is_stats = false;
      for (const auto& [key, value] : obj) {
        if (key == "op" && value.kind == JsonValue::Kind::kString &&
            value.str == "stats") {
          is_stats = true;
        }
      }
      if (is_stats) {
        // Counters reflect everything before this line: flush first.
        flush();
        out << stats_to_json(service.stats()) << '\n';
        out.flush();
        continue;
      }
      pending.push_back(query_from_json(obj));
      continue;
    } catch (const std::exception& e) {
      protocol_error = e.what();
    }
    // A malformed line still answers in order: serve what came before it,
    // then report it.
    flush();
    Response r;
    r.ok = false;
    r.source = Source::kError;
    r.error = protocol_error;
    ++failures;
    out << response_to_json(r) << '\n';
    out.flush();
  }
  flush();
  return failures;
}

}  // namespace bwshare::serve
