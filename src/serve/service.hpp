// serve::QueryService — the prediction-as-a-service core (docs/SERVING.md).
//
// A long-lived service answering measured-vs-predicted replay queries
// without paying a cold start per request:
//
//   * completed replays land in a bounded LRU ResultCache keyed by the
//     query fingerprint; a repeat returns the memoized QueryResult object
//     verbatim;
//   * distinct queries in one batch fan out onto a util::ThreadPool through
//     eval::run_cell_detailed; identical queries in one batch coalesce onto
//     a single replay (single-flight);
//   * every replay's component rate solves are memoized into a WarmStore,
//     so a later query whose comm set differs by a small edit set re-seeds
//     from the cached component solutions and only the dirty components are
//     solved fresh (sim/solve_memo.hpp) — the PR 3 incremental machinery
//     aimed across queries.
//
// Determinism contract: every served answer — cold, cached, warm-started or
// coalesced — is bit-identical to a fresh sim::run_simulation of the same
// canonical query, and the response sequence for a given query sequence is
// identical at any pool width. The latter holds because every decision that
// shapes a response happens in the sequential phases: fingerprints, cache
// lookups and coalescing are planned in request order before any replay
// starts; the WarmStore is frozen while the pool runs (replays stage
// privately); results commit in job-creation order afterwards. The parallel
// phase only computes values the engine contract pins bit-for-bit.
// ServiceConfig::verify turns the contract into a runtime oracle: every
// memo hit is re-solved and compared bitwise, and every replay that touched
// the WarmStore is re-run fully cold and compared bitwise.
//
// Thread safety: the whole service is serialized on one mutex — concurrent
// callers enqueue batches, they never interleave inside one. Parallelism
// lives *inside* a batch (the pool), which is also what makes concurrent
// duplicate queries collapse to one replay: the first batch executes, the
// second finds the cache line.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/cache.hpp"
#include "serve/fingerprint.hpp"

namespace bwshare::util {
class ThreadPool;
}

namespace bwshare::serve {

struct ServiceConfig {
  /// Completed replays the ResultCache retains (0 = serve-through).
  size_t cache_capacity = 64;
  /// Component solutions the WarmStore retains (0 = no warm-start).
  size_t memo_capacity = 65536;
  /// Pool workers for a batch's distinct replays (0 = hardware threads).
  int threads = 0;
  /// Master switch for cross-query solve reuse; off means every replay is
  /// cold (the ResultCache still works).
  bool warm_start = true;
  /// Oracle mode: bitwise re-verify every memo hit and cold-re-run every
  /// warm replay. Expensive; for tests and smoke scripts.
  bool verify = false;
};

/// How a response was produced. kCold/kWarm label the request that ran the
/// replay (warm = at least one component solve was answered by the
/// WarmStore); kCoalesced labels batch-mates that shared that replay;
/// kCache labels answers from the ResultCache; kError carries no result.
enum class Source { kError, kCold, kWarm, kCache, kCoalesced };

[[nodiscard]] std::string to_string(Source source);

struct Response {
  std::string id;  // echoed from the query
  bool ok = false;
  std::string error;  // set when !ok
  Source source = Source::kError;
  uint64_t fingerprint = 0;
  /// Shared with the cache: a kCache response aliases the object the
  /// original replay produced (pointer-identical, never copied).
  std::shared_ptr<const QueryResult> result;
};

/// Monotonic counters. Deterministic for a given query sequence: every
/// count is taken in the sequential phases, and the per-replay solver
/// tallies are pinned by the engine's bit-identical contract.
struct ServiceStats {
  uint64_t queries = 0;
  uint64_t errors = 0;
  uint64_t replays = 0;        // jobs actually executed
  uint64_t cache_hits = 0;
  uint64_t coalesced = 0;
  uint64_t warm_replays = 0;   // replays with >= 1 WarmStore hit
  uint64_t solve_hits = 0;     // component solves answered by the WarmStore
  uint64_t solve_misses = 0;   // component solves done fresh
  uint64_t result_evictions = 0;
  uint64_t solve_evictions = 0;
  uint64_t cached_results = 0;   // current ResultCache size
  uint64_t stored_solutions = 0; // current WarmStore size
};

class QueryService {
 public:
  explicit QueryService(ServiceConfig config = {});
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  [[nodiscard]] const ServiceConfig& config() const { return cfg_; }

  /// One query == a batch of one.
  Response query(const Query& q);

  /// Serve a batch: plan sequentially in request order, execute distinct
  /// misses in parallel, commit in order. Responses align with `queries`
  /// by index. Malformed queries and failed replays yield ok=false
  /// responses; nothing is thrown for per-query trouble.
  std::vector<Response> query_batch(const std::vector<Query>& queries);

  [[nodiscard]] ServiceStats stats() const;

 private:
  struct Job;

  ServiceConfig cfg_;
  mutable std::mutex mu_;
  ResultCache results_;
  WarmStore solves_;
  std::unique_ptr<util::ThreadPool> pool_;
  ServiceStats stats_;
};

}  // namespace bwshare::serve
