#include "eval/experiment.hpp"

#include "eval/metrics.hpp"
#include "flowsim/fluid_network.hpp"
#include "mpi/measurement.hpp"
#include "sim/rate_model.hpp"
#include "stats/descriptive.hpp"
#include "util/error.hpp"

namespace bwshare::eval {

SchemeComparison compare_scheme(const graph::CommGraph& scheme,
                                const topo::ClusterSpec& cluster,
                                const models::PenaltyModel& model) {
  SchemeComparison out;

  const flowsim::FluidRateProvider measured_provider(cluster.network());
  out.measured = mpi::measure_times(scheme, cluster, measured_provider);

  // Wrap the model in a non-owning shared_ptr: the provider only lives for
  // this call.
  const std::shared_ptr<const models::PenaltyModel> alias(
      std::shared_ptr<const models::PenaltyModel>{}, &model);
  const sim::ModelRateProvider predicted_provider(alias, cluster.network());
  out.predicted = mpi::measure_times(scheme, cluster, predicted_provider);

  out.erel = relative_errors(out.predicted, out.measured);
  out.eabs = mean_absolute_error(out.predicted, out.measured);
  return out;
}

ApplicationComparison compare_application(const sim::AppTrace& trace,
                                          const topo::ClusterSpec& cluster,
                                          sim::SchedulingPolicy policy,
                                          const models::PenaltyModel& model,
                                          uint64_t seed,
                                          const sim::Scenario& scenario) {
  return compare_application_detailed(trace, cluster, policy, model, seed,
                                      scenario)
      .summary;
}

ApplicationComparisonDetailed compare_application_detailed(
    const sim::AppTrace& trace, const topo::ClusterSpec& cluster,
    sim::SchedulingPolicy policy, const models::PenaltyModel& model,
    uint64_t seed, const sim::Scenario& scenario,
    const ReplayConfig& config) {
  ApplicationComparisonDetailed out;
  ApplicationComparison& summary = out.summary;
  summary.placement =
      sim::make_placement(policy, cluster, trace.num_tasks(), seed);

  // Both replays default to the engine's defaults: incremental
  // component-scoped refresh and the event-core finish-time heap
  // (docs/PERFORMANCE.md) — sweep grids over large clusters would otherwise
  // spend nearly all their time in full per-event re-solves and
  // next-completion scans.
  const flowsim::FluidRateProvider measured_provider(cluster.network());
  auto measured = std::make_shared<sim::SimResult>(
      sim::run_simulation(trace, cluster, summary.placement,
                          measured_provider, scenario, config.measured));

  const std::shared_ptr<const models::PenaltyModel> alias(
      std::shared_ptr<const models::PenaltyModel>{}, &model);
  const sim::ModelRateProvider predicted_provider(alias, cluster.network());
  auto predicted = std::make_shared<sim::SimResult>(
      sim::run_simulation(trace, cluster, summary.placement,
                          predicted_provider, scenario, config.predicted));

  summary.measured_makespan = measured->makespan;
  summary.predicted_makespan = predicted->makespan;

  summary.tasks.resize(static_cast<size_t>(trace.num_tasks()));
  stats::Accumulator acc;
  for (sim::TaskId t = 0; t < trace.num_tasks(); ++t) {
    auto& tc = summary.tasks[static_cast<size_t>(t)];
    tc.sum_measured = measured->task_comm_time(t);
    tc.sum_predicted = predicted->task_comm_time(t);
    if (tc.sum_measured > 0.0) {
      tc.eabs = task_absolute_error(tc.sum_predicted, tc.sum_measured);
      acc.add(tc.eabs);
    }
  }
  summary.mean_eabs = acc.mean();
  out.measured = std::move(measured);
  out.predicted = std::move(predicted);
  return out;
}

}  // namespace bwshare::eval
