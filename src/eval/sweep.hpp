// Parallel experiment-sweep subsystem: the campaign runner behind
// `bwshare_cli sweep` and the fig-7-style benches.
//
// The paper's evaluation is a grid — scheme × interconnect × model ×
// cluster shape × schedule (figs 4–9) — that the seed repo ran one
// hand-written bench cell at a time. A SweepSpec declares the whole grid;
// Sweep expands it into independent jobs (the cross product, in a fixed
// documented order) and executes them on a util::ThreadPool. Each job is
// seeded deterministically from its own axis values, never from execution
// order, so the emitted CSV/JSON is byte-identical at any thread count.
//
// Axis reference, defaults and the CSV/JSON column glossary live in
// docs/EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "graph/comm_graph.hpp"
#include "graph/generator.hpp"
#include "sim/events.hpp"
#include "sim/schedule.hpp"
#include "topo/network.hpp"

namespace bwshare::sim {
class SolveMemo;
struct SimResult;
}

namespace bwshare::eval {

/// One cluster shape cell: `nodes` SMP nodes with `cores` cores each.
struct SweepShape {
  int nodes = 16;
  int cores = 2;
};

/// Parse "16x2" into a shape. Throws bwshare::Error on malformed input.
[[nodiscard]] SweepShape parse_sweep_shape(const std::string& text);

/// The declarative grid. Workloads are schemes (static comparison,
/// eval::compare_scheme) and/or traces (application replay,
/// eval::compare_application). Scheme cells cross every axis except
/// `policies` (placement only matters when tasks are scheduled); trace
/// cells cross all of them.
struct SweepSpec {
  /// Scheme axis entries, each one of:
  ///   * a built-in paper scheme: fig2_s1..fig2_s6, fig4, fig5, mk1, mk2,
  ///     optionally with a message-size override suffix ("mk1@8M");
  ///   * a path ending in ".scheme" (parsed by graph/scheme_parser);
  ///   * a generator spec "family:key=value,..." (graph/generator.hpp),
  ///     expanded per cell with that cell's seed.
  std::vector<std::string> schemes;
  /// Trace axis entries: paths in the sim/trace_io format.
  std::vector<std::string> traces;
  std::vector<topo::NetworkTech> networks = {
      topo::NetworkTech::kGigabitEthernet};
  /// Penalty-model axis: models::make_model names, or the pseudo-name
  /// "network" meaning "the model the paper pairs with the cell's
  /// interconnect" (models::model_for).
  std::vector<std::string> models = {"network"};
  std::vector<SweepShape> shapes = {{16, 2}};
  std::vector<sim::SchedulingPolicy> policies = {
      sim::SchedulingPolicy::kRoundRobinNode};
  /// Membership-churn axis (trace cells only, like `policies`): Poisson
  /// join/leave/fail events per second of simulated time over a 1 s
  /// horizon, scripted per cell from the cell's seed
  /// (graph::generate_churn). 0 = static cluster.
  std::vector<double> churn_rates = {0.0};
  /// Background cross-traffic axis (trace cells only): Poisson 1 MB flows
  /// per second over a 1 s horizon (graph::generate_background). 0 = none.
  std::vector<double> background_loads = {0.0};
  /// Seed axis. A cell's seed drives scheme generation, random placement
  /// and the churn/background scripts; it is the only source of randomness
  /// in a sweep. (eval::Campaign ignores this axis: replicate seeds are
  /// drawn from the campaign's own salted counter stream instead.)
  std::vector<uint64_t> seeds = {42};

  /// Throws bwshare::Error if any axis is empty or no workload is given.
  void validate() const;
  /// Axis validation only — everything validate() checks except workload
  /// presence. Used by eval::Campaign when workloads are supplied
  /// pre-resolved (in-memory traces) rather than through schemes/traces.
  void validate_axes() const;
};

/// A workload entry resolved to something executable: exactly one of
/// `scheme` (static graph), `generator` (seeded graph family) or `trace`
/// is set. Shared by Sweep (which resolves its axis strings up front) and
/// Campaign (which may also take pre-built in-memory workloads, e.g. the
/// network-advisor's MiniMPI-recorded traces).
struct ResolvedWorkload {
  std::string key;  // display name: the axis entry, or a caller-given label
  std::shared_ptr<const graph::CommGraph> scheme;
  std::optional<graph::GeneratorSpec> generator;
  std::shared_ptr<const sim::AppTrace> trace;

  [[nodiscard]] bool is_trace() const { return trace != nullptr; }
};

/// Resolve a scheme axis entry (built-in name, .scheme path or generator
/// spec — the SweepSpec::schemes grammar). Throws bwshare::Error.
[[nodiscard]] ResolvedWorkload resolve_scheme_workload(
    const std::string& entry);

/// Load + validate a trace file. Throws bwshare::Error.
[[nodiscard]] ResolvedWorkload resolve_trace_workload(
    const std::string& entry);

/// One fully specified grid cell: a workload at a point on every axis.
/// `workload` must outlive the call; `seed` is the cell's only randomness.
struct CellJob {
  const ResolvedWorkload* workload = nullptr;
  topo::NetworkTech tech{};
  std::string model;  // registry name or "network"
  SweepShape shape;
  sim::SchedulingPolicy policy = sim::SchedulingPolicy::kRoundRobinNode;
  double churn = 0.0;
  double background = 0.0;
  uint64_t seed = 0;
};

/// One executed grid cell.
struct SweepCell {
  std::string kind;      // "scheme" | "trace"
  std::string workload;  // the axis entry that produced this cell
  std::string network;   // the CLI axis spelling: "gige" / "myrinet" / "ib"
  std::string model;     // resolved model name
  int nodes = 0;
  int cores = 0;
  std::string policy;    // "-" for scheme cells
  double churn_rate = 0.0;       // 0 for scheme cells
  double background_load = 0.0;  // 0 for scheme cells
  uint64_t seed = 0;
  int units = 0;         // communications (scheme) or tasks (trace)
  double measured_s = 0.0;   // sum of T_m (scheme) / measured makespan
  double predicted_s = 0.0;  // sum of T_p (scheme) / predicted makespan
  double eabs_pct = 0.0;     // E_abs of the cell
  double max_abs_erel_pct = 0.0;  // worst |E_rel| (scheme) / worst task E_abs
  bool ok = false;
  std::string error;     // populated when !ok
};

/// Execute one grid cell — the sweep executor, exposed so Campaign can run
/// replicates through the exact same code path. Scheme cells run
/// compare_scheme, trace cells compare_application under the job's
/// policy/churn/background scenario. Failures are recorded in the returned
/// cell (ok = false, error message), never thrown; the result depends only
/// on the job, never on execution order or thread count.
[[nodiscard]] SweepCell run_cell(const CellJob& job);

/// Optional instrumentation for run_cell_detailed. The memos (not owned,
/// may be null) are threaded into the trace cell's two replays as
/// EngineConfig::solve_memo — the serving layer's cross-query warm-start
/// hook (sim/solve_memo.hpp). Scheme cells ignore them (compare_scheme is a
/// static solve with no replay).
struct CellHooks {
  sim::SolveMemo* measured_memo = nullptr;
  sim::SolveMemo* predicted_memo = nullptr;
};

/// run_cell plus the full replay evidence for trace cells: the placement
/// and both SimResults (null for scheme cells and for errored cells). The
/// summary `cell` is computed identically to run_cell — same numbers, same
/// error recording.
struct CellOutcome {
  SweepCell cell;
  sim::Placement placement;
  std::shared_ptr<const sim::SimResult> measured;
  std::shared_ptr<const sim::SimResult> predicted;
};

[[nodiscard]] CellOutcome run_cell_detailed(const CellJob& job,
                                            const CellHooks& hooks = {});

/// Marginal summary: all ok cells sharing one axis value.
struct SweepMarginal {
  std::string axis;   // "workload", "network", "model", "shape", ...
  std::string value;
  size_t cells = 0;
  double mean_eabs_pct = 0.0;
  double max_eabs_pct = 0.0;
};

struct SweepResult {
  std::vector<SweepCell> cells;      // in job-expansion order
  std::vector<SweepMarginal> marginals;
  size_t num_errors = 0;

  /// Per-cell CSV (header in docs/EXPERIMENTS.md). Byte-identical for a
  /// given spec regardless of the thread count it ran with.
  [[nodiscard]] std::string to_csv() const;
  /// Marginal-summary CSV.
  [[nodiscard]] std::string marginals_to_csv() const;
  /// {"cells": [...], "marginals": [...]} carrying the same values.
  [[nodiscard]] std::string to_json() const;
};

class Sweep {
 public:
  /// Validates the spec and resolves every static workload (built-ins,
  /// .scheme and trace files) up front; throws bwshare::Error on unknown
  /// names, unreadable files or malformed generator specs.
  explicit Sweep(SweepSpec spec);

  [[nodiscard]] const SweepSpec& spec() const { return spec_; }
  [[nodiscard]] size_t num_jobs() const;

  /// Execute the grid on `threads` workers (0 = hardware threads). Cell
  /// failures are recorded per cell (ok = false), never thrown.
  [[nodiscard]] SweepResult run(int threads = 1) const;

 private:
  SweepSpec spec_;
  std::vector<ResolvedWorkload> scheme_workloads_;
  std::vector<ResolvedWorkload> trace_workloads_;
};

}  // namespace bwshare::eval
