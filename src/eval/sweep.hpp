// Parallel experiment-sweep subsystem: the campaign runner behind
// `bwshare_cli sweep` and the fig-7-style benches.
//
// The paper's evaluation is a grid — scheme × interconnect × model ×
// cluster shape × schedule (figs 4–9) — that the seed repo ran one
// hand-written bench cell at a time. A SweepSpec declares the whole grid;
// Sweep expands it into independent jobs (the cross product, in a fixed
// documented order) and executes them on a util::ThreadPool. Each job is
// seeded deterministically from its own axis values, never from execution
// order, so the emitted CSV/JSON is byte-identical at any thread count.
//
// Axis reference, defaults and the CSV/JSON column glossary live in
// docs/EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "graph/comm_graph.hpp"
#include "graph/generator.hpp"
#include "sim/events.hpp"
#include "sim/schedule.hpp"
#include "topo/network.hpp"

namespace bwshare::eval {

/// One cluster shape cell: `nodes` SMP nodes with `cores` cores each.
struct SweepShape {
  int nodes = 16;
  int cores = 2;
};

/// Parse "16x2" into a shape. Throws bwshare::Error on malformed input.
[[nodiscard]] SweepShape parse_sweep_shape(const std::string& text);

/// The declarative grid. Workloads are schemes (static comparison,
/// eval::compare_scheme) and/or traces (application replay,
/// eval::compare_application). Scheme cells cross every axis except
/// `policies` (placement only matters when tasks are scheduled); trace
/// cells cross all of them.
struct SweepSpec {
  /// Scheme axis entries, each one of:
  ///   * a built-in paper scheme: fig2_s1..fig2_s6, fig4, fig5, mk1, mk2,
  ///     optionally with a message-size override suffix ("mk1@8M");
  ///   * a path ending in ".scheme" (parsed by graph/scheme_parser);
  ///   * a generator spec "family:key=value,..." (graph/generator.hpp),
  ///     expanded per cell with that cell's seed.
  std::vector<std::string> schemes;
  /// Trace axis entries: paths in the sim/trace_io format.
  std::vector<std::string> traces;
  std::vector<topo::NetworkTech> networks = {
      topo::NetworkTech::kGigabitEthernet};
  /// Penalty-model axis: models::make_model names, or the pseudo-name
  /// "network" meaning "the model the paper pairs with the cell's
  /// interconnect" (models::model_for).
  std::vector<std::string> models = {"network"};
  std::vector<SweepShape> shapes = {{16, 2}};
  std::vector<sim::SchedulingPolicy> policies = {
      sim::SchedulingPolicy::kRoundRobinNode};
  /// Membership-churn axis (trace cells only, like `policies`): Poisson
  /// join/leave/fail events per second of simulated time over a 1 s
  /// horizon, scripted per cell from the cell's seed
  /// (graph::generate_churn). 0 = static cluster.
  std::vector<double> churn_rates = {0.0};
  /// Background cross-traffic axis (trace cells only): Poisson 1 MB flows
  /// per second over a 1 s horizon (graph::generate_background). 0 = none.
  std::vector<double> background_loads = {0.0};
  /// Seed axis. A cell's seed drives scheme generation, random placement
  /// and the churn/background scripts; it is the only source of randomness
  /// in a sweep.
  std::vector<uint64_t> seeds = {42};

  /// Throws bwshare::Error if any axis is empty or no workload is given.
  void validate() const;
};

/// One executed grid cell.
struct SweepCell {
  std::string kind;      // "scheme" | "trace"
  std::string workload;  // the axis entry that produced this cell
  std::string network;   // the CLI axis spelling: "gige" / "myrinet" / "ib"
  std::string model;     // resolved model name
  int nodes = 0;
  int cores = 0;
  std::string policy;    // "-" for scheme cells
  double churn_rate = 0.0;       // 0 for scheme cells
  double background_load = 0.0;  // 0 for scheme cells
  uint64_t seed = 0;
  int units = 0;         // communications (scheme) or tasks (trace)
  double measured_s = 0.0;   // sum of T_m (scheme) / measured makespan
  double predicted_s = 0.0;  // sum of T_p (scheme) / predicted makespan
  double eabs_pct = 0.0;     // E_abs of the cell
  double max_abs_erel_pct = 0.0;  // worst |E_rel| (scheme) / worst task E_abs
  bool ok = false;
  std::string error;     // populated when !ok
};

/// Marginal summary: all ok cells sharing one axis value.
struct SweepMarginal {
  std::string axis;   // "workload", "network", "model", "shape", ...
  std::string value;
  size_t cells = 0;
  double mean_eabs_pct = 0.0;
  double max_eabs_pct = 0.0;
};

struct SweepResult {
  std::vector<SweepCell> cells;      // in job-expansion order
  std::vector<SweepMarginal> marginals;
  size_t num_errors = 0;

  /// Per-cell CSV (header in docs/EXPERIMENTS.md). Byte-identical for a
  /// given spec regardless of the thread count it ran with.
  [[nodiscard]] std::string to_csv() const;
  /// Marginal-summary CSV.
  [[nodiscard]] std::string marginals_to_csv() const;
  /// {"cells": [...], "marginals": [...]} carrying the same values.
  [[nodiscard]] std::string to_json() const;
};

class Sweep {
 public:
  /// Validates the spec and resolves every static workload (built-ins,
  /// .scheme and trace files) up front; throws bwshare::Error on unknown
  /// names, unreadable files or malformed generator specs.
  explicit Sweep(SweepSpec spec);

  [[nodiscard]] const SweepSpec& spec() const { return spec_; }
  [[nodiscard]] size_t num_jobs() const;

  /// Execute the grid on `threads` workers (0 = hardware threads). Cell
  /// failures are recorded per cell (ok = false), never thrown.
  [[nodiscard]] SweepResult run(int threads = 1) const;

 private:
  struct Workload {
    std::string key;
    std::shared_ptr<const graph::CommGraph> scheme;   // static scheme
    std::optional<graph::GeneratorSpec> generator;    // seeded scheme
    std::shared_ptr<const sim::AppTrace> trace;
  };

  SweepSpec spec_;
  std::vector<Workload> scheme_workloads_;
  std::vector<Workload> trace_workloads_;
};

}  // namespace bwshare::eval
