#include "eval/sweep.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <utility>

#include "eval/experiment.hpp"
#include "graph/scheme_parser.hpp"
#include "graph/schemes.hpp"
#include "models/registry.hpp"
#include "sim/trace_io.hpp"
#include "stats/descriptive.hpp"
#include "topo/cluster.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/parse.hpp"
#include "util/strings.hpp"
#include "util/threadpool.hpp"

namespace bwshare::eval {

namespace {

// Short interconnect names for CSV cells ("GigabitEthernet" is noisy in a
// 24-row grid and the CLI already accepts these as axis input).
std::string short_tech_name(topo::NetworkTech tech) {
  switch (tech) {
    case topo::NetworkTech::kGigabitEthernet: return "gige";
    case topo::NetworkTech::kMyrinet2000: return "myrinet";
    case topo::NetworkTech::kInfinibandInfinihost3: return "ib";
  }
  return "?";
}

// Built-in paper schemes, with an optional "@SIZE" message-size override
// ("mk1@8M"); without one each scheme keeps its paper-default size.
graph::CommGraph builtin_scheme(const std::string& entry) {
  std::string name = entry;
  std::optional<double> bytes;
  const auto at = entry.find('@');
  if (at != std::string::npos) {
    name = entry.substr(0, at);
    bytes = parse_size(entry.substr(at + 1));
  }
  if (name == "fig4") return graph::schemes::fig4_scheme(bytes.value_or(4e6));
  if (name == "fig5") return graph::schemes::fig5_scheme(bytes.value_or(20e6));
  if (name == "mk1") return graph::schemes::mk1_tree(bytes.value_or(4e6));
  if (name == "mk2") return graph::schemes::mk2_complete(bytes.value_or(4e6));
  if (starts_with(name, "fig2_s") && name.size() == 7 && name[6] >= '1' &&
      name[6] <= '6') {
    return graph::schemes::fig2_scheme(name[6] - '0', bytes.value_or(20e6));
  }
  BWS_THROW("unknown scheme '" + name +
            "' (built-ins: fig2_s1..fig2_s6, fig4, fig5, mk1, mk2, each "
            "with an optional @SIZE like mk1@8M; or a path ending in "
            ".scheme, or a generator spec 'family:...')");
}

}  // namespace

SweepShape parse_sweep_shape(const std::string& text) {
  const auto x = text.find('x');
  SweepShape shape;
  BWS_CHECK(x != std::string::npos,
            "shape '" + text + "' must look like <nodes>x<cores>, e.g. 16x2");
  const std::string nodes = text.substr(0, x);
  const std::string cores = text.substr(x + 1);
  // Range-checked on the long before the int cast, so 2^32+1 is rejected
  // instead of silently wrapping into a tiny cluster.
  long n = 0;
  BWS_CHECK(try_parse_long(nodes, n, 1, 1000000) == ParseIntStatus::kOk,
            "shape '" + text + "': bad node count '" + nodes + "'");
  shape.nodes = static_cast<int>(n);
  long c = 0;
  BWS_CHECK(try_parse_long(cores, c, 1, 1000000) == ParseIntStatus::kOk,
            "shape '" + text + "': bad core count '" + cores + "'");
  shape.cores = static_cast<int>(c);
  return shape;
}

void SweepSpec::validate() const {
  BWS_CHECK(!schemes.empty() || !traces.empty(),
            "sweep: at least one scheme or trace workload is required");
  validate_axes();
}

void SweepSpec::validate_axes() const {
  BWS_CHECK(!networks.empty(), "sweep: networks axis must not be empty");
  BWS_CHECK(!models.empty(), "sweep: models axis must not be empty");
  BWS_CHECK(!shapes.empty(), "sweep: shapes axis must not be empty");
  BWS_CHECK(!policies.empty(), "sweep: policies axis must not be empty");
  BWS_CHECK(!churn_rates.empty(), "sweep: churn_rates axis must not be empty");
  BWS_CHECK(!background_loads.empty(),
            "sweep: background_loads axis must not be empty");
  for (const double r : churn_rates) {
    BWS_CHECK(r >= 0.0 && std::isfinite(r),
              strformat("sweep: churn rate must be finite and >= 0, got %g",
                        r));
  }
  for (const double r : background_loads) {
    BWS_CHECK(r >= 0.0 && std::isfinite(r),
              strformat("sweep: background load must be finite and >= 0, "
                        "got %g",
                        r));
  }
  BWS_CHECK(!seeds.empty(), "sweep: seeds axis must not be empty");
  for (const auto& shape : shapes) {
    BWS_CHECK(shape.nodes >= 1 && shape.cores >= 1,
              strformat("sweep: invalid shape %dx%d", shape.nodes,
                        shape.cores));
  }
  for (const auto& name : models) {
    if (name == "network") continue;
    // Throws with the registry's own "unknown model" message on typos.
    (void)models::make_model(name);
  }
}

ResolvedWorkload resolve_scheme_workload(const std::string& entry) {
  ResolvedWorkload w;
  w.key = entry;
  if (entry.find(':') != std::string::npos) {
    w.generator = graph::parse_generator_spec(entry);
  } else if (entry.ends_with(".scheme")) {
    w.scheme = std::make_shared<const graph::CommGraph>(
        graph::parse_scheme_file(entry).graph);
  } else {
    w.scheme = std::make_shared<const graph::CommGraph>(builtin_scheme(entry));
  }
  return w;
}

ResolvedWorkload resolve_trace_workload(const std::string& entry) {
  ResolvedWorkload w;
  w.key = entry;
  auto trace = sim::read_trace_file(entry);
  trace.validate();
  w.trace = std::make_shared<const sim::AppTrace>(std::move(trace));
  return w;
}

Sweep::Sweep(SweepSpec spec) : spec_(std::move(spec)) {
  spec_.validate();
  for (const auto& entry : spec_.schemes) {
    scheme_workloads_.push_back(resolve_scheme_workload(entry));
  }
  for (const auto& entry : spec_.traces) {
    trace_workloads_.push_back(resolve_trace_workload(entry));
  }
}

size_t Sweep::num_jobs() const {
  const size_t base = spec_.networks.size() * spec_.models.size() *
                      spec_.shapes.size() * spec_.seeds.size();
  // churn_rates/background_loads cross trace cells only: a scheme cell is a
  // static solve with no replay for a scenario to act on.
  return scheme_workloads_.size() * base +
         trace_workloads_.size() * base * spec_.policies.size() *
             spec_.churn_rates.size() * spec_.background_loads.size();
}

namespace {

models::PenaltyModelPtr resolve_model(const std::string& name,
                                      topo::NetworkTech tech) {
  return name == "network" ? models::model_for(tech)
                           : models::make_model(name);
}

}  // namespace

SweepCell run_cell(const CellJob& job) {
  return run_cell_detailed(job).cell;
}

CellOutcome run_cell_detailed(const CellJob& job, const CellHooks& hooks) {
  const bool is_trace = job.workload->is_trace();
  CellOutcome out;
  SweepCell& cell = out.cell;
  cell.kind = is_trace ? "trace" : "scheme";
  cell.workload = job.workload->key;
  cell.network = short_tech_name(job.tech);
  cell.policy = is_trace ? sim::to_string(job.policy) : "-";
  cell.churn_rate = job.churn;
  cell.background_load = job.background;
  cell.seed = job.seed;
  try {
    const auto model = resolve_model(job.model, job.tech);
    cell.model = model->name();
    // Materialize the scheme first: generated workloads may need more
    // nodes than the shape provides, and (like `bwshare_cli scheme`) the
    // cluster grows to fit rather than erroring the cell.
    graph::CommGraph generated;
    const graph::CommGraph* scheme = nullptr;
    if (!is_trace) {
      if (job.workload->generator) {
        generated = graph::generate_scheme(*job.workload->generator,
                                           job.seed);
        scheme = &generated;
      } else {
        scheme = job.workload->scheme.get();
      }
    }
    const int nodes =
        scheme ? std::max(job.shape.nodes, scheme->num_nodes())
               : job.shape.nodes;
    cell.nodes = nodes;
    cell.cores = job.shape.cores;
    const auto cluster =
        topo::ClusterSpec::uniform("sweep", nodes, job.shape.cores,
                                   topo::calibration_for(job.tech));
    if (is_trace) {
      // Dynamic-cluster scripts are drawn from the cell's seed alone (the
      // generators salt churn vs background internally), so the cell is
      // reproducible independent of execution order or thread count.
      sim::Scenario scenario;
      if (job.churn > 0.0) {
        graph::ChurnSpec cs;
        cs.rate = job.churn;
        cs.horizon = 1.0;
        cs.nodes = nodes;
        scenario.churn = graph::generate_churn(cs, job.seed);
      }
      if (job.background > 0.0) {
        graph::BackgroundSpec bs;
        bs.rate = job.background;
        bs.horizon = 1.0;
        bs.nodes = nodes;
        scenario.background = graph::generate_background(bs, job.seed);
      }
      ReplayConfig replay;
      replay.measured.solve_memo = hooks.measured_memo;
      replay.predicted.solve_memo = hooks.predicted_memo;
      auto detailed =
          compare_application_detailed(*job.workload->trace, cluster,
                                       job.policy, *model, job.seed,
                                       scenario, replay);
      const auto& cmp = detailed.summary;
      cell.units = job.workload->trace->num_tasks();
      cell.measured_s = cmp.measured_makespan;
      cell.predicted_s = cmp.predicted_makespan;
      cell.eabs_pct = cmp.mean_eabs;
      for (const auto& task : cmp.tasks) {
        cell.max_abs_erel_pct = std::max(cell.max_abs_erel_pct, task.eabs);
      }
      out.placement = cmp.placement;
      out.measured = std::move(detailed.measured);
      out.predicted = std::move(detailed.predicted);
    } else {
      const auto cmp = compare_scheme(*scheme, cluster, *model);
      cell.units = scheme->size();
      for (const double t : cmp.measured) cell.measured_s += t;
      for (const double t : cmp.predicted) cell.predicted_s += t;
      cell.eabs_pct = cmp.eabs;
      for (const double e : cmp.erel) {
        cell.max_abs_erel_pct = std::max(cell.max_abs_erel_pct,
                                         std::fabs(e));
      }
    }
    cell.ok = true;
  } catch (const std::exception& e) {
    cell.ok = false;
    cell.error = e.what();
    out.placement = sim::Placement();
    out.measured.reset();
    out.predicted.reset();
  }
  return out;
}

SweepResult Sweep::run(int threads) const {
  // Expand the grid in its documented order: workloads (schemes first, then
  // traces, each in listed order) x networks x models x shapes
  // [x policies x churn_rates x background_loads, trace cells only] x seeds.
  std::vector<CellJob> jobs;
  jobs.reserve(num_jobs());
  for (const auto& w : scheme_workloads_) {
    for (const auto tech : spec_.networks) {
      for (const auto& model : spec_.models) {
        for (const auto& shape : spec_.shapes) {
          for (const auto seed : spec_.seeds) {
            jobs.push_back({&w, tech, model, shape,
                            sim::SchedulingPolicy::kRoundRobinNode, 0.0, 0.0,
                            seed});
          }
        }
      }
    }
  }
  for (const auto& w : trace_workloads_) {
    for (const auto tech : spec_.networks) {
      for (const auto& model : spec_.models) {
        for (const auto& shape : spec_.shapes) {
          for (const auto policy : spec_.policies) {
            for (const double churn : spec_.churn_rates) {
              for (const double background : spec_.background_loads) {
                for (const auto seed : spec_.seeds) {
                  jobs.push_back({&w, tech, model, shape, policy, churn,
                                  background, seed});
                }
              }
            }
          }
        }
      }
    }
  }

  SweepResult result;
  result.cells.resize(jobs.size());

  const auto run_job = [&jobs, &result](int index) {
    result.cells[static_cast<size_t>(index)] =
        run_cell(jobs[static_cast<size_t>(index)]);
  };

  util::ThreadPool pool(threads);
  util::parallel_for(pool, static_cast<int>(jobs.size()), run_job);

  for (const auto& cell : result.cells) {
    if (!cell.ok) ++result.num_errors;
  }

  // Marginal summaries, serially and in spec order (deterministic).
  const auto add_marginals = [&result](const std::string& axis,
                                       const std::vector<std::string>& values,
                                       auto&& cell_value) {
    std::vector<std::string> done;  // a repeated axis value ("--seeds 1,1")
                                    // must not emit a duplicate row
    for (const auto& value : values) {
      if (std::find(done.begin(), done.end(), value) != done.end()) continue;
      done.push_back(value);
      stats::Accumulator acc;
      for (const auto& cell : result.cells) {
        if (cell.ok && cell_value(cell) == value) acc.add(cell.eabs_pct);
      }
      if (acc.count() == 0) continue;
      result.marginals.push_back(
          {axis, value, acc.count(), acc.mean(), acc.max()});
    }
  };
  std::vector<std::string> workload_keys;
  for (const auto& w : scheme_workloads_) workload_keys.push_back(w.key);
  for (const auto& w : trace_workloads_) workload_keys.push_back(w.key);
  add_marginals("workload", workload_keys,
                [](const SweepCell& c) { return c.workload; });
  std::vector<std::string> network_names;
  for (const auto tech : spec_.networks) {
    network_names.push_back(short_tech_name(tech));
  }
  add_marginals("network", network_names,
                [](const SweepCell& c) { return c.network; });
  std::vector<std::string> model_names;
  for (const auto& name : spec_.models) {
    model_names.push_back(name == "network"
                              ? "network"
                              : models::make_model(name)->name());
  }
  if (std::find(spec_.models.begin(), spec_.models.end(), "network") !=
      spec_.models.end()) {
    // "network" resolves per cell; aggregate it over the resolved names.
    model_names.clear();
    std::map<std::string, bool> seen;
    for (const auto& cell : result.cells) {
      if (!cell.model.empty() && !seen[cell.model]) {
        seen[cell.model] = true;
        model_names.push_back(cell.model);
      }
    }
  }
  add_marginals("model", model_names,
                [](const SweepCell& c) { return c.model; });
  // Shapes aggregate over the *effective* cluster (a scheme needing more
  // nodes than the shape grows the cluster), so collect values from cells.
  std::vector<std::string> shape_names;
  for (const auto& cell : result.cells) {
    const std::string name = strformat("%dx%d", cell.nodes, cell.cores);
    if (std::find(shape_names.begin(), shape_names.end(), name) ==
        shape_names.end()) {
      shape_names.push_back(name);
    }
  }
  add_marginals("shape", shape_names, [](const SweepCell& c) {
    return strformat("%dx%d", c.nodes, c.cores);
  });
  if (!trace_workloads_.empty()) {
    std::vector<std::string> policy_names;
    for (const auto policy : spec_.policies) {
      policy_names.push_back(sim::to_string(policy));
    }
    add_marginals("policy", policy_names,
                  [](const SweepCell& c) { return c.policy; });
    // The dynamic-cluster axes, like policy, only exist on trace cells;
    // scheme cells (always churn 0 / load 0) would otherwise pollute the
    // zero rows, so marginals filter on kind.
    std::vector<std::string> churn_names;
    for (const double r : spec_.churn_rates) {
      churn_names.push_back(strformat("%g", r));
    }
    add_marginals("churn_rate", churn_names, [](const SweepCell& c) {
      return c.kind == "trace" ? strformat("%g", c.churn_rate)
                               : std::string("-");
    });
    std::vector<std::string> load_names;
    for (const double r : spec_.background_loads) {
      load_names.push_back(strformat("%g", r));
    }
    add_marginals("background_load", load_names, [](const SweepCell& c) {
      return c.kind == "trace" ? strformat("%g", c.background_load)
                               : std::string("-");
    });
  }
  std::vector<std::string> seed_names;
  for (const auto seed : spec_.seeds) {
    seed_names.push_back(
        strformat("%llu", static_cast<unsigned long long>(seed)));
  }
  add_marginals("seed", seed_names, [](const SweepCell& c) {
    return strformat("%llu", static_cast<unsigned long long>(c.seed));
  });

  return result;
}

namespace {

using util::format_fixed;

util::CsvWriter cells_table(const std::vector<SweepCell>& cells) {
  // Schema v2: churn_rate/background_load joined the per-cell columns when
  // the dynamic-cluster axes landed (docs/EXPERIMENTS.md).
  util::CsvWriter csv({"kind", "workload", "network", "model", "nodes",
                       "cores", "policy", "churn_rate", "background_load",
                       "seed", "units", "measured_s", "predicted_s",
                       "eabs_pct", "max_abs_erel_pct", "status", "error"});
  for (const auto& cell : cells) {
    csv.add_row({cell.kind, cell.workload, cell.network, cell.model,
                 strformat("%d", cell.nodes), strformat("%d", cell.cores),
                 cell.policy, format_fixed(cell.churn_rate, 3),
                 format_fixed(cell.background_load, 3),
                 strformat("%llu", static_cast<unsigned long long>(cell.seed)),
                 strformat("%d", cell.units),
                 format_fixed(cell.measured_s, 6),
                 format_fixed(cell.predicted_s, 6),
                 format_fixed(cell.eabs_pct, 3),
                 format_fixed(cell.max_abs_erel_pct, 3),
                 cell.ok ? "ok" : "error", cell.error});
  }
  return csv;
}

util::CsvWriter marginals_table(const std::vector<SweepMarginal>& marginals) {
  util::CsvWriter csv({"axis", "value", "cells", "mean_eabs_pct",
                       "max_eabs_pct"});
  for (const auto& m : marginals) {
    csv.add_row({m.axis, m.value, strformat("%zu", m.cells),
                 format_fixed(m.mean_eabs_pct, 3),
                 format_fixed(m.max_eabs_pct, 3)});
  }
  return csv;
}

}  // namespace

std::string SweepResult::to_csv() const {
  return cells_table(cells).render();
}

std::string SweepResult::marginals_to_csv() const {
  return marginals_table(marginals).render();
}

std::string SweepResult::to_json() const {
  return "{\n\"cells\": " + util::rows_to_json(cells_table(cells)) +
         ",\n\"marginals\": " + util::rows_to_json(marginals_table(marginals)) +
         "\n}\n";
}

}  // namespace bwshare::eval
