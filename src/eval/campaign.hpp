// Adaptive Monte-Carlo campaigns: sequential sampling with early stopping
// over eval::Sweep's cell executor — the paper's "which interconnect /
// topology / schedule wins for this workload?" question answered from as
// few replays as statistical confidence allows, instead of running every
// grid cell to completion on a fixed seed list.
//
// A Campaign expands the non-seed axes of a SweepSpec into candidate
// *arms* (one arm per grid cell identity), then draws seeded replicates
// per arm in rounds on a util::ThreadPool. After every round each arm's
// objective samples go through stats::bootstrap_ci and the configured
// stats::StoppingRule decides whether to keep sampling, eliminate hopeless
// arms (kCutoff), or stop (see stats/sequential.hpp for rule semantics).
//
// Determinism contract (same as Sweep, enforced by
// tests/eval/test_campaign.cpp): replicate r of arm a runs with a seed
// drawn from a per-arm salted counter stream — a pure function of
// (campaign seed, arm index, r) — and every decision is taken serially in
// arm order from slot-written results, so the report (CSV and JSON
// included) is byte-identical at any thread count and any round
// interleaving.
//
// An arm whose replicate fails is recorded status=error and leaves the
// pool immediately; it never aborts the campaign (the PR 2 sweep-error
// contract, lifted to arms).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "eval/sweep.hpp"
#include "stats/sequential.hpp"

namespace bwshare::eval {

/// What a replicate contributes as the arm's objective sample. Campaigns
/// always minimize.
enum class Objective {
  kMeasuredSeconds,   // substrate makespan / summed comm time — "which
                      // candidate is fastest?" (the advisor question)
  kPredictedSeconds,  // model-predicted makespan
  kEabsPct,           // model error — "which model fits best?"
};

[[nodiscard]] std::string to_string(Objective objective);
/// Accepts "measured", "predicted", "eabs"; throws bwshare::Error.
[[nodiscard]] Objective objective_from_string(const std::string& name);

struct CampaignSpec {
  /// Arm axes: workloads x networks x models x shapes [x policies x
  /// churn_rates x background_loads, trace arms only] — exactly Sweep's
  /// grid minus the seed axis, which replicate streams replace
  /// (grid.seeds is ignored).
  SweepSpec grid;
  /// Stopping rule, tolerance/confidence, min/max replicates per arm and
  /// bootstrap parameters (stats/sequential.hpp).
  stats::SequentialConfig stop;
  /// Replicates drawn per surviving arm per round.
  int batch = 8;
  /// Campaign seed: the root of every per-arm replicate seed stream.
  uint64_t seed = 42;
  Objective objective = Objective::kMeasuredSeconds;

  /// Throws bwshare::Error; `require_workloads` is false when arms come
  /// from pre-resolved in-memory workloads instead of grid.schemes/traces.
  void validate(bool require_workloads = true) const;
};

/// The replicate seed stream: replicate `replicate` of arm `arm_index`
/// under campaign seed `campaign_seed`. Exposed so tests can pin the
/// contract; the stream is salted per arm, so arms never share seeds and
/// adding an arm never shifts another arm's draws.
[[nodiscard]] uint64_t campaign_replicate_seed(uint64_t campaign_seed,
                                               size_t arm_index,
                                               int replicate);

/// One candidate arm of the finished campaign.
struct CampaignArm {
  // Identity: the arm's point on every axis (mirrors SweepCell).
  std::string kind;      // "scheme" | "trace"
  std::string workload;
  std::string network;
  std::string model;
  int nodes = 0;
  int cores = 0;
  std::string policy;    // "-" for scheme arms
  double churn_rate = 0.0;
  double background_load = 0.0;
  // Outcome.
  int replicates = 0;         // replays actually executed for this arm
  double mean = 0.0;          // point estimate of the objective
  double ci_low = 0.0;
  double ci_high = 0.0;
  /// Round (1-based) the arm left the pool (kCutoff elimination or error);
  /// -1 if it stayed in play to the end.
  int out_round = -1;
  bool eliminated = false;
  bool error = false;
  std::string error_msg;
  bool winner = false;

  [[nodiscard]] std::string status() const;  // winner|survivor|eliminated|error
};

struct CampaignResult {
  std::vector<CampaignArm> arms;   // in arm-expansion order
  int rounds = 0;
  /// Replays executed (error replicates included).
  size_t total_replicates = 0;
  /// What the fixed grid would have cost: arms x max_replicates.
  size_t exhaustive_replicates = 0;
  int winner = -1;                 // arm index; -1 if every arm errored
  std::string stopped_by;          // stats::to_string(SequentialStatus)
  std::string objective;           // to_string(spec.objective)

  /// exhaustive_replicates / total_replicates (0 if nothing ran).
  [[nodiscard]] double savings_factor() const;
  /// One row per arm (schema in docs/EXPERIMENTS.md "Campaigns").
  /// Byte-identical for a given spec regardless of thread count.
  [[nodiscard]] std::string to_csv() const;
  /// {"summary": {...}, "arms": [...]} carrying the same values.
  [[nodiscard]] std::string to_json() const;
};

class Campaign {
 public:
  /// Resolve arms from spec.grid.schemes/traces (Sweep's workload
  /// grammar). Throws bwshare::Error on validation or resolution failure.
  explicit Campaign(CampaignSpec spec);

  /// Arms from pre-resolved workloads (e.g. in-memory traces recorded
  /// through MiniMPI — the network_advisor path); spec.grid.schemes and
  /// .traces must be empty. Scheme workloads cross the scheme axes, trace
  /// workloads the trace axes, exactly as if they had been grid entries.
  Campaign(CampaignSpec spec, std::vector<ResolvedWorkload> workloads);

  [[nodiscard]] const CampaignSpec& spec() const { return spec_; }
  [[nodiscard]] size_t num_arms() const { return arms_.size(); }
  /// The fixed-grid cost the sequential loop is competing against.
  [[nodiscard]] size_t exhaustive_replicates() const;

  /// Run the campaign on `threads` workers (0 = hardware threads).
  /// Arm errors are recorded per arm, never thrown.
  [[nodiscard]] CampaignResult run(int threads = 1) const;

 private:
  struct Arm {  // one grid-cell identity (CellJob minus the seed)
    size_t workload = 0;  // index into workloads_
    topo::NetworkTech tech{};
    std::string model;
    SweepShape shape;
    sim::SchedulingPolicy policy = sim::SchedulingPolicy::kRoundRobinNode;
    double churn = 0.0;
    double background = 0.0;
  };

  void expand_arms();

  CampaignSpec spec_;
  std::vector<ResolvedWorkload> workloads_;
  std::vector<Arm> arms_;
};

}  // namespace bwshare::eval
