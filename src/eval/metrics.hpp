// Evaluation metrics (paper §VI-B):
//   E_rel(c_k)  = (T_p - T_m) / T_m * 100          per communication
//   E_abs(G)    = mean of |E_rel| over the graph   per graph
//   E_abs(t_i)  = |(S_p - S_m) / S_m| * 100        per application task,
//                 where S are the sums of that task's communication times.
#pragma once

#include <span>
#include <vector>

namespace bwshare::eval {

/// Relative error in percent; positive = pessimistic prediction.
[[nodiscard]] double relative_error(double predicted, double measured);

/// E_rel per communication.
[[nodiscard]] std::vector<double> relative_errors(
    std::span<const double> predicted, std::span<const double> measured);

/// E_abs: mean absolute relative error, percent.
[[nodiscard]] double mean_absolute_error(std::span<const double> predicted,
                                         std::span<const double> measured);

/// E_abs for one task from its communication-time sums.
[[nodiscard]] double task_absolute_error(double sum_predicted,
                                         double sum_measured);

}  // namespace bwshare::eval
