#include "eval/campaign.hpp"

#include <utility>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/threadpool.hpp"

namespace bwshare::eval {

std::string to_string(Objective objective) {
  switch (objective) {
    case Objective::kMeasuredSeconds: return "measured";
    case Objective::kPredictedSeconds: return "predicted";
    case Objective::kEabsPct: return "eabs";
  }
  return "?";
}

Objective objective_from_string(const std::string& name) {
  if (name == "measured") return Objective::kMeasuredSeconds;
  if (name == "predicted") return Objective::kPredictedSeconds;
  if (name == "eabs") return Objective::kEabsPct;
  BWS_THROW("unknown campaign objective '" + name +
            "' (expected measured, predicted or eabs)");
}

void CampaignSpec::validate(bool require_workloads) const {
  if (require_workloads) {
    grid.validate();
  } else {
    grid.validate_axes();
  }
  stop.validate();
  BWS_CHECK(batch >= 1,
            strformat("campaign: batch must be >= 1, got %d", batch));
}

uint64_t campaign_replicate_seed(uint64_t campaign_seed, size_t arm_index,
                                 int replicate) {
  // A salted counter stream per arm: three chained splitmix64 steps over
  // (seed, arm, replicate). Pure function of its inputs — replicate 7 of
  // arm 2 gets the same seed whether it runs in round 1 or round 4, on 1
  // thread or 64 — and arms never collide, so eliminating one arm can
  // never shift another arm's draws.
  uint64_t state = campaign_seed;
  uint64_t mixed = splitmix64(state);
  state = mixed ^ (static_cast<uint64_t>(arm_index) + 0x9e3779b97f4a7c15ULL);
  mixed = splitmix64(state);
  state = mixed ^ (static_cast<uint64_t>(replicate) + 0xbf58476d1ce4e5b9ULL);
  return splitmix64(state);
}

std::string CampaignArm::status() const {
  if (error) return "error";
  if (winner) return "winner";
  if (eliminated) return "eliminated";
  return "survivor";
}

Campaign::Campaign(CampaignSpec spec) : spec_(std::move(spec)) {
  spec_.validate(/*require_workloads=*/true);
  for (const auto& entry : spec_.grid.schemes) {
    workloads_.push_back(resolve_scheme_workload(entry));
  }
  for (const auto& entry : spec_.grid.traces) {
    workloads_.push_back(resolve_trace_workload(entry));
  }
  expand_arms();
}

Campaign::Campaign(CampaignSpec spec, std::vector<ResolvedWorkload> workloads)
    : spec_(std::move(spec)), workloads_(std::move(workloads)) {
  BWS_CHECK(spec_.grid.schemes.empty() && spec_.grid.traces.empty(),
            "campaign: grid workload entries and pre-resolved workloads are "
            "mutually exclusive");
  BWS_CHECK(!workloads_.empty(),
            "campaign: at least one pre-resolved workload is required");
  spec_.validate(/*require_workloads=*/false);
  expand_arms();
}

void Campaign::expand_arms() {
  // Arm order mirrors Sweep's documented job order with the seed axis
  // removed: workloads (schemes first, then traces) x networks x models x
  // shapes [x policies x churn_rates x background_loads, trace arms only].
  const auto expand = [this](bool traces) {
    for (size_t w = 0; w < workloads_.size(); ++w) {
      if (workloads_[w].is_trace() != traces) continue;
      for (const auto tech : spec_.grid.networks) {
        for (const auto& model : spec_.grid.models) {
          for (const auto& shape : spec_.grid.shapes) {
            if (!traces) {
              arms_.push_back({w, tech, model, shape,
                               sim::SchedulingPolicy::kRoundRobinNode, 0.0,
                               0.0});
              continue;
            }
            for (const auto policy : spec_.grid.policies) {
              for (const double churn : spec_.grid.churn_rates) {
                for (const double background : spec_.grid.background_loads) {
                  arms_.push_back(
                      {w, tech, model, shape, policy, churn, background});
                }
              }
            }
          }
        }
      }
    }
  };
  expand(false);
  expand(true);
}

size_t Campaign::exhaustive_replicates() const {
  return arms_.size() * static_cast<size_t>(spec_.stop.max_replicates);
}

namespace {

double objective_value(Objective objective, const SweepCell& cell) {
  switch (objective) {
    case Objective::kMeasuredSeconds: return cell.measured_s;
    case Objective::kPredictedSeconds: return cell.predicted_s;
    case Objective::kEabsPct: return cell.eabs_pct;
  }
  return 0.0;
}

}  // namespace

CampaignResult Campaign::run(int threads) const {
  stats::SequentialTest test(spec_.stop, arms_.size());

  CampaignResult result;
  result.arms.resize(arms_.size());
  result.exhaustive_replicates = exhaustive_replicates();
  result.objective = to_string(spec_.objective);

  // Per-arm bookkeeping outside the decision core: executed replicate
  // counts (error replays included) and the first error message.
  std::vector<int> executed(arms_.size(), 0);
  std::vector<bool> identity_filled(arms_.size(), false);

  struct RoundJob {
    size_t arm = 0;
    int replicate = 0;
  };
  std::vector<RoundJob> jobs;
  std::vector<SweepCell> cells;
  util::ThreadPool pool(threads);

  stats::SequentialStatus status = stats::SequentialStatus::kContinue;
  while (status == stats::SequentialStatus::kContinue) {
    // Plan the round serially: `batch` fresh replicates per surviving arm,
    // clipped to the per-arm budget. Replicate indices continue each arm's
    // own counter, so the seed stream never depends on round boundaries.
    jobs.clear();
    for (size_t a = 0; a < arms_.size(); ++a) {
      if (!test.arm(a).surviving()) continue;
      const int take = std::min(
          spec_.batch, spec_.stop.max_replicates - executed[a]);
      for (int r = 0; r < take; ++r) {
        jobs.push_back({a, executed[a] + r});
      }
    }

    if (!jobs.empty()) {
      cells.assign(jobs.size(), SweepCell{});
      const auto run_job = [this, &jobs, &cells](int index) {
        const RoundJob& rj = jobs[static_cast<size_t>(index)];
        const Arm& arm = arms_[rj.arm];
        CellJob cj;
        cj.workload = &workloads_[arm.workload];
        cj.tech = arm.tech;
        cj.model = arm.model;
        cj.shape = arm.shape;
        cj.policy = arm.policy;
        cj.churn = arm.churn;
        cj.background = arm.background;
        cj.seed = campaign_replicate_seed(spec_.seed, rj.arm, rj.replicate);
        cells[static_cast<size_t>(index)] = run_cell(cj);
      };
      util::parallel_for(pool, static_cast<int>(jobs.size()), run_job);

      // Ingest serially in job (= arm, replicate) order: sample order, arm
      // identities and error verdicts are thread-count independent.
      for (size_t k = 0; k < jobs.size(); ++k) {
        const size_t a = jobs[k].arm;
        const SweepCell& cell = cells[k];
        ++executed[a];
        ++result.total_replicates;
        if (!identity_filled[a]) {
          identity_filled[a] = true;
          CampaignArm& out = result.arms[a];
          out.kind = cell.kind;
          out.workload = cell.workload;
          out.network = cell.network;
          out.policy = cell.policy;
          out.churn_rate = cell.churn_rate;
          out.background_load = cell.background_load;
          // An errored replicate may die before resolving its model or
          // materializing the cluster — fall back to the axis values.
          out.model = cell.model.empty() ? arms_[a].model : cell.model;
          out.nodes = cell.nodes > 0 ? cell.nodes : arms_[a].shape.nodes;
          out.cores = cell.cores > 0 ? cell.cores : arms_[a].shape.cores;
        }
        if (!test.arm(a).surviving()) continue;  // errored earlier this round
        if (cell.ok) {
          test.add_sample(a, objective_value(spec_.objective, cell));
        } else {
          result.arms[a].error_msg = cell.error;
          test.mark_error(a);
        }
      }
    }

    status = test.finish_round();
  }

  result.rounds = test.rounds();
  result.stopped_by = stats::to_string(status);
  result.winner = test.leader();

  for (size_t a = 0; a < arms_.size(); ++a) {
    const auto& arm_state = test.arm(a);
    CampaignArm& out = result.arms[a];
    out.replicates = executed[a];
    out.eliminated = arm_state.eliminated;
    out.error = arm_state.error;
    out.out_round = arm_state.out_round;
    out.winner = static_cast<int>(a) == result.winner;
    if (arm_state.has_ci) {
      out.mean = arm_state.ci.point;
      out.ci_low = arm_state.ci.low;
      out.ci_high = arm_state.ci.high;
    }
  }
  return result;
}

double CampaignResult::savings_factor() const {
  if (total_replicates == 0) return 0.0;
  return static_cast<double>(exhaustive_replicates) /
         static_cast<double>(total_replicates);
}

namespace {

util::CsvWriter arms_table(const std::vector<CampaignArm>& arms) {
  util::CsvWriter csv({"arm", "kind", "workload", "network", "model", "nodes",
                       "cores", "policy", "churn_rate", "background_load",
                       "replicates", "mean", "ci_low", "ci_high", "out_round",
                       "status", "error"});
  for (size_t i = 0; i < arms.size(); ++i) {
    const auto& arm = arms[i];
    csv.add_row({strformat("%zu", i), arm.kind, arm.workload, arm.network,
                 arm.model, strformat("%d", arm.nodes),
                 strformat("%d", arm.cores), arm.policy,
                 util::format_fixed(arm.churn_rate, 3),
                 util::format_fixed(arm.background_load, 3),
                 strformat("%d", arm.replicates),
                 util::format_fixed(arm.mean, 6),
                 util::format_fixed(arm.ci_low, 6),
                 util::format_fixed(arm.ci_high, 6),
                 strformat("%d", arm.out_round), arm.status(),
                 arm.error_msg});
  }
  return csv;
}

}  // namespace

std::string CampaignResult::to_csv() const {
  return arms_table(arms).render();
}

std::string CampaignResult::to_json() const {
  std::string summary = "{";
  summary += "\"objective\": \"" + util::json_escape(objective) + "\"";
  summary += ", \"stopped_by\": \"" + util::json_escape(stopped_by) + "\"";
  summary += strformat(", \"rounds\": %d", rounds);
  summary += strformat(", \"total_replicates\": %zu", total_replicates);
  summary += strformat(", \"exhaustive_replicates\": %zu",
                       exhaustive_replicates);
  summary += ", \"savings_factor\": " + util::format_fixed(savings_factor(), 3);
  summary += strformat(", \"winner\": %d", winner);
  summary += "}";
  return "{\n\"summary\": " + summary +
         ",\n\"arms\": " + util::rows_to_json(arms_table(arms)) + "\n}\n";
}

}  // namespace bwshare::eval
