// Experiment harness: the measured-vs-predicted comparisons every bench
// binary runs.
//
//   * compare_scheme — static communication graph (paper fig 4 / fig 7):
//     T_m from the fluid substrate, T_p from a penalty model, E_rel/E_abs.
//   * compare_application — application trace (paper fig 8/9, HPL): per-task
//     communication-time sums S_m/S_p and E_abs(t_i) under a scheduling
//     policy.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "graph/comm_graph.hpp"
#include "models/penalty_model.hpp"
#include "sim/engine.hpp"
#include "sim/schedule.hpp"
#include "topo/cluster.hpp"

namespace bwshare::eval {

struct SchemeComparison {
  std::vector<double> measured;   // T_m per comm, seconds
  std::vector<double> predicted;  // T_p per comm, seconds
  std::vector<double> erel;       // percent
  double eabs = 0.0;              // percent
};

/// Compare `model` against the fluid substrate on a static scheme.
/// Both sides run through the same §IV-B measurement software.
[[nodiscard]] SchemeComparison compare_scheme(
    const graph::CommGraph& scheme, const topo::ClusterSpec& cluster,
    const models::PenaltyModel& model);

struct TaskComparison {
  double sum_measured = 0.0;   // S_m
  double sum_predicted = 0.0;  // S_p
  double eabs = 0.0;           // percent
};

struct ApplicationComparison {
  std::vector<TaskComparison> tasks;
  double mean_eabs = 0.0;
  double measured_makespan = 0.0;
  double predicted_makespan = 0.0;
  sim::Placement placement;
};

/// Replay `trace` twice — fluid substrate ("measured") and `model`
/// ("predicted") — under the given scheduling policy. `scenario` applies
/// the same dynamic-cluster script (churn, background traffic) to BOTH
/// replays, so the comparison stays like-for-like; empty means the static
/// cluster of the paper's figures.
[[nodiscard]] ApplicationComparison compare_application(
    const sim::AppTrace& trace, const topo::ClusterSpec& cluster,
    sim::SchedulingPolicy policy, const models::PenaltyModel& model,
    uint64_t seed = 42, const sim::Scenario& scenario = {});

/// Per-replay engine configuration for compare_application_detailed. The
/// defaults are exactly what compare_application uses; the serving layer
/// threads a sim::SolveMemo into each side for cross-query warm-start —
/// which by the memo's purity contract cannot change a single bit of the
/// comparison, only the amount of solver work behind it.
struct ReplayConfig {
  sim::EngineConfig measured;
  sim::EngineConfig predicted;
};

/// compare_application plus the full replay results it derives its summary
/// from. The SimResults are shared_ptr so callers (the serve result cache)
/// can retain them without copying the per-comm records.
struct ApplicationComparisonDetailed {
  ApplicationComparison summary;
  std::shared_ptr<const sim::SimResult> measured;
  std::shared_ptr<const sim::SimResult> predicted;
};

[[nodiscard]] ApplicationComparisonDetailed compare_application_detailed(
    const sim::AppTrace& trace, const topo::ClusterSpec& cluster,
    sim::SchedulingPolicy policy, const models::PenaltyModel& model,
    uint64_t seed = 42, const sim::Scenario& scenario = {},
    const ReplayConfig& config = {});

}  // namespace bwshare::eval
