#include "eval/metrics.hpp"

#include <cmath>

#include "util/error.hpp"

namespace bwshare::eval {

double relative_error(double predicted, double measured) {
  BWS_CHECK(measured > 0.0, "measured time must be positive");
  return (predicted - measured) / measured * 100.0;
}

std::vector<double> relative_errors(std::span<const double> predicted,
                                    std::span<const double> measured) {
  BWS_CHECK(predicted.size() == measured.size(),
            "prediction/measurement size mismatch");
  std::vector<double> out(predicted.size());
  for (size_t i = 0; i < predicted.size(); ++i)
    out[i] = relative_error(predicted[i], measured[i]);
  return out;
}

double mean_absolute_error(std::span<const double> predicted,
                           std::span<const double> measured) {
  const auto errors = relative_errors(predicted, measured);
  BWS_CHECK(!errors.empty(), "cannot average over an empty graph");
  double total = 0.0;
  for (double e : errors) total += std::fabs(e);
  return total / static_cast<double>(errors.size());
}

double task_absolute_error(double sum_predicted, double sum_measured) {
  return std::fabs(relative_error(sum_predicted, sum_measured));
}

}  // namespace bwshare::eval
