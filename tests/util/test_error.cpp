#include "util/error.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/logging.hpp"

namespace bwshare {
namespace {

TEST(Error, ThrowMacroAttachesLocation) {
  try {
    BWS_THROW("boom");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("boom"), std::string::npos);
    EXPECT_NE(what.find("test_error.cpp"), std::string::npos);
  }
}

TEST(Error, CheckPassesOnTrue) {
  EXPECT_NO_THROW(BWS_CHECK(1 + 1 == 2, "math works"));
}

TEST(Error, CheckThrowsOnFalse) {
  EXPECT_THROW(BWS_CHECK(false, "expected"), Error);
}

TEST(Error, AssertMentionsCondition) {
  try {
    BWS_ASSERT(2 < 1, "impossible");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("invariant"), std::string::npos);
  }
}

TEST(Logging, ParseLevels) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("WARN"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_THROW((void)parse_log_level("loud"), Error);
}

TEST(Logging, SetAndGetLevel) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(before);
}

}  // namespace
}  // namespace bwshare
