// util::Arena — the chunked bump arena behind the engine's per-flush solve
// scratch (docs/PERFORMANCE.md "Memory layout").
//
// The contract under test: aligned bump allocation, marker/rewind and Frame
// semantics, geometric growth under overflow, and the reset() consolidation
// guarantee — after one reset at the high-water mark, repeating the same
// workload never calls the global allocator again (the property the
// zero-allocation bench columns and tests/sim/test_engine_alloc.cpp rely on).
#include "util/arena.hpp"

#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/alloc_counter.hpp"

namespace bwshare::util {
namespace {

TEST(Arena, AllocationsAreAlignedAndDisjoint) {
  Arena arena(256);
  void* a = arena.allocate(3, 1);
  void* b = arena.allocate(5, 8);
  void* c = arena.allocate(1, 64);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(c) % 64, 0u);
  // Writes through one pointer must not clobber another allocation.
  std::memset(a, 0xaa, 3);
  std::memset(b, 0xbb, 5);
  std::memset(c, 0xcc, 1);
  EXPECT_EQ(*static_cast<unsigned char*>(a), 0xaa);
  EXPECT_EQ(*static_cast<unsigned char*>(b), 0xbb);
  EXPECT_EQ(*static_cast<unsigned char*>(c), 0xcc);
}

TEST(Arena, ZeroByteAllocationsGetDistinctAddresses) {
  Arena arena;
  void* a = arena.allocate(0, 1);
  void* b = arena.allocate(0, 1);
  EXPECT_NE(a, b);
}

TEST(Arena, MakeSpanValueInitializes) {
  Arena arena;
  // Dirty the storage first so value-init has something to scrub.
  auto dirty = arena.make_span_uninit<uint64_t>(64);
  for (auto& v : dirty) v = ~0ULL;
  arena.rewind(Arena::Marker{});
  const auto ints = arena.make_span<int>(32);
  ASSERT_EQ(ints.size(), 32u);
  for (const int v : ints) EXPECT_EQ(v, 0);
  const auto doubles = arena.make_span<double>(8);
  for (const double v : doubles) EXPECT_EQ(v, 0.0);
  EXPECT_TRUE(arena.make_span<int>(0).empty());
}

TEST(Arena, GrowsPastTheInitialChunk) {
  Arena arena(1024);
  const std::size_t cap0 = arena.capacity();
  std::vector<std::span<uint64_t>> spans;
  for (int i = 0; i < 64; ++i) {
    auto s = arena.make_span<uint64_t>(257);  // > 2 KiB each
    // Every span stays writable while earlier ones hold their contents.
    for (auto& v : s) v = static_cast<uint64_t>(i);
    spans.push_back(s);
  }
  EXPECT_GT(arena.capacity(), cap0);
  for (int i = 0; i < 64; ++i)
    for (const uint64_t v : spans[static_cast<size_t>(i)])
      ASSERT_EQ(v, static_cast<uint64_t>(i));
}

TEST(Arena, RewindFreesEverythingPastTheMark) {
  Arena arena(1024);
  (void)arena.make_span<double>(16);
  const auto m = arena.mark();
  const std::size_t before = arena.in_use();
  (void)arena.make_span<double>(4096);  // forces extra chunks
  EXPECT_GT(arena.in_use(), before);
  arena.rewind(m);
  EXPECT_EQ(arena.in_use(), before);
  // The rewound storage is handed out again.
  void* again = arena.allocate(8, 8);
  arena.rewind(m);
  EXPECT_EQ(arena.allocate(8, 8), again);
}

TEST(Arena, FrameRewindsOnScopeExit) {
  Arena arena;
  (void)arena.make_span<int>(10);
  const std::size_t outer = arena.in_use();
  {
    Arena::Frame frame(arena);
    (void)arena.make_span<int>(1000);
    EXPECT_GT(arena.in_use(), outer);
  }
  EXPECT_EQ(arena.in_use(), outer);
}

TEST(Arena, ResetConsolidationMakesRepeatWorkloadsAllocationFree) {
  Arena arena(1024);
  const auto workload = [&arena] {
    Arena::Frame frame(arena);
    for (int i = 0; i < 16; ++i) (void)arena.make_span<double>(300);
  };
  workload();           // grows chunk by chunk
  arena.reset();        // consolidates to >= high water
  workload();           // warms nothing new: one chunk fits the workload
  const uint64_t a0 = alloc_count();
  for (int rep = 0; rep < 10; ++rep) workload();
  EXPECT_EQ(alloc_count(), a0);
  EXPECT_EQ(arena.in_use(), 0u);
}

TEST(Arena, ThreadLocalInstancesAreDistinct) {
  Arena* main_arena = &Arena::thread_local_instance();
  EXPECT_EQ(main_arena, &Arena::thread_local_instance());
  Arena* worker_arena = nullptr;
  std::thread([&] { worker_arena = &Arena::thread_local_instance(); }).join();
  EXPECT_NE(worker_arena, nullptr);
  EXPECT_NE(worker_arena, main_arena);
}

}  // namespace
}  // namespace bwshare::util
