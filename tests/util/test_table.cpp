#include "util/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace bwshare {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.render(0);
  // Header first, underline second, rows afterwards.
  std::istringstream is(out);
  std::string line;
  std::getline(is, line);
  EXPECT_NE(line.find("name"), std::string::npos);
  EXPECT_NE(line.find("value"), std::string::npos);
  std::getline(is, line);
  EXPECT_EQ(line.find_first_not_of('-'), std::string::npos);
}

TEST(TextTable, RowArityIsChecked) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(TextTable, NumericRows) {
  TextTable t({"label", "x", "y"});
  t.add_row_numeric("r", {1.23456, 2.0}, 2);
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_NE(t.render().find("1.23"), std::string::npos);
}

TEST(TextTable, CsvEscaping) {
  TextTable t({"a"});
  t.add_row({"plain"});
  t.add_row({"with,comma"});
  t.add_row({"with\"quote"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(TextTable, WriteCsvRoundTrip) {
  TextTable t({"x", "y"});
  t.add_row({"1", "2"});
  const std::string path = ::testing::TempDir() + "/bwshare_table.csv";
  t.write_csv(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::remove(path.c_str());
}

TEST(TextTable, WriteCsvBadPathThrows) {
  TextTable t({"x"});
  EXPECT_THROW(t.write_csv("/nonexistent-dir/nope.csv"), Error);
}

}  // namespace
}  // namespace bwshare
