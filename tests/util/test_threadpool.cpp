#include "util/threadpool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "util/error.hpp"

namespace bwshare::util {
namespace {

TEST(ThreadPool, RunsEverySubmittedJob) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ZeroThreadsMeansHardware) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1);
  EXPECT_EQ(pool.num_threads(), ThreadPool::hardware_threads());
}

TEST(ThreadPool, HardwareThreadsIsAtLeastOne) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1);
}

TEST(ThreadPool, RejectsAbsurdThreadCounts) {
  // Checked before any thread spawns, so a typo'd --threads fails cleanly
  // instead of exhausting the process rlimit.
  EXPECT_THROW(ThreadPool{4097}, Error);
}

TEST(ThreadPool, ParallelForCoversEachIndexOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(57);
  parallel_for(pool, 57, [&hits](int i) {
    hits[static_cast<size_t>(i)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIterationsIsANoOp) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](int) { FAIL() << "must not run"; });
}

TEST(ThreadPool, WaitIdleRethrowsFirstJobException) {
  ThreadPool pool(2);
  pool.submit([] { throw Error("job failed"); });
  EXPECT_THROW(pool.wait_idle(), Error);
  // The pool stays usable after a failed batch.
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, SubmitRejectsEmptyJob) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(std::function<void()>{}), Error);
}

TEST(ThreadPool, JobsMaySubmitMoreJobs) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&pool, &counter] {
    counter.fetch_add(1);
    pool.submit([&counter] { counter.fetch_add(10); });
  });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 11);
}

TEST(ThreadPool, SingleThreadedPoolStillDrains) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    pool.submit([&order, i] { order.push_back(i); });
  }
  pool.wait_idle();
  // One worker: jobs run in submission order.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace bwshare::util
