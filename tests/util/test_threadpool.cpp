#include "util/threadpool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace bwshare::util {
namespace {

TEST(ThreadPool, RunsEverySubmittedJob) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ZeroThreadsMeansHardware) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1);
  EXPECT_EQ(pool.num_threads(), ThreadPool::hardware_threads());
}

TEST(ThreadPool, HardwareThreadsIsAtLeastOne) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1);
}

TEST(ThreadPool, RejectsAbsurdThreadCounts) {
  // Checked before any thread spawns, so a typo'd --threads fails cleanly
  // instead of exhausting the process rlimit.
  EXPECT_THROW(ThreadPool{4097}, Error);
}

TEST(ThreadPool, ParallelForCoversEachIndexOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(57);
  parallel_for(pool, 57, [&hits](int i) {
    hits[static_cast<size_t>(i)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIterationsIsANoOp) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](int) { FAIL() << "must not run"; });
}

TEST(ThreadPool, WaitIdleRethrowsFirstJobException) {
  ThreadPool pool(2);
  pool.submit([] { throw Error("job failed"); });
  EXPECT_THROW(pool.wait_idle(), Error);
  // The pool stays usable after a failed batch.
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, SubmitRejectsEmptyJob) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(std::function<void()>{}), Error);
}

TEST(ThreadPool, JobsMaySubmitMoreJobs) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&pool, &counter] {
    counter.fetch_add(1);
    pool.submit([&counter] { counter.fetch_add(10); });
  });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 11);
}

TEST(ThreadPool, SingleThreadedPoolStillDrains) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    pool.submit([&order, i] { order.push_back(i); });
  }
  pool.wait_idle();
  // One worker: jobs run in submission order.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, OnWorkerThreadIsPoolSpecific) {
  ThreadPool a(1);
  ThreadPool b(1);
  EXPECT_FALSE(a.on_worker_thread());  // the test thread is no one's worker
  bool a_in_a = false;
  bool b_in_a = false;
  a.submit([&] {
    a_in_a = a.on_worker_thread();
    b_in_a = b.on_worker_thread();
  });
  a.wait_idle();
  EXPECT_TRUE(a_in_a);
  EXPECT_FALSE(b_in_a);
}

TEST(TaskGroup, WaitOnEmptyGroupReturnsImmediately) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  group.wait();  // nothing submitted: must not block or throw
}

TEST(TaskGroup, RunsASingleTask) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  std::atomic<int> counter{0};
  group.run([&counter] { counter.fetch_add(1); });
  group.wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(TaskGroup, WaitCoversOnlyItsOwnTasks) {
  // Two groups on one pool: waiting on one must not require the other's
  // tasks to have finished (the property wait_idle lacks).
  ThreadPool pool(2);
  TaskGroup fast(pool);
  TaskGroup slow(pool);
  std::atomic<bool> release{false};
  std::atomic<int> fast_done{0};
  slow.run([&release] {
    while (!release.load()) std::this_thread::yield();
  });
  fast.run([&fast_done] { fast_done.fetch_add(1); });
  fast.wait();
  EXPECT_EQ(fast_done.load(), 1);
  release.store(true);
  slow.wait();
}

TEST(TaskGroup, WaitRethrowsFirstTaskException) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  group.run([] { throw Error("task failed"); });
  EXPECT_THROW(group.wait(), Error);
}

TEST(TaskGroup, GroupIsReusableAfterWait) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  std::atomic<int> counter{0};
  group.run([&counter] { counter.fetch_add(1); });
  group.wait();
  // Same group, new batch — including after a failed batch.
  group.run([] { throw Error("batch two fails"); });
  EXPECT_THROW(group.wait(), Error);
  group.run([&counter] { counter.fetch_add(10); });
  group.wait();
  EXPECT_EQ(counter.load(), 11);
}

TEST(TaskGroup, TasksMaySubmitIntoTheirOwnGroupFromAWorker) {
  // Submission from within a pool thread is allowed — only *waiting* from a
  // worker is not (see below).
  ThreadPool pool(2);
  TaskGroup group(pool);
  std::atomic<int> counter{0};
  group.run([&group, &counter] {
    counter.fetch_add(1);
    group.run([&counter] { counter.fetch_add(10); });
  });
  group.wait();
  EXPECT_EQ(counter.load(), 11);
}

TEST(TaskGroup, WaitFromAPoolWorkerThrowsInsteadOfDeadlocking) {
  // A worker blocked in wait() cannot run the queued tasks it waits for;
  // with a 1-thread pool this would deadlock forever, so wait() refuses.
  ThreadPool pool(1);
  TaskGroup outer(pool);
  TaskGroup nested(pool);  // outlives the worker task that submits into it
  std::atomic<bool> threw{false};
  outer.run([&nested, &threw] {
    nested.run([] {});
    try {
      nested.wait();
    } catch (const Error&) {
      threw.store(true);
    }
  });
  outer.wait();
  nested.wait();  // from the test thread: the queued no-op drains fine
  EXPECT_TRUE(threw.load());
}

TEST(TaskGroup, ManyTasksAllRunExactlyOnce) {
  ThreadPool pool(4);
  TaskGroup group(pool);
  std::vector<std::atomic<int>> hits(200);
  for (int i = 0; i < 200; ++i) {
    group.run([&hits, i] { hits[static_cast<size_t>(i)].fetch_add(1); });
  }
  group.wait();
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace bwshare::util
