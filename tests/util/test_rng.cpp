#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace bwshare {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(3.0, 5.0);
    EXPECT_GE(u, 3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, BelowIsInRangeAndRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.below(10)];
  for (int c : counts) {
    EXPECT_GT(c, n / 10 * 0.9);
    EXPECT_LT(c, n / 10 * 1.1);
  }
}

TEST(Rng, NormalHasZeroMeanUnitVariance) {
  Rng rng(13);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, ExponentialHasExpectedMean) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == UINT64_MAX);
  Rng rng(1);
  (void)rng();
}

}  // namespace
}  // namespace bwshare
