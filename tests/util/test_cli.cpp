#include "util/cli.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace bwshare {
namespace {

CliArgs make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return CliArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, SpaceSeparatedValue) {
  const auto args = make({"--size", "20M"});
  EXPECT_EQ(args.get("size", ""), "20M");
}

TEST(Cli, EqualsValue) {
  const auto args = make({"--size=4M"});
  EXPECT_EQ(args.get("size", ""), "4M");
}

TEST(Cli, BooleanFlag) {
  const auto args = make({"--csv"});
  EXPECT_TRUE(args.get_bool("csv", false));
  EXPECT_FALSE(args.get_bool("other", false));
}

TEST(Cli, BooleanBeforeAnotherFlag) {
  const auto args = make({"--verbose", "--size", "3"});
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_EQ(args.get_int("size", 0), 3);
}

TEST(Cli, IntAndDoubleParsing) {
  const auto args = make({"--n", "42", "--x", "2.5"});
  EXPECT_EQ(args.get_int("n", 0), 42);
  EXPECT_DOUBLE_EQ(args.get_double("x", 0.0), 2.5);
}

TEST(Cli, MalformedNumberThrows) {
  const auto args = make({"--n", "abc"});
  EXPECT_THROW((void)args.get_int("n", 0), Error);
  EXPECT_THROW((void)args.get_double("n", 0.0), Error);
}

TEST(Cli, Positional) {
  const auto args = make({"input.scheme", "--csv"});
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "input.scheme");
}

TEST(Cli, Defaults) {
  const auto args = make({});
  EXPECT_EQ(args.get("missing", "dflt"), "dflt");
  EXPECT_EQ(args.get_int("missing", 7), 7);
  EXPECT_FALSE(args.has("missing"));
}

TEST(Cli, UnknownFlagsReportsFlagsOutsideTheAllowlist) {
  const auto args = make({"--network", "gige", "--nodez", "9", "--csv"});
  EXPECT_EQ(args.unknown_flags({"network", "nodes", "csv"}),
            (std::vector<std::string>{"nodez"}));
}

TEST(Cli, UnknownFlagsEmptyWhenAllAllowed) {
  const auto args = make({"--a", "1", "--b", "2"});
  EXPECT_TRUE(args.unknown_flags({"a", "b", "c"}).empty());
  EXPECT_TRUE(make({}).unknown_flags({}).empty());
}

TEST(Cli, UnknownFlagsSortedAlphabetically) {
  const auto args = make({"--zeta", "1", "--alpha", "2"});
  EXPECT_EQ(args.unknown_flags({}),
            (std::vector<std::string>{"alpha", "zeta"}));
}

}  // namespace
}  // namespace bwshare
