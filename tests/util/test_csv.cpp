#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace bwshare::util {
namespace {

TEST(CsvEscape, PlainFieldsPassThrough) {
  EXPECT_EQ(csv_escape("hello"), "hello");
  EXPECT_EQ(csv_escape(""), "");
  EXPECT_EQ(csv_escape("1.25"), "1.25");
}

TEST(CsvEscape, QuotesFieldsWithSeparators) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvWriter, RendersHeaderAndRows) {
  CsvWriter csv({"name", "value"});
  csv.add_row({"alpha", "1"});
  csv.add_row({"with,comma", "2"});
  EXPECT_EQ(csv.render(), "name,value\nalpha,1\n\"with,comma\",2\n");
  EXPECT_EQ(csv.num_rows(), 2u);
}

TEST(CsvWriter, EmptyHeaderThrows) {
  EXPECT_THROW(CsvWriter({}), Error);
}

TEST(CsvWriter, RowWidthMismatchThrows) {
  CsvWriter csv({"a", "b"});
  EXPECT_THROW(csv.add_row({"only-one"}), Error);
  EXPECT_THROW(csv.add_row({"1", "2", "3"}), Error);
}

TEST(CsvWriter, WriteFileRoundTrips) {
  CsvWriter csv({"k", "v"});
  csv.add_row({"x", "1"});
  const std::string path = testing::TempDir() + "bwshare_test_csv.csv";
  csv.write_file(path);
  std::ifstream file(path, std::ios::binary);
  std::stringstream buffer;
  buffer << file.rdbuf();
  EXPECT_EQ(buffer.str(), csv.render());
}

TEST(WriteTextFile, RoundTripsAndErrorsOnBadPath) {
  const std::string path = testing::TempDir() + "bwshare_test_text.txt";
  write_text_file(path, "line1\nline2");
  std::ifstream file(path, std::ios::binary);
  std::stringstream buffer;
  buffer << file.rdbuf();
  EXPECT_EQ(buffer.str(), "line1\nline2");
  EXPECT_THROW(write_text_file("/nonexistent-dir/x.txt", "data"), Error);
}

TEST(JsonEscape, EscapesSpecials) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(json_escape("tab\there"), "tab\\there");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(RowsToJson, NumbersUnquotedStringsQuoted) {
  CsvWriter csv({"name", "value", "note"});
  csv.add_row({"alpha", "1.5", "ok"});
  csv.add_row({"beta", "-2e3", "has \"quote\""});
  EXPECT_EQ(rows_to_json(csv),
            "[\n"
            "  {\"name\": \"alpha\", \"value\": 1.5, \"note\": \"ok\"},\n"
            "  {\"name\": \"beta\", \"value\": -2e3, "
            "\"note\": \"has \\\"quote\\\"\"}\n"
            "]");
}

TEST(RowsToJson, EmptyTableIsEmptyArray) {
  CsvWriter csv({"a"});
  EXPECT_EQ(rows_to_json(csv), "[]");
}

TEST(RowsToJson, InfinityAndEmptyAreStrings) {
  CsvWriter csv({"v"});
  csv.add_row({"inf"});
  csv.add_row({""});
  EXPECT_EQ(rows_to_json(csv),
            "[\n  {\"v\": \"inf\"},\n  {\"v\": \"\"}\n]");
}

TEST(RowsToJson, StrtodAccepteesThatAreNotJsonNumbersStayQuoted) {
  // strtod consumes all of these, but none is a valid RFC 8259 number.
  CsvWriter csv({"v"});
  for (const char* field : {"0x10", "+1", ".5", "01", "1.", "1e", "-"}) {
    csv.add_row({field});
  }
  const std::string json = rows_to_json(csv);
  EXPECT_NE(json.find("\"0x10\""), std::string::npos);
  EXPECT_NE(json.find("\"+1\""), std::string::npos);
  EXPECT_NE(json.find("\".5\""), std::string::npos);
  EXPECT_NE(json.find("\"01\""), std::string::npos);
  EXPECT_NE(json.find("\"1.\""), std::string::npos);
  EXPECT_NE(json.find("\"1e\""), std::string::npos);
  EXPECT_NE(json.find("\"-\""), std::string::npos);
}

TEST(RowsToJson, ValidJsonNumbersStayBare) {
  CsvWriter csv({"v"});
  for (const char* field : {"0", "-0.5", "10", "2.25", "1e9", "-3E-2"}) {
    csv.add_row({field});
  }
  const std::string json = rows_to_json(csv);
  for (const char* token :
       {"\"v\": 0}", "\"v\": -0.5}", "\"v\": 10}", "\"v\": 2.25}",
        "\"v\": 1e9}", "\"v\": -3E-2}"}) {
    EXPECT_NE(json.find(token), std::string::npos) << json;
  }
}

}  // namespace
}  // namespace bwshare::util
