// util::try_parse_long / try_parse_u64 and the throwing wrappers, plus one
// integration test per consolidated call site (cli, scheme_parser,
// generator, trace_io, sweep) pinning that site's overflow / trailing
// garbage / sign / empty-string error messages. Before the consolidation
// only scheme_parser checked ERANGE; these tests keep every site honest.
#include "util/parse.hpp"

#include <cstdint>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "eval/sweep.hpp"
#include "graph/generator.hpp"
#include "graph/scheme_parser.hpp"
#include "sim/trace_io.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

namespace bwshare {
namespace {

/// Run `fn` expecting a bwshare::Error whose message contains `needle`.
template <typename Fn>
void expect_error(Fn&& fn, const std::string& needle) {
  try {
    fn();
    FAIL() << "expected an Error containing \"" << needle << "\"";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "error message was: " << e.what();
  }
}

// ---------------------------------------------------------------- core API

TEST(ParseLong, AcceptsPlainAndSignedDecimals) {
  long v = 0;
  EXPECT_EQ(try_parse_long("0", v), ParseIntStatus::kOk);
  EXPECT_EQ(v, 0);
  EXPECT_EQ(try_parse_long("42", v), ParseIntStatus::kOk);
  EXPECT_EQ(v, 42);
  EXPECT_EQ(try_parse_long("+7", v), ParseIntStatus::kOk);
  EXPECT_EQ(v, 7);
  EXPECT_EQ(try_parse_long("-19", v), ParseIntStatus::kOk);
  EXPECT_EQ(v, -19);
}

TEST(ParseLong, RejectsEmptyAndLoneSign) {
  long v = 123;
  EXPECT_EQ(try_parse_long("", v), ParseIntStatus::kMalformed);
  EXPECT_EQ(try_parse_long("+", v), ParseIntStatus::kMalformed);
  EXPECT_EQ(try_parse_long("-", v), ParseIntStatus::kMalformed);
  EXPECT_EQ(v, 123) << "out must be untouched on failure";
}

TEST(ParseLong, RejectsTrailingGarbageAndEmbeddedText) {
  long v = 0;
  EXPECT_EQ(try_parse_long("12x", v), ParseIntStatus::kMalformed);
  EXPECT_EQ(try_parse_long("1.5", v), ParseIntStatus::kMalformed);
  EXPECT_EQ(try_parse_long("1 2", v), ParseIntStatus::kMalformed);
  EXPECT_EQ(try_parse_long("abc", v), ParseIntStatus::kMalformed);
}

TEST(ParseLong, RejectsLeadingWhitespaceUnlikeRawStrtol) {
  long v = 0;
  EXPECT_EQ(try_parse_long(" 5", v), ParseIntStatus::kMalformed);
  EXPECT_EQ(try_parse_long("\t5", v), ParseIntStatus::kMalformed);
  EXPECT_EQ(try_parse_long("5 ", v), ParseIntStatus::kMalformed);
}

TEST(ParseLong, RejectsHexAndOctalPrefixes) {
  long v = 0;
  // Base is pinned to 10: "0x10" stops at the 'x' -> trailing garbage.
  EXPECT_EQ(try_parse_long("0x10", v), ParseIntStatus::kMalformed);
  // "010" is plain decimal ten, never octal eight.
  EXPECT_EQ(try_parse_long("010", v), ParseIntStatus::kOk);
  EXPECT_EQ(v, 10);
}

TEST(ParseLong, ReportsErangeOverflowAsOutOfRange) {
  long v = 77;
  // 20 nines overflows even 64-bit long (max ~9.2e18).
  EXPECT_EQ(try_parse_long("99999999999999999999", v),
            ParseIntStatus::kOutOfRange);
  EXPECT_EQ(try_parse_long("-99999999999999999999", v),
            ParseIntStatus::kOutOfRange);
  EXPECT_EQ(v, 77) << "out must be untouched on failure";
}

TEST(ParseLong, EnforcesCallerBoundsInclusive) {
  long v = 0;
  EXPECT_EQ(try_parse_long("10", v, 1, 10), ParseIntStatus::kOk);
  EXPECT_EQ(try_parse_long("1", v, 1, 10), ParseIntStatus::kOk);
  EXPECT_EQ(try_parse_long("0", v, 1, 10), ParseIntStatus::kOutOfRange);
  EXPECT_EQ(try_parse_long("11", v, 1, 10), ParseIntStatus::kOutOfRange);
  EXPECT_EQ(try_parse_long("-5", v, 0, 100), ParseIntStatus::kOutOfRange);
}

TEST(ParseU64, AcceptsDigitsOnly) {
  std::uint64_t v = 0;
  EXPECT_EQ(try_parse_u64("0", v), ParseIntStatus::kOk);
  EXPECT_EQ(v, 0u);
  EXPECT_EQ(try_parse_u64("18446744073709551615", v), ParseIntStatus::kOk);
  EXPECT_EQ(v, std::numeric_limits<std::uint64_t>::max());
}

TEST(ParseU64, RejectsSignsEntirely) {
  // strtoull would wrap "-1" into 2^64-1; the digits-only contract forbids
  // any sign, including "+".
  std::uint64_t v = 9;
  EXPECT_EQ(try_parse_u64("-1", v), ParseIntStatus::kMalformed);
  EXPECT_EQ(try_parse_u64("+1", v), ParseIntStatus::kMalformed);
  EXPECT_EQ(v, 9u);
}

TEST(ParseU64, RejectsEmptyGarbageAndOverflow) {
  std::uint64_t v = 0;
  EXPECT_EQ(try_parse_u64("", v), ParseIntStatus::kMalformed);
  EXPECT_EQ(try_parse_u64("12x", v), ParseIntStatus::kMalformed);
  EXPECT_EQ(try_parse_u64(" 1", v), ParseIntStatus::kMalformed);
  // 2^64 exactly: one past max.
  EXPECT_EQ(try_parse_u64("18446744073709551616", v),
            ParseIntStatus::kOutOfRange);
}

TEST(ParseThrowing, ParseLongPhrasesErrorsLikeSchemeParser) {
  EXPECT_EQ(parse_long("-3", "offset"), -3);
  expect_error([] { (void)parse_long("1.5", "offset"); },
               "offset must be an integer, got '1.5'");
  expect_error([] { (void)parse_long("", "offset"); },
               "offset must be an integer, got ''");
  expect_error([] { (void)parse_long("99999999999999999999", "offset"); },
               "offset out of range: '99999999999999999999'");
}

TEST(ParseThrowing, ParseIntNeverWrapsThroughTheIntCast) {
  EXPECT_EQ(parse_int("2147483647", "count"), 2147483647);
  // 2^31 (one past INT_MAX) and 2^32+2 (wraps to 2 if cast blindly).
  expect_error([] { (void)parse_int("2147483648", "count"); },
               "count out of range: '2147483648'");
  expect_error([] { (void)parse_int("4294967298", "count"); },
               "count out of range: '4294967298'");
  expect_error([] { (void)parse_int("-2147483649", "count"); },
               "count out of range: '-2147483649'");
}

// ----------------------------------------------------- call-site messages

TEST(ParseCallSites, CliFlagMessages) {
  const auto get = [](const char* value) {
    const char* argv[] = {"prog", "--n", value};
    return CliArgs(3, argv).get_int("n", 0);
  };
  EXPECT_EQ(get("-12"), -12);
  expect_error([&] { (void)get("1x"); },
               "flag --n expects an integer, got '1x'");
  expect_error([&] { (void)get("99999999999999999999"); },
               "flag --n integer out of range: '99999999999999999999'");
}

TEST(ParseCallSites, SchemeParserMessages) {
  // These three rows also appear in docs/SCHEME_DSL.md "Rejected examples".
  expect_error([] { (void)graph::parse_scheme("comm a 1.5 -> 2\n"); },
               "line 1: source node must be an integer, got '1.5'");
  expect_error(
      [] { (void)graph::parse_scheme("nodes 99999999999999999999\n"); },
      "node count out of range: '99999999999999999999'");
  expect_error([] { (void)graph::parse_scheme("comm a 4294967296 -> 2\n"); },
               "source node out of range: '4294967296'");
}

TEST(ParseCallSites, GeneratorSpecMessages) {
  expect_error([] { (void)graph::parse_generator_spec("ring:nodes=8x"); },
               "generator: nodes expects an integer, got '8x'");
  expect_error([] { (void)graph::parse_generator_spec("ring:nodes="); },
               "generator: nodes expects an integer, got ''");
  expect_error([] { (void)graph::parse_generator_spec("ring:nodes=4294967298"); },
               "generator: nodes value '4294967298' is out of range");
  expect_error(
      [] { (void)graph::parse_generator_spec(
               "random:comms=99999999999999999999"); },
      "generator: comms value '99999999999999999999' is out of range");
}

TEST(ParseCallSites, TraceIoMessages) {
  expect_error([] { (void)sim::read_trace("tasks two\n"); },
               "trace line 1: malformed task count 'two'");
  expect_error([] { (void)sim::read_trace("tasks 99999999999999999999\n"); },
               "trace line 1: task count out of range");
  expect_error([] { (void)sim::read_trace("tasks -2\n"); },
               "trace line 1: task count out of range");
  expect_error([] { (void)sim::read_trace("tasks 2\n1.5 barrier\n"); },
               "trace line 2: malformed task id '1.5'");
  expect_error([] { (void)sim::read_trace("tasks 2\n-1 barrier\n"); },
               "trace line 2: task id out of range");
  expect_error(
      [] { (void)sim::read_trace("tasks 2\n99999999999999999999 barrier\n"); },
      "trace line 2: task id out of range");
}

TEST(ParseCallSites, SweepShapeMessages) {
  expect_error([] { (void)eval::parse_sweep_shape("8.5x2"); },
               "shape '8.5x2': bad node count '8.5'");
  expect_error([] { (void)eval::parse_sweep_shape("x2"); },
               "shape 'x2': bad node count ''");
  expect_error([] { (void)eval::parse_sweep_shape("4294967298x2"); },
               "shape '4294967298x2': bad node count '4294967298'");
  expect_error([] { (void)eval::parse_sweep_shape("8x-2"); },
               "shape '8x-2': bad core count '-2'");
  expect_error([] { (void)eval::parse_sweep_shape("8x99999999999999999999"); },
               "shape '8x99999999999999999999': bad core count "
               "'99999999999999999999'");
}

}  // namespace
}  // namespace bwshare
