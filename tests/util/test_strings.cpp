#include "util/strings.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/units.hpp"

namespace bwshare {
namespace {

TEST(Strings, Strformat) {
  EXPECT_EQ(strformat("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
  EXPECT_EQ(strformat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(strformat("empty"), "empty");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Strings, SplitWsDropsEmpty) {
  const auto parts = split_ws("  a \t b\n c  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n "), "");
  EXPECT_EQ(trim("no-op"), "no-op");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("--flag", "--"));
  EXPECT_FALSE(starts_with("-", "--"));
}

TEST(Strings, HumanBytes) {
  EXPECT_EQ(human_bytes(512), "512 B");
  EXPECT_EQ(human_bytes(2048), "2 KiB");
  EXPECT_EQ(human_bytes(3.5 * MiB), "3.5 MiB");
}

TEST(Strings, HumanSeconds) {
  EXPECT_EQ(human_seconds(2.5), "2.5 s");
  EXPECT_EQ(human_seconds(0.012), "12 ms");
  EXPECT_EQ(human_seconds(3e-6), "3 us");
}

TEST(Strings, ParseSizePlain) {
  EXPECT_DOUBLE_EQ(parse_size("64"), 64.0);
  EXPECT_DOUBLE_EQ(parse_size("64B"), 64.0);
}

TEST(Strings, ParseSizeDecimalSuffixes) {
  EXPECT_DOUBLE_EQ(parse_size("20M"), 20e6);
  EXPECT_DOUBLE_EQ(parse_size("1.5G"), 1.5e9);
  EXPECT_DOUBLE_EQ(parse_size("512k"), 512e3);
}

TEST(Strings, ParseSizeBinarySuffixes) {
  EXPECT_DOUBLE_EQ(parse_size("4MiB"), 4.0 * MiB);
  EXPECT_DOUBLE_EQ(parse_size("2KiB"), 2048.0);
  EXPECT_DOUBLE_EQ(parse_size("1GiB"), GiB);
}

TEST(Strings, ParseSizeRejectsGarbage) {
  EXPECT_THROW((void)parse_size(""), Error);
  EXPECT_THROW((void)parse_size("abc"), Error);
  EXPECT_THROW((void)parse_size("12XB"), Error);
}

}  // namespace
}  // namespace bwshare
