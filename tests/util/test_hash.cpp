// util::StructuralHash — the mixer under the serve fingerprints and the
// engine's component-solution memo keys.
//
// The core test is an independent reference implementation (written from
// the algorithm description in util/hash.hpp, not by calling the library):
// a property fuzz drives both through random mix sequences and demands
// equal digests. That pins the algorithm itself — a "refactor" that changes
// the framing or constants fails here even if it is internally consistent.
// Stability across *releases* is deliberately NOT pinned: the documented
// contract is stability within one build only, digests must never be
// persisted (util/hash.hpp, docs/SERVING.md).
#include "util/hash.hpp"

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace bwshare::util {
namespace {

// ---------------------------------------------------------------------------
// Reference implementation, independent of the library code. Mirrors the
// spec in util/hash.hpp: state starts at the golden-ratio seed; absorb(w)
// xors and runs one splitmix64 step; strings are length-prefixed and packed
// into little-endian 8-byte chunks; digest is a non-advancing final step.

uint64_t ref_splitmix64_step(uint64_t s) {
  s += 0x9e3779b97f4a7c15ULL;
  uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

struct RefHash {
  uint64_t state = 0x9e3779b97f4a7c15ULL;

  void absorb(uint64_t w) { state = ref_splitmix64_step(state ^ w); }

  void str(const std::string& s) {
    absorb(s.size());
    for (size_t base = 0; base < s.size(); base += 8) {
      uint64_t w = 0;
      for (size_t i = 0; i < 8 && base + i < s.size(); ++i) {
        w |= static_cast<uint64_t>(static_cast<unsigned char>(s[base + i]))
             << (8 * i);
      }
      absorb(w);
    }
  }

  [[nodiscard]] uint64_t digest() const {
    return ref_splitmix64_step(state);
  }
};

uint64_t f64_bits(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  __builtin_memcpy(&bits, &v, sizeof(bits));
  return bits;
}

// ---------------------------------------------------------------------------

TEST(StructuralHash, MatchesReferenceOnHandBuiltSequence) {
  StructuralHash h;
  RefHash ref;
  h.mix_str("bwshare.serve.query.v1");
  ref.str("bwshare.serve.query.v1");
  h.mix_u64(42);
  ref.absorb(42);
  h.mix_i64(-7);
  ref.absorb(static_cast<uint64_t>(int64_t{-7}));
  h.mix_f64(3.5);
  ref.absorb(f64_bits(3.5));
  h.mix_bool(true);
  ref.absorb(1);
  h.mix_bool(false);
  ref.absorb(0);
  EXPECT_EQ(h.digest(), ref.digest());
}

// The property fuzz: random interleavings of every mix kind, including
// awkward strings (empty, exactly 8 bytes, embedded NULs, >8 bytes) and
// awkward doubles (zeros, infinities, denormals).
TEST(StructuralHash, MatchesReferenceUnderFuzz) {
  Rng rng(20260808);
  const double specials[] = {0.0,
                             -0.0,
                             1.0,
                             -1.0,
                             std::numeric_limits<double>::infinity(),
                             -std::numeric_limits<double>::infinity(),
                             std::numeric_limits<double>::denorm_min(),
                             std::numeric_limits<double>::max()};
  for (int round = 0; round < 200; ++round) {
    StructuralHash h;
    RefHash ref;
    const int ops = 1 + static_cast<int>(rng.below(24));
    for (int op = 0; op < ops; ++op) {
      switch (rng.below(5)) {
        case 0: {
          const uint64_t v = rng();
          h.mix_u64(v);
          ref.absorb(v);
          break;
        }
        case 1: {
          const auto v = static_cast<int64_t>(rng());
          h.mix_i64(v);
          ref.absorb(static_cast<uint64_t>(v));
          break;
        }
        case 2: {
          const double v = rng.uniform() < 0.3
                               ? specials[rng.below(8)]
                               : rng.uniform(-1e9, 1e9);
          h.mix_f64(v);
          ref.absorb(f64_bits(v));
          break;
        }
        case 3: {
          const bool v = rng.below(2) == 1;
          h.mix_bool(v);
          ref.absorb(v ? 1 : 0);
          break;
        }
        default: {
          std::string s;
          const size_t len = rng.below(21);  // crosses the 8-byte chunking
          for (size_t i = 0; i < len; ++i) {
            s.push_back(static_cast<char>(rng.below(256)));  // NULs included
          }
          h.mix_str(s);
          ref.str(s);
          break;
        }
      }
      // Mid-sequence digests must agree too (digest is non-advancing).
      ASSERT_EQ(h.digest(), ref.digest()) << "round " << round;
    }
  }
}

TEST(StructuralHash, DigestDoesNotAdvanceState) {
  StructuralHash h;
  h.mix_u64(1);
  const uint64_t d1 = h.digest();
  EXPECT_EQ(h.digest(), d1);  // repeated digests identical
  h.mix_u64(2);
  StructuralHash straight;
  straight.mix_u64(1);
  straight.mix_u64(2);
  // Taking a digest in between must not change the final digest.
  EXPECT_EQ(h.digest(), straight.digest());
}

TEST(StructuralHash, OrderAndValueSensitivity) {
  StructuralHash ab;
  ab.mix_u64(1);
  ab.mix_u64(2);
  StructuralHash ba;
  ba.mix_u64(2);
  ba.mix_u64(1);
  EXPECT_NE(ab.digest(), ba.digest());

  StructuralHash x;
  x.mix_u64(1);
  StructuralHash y;
  y.mix_u64(1);
  y.mix_u64(0);
  EXPECT_NE(x.digest(), y.digest());  // absorbing zero is not a no-op
}

TEST(StructuralHash, StringFramingIsLengthPrefixed) {
  StructuralHash split;
  split.mix_str("ab");
  split.mix_str("c");
  StructuralHash joined;
  joined.mix_str("a");
  joined.mix_str("bc");
  EXPECT_NE(split.digest(), joined.digest());

  StructuralHash empty;
  empty.mix_str("");
  StructuralHash nothing;
  EXPECT_NE(empty.digest(), nothing.digest());  // "" absorbs its length
}

TEST(StructuralHash, DoublesHashByBitPattern) {
  StructuralHash pos;
  pos.mix_f64(0.0);
  StructuralHash neg;
  neg.mix_f64(-0.0);
  EXPECT_NE(pos.digest(), neg.digest());

  // No type tagging (documented): mix_u64 of the bit pattern is the same
  // absorption. Callers frame with salts/markers, not the mixer.
  StructuralHash as_f64;
  as_f64.mix_f64(1.5);
  StructuralHash as_u64;
  as_u64.mix_u64(f64_bits(1.5));
  EXPECT_EQ(as_f64.digest(), as_u64.digest());
}

TEST(StructuralHash, HashWordsMatchesManualSequence) {
  StructuralHash h;
  h.mix_u64(3);
  h.mix_u64(5);
  h.mix_u64(7);
  EXPECT_EQ(hash_words({3, 5, 7}), h.digest());
}

TEST(StructuralHash, HexIsFixedWidthLowercase) {
  EXPECT_EQ(hash_hex(0), "0000000000000000");
  EXPECT_EQ(hash_hex(0xDEADBEEFULL), "00000000deadbeef");
  EXPECT_EQ(hash_hex(std::numeric_limits<uint64_t>::max()),
            "ffffffffffffffff");
}

}  // namespace
}  // namespace bwshare::util
