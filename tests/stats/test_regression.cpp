#include "stats/regression.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace bwshare::stats {
namespace {

TEST(Regression, ExactLine) {
  const std::vector<double> x{0.0, 1.0, 2.0, 3.0};
  const std::vector<double> y{1.0, 3.0, 5.0, 7.0};
  const auto fit = fit_linear(x, y);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Regression, NoisyLineRecoversSlope) {
  Rng rng(3);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 500; ++i) {
    const double xi = static_cast<double>(i) / 50.0;
    x.push_back(xi);
    y.push_back(0.5 + 3.0 * xi + rng.normal() * 0.1);
  }
  const auto fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 3.0, 0.05);
  EXPECT_NEAR(fit.intercept, 0.5, 0.05);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(Regression, ConstantYGivesZeroSlope) {
  const std::vector<double> x{1.0, 2.0, 3.0};
  const std::vector<double> y{4.0, 4.0, 4.0};
  const auto fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 0.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(fit.r_squared, 1.0);  // degenerate: fit is exact
}

TEST(Regression, Validation) {
  const std::vector<double> one{1.0};
  EXPECT_THROW((void)fit_linear(one, one), Error);
  const std::vector<double> same_x{2.0, 2.0};
  const std::vector<double> y{1.0, 2.0};
  EXPECT_THROW((void)fit_linear(same_x, y), Error);
}

TEST(Regression, ProportionalFit) {
  // β-style estimation: y = 0.75 x exactly.
  const std::vector<double> x{2.0, 3.0, 4.0};
  const std::vector<double> y{1.5, 2.25, 3.0};
  EXPECT_NEAR(fit_proportional(x, y), 0.75, 1e-12);
}

TEST(Regression, ProportionalValidation) {
  const std::vector<double> zero{0.0};
  EXPECT_THROW((void)fit_proportional(zero, zero), Error);
  EXPECT_THROW((void)fit_proportional({}, {}), Error);
}

}  // namespace
}  // namespace bwshare::stats
