#include "stats/descriptive.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace bwshare::stats {
namespace {

TEST(Accumulator, BasicMoments) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(Accumulator, EmptyIsSafe) {
  const Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, MergeMatchesBulk) {
  Rng rng(5);
  Accumulator whole;
  Accumulator left;
  Accumulator right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal() * 3.0 + 1.0;
    whole.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Descriptive, MeanAndStddev) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(stddev(xs), 1.2909944, 1e-6);
}

TEST(Descriptive, MedianAndPercentiles) {
  const std::vector<double> xs{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(median(xs), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 2.0);
}

TEST(Descriptive, PercentileInterpolates) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 75.0), 7.5);
}

TEST(Descriptive, PercentileValidation) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW((void)percentile({}, 50.0), Error);
  EXPECT_THROW((void)percentile(xs, -1.0), Error);
  EXPECT_THROW((void)percentile(xs, 101.0), Error);
}

TEST(Descriptive, MeanAbs) {
  const std::vector<double> xs{-2.0, 2.0, -4.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 0.0);
  EXPECT_DOUBLE_EQ(mean_abs(xs), 3.0);
}

TEST(Descriptive, Rmse) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(rmse(a, b), 0.0);
  const std::vector<double> c{2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(rmse(a, c), 1.0);
  EXPECT_THROW((void)rmse(a, std::vector<double>{1.0}), Error);
}

TEST(Descriptive, Pearson) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  const std::vector<double> inv{8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson(x, inv), -1.0, 1e-12);
  const std::vector<double> flat{1.0, 1.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(pearson(x, flat), 0.0);
}

}  // namespace
}  // namespace bwshare::stats
