// Property/fuzz tests for the descriptive-statistics layer: seeded random
// series checked against closed-form references. These are the primitives
// the campaign verdicts ultimately reduce to, so they get the same
// adversarial treatment as the simulator cores (sim/test_engine_fuzz.cpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/descriptive.hpp"
#include "stats/histogram.hpp"
#include "stats/regression.hpp"
#include "util/rng.hpp"

namespace bwshare::stats {
namespace {

std::vector<double> random_series(uint64_t seed, size_t n, double lo,
                                  double hi) {
  Rng rng(seed);
  std::vector<double> xs;
  xs.reserve(n);
  for (size_t i = 0; i < n; ++i) xs.push_back(rng.uniform(lo, hi));
  return xs;
}

// Naive two-pass references the online accumulator must agree with.
double ref_mean(const std::vector<double>& xs) {
  double s = 0.0;
  for (const double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double ref_variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = ref_mean(xs);
  double s = 0.0;
  for (const double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

TEST(StatsFuzz, AccumulatorMatchesBatchReferencesOnRandomSeries) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    const size_t n = 2 + rng.below(500);
    const auto xs = random_series(seed * 977, n, -1e3, 1e3);
    Accumulator acc;
    for (const double x : xs) acc.add(x);
    ASSERT_EQ(acc.count(), xs.size());
    EXPECT_NEAR(acc.mean(), ref_mean(xs), 1e-9) << "seed " << seed;
    EXPECT_NEAR(acc.variance(), ref_variance(xs),
                1e-6 * std::max(1.0, ref_variance(xs)))
        << "seed " << seed;
    EXPECT_DOUBLE_EQ(acc.stddev(), std::sqrt(acc.variance()));
    EXPECT_DOUBLE_EQ(acc.min(), *std::min_element(xs.begin(), xs.end()));
    EXPECT_DOUBLE_EQ(acc.max(), *std::max_element(xs.begin(), xs.end()));
    EXPECT_NEAR(acc.sum(), ref_mean(xs) * static_cast<double>(n),
                1e-6 * std::max(1.0, std::fabs(acc.sum())));
    // Batch helpers see the same data, so they must agree too.
    EXPECT_NEAR(mean(xs), acc.mean(), 1e-9);
    EXPECT_NEAR(variance(xs), acc.variance(),
                1e-6 * std::max(1.0, acc.variance()));
  }
}

TEST(StatsFuzz, AccumulatorMergeOfSplitsEqualsTheWhole) {
  // merge() is how parallel reductions combine per-thread accumulators:
  // any split point must reproduce the single-pass result.
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    Rng rng(seed * 31);
    const size_t n = 2 + rng.below(300);
    const size_t cut = 1 + rng.below(n - 1);
    const auto xs = random_series(seed * 131, n, -50.0, 200.0);
    Accumulator whole;
    for (const double x : xs) whole.add(x);
    Accumulator left;
    Accumulator right;
    for (size_t i = 0; i < cut; ++i) left.add(xs[i]);
    for (size_t i = cut; i < n; ++i) right.add(xs[i]);
    left.merge(right);
    ASSERT_EQ(left.count(), whole.count());
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), whole.variance(),
                1e-6 * std::max(1.0, whole.variance()));
    EXPECT_DOUBLE_EQ(left.min(), whole.min());
    EXPECT_DOUBLE_EQ(left.max(), whole.max());
    // Merging an empty accumulator is the identity, both ways.
    Accumulator empty;
    Accumulator copy = whole;
    copy.merge(empty);
    EXPECT_EQ(copy.count(), whole.count());
    EXPECT_DOUBLE_EQ(copy.mean(), whole.mean());
    empty.merge(whole);
    EXPECT_EQ(empty.count(), whole.count());
    EXPECT_DOUBLE_EQ(empty.mean(), whole.mean());
  }
}

TEST(StatsFuzz, HistogramMatchesDirectCountsAndClampsOutliers) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const double lo = -2.0;
    const double hi = 3.0;
    const size_t bins = 7;
    // Sample beyond [lo, hi) on purpose: outliers clamp to the edge bins.
    const auto xs = random_series(seed * 53, 400, lo - 1.0, hi + 1.0);
    Histogram hist(lo, hi, bins);
    hist.add_all(xs);
    ASSERT_EQ(hist.total(), xs.size());
    ASSERT_EQ(hist.num_bins(), bins);
    const double width = (hi - lo) / static_cast<double>(bins);
    size_t recounted = 0;
    for (size_t b = 0; b < bins; ++b) {
      EXPECT_NEAR(hist.bin_low(b), lo + width * static_cast<double>(b), 1e-12);
      EXPECT_NEAR(hist.bin_high(b), lo + width * static_cast<double>(b + 1),
                  1e-12);
      size_t expected = 0;
      for (const double x : xs) {
        // The clamping reference: bin index by offset, pinned to [0, bins).
        const auto idx = static_cast<long>(std::floor((x - lo) / width));
        const size_t clamped = static_cast<size_t>(
            std::clamp(idx, 0l, static_cast<long>(bins) - 1));
        if (clamped == b) ++expected;
      }
      EXPECT_EQ(hist.bin_count(b), expected) << "seed " << seed << " bin " << b;
      recounted += hist.bin_count(b);
    }
    EXPECT_EQ(recounted, xs.size());  // clamping loses nothing
  }
}

TEST(StatsFuzz, LinearFitRecoversPlantedLineExactly) {
  // Noiseless y = a + b*x must come back to machine precision for any
  // random (a, b, x-design) — OLS is exact on exact data.
  for (uint64_t seed = 1; seed <= 15; ++seed) {
    Rng rng(seed * 7);
    const double a = rng.uniform(-10.0, 10.0);
    const double b = rng.uniform(-5.0, 5.0);
    const auto x = random_series(seed * 211, 40, -20.0, 20.0);
    std::vector<double> y;
    for (const double xi : x) y.push_back(a + b * xi);
    const auto fit = fit_linear(x, y);
    EXPECT_NEAR(fit.intercept, a, 1e-8) << "seed " << seed;
    EXPECT_NEAR(fit.slope, b, 1e-9) << "seed " << seed;
    EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
  }
}

TEST(StatsFuzz, LinearFitNearRecoveryUnderNoise) {
  Rng rng(99);
  const double a = 2.5;
  const double b = -1.25;
  const auto x = random_series(4242, 400, 0.0, 10.0);
  std::vector<double> y;
  for (const double xi : x) y.push_back(a + b * xi + 0.1 * rng.normal());
  const auto fit = fit_linear(x, y);
  // sigma 0.1 over 400 points across a 10-wide design: both coefficients
  // land within a few standard errors.
  EXPECT_NEAR(fit.intercept, a, 0.1);
  EXPECT_NEAR(fit.slope, b, 0.02);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(StatsFuzz, ProportionalFitMatchesClosedForm) {
  // fit_proportional is sum(x*y)/sum(x^2) — check against that formula on
  // random data, and against the planted slope on noiseless data.
  for (uint64_t seed = 1; seed <= 15; ++seed) {
    const auto x = random_series(seed * 17, 60, 0.1, 30.0);
    const auto y = random_series(seed * 19 + 1, 60, -5.0, 5.0);
    double sxy = 0.0;
    double sxx = 0.0;
    for (size_t i = 0; i < x.size(); ++i) {
      sxy += x[i] * y[i];
      sxx += x[i] * x[i];
    }
    EXPECT_NEAR(fit_proportional(x, y), sxy / sxx, 1e-9) << "seed " << seed;

    Rng rng(seed);
    const double b = rng.uniform(-4.0, 4.0);
    std::vector<double> exact;
    for (const double xi : x) exact.push_back(b * xi);
    EXPECT_NEAR(fit_proportional(x, exact), b, 1e-9);
  }
}

}  // namespace
}  // namespace bwshare::stats
