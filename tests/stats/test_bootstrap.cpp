#include "stats/bootstrap.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "stats/descriptive.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace bwshare::stats {
namespace {

TEST(Bootstrap, MeanCiCoversTruth) {
  Rng rng(21);
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(10.0 + rng.normal());
  const auto ci = bootstrap_mean_ci(xs, 500);
  EXPECT_NEAR(ci.point, 10.0, 0.3);
  EXPECT_LT(ci.low, ci.point);
  EXPECT_GT(ci.high, ci.point);
  EXPECT_LE(ci.low, 10.2);
  EXPECT_GE(ci.high, 9.8);
}

TEST(Bootstrap, ConstantSeriesHasDegenerateInterval) {
  const std::vector<double> xs(50, 3.0);
  const auto ci = bootstrap_mean_ci(xs, 200);
  EXPECT_DOUBLE_EQ(ci.low, 3.0);
  EXPECT_DOUBLE_EQ(ci.high, 3.0);
  EXPECT_DOUBLE_EQ(ci.point, 3.0);
}

TEST(Bootstrap, DeterministicForSameSeed) {
  Rng rng(2);
  std::vector<double> xs;
  for (int i = 0; i < 40; ++i) xs.push_back(rng.uniform());
  const auto a = bootstrap_mean_ci(xs, 300, 0.95, 7);
  const auto b = bootstrap_mean_ci(xs, 300, 0.95, 7);
  EXPECT_DOUBLE_EQ(a.low, b.low);
  EXPECT_DOUBLE_EQ(a.high, b.high);
}

TEST(Bootstrap, CustomStatistic) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 100.0};
  const auto ci = bootstrap_ci(
      xs, [](std::span<const double> s) { return median(s); }, 300);
  EXPECT_LE(ci.low, ci.point);
  EXPECT_GE(ci.high, ci.point);
  EXPECT_DOUBLE_EQ(ci.point, 3.0);
}

TEST(Bootstrap, Validation) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW((void)bootstrap_mean_ci({}, 100), Error);
  EXPECT_THROW((void)bootstrap_ci(
                   xs, [](std::span<const double>) { return 0.0; }, 100, 1.5),
               Error);
}

}  // namespace
}  // namespace bwshare::stats
