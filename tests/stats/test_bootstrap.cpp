#include "stats/bootstrap.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "stats/descriptive.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace bwshare::stats {
namespace {

TEST(Bootstrap, MeanCiCoversTruth) {
  Rng rng(21);
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(10.0 + rng.normal());
  const auto ci = bootstrap_mean_ci(xs, 500);
  EXPECT_NEAR(ci.point, 10.0, 0.3);
  EXPECT_LT(ci.low, ci.point);
  EXPECT_GT(ci.high, ci.point);
  EXPECT_LE(ci.low, 10.2);
  EXPECT_GE(ci.high, 9.8);
}

TEST(Bootstrap, ConstantSeriesHasDegenerateInterval) {
  const std::vector<double> xs(50, 3.0);
  const auto ci = bootstrap_mean_ci(xs, 200);
  EXPECT_DOUBLE_EQ(ci.low, 3.0);
  EXPECT_DOUBLE_EQ(ci.high, 3.0);
  EXPECT_DOUBLE_EQ(ci.point, 3.0);
}

TEST(Bootstrap, DeterministicForSameSeed) {
  Rng rng(2);
  std::vector<double> xs;
  for (int i = 0; i < 40; ++i) xs.push_back(rng.uniform());
  const auto a = bootstrap_mean_ci(xs, 300, 0.95, 7);
  const auto b = bootstrap_mean_ci(xs, 300, 0.95, 7);
  EXPECT_DOUBLE_EQ(a.low, b.low);
  EXPECT_DOUBLE_EQ(a.high, b.high);
}

TEST(Bootstrap, CustomStatistic) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 100.0};
  const auto ci = bootstrap_ci(
      xs, [](std::span<const double> s) { return median(s); }, 300);
  EXPECT_LE(ci.low, ci.point);
  EXPECT_GE(ci.high, ci.point);
  EXPECT_DOUBLE_EQ(ci.point, 3.0);
}

TEST(Bootstrap, EmptySeriesThrowsInvalidArgumentWithPinnedMessage) {
  // Documented contract (stats/bootstrap.hpp): catchable, typed, and with
  // a stable message — distinct from bwshare::Error.
  try {
    (void)bootstrap_mean_ci({}, 100);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "bootstrap_ci: empty series");
  }
}

TEST(Bootstrap, ZeroResamplesThrowsInvalidArgumentWithPinnedMessage) {
  // resamples == 0 used to return a silent degenerate interval; the
  // documented contract now is a typed, catchable precondition failure.
  const std::vector<double> xs{1.0, 2.0, 3.0};
  try {
    (void)bootstrap_mean_ci(xs, /*resamples=*/0);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "bootstrap_ci: resamples must be positive");
  } catch (const Error&) {
    FAIL() << "zero resamples must not throw bwshare::Error";
  }
}

TEST(Bootstrap, EmptySeriesIsNotABwshareError) {
  EXPECT_THROW((void)bootstrap_mean_ci({}, 100), std::invalid_argument);
  try {
    (void)bootstrap_mean_ci({}, 100);
  } catch (const Error&) {
    FAIL() << "empty series must not throw bwshare::Error";
  } catch (const std::invalid_argument&) {
    // expected
  }
}

TEST(Bootstrap, Validation) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW((void)bootstrap_ci(
                   xs, [](std::span<const double>) { return 0.0; }, 100, 1.5),
               Error);
  EXPECT_THROW((void)bootstrap_ci(
                   xs, [](std::span<const double>) { return 0.0; }, 100, 0.0),
               Error);
}

TEST(Bootstrap, SingleSampleCollapsesToThePoint) {
  const std::vector<double> xs{7.25};
  const auto ci = bootstrap_mean_ci(xs, 100);
  // Every resample of a single-element series is that element.
  EXPECT_DOUBLE_EQ(ci.point, 7.25);
  EXPECT_DOUBLE_EQ(ci.low, 7.25);
  EXPECT_DOUBLE_EQ(ci.high, 7.25);
}

TEST(Bootstrap, OneResampleStillYieldsAnOrderedInterval) {
  Rng rng(5);
  std::vector<double> xs;
  for (int i = 0; i < 30; ++i) xs.push_back(rng.uniform());
  const auto ci = bootstrap_mean_ci(xs, /*resamples=*/1);
  // With one estimate both percentiles degenerate to it.
  EXPECT_DOUBLE_EQ(ci.low, ci.high);
  EXPECT_LE(ci.low, 1.0);
  EXPECT_GE(ci.low, 0.0);
}

TEST(Bootstrap, SeededReproducibilityPin) {
  // Pin the exact interval for a fixed (series, resamples, level, seed):
  // bootstrap draws flow through util::Rng only, so these values are stable
  // across platforms and refactors — a resampling-order change breaks this.
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0};
  const auto a = bootstrap_mean_ci(xs, 250, 0.90, 1234);
  const auto b = bootstrap_mean_ci(xs, 250, 0.90, 1234);
  EXPECT_DOUBLE_EQ(a.low, b.low);
  EXPECT_DOUBLE_EQ(a.high, b.high);
  EXPECT_DOUBLE_EQ(a.point, 4.5);
  const auto c = bootstrap_mean_ci(xs, 250, 0.90, 1235);
  // A different seed must actually move the resamples.
  EXPECT_TRUE(c.low != a.low || c.high != a.high);
  EXPECT_LE(a.low, a.point);
  EXPECT_GE(a.high, a.point);
}

}  // namespace
}  // namespace bwshare::stats
