// Statistical-validity suite for the sequential best-arm layer: rule
// semantics (unit), planted-winner accuracy (does the campaign loop find
// the arm we made best?), and empirical coverage of the bootstrap CIs the
// decisions rest on, against analytic distributions.
#include "stats/sequential.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "stats/bootstrap.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace bwshare::stats {
namespace {

// Feed `batch` normal samples per surviving arm per round until the test
// stops or `max_rounds` elapse. Returns the final status.
SequentialStatus run_rounds(SequentialTest& test,
                            const std::vector<double>& means, double sigma,
                            int batch, Rng& rng, int max_rounds = 100) {
  for (int round = 0; round < max_rounds; ++round) {
    for (size_t a = 0; a < means.size(); ++a) {
      if (!test.arm(a).surviving()) continue;
      for (int i = 0; i < batch; ++i) {
        test.add_sample(a, means[a] + sigma * rng.normal());
      }
    }
    const auto status = test.finish_round();
    if (status != SequentialStatus::kContinue) return status;
  }
  return SequentialStatus::kContinue;
}

SequentialConfig small_config(StoppingRule rule) {
  SequentialConfig config;
  config.rule = rule;
  config.min_replicates = 8;
  config.max_replicates = 64;
  config.resamples = 200;
  config.ci_seed = 7;
  return config;
}

TEST(Sequential, StringRoundTrips) {
  for (const auto rule : {StoppingRule::kCiWidth, StoppingRule::kBestArm,
                          StoppingRule::kCutoff}) {
    EXPECT_EQ(stopping_rule_from_string(to_string(rule)), rule);
  }
  EXPECT_THROW((void)stopping_rule_from_string("bandit"), Error);
  EXPECT_EQ(to_string(SequentialStatus::kContinue), "continue");
  EXPECT_EQ(to_string(SequentialStatus::kCiWidth), "ci-width");
  EXPECT_EQ(to_string(SequentialStatus::kBestArm), "best-arm");
  EXPECT_EQ(to_string(SequentialStatus::kCutoff), "cutoff");
  EXPECT_EQ(to_string(SequentialStatus::kExhausted), "max-replicates");
}

TEST(Sequential, ConfigValidation) {
  SequentialConfig config;
  config.tolerance = 0.0;
  EXPECT_THROW(config.validate(), Error);
  config = SequentialConfig{};
  config.confidence = 1.0;
  EXPECT_THROW(config.validate(), Error);
  config = SequentialConfig{};
  config.min_replicates = 0;
  EXPECT_THROW(config.validate(), Error);
  config = SequentialConfig{};
  config.max_replicates = config.min_replicates - 1;
  EXPECT_THROW(config.validate(), Error);
  config = SequentialConfig{};
  config.resamples = 0;
  EXPECT_THROW(config.validate(), Error);
  EXPECT_THROW(SequentialTest(SequentialConfig{}, 0), Error);
}

TEST(Sequential, MinReplicatesGatesEveryVerdict) {
  // Two arms a mile apart: without the warm-up guard round 1 would already
  // separate (and, under cutoff, eliminate). With batch < min_replicates
  // the first round must abstain.
  auto config = small_config(StoppingRule::kCutoff);
  config.min_replicates = 8;
  SequentialTest test(config, 2);
  Rng rng(1);
  for (size_t a = 0; a < 2; ++a) {
    for (int i = 0; i < 4; ++i) {
      test.add_sample(a, (a == 0 ? 1.0 : 100.0) + 0.01 * rng.normal());
    }
  }
  EXPECT_EQ(test.finish_round(), SequentialStatus::kContinue);
  EXPECT_EQ(test.num_surviving(), 2u);
  EXPECT_FALSE(test.arm(1).eliminated);
}

TEST(Sequential, BestArmStopsOnSeparationWithoutEliminating) {
  SequentialTest test(small_config(StoppingRule::kBestArm), 3);
  Rng rng(11);
  const auto status = run_rounds(test, {1.0, 2.0, 3.0}, 0.05, 8, rng);
  EXPECT_EQ(status, SequentialStatus::kBestArm);
  EXPECT_EQ(test.leader(), 0);
  // Identification, not elimination: every arm still carries a final CI.
  EXPECT_EQ(test.num_surviving(), 3u);
  for (size_t a = 0; a < 3; ++a) {
    EXPECT_TRUE(test.arm(a).has_ci);
    EXPECT_EQ(test.arm(a).out_round, -1);
  }
  // Separation is literal: leader's upper bound below every rival's lower.
  const double lead_high = test.arm(0).ci.high;
  EXPECT_LT(lead_high, test.arm(1).ci.low);
  EXPECT_LT(lead_high, test.arm(2).ci.low);
}

TEST(Sequential, BestArmExhaustsOnIndistinguishableArms) {
  // Identical distributions never separate; the budget is the only out.
  SequentialTest test(small_config(StoppingRule::kBestArm), 2);
  Rng rng(3);
  const auto status = run_rounds(test, {5.0, 5.0}, 1.0, 8, rng);
  EXPECT_EQ(status, SequentialStatus::kExhausted);
  for (size_t a = 0; a < 2; ++a) {
    EXPECT_EQ(test.arm(a).samples.size(), 64u);
  }
  EXPECT_GE(test.leader(), 0);  // a leader is still reported
}

TEST(Sequential, CutoffEliminatesHopelessArmAndStops) {
  SequentialTest test(small_config(StoppingRule::kCutoff), 2);
  Rng rng(17);
  const auto status = run_rounds(test, {1.0, 5.0}, 0.1, 8, rng);
  EXPECT_EQ(status, SequentialStatus::kCutoff);
  EXPECT_EQ(test.leader(), 0);
  EXPECT_EQ(test.num_surviving(), 1u);
  EXPECT_TRUE(test.arm(1).eliminated);
  EXPECT_FALSE(test.arm(1).error);
  EXPECT_EQ(test.arm(1).out_round, 1);  // dead on the first decision round
  // The whole point of cutoff: the loser stopped costing replicates.
  EXPECT_EQ(test.arm(1).samples.size(), 8u);
}

TEST(Sequential, CutoffSparesOverlappingRival) {
  // Arm 1 overlaps the leader, arm 2 does not: only arm 2 may be cut.
  SequentialTest test(small_config(StoppingRule::kCutoff), 3);
  Rng rng(23);
  for (size_t a = 0; a < 3; ++a) {
    const double mean = a == 2 ? 10.0 : 1.0;
    for (int i = 0; i < 8; ++i) test.add_sample(a, mean + 0.2 * rng.normal());
  }
  const auto status = test.finish_round();
  EXPECT_EQ(status, SequentialStatus::kContinue);  // two survivors remain
  EXPECT_FALSE(test.arm(0).eliminated);
  EXPECT_FALSE(test.arm(1).eliminated);
  EXPECT_TRUE(test.arm(2).eliminated);
}

TEST(Sequential, CiWidthStopsOnceAllIntervalsAreTight) {
  auto config = small_config(StoppingRule::kCiWidth);
  config.tolerance = 0.05;
  config.max_replicates = 512;
  SequentialTest test(config, 2);
  Rng rng(29);
  const auto status = run_rounds(test, {10.0, 10.5}, 0.5, 8, rng);
  EXPECT_EQ(status, SequentialStatus::kCiWidth);
  EXPECT_EQ(test.num_surviving(), 2u);  // precision rule never eliminates
  for (size_t a = 0; a < 2; ++a) {
    const auto& arm = test.arm(a);
    const double half = (arm.ci.high - arm.ci.low) / 2.0;
    EXPECT_LE(half, config.tolerance * std::fabs(arm.ci.point));
  }
}

TEST(Sequential, ErroredArmLeavesThePoolImmediately) {
  SequentialTest test(small_config(StoppingRule::kBestArm), 3);
  Rng rng(31);
  test.mark_error(2);
  test.mark_error(2);  // idempotent
  EXPECT_TRUE(test.arm(2).error);
  EXPECT_EQ(test.arm(2).out_round, 1);  // failed during round 1's sampling
  EXPECT_EQ(test.num_surviving(), 2u);
  EXPECT_THROW(test.add_sample(2, 1.0), Error);
  // The two healthy arms still separate and finish normally.
  const auto status = run_rounds(test, {1.0, 2.0, 0.0}, 0.05, 8, rng);
  EXPECT_EQ(status, SequentialStatus::kBestArm);
  EXPECT_EQ(test.leader(), 0);
}

TEST(Sequential, AllArmsErroredReportsExhaustedAndNoLeader) {
  SequentialTest test(small_config(StoppingRule::kCutoff), 2);
  test.mark_error(0);
  test.mark_error(1);
  EXPECT_EQ(test.finish_round(), SequentialStatus::kExhausted);
  EXPECT_EQ(test.leader(), -1);
  EXPECT_EQ(test.total_samples(), 0u);
}

TEST(Sequential, LeaderTiesKeepTheLowestIndex) {
  SequentialTest test(small_config(StoppingRule::kBestArm), 3);
  for (size_t a = 0; a < 3; ++a) {
    for (int i = 0; i < 8; ++i) test.add_sample(a, 2.0);
  }
  (void)test.finish_round();
  EXPECT_EQ(test.leader(), 0);
}

TEST(Sequential, DecisionsAreAPureFunctionOfTheSamples) {
  // Two tests fed the same sample stream must agree bit-for-bit: CIs,
  // eliminations, rounds. This is the property the campaign's thread-count
  // determinism reduces to.
  const auto run_one = [] {
    SequentialTest test(small_config(StoppingRule::kCutoff), 3);
    Rng rng(101);
    (void)run_rounds(test, {1.0, 1.05, 4.0}, 0.3, 8, rng);
    return test;
  };
  const auto a = run_one();
  const auto b = run_one();
  ASSERT_EQ(a.rounds(), b.rounds());
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(a.arm(i).eliminated, b.arm(i).eliminated);
    EXPECT_EQ(a.arm(i).out_round, b.arm(i).out_round);
    EXPECT_EQ(a.arm(i).ci.low, b.arm(i).ci.low);
    EXPECT_EQ(a.arm(i).ci.high, b.arm(i).ci.high);
    EXPECT_EQ(a.arm(i).ci.point, b.arm(i).ci.point);
  }
}

TEST(Sequential, PlantedWinnerIsIdentifiedReliably) {
  // Statistical validity of the whole loop: plant a best arm among decoys
  // and measure how often the sequential test crowns it across many
  // independent campaigns. At 95% per-comparison confidence and a 2-sigma
  // gap the accuracy should be high; 90% is a loose floor that still
  // catches inverted comparisons, seed reuse, or broken elimination.
  const std::vector<double> means{1.0, 1.2, 1.25, 1.4};
  const double sigma = 0.1;
  const int trials = 40;
  int correct = 0;
  for (int t = 0; t < trials; ++t) {
    auto config = small_config(StoppingRule::kBestArm);
    config.ci_seed = 1000 + static_cast<uint64_t>(t);
    SequentialTest test(config, means.size());
    Rng rng(static_cast<uint64_t>(9000 + t));
    (void)run_rounds(test, means, sigma, 8, rng);
    if (test.leader() == 0) ++correct;
  }
  EXPECT_GE(correct, trials * 9 / 10)
      << "planted winner found in only " << correct << "/" << trials
      << " campaigns";
}

TEST(Sequential, CutoffFindsPlantedWinnerWithFewerSamples) {
  // Same planted field under the elimination rule: the verdict must stay
  // accurate while the sample bill drops below the exhaustive budget.
  const std::vector<double> means{1.0, 1.3, 1.6, 2.2};
  const int trials = 25;
  int correct = 0;
  size_t total = 0;
  const size_t exhaustive_per_trial = means.size() * 64;  // max_replicates
  for (int t = 0; t < trials; ++t) {
    SequentialTest test(small_config(StoppingRule::kCutoff), means.size());
    Rng rng(static_cast<uint64_t>(500 + t));
    (void)run_rounds(test, means, 0.1, 8, rng);
    if (test.leader() == 0) ++correct;
    total += test.total_samples();
  }
  EXPECT_GE(correct, trials * 9 / 10);
  EXPECT_LT(total, exhaustive_per_trial * trials / 3)
      << "cutoff saved less than 3x over the exhaustive budget";
}

// ---------------------------------------------------------------------------
// Empirical coverage of the bootstrap CIs every decision above rests on:
// draw from a distribution with a known mean, build a 95% interval, and
// count how often it covers the truth. The percentile bootstrap is not
// exact at n=30, so the acceptance band is deliberately wide — it catches
// gross miscalibration (half-width bugs, wrong percentiles, seed reuse),
// not the last coverage percent.

double coverage(int trials, int n, uint64_t seed,
                const std::function<double(Rng&)>& draw, double truth) {
  int covered = 0;
  Rng rng(seed);
  for (int t = 0; t < trials; ++t) {
    std::vector<double> xs;
    xs.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) xs.push_back(draw(rng));
    const auto ci =
        bootstrap_mean_ci(xs, 200, 0.95, seed + static_cast<uint64_t>(t));
    if (ci.low <= truth && truth <= ci.high) ++covered;
  }
  return static_cast<double>(covered) / trials;
}

TEST(SequentialCoverage, BootstrapMeanCiCoversNormalTruth) {
  const double c = coverage(
      300, 30, 424242,
      [](Rng& rng) { return 5.0 + 2.0 * rng.normal(); }, 5.0);
  EXPECT_GE(c, 0.88) << "95% interval covered only " << c;
  EXPECT_LE(c, 0.995) << "95% interval covers implausibly often: " << c;
}

TEST(SequentialCoverage, BootstrapMeanCiCoversExponentialTruth) {
  // Skewed distribution (mean 2): percentile bootstrap undercovers a
  // little at this n, hence the lower floor.
  const double c = coverage(
      300, 30, 777777,
      [](Rng& rng) { return rng.exponential(0.5); }, 2.0);
  EXPECT_GE(c, 0.85) << "95% interval covered only " << c;
  EXPECT_LE(c, 0.995);
}

TEST(SequentialCoverage, NarrowerAtHigherNAndWiderAtHigherLevel) {
  // Two analytic sanity directions: interval width shrinks roughly like
  // 1/sqrt(n), and a 99% interval contains the 90% one.
  Rng rng(55);
  std::vector<double> big;
  for (int i = 0; i < 400; ++i) big.push_back(rng.normal());
  const std::vector<double> small(big.begin(), big.begin() + 25);
  const auto wide = bootstrap_mean_ci(small, 300, 0.95, 9);
  const auto tight = bootstrap_mean_ci(big, 300, 0.95, 9);
  EXPECT_LT(tight.high - tight.low, wide.high - wide.low);
  const auto lvl90 = bootstrap_mean_ci(big, 300, 0.90, 9);
  const auto lvl99 = bootstrap_mean_ci(big, 300, 0.99, 9);
  EXPECT_LE(lvl99.low, lvl90.low);
  EXPECT_GE(lvl99.high, lvl90.high);
}

}  // namespace
}  // namespace bwshare::stats
