#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace bwshare::stats {
namespace {

TEST(Histogram, BinningAndEdges) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.9);   // bin 4
  h.add(5.0);   // bin 2
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_DOUBLE_EQ(h.bin_low(2), 4.0);
  EXPECT_DOUBLE_EQ(h.bin_high(2), 6.0);
}

TEST(Histogram, OutOfRangeClamps) {
  Histogram h(0.0, 1.0, 2);
  h.add(-5.0);
  h.add(42.0);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(1), 1u);
}

TEST(Histogram, AddAll) {
  Histogram h(0.0, 4.0, 4);
  const std::vector<double> xs{0.5, 1.5, 2.5, 3.5};
  h.add_all(xs);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(h.bin_count(i), 1u);
}

TEST(Histogram, RenderShowsBars) {
  Histogram h(0.0, 2.0, 2);
  for (int i = 0; i < 10; ++i) h.add(0.5);
  h.add(1.5);
  const std::string out = h.render(10);
  EXPECT_NE(out.find("##########"), std::string::npos);
}

TEST(Histogram, Validation) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), Error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), Error);
}

}  // namespace
}  // namespace bwshare::stats
