#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace bwshare::stats {
namespace {

TEST(Histogram, BinningAndEdges) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.9);   // bin 4
  h.add(5.0);   // bin 2
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_DOUBLE_EQ(h.bin_low(2), 4.0);
  EXPECT_DOUBLE_EQ(h.bin_high(2), 6.0);
}

TEST(Histogram, OutOfRangeClamps) {
  Histogram h(0.0, 1.0, 2);
  h.add(-5.0);
  h.add(42.0);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(1), 1u);
}

TEST(Histogram, AddAll) {
  Histogram h(0.0, 4.0, 4);
  const std::vector<double> xs{0.5, 1.5, 2.5, 3.5};
  h.add_all(xs);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(h.bin_count(i), 1u);
}

TEST(Histogram, RenderShowsBars) {
  Histogram h(0.0, 2.0, 2);
  for (int i = 0; i < 10; ++i) h.add(0.5);
  h.add(1.5);
  const std::string out = h.render(10);
  EXPECT_NE(out.find("##########"), std::string::npos);
}

TEST(Histogram, Validation) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), Error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), Error);
}

TEST(Histogram, ExactBinBoundariesLandInTheUpperBin) {
  // A value on an interior boundary belongs to the bin it opens: bins are
  // [low, high) except the last, which also absorbs values >= its low edge.
  Histogram h(0.0, 4.0, 4);
  h.add(0.0);  // lower edge of bin 0
  h.add(1.0);  // opens bin 1
  h.add(3.0);  // opens bin 3 (the last)
  h.add(4.0);  // == high: clamps into the last bin
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(2), 0u);
  EXPECT_EQ(h.bin_count(3), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, SingleBinTakesEverything) {
  Histogram h(0.0, 1.0, 1);
  h.add(-1e9);
  h.add(0.5);
  h.add(1e9);
  EXPECT_EQ(h.bin_count(0), 3u);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_high(0), 1.0);
}

TEST(Histogram, BinEdgesTileTheRange) {
  Histogram h(-2.0, 2.0, 8);
  for (size_t b = 0; b + 1 < 8; ++b) {
    EXPECT_DOUBLE_EQ(h.bin_high(b), h.bin_low(b + 1));
  }
  EXPECT_DOUBLE_EQ(h.bin_low(0), -2.0);
  EXPECT_DOUBLE_EQ(h.bin_high(7), 2.0);
}

}  // namespace
}  // namespace bwshare::stats
