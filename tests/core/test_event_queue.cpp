// core::EventQueue — the indexed finish-time heap both event loops run on.
// Pins the (time, tie) pop order, O(log n) re-keying through stable
// handles, stale-handle detection across slot recycling, and the heap
// invariant under a randomized mutation storm checked against a sorted
// reference model.
#include "core/event_queue.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace bwshare::core {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue<int> q;
  q.push(3.0, 0, 30);
  q.push(1.0, 1, 10);
  q.push(2.0, 2, 20);
  ASSERT_EQ(q.size(), 3u);
  EXPECT_DOUBLE_EQ(q.top_time(), 1.0);
  EXPECT_EQ(q.pop(), 10);
  EXPECT_EQ(q.pop(), 20);
  EXPECT_EQ(q.pop(), 30);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, EqualTimesBreakTiesByTieKey) {
  EventQueue<int> q;
  // Insertion order deliberately scrambled: pop order must depend only on
  // the (time, tie) keys.
  q.push(1.0, 7, 7);
  q.push(1.0, 2, 2);
  q.push(1.0, 5, 5);
  q.push(1.0, 0, 0);
  std::vector<int> order;
  while (!q.empty()) order.push_back(q.pop());
  EXPECT_EQ(order, (std::vector<int>{0, 2, 5, 7}));
}

TEST(EventQueue, TopExposesMinEntry) {
  EventQueue<int> q;
  q.push(2.0, 4, 42);
  q.push(5.0, 9, 99);
  EXPECT_DOUBLE_EQ(q.top_time(), 2.0);
  EXPECT_EQ(q.top_tie(), 4u);
  EXPECT_EQ(q.top(), 42);
}

TEST(EventQueue, UpdateDecreasesKey) {
  EventQueue<int> q;
  q.push(1.0, 0, 1);
  const EventHandle h = q.push(9.0, 1, 9);
  q.push(2.0, 2, 2);
  q.update(h, 0.5);  // 9 jumps to the front
  EXPECT_EQ(q.pop(), 9);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
}

TEST(EventQueue, UpdateIncreasesKey) {
  EventQueue<int> q;
  const EventHandle h = q.push(1.0, 0, 1);
  q.push(2.0, 1, 2);
  q.push(3.0, 2, 3);
  q.update(h, 10.0);  // 1 sinks to the back
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
  EXPECT_EQ(q.pop(), 1);
}

TEST(EventQueue, HandlesSurviveReordering) {
  EventQueue<int> q;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 16; ++i)
    handles.push_back(q.push(static_cast<double>(i), static_cast<uint64_t>(i), i));
  // Reverse every key through the stable handles; order must fully flip.
  for (int i = 0; i < 16; ++i)
    q.update(handles[static_cast<size_t>(i)], static_cast<double>(16 - i));
  for (int i = 0; i < 16; ++i) {
    EXPECT_DOUBLE_EQ(q.time_of(handles[static_cast<size_t>(i)]),
                     static_cast<double>(16 - i));
  }
  std::vector<int> order;
  while (!q.empty()) order.push_back(q.pop());
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], 15 - i);
}

TEST(EventQueue, EraseRemovesTheEntry) {
  EventQueue<int> q;
  q.push(1.0, 0, 1);
  const EventHandle h = q.push(2.0, 1, 2);
  q.push(3.0, 2, 3);
  q.erase(h);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_FALSE(q.contains(h));
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 3);
}

TEST(EventQueue, StaleHandlesAreDetectedNotAliased) {
  EventQueue<int> q;
  const EventHandle h = q.push(1.0, 0, 1);
  EXPECT_TRUE(q.contains(h));
  EXPECT_EQ(q.pop(), 1);
  EXPECT_FALSE(q.contains(h));
  // The freed slot is recycled with a fresh generation: the old handle must
  // stay invalid and must not alias the new entry.
  const EventHandle h2 = q.push(5.0, 1, 2);
  EXPECT_NE(h, h2);
  EXPECT_FALSE(q.contains(h));
  EXPECT_TRUE(q.contains(h2));
  EXPECT_THROW(q.update(h, 0.0), Error);
  EXPECT_THROW(q.erase(h), Error);
  EXPECT_THROW((void)q.time_of(h), Error);
  EXPECT_EQ(q.pop(), 2);
}

TEST(EventQueue, NullHandleIsNeverLive) {
  EventQueue<int> q;
  EXPECT_FALSE(q.contains(kNullEventHandle));
  q.push(1.0, 0, 1);
  EXPECT_FALSE(q.contains(kNullEventHandle));
}

TEST(EventQueue, ClearInvalidatesEverything) {
  EventQueue<int> q;
  const EventHandle h = q.push(1.0, 0, 1);
  q.push(2.0, 1, 2);
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.contains(h));
  EXPECT_THROW((void)q.pop(), Error);
  EXPECT_THROW((void)q.top_time(), Error);
}

TEST(EventQueue, RandomizedMutationsMatchReferenceModel) {
  // Storm of push/update/erase/pop checked against a sorted reference; the
  // heap invariant and slot index are re-verified after every mutation.
  EventQueue<int> q;
  Rng rng(20260729);
  std::map<EventHandle, std::pair<double, uint64_t>> live;
  std::set<std::tuple<double, uint64_t, EventHandle>> ordered;
  uint64_t next_tie = 0;
  int next_payload = 0;
  std::map<EventHandle, int> payloads;
  for (int step = 0; step < 4000; ++step) {
    const double roll = rng.uniform();
    if (roll < 0.45 || live.empty()) {
      const double t = rng.uniform(0.0, 100.0);
      const EventHandle h = q.push(t, next_tie, next_payload);
      live[h] = {t, next_tie};
      ordered.insert({t, next_tie, h});
      payloads[h] = next_payload;
      ++next_tie;
      ++next_payload;
    } else if (roll < 0.65) {
      // re-key a random live entry
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.below(live.size())));
      const double t = rng.uniform(0.0, 100.0);
      ordered.erase({it->second.first, it->second.second, it->first});
      q.update(it->first, t);
      it->second.first = t;
      ordered.insert({t, it->second.second, it->first});
    } else if (roll < 0.8) {
      // erase a random live entry
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.below(live.size())));
      q.erase(it->first);
      ordered.erase({it->second.first, it->second.second, it->first});
      payloads.erase(it->first);
      live.erase(it);
    } else {
      const auto expect = *ordered.begin();
      ASSERT_DOUBLE_EQ(q.top_time(), std::get<0>(expect));
      ASSERT_EQ(q.top_tie(), std::get<1>(expect));
      ASSERT_EQ(q.pop(), payloads[std::get<2>(expect)]);
      ordered.erase(ordered.begin());
      payloads.erase(std::get<2>(expect));
      live.erase(std::get<2>(expect));
    }
    ASSERT_TRUE(q.check_heap()) << "heap invariant broken at step " << step;
    ASSERT_EQ(q.size(), live.size());
  }
  // Drain: the full remaining order must match the model.
  while (!ordered.empty()) {
    const auto expect = *ordered.begin();
    ASSERT_EQ(q.pop(), payloads[std::get<2>(expect)]);
    ordered.erase(ordered.begin());
    payloads.erase(std::get<2>(expect));
  }
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace bwshare::core
