// core::Clock and core::Reactor — the event-core's time source and the
// handler-driven loop flowsim::des::Simulator wraps. Pins monotonicity,
// (time, FIFO) dispatch order, max_time cut-off, and cancel semantics
// including stale-handle safety.
#include "core/clock.hpp"

#include <vector>

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace bwshare::core {
namespace {

TEST(Clock, AdvancesMonotonically) {
  Clock clock;
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
  clock.advance_to(2.5);
  EXPECT_DOUBLE_EQ(clock.now(), 2.5);
  clock.advance_to(2.5);  // standing still is allowed
  clock.advance_by(0.5);
  EXPECT_DOUBLE_EQ(clock.now(), 3.0);
}

TEST(Clock, RefusesToRunBackwards) {
  Clock clock;
  clock.advance_to(5.0);
  EXPECT_THROW(clock.advance_to(4.0), Error);
  EXPECT_THROW(clock.advance_by(-1.0), Error);
  EXPECT_DOUBLE_EQ(clock.now(), 5.0);
}

TEST(Reactor, DispatchesInTimeOrder) {
  Reactor reactor;
  std::vector<int> order;
  reactor.schedule_at(3.0, [&] { order.push_back(3); });
  reactor.schedule_at(1.0, [&] { order.push_back(1); });
  reactor.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(reactor.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(reactor.now(), 3.0);
}

TEST(Reactor, SimultaneousEventsAreFifo) {
  Reactor reactor;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    reactor.schedule_at(1.0, [&order, i] { order.push_back(i); });
  reactor.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Reactor, HandlersCanScheduleMoreEvents) {
  Reactor reactor;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 10) reactor.schedule_in(1.0, chain);
  };
  reactor.schedule_in(1.0, chain);
  reactor.run();
  EXPECT_EQ(fired, 10);
  EXPECT_DOUBLE_EQ(reactor.now(), 10.0);
}

TEST(Reactor, RunStopsAtMaxTime) {
  Reactor reactor;
  int fired = 0;
  reactor.schedule_at(1.0, [&] { ++fired; });
  reactor.schedule_at(5.0, [&] { ++fired; });
  reactor.run(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(reactor.pending(), 1u);
  EXPECT_DOUBLE_EQ(reactor.now(), 1.0);  // never advanced past the cut-off
}

TEST(Reactor, CannotScheduleInThePast) {
  Reactor reactor;
  reactor.schedule_at(5.0, [] {});
  reactor.run();
  EXPECT_THROW(reactor.schedule_at(1.0, [] {}), Error);
  EXPECT_THROW(reactor.schedule_in(-1.0, [] {}), Error);
}

TEST(Reactor, CancelDropsAPendingEvent) {
  Reactor reactor;
  int fired = 0;
  reactor.schedule_at(1.0, [&] { ++fired; });
  const EventHandle doomed = reactor.schedule_at(2.0, [&] { fired += 100; });
  reactor.schedule_at(3.0, [&] { ++fired; });
  EXPECT_TRUE(reactor.cancel(doomed));
  EXPECT_EQ(reactor.pending(), 2u);
  EXPECT_FALSE(reactor.cancel(doomed));  // already gone
  EXPECT_EQ(reactor.run(), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(reactor.now(), 3.0);
}

TEST(Reactor, CancelIsStaleSafeAfterFiringAndClearing) {
  Reactor reactor;
  const EventHandle fired = reactor.schedule_at(1.0, [] {});
  reactor.run();
  EXPECT_FALSE(reactor.cancel(fired));
  const EventHandle cleared = reactor.schedule_at(2.0, [] {});
  reactor.clear();
  EXPECT_FALSE(reactor.cancel(cleared));
  // A new event recycling the slot must not be reachable via old handles.
  const EventHandle fresh = reactor.schedule_at(3.0, [] {});
  EXPECT_FALSE(reactor.cancel(fired));
  EXPECT_FALSE(reactor.cancel(cleared));
  EXPECT_TRUE(reactor.cancel(fresh));
}

TEST(Reactor, ClearKeepsTheClockPosition) {
  Reactor reactor;
  reactor.schedule_at(4.0, [] {});
  reactor.run();
  reactor.schedule_at(9.0, [] {});
  reactor.clear();
  EXPECT_TRUE(reactor.empty());
  EXPECT_DOUBLE_EQ(reactor.now(), 4.0);
  EXPECT_THROW(reactor.schedule_at(1.0, [] {}), Error);
}

}  // namespace
}  // namespace bwshare::core
