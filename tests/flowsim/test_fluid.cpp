// Unit tests for the weighted max-min allocator.
#include "flowsim/fluid.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace bwshare::flowsim {
namespace {

TEST(MaxMin, SingleFlowTakesItsCap) {
  AllocationProblem p;
  p.num_flows = 1;
  p.caps = {10.0};
  p.resources = {{100.0, {0}}};
  EXPECT_EQ(max_min_rates(p), std::vector<double>{10.0});
}

TEST(MaxMin, FairSplitOnSharedLink) {
  AllocationProblem p;
  p.num_flows = 3;
  p.caps = {100.0, 100.0, 100.0};
  p.resources = {{90.0, {0, 1, 2}}};
  const auto r = max_min_rates(p);
  for (double v : r) EXPECT_DOUBLE_EQ(v, 30.0);
}

TEST(MaxMin, CapLimitedFlowLeavesHeadroom) {
  // Flow 0 capped at 10; the other two split the remaining 80.
  AllocationProblem p;
  p.num_flows = 3;
  p.caps = {10.0, 100.0, 100.0};
  p.resources = {{90.0, {0, 1, 2}}};
  const auto r = max_min_rates(p);
  EXPECT_DOUBLE_EQ(r[0], 10.0);
  EXPECT_DOUBLE_EQ(r[1], 40.0);
  EXPECT_DOUBLE_EQ(r[2], 40.0);
}

TEST(MaxMin, MultiBottleneck) {
  // Classic parking-lot: flow 0 crosses both links; flows 1,2 one each.
  AllocationProblem p;
  p.num_flows = 3;
  p.caps = {100.0, 100.0, 100.0};
  p.resources = {{60.0, {0, 1}}, {60.0, {0, 2}}};
  const auto r = max_min_rates(p);
  EXPECT_DOUBLE_EQ(r[0], 30.0);
  EXPECT_DOUBLE_EQ(r[1], 30.0);
  EXPECT_DOUBLE_EQ(r[2], 30.0);
}

TEST(MaxMin, UnevenBottlenecks) {
  // Flow 0 shares link A (30) with flow 1 and link B (100) with flow 2.
  // A binds first: flows 0,1 get 15. Flow 2 then grows to 85.
  AllocationProblem p;
  p.num_flows = 3;
  p.caps = {1000.0, 1000.0, 1000.0};
  p.resources = {{30.0, {0, 1}}, {100.0, {0, 2}}};
  const auto r = max_min_rates(p);
  EXPECT_DOUBLE_EQ(r[0], 15.0);
  EXPECT_DOUBLE_EQ(r[1], 15.0);
  EXPECT_DOUBLE_EQ(r[2], 85.0);
}

TEST(MaxMin, WeightsSkewTheSplit) {
  AllocationProblem p;
  p.num_flows = 2;
  p.weights = {1.0, 3.0};
  p.caps = {100.0, 100.0};
  p.resources = {{80.0, {0, 1}}};
  const auto r = max_min_rates(p);
  EXPECT_DOUBLE_EQ(r[0], 20.0);
  EXPECT_DOUBLE_EQ(r[1], 60.0);
}

TEST(MaxMin, EmptyProblem) {
  AllocationProblem p;
  EXPECT_TRUE(max_min_rates(p).empty());
}

TEST(MaxMin, UnconstrainedFlowIsAnError) {
  AllocationProblem p;
  p.num_flows = 1;  // no cap, no resource
  EXPECT_THROW(max_min_rates(p), Error);
}

TEST(MaxMin, Validation) {
  AllocationProblem p;
  p.num_flows = 1;
  p.caps = {1.0};
  p.resources = {{-1.0, {0}}};
  EXPECT_THROW(max_min_rates(p), Error);
  p.resources = {{1.0, {5}}};
  EXPECT_THROW(max_min_rates(p), Error);
  p.resources.clear();
  p.weights = {0.0};
  EXPECT_THROW(max_min_rates(p), Error);
}

TEST(MaxMin, AllocationIsFeasibleAndMaximal) {
  // Property: no resource over capacity; every flow pinned by something.
  AllocationProblem p;
  p.num_flows = 5;
  p.caps = {50.0, 50.0, 50.0, 50.0, 50.0};
  p.resources = {{70.0, {0, 1, 2}}, {60.0, {2, 3}}, {40.0, {3, 4}}};
  const auto r = max_min_rates(p);
  // Feasibility.
  for (const auto& res : p.resources) {
    double load = 0.0;
    for (int f : res.members) load += r[static_cast<size_t>(f)];
    EXPECT_LE(load, res.capacity * (1.0 + 1e-9));
  }
  // Maximality: each flow is at its cap or on a saturated resource.
  for (int f = 0; f < p.num_flows; ++f) {
    bool pinned = r[static_cast<size_t>(f)] >= 50.0 * (1.0 - 1e-9);
    for (const auto& res : p.resources) {
      double load = 0.0;
      bool member = false;
      for (int m : res.members) {
        load += r[static_cast<size_t>(m)];
        member = member || m == f;
      }
      if (member && load >= res.capacity * (1.0 - 1e-9)) pinned = true;
    }
    EXPECT_TRUE(pinned) << "flow " << f << " could still grow";
  }
}

}  // namespace
}  // namespace bwshare::flowsim
