// Unit tests for the weighted max-min allocator.
#include "flowsim/fluid.hpp"

#include <vector>

#include <gtest/gtest.h>

#include "util/arena.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace bwshare::flowsim {
namespace {

TEST(MaxMin, SingleFlowTakesItsCap) {
  AllocationProblem p;
  p.num_flows = 1;
  p.caps = {10.0};
  p.resources = {{100.0, {0}}};
  EXPECT_EQ(max_min_rates(p), std::vector<double>{10.0});
}

TEST(MaxMin, FairSplitOnSharedLink) {
  AllocationProblem p;
  p.num_flows = 3;
  p.caps = {100.0, 100.0, 100.0};
  p.resources = {{90.0, {0, 1, 2}}};
  const auto r = max_min_rates(p);
  for (double v : r) EXPECT_DOUBLE_EQ(v, 30.0);
}

TEST(MaxMin, CapLimitedFlowLeavesHeadroom) {
  // Flow 0 capped at 10; the other two split the remaining 80.
  AllocationProblem p;
  p.num_flows = 3;
  p.caps = {10.0, 100.0, 100.0};
  p.resources = {{90.0, {0, 1, 2}}};
  const auto r = max_min_rates(p);
  EXPECT_DOUBLE_EQ(r[0], 10.0);
  EXPECT_DOUBLE_EQ(r[1], 40.0);
  EXPECT_DOUBLE_EQ(r[2], 40.0);
}

TEST(MaxMin, MultiBottleneck) {
  // Classic parking-lot: flow 0 crosses both links; flows 1,2 one each.
  AllocationProblem p;
  p.num_flows = 3;
  p.caps = {100.0, 100.0, 100.0};
  p.resources = {{60.0, {0, 1}}, {60.0, {0, 2}}};
  const auto r = max_min_rates(p);
  EXPECT_DOUBLE_EQ(r[0], 30.0);
  EXPECT_DOUBLE_EQ(r[1], 30.0);
  EXPECT_DOUBLE_EQ(r[2], 30.0);
}

TEST(MaxMin, UnevenBottlenecks) {
  // Flow 0 shares link A (30) with flow 1 and link B (100) with flow 2.
  // A binds first: flows 0,1 get 15. Flow 2 then grows to 85.
  AllocationProblem p;
  p.num_flows = 3;
  p.caps = {1000.0, 1000.0, 1000.0};
  p.resources = {{30.0, {0, 1}}, {100.0, {0, 2}}};
  const auto r = max_min_rates(p);
  EXPECT_DOUBLE_EQ(r[0], 15.0);
  EXPECT_DOUBLE_EQ(r[1], 15.0);
  EXPECT_DOUBLE_EQ(r[2], 85.0);
}

TEST(MaxMin, WeightsSkewTheSplit) {
  AllocationProblem p;
  p.num_flows = 2;
  p.weights = {1.0, 3.0};
  p.caps = {100.0, 100.0};
  p.resources = {{80.0, {0, 1}}};
  const auto r = max_min_rates(p);
  EXPECT_DOUBLE_EQ(r[0], 20.0);
  EXPECT_DOUBLE_EQ(r[1], 60.0);
}

TEST(MaxMin, EmptyProblem) {
  AllocationProblem p;
  EXPECT_TRUE(max_min_rates(p).empty());
}

TEST(MaxMin, UnconstrainedFlowIsAnError) {
  AllocationProblem p;
  p.num_flows = 1;  // no cap, no resource
  EXPECT_THROW(max_min_rates(p), Error);
}

TEST(MaxMin, Validation) {
  AllocationProblem p;
  p.num_flows = 1;
  p.caps = {1.0};
  p.resources = {{-1.0, {0}}};
  EXPECT_THROW(max_min_rates(p), Error);
  p.resources = {{1.0, {5}}};
  EXPECT_THROW(max_min_rates(p), Error);
  p.resources.clear();
  p.weights = {0.0};
  EXPECT_THROW(max_min_rates(p), Error);
}

TEST(MaxMin, AllocationIsFeasibleAndMaximal) {
  // Property: no resource over capacity; every flow pinned by something.
  AllocationProblem p;
  p.num_flows = 5;
  p.caps = {50.0, 50.0, 50.0, 50.0, 50.0};
  p.resources = {{70.0, {0, 1, 2}}, {60.0, {2, 3}}, {40.0, {3, 4}}};
  const auto r = max_min_rates(p);
  // Feasibility.
  for (const auto& res : p.resources) {
    double load = 0.0;
    for (int f : res.members) load += r[static_cast<size_t>(f)];
    EXPECT_LE(load, res.capacity * (1.0 + 1e-9));
  }
  // Maximality: each flow is at its cap or on a saturated resource.
  for (int f = 0; f < p.num_flows; ++f) {
    bool pinned = r[static_cast<size_t>(f)] >= 50.0 * (1.0 - 1e-9);
    for (const auto& res : p.resources) {
      double load = 0.0;
      bool member = false;
      for (int m : res.members) {
        load += r[static_cast<size_t>(m)];
        member = member || m == f;
      }
      if (member && load >= res.capacity * (1.0 - 1e-9)) pinned = true;
    }
    EXPECT_TRUE(pinned) << "flow " << f << " could still grow";
  }
}

// --- the view-based hot path -----------------------------------------------

// max_min_rates_into is documented bit-identical to max_min_rates: same
// arithmetic in the same order, only the storage differs. A fuzz over random
// problems pins that — any reordering inside the arena-backed solver that
// changes a single ULP fails here.
TEST(MaxMin, IntoIsBitIdenticalToVectorApiOnRandomProblems) {
  util::Arena arena;
  Rng rng(20260808);
  for (int iter = 0; iter < 200; ++iter) {
    AllocationProblem p;
    p.num_flows = 1 + static_cast<int>(rng.below(12));
    const bool weighted = rng.below(2) == 0;
    for (int f = 0; f < p.num_flows; ++f) {
      if (weighted) p.weights.push_back(1.0 + static_cast<double>(rng.below(4)));
      // Cap every flow so problems without resources stay well-formed.
      p.caps.push_back(10.0 + static_cast<double>(rng.below(1000)));
    }
    const int num_res = static_cast<int>(rng.below(6));
    for (int r = 0; r < num_res; ++r) {
      Resource res;
      res.capacity = 50.0 + static_cast<double>(rng.below(500));
      for (int f = 0; f < p.num_flows; ++f)
        if (rng.below(2) == 0) res.members.push_back(f);
      if (!res.members.empty()) p.resources.push_back(res);
    }

    const std::vector<double> reference = max_min_rates(p);

    AllocationProblemView view;
    view.num_flows = p.num_flows;
    view.weights = p.weights;
    view.caps = p.caps;
    std::vector<ResourceView> res_views;
    for (const Resource& res : p.resources)
      res_views.push_back({res.capacity, res.members});
    view.resources = res_views;

    std::vector<double> out(static_cast<size_t>(p.num_flows), -1.0);
    util::Arena::Frame frame(arena);
    max_min_rates_into(view, arena, out);
    ASSERT_EQ(out.size(), reference.size());
    for (size_t f = 0; f < out.size(); ++f)
      ASSERT_EQ(out[f], reference[f])  // bitwise, not approximate
          << "iter " << iter << " flow " << f;
  }
}

TEST(MaxMin, IntoValidatesLikeTheVectorApi) {
  util::Arena arena;
  std::vector<double> out(1);
  {
    // Negative capacity.
    const std::vector<ResourceView> res = {{-1.0, {}}};
    AllocationProblemView v;
    v.num_flows = 1;
    v.resources = res;
    EXPECT_THROW(max_min_rates_into(v, arena, out), Error);
  }
  {
    // Uncovered, uncapped flow.
    AllocationProblemView v;
    v.num_flows = 1;
    EXPECT_THROW(max_min_rates_into(v, arena, out), Error);
  }
}

}  // namespace
}  // namespace bwshare::flowsim
