// The fluid substrate must reproduce the paper's fig-2 measured penalties
// (it replaces the physical clusters — see DESIGN.md §1).
#include "flowsim/fluid_network.hpp"

#include <gtest/gtest.h>

#include "graph/schemes.hpp"
#include "util/error.hpp"

namespace bwshare::flowsim {
namespace {

using graph::schemes::fig2_scheme;
using topo::gigabit_ethernet_calibration;
using topo::infiniband_calibration;
using topo::myrinet2000_calibration;

std::vector<double> penalties(int scheme, const topo::NetworkCalibration& cal) {
  return measure_penalties(fig2_scheme(scheme), cal);
}

// Fig-2 reports penalties in the fully saturated regime (all 20 MB streams
// concurrently active).
std::vector<double> sat(int scheme, const topo::NetworkCalibration& cal) {
  return saturated_penalties(fig2_scheme(scheme), cal);
}

TEST(FluidSubstrate, SingleCommHasNoPenalty) {
  for (const auto& cal :
       {gigabit_ethernet_calibration(), myrinet2000_calibration(),
        infiniband_calibration()}) {
    const auto p = penalties(1, cal);
    ASSERT_EQ(p.size(), 1u);
    EXPECT_NEAR(p[0], 1.0, 0.01);
  }
}

TEST(FluidSubstrate, Fig2GigeColumn) {
  // Paper: S2 -> 1.5, 1.5; S3 -> 2.25 x3; S4 -> ~2.15 x3 and d = 1.15.
  const auto cal = gigabit_ethernet_calibration();
  for (double p : penalties(2, cal)) EXPECT_NEAR(p, 1.5, 0.03);
  for (double p : penalties(3, cal)) EXPECT_NEAR(p, 2.25, 0.04);
  const auto s4 = penalties(4, cal);
  EXPECT_NEAR(s4[0], 2.25, 0.1);  // paper 2.15
  EXPECT_NEAR(s4[3], 1.15, 0.05);  // d: fluid gives 1.125
}

TEST(FluidSubstrate, Fig2MyrinetColumn) {
  // Paper: S2 -> 1.9; S3 -> 2.8; S4 -> 2.8 x3, d = 1.45;
  // S5 -> a,b,c ~4.2-4.4, e ~2.5.
  const auto cal = myrinet2000_calibration();
  for (double p : penalties(2, cal)) EXPECT_NEAR(p, 1.9, 0.03);
  for (double p : penalties(3, cal)) EXPECT_NEAR(p, 2.8, 0.1);
  const auto s4 = penalties(4, cal);
  EXPECT_NEAR(s4[0], 2.8, 0.1);
  EXPECT_NEAR(s4[3], 1.45, 0.05);
  const auto s5 = sat(5, cal);
  EXPECT_NEAR(s5[0], 4.4, 0.15);  // a
  EXPECT_NEAR(s5[1], 4.4, 0.15);  // b (paper 4.2)
  EXPECT_NEAR(s5[4], 2.5, 0.1);   // e
}

TEST(FluidSubstrate, Fig2InfinibandColumn) {
  // Paper: S2 -> 1.725; S3 -> 2.61; S5 -> 3.66 x3 and e = 2.035.
  const auto cal = infiniband_calibration();
  for (double p : penalties(2, cal)) EXPECT_NEAR(p, 1.725, 0.03);
  for (double p : penalties(3, cal)) EXPECT_NEAR(p, 2.61, 0.05);
  const auto s5 = sat(5, cal);
  EXPECT_NEAR(s5[0], 3.663, 0.08);
  EXPECT_NEAR(s5[4], 2.035, 0.06);
}

TEST(FluidSubstrate, Fig2SharingOrderAcrossNetworks) {
  // Fig 2's headline observation: GigE shares best, Myrinet worst.
  for (int scheme = 2; scheme <= 3; ++scheme) {
    const double gige = penalties(scheme, gigabit_ethernet_calibration())[0];
    const double ib = penalties(scheme, infiniband_calibration())[0];
    const double myri = penalties(scheme, myrinet2000_calibration())[0];
    EXPECT_LT(gige, ib);
    EXPECT_LT(ib, myri);
  }
}

TEST(FluidSubstrate, Fig2Scheme6WeakConflict) {
  // f:6->3 only shares node 3 with c; its penalty stays close to 1.
  for (const auto& cal :
       {gigabit_ethernet_calibration(), myrinet2000_calibration(),
        infiniband_calibration()}) {
    const auto p = penalties(6, cal);
    EXPECT_LT(p[5], 1.5) << to_string(cal.tech);
    EXPECT_GT(p[0], 2.5) << to_string(cal.tech);
  }
}

TEST(FluidSubstrate, RingIsConflictFree) {
  // One task per node, each sends to its successor: full-duplex links mean
  // no sharing, so every comm runs at reference speed... except the duplex
  // bus, which charges hosts that both send and receive.
  const auto cal = myrinet2000_calibration();
  const auto g = graph::schemes::ring(6, 4e6);
  const auto p = measure_penalties(g, cal);
  for (double v : p) {
    EXPECT_GE(v, 0.99);
    // duplex factor 1.03 with rx weight: modest slowdown allowed
    EXPECT_LT(v, 2.0);
  }
}

TEST(FluidSubstrate, IntraNodeUsesSharedMemory) {
  graph::CommGraph g;
  g.add("shm", 0, 0, 8e6);
  g.add("net", 0, 1, 8e6);
  const auto cal = gigabit_ethernet_calibration();
  const auto times = measure_scheme_fluid(g, cal);
  // Shared-memory copy is much faster than the network transfer.
  EXPECT_LT(times[0], times[1] / 5.0);
}

TEST(FluidSubstrate, TimesScaleLinearlyWithSize) {
  const auto cal = infiniband_calibration();
  const auto t1 = measure_scheme_fluid(graph::schemes::outgoing_fan(3, 2e6), cal);
  const auto t2 = measure_scheme_fluid(graph::schemes::outgoing_fan(3, 4e6), cal);
  for (size_t i = 0; i < t1.size(); ++i)
    EXPECT_NEAR(t2[i] / t1[i], 2.0, 0.01);
}

TEST(FluidSubstrate, BuildProblemShape) {
  const FluidRateProvider provider(gigabit_ethernet_calibration());
  const auto g = fig2_scheme(5);
  const auto problem = provider.build_problem(g);
  EXPECT_EQ(problem.num_flows, 5);
  // e (rx at the duplex-conflicted node 0) carries the RX weight.
  const auto e = g.find("e");
  ASSERT_TRUE(e.has_value());
  EXPECT_GT(problem.weights[static_cast<size_t>(*e)], 1.0);
  // a keeps weight 1.
  EXPECT_DOUBLE_EQ(problem.weights[0], 1.0);
}

TEST(FluidSubstrate, EmptyGraph) {
  const graph::CommGraph g;
  EXPECT_TRUE(measure_scheme_fluid(g, gigabit_ethernet_calibration()).empty());
}

}  // namespace
}  // namespace bwshare::flowsim
