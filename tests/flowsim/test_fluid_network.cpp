// The fluid substrate must reproduce the paper's fig-2 measured penalties
// (it replaces the physical clusters — see DESIGN.md §1).
#include "flowsim/fluid_network.hpp"

#include <vector>

#include <gtest/gtest.h>

#include "graph/schemes.hpp"
#include "topo/fattree.hpp"
#include "util/alloc_counter.hpp"
#include "util/arena.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace bwshare::flowsim {
namespace {

using graph::schemes::fig2_scheme;
using topo::gigabit_ethernet_calibration;
using topo::infiniband_calibration;
using topo::myrinet2000_calibration;

std::vector<double> penalties(int scheme, const topo::NetworkCalibration& cal) {
  return measure_penalties(fig2_scheme(scheme), cal);
}

// Fig-2 reports penalties in the fully saturated regime (all 20 MB streams
// concurrently active).
std::vector<double> sat(int scheme, const topo::NetworkCalibration& cal) {
  return saturated_penalties(fig2_scheme(scheme), cal);
}

TEST(FluidSubstrate, SingleCommHasNoPenalty) {
  for (const auto& cal :
       {gigabit_ethernet_calibration(), myrinet2000_calibration(),
        infiniband_calibration()}) {
    const auto p = penalties(1, cal);
    ASSERT_EQ(p.size(), 1u);
    EXPECT_NEAR(p[0], 1.0, 0.01);
  }
}

TEST(FluidSubstrate, Fig2GigeColumn) {
  // Paper: S2 -> 1.5, 1.5; S3 -> 2.25 x3; S4 -> ~2.15 x3 and d = 1.15.
  const auto cal = gigabit_ethernet_calibration();
  for (double p : penalties(2, cal)) EXPECT_NEAR(p, 1.5, 0.03);
  for (double p : penalties(3, cal)) EXPECT_NEAR(p, 2.25, 0.04);
  const auto s4 = penalties(4, cal);
  EXPECT_NEAR(s4[0], 2.25, 0.1);  // paper 2.15
  EXPECT_NEAR(s4[3], 1.15, 0.05);  // d: fluid gives 1.125
}

TEST(FluidSubstrate, Fig2MyrinetColumn) {
  // Paper: S2 -> 1.9; S3 -> 2.8; S4 -> 2.8 x3, d = 1.45;
  // S5 -> a,b,c ~4.2-4.4, e ~2.5.
  const auto cal = myrinet2000_calibration();
  for (double p : penalties(2, cal)) EXPECT_NEAR(p, 1.9, 0.03);
  for (double p : penalties(3, cal)) EXPECT_NEAR(p, 2.8, 0.1);
  const auto s4 = penalties(4, cal);
  EXPECT_NEAR(s4[0], 2.8, 0.1);
  EXPECT_NEAR(s4[3], 1.45, 0.05);
  const auto s5 = sat(5, cal);
  EXPECT_NEAR(s5[0], 4.4, 0.15);  // a
  EXPECT_NEAR(s5[1], 4.4, 0.15);  // b (paper 4.2)
  EXPECT_NEAR(s5[4], 2.5, 0.1);   // e
}

TEST(FluidSubstrate, Fig2InfinibandColumn) {
  // Paper: S2 -> 1.725; S3 -> 2.61; S5 -> 3.66 x3 and e = 2.035.
  const auto cal = infiniband_calibration();
  for (double p : penalties(2, cal)) EXPECT_NEAR(p, 1.725, 0.03);
  for (double p : penalties(3, cal)) EXPECT_NEAR(p, 2.61, 0.05);
  const auto s5 = sat(5, cal);
  EXPECT_NEAR(s5[0], 3.663, 0.08);
  EXPECT_NEAR(s5[4], 2.035, 0.06);
}

TEST(FluidSubstrate, Fig2SharingOrderAcrossNetworks) {
  // Fig 2's headline observation: GigE shares best, Myrinet worst.
  for (int scheme = 2; scheme <= 3; ++scheme) {
    const double gige = penalties(scheme, gigabit_ethernet_calibration())[0];
    const double ib = penalties(scheme, infiniband_calibration())[0];
    const double myri = penalties(scheme, myrinet2000_calibration())[0];
    EXPECT_LT(gige, ib);
    EXPECT_LT(ib, myri);
  }
}

TEST(FluidSubstrate, Fig2Scheme6WeakConflict) {
  // f:6->3 only shares node 3 with c; its penalty stays close to 1.
  for (const auto& cal :
       {gigabit_ethernet_calibration(), myrinet2000_calibration(),
        infiniband_calibration()}) {
    const auto p = penalties(6, cal);
    EXPECT_LT(p[5], 1.5) << to_string(cal.tech);
    EXPECT_GT(p[0], 2.5) << to_string(cal.tech);
  }
}

TEST(FluidSubstrate, RingIsConflictFree) {
  // One task per node, each sends to its successor: full-duplex links mean
  // no sharing, so every comm runs at reference speed... except the duplex
  // bus, which charges hosts that both send and receive.
  const auto cal = myrinet2000_calibration();
  const auto g = graph::schemes::ring(6, 4e6);
  const auto p = measure_penalties(g, cal);
  for (double v : p) {
    EXPECT_GE(v, 0.99);
    // duplex factor 1.03 with rx weight: modest slowdown allowed
    EXPECT_LT(v, 2.0);
  }
}

TEST(FluidSubstrate, IntraNodeUsesSharedMemory) {
  graph::CommGraph g;
  g.add("shm", 0, 0, 8e6);
  g.add("net", 0, 1, 8e6);
  const auto cal = gigabit_ethernet_calibration();
  const auto times = measure_scheme_fluid(g, cal);
  // Shared-memory copy is much faster than the network transfer.
  EXPECT_LT(times[0], times[1] / 5.0);
}

TEST(FluidSubstrate, TimesScaleLinearlyWithSize) {
  const auto cal = infiniband_calibration();
  const auto t1 = measure_scheme_fluid(graph::schemes::outgoing_fan(3, 2e6), cal);
  const auto t2 = measure_scheme_fluid(graph::schemes::outgoing_fan(3, 4e6), cal);
  for (size_t i = 0; i < t1.size(); ++i)
    EXPECT_NEAR(t2[i] / t1[i], 2.0, 0.01);
}

TEST(FluidSubstrate, BuildProblemShape) {
  const FluidRateProvider provider(gigabit_ethernet_calibration());
  const auto g = fig2_scheme(5);
  const auto problem = provider.build_problem(g);
  EXPECT_EQ(problem.num_flows, 5);
  // e (rx at the duplex-conflicted node 0) carries the RX weight.
  const auto e = g.find("e");
  ASSERT_TRUE(e.has_value());
  EXPECT_GT(problem.weights[static_cast<size_t>(*e)], 1.0);
  // a keeps weight 1.
  EXPECT_DOUBLE_EQ(problem.weights[0], 1.0);
}

TEST(FluidSubstrate, EmptyGraph) {
  const graph::CommGraph g;
  EXPECT_TRUE(measure_scheme_fluid(g, gigabit_ethernet_calibration()).empty());
}

// --- the arena-backed rates_into hot path ----------------------------------

// A random graph in the regime the engine hands the provider: several
// overlapping arcs over a small node set, so host-bus resources have
// multi-flow member lists.
graph::CommGraph random_graph(Rng& rng, int nodes, int comms) {
  graph::CommGraph g;
  for (int i = 0; i < comms; ++i) {
    const int src = static_cast<int>(rng.below(static_cast<uint64_t>(nodes)));
    int dst = static_cast<int>(rng.below(static_cast<uint64_t>(nodes)));
    if (dst == src) dst = (src + 1) % nodes;
    g.add(src, dst, 1e6 + static_cast<double>(rng.below(20000000)));
  }
  return g;
}

TEST(FluidSubstrate, RatesIntoIsBitIdenticalToRates) {
  const FluidRateProvider provider(gigabit_ethernet_calibration());
  util::Arena arena;
  Rng rng(99);
  for (int iter = 0; iter < 100; ++iter) {
    const auto g = random_graph(rng, 2 + static_cast<int>(rng.below(8)),
                                1 + static_cast<int>(rng.below(12)));
    const std::vector<double> reference = provider.rates(g);
    std::vector<double> out(static_cast<size_t>(g.size()), -1.0);
    util::Arena::Frame frame(arena);
    provider.rates_into(g, arena, out);
    ASSERT_EQ(out.size(), reference.size());
    for (size_t i = 0; i < out.size(); ++i)
      ASSERT_EQ(out[i], reference[i])  // bitwise, not approximate
          << "iter " << iter << " comm " << i;
  }
}

TEST(FluidSubstrate, RatesIntoIsBitIdenticalUnderAFatTree) {
  // Inner links add fat-tree resources after the host buses; the arena path
  // must replicate that construction order exactly.
  const auto cal = gigabit_ethernet_calibration();
  const auto cluster = topo::ClusterSpec::uniform("ft", 16, 1, cal);
  const FluidRateProvider provider(cal,
                                   topo::FatTree::for_cluster(cluster, 4));
  util::Arena arena;
  Rng rng(7);
  for (int iter = 0; iter < 50; ++iter) {
    const auto g = random_graph(rng, 16, 1 + static_cast<int>(rng.below(16)));
    const std::vector<double> reference = provider.rates(g);
    std::vector<double> out(static_cast<size_t>(g.size()), -1.0);
    util::Arena::Frame frame(arena);
    provider.rates_into(g, arena, out);
    for (size_t i = 0; i < out.size(); ++i)
      ASSERT_EQ(out[i], reference[i]) << "iter " << iter << " comm " << i;
  }
}

TEST(FluidSubstrate, RatesIntoIsAllocationFreeOnceWarm) {
  const FluidRateProvider provider(gigabit_ethernet_calibration());
  util::Arena arena;
  const auto g = fig2_scheme(5);
  std::vector<double> out(static_cast<size_t>(g.size()));
  {
    util::Arena::Frame frame(arena);
    provider.rates_into(g, arena, out);  // warm-up may grow the arena
  }
  arena.reset();
  const uint64_t a0 = util::alloc_count();
  for (int rep = 0; rep < 8; ++rep) {
    util::Arena::Frame frame(arena);
    provider.rates_into(g, arena, out);
  }
  EXPECT_EQ(util::alloc_count(), a0);
}

TEST(FluidSubstrate, BaseClassRatesIntoFallbackMatchesRates) {
  // A provider that overrides only the vector API exercises the documented
  // base default: forward to rates() and copy. Correct, just allocating.
  class Doubler final : public RateProvider {
   public:
    [[nodiscard]] std::vector<double> rates(
        const graph::CommGraph& active) const override {
      std::vector<double> r(static_cast<size_t>(active.size()));
      for (graph::CommId i = 0; i < active.size(); ++i)
        r[static_cast<size_t>(i)] = 2.0 * static_cast<double>(i + 1);
      return r;
    }
  };
  const Doubler provider;
  util::Arena arena;
  graph::CommGraph g;
  g.add(0, 1, 1.0);
  g.add(1, 2, 1.0);
  g.add(2, 0, 1.0);
  std::vector<double> out(3, -1.0);
  provider.rates_into(g, arena, out);
  const auto reference = provider.rates(g);
  for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], reference[i]);
}

}  // namespace
}  // namespace bwshare::flowsim
