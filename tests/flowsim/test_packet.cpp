// Packet-level simulator tests: each flow-control mechanism must show its
// characteristic sharing behaviour and agree with the fluid substrate on the
// canonical conflicts (the abl_fluid_vs_packet bench quantifies this).
#include "flowsim/packet.hpp"

#include <gtest/gtest.h>

#include "flowsim/fluid_network.hpp"
#include "graph/schemes.hpp"
#include "util/error.hpp"

namespace bwshare::flowsim {
namespace {

PacketSimConfig config_for(const topo::NetworkCalibration& cal) {
  PacketSimConfig cfg;
  cfg.cal = cal;
  return cfg;
}

// Use ~2 MB messages: >1000 packets, fast to simulate.
constexpr double kBytes = 2e6;

TEST(PacketSim, SingleFlowReachesSingleStreamEfficiency) {
  for (const auto& cal :
       {topo::gigabit_ethernet_calibration(), topo::myrinet2000_calibration(),
        topo::infiniband_calibration()}) {
    const auto g = graph::schemes::outgoing_fan(1, kBytes);
    const auto p = measure_penalties_packet(g, config_for(cal));
    ASSERT_EQ(p.size(), 1u);
    EXPECT_NEAR(p[0], 1.0, 0.05) << to_string(cal.tech);
  }
}

TEST(PacketSim, GigeFanSharingMatchesBeta) {
  const auto cal = topo::gigabit_ethernet_calibration();
  for (int fan = 2; fan <= 3; ++fan) {
    const auto g = graph::schemes::outgoing_fan(fan, kBytes);
    const auto p = measure_penalties_packet(g, config_for(cal));
    for (double v : p) EXPECT_NEAR(v, 0.75 * fan, 0.12) << "fan " << fan;
  }
}

TEST(PacketSim, MyrinetFanSerializes) {
  const auto cal = topo::myrinet2000_calibration();
  for (int fan = 2; fan <= 3; ++fan) {
    const auto g = graph::schemes::outgoing_fan(fan, kBytes);
    const auto p = measure_penalties_packet(g, config_for(cal));
    for (double v : p) EXPECT_NEAR(v, 0.95 * fan, 0.15) << "fan " << fan;
  }
}

TEST(PacketSim, InfinibandFanSharing) {
  const auto cal = topo::infiniband_calibration();
  for (int fan = 2; fan <= 3; ++fan) {
    const auto g = graph::schemes::outgoing_fan(fan, kBytes);
    const auto p = measure_penalties_packet(g, config_for(cal));
    for (double v : p) EXPECT_NEAR(v, 0.87 * fan, 0.15) << "fan " << fan;
  }
}

TEST(PacketSim, AgreesWithFluidOnIncomeConflict) {
  for (const auto& cal :
       {topo::gigabit_ethernet_calibration(), topo::myrinet2000_calibration(),
        topo::infiniband_calibration()}) {
    const auto g = graph::schemes::incoming_fan(3, kBytes);
    const auto packet = measure_penalties_packet(g, config_for(cal));
    const auto fluid = measure_penalties(g, cal);
    for (size_t i = 0; i < packet.size(); ++i)
      EXPECT_NEAR(packet[i] / fluid[i], 1.0, 0.15)
          << to_string(cal.tech) << " comm " << i;
  }
}

TEST(PacketSim, DuplexConflictSlowsSenders) {
  // Fig 2 scheme 5 shape: adding an incoming flow at node 0 must slow the
  // three outgoing flows well beyond the pure 3-fan penalty.
  const auto cal = topo::myrinet2000_calibration();
  const auto fan = measure_penalties_packet(
      graph::schemes::fig2_scheme(3, kBytes), config_for(cal));
  const auto duplex = measure_penalties_packet(
      graph::schemes::fig2_scheme(5, kBytes), config_for(cal));
  EXPECT_GT(duplex[0], fan[0] * 1.25);
}

TEST(PacketSim, IntraNodeFlow) {
  graph::CommGraph g;
  g.add("shm", 1, 1, 1e6);
  const auto cal = topo::gigabit_ethernet_calibration();
  const auto t = measure_scheme_packet(g, config_for(cal));
  ASSERT_EQ(t.size(), 1u);
  EXPECT_NEAR(t[0], cal.latency + 1e6 / cal.shm_bandwidth, 2e-4);
}

TEST(PacketSim, EmptyGraph) {
  const graph::CommGraph g;
  EXPECT_TRUE(
      measure_scheme_packet(g, config_for(topo::gigabit_ethernet_calibration()))
          .empty());
}

TEST(PacketSim, Validation) {
  PacketSimConfig cfg;
  cfg.cal = topo::gigabit_ethernet_calibration();
  cfg.window_packets = 0;
  graph::CommGraph g;
  g.add("a", 0, 1, 1e6);
  EXPECT_THROW(measure_scheme_packet(g, cfg), Error);
}

}  // namespace
}  // namespace bwshare::flowsim
