#include "flowsim/des.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"

namespace bwshare::flowsim {
namespace {

TEST(Des, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Des, SimultaneousEventsAreFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Des, HandlersCanScheduleMoreEvents) {
  Simulator sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 10) sim.schedule_in(1.0, chain);
  };
  sim.schedule_in(1.0, chain);
  sim.run();
  EXPECT_EQ(fired, 10);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(Des, RunStopsAtMaxTime) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(5.0, [&] { ++fired; });
  sim.run(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Des, CannotScheduleInThePast) {
  Simulator sim;
  sim.schedule_at(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(1.0, [] {}), Error);
  EXPECT_THROW(sim.schedule_in(-1.0, [] {}), Error);
}

TEST(Des, Clear) {
  Simulator sim;
  sim.schedule_at(1.0, [] {});
  sim.clear();
  EXPECT_TRUE(sim.empty());
  EXPECT_EQ(sim.run(), 0u);
}

// Event cancellation arrived with the core::EventQueue port: schedule_*
// return the queue entry's handle and cancel() drops it in O(log n).

TEST(Des, CancelPreventsFiring) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  const auto doomed = sim.schedule_at(2.0, [&] { fired += 100; });
  sim.schedule_at(3.0, [&] { ++fired; });
  EXPECT_TRUE(sim.cancel(doomed));
  EXPECT_EQ(sim.run(), 2u);
  EXPECT_EQ(fired, 2);
}

TEST(Des, CancelReportsStaleHandles) {
  Simulator sim;
  const auto h = sim.schedule_at(1.0, [] {});
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_FALSE(sim.cancel(h));  // already fired
  const auto h2 = sim.schedule_at(2.0, [] {});
  EXPECT_TRUE(sim.cancel(h2));
  EXPECT_FALSE(sim.cancel(h2));  // already cancelled
}

}  // namespace
}  // namespace bwshare::flowsim
