// Shared bitwise SimResult comparison for every suite that pins the
// engine's determinism contract: the sim equivalence fuzzes (heap vs scan,
// parallel vs serial, incremental vs full) and the serving conformance
// suite (cached/warm/coalesced answers vs fresh replays).
//
// Two layers on purpose:
//   * sim::bit_identical (src/sim/engine.hpp) is the product-side one-bool
//     gate — every field of every record, exact ==;
//   * expect_bit_identical re-walks the fields with per-field EXPECTs so a
//     regression names the first diverging field and index instead of
//     reporting one opaque false.
#pragma once

#include <gtest/gtest.h>

#include "sim/engine.hpp"

namespace bwshare::sim {

/// Exact equality — the compared replays run the same arithmetic in the
/// same order, so every derived number must match to the last bit. Also
/// covers the dynamic-cluster bookkeeping: abort/background flags per
/// record and the scenario counters.
inline void expect_bit_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.aborted_comms, b.aborted_comms);
  EXPECT_EQ(a.background_comms, b.background_comms);
  EXPECT_EQ(a.background_skipped, b.background_skipped);
  ASSERT_EQ(a.comms.size(), b.comms.size());
  for (size_t i = 0; i < a.comms.size(); ++i) {
    EXPECT_EQ(a.comms[i].src_task, b.comms[i].src_task) << "comm " << i;
    EXPECT_EQ(a.comms[i].dst_task, b.comms[i].dst_task) << "comm " << i;
    EXPECT_EQ(a.comms[i].src_node, b.comms[i].src_node) << "comm " << i;
    EXPECT_EQ(a.comms[i].dst_node, b.comms[i].dst_node) << "comm " << i;
    EXPECT_EQ(a.comms[i].bytes, b.comms[i].bytes) << "comm " << i;
    EXPECT_EQ(a.comms[i].send_post, b.comms[i].send_post) << "comm " << i;
    EXPECT_EQ(a.comms[i].recv_post, b.comms[i].recv_post) << "comm " << i;
    EXPECT_EQ(a.comms[i].start, b.comms[i].start) << "comm " << i;
    EXPECT_EQ(a.comms[i].finish, b.comms[i].finish) << "comm " << i;
    EXPECT_EQ(a.comms[i].penalty, b.comms[i].penalty) << "comm " << i;
    EXPECT_EQ(a.comms[i].sender_time, b.comms[i].sender_time)
        << "comm " << i;
    EXPECT_EQ(a.comms[i].background, b.comms[i].background) << "comm " << i;
    EXPECT_EQ(a.comms[i].aborted, b.comms[i].aborted) << "comm " << i;
  }
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (size_t t = 0; t < a.tasks.size(); ++t) {
    EXPECT_EQ(a.tasks[t].finish_time, b.tasks[t].finish_time)
        << "task " << t;
    EXPECT_EQ(a.tasks[t].compute_seconds, b.tasks[t].compute_seconds)
        << "task " << t;
    EXPECT_EQ(a.tasks[t].send_blocked_seconds,
              b.tasks[t].send_blocked_seconds)
        << "task " << t;
    EXPECT_EQ(a.tasks[t].recv_blocked_seconds,
              b.tasks[t].recv_blocked_seconds)
        << "task " << t;
    EXPECT_EQ(a.tasks[t].barrier_wait_seconds,
              b.tasks[t].barrier_wait_seconds)
        << "task " << t;
    EXPECT_EQ(a.tasks[t].sends, b.tasks[t].sends) << "task " << t;
    EXPECT_EQ(a.tasks[t].recvs, b.tasks[t].recvs) << "task " << t;
  }
  // The per-field walk above and the product-side gate must agree.
  EXPECT_TRUE(bit_identical(a, b));
}

}  // namespace bwshare::sim
