#include <gtest/gtest.h>

#include "graph/scheme_lexer.hpp"
#include "graph/scheme_parser.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace bwshare::graph {
namespace {

TEST(SchemeLexer, BasicTokens) {
  const auto tokens = tokenize_scheme("comm a 0 -> 1 size 20M");
  ASSERT_GE(tokens.size(), 8u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdent);
  EXPECT_EQ(tokens[0].text, "comm");
  EXPECT_EQ(tokens[2].kind, TokenKind::kNumber);
  EXPECT_EQ(tokens[3].kind, TokenKind::kArrow);
  EXPECT_EQ(tokens[6].text, "20M");
}

TEST(SchemeLexer, CommentsAndBlankLinesIgnored) {
  const auto tokens = tokenize_scheme("# header\n\n\ncomm a 0 -> 1\n# tail");
  EXPECT_EQ(tokens[0].text, "comm");
}

TEST(SchemeLexer, StringsAndLineNumbers) {
  const auto tokens = tokenize_scheme("scheme \"my scheme\"\ncomm a 0 -> 1");
  EXPECT_EQ(tokens[1].kind, TokenKind::kString);
  EXPECT_EQ(tokens[1].text, "my scheme");
  EXPECT_EQ(tokens[1].line, 1);
  // 'comm' is on line 2.
  const auto it = std::find_if(tokens.begin(), tokens.end(), [](const Token& t) {
    return t.text == "comm";
  });
  ASSERT_NE(it, tokens.end());
  EXPECT_EQ(it->line, 2);
}

TEST(SchemeLexer, RejectsBadInput) {
  EXPECT_THROW(tokenize_scheme("comm a 0 -> 1 $"), Error);
  EXPECT_THROW(tokenize_scheme("scheme \"unterminated"), Error);
}

TEST(SchemeParser, ParsesFig2S3) {
  const auto parsed = parse_scheme(R"(
scheme "fig2/S3"
size 20M
comm a 0 -> 1
comm b 0 -> 2
comm c 0 -> 3
)");
  EXPECT_EQ(parsed.name, "fig2/S3");
  EXPECT_EQ(parsed.graph.size(), 3);
  EXPECT_EQ(parsed.declared_nodes, 4);
  EXPECT_DOUBLE_EQ(parsed.graph.comm(0).bytes, 20e6);
}

TEST(SchemeParser, PerCommSizeOverride) {
  const auto parsed = parse_scheme("size 1M\ncomm a 0 -> 1 size 4MiB\ncomm b 0 -> 2");
  EXPECT_DOUBLE_EQ(parsed.graph.comm(0).bytes, 4.0 * MiB);
  EXPECT_DOUBLE_EQ(parsed.graph.comm(1).bytes, 1e6);
}

TEST(SchemeParser, BackArrow) {
  const auto parsed = parse_scheme("comm a 3 <- 0");
  EXPECT_EQ(parsed.graph.comm(0).src, 0);
  EXPECT_EQ(parsed.graph.comm(0).dst, 3);
}

TEST(SchemeParser, NodesDirectiveValidatesRange) {
  EXPECT_NO_THROW(parse_scheme("nodes 4\ncomm a 0 -> 3"));
  EXPECT_THROW(parse_scheme("nodes 2\ncomm a 0 -> 3"), Error);
}

TEST(SchemeParser, ErrorsCarryLineNumbers) {
  try {
    (void)parse_scheme("comm a 0 -> 1\ncomm b 0 ->");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(SchemeParser, RejectsUnknownStatement) {
  EXPECT_THROW(parse_scheme("flurb 3"), Error);
}

TEST(SchemeParser, RejectsDuplicateLabels) {
  EXPECT_THROW(parse_scheme("comm a 0 -> 1\ncomm a 0 -> 2"), Error);
}

TEST(SchemeParser, RoundTripThroughText) {
  const auto original = parse_scheme(R"(
scheme "round-trip"
comm a 0 -> 1 size 1000000
comm b 2 -> 0 size 500000
)");
  const std::string text = to_scheme_text(original.graph, "round-trip");
  const auto reparsed = parse_scheme(text);
  ASSERT_EQ(reparsed.graph.size(), original.graph.size());
  for (CommId i = 0; i < original.graph.size(); ++i) {
    EXPECT_EQ(reparsed.graph.label(i), original.graph.label(i));
    EXPECT_EQ(reparsed.graph.comm(i).src, original.graph.comm(i).src);
    EXPECT_EQ(reparsed.graph.comm(i).dst, original.graph.comm(i).dst);
    EXPECT_DOUBLE_EQ(reparsed.graph.comm(i).bytes,
                     original.graph.comm(i).bytes);
  }
}

}  // namespace
}  // namespace bwshare::graph
