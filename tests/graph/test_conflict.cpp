#include "graph/conflict.hpp"

#include <gtest/gtest.h>

#include "graph/schemes.hpp"

namespace bwshare::graph {
namespace {

TEST(Conflicts, ClassifyElementaryKinds) {
  // Fig 1: node 0 outgoing conflict, node 1 income conflict, node 2 both
  // directions.
  CommGraph g;
  g.add("a", 0, 1, 1.0);
  g.add("b", 0, 1, 1.0);
  g.add("c", 2, 3, 1.0);
  g.add("d", 4, 2, 1.0);
  const auto conflicts = classify_conflicts(g);
  // a and b: outgoing conflict at 0 and income conflict at 1.
  EXPECT_TRUE(conflicts[0].outgoing);
  EXPECT_TRUE(conflicts[0].income);
  EXPECT_EQ(conflicts[0].dominant(), ConflictKind::kMixed);
  // c: its source node 2 also receives d -> income/outgo.
  EXPECT_FALSE(conflicts[2].outgoing);
  EXPECT_TRUE(conflicts[2].income_outgo);
  EXPECT_EQ(conflicts[2].dominant(), ConflictKind::kIncomeOutgo);
  // d: its destination node 2 also sends c -> income/outgo.
  EXPECT_TRUE(conflicts[3].income_outgo);
}

TEST(Conflicts, UnconflictedComm) {
  CommGraph g;
  g.add("a", 0, 1, 1.0);
  const auto conflicts = classify_conflicts(g);
  EXPECT_FALSE(conflicts[0].any());
  EXPECT_EQ(conflicts[0].dominant(), ConflictKind::kNone);
}

TEST(ConflictGraph, SameDirectionRule) {
  const auto g = schemes::fig5_scheme();
  const ConflictGraph cg(g, ConflictRule::kSharedEndpointSameDirection);
  const auto id = [&](const char* label) { return *g.find(label); };
  // Same source: a,b,c from node 0; e,f from node 2.
  EXPECT_TRUE(cg.conflicts(id("a"), id("b")));
  EXPECT_TRUE(cg.conflicts(id("e"), id("f")));
  // Same destination: a,d,e into node 1.
  EXPECT_TRUE(cg.conflicts(id("a"), id("d")));
  EXPECT_TRUE(cg.conflicts(id("d"), id("e")));
  // Income/outgo pairs are NOT conflicts under this rule: b:0->2 vs e:2->1.
  EXPECT_FALSE(cg.conflicts(id("b"), id("e")));
  // Disjoint endpoints: b:0->2 vs d:4->1.
  EXPECT_FALSE(cg.conflicts(id("b"), id("d")));
}

TEST(ConflictGraph, SharedHostRuleAddsIncomeOutgo) {
  const auto g = schemes::fig5_scheme();
  const ConflictGraph cg(g, ConflictRule::kSharedHost);
  const auto id = [&](const char* label) { return *g.find(label); };
  EXPECT_TRUE(cg.conflicts(id("b"), id("e")));  // b's dst 2 == e's src 2
}

TEST(ConflictGraph, ComponentsOfFig5) {
  const auto g = schemes::fig5_scheme();
  const ConflictGraph cg(g, ConflictRule::kSharedEndpointSameDirection);
  const auto comps = cg.components();
  // Fig 5's six comms are all linked: a-b-c via node 0, a-d-e via node 1,
  // e-f via node 2 -> one component.
  ASSERT_EQ(comps.size(), 1u);
  EXPECT_EQ(comps[0].size(), 6u);
}

TEST(ConflictGraph, DisjointFansSplitIntoComponents) {
  CommGraph g;
  g.add("a", 0, 1, 1.0);
  g.add("b", 0, 2, 1.0);
  g.add("c", 5, 6, 1.0);
  g.add("d", 5, 7, 1.0);
  const ConflictGraph cg(g, ConflictRule::kSharedEndpointSameDirection);
  const auto comps = cg.components();
  ASSERT_EQ(comps.size(), 2u);
  EXPECT_EQ(comps[0], (std::vector<CommId>{0, 1}));
  EXPECT_EQ(comps[1], (std::vector<CommId>{2, 3}));
}

TEST(ConflictGraph, ComponentsOfFullyDisjointGraphAreSingletons) {
  // Pairwise-disjoint endpoints: every comm is its own component — the
  // shape the incremental engine's sparse-schedule fast path relies on.
  CommGraph g;
  g.add("a", 0, 1, 1.0);
  g.add("b", 2, 3, 1.0);
  g.add("c", 4, 5, 1.0);
  const ConflictGraph cg(g, ConflictRule::kSharedEndpointSameDirection);
  const auto comps = cg.components();
  ASSERT_EQ(comps.size(), 3u);
  for (size_t i = 0; i < comps.size(); ++i)
    EXPECT_EQ(comps[i], std::vector<CommId>{static_cast<CommId>(i)});
}

TEST(ConflictGraph, ComponentsOfSingletonAndEmptyGraphs) {
  CommGraph one;
  one.add("a", 0, 1, 1.0);
  const ConflictGraph cg_one(one, ConflictRule::kSharedEndpointSameDirection);
  ASSERT_EQ(cg_one.components().size(), 1u);
  EXPECT_EQ(cg_one.components()[0], std::vector<CommId>{0});

  const CommGraph empty;
  const ConflictGraph cg_empty(empty,
                               ConflictRule::kSharedEndpointSameDirection);
  EXPECT_TRUE(cg_empty.components().empty());
}

TEST(ConflictGraph, IntraNodeCommIsAlwaysASingletonComponent) {
  // Intra-node copies never conflict on the network, even when their node
  // also terminates network communications.
  CommGraph g;
  g.add("net", 0, 1, 1.0);
  g.add("shm", 0, 0, 1.0);
  const ConflictGraph cg(g, ConflictRule::kSharedHost);
  const auto comps = cg.components();
  ASSERT_EQ(comps.size(), 2u);
  EXPECT_EQ(comps[0], std::vector<CommId>{0});
  EXPECT_EQ(comps[1], std::vector<CommId>{1});
}

TEST(ConflictGraph, DegreeCounts) {
  const auto g = schemes::outgoing_fan(4);
  const ConflictGraph cg(g, ConflictRule::kSharedEndpointSameDirection);
  for (CommId i = 0; i < g.size(); ++i) EXPECT_EQ(cg.degree(i), 3);
}

TEST(StronglySlow, Fig4SetsMatchPaperReasoning) {
  const auto g = schemes::fig4_scheme();
  // Cm_o of a (source 0): among {a->1, b->2, c->3} the max Δi is node 3's
  // (c,e,f) = 3, reached by c only -> Cm_o = {c}, a not in it.
  const auto slow_a = strongly_slow_sets(g, *g.find("a"));
  EXPECT_EQ(slow_a.cm_o.size(), 1u);
  EXPECT_EQ(slow_a.cm_o[0], *g.find("c"));
  EXPECT_FALSE(slow_a.in_cm_o);
  // Cm_i of f (destination 3): among {c,e,f} the max Δo is c's 3 -> {c}.
  const auto slow_f = strongly_slow_sets(g, *g.find("f"));
  EXPECT_EQ(slow_f.cm_i.size(), 1u);
  EXPECT_EQ(slow_f.cm_i[0], *g.find("c"));
  EXPECT_FALSE(slow_f.in_cm_i);
  // c is strongly slow on both sides.
  const auto slow_c = strongly_slow_sets(g, *g.find("c"));
  EXPECT_TRUE(slow_c.in_cm_o);
  EXPECT_TRUE(slow_c.in_cm_i);
}

TEST(StronglySlow, SymmetricFanEveryoneStronglySlow) {
  const auto g = schemes::outgoing_fan(3);
  for (CommId i = 0; i < g.size(); ++i) {
    const auto slow = strongly_slow_sets(g, i);
    EXPECT_TRUE(slow.in_cm_o);
    EXPECT_EQ(slow.cm_o.size(), 3u);
  }
}

}  // namespace
}  // namespace bwshare::graph
