#include "graph/generator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace bwshare::graph {
namespace {

// Structural equality down to message sizes — the determinism contract.
void expect_identical(const CommGraph& a, const CommGraph& b) {
  ASSERT_EQ(a.size(), b.size());
  for (CommId i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.label(i), b.label(i));
    EXPECT_EQ(a.comm(i).src, b.comm(i).src);
    EXPECT_EQ(a.comm(i).dst, b.comm(i).dst);
    EXPECT_EQ(a.comm(i).bytes, b.comm(i).bytes);  // bit-exact, no tolerance
  }
}

TEST(SchemeFamily, RoundTripsThroughStrings) {
  for (const auto family :
       {SchemeFamily::kRing, SchemeFamily::kHotspot,
        SchemeFamily::kUniformRandom, SchemeFamily::kAllToAll}) {
    EXPECT_EQ(scheme_family_from_string(to_string(family)), family);
  }
  EXPECT_THROW((void)scheme_family_from_string("torus"), Error);
}

TEST(GeneratorSpec, ParsesFullSpec) {
  const auto spec =
      parse_generator_spec("random:nodes=12,comms=18,bytes=4M,spread=1");
  EXPECT_EQ(spec.family, SchemeFamily::kUniformRandom);
  EXPECT_EQ(spec.nodes, 12);
  EXPECT_EQ(spec.comms, 18);
  EXPECT_DOUBLE_EQ(spec.bytes, 4e6);
  EXPECT_DOUBLE_EQ(spec.spread, 1.0);
}

TEST(GeneratorSpec, EmptyParamsMeanDefaults) {
  const auto spec = parse_generator_spec("ring:");
  EXPECT_EQ(spec.family, SchemeFamily::kRing);
  EXPECT_EQ(spec.nodes, 8);
  EXPECT_DOUBLE_EQ(spec.bytes, 4e6);
}

TEST(GeneratorSpec, RejectsMalformedInput) {
  EXPECT_THROW((void)parse_generator_spec("ring"), Error);  // no colon
  EXPECT_THROW((void)parse_generator_spec("torus:nodes=4"), Error);
  EXPECT_THROW((void)parse_generator_spec("ring:nodes"), Error);
  EXPECT_THROW((void)parse_generator_spec("ring:nodes=abc"), Error);
  EXPECT_THROW((void)parse_generator_spec("ring:sides=4"), Error);
  EXPECT_THROW((void)parse_generator_spec("ring:bytes=4Q"), Error);
}

TEST(GeneratorSpec, ValidatesRanges) {
  EXPECT_THROW((void)parse_generator_spec("ring:nodes=1"), Error);
  EXPECT_THROW((void)parse_generator_spec("ring:nodes=257"), Error);
  EXPECT_THROW((void)parse_generator_spec("alltoall:nodes=9"), Error);
  EXPECT_THROW((void)parse_generator_spec("random:comms=5000"), Error);
  EXPECT_THROW((void)parse_generator_spec("ring:comms=4"), Error);
  EXPECT_THROW((void)parse_generator_spec("ring:bytes=0"), Error);
  EXPECT_THROW((void)parse_generator_spec("ring:spread=9"), Error);
  EXPECT_THROW((void)parse_generator_spec("ring:spread=-1"), Error);
}

TEST(GeneratorSpec, RejectsValuesThatWouldWrapTheIntCast) {
  // 2^32+2 must not silently truncate into the valid [2, 256] range.
  EXPECT_THROW((void)parse_generator_spec("random:nodes=4294967298"), Error);
  EXPECT_THROW((void)parse_generator_spec("random:comms=4294967298"), Error);
  EXPECT_THROW((void)parse_generator_spec("ring:nodes=99999999999999999999"),
               Error);
}

TEST(GenerateScheme, RingStructure) {
  const auto g =
      generate_scheme(parse_generator_spec("ring:nodes=6,bytes=1M"), 7);
  ASSERT_EQ(g.size(), 6);
  for (CommId i = 0; i < g.size(); ++i) {
    EXPECT_EQ(g.comm(i).src, i);
    EXPECT_EQ(g.comm(i).dst, (i + 1) % 6);
    EXPECT_DOUBLE_EQ(g.comm(i).bytes, 1e6);
  }
}

TEST(GenerateScheme, AllToAllHasEveryOrderedPair) {
  const auto g =
      generate_scheme(parse_generator_spec("alltoall:nodes=5"), 1);
  EXPECT_EQ(g.size(), 5 * 4);
  EXPECT_EQ(g.num_nodes(), 5);
  for (const auto& c : g.comms()) EXPECT_NE(c.src, c.dst);
}

TEST(GenerateScheme, HotspotArcsAllTouchNodeZero) {
  const auto g =
      generate_scheme(parse_generator_spec("hotspot:nodes=9"), 3);
  EXPECT_EQ(g.size(), 8);
  bool any_incoming = false;
  for (const auto& c : g.comms()) {
    EXPECT_TRUE(c.src == 0 || c.dst == 0);
    EXPECT_NE(c.src, c.dst);
    if (c.dst == 0) any_incoming = true;
  }
  EXPECT_TRUE(any_incoming);  // node 1 always sends into the hotspot
}

TEST(GenerateScheme, RandomFamilyRespectsCounts) {
  const auto g = generate_scheme(
      parse_generator_spec("random:nodes=7,comms=25"), 11);
  EXPECT_EQ(g.size(), 25);
  for (const auto& c : g.comms()) {
    EXPECT_GE(c.src, 0);
    EXPECT_LT(c.src, 7);
    EXPECT_GE(c.dst, 0);
    EXPECT_LT(c.dst, 7);
    EXPECT_NE(c.src, c.dst);
  }
}

TEST(GenerateScheme, RandomCommsDefaultsToTwiceNodes) {
  const auto g =
      generate_scheme(parse_generator_spec("random:nodes=5"), 11);
  EXPECT_EQ(g.size(), 10);
}

TEST(GenerateScheme, StableForAFixedSeed) {
  for (const char* spec_text :
       {"ring:nodes=8,spread=2", "hotspot:nodes=12,spread=1",
        "random:nodes=10,comms=20,spread=0.5", "alltoall:nodes=4"}) {
    const auto spec = parse_generator_spec(spec_text);
    expect_identical(generate_scheme(spec, 123), generate_scheme(spec, 123));
  }
}

TEST(GenerateScheme, DifferentSeedsDiffer) {
  const auto spec = parse_generator_spec("random:nodes=16,comms=40");
  const auto a = generate_scheme(spec, 1);
  const auto b = generate_scheme(spec, 2);
  bool any_difference = false;
  for (CommId i = 0; i < a.size(); ++i) {
    if (a.comm(i).src != b.comm(i).src || a.comm(i).dst != b.comm(i).dst) {
      any_difference = true;
      break;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(GenerateScheme, SpreadBoundsMessageSizes) {
  const auto spec = parse_generator_spec("random:nodes=8,bytes=1M,spread=2");
  const auto g = generate_scheme(spec, 5);
  bool any_off_base = false;
  for (const auto& c : g.comms()) {
    EXPECT_GE(c.bytes, 1e6 * std::exp2(-2.0));
    EXPECT_LE(c.bytes, 1e6 * std::exp2(2.0));
    if (c.bytes != 1e6) any_off_base = true;
  }
  EXPECT_TRUE(any_off_base);
}

}  // namespace
}  // namespace bwshare::graph
