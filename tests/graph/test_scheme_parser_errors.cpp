// Negative paths of the scheme DSL parser: every rejected input documented
// in docs/SCHEME_DSL.md ("Rejected examples") is pinned here with its exact
// error message, so the docs table and the parser cannot drift apart.
#include "graph/scheme_parser.hpp"

#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace bwshare::graph {
namespace {

/// Parse `source` expecting failure; assert the message contains `needle`.
void expect_parse_error(const std::string& source, const std::string& needle) {
  try {
    (void)parse_scheme(source);
    FAIL() << "expected a parse error containing \"" << needle
           << "\" for input:\n"
           << source;
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "error message was: " << e.what();
  }
}

TEST(SchemeParserErrors, NodeBeyondDeclaredCount) {
  expect_parse_error("nodes 2\ncomm a 0 -> 3\n",
                     "scheme references node 3 but declares only 2 nodes");
}

TEST(SchemeParserErrors, MissingDestinationNode) {
  expect_parse_error(
      "comm a 0 -> 1\ncomm b 0 ->\n",
      "line 2: expected destination node (number), got newline");
}

TEST(SchemeParserErrors, MissingArrowBetweenNodes) {
  expect_parse_error("comm a 0 1\n",
                     "line 1: expected '->' or '<-' after node id");
}

TEST(SchemeParserErrors, UnknownStatement) {
  expect_parse_error("flurb 3\n", "line 1: unknown statement 'flurb'");
}

TEST(SchemeParserErrors, DuplicateCommLabel) {
  expect_parse_error("comm a 0 -> 1\ncomm a 0 -> 2\n",
                     "duplicate communication label 'a'");
}

TEST(SchemeParserErrors, UnknownSizeSuffix) {
  expect_parse_error("comm a 0 -> 1 size 3QiB\n",
                     "unknown size suffix 'QiB' in '3QiB'");
}

TEST(SchemeParserErrors, UnexpectedCharacter) {
  expect_parse_error("comm a 0 -> 1 $\n", "line 1: unexpected character '$'");
}

TEST(SchemeParserErrors, UnterminatedString) {
  expect_parse_error("scheme \"unterminated\n", "line 1: unterminated string");
}

TEST(SchemeParserErrors, DuplicateSchemeDirective) {
  expect_parse_error("scheme \"x\"\nscheme \"y\"\n",
                     "line 2: duplicate 'scheme' directive");
}

TEST(SchemeParserErrors, NodesMustBePositive) {
  expect_parse_error("nodes 0\n", "'nodes' must be positive");
}

TEST(SchemeParserErrors, NonIntegerNodeId) {
  expect_parse_error("comm a 1.5 -> 2\n",
                     "line 1: source node must be an integer, got '1.5'");
}

TEST(SchemeParserErrors, OutOfRangeNodeCount) {
  // A count past INT_MAX must be rejected, not silently truncated.
  expect_parse_error("nodes 99999999999999999999\n",
                     "node count out of range: '99999999999999999999'");
  expect_parse_error("comm a 4294967296 -> 1\n",
                     "source node out of range: '4294967296'");
}

TEST(SchemeParserErrors, MissingSizeLiteral) {
  expect_parse_error("comm a 0 -> 1 size\n",
                     "line 1: expected size literal (number), got newline");
}

TEST(SchemeParserErrors, ReservedBraceToken) {
  // '{', '}' and ',' are lexed but rejected by the grammar.
  expect_parse_error("comm a 0 -> 1 {\n",
                     "line 1: expected end of statement (newline), got '{'");
}

TEST(SchemeParserErrors, FileErrorsCarryThePath) {
  EXPECT_THROW((void)parse_scheme_file("/nonexistent/x.scheme"), Error);
  const std::string path = testing::TempDir() + "bad_scheme_errors.scheme";
  {
    std::ofstream out(path);
    out << "flurb 3\n";
  }
  try {
    (void)parse_scheme_file(path);
    FAIL() << "expected the parse to fail";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(path), std::string::npos) << msg;
    EXPECT_NE(msg.find("unknown statement 'flurb'"), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace bwshare::graph
