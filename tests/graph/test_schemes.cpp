#include "graph/schemes.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/dot.hpp"
#include "util/error.hpp"

namespace bwshare::graph {
namespace {

TEST(Schemes, Fig2Progression) {
  for (int k = 1; k <= 6; ++k) {
    const auto g = schemes::fig2_scheme(k);
    EXPECT_EQ(g.size(), k) << "scheme S" << k;
  }
  EXPECT_THROW(schemes::fig2_scheme(0), Error);
  EXPECT_THROW(schemes::fig2_scheme(7), Error);
}

TEST(Schemes, Fig2SchemesNest) {
  // S(k) is S(k-1) plus one communication.
  for (int k = 2; k <= 6; ++k) {
    const auto small = schemes::fig2_scheme(k - 1);
    const auto large = schemes::fig2_scheme(k);
    for (CommId i = 0; i < small.size(); ++i) {
      EXPECT_EQ(small.label(i), large.label(i));
      EXPECT_EQ(small.comm(i).src, large.comm(i).src);
      EXPECT_EQ(small.comm(i).dst, large.comm(i).dst);
    }
  }
}

TEST(Schemes, Fig4DegreesSupportGammaEstimation) {
  const auto g = schemes::fig4_scheme();
  EXPECT_EQ(g.size(), 6);
  // The estimation equations need Δo(node 0) = 3 and Δi(node 3) = 3.
  EXPECT_EQ(g.out_degree(0), 3);
  EXPECT_EQ(g.in_degree(3), 3);
}

TEST(Schemes, Mk1IsATree) {
  const auto g = schemes::mk1_tree();
  EXPECT_EQ(g.size(), 7);
  EXPECT_EQ(g.num_nodes(), 8);
  // 7 edges on 8 nodes and connected (ignoring direction) == tree.
  std::vector<int> parent(8);
  for (int i = 0; i < 8; ++i) parent[i] = i;
  std::function<int(int)> find = [&](int x) {
    return parent[x] == x ? x : parent[x] = find(parent[x]);
  };
  int merges = 0;
  for (CommId i = 0; i < g.size(); ++i) {
    const auto& c = g.comm(i);
    const int a = find(c.src);
    const int b = find(c.dst);
    ASSERT_NE(a, b) << "cycle through comm " << g.label(i);
    parent[a] = b;
    ++merges;
  }
  EXPECT_EQ(merges, 7);
}

TEST(Schemes, Mk2IsCompleteOnFiveNodes) {
  const auto g = schemes::mk2_complete();
  EXPECT_EQ(g.size(), 10);
  EXPECT_EQ(g.num_nodes(), 5);
  std::set<std::pair<int, int>> pairs;
  for (CommId i = 0; i < g.size(); ++i) {
    const auto& c = g.comm(i);
    const auto pair = std::minmax(c.src, c.dst);
    EXPECT_TRUE(pairs.emplace(pair.first, pair.second).second)
        << "duplicate pair " << g.label(i);
  }
  EXPECT_EQ(pairs.size(), 10u);  // C(5,2)
}

TEST(Schemes, Fans) {
  const auto out = schemes::outgoing_fan(3, 1e6);
  EXPECT_EQ(out.out_degree(0), 3);
  EXPECT_EQ(out.in_degree(1), 1);
  const auto in = schemes::incoming_fan(3, 1e6);
  EXPECT_EQ(in.in_degree(0), 3);
  EXPECT_THROW(schemes::outgoing_fan(0), Error);
}

TEST(Schemes, RingShapes) {
  const auto wrapped = schemes::ring(5);
  EXPECT_EQ(wrapped.size(), 5);
  EXPECT_EQ(wrapped.comm(4).dst, 0);
  const auto open = schemes::ring(5, 1e6, /*wrap=*/false);
  EXPECT_EQ(open.size(), 4);
  EXPECT_THROW(schemes::ring(1), Error);
}

TEST(Dot, ExportMentionsEveryCommAndNode) {
  const auto g = schemes::fig5_scheme();
  const auto dot = to_dot(g, {{"a", "p=5"}});
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("p=5"), std::string::npos);
  for (CommId i = 0; i < g.size(); ++i) {
    const std::string label(g.label(i));
    EXPECT_NE(dot.find("\"" + label), std::string::npos) << label;
  }
}

}  // namespace
}  // namespace bwshare::graph
