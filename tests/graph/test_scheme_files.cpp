// The shipped .scheme files must parse and match their paper counterparts.
#include <gtest/gtest.h>

#include "graph/scheme_parser.hpp"
#include "graph/schemes.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace bwshare::graph {
namespace {

// The test binary runs from the build tree; data/ sits in the source tree.
std::string data_path(const std::string& name) {
  return std::string(BWSHARE_SOURCE_DIR) + "/data/" + name;
}

TEST(SchemeFiles, Fig2S4MatchesBuiltin) {
  const auto parsed = parse_scheme_file(data_path("fig2_s4.scheme"));
  const auto builtin = schemes::fig2_scheme(4);
  ASSERT_EQ(parsed.graph.size(), builtin.size());
  for (CommId i = 0; i < builtin.size(); ++i) {
    EXPECT_EQ(parsed.graph.label(i), builtin.label(i));
    EXPECT_EQ(parsed.graph.comm(i).src, builtin.comm(i).src);
    EXPECT_EQ(parsed.graph.comm(i).dst, builtin.comm(i).dst);
  }
  EXPECT_EQ(parsed.name, "fig2/S4");
}

TEST(SchemeFiles, Fig5MatchesBuiltin) {
  const auto parsed = parse_scheme_file(data_path("fig5_myrinet.scheme"));
  const auto builtin = schemes::fig5_scheme();
  ASSERT_EQ(parsed.graph.size(), builtin.size());
  for (CommId i = 0; i < builtin.size(); ++i) {
    EXPECT_EQ(parsed.graph.comm(i).src, builtin.comm(i).src);
    EXPECT_EQ(parsed.graph.comm(i).dst, builtin.comm(i).dst);
  }
}

TEST(SchemeFiles, Mk2MatchesBuiltin) {
  const auto parsed = parse_scheme_file(data_path("mk2_complete.scheme"));
  const auto builtin = schemes::mk2_complete();
  ASSERT_EQ(parsed.graph.size(), builtin.size());
  for (CommId i = 0; i < builtin.size(); ++i) {
    EXPECT_EQ(parsed.graph.comm(i).src, builtin.comm(i).src);
    EXPECT_EQ(parsed.graph.comm(i).dst, builtin.comm(i).dst);
    EXPECT_DOUBLE_EQ(parsed.graph.comm(i).bytes, 4e6);
  }
}

TEST(SchemeFiles, MixedSizesUsesOverridesAndBackArrow) {
  const auto parsed = parse_scheme_file(data_path("mixed_sizes.scheme"));
  ASSERT_EQ(parsed.graph.size(), 4);
  EXPECT_DOUBLE_EQ(parsed.graph.comm(0).bytes, 8.0 * MiB);
  const auto small = parsed.graph.find("small");
  ASSERT_TRUE(small.has_value());
  EXPECT_EQ(parsed.graph.comm(*small).src, 4);  // back arrow: 3 <- 4
  EXPECT_EQ(parsed.graph.comm(*small).dst, 3);
  EXPECT_DOUBLE_EQ(parsed.graph.comm(*small).bytes, 64.0 * KiB);
}

}  // namespace
}  // namespace bwshare::graph
