#include "graph/comm_graph.hpp"

#include <string>

#include <gtest/gtest.h>

#include "graph/dot.hpp"
#include "util/alloc_counter.hpp"
#include "util/error.hpp"

namespace bwshare::graph {
namespace {

TEST(CommGraph, AddAndQuery) {
  CommGraph g;
  const CommId a = g.add("a", 0, 1, 20e6);
  const CommId b = g.add("b", 0, 2, 4e6);
  EXPECT_EQ(g.size(), 2);
  EXPECT_EQ(g.label(a), "a");
  EXPECT_DOUBLE_EQ(g.comm(b).bytes, 4e6);
  EXPECT_EQ(g.num_nodes(), 3);
}

TEST(CommGraph, FindByLabel) {
  CommGraph g;
  g.add("x", 0, 1, 1.0);
  EXPECT_TRUE(g.find("x").has_value());
  EXPECT_FALSE(g.find("y").has_value());
}

TEST(CommGraph, DuplicateLabelRejected) {
  CommGraph g;
  g.add("a", 0, 1, 1.0);
  EXPECT_THROW(g.add("a", 2, 3, 1.0), Error);
}

TEST(CommGraph, Degrees) {
  CommGraph g;
  g.add("a", 0, 1, 1.0);
  g.add("b", 0, 2, 1.0);
  g.add("c", 3, 1, 1.0);
  EXPECT_EQ(g.out_degree(0), 2);
  EXPECT_EQ(g.in_degree(1), 2);
  EXPECT_EQ(g.in_degree(0), 0);
  EXPECT_EQ(g.delta_o(*g.find("a")), 2);
  EXPECT_EQ(g.delta_i(*g.find("a")), 2);
  EXPECT_EQ(g.delta_i(*g.find("b")), 1);
}

TEST(CommGraph, IntraNodeExcludedFromDegrees) {
  CommGraph g;
  g.add("shm", 1, 1, 1.0);
  g.add("a", 1, 2, 1.0);
  EXPECT_EQ(g.out_degree(1), 1);  // shm does not count
  EXPECT_TRUE(g.is_intra_node(*g.find("shm")));
  EXPECT_FALSE(g.is_intra_node(*g.find("a")));
}

TEST(CommGraph, SameSourceAndDestinationSets) {
  CommGraph g;
  g.add("a", 0, 1, 1.0);
  g.add("b", 0, 2, 1.0);
  g.add("c", 3, 1, 1.0);
  const auto co = g.same_source(*g.find("a"));
  EXPECT_EQ(co.size(), 2u);  // a and b
  const auto ci = g.same_destination(*g.find("a"));
  EXPECT_EQ(ci.size(), 2u);  // a and c
}

TEST(CommGraph, Validation) {
  CommGraph g;
  EXPECT_THROW(g.add("", 0, 1, 1.0), Error);
  EXPECT_THROW(g.add("a", -1, 1, 1.0), Error);
  EXPECT_THROW(g.add("a", 0, 1, -5.0), Error);
  EXPECT_THROW((void)g.comm(0), Error);
}

// --- label interning + the unlabelled hot path -----------------------------

TEST(CommGraph, UnlabelledAddHasEmptyLabelButFullStructure) {
  CommGraph g;
  const CommId a = g.add(0, 1, 3e6);
  const CommId b = g.add(1, 2, 5e6);
  EXPECT_EQ(g.size(), 2);
  EXPECT_EQ(g.label(a), "");
  EXPECT_EQ(g.label(b), "");
  EXPECT_DOUBLE_EQ(g.comm(a).bytes, 3e6);
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.out_degree(1), 1);
  EXPECT_EQ(g.in_degree(1), 1);
  // Unlabelled comms are never indexed: validation still applies.
  EXPECT_THROW(g.add(-1, 0, 1.0), Error);
  EXPECT_THROW(g.add(0, 1, -1.0), Error);
}

TEST(CommGraph, LabelledAndUnlabelledAddsInterleave) {
  CommGraph g;
  const CommId a = g.add(0, 1, 1.0);           // unlabelled first
  const CommId b = g.add("named", 1, 2, 2.0);  // label backfills ""s
  const CommId c = g.add(2, 3, 3.0);
  EXPECT_EQ(g.label(a), "");
  EXPECT_EQ(g.label(b), "named");
  EXPECT_EQ(g.label(c), "");
  EXPECT_EQ(g.find("named"), b);
  // Duplicate detection keys on interned labels only.
  EXPECT_THROW(g.add("named", 4, 5, 1.0), Error);
}

TEST(CommGraph, LabelRoundTripSurvivesInterning) {
  CommGraph g;
  const std::string fancy = "ring[3->4]@step7";
  const CommId id = g.add(fancy, 3, 4, 9.0);
  EXPECT_EQ(g.label(id), fancy);
  ASSERT_TRUE(g.find(fancy).has_value());
  EXPECT_EQ(*g.find(fancy), id);
  const auto& c = g.comm(*g.find(fancy));
  EXPECT_EQ(c.src, 3);
  EXPECT_EQ(c.dst, 4);
}

TEST(CommGraph, ClearKeepsCapacityAndDropsLabels) {
  CommGraph g;
  g.reserve(8);
  for (int i = 0; i < 8; ++i) g.add(i, i + 1, 1.0);
  g.clear();
  EXPECT_TRUE(g.empty());
  EXPECT_EQ(g.num_nodes(), 0);
  // A warmed scratch graph refills without touching the allocator — the
  // engine rebuilds one per component solve on the hot path.
  const uint64_t a0 = util::alloc_count();
  for (int rep = 0; rep < 4; ++rep) {
    for (int i = 0; i < 8; ++i) g.add(i, i + 1, 1.0);
    g.clear();
  }
  EXPECT_EQ(util::alloc_count(), a0);
}

TEST(CommGraph, InducedSubgraphPreservesLabelsAndGaps) {
  CommGraph g;
  g.add("a", 0, 1, 1.0);
  g.add(1, 2, 2.0);  // unlabelled
  g.add("c", 2, 3, 3.0);
  const std::vector<CommId> ids = {2, 1, 0};
  const CommGraph sub = induced_subgraph(g, ids);
  ASSERT_EQ(sub.size(), 3);
  EXPECT_EQ(sub.label(0), "c");
  EXPECT_EQ(sub.label(1), "");
  EXPECT_EQ(sub.label(2), "a");
  EXPECT_EQ(sub.find("a"), std::optional<CommId>(2));
  EXPECT_DOUBLE_EQ(sub.comm(1).bytes, 2.0);
}

TEST(CommGraph, DotOutputUsesInternedLabels) {
  CommGraph g;
  g.add("east", 0, 1, 1.0);
  g.add(1, 2, 2.0);  // unlabelled arcs render with an empty label
  const std::string dot = to_dot(g, {{"east", "10 MB"}});
  EXPECT_NE(dot.find("n0 -> n1 [label=\"east\\n10 MB\"];"),
            std::string::npos);
  EXPECT_NE(dot.find("n1 -> n2 [label=\"\"];"), std::string::npos);
}

}  // namespace
}  // namespace bwshare::graph
