#include "graph/comm_graph.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace bwshare::graph {
namespace {

TEST(CommGraph, AddAndQuery) {
  CommGraph g;
  const CommId a = g.add("a", 0, 1, 20e6);
  const CommId b = g.add("b", 0, 2, 4e6);
  EXPECT_EQ(g.size(), 2);
  EXPECT_EQ(g.comm(a).label, "a");
  EXPECT_DOUBLE_EQ(g.comm(b).bytes, 4e6);
  EXPECT_EQ(g.num_nodes(), 3);
}

TEST(CommGraph, FindByLabel) {
  CommGraph g;
  g.add("x", 0, 1, 1.0);
  EXPECT_TRUE(g.find("x").has_value());
  EXPECT_FALSE(g.find("y").has_value());
}

TEST(CommGraph, DuplicateLabelRejected) {
  CommGraph g;
  g.add("a", 0, 1, 1.0);
  EXPECT_THROW(g.add("a", 2, 3, 1.0), Error);
}

TEST(CommGraph, Degrees) {
  CommGraph g;
  g.add("a", 0, 1, 1.0);
  g.add("b", 0, 2, 1.0);
  g.add("c", 3, 1, 1.0);
  EXPECT_EQ(g.out_degree(0), 2);
  EXPECT_EQ(g.in_degree(1), 2);
  EXPECT_EQ(g.in_degree(0), 0);
  EXPECT_EQ(g.delta_o(*g.find("a")), 2);
  EXPECT_EQ(g.delta_i(*g.find("a")), 2);
  EXPECT_EQ(g.delta_i(*g.find("b")), 1);
}

TEST(CommGraph, IntraNodeExcludedFromDegrees) {
  CommGraph g;
  g.add("shm", 1, 1, 1.0);
  g.add("a", 1, 2, 1.0);
  EXPECT_EQ(g.out_degree(1), 1);  // shm does not count
  EXPECT_TRUE(g.is_intra_node(*g.find("shm")));
  EXPECT_FALSE(g.is_intra_node(*g.find("a")));
}

TEST(CommGraph, SameSourceAndDestinationSets) {
  CommGraph g;
  g.add("a", 0, 1, 1.0);
  g.add("b", 0, 2, 1.0);
  g.add("c", 3, 1, 1.0);
  const auto co = g.same_source(*g.find("a"));
  EXPECT_EQ(co.size(), 2u);  // a and b
  const auto ci = g.same_destination(*g.find("a"));
  EXPECT_EQ(ci.size(), 2u);  // a and c
}

TEST(CommGraph, Validation) {
  CommGraph g;
  EXPECT_THROW(g.add("", 0, 1, 1.0), Error);
  EXPECT_THROW(g.add("a", -1, 1, 1.0), Error);
  EXPECT_THROW(g.add("a", 0, 1, -5.0), Error);
  EXPECT_THROW((void)g.comm(0), Error);
}

}  // namespace
}  // namespace bwshare::graph
