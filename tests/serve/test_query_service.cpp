// Serving conformance suite: every answer serve::QueryService produces —
// cold, cached, warm-started, coalesced, at any thread count — must be
// bit-identical to a fresh sim::run_simulation of the same canonical
// query. The suite builds the fresh replays by hand (cluster, placement,
// providers, run_simulation) rather than through the serving stack, so a
// bug anywhere in canonicalization, caching, batching or warm-start shows
// up as a bitwise divergence here.
#include "serve/service.hpp"

#include <atomic>
#include <cmath>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/result_expect.hpp"
#include "eval/sweep.hpp"
#include "flowsim/fluid_network.hpp"
#include "graph/generator.hpp"
#include "models/registry.hpp"
#include "serve/protocol.hpp"
#include "sim/rate_model.hpp"
#include "sim/scenario.hpp"
#include "sim/schedule.hpp"
#include "topo/cluster.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace bwshare::serve {
namespace {

const char* const kDisjointScheme =
    "scheme \"serve\"\n"
    "nodes 6\n"
    "comm a 0 -> 1 size 4MiB\n"
    "comm b 2 -> 3 size 4MiB\n"
    "comm c 4 -> 5 size 2MiB\n";

// Same scheme with only comm c edited: components a and b are untouched,
// so a warm-start from the first replay's solutions must hit.
const char* const kDisjointSchemeEdited =
    "scheme \"serve\"\n"
    "nodes 6\n"
    "comm a 0 -> 1 size 4MiB\n"
    "comm b 2 -> 3 size 4MiB\n"
    "comm c 4 -> 5 size 1MiB\n";

Query disjoint_query(const char* text, const std::string& network = "gige") {
  Query q;
  q.scheme_text = text;
  q.network = network;
  return q;
}

struct FreshReplays {
  sim::SimResult measured;
  sim::SimResult predicted;
};

/// The conformance reference: replay the canonical query through
/// sim::run_simulation directly, bypassing the whole serving stack.
FreshReplays fresh_run_simulation(const CanonicalQuery& cq) {
  const auto cluster = topo::ClusterSpec::uniform(
      "fresh", cq.nodes, cq.cores, topo::calibration_for(cq.tech));
  const auto placement = sim::make_placement(
      cq.policy, cluster, cq.workload.trace->num_tasks(), cq.seed);
  sim::Scenario scenario;
  if (cq.churn > 0.0) {
    graph::ChurnSpec cs;
    cs.rate = cq.churn;
    cs.horizon = 1.0;
    cs.nodes = cq.nodes;
    scenario.churn = graph::generate_churn(cs, cq.seed);
  }
  if (cq.background > 0.0) {
    graph::BackgroundSpec bs;
    bs.rate = cq.background;
    bs.horizon = 1.0;
    bs.nodes = cq.nodes;
    scenario.background = graph::generate_background(bs, cq.seed);
  }
  const flowsim::FluidRateProvider fluid(cluster.network());
  FreshReplays out{
      sim::run_simulation(*cq.workload.trace, cluster, placement, fluid,
                          scenario),
      {}};
  const std::shared_ptr<const models::PenaltyModel> model =
      models::make_model(cq.model);
  const sim::ModelRateProvider predicted_provider(model, cluster.network());
  out.predicted = sim::run_simulation(*cq.workload.trace, cluster,
                                      placement, predicted_provider,
                                      scenario);
  return out;
}

TEST(QueryService, ColdAnswerMatchesFreshRunSimulation) {
  QueryService service;
  const Query q = disjoint_query(kDisjointScheme);
  const Response r = service.query(q);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.source, Source::kCold);
  const FreshReplays fresh = fresh_run_simulation(canonicalize(q));
  sim::expect_bit_identical(*r.result->measured, fresh.measured);
  sim::expect_bit_identical(*r.result->predicted, fresh.predicted);
}

TEST(QueryService, TraceQueryMatchesFreshRunSimulation) {
  QueryService service;
  Query q;
  q.trace = std::string(BWSHARE_SOURCE_DIR) + "/data/ring8.trace";
  q.network = "myrinet";
  q.schedule = "RRP";
  q.nodes = 8;
  const Response r = service.query(q);
  ASSERT_TRUE(r.ok) << r.error;
  const FreshReplays fresh = fresh_run_simulation(canonicalize(q));
  sim::expect_bit_identical(*r.result->measured, fresh.measured);
  sim::expect_bit_identical(*r.result->predicted, fresh.predicted);
}

TEST(QueryService, ScenarioQueryMatchesFreshRunSimulation) {
  QueryService service;
  Query q = disjoint_query(kDisjointScheme);
  q.churn = 4.0;
  q.background = 10.0;
  q.seed = 7;
  const Response r = service.query(q);
  ASSERT_TRUE(r.ok) << r.error;
  const FreshReplays fresh = fresh_run_simulation(canonicalize(q));
  sim::expect_bit_identical(*r.result->measured, fresh.measured);
  sim::expect_bit_identical(*r.result->predicted, fresh.predicted);
}

TEST(QueryService, CacheHitReturnsTheSameObject) {
  QueryService service;
  const Query q = disjoint_query(kDisjointScheme);
  const Response first = service.query(q);
  const Response second = service.query(q);
  ASSERT_TRUE(second.ok);
  EXPECT_EQ(second.source, Source::kCache);
  // Pointer identity: the memoized result itself, not a recomputation.
  EXPECT_EQ(second.result.get(), first.result.get());
  EXPECT_EQ(service.stats().replays, 1u);
  EXPECT_EQ(service.stats().cache_hits, 1u);
}

TEST(QueryService, SchemeQueriesFallBackToCommLevelEabs) {
  // Schemes are lifted to nonblocking traces (isend + wait_all), so no
  // task ever accrues blocked-send time and the §VI task-level E_abs is
  // vacuously empty. The service must then report the fig-2 per-comm
  // metric instead of a misleading 0.000 next to disagreeing makespans.
  QueryService service;
  Query q;
  q.scheme = "fig2_s4";  // conflicted: GigE penalties split the two sides
  const Response r = service.query(q);
  ASSERT_TRUE(r.ok) << r.error;
  const QueryResult& res = *r.result;
  for (sim::TaskId t = 0;
       t < static_cast<sim::TaskId>(res.measured->tasks.size()); ++t) {
    ASSERT_EQ(res.measured->task_comm_time(t), 0.0);
  }
  EXPECT_NE(res.cell.measured_s, res.cell.predicted_s);
  EXPECT_GT(res.cell.eabs_pct, 0.0);
  // Pin the fallback to the exact fig-2 definition over paired records.
  double total = 0.0;
  size_t count = 0;
  ASSERT_EQ(res.measured->comms.size(), res.predicted->comms.size());
  for (size_t i = 0; i < res.measured->comms.size(); ++i) {
    const auto& m = res.measured->comms[i];
    const auto& p = res.predicted->comms[i];
    const double mt = m.finish - m.start;
    total += std::fabs((p.finish - p.start) - mt) / mt * 100.0;
    ++count;
  }
  ASSERT_GT(count, 0u);
  EXPECT_DOUBLE_EQ(res.cell.eabs_pct, total / static_cast<double>(count));
}

TEST(QueryService, IdenticalQueriesInOneBatchCoalesce) {
  QueryService service;
  Query a = disjoint_query(kDisjointScheme);
  a.id = "leader";
  Query b = a;
  b.id = "follower";
  const auto responses = service.query_batch({a, b});
  ASSERT_EQ(responses.size(), 2u);
  ASSERT_TRUE(responses[0].ok);
  ASSERT_TRUE(responses[1].ok);
  EXPECT_EQ(responses[0].source, Source::kCold);
  EXPECT_EQ(responses[1].source, Source::kCoalesced);
  EXPECT_EQ(responses[0].id, "leader");
  EXPECT_EQ(responses[1].id, "follower");
  EXPECT_EQ(responses[1].result.get(), responses[0].result.get());
  EXPECT_EQ(service.stats().replays, 1u);
  EXPECT_EQ(service.stats().coalesced, 1u);
}

TEST(QueryService, WarmStartHitsOnDisjointEditAndMatchesCold) {
  // verify=true arms both oracles: every memo hit is re-solved and
  // compared bitwise inside the engine, and the warm replay is re-run
  // fully cold inside the service. A divergence aborts the test hard.
  ServiceConfig config;
  config.verify = true;
  QueryService service(config);
  ASSERT_TRUE(service.query(disjoint_query(kDisjointScheme)).ok);
  const Response warm =
      service.query(disjoint_query(kDisjointSchemeEdited));
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_EQ(warm.source, Source::kWarm);  // components a, b must hit
  EXPECT_GT(service.stats().solve_hits, 0u);

  // And the warm answer equals a fresh standalone replay.
  const FreshReplays fresh =
      fresh_run_simulation(canonicalize(disjoint_query(kDisjointSchemeEdited)));
  sim::expect_bit_identical(*warm.result->measured, fresh.measured);
  sim::expect_bit_identical(*warm.result->predicted, fresh.predicted);
}

// ---------------------------------------------------------------------------
// Edit-distance fuzz: random schemes, k-comm edits, every network, warm
// answers always bitwise-equal to fresh replays. Runs with the verify
// oracle armed, so a stale or mis-keyed memo hit aborts loudly.

struct FuzzComm {
  int src;
  int dst;
  long long bytes;
};

std::string scheme_text_of(const std::vector<FuzzComm>& comms, int nodes) {
  std::string text = "scheme \"fuzz\"\nnodes " + std::to_string(nodes) + "\n";
  for (size_t i = 0; i < comms.size(); ++i) {
    text += "comm c" + std::to_string(i) + " " +
            std::to_string(comms[i].src) + " -> " +
            std::to_string(comms[i].dst) + " size " +
            std::to_string(comms[i].bytes) + "\n";
  }
  return text;
}

TEST(QueryService, FuzzedEditPairsServeBitIdenticalAtEveryEditDistance) {
  const char* const networks[] = {"gige", "myrinet", "ib"};
  Rng rng(987654321);
  for (int round = 0; round < 6; ++round) {
    const int nodes = 6 + static_cast<int>(rng.below(4));
    std::vector<FuzzComm> comms;
    const int n_comms = 6 + static_cast<int>(rng.below(6));
    for (int i = 0; i < n_comms; ++i) {
      FuzzComm c{};
      c.src = static_cast<int>(rng.below(static_cast<uint64_t>(nodes)));
      c.dst = static_cast<int>(rng.below(static_cast<uint64_t>(nodes)));
      if (c.dst == c.src) c.dst = (c.dst + 1) % nodes;
      c.bytes = 1 << (18 + static_cast<int>(rng.below(5)));  // 256K..4M
      comms.push_back(c);
    }
    // Edit distance k: k comms change size.
    const int k = 1 + static_cast<int>(rng.below(3));
    std::vector<FuzzComm> edited = comms;
    for (int e = 0; e < k; ++e) {
      edited[rng.below(edited.size())].bytes += 65536;
    }
    const std::string network = networks[rng.below(3)];

    ServiceConfig config;
    config.verify = true;
    QueryService service(config);
    const Response base =
        service.query(disjoint_query(scheme_text_of(comms, nodes).c_str(),
                                     network));
    ASSERT_TRUE(base.ok) << base.error;
    const Query edited_query = disjoint_query(
        scheme_text_of(edited, nodes).c_str(), network);
    const Response served = service.query(edited_query);
    ASSERT_TRUE(served.ok) << served.error;

    const FreshReplays fresh =
        fresh_run_simulation(canonicalize(edited_query));
    sim::expect_bit_identical(*served.result->measured, fresh.measured);
    sim::expect_bit_identical(*served.result->predicted, fresh.predicted);
  }
}

// ---------------------------------------------------------------------------
// Thread-count independence and the concurrent hammer.

std::vector<Query> mixed_query_stream() {
  std::vector<Query> queries;
  queries.push_back(disjoint_query(kDisjointScheme));
  queries.push_back(disjoint_query(kDisjointSchemeEdited));
  queries.push_back(disjoint_query(kDisjointScheme, "myrinet"));
  queries.push_back(disjoint_query(kDisjointScheme));  // repeat -> cache
  Query trace;
  trace.trace = std::string(BWSHARE_SOURCE_DIR) + "/data/ring8.trace";
  trace.nodes = 8;
  queries.push_back(trace);
  return queries;
}

TEST(QueryService, AnswersAreIdenticalAtEveryServiceThreadCount) {
  const auto queries = mixed_query_stream();
  std::vector<std::vector<Response>> per_width;
  for (const int threads : {1, 4, 8}) {
    ServiceConfig config;
    config.threads = threads;
    QueryService service(config);
    // Serve as one batch plus singles, mirroring real mixed use.
    auto responses = service.query_batch(queries);
    per_width.push_back(std::move(responses));
  }
  for (size_t w = 1; w < per_width.size(); ++w) {
    ASSERT_EQ(per_width[w].size(), per_width[0].size());
    for (size_t i = 0; i < per_width[0].size(); ++i) {
      const Response& a = per_width[0][i];
      const Response& b = per_width[w][i];
      ASSERT_TRUE(a.ok);
      ASSERT_TRUE(b.ok);
      EXPECT_EQ(a.source, b.source) << "query " << i;
      EXPECT_EQ(a.fingerprint, b.fingerprint) << "query " << i;
      EXPECT_EQ(a.result->result_hash, b.result->result_hash)
          << "query " << i;
      sim::expect_bit_identical(*a.result->measured, *b.result->measured);
      sim::expect_bit_identical(*a.result->predicted,
                                *b.result->predicted);
    }
  }
}

TEST(QueryService, ConcurrentHammerServesOnlyConformantAnswers) {
  // Expected answers, computed once outside the service.
  const auto queries = mixed_query_stream();
  std::vector<uint64_t> expected_hashes;
  for (const auto& q : queries) {
    ServiceConfig solo;
    solo.threads = 1;
    QueryService reference(solo);
    const Response r = reference.query(q);
    EXPECT_TRUE(r.ok) << r.error;
    expected_hashes.push_back(r.result->result_hash);
  }

  for (const int service_threads : {1, 4, 8}) {
    ServiceConfig config;
    config.threads = service_threads;
    QueryService service(config);
    std::atomic<int> failures{0};
    std::vector<std::thread> clients;
    clients.reserve(8);
    for (int c = 0; c < 8; ++c) {
      clients.emplace_back([&, c] {
        // Each client walks the stream from its own offset, so cache hits,
        // coalescing and warm starts all race across clients.
        for (size_t i = 0; i < queries.size() * 2; ++i) {
          const size_t idx = (static_cast<size_t>(c) + i) % queries.size();
          const Response r = service.query(queries[idx]);
          if (!r.ok || r.result->result_hash != expected_hashes[idx]) {
            failures.fetch_add(1);
          }
        }
      });
    }
    for (auto& t : clients) t.join();
    EXPECT_EQ(failures.load(), 0)
        << "service_threads=" << service_threads;
    EXPECT_EQ(service.stats().errors, 0u);
  }
}

// ---------------------------------------------------------------------------
// Configuration corners.

TEST(QueryService, CacheCapacityZeroServesThrough) {
  ServiceConfig config;
  config.cache_capacity = 0;
  config.warm_start = false;
  QueryService service(config);
  const Query q = disjoint_query(kDisjointScheme);
  const Response first = service.query(q);
  const Response second = service.query(q);
  ASSERT_TRUE(first.ok);
  ASSERT_TRUE(second.ok);
  EXPECT_EQ(second.source, Source::kCold);  // never cached
  EXPECT_EQ(service.stats().replays, 2u);
  EXPECT_EQ(service.stats().cache_hits, 0u);
  sim::expect_bit_identical(*first.result->measured,
                            *second.result->measured);
}

TEST(QueryService, WarmStartOffNeverReusesSolves) {
  ServiceConfig config;
  config.warm_start = false;
  QueryService service(config);
  ASSERT_TRUE(service.query(disjoint_query(kDisjointScheme)).ok);
  const Response r = service.query(disjoint_query(kDisjointSchemeEdited));
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.source, Source::kCold);
  EXPECT_EQ(service.stats().warm_replays, 0u);
  EXPECT_EQ(service.stats().solve_hits, 0u);
  EXPECT_EQ(service.stats().stored_solutions, 0u);
}

TEST(QueryService, MalformedQueriesErrorWithoutPoisoningTheBatch) {
  QueryService service;
  Query bad;
  bad.id = "bad";  // no workload at all
  Query good = disjoint_query(kDisjointScheme);
  good.id = "good";
  const auto responses = service.query_batch({bad, good});
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_FALSE(responses[0].ok);
  EXPECT_EQ(responses[0].source, Source::kError);
  EXPECT_FALSE(responses[0].error.empty());
  ASSERT_TRUE(responses[1].ok);
  EXPECT_EQ(responses[1].source, Source::kCold);
  EXPECT_EQ(service.stats().errors, 1u);
  // The error produced no cache line: retrying is a fresh canonicalize.
  EXPECT_FALSE(service.query(bad).ok);
}

// ---------------------------------------------------------------------------
// Wire protocol.

TEST(Protocol, ParsesFlatObjects) {
  const auto obj = parse_flat_json_object(
      "{\"id\":\"q\\\"1\\\"\", \"nodes\": 16, \"churn\": 2.5, "
      "\"flag\": true, \"nothing\": null}");
  ASSERT_EQ(obj.size(), 5u);
  EXPECT_EQ(obj[0].first, "id");
  EXPECT_EQ(obj[0].second.str, "q\"1\"");
  EXPECT_EQ(obj[1].second.num, 16.0);
  EXPECT_EQ(obj[2].second.num, 2.5);
  EXPECT_TRUE(obj[3].second.boolean);
  EXPECT_EQ(obj[4].second.kind, JsonValue::Kind::kNull);
}

TEST(Protocol, RejectsMalformedLines) {
  EXPECT_THROW(static_cast<void>(parse_flat_json_object("")), Error);
  EXPECT_THROW(static_cast<void>(parse_flat_json_object("{\"a\":1")), Error);
  EXPECT_THROW(static_cast<void>(parse_flat_json_object("{\"a\":1} junk")),
               Error);
  EXPECT_THROW(
      static_cast<void>(parse_flat_json_object("{\"a\":{\"nested\":1}}")),
      Error);
  EXPECT_THROW(
      static_cast<void>(parse_flat_json_object("{\"a\":1,\"a\":2}")), Error);
  EXPECT_THROW(static_cast<void>(parse_flat_json_object("{\"a\":bogus}")),
               Error);
}

TEST(Protocol, QueryFromJsonIsStrictAboutKeysAndTypes) {
  const Query q = query_from_json(parse_flat_json_object(
      "{\"id\":\"x\",\"scheme\":\"mk1\",\"network\":\"myrinet\","
      "\"nodes\":8,\"seed\":\"12345678901234567890\"}"));
  EXPECT_EQ(q.id, "x");
  EXPECT_EQ(q.scheme, "mk1");
  EXPECT_EQ(q.nodes, 8);
  EXPECT_EQ(q.seed, 12345678901234567890ULL);  // > 2^53: string carries it

  EXPECT_THROW(static_cast<void>(query_from_json(parse_flat_json_object(
                   "{\"schem\":\"mk1\"}"))),
               Error);  // typo must not become a default
  EXPECT_THROW(static_cast<void>(query_from_json(parse_flat_json_object(
                   "{\"nodes\":\"sixteen\"}"))),
               Error);
  EXPECT_THROW(static_cast<void>(query_from_json(parse_flat_json_object(
                   "{\"nodes\":2.5}"))),
               Error);
  EXPECT_THROW(static_cast<void>(query_from_json(parse_flat_json_object(
                   "{\"seed\":-1}"))),
               Error);
}

std::string serve_stream(const std::string& input, int threads) {
  ServiceConfig config;
  config.threads = threads;
  std::istringstream in(input);
  std::ostringstream out;
  static_cast<void>(run_serve_loop(in, out, config));
  return out.str();
}

TEST(Protocol, ServeLoopStreamIsByteIdenticalAcrossThreadCounts) {
  std::string input;
  input += std::string("{\"id\":\"q1\",\"scheme_text\":\"scheme \\\"s\\\"\\n"
                       "nodes 6\\ncomm a 0 -> 1 size 4MiB\\n"
                       "comm b 2 -> 3 size 4MiB\\n"
                       "comm c 4 -> 5 size 2MiB\\n\"}\n");
  input += "\n";  // flush batch 1
  input += std::string("{\"id\":\"q1-again\",\"scheme_text\":\"scheme "
                       "\\\"s\\\"\\nnodes 6\\ncomm a 0 -> 1 size 4MiB\\n"
                       "comm b 2 -> 3 size 4MiB\\n"
                       "comm c 4 -> 5 size 2MiB\\n\"}\n");
  input += "this is not json\n";  // forces an in-order error line
  input += std::string("{\"id\":\"q2\",\"scheme_text\":\"scheme \\\"s\\\"\\n"
                       "nodes 6\\ncomm a 0 -> 1 size 4MiB\\n"
                       "comm b 2 -> 3 size 4MiB\\n"
                       "comm c 4 -> 5 size 1MiB\\n\"}\n");
  input += "\n";
  input += "{\"op\":\"stats\"}\n";

  const std::string at1 = serve_stream(input, 1);
  const std::string at4 = serve_stream(input, 4);
  const std::string at8 = serve_stream(input, 8);
  EXPECT_EQ(at1, at4);
  EXPECT_EQ(at1, at8);

  // Spot-check the stream: sources and ordering.
  EXPECT_NE(at1.find("\"source\":\"cold\""), std::string::npos);
  EXPECT_NE(at1.find("\"source\":\"cache\""), std::string::npos);
  EXPECT_NE(at1.find("\"source\":\"warm\""), std::string::npos);
  EXPECT_NE(at1.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(at1.find("\"op\":\"stats\""), std::string::npos);
  // The malformed line's error answer lands after q1-again's response.
  EXPECT_LT(at1.find("\"id\":\"q1-again\""), at1.find("\"ok\":false"));
}

TEST(Protocol, ServeLoopCountsFailures) {
  ServiceConfig config;
  config.threads = 1;
  std::istringstream in("not json at all\n{\"id\":\"ok\",\"scheme\":\"mk1\"}\n\n");
  std::ostringstream out;
  EXPECT_EQ(run_serve_loop(in, out, config), 1u);
}

}  // namespace
}  // namespace bwshare::serve
