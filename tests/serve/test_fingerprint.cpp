// serve query canonicalization + fingerprint stability pins, and the LRU
// pins for the two serving memo tiers (ResultCache, WarmStore).
//
// The fingerprint contract under test: queries that mean the same replay
// hash the same regardless of spelling (builtin scheme name vs .scheme path
// vs inline DSL text, "network" vs the explicit model name, renamed labels,
// inert seeds), and every semantic change — one byte more, one node
// elsewhere, a different axis value — hashes differently.
#include "serve/fingerprint.hpp"

#include <cmath>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/cache.hpp"
#include "sim/engine.hpp"
#include "util/error.hpp"

namespace bwshare::serve {
namespace {

const char* const kSchemeText =
    "scheme \"pin\"\n"
    "nodes 6\n"
    "comm a 0 -> 1 size 4MiB\n"
    "comm b 2 -> 3 size 4MiB\n"
    "comm c 4 -> 5 size 2MiB\n";

Query base_query() {
  Query q;
  q.id = "base";
  q.scheme_text = kSchemeText;
  return q;
}

uint64_t fp(const Query& q) { return canonicalize(q).fingerprint; }

TEST(Fingerprint, IsDeterministic) {
  EXPECT_EQ(fp(base_query()), fp(base_query()));
}

TEST(Fingerprint, IdIsExcluded) {
  Query other = base_query();
  other.id = "a completely different correlation tag";
  EXPECT_EQ(fp(base_query()), fp(other));
}

TEST(Fingerprint, SchemeNameAndLabelsAreDisplayOnly) {
  Query renamed = base_query();
  renamed.scheme_text =
      "scheme \"entirely-different-name\"\n"
      "nodes 6\n"
      "comm x 0 -> 1 size 4MiB\n"
      "comm y 2 -> 3 size 4MiB\n"
      "comm z 4 -> 5 size 2MiB\n";
  EXPECT_EQ(fp(base_query()), fp(renamed));
}

TEST(Fingerprint, BuiltinPathAndInlineSpellingsAgree) {
  // Three spellings of the paper's Fig. 2 S4 scheme: the builtin name, the
  // data/ file, and inline DSL text (all at the 20 MB referential size).
  Query builtin;
  builtin.scheme = "fig2_s4";
  Query file;
  file.scheme = std::string(BWSHARE_SOURCE_DIR) + "/data/fig2_s4.scheme";
  Query inline_text;
  inline_text.scheme_text =
      "scheme \"whatever\"\n"
      "nodes 5\n"
      "comm p 0 -> 1\n"
      "comm q 0 -> 2\n"
      "comm r 0 -> 3\n"
      "comm s 4 -> 1\n";
  EXPECT_EQ(fp(builtin), fp(file));
  EXPECT_EQ(fp(builtin), fp(inline_text));
}

TEST(Fingerprint, TracePathAndInlineTextAgree) {
  const std::string path =
      std::string(BWSHARE_SOURCE_DIR) + "/data/ring8.trace";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::ostringstream text;
  text << in.rdbuf();

  Query by_path;
  by_path.trace = path;
  Query by_text;
  by_text.trace_text = text.str();
  EXPECT_EQ(fp(by_path), fp(by_text));
}

TEST(Fingerprint, NetworkModelAliasResolvesBeforeHashing) {
  Query implicit = base_query();  // model defaults to "network"
  Query explicit_name = base_query();
  explicit_name.model = "gige";  // gige's own model, spelled out
  EXPECT_EQ(fp(implicit), fp(explicit_name));

  Query other_model = base_query();
  other_model.model = "loggp";
  EXPECT_NE(fp(implicit), fp(other_model));
}

TEST(Fingerprint, SeedIsCanonicalizedAwayWhenInert) {
  // RRN placement, no churn, no background, static scheme: nothing draws
  // from the seed, so it must not split the cache line.
  Query a = base_query();
  a.seed = 7;
  Query b = base_query();
  b.seed = 9;
  EXPECT_EQ(fp(a), fp(b));
  EXPECT_FALSE(canonicalize(a).seed_live);

  // Random placement revives it.
  a.schedule = "Random";
  b.schedule = "Random";
  EXPECT_NE(fp(a), fp(b));
  EXPECT_TRUE(canonicalize(a).seed_live);

  // So does a dynamic-cluster scenario.
  Query c = base_query();
  c.churn = 2.0;
  c.seed = 7;
  Query d = c;
  d.seed = 9;
  EXPECT_NE(fp(c), fp(d));
}

TEST(Fingerprint, EverySemanticAxisChangesTheHash) {
  const uint64_t base = fp(base_query());

  Query bytes = base_query();
  bytes.scheme_text =
      "scheme \"pin\"\n"
      "nodes 6\n"
      "comm a 0 -> 1 size 4MiB\n"
      "comm b 2 -> 3 size 4MiB\n"
      "comm c 4 -> 5 size 2097153\n";  // one byte more than 2MiB
  EXPECT_NE(base, fp(bytes));

  Query endpoint = base_query();
  endpoint.scheme_text =
      "scheme \"pin\"\n"
      "nodes 6\n"
      "comm a 0 -> 1 size 4MiB\n"
      "comm b 2 -> 3 size 4MiB\n"
      "comm c 4 -> 0 size 2MiB\n";  // same size, different receiver
  EXPECT_NE(base, fp(endpoint));

  Query network = base_query();
  network.network = "myrinet";
  EXPECT_NE(base, fp(network));

  Query nodes = base_query();
  nodes.nodes = 17;
  EXPECT_NE(base, fp(nodes));

  Query cores = base_query();
  cores.cores = 4;
  EXPECT_NE(base, fp(cores));

  Query schedule = base_query();
  schedule.schedule = "RRP";
  EXPECT_NE(base, fp(schedule));

  Query churn = base_query();
  churn.churn = 1.0;
  EXPECT_NE(base, fp(churn));

  Query background = base_query();
  background.background = 3.0;
  EXPECT_NE(base, fp(background));
}

TEST(Fingerprint, ClusterGrowsToFitTheScheme) {
  // A cluster too small for the scheme is grown during canonicalization
  // (mirroring eval::run_cell), so "nodes 4" and "nodes 6" mean the same
  // replay for a 6-node scheme.
  Query small = base_query();
  small.nodes = 4;
  Query grown = base_query();
  grown.nodes = 6;
  EXPECT_EQ(fp(small), fp(grown));
  EXPECT_EQ(canonicalize(small).nodes, 6);
}

TEST(Fingerprint, MalformedQueriesThrow) {
  Query none;
  EXPECT_THROW(static_cast<void>(canonicalize(none)), Error);

  Query both = base_query();
  both.trace = "also/a.trace";
  EXPECT_THROW(static_cast<void>(canonicalize(both)), Error);

  Query bad_nodes = base_query();
  bad_nodes.nodes = 0;
  EXPECT_THROW(static_cast<void>(canonicalize(bad_nodes)), Error);

  Query bad_network = base_query();
  bad_network.network = "token-ring";
  EXPECT_THROW(static_cast<void>(canonicalize(bad_network)), Error);

  Query bad_model = base_query();
  bad_model.model = "oracle";
  EXPECT_THROW(static_cast<void>(canonicalize(bad_model)), Error);

  Query bad_churn = base_query();
  bad_churn.churn = -1.0;
  EXPECT_THROW(static_cast<void>(canonicalize(bad_churn)), Error);

  Query empty_scheme;
  empty_scheme.scheme_text = "scheme \"hollow\"\nnodes 3\n";
  EXPECT_THROW(static_cast<void>(canonicalize(empty_scheme)), Error);
}

TEST(HashSimResult, TracksEveryField) {
  sim::SimResult r;
  r.makespan = 1.5;
  sim::CommRecord c{};
  c.src_task = 0;
  c.dst_task = 1;
  c.bytes = 4e6;
  c.finish = 1.5;
  r.comms.push_back(c);
  sim::TaskStats t{};
  t.finish_time = 1.5;
  r.tasks.push_back(t);

  const uint64_t base = hash_sim_result(r);
  EXPECT_EQ(base, hash_sim_result(r));  // deterministic

  sim::SimResult changed = r;
  changed.comms[0].finish = std::nextafter(1.5, 2.0);
  EXPECT_NE(base, hash_sim_result(changed));

  changed = r;
  changed.tasks[0].recvs = 1;
  EXPECT_NE(base, hash_sim_result(changed));

  changed = r;
  changed.background_skipped = 1;
  EXPECT_NE(base, hash_sim_result(changed));
}

// ---------------------------------------------------------------------------
// ResultCache LRU pins.

std::shared_ptr<const QueryResult> dummy_result(uint64_t fingerprint) {
  auto r = std::make_shared<QueryResult>();
  r->fingerprint = fingerprint;
  return r;
}

TEST(ResultCache, EvictsLeastRecentlyUsed) {
  ResultCache cache(2);
  cache.insert(1, dummy_result(1));
  cache.insert(2, dummy_result(2));
  // Touch 1 so 2 becomes the LRU victim.
  EXPECT_NE(cache.lookup(1), nullptr);
  cache.insert(3, dummy_result(3));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.lookup(2), nullptr);
  EXPECT_NE(cache.lookup(1), nullptr);
  EXPECT_NE(cache.lookup(3), nullptr);
}

TEST(ResultCache, KeysMruFirstReflectsTouchOrder) {
  ResultCache cache(3);
  cache.insert(10, dummy_result(10));
  cache.insert(20, dummy_result(20));
  cache.insert(30, dummy_result(30));
  EXPECT_EQ(cache.keys_mru_first(), (std::vector<uint64_t>{30, 20, 10}));
  EXPECT_NE(cache.lookup(10), nullptr);
  EXPECT_EQ(cache.keys_mru_first(), (std::vector<uint64_t>{10, 30, 20}));
  cache.insert(20, dummy_result(20));  // refresh moves to front
  EXPECT_EQ(cache.keys_mru_first(), (std::vector<uint64_t>{20, 10, 30}));
}

TEST(ResultCache, HitReturnsTheStoredObject) {
  ResultCache cache(2);
  const auto stored = dummy_result(5);
  cache.insert(5, stored);
  EXPECT_EQ(cache.lookup(5).get(), stored.get());  // identity, not a copy
}

TEST(ResultCache, CapacityZeroServesThrough) {
  ResultCache cache(0);
  cache.insert(1, dummy_result(1));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.lookup(1), nullptr);
  EXPECT_EQ(cache.evictions(), 0u);
}

// ---------------------------------------------------------------------------
// WarmStore pins: LRU by commit, lookups never reorder.

TEST(WarmStore, LookupsDoNotChangeEvictionOrder) {
  WarmStore store(2);
  store.commit({{1, {1.0}}, {2, {2.0}}});
  // Read key 1 many times; commit recency must be untouched, so 1 is still
  // the first victim.
  std::vector<double> rates;
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(store.lookup(1, rates));
  store.commit({{3, {3.0}}});
  EXPECT_FALSE(store.lookup(1, rates));
  EXPECT_TRUE(store.lookup(2, rates));
  EXPECT_EQ(rates, (std::vector<double>{2.0}));
  EXPECT_TRUE(store.lookup(3, rates));
  EXPECT_EQ(store.evictions(), 1u);
}

TEST(WarmStore, RecommitRefreshesRecency) {
  WarmStore store(2);
  store.commit({{1, {1.0}}});
  store.commit({{2, {2.0}}});
  store.commit({{1, {1.0}}});  // same key, same bits: recency refresh
  store.commit({{3, {3.0}}});  // evicts 2, not 1
  std::vector<double> rates;
  EXPECT_TRUE(store.lookup(1, rates));
  EXPECT_FALSE(store.lookup(2, rates));
  EXPECT_TRUE(store.lookup(3, rates));
}

TEST(WarmStore, CapacityZeroDisablesWarmStart) {
  WarmStore store(0);
  store.commit({{1, {1.0}}});
  std::vector<double> rates;
  EXPECT_FALSE(store.lookup(1, rates));
  EXPECT_EQ(store.size(), 0u);
}

}  // namespace
}  // namespace bwshare::serve
