#include "topo/fattree.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/error.hpp"

namespace bwshare::topo {
namespace {

FatTree::Params small_params() {
  FatTree::Params p;
  p.num_hosts = 8;
  p.radix = 4;
  p.host_bandwidth = 125e6;
  p.uplink_factor = 4.0;
  p.num_core = 2;
  return p;
}

TEST(FatTree, LinkInventory) {
  const FatTree ft(small_params());
  // 8 up + 8 down + 2 edges x 2 cores x 2 directions = 24.
  EXPECT_EQ(ft.num_links(), 24);
  EXPECT_EQ(ft.num_edges(), 2);
  EXPECT_DOUBLE_EQ(ft.link(ft.host_uplink(0)).capacity, 125e6);
}

TEST(FatTree, IntraNodeRouteIsEmpty) {
  const FatTree ft(small_params());
  EXPECT_TRUE(ft.route(3, 3).empty());
}

TEST(FatTree, SameEdgeRouteUsesTwoLinks) {
  const FatTree ft(small_params());
  const auto route = ft.route(0, 1);  // both under edge 0
  ASSERT_EQ(route.size(), 2u);
  EXPECT_EQ(route[0], ft.host_uplink(0));
  EXPECT_EQ(route[1], ft.host_downlink(1));
}

TEST(FatTree, CrossEdgeRouteUsesFourLinks) {
  const FatTree ft(small_params());
  const auto route = ft.route(0, 7);  // edge 0 -> edge 1
  ASSERT_EQ(route.size(), 4u);
  EXPECT_EQ(route[0], ft.host_uplink(0));
  EXPECT_EQ(route[3], ft.host_downlink(7));
  // The middle hops are uplink-class links with higher capacity.
  EXPECT_DOUBLE_EQ(ft.link(route[1]).capacity, 4.0 * 125e6);
  EXPECT_DOUBLE_EQ(ft.link(route[2]).capacity, 4.0 * 125e6);
}

TEST(FatTree, RoutesAreDeterministic) {
  const FatTree ft(small_params());
  EXPECT_EQ(ft.route(0, 7), ft.route(0, 7));
}

TEST(FatTree, EveryPairHasValidRoute) {
  const FatTree ft(small_params());
  for (int s = 0; s < ft.num_hosts(); ++s)
    for (int d = 0; d < ft.num_hosts(); ++d) {
      if (s == d) continue;
      const auto route = ft.route(s, d);
      ASSERT_GE(route.size(), 2u);
      EXPECT_EQ(route.front(), ft.host_uplink(s));
      EXPECT_EQ(route.back(), ft.host_downlink(d));
      // No repeated links.
      const std::set<LinkId> unique(route.begin(), route.end());
      EXPECT_EQ(unique.size(), route.size());
      for (LinkId id : route) {
        EXPECT_GE(id, 0);
        EXPECT_LT(id, ft.num_links());
      }
    }
}

TEST(FatTree, ForCluster) {
  const auto cluster = ClusterSpec::ibm_eserver325_myrinet(16);
  const auto ft = FatTree::for_cluster(cluster);
  EXPECT_EQ(ft.num_hosts(), 16);
  EXPECT_DOUBLE_EQ(ft.link(ft.host_uplink(5)).capacity,
                   cluster.network().link_bandwidth);
}

TEST(FatTree, Validation) {
  FatTree::Params p = small_params();
  p.num_hosts = 0;
  EXPECT_THROW(FatTree{p}, Error);
  p = small_params();
  p.host_bandwidth = 0.0;
  EXPECT_THROW(FatTree{p}, Error);
  const FatTree ft(small_params());
  EXPECT_THROW((void)ft.route(0, 99), Error);
  EXPECT_THROW((void)ft.link(999), Error);
}

}  // namespace
}  // namespace bwshare::topo
