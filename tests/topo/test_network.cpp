#include "topo/network.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace bwshare::topo {
namespace {

TEST(Network, CalibrationsHaveSaneShapes) {
  for (const auto tech :
       {NetworkTech::kGigabitEthernet, NetworkTech::kMyrinet2000,
        NetworkTech::kInfinibandInfinihost3}) {
    const auto cal = calibration_for(tech);
    EXPECT_EQ(cal.tech, tech);
    EXPECT_GT(cal.link_bandwidth, 0.0);
    EXPECT_GT(cal.single_stream_efficiency, 0.0);
    EXPECT_LE(cal.single_stream_efficiency, 1.0);
    EXPECT_GT(cal.latency, 0.0);
    EXPECT_GT(cal.mtu, 0.0);
    EXPECT_GT(cal.host_duplex_factor, 0.0);
    EXPECT_LE(cal.host_duplex_factor, 2.0);
  }
}

TEST(Network, BandwidthOrderingMatchesHardware) {
  // IB InfiniHost III > Myrinet 2000 > GigE raw link speed.
  const auto gige = gigabit_ethernet_calibration();
  const auto myri = myrinet2000_calibration();
  const auto ib = infiniband_calibration();
  EXPECT_GT(ib.link_bandwidth, myri.link_bandwidth);
  EXPECT_GT(myri.link_bandwidth, gige.link_bandwidth);
}

TEST(Network, SharingEfficiencyOrderingMatchesFig2) {
  // Fig 2: GigE shares best (β=0.75), IB next (0.87), Myrinet serializes
  // almost fully (0.95).
  const auto gige = gigabit_ethernet_calibration();
  const auto myri = myrinet2000_calibration();
  const auto ib = infiniband_calibration();
  EXPECT_LT(gige.single_stream_efficiency, ib.single_stream_efficiency);
  EXPECT_LT(ib.single_stream_efficiency, myri.single_stream_efficiency);
}

TEST(Network, ReferenceTime) {
  const auto gige = gigabit_ethernet_calibration();
  // 20 MB at 75% of 1 Gb/s ≈ 0.213 s plus latency.
  EXPECT_NEAR(gige.reference_time(20e6), 20e6 / (0.75 * 125e6), 1e-3);
}

TEST(Network, StringRoundTrip) {
  for (const auto tech :
       {NetworkTech::kGigabitEthernet, NetworkTech::kMyrinet2000,
        NetworkTech::kInfinibandInfinihost3}) {
    EXPECT_EQ(network_tech_from_string(to_string(tech)), tech);
  }
  EXPECT_EQ(network_tech_from_string("gige"), NetworkTech::kGigabitEthernet);
  EXPECT_EQ(network_tech_from_string("ib"),
            NetworkTech::kInfinibandInfinihost3);
  EXPECT_THROW((void)network_tech_from_string("token-ring"), Error);
}

}  // namespace
}  // namespace bwshare::topo
