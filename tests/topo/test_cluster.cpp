#include "topo/cluster.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace bwshare::topo {
namespace {

TEST(Cluster, UniformConstruction) {
  const auto c =
      ClusterSpec::uniform("test", 8, 2, gigabit_ethernet_calibration());
  EXPECT_EQ(c.num_nodes(), 8);
  EXPECT_EQ(c.total_cores(), 16);
  EXPECT_EQ(c.node(0).cores, 2);
}

TEST(Cluster, PaperClusters) {
  const auto gige = ClusterSpec::ibm_eserver326_gige();
  EXPECT_EQ(gige.num_nodes(), 53);
  EXPECT_EQ(gige.node(0).cores, 2);
  EXPECT_EQ(gige.network().tech, NetworkTech::kGigabitEthernet);

  const auto myri = ClusterSpec::ibm_eserver325_myrinet();
  EXPECT_EQ(myri.num_nodes(), 72);
  EXPECT_EQ(myri.network().tech, NetworkTech::kMyrinet2000);

  const auto ib = ClusterSpec::bull_novascale_ib();
  EXPECT_EQ(ib.num_nodes(), 26);
  EXPECT_EQ(ib.node(0).cores, 4);  // 2x Woodcrest = 4 cores/node
  EXPECT_EQ(ib.network().tech, NetworkTech::kInfinibandInfinihost3);
}

TEST(Cluster, Validation) {
  EXPECT_THROW(
      ClusterSpec::uniform("x", 0, 1, gigabit_ethernet_calibration()), Error);
  EXPECT_THROW(
      ClusterSpec("x", {NodeSpec{0, 1.0}}, gigabit_ethernet_calibration()),
      Error);
  const auto c =
      ClusterSpec::uniform("test", 2, 1, gigabit_ethernet_calibration());
  EXPECT_THROW((void)c.node(2), Error);
  EXPECT_THROW((void)c.node(-1), Error);
}

}  // namespace
}  // namespace bwshare::topo
