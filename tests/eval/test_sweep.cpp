#include "eval/sweep.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "util/error.hpp"

namespace bwshare::eval {
namespace {

std::string write_temp_trace(const std::string& name) {
  const std::string path = testing::TempDir() + name;
  std::ofstream file(path);
  file << "tasks 4\n"
          "0 send 1 4000000\n"
          "1 recv 0 4000000\n"
          "1 send 2 4000000\n"
          "2 recv 1 4000000\n"
          "2 send 3 4000000\n"
          "3 recv 2 4000000\n";
  return path;
}

TEST(SweepShape, ParsesAndValidates) {
  const auto shape = parse_sweep_shape("16x2");
  EXPECT_EQ(shape.nodes, 16);
  EXPECT_EQ(shape.cores, 2);
  EXPECT_THROW((void)parse_sweep_shape("16"), Error);
  EXPECT_THROW((void)parse_sweep_shape("x2"), Error);
  EXPECT_THROW((void)parse_sweep_shape("16x"), Error);
  EXPECT_THROW((void)parse_sweep_shape("0x2"), Error);
  EXPECT_THROW((void)parse_sweep_shape("axb"), Error);
  // 2^32+1 must error, not wrap to a 1-node cluster.
  EXPECT_THROW((void)parse_sweep_shape("4294967297x2"), Error);
  EXPECT_THROW((void)parse_sweep_shape("2x4294967297"), Error);
}

TEST(SweepSpec, ValidateRejectsEmptyAxes) {
  SweepSpec spec;  // no workloads at all
  EXPECT_THROW(spec.validate(), Error);
  spec.schemes = {"mk1"};
  EXPECT_NO_THROW(spec.validate());
  spec.networks.clear();
  EXPECT_THROW(spec.validate(), Error);
}

TEST(SweepSpec, ValidateRejectsUnknownModelName) {
  SweepSpec spec;
  spec.schemes = {"mk1"};
  spec.models = {"definitely-not-a-model"};
  EXPECT_THROW(spec.validate(), Error);
}

TEST(Sweep, BuiltinSizeOverrideScalesTimes) {
  SweepSpec base;
  base.schemes = {"mk1"};
  const auto at_4m = Sweep(std::move(base)).run(1);
  SweepSpec doubled;
  doubled.schemes = {"mk1@8M"};
  const auto at_8m = Sweep(std::move(doubled)).run(1);
  ASSERT_TRUE(at_4m.cells[0].ok && at_8m.cells[0].ok);
  // Same graph, twice the bytes: measured time roughly doubles while the
  // penalty structure (and so E_abs) stays put.
  EXPECT_NEAR(at_8m.cells[0].measured_s / at_4m.cells[0].measured_s, 2.0,
              0.1);
  EXPECT_NEAR(at_8m.cells[0].eabs_pct, at_4m.cells[0].eabs_pct, 2.0);
  SweepSpec bad_size;
  bad_size.schemes = {"mk1@4Q"};
  EXPECT_THROW(Sweep{std::move(bad_size)}, Error);
}

TEST(Sweep, RejectsUnknownBuiltinScheme) {
  SweepSpec spec;
  spec.schemes = {"fig99"};
  EXPECT_THROW(Sweep{std::move(spec)}, Error);
}

TEST(Sweep, RejectsMalformedGeneratorSpec) {
  SweepSpec spec;
  spec.schemes = {"torus:nodes=4"};
  EXPECT_THROW(Sweep{std::move(spec)}, Error);
}

TEST(Sweep, NumJobsIsTheCrossProduct) {
  SweepSpec spec;
  spec.schemes = {"mk1", "mk2", "fig2_s4"};
  spec.traces = {write_temp_trace("sweep_jobs.trace")};
  spec.networks = {topo::NetworkTech::kGigabitEthernet,
                   topo::NetworkTech::kMyrinet2000};
  spec.models = {"network", "loggp"};
  spec.shapes = {{16, 2}};
  spec.policies = {sim::SchedulingPolicy::kRoundRobinNode,
                   sim::SchedulingPolicy::kRandom};
  spec.seeds = {1, 2, 3};
  const Sweep sweep(std::move(spec));
  // schemes: 3 * 2 * 2 * 1 * 3 (policies do not apply)   = 36
  // traces:  1 * 2 * 2 * 1 * 2 * 3                       = 24
  EXPECT_EQ(sweep.num_jobs(), 60u);
}

TEST(Sweep, RunsTheAcceptanceGrid) {
  SweepSpec spec;
  spec.schemes = {"mk1", "mk2"};
  spec.networks = {topo::NetworkTech::kGigabitEthernet,
                   topo::NetworkTech::kMyrinet2000};
  spec.models = {"gige", "myrinet"};
  spec.seeds = {1, 2, 3};
  const Sweep sweep(std::move(spec));
  EXPECT_EQ(sweep.num_jobs(), 24u);
  const auto result = sweep.run(2);
  ASSERT_EQ(result.cells.size(), 24u);
  EXPECT_EQ(result.num_errors, 0u);
  for (const auto& cell : result.cells) {
    EXPECT_TRUE(cell.ok) << cell.error;
    EXPECT_EQ(cell.kind, "scheme");
    EXPECT_EQ(cell.policy, "-");
    EXPECT_GT(cell.units, 0);
    EXPECT_GT(cell.measured_s, 0.0);
    EXPECT_GT(cell.predicted_s, 0.0);
    EXPECT_GE(cell.max_abs_erel_pct, cell.eabs_pct * 0.999);
  }
  // Marginals cover every axis value with the right cell counts.
  bool found_mk1 = false;
  for (const auto& m : result.marginals) {
    if (m.axis == "workload" && m.value == "mk1") {
      found_mk1 = true;
      EXPECT_EQ(m.cells, 12u);  // 2 networks * 2 models * 3 seeds
      EXPECT_GE(m.max_eabs_pct, m.mean_eabs_pct);
    }
  }
  EXPECT_TRUE(found_mk1);
}

// The tentpole guarantee: byte-identical CSV and JSON at 1, 4 and N threads,
// including generated workloads and random placement.
TEST(Sweep, OutputIsByteIdenticalAcrossThreadCounts) {
  SweepSpec spec;
  spec.schemes = {"mk1", "random:nodes=8,comms=12,spread=1",
                  "hotspot:nodes=6"};
  spec.traces = {write_temp_trace("sweep_determinism.trace")};
  spec.networks = {topo::NetworkTech::kGigabitEthernet,
                   topo::NetworkTech::kMyrinet2000};
  spec.models = {"network", "loggp"};
  spec.policies = {sim::SchedulingPolicy::kRandom};
  spec.seeds = {1, 2, 3};
  const Sweep sweep(std::move(spec));

  const auto baseline = sweep.run(1);
  const std::string csv = baseline.to_csv();
  const std::string json = baseline.to_json();
  EXPECT_EQ(baseline.num_errors, 0u);
  for (const int threads : {4, 11}) {
    const auto result = sweep.run(threads);
    EXPECT_EQ(result.to_csv(), csv) << "threads=" << threads;
    EXPECT_EQ(result.to_json(), json) << "threads=" << threads;
  }
}

TEST(Sweep, SchemeFilesAndClusterGrowth) {
  SweepSpec spec;
  spec.schemes = {std::string(BWSHARE_SOURCE_DIR) + "/data/fig2_s4.scheme"};
  spec.shapes = {{2, 2}};  // smaller than the scheme's 5 nodes
  const Sweep sweep(std::move(spec));
  const auto result = sweep.run(1);
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_TRUE(result.cells[0].ok) << result.cells[0].error;
  EXPECT_EQ(result.cells[0].units, 4);
  EXPECT_EQ(result.cells[0].nodes, 5);  // grown to fit the scheme
}

TEST(Sweep, CellErrorsAreRecordedNotThrown) {
  SweepSpec spec;
  spec.traces = {write_temp_trace("sweep_errors.trace")};
  spec.shapes = {{1, 1}};  // 4 tasks cannot fit one core
  const Sweep sweep(std::move(spec));
  const auto result = sweep.run(2);
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_FALSE(result.cells[0].ok);
  EXPECT_FALSE(result.cells[0].error.empty());
  EXPECT_EQ(result.num_errors, 1u);
  // Errored cells surface in the CSV status column.
  EXPECT_NE(result.to_csv().find(",error,"), std::string::npos);
}

TEST(Sweep, TraceCellsCrossPolicies) {
  SweepSpec spec;
  spec.traces = {write_temp_trace("sweep_policies.trace")};
  spec.policies = {sim::SchedulingPolicy::kRoundRobinNode,
                   sim::SchedulingPolicy::kRoundRobinProcessor};
  spec.shapes = {{4, 2}};
  const Sweep sweep(std::move(spec));
  const auto result = sweep.run(2);
  ASSERT_EQ(result.cells.size(), 2u);
  EXPECT_EQ(result.cells[0].policy, "RRN");
  EXPECT_EQ(result.cells[1].policy, "RRP");
  for (const auto& cell : result.cells) {
    EXPECT_TRUE(cell.ok) << cell.error;
    EXPECT_EQ(cell.kind, "trace");
    EXPECT_EQ(cell.units, 4);
    EXPECT_GT(cell.measured_s, 0.0);
  }
  // Policy marginals only exist when trace cells exist.
  bool found_policy_marginal = false;
  for (const auto& m : result.marginals) {
    found_policy_marginal |= m.axis == "policy";
  }
  EXPECT_TRUE(found_policy_marginal);
}

TEST(Sweep, ChurnAxesCrossTraceCellsOnly) {
  SweepSpec spec;
  spec.schemes = {"mk1"};
  spec.traces = {write_temp_trace("sweep_churn_axes.trace")};
  spec.shapes = {{4, 2}};
  spec.churn_rates = {0.0, 30.0};
  spec.background_loads = {0.0, 200.0};
  spec.seeds = {1};
  const Sweep sweep(std::move(spec));
  // Scheme cells are static solves — the dynamic axes only multiply the
  // trace cells: 1 scheme + 1 trace * 2 churn * 2 background.
  EXPECT_EQ(sweep.num_jobs(), 5u);
  const auto result = sweep.run(2);
  ASSERT_EQ(result.cells.size(), 5u);
  size_t dynamic_cells = 0;
  for (const auto& cell : result.cells) {
    EXPECT_TRUE(cell.ok) << cell.error;
    if (cell.kind == "scheme") {
      EXPECT_DOUBLE_EQ(cell.churn_rate, 0.0);
      EXPECT_DOUBLE_EQ(cell.background_load, 0.0);
    }
    if (cell.churn_rate > 0.0 || cell.background_load > 0.0) {
      ++dynamic_cells;
      EXPECT_EQ(cell.kind, "trace");
      EXPECT_GT(cell.measured_s, 0.0);
    }
  }
  EXPECT_EQ(dynamic_cells, 3u);
  // Marginals summarize the new axes (trace workloads present).
  bool churn_marginal = false, background_marginal = false;
  for (const auto& m : result.marginals) {
    churn_marginal |= m.axis == "churn_rate";
    background_marginal |= m.axis == "background_load";
  }
  EXPECT_TRUE(churn_marginal);
  EXPECT_TRUE(background_marginal);
}

TEST(Sweep, ChurnedCellsAreByteIdenticalAcrossThreadCounts) {
  SweepSpec spec;
  spec.traces = {write_temp_trace("sweep_churn_determinism.trace")};
  spec.shapes = {{4, 2}};
  spec.policies = {sim::SchedulingPolicy::kRandom};
  spec.churn_rates = {0.0, 40.0};
  spec.background_loads = {0.0, 400.0};
  spec.seeds = {1, 2};
  const Sweep sweep(std::move(spec));
  const auto baseline = sweep.run(1);
  EXPECT_EQ(baseline.num_errors, 0u);
  const std::string csv = baseline.to_csv();
  const std::string json = baseline.to_json();
  for (const int threads : {4, 11}) {
    const auto result = sweep.run(threads);
    EXPECT_EQ(result.to_csv(), csv) << "threads=" << threads;
    EXPECT_EQ(result.to_json(), json) << "threads=" << threads;
  }
}

TEST(SweepResult, CsvHasHeaderAndOneLinePerCell) {
  SweepSpec spec;
  spec.schemes = {"fig2_s2"};
  spec.seeds = {7};
  const Sweep sweep(std::move(spec));
  const auto result = sweep.run(1);
  const std::string csv = result.to_csv();
  // Schema v2: churn_rate and background_load sit between policy and seed.
  EXPECT_EQ(csv.rfind("kind,workload,network,model,nodes,cores,policy,"
                      "churn_rate,background_load,seed,"
                      "units,measured_s,predicted_s,eabs_pct,"
                      "max_abs_erel_pct,status,error\n",
                      0),
            0u);
  size_t lines = 0;
  for (const char c : csv) lines += c == '\n';
  EXPECT_EQ(lines, 1u + result.cells.size());
}

}  // namespace
}  // namespace bwshare::eval
