// Campaign acceptance suite: determinism across thread counts (reports are
// byte-identical, elimination order included), the arm-error contract, the
// replicate seed-stream pins, and the headline claim — an adaptive campaign
// answers the advisor question with the same winner as an exhaustive
// fixed-grid run at a >= 3x replay discount.
#include "eval/campaign.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <string>

#include "sim/trace_io.hpp"
#include "util/error.hpp"

namespace bwshare::eval {
namespace {

std::string write_temp_trace(const std::string& name) {
  const std::string path = testing::TempDir() + name;
  std::ofstream file(path);
  file << "tasks 4\n"
          "0 send 1 4000000\n"
          "1 recv 0 4000000\n"
          "1 send 2 4000000\n"
          "2 recv 1 4000000\n"
          "2 send 3 4000000\n"
          "3 recv 2 4000000\n";
  return path;
}

// The advisor-shaped spec the determinism and savings tests share: one
// trace workload, three interconnects as arms, random placement as the
// per-replicate noise source.
CampaignSpec advisor_spec(const std::string& trace_path) {
  CampaignSpec spec;
  spec.grid.traces = {trace_path};
  spec.grid.networks = {topo::NetworkTech::kGigabitEthernet,
                        topo::NetworkTech::kMyrinet2000,
                        topo::NetworkTech::kInfinibandInfinihost3};
  spec.grid.shapes = {{4, 2}};
  spec.grid.policies = {sim::SchedulingPolicy::kRandom};
  spec.objective = Objective::kMeasuredSeconds;
  spec.stop.rule = stats::StoppingRule::kBestArm;
  spec.stop.min_replicates = 4;
  spec.stop.max_replicates = 30;
  spec.stop.resamples = 200;
  spec.batch = 4;
  spec.seed = 7;
  spec.stop.ci_seed = 7;
  return spec;
}

TEST(Campaign, ReplicateSeedStreamIsPureAndCollisionFree) {
  // The documented contract: seed = f(campaign_seed, arm, replicate), no
  // dependence on rounds or threads (there is nothing else to depend on),
  // and no collisions between neighbouring (arm, replicate) pairs.
  EXPECT_EQ(campaign_replicate_seed(42, 3, 7),
            campaign_replicate_seed(42, 3, 7));
  std::set<uint64_t> seen;
  for (size_t arm = 0; arm < 8; ++arm) {
    for (int r = 0; r < 64; ++r) {
      seen.insert(campaign_replicate_seed(42, arm, r));
    }
  }
  EXPECT_EQ(seen.size(), 8u * 64u);
  // Distinct campaign seeds give distinct streams.
  EXPECT_NE(campaign_replicate_seed(1, 0, 0), campaign_replicate_seed(2, 0, 0));
}

TEST(Campaign, ExpandsArmsAndExhaustiveBudget) {
  CampaignSpec spec;
  spec.grid.schemes = {"mk1", "mk2"};
  spec.grid.networks = {topo::NetworkTech::kGigabitEthernet,
                        topo::NetworkTech::kMyrinet2000};
  spec.stop.max_replicates = 50;
  const Campaign campaign(std::move(spec));
  EXPECT_EQ(campaign.num_arms(), 4u);  // 2 schemes x 2 networks x 1 x 1
  EXPECT_EQ(campaign.exhaustive_replicates(), 200u);
}

TEST(Campaign, Validation) {
  CampaignSpec no_workloads;
  EXPECT_THROW(Campaign{std::move(no_workloads)}, Error);

  CampaignSpec bad_batch;
  bad_batch.grid.schemes = {"mk1"};
  bad_batch.batch = 0;
  EXPECT_THROW(Campaign{std::move(bad_batch)}, Error);

  // Grid entries and pre-resolved workloads are mutually exclusive.
  CampaignSpec both;
  both.grid.schemes = {"mk1"};
  std::vector<ResolvedWorkload> workloads = {resolve_scheme_workload("mk2")};
  EXPECT_THROW(Campaign(std::move(both), std::move(workloads)), Error);

  CampaignSpec empty;
  EXPECT_THROW(Campaign(std::move(empty), {}), Error);

  EXPECT_THROW((void)objective_from_string("latency"), Error);
  for (const auto objective : {Objective::kMeasuredSeconds,
                               Objective::kPredictedSeconds,
                               Objective::kEabsPct}) {
    EXPECT_EQ(objective_from_string(to_string(objective)), objective);
  }
}

TEST(Campaign, ErroredArmIsRecordedAndNeverAbortsTheCampaign) {
  // Shape 1x1 cannot place a 4-task trace (sim::make_placement throws
  // inside the replicate); shape 4x2 can. The failing arm must be recorded
  // status=error with its message and round, the healthy arm must win, and
  // run() must not throw.
  CampaignSpec spec;
  spec.grid.traces = {write_temp_trace("campaign_error.trace")};
  spec.grid.shapes = {{1, 1}, {4, 2}};
  spec.stop.rule = stats::StoppingRule::kBestArm;
  spec.stop.min_replicates = 4;
  spec.stop.max_replicates = 16;
  spec.stop.resamples = 100;
  spec.batch = 4;
  const Campaign campaign(std::move(spec));
  ASSERT_EQ(campaign.num_arms(), 2u);
  const auto result = campaign.run(2);

  const auto& broken = result.arms[0];
  EXPECT_TRUE(broken.error);
  EXPECT_EQ(broken.status(), "error");
  EXPECT_FALSE(broken.error_msg.empty());
  EXPECT_EQ(broken.out_round, 1);       // died while round 1 was sampling
  EXPECT_EQ(broken.replicates, 4);      // the round's replays still count
  EXPECT_EQ(broken.nodes, 1);           // identity backfilled from the axis
  EXPECT_EQ(broken.cores, 1);

  const auto& healthy = result.arms[1];
  EXPECT_FALSE(healthy.error);
  EXPECT_EQ(result.winner, 1);
  EXPECT_TRUE(healthy.winner);
  EXPECT_EQ(healthy.status(), "winner");
  EXPECT_GT(healthy.mean, 0.0);
  // With its only rival gone the best-arm rule stops at the first verdict.
  EXPECT_EQ(result.stopped_by, "best-arm");
}

TEST(Campaign, AllArmsErroredStillReturnsAReport) {
  CampaignSpec spec;
  spec.grid.traces = {write_temp_trace("campaign_all_error.trace")};
  spec.grid.shapes = {{1, 1}};
  spec.stop.min_replicates = 2;
  spec.stop.max_replicates = 8;
  spec.stop.resamples = 100;
  spec.batch = 2;
  const Campaign campaign(std::move(spec));
  const auto result = campaign.run(1);
  EXPECT_EQ(result.winner, -1);
  EXPECT_EQ(result.stopped_by, "max-replicates");
  EXPECT_TRUE(result.arms[0].error);
  EXPECT_EQ(result.savings_factor(),
            static_cast<double>(result.exhaustive_replicates) /
                static_cast<double>(result.total_replicates));
}

TEST(Campaign, ReportSchemaIsStable) {
  CampaignSpec spec;
  spec.grid.schemes = {"mk1"};
  spec.stop.rule = stats::StoppingRule::kCutoff;
  spec.stop.min_replicates = 2;
  spec.stop.max_replicates = 4;
  spec.stop.resamples = 100;
  spec.batch = 2;
  spec.objective = Objective::kEabsPct;
  const Campaign campaign(std::move(spec));
  const auto result = campaign.run(1);
  const std::string csv = result.to_csv();
  EXPECT_EQ(csv.substr(0, csv.find('\n')),
            "arm,kind,workload,network,model,nodes,cores,policy,churn_rate,"
            "background_load,replicates,mean,ci_low,ci_high,out_round,status,"
            "error");
  const std::string json = result.to_json();
  for (const char* key :
       {"\"summary\"", "\"objective\"", "\"stopped_by\"", "\"rounds\"",
        "\"total_replicates\"", "\"exhaustive_replicates\"",
        "\"savings_factor\"", "\"winner\"", "\"arms\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

TEST(Campaign, InMemoryWorkloadsMatchFileWorkloads) {
  // The network_advisor path: a pre-resolved in-memory trace must produce
  // exactly the report the file-resolved grid produces (modulo the
  // workload display name, which the caller chooses).
  const std::string path = write_temp_trace("campaign_inmem.trace");
  auto from_file = advisor_spec(path);
  from_file.stop.max_replicates = 8;
  const auto file_result = Campaign(from_file).run(2);

  CampaignSpec in_memory = from_file;
  in_memory.grid.traces.clear();
  std::vector<ResolvedWorkload> workloads(1);
  workloads[0].key = path;  // same display name -> byte-identical reports
  workloads[0].trace =
      std::make_shared<const sim::AppTrace>(sim::read_trace_file(path));
  const auto mem_result =
      Campaign(std::move(in_memory), std::move(workloads)).run(2);

  EXPECT_EQ(file_result.to_csv(), mem_result.to_csv());
  EXPECT_EQ(file_result.to_json(), mem_result.to_json());
}

TEST(Campaign, ReportIsByteIdenticalAcrossThreadCounts) {
  // The determinism contract, end to end: CSV and JSON reports — means,
  // CIs, replicate counts, out_rounds, statuses — must match byte for byte
  // at 1, 4 and 11 workers, under the elimination rule so the test also
  // pins elimination order against ingest races.
  const std::string path = write_temp_trace("campaign_threads.trace");
  auto spec = advisor_spec(path);
  spec.stop.rule = stats::StoppingRule::kCutoff;
  spec.stop.max_replicates = 20;
  const Campaign campaign(std::move(spec));
  const auto base = campaign.run(1);
  // The scenario must actually exercise elimination for the pin to mean
  // anything: gige loses to the faster fabrics and must be cut.
  ASSERT_EQ(base.stopped_by, "cutoff");
  int eliminated = 0;
  for (const auto& arm : base.arms) eliminated += arm.eliminated ? 1 : 0;
  ASSERT_GE(eliminated, 1);
  for (const int threads : {4, 11}) {
    const auto other = campaign.run(threads);
    EXPECT_EQ(base.to_csv(), other.to_csv()) << threads << " threads";
    EXPECT_EQ(base.to_json(), other.to_json()) << threads << " threads";
  }
}

TEST(Campaign, AdaptiveMatchesExhaustiveWinnerAtAThirdOfTheCost) {
  // The acceptance criterion: same spec run (a) exhaustively — every arm
  // to max_replicates, which is what min == max forces — and (b)
  // adaptively. Same winner, >= 3x fewer replays.
  const std::string path = write_temp_trace("campaign_savings.trace");
  auto exhaustive_spec = advisor_spec(path);
  exhaustive_spec.stop.min_replicates = exhaustive_spec.stop.max_replicates;
  exhaustive_spec.batch = exhaustive_spec.stop.max_replicates;
  const auto exhaustive = Campaign(std::move(exhaustive_spec)).run(2);
  ASSERT_GE(exhaustive.winner, 0);
  // min == max forces the full budget in one round, whatever rule fires.
  ASSERT_EQ(exhaustive.total_replicates, exhaustive.exhaustive_replicates);

  const auto adaptive = Campaign(advisor_spec(path)).run(2);
  EXPECT_EQ(adaptive.winner, exhaustive.winner);
  EXPECT_EQ(adaptive.stopped_by, "best-arm");
  EXPECT_LE(adaptive.total_replicates * 3, exhaustive.total_replicates)
      << "adaptive used " << adaptive.total_replicates << " of "
      << exhaustive.total_replicates;
  EXPECT_GE(adaptive.savings_factor(), 3.0);
}

}  // namespace
}  // namespace bwshare::eval
