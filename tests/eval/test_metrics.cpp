#include "eval/metrics.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace bwshare::eval {
namespace {

TEST(Metrics, RelativeErrorSignConvention) {
  // Positive = pessimistic (prediction too slow), §VI-B.
  EXPECT_NEAR(relative_error(1.1, 1.0), 10.0, 1e-9);
  EXPECT_NEAR(relative_error(0.9, 1.0), -10.0, 1e-9);
  EXPECT_DOUBLE_EQ(relative_error(1.0, 1.0), 0.0);
}

TEST(Metrics, PaperMk1Example) {
  // Fig 7 MK1: Tm=0.087, Tp=0.089 -> E_rel = 2.3%.
  EXPECT_NEAR(relative_error(0.089, 0.087), 2.3, 0.01);
  // e: Tm=0.037, Tp=0.035 -> -5.4%.
  EXPECT_NEAR(relative_error(0.035, 0.037), -5.4, 0.01);
}

TEST(Metrics, MeanAbsoluteErrorAvoidsCancellation) {
  const std::vector<double> predicted{1.1, 0.9};
  const std::vector<double> measured{1.0, 1.0};
  // Relative errors +10 and -10 cancel; E_abs must not.
  EXPECT_NEAR(mean_absolute_error(predicted, measured), 10.0, 1e-9);
}

TEST(Metrics, PaperMk1AverageReproduced) {
  // Fig 7 MK1 table: errors 2.3, 2.3, 1.4, 1.9, -5.4, 3.9, 1.4 -> Eabs 2.6.
  const std::vector<double> tm{0.087, 0.087, 0.070, 0.052, 0.037, 0.051, 0.070};
  const std::vector<double> tp{0.089, 0.089, 0.071, 0.053, 0.035, 0.053, 0.071};
  EXPECT_NEAR(mean_absolute_error(tp, tm), 2.6, 0.15);
}

TEST(Metrics, TaskError) {
  EXPECT_DOUBLE_EQ(task_absolute_error(0.8, 1.0), 20.0);
  EXPECT_DOUBLE_EQ(task_absolute_error(1.2, 1.0), 20.0);
}

TEST(Metrics, Validation) {
  EXPECT_THROW((void)relative_error(1.0, 0.0), Error);
  const std::vector<double> a{1.0};
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW(relative_errors(a, b), Error);
  EXPECT_THROW((void)mean_absolute_error({}, {}), Error);
}

}  // namespace
}  // namespace bwshare::eval
