// Integration: the full measured-vs-predicted pipeline on schemes and on a
// small HPL run — the machinery behind figs 4, 7, 8, 9.
#include "eval/experiment.hpp"

#include <gtest/gtest.h>

#include "graph/schemes.hpp"
#include "hpl/hpl_trace.hpp"
#include "models/baselines.hpp"
#include "models/gige.hpp"
#include "models/myrinet.hpp"

namespace bwshare::eval {
namespace {

topo::ClusterSpec gige_cluster(int nodes = 10) {
  return topo::ClusterSpec::uniform("gige", nodes, 2,
                                    topo::gigabit_ethernet_calibration());
}

topo::ClusterSpec myri_cluster(int nodes = 10) {
  return topo::ClusterSpec::uniform("myri", nodes, 2,
                                    topo::myrinet2000_calibration());
}

TEST(Experiment, GigeModelAccurateOnFans) {
  // The GigE model was built from exactly this conflict; E_abs must be tiny.
  const auto cmp = compare_scheme(graph::schemes::outgoing_fan(3),
                                  gige_cluster(),
                                  models::GigabitEthernetModel());
  EXPECT_LT(cmp.eabs, 2.0);
}

TEST(Experiment, GigeModelReasonableOnFig4) {
  const auto cmp = compare_scheme(graph::schemes::fig4_scheme(), gige_cluster(),
                                  models::GigabitEthernetModel());
  // The paper's fig-4 verification: predictions within a few percent of the
  // measurement (their printed table peaks around 5%).
  EXPECT_LT(cmp.eabs, 12.0);
  ASSERT_EQ(cmp.erel.size(), 6u);
}

TEST(Experiment, MyrinetModelOnMk1Tree) {
  const auto cmp = compare_scheme(graph::schemes::mk1_tree(), myri_cluster(),
                                  models::MyrinetModel());
  // Paper fig 7: E_abs = 2.6% on MK1. Allow our substrate some slack.
  EXPECT_LT(cmp.eabs, 15.0);
}

TEST(Experiment, ModelsBeatTheLogGPStrawman) {
  // On a conflicted scheme the no-sharing baseline must be much worse than
  // the paper's model (§II's motivation).
  const auto scheme = graph::schemes::fig2_scheme(3);
  const auto model_cmp =
      compare_scheme(scheme, gige_cluster(), models::GigabitEthernetModel());
  const auto loggp_cmp =
      compare_scheme(scheme, gige_cluster(), models::LinearLogGPModel());
  EXPECT_LT(model_cmp.eabs, loggp_cmp.eabs / 3.0);
}

TEST(Experiment, ApplicationComparisonOnSmallHpl) {
  hpl::HplParams params;
  params.n = 1920;
  params.nb = 120;
  params.tasks = 8;
  params.max_panels = 8;
  const auto trace = hpl::make_hpl_trace(params);
  const auto cmp = compare_application(trace, myri_cluster(8),
                                       sim::SchedulingPolicy::kRoundRobinNode,
                                       models::MyrinetModel());
  ASSERT_EQ(cmp.tasks.size(), 8u);
  EXPECT_GT(cmp.measured_makespan, 0.0);
  EXPECT_GT(cmp.predicted_makespan, 0.0);
  // Ring traffic on RRN is essentially conflict-free: model ~ substrate.
  EXPECT_LT(cmp.mean_eabs, 25.0);
  for (const auto& t : cmp.tasks) {
    EXPECT_GE(t.sum_measured, 0.0);
    EXPECT_GE(t.sum_predicted, 0.0);
  }
}

TEST(Experiment, SchedulingChangesThePlacement) {
  hpl::HplParams params;
  params.n = 960;
  params.nb = 120;
  params.tasks = 8;
  const auto trace = hpl::make_hpl_trace(params);
  const auto rrn = compare_application(trace, myri_cluster(8),
                                       sim::SchedulingPolicy::kRoundRobinNode,
                                       models::MyrinetModel());
  const auto rrp = compare_application(
      trace, myri_cluster(8), sim::SchedulingPolicy::kRoundRobinProcessor,
      models::MyrinetModel());
  EXPECT_NE(rrn.placement.nodes(), rrp.placement.nodes());
  // RRP co-locates neighbouring ranks: half the ring goes through shared
  // memory, so it finishes no slower than RRN on the measured side.
  EXPECT_LE(rrp.measured_makespan, rrn.measured_makespan * 1.05);
}

}  // namespace
}  // namespace bwshare::eval
