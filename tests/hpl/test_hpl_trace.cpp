#include "hpl/hpl_trace.hpp"

#include <gtest/gtest.h>

#include "hpl/lu.hpp"
#include "util/error.hpp"

namespace bwshare::hpl {
namespace {

HplParams small_params() {
  HplParams p;
  p.n = 960;
  p.nb = 120;
  p.tasks = 4;
  p.flops_per_second = 3.2e9;
  return p;
}

TEST(HplTrace, ValidatesAndHasRingStructure) {
  const auto params = small_params();
  const auto trace = make_hpl_trace(params);
  EXPECT_EQ(trace.num_tasks(), 4);
  // Every send goes to rank+1 (mod P): the paper's §VI-D scheme.
  for (sim::TaskId t = 0; t < trace.num_tasks(); ++t)
    for (const auto& e : trace.program(t))
      if (e.kind == sim::EventKind::kSend) {
        EXPECT_EQ(e.peer, (t + 1) % params.tasks);
      }
}

TEST(HplTrace, PanelCountAndSizes) {
  const auto params = small_params();
  EXPECT_EQ(num_panels(params), 8);  // 960 / 120
  // First panel carries the full column height; sizes shrink by NB rows.
  EXPECT_DOUBLE_EQ(panel_bytes(params, 0), 960.0 * 120 * 8);
  EXPECT_DOUBLE_EQ(panel_bytes(params, 1), 840.0 * 120 * 8);
  EXPECT_DOUBLE_EQ(panel_bytes(params, 7), 120.0 * 120 * 8);
}

TEST(HplTrace, RingCarriesEveryPanelToEveryTask) {
  const auto params = small_params();
  const auto trace = make_hpl_trace(params);
  // Each panel triggers P-1 messages; total sends = panels * (P-1).
  int sends = 0;
  for (sim::TaskId t = 0; t < trace.num_tasks(); ++t)
    for (const auto& e : trace.program(t))
      if (e.kind == sim::EventKind::kSend) ++sends;
  EXPECT_EQ(sends, num_panels(params) * (params.tasks - 1));
}

TEST(HplTrace, ComputeTimeMatchesFlopModel) {
  const auto params = small_params();
  const auto trace = make_hpl_trace(params);
  double compute_total = trace.total_compute_seconds();
  // Panel + update flops summed over iterations, then scaled: updates are
  // counted once per task (each task updates 1/P of the trailing matrix).
  double expected = 0.0;
  for (int k = 0; k < num_panels(params); ++k) {
    const double m = params.n - k * params.nb;
    const double nb = std::min(params.nb, params.n - k * params.nb);
    expected += panel_flops(m, nb);
    expected +=
        params.tasks * update_flops(m - nb, (m - nb) / params.tasks, nb);
  }
  EXPECT_NEAR(compute_total, expected / params.flops_per_second, 1e-9);
}

TEST(HplTrace, MaxPanelsTruncates) {
  auto params = small_params();
  params.max_panels = 3;
  EXPECT_EQ(num_panels(params), 3);
  const auto trace = make_hpl_trace(params);
  int sends = 0;
  for (sim::TaskId t = 0; t < trace.num_tasks(); ++t)
    for (const auto& e : trace.program(t))
      if (e.kind == sim::EventKind::kSend) ++sends;
  EXPECT_EQ(sends, 3 * (params.tasks - 1));
}

TEST(HplTrace, BarrierPerIteration) {
  auto params = small_params();
  params.barrier_per_iteration = true;
  const auto trace = make_hpl_trace(params);
  int barriers = 0;
  for (const auto& e : trace.program(0))
    if (e.kind == sim::EventKind::kBarrier) ++barriers;
  EXPECT_EQ(barriers, num_panels(params));
}

TEST(HplTrace, Paper20500Configuration) {
  HplParams params;
  params.n = 20500;
  params.nb = 120;
  params.tasks = 16;
  EXPECT_EQ(num_panels(params), 171);  // ceil(20500/120)
  // First panel ~ 19.7 MB: the large-message regime the models target.
  EXPECT_NEAR(panel_bytes(params, 0), 20500.0 * 120 * 8, 1.0);
  params.max_panels = 4;
  const auto trace = make_hpl_trace(params);
  EXPECT_EQ(trace.num_tasks(), 16);
}

TEST(HplTrace, Validation) {
  HplParams bad;
  bad.tasks = 1;
  EXPECT_THROW(make_hpl_trace(bad), Error);
  bad = HplParams{};
  bad.nb = 0;
  EXPECT_THROW(make_hpl_trace(bad), Error);
}

}  // namespace
}  // namespace bwshare::hpl
