// LU factorization correctness and the flop model behind the HPL trace
// generator.
#include "hpl/lu.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace bwshare::hpl {
namespace {

TEST(Matrix, Basics) {
  Matrix m(2, 3);
  m.at(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m.at(1, 2), 5.0);
  EXPECT_THROW((void)m.at(2, 0), Error);
  const auto i = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(i.at(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(i.at(0, 1), 0.0);
}

TEST(Matrix, MultiplyIdentity) {
  const auto a = Matrix::random(5, 1);
  const auto prod = a.multiply(Matrix::identity(5));
  EXPECT_NEAR(a.max_abs_diff(prod), 0.0, 1e-12);
}

// Parameterized over (n, block) combinations, including non-dividing blocks.
class LuTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(LuTest, ReconstructionMatchesPivotedInput) {
  const auto [n, block] = GetParam();
  const auto a = Matrix::random(n, static_cast<uint64_t>(n * 31 + block));
  const auto result = blocked_lu(a, block);
  const auto lu_product = reconstruct(result);
  const auto pa = apply_pivots(a, result.pivots);
  EXPECT_LT(lu_product.max_abs_diff(pa), 1e-9 * n)
      << "n=" << n << " block=" << block;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LuTest,
    ::testing::Values(std::pair{1, 1}, std::pair{4, 2}, std::pair{8, 3},
                      std::pair{16, 4}, std::pair{16, 16}, std::pair{33, 8},
                      std::pair{48, 12}, std::pair{64, 120}));

TEST(Lu, BlockSizeDoesNotChangeTheFactors) {
  const auto a = Matrix::random(24, 9);
  const auto r1 = blocked_lu(a, 1);
  const auto r2 = blocked_lu(a, 8);
  const auto r3 = blocked_lu(a, 24);
  EXPECT_LT(r1.lu.max_abs_diff(r2.lu), 1e-9);
  EXPECT_LT(r1.lu.max_abs_diff(r3.lu), 1e-9);
  EXPECT_EQ(r1.pivots, r2.pivots);
}

TEST(Lu, SolveRecoversKnownSolution) {
  const int n = 20;
  const auto a = Matrix::random(n, 77);
  std::vector<double> x_true(n);
  for (int i = 0; i < n; ++i) x_true[static_cast<size_t>(i)] = i - 7.5;
  // b = A x.
  std::vector<double> b(n, 0.0);
  for (int c = 0; c < n; ++c)
    for (int r = 0; r < n; ++r)
      b[static_cast<size_t>(r)] += a.at(r, c) * x_true[static_cast<size_t>(c)];
  const auto result = blocked_lu(a, 4);
  const auto x = lu_solve(result, b);
  for (int i = 0; i < n; ++i)
    EXPECT_NEAR(x[static_cast<size_t>(i)], x_true[static_cast<size_t>(i)],
                1e-8);
}

TEST(Lu, SingularMatrixThrows) {
  Matrix z(4, 4);  // all zeros
  EXPECT_THROW(blocked_lu(z, 2), Error);
}

TEST(Lu, CountedFlopsMatchAnalyticTotal) {
  // The instrumented flop counter and the closed-form 2/3 n^3 model used by
  // the trace generator must agree (within lower-order terms).
  for (int n : {16, 32, 64}) {
    const auto a = Matrix::random(n, 5);
    const auto result = blocked_lu(a, 8);
    const double analytic = total_lu_flops(n);
    const double counted = static_cast<double>(result.flops);
    EXPECT_NEAR(counted / analytic, 1.0, 0.25) << "n=" << n;
  }
}

TEST(Lu, PanelPlusUpdatesSumToTotal) {
  // Summing the generator's per-iteration flop formulas over all panels
  // reproduces the full factorization cost.
  const double n = 480;
  const double nb = 32;
  double total = 0.0;
  for (int k = 0; k * nb < n; ++k) {
    const double m = n - k * nb;
    const double cols = std::min(nb, m);
    total += panel_flops(m, cols);
    total += update_flops(m - cols, m - cols, cols);
  }
  EXPECT_NEAR(total / total_lu_flops(n), 1.0, 0.05);
}

TEST(Lu, FlopHelpersBasicShape) {
  EXPECT_GT(panel_flops(100, 8), 0.0);
  EXPECT_DOUBLE_EQ(panel_flops(1, 1), 0.0);
  EXPECT_GT(update_flops(100, 100, 8), 2.0 * 100 * 100 * 8 - 1.0);
  EXPECT_DOUBLE_EQ(total_lu_flops(3), 18.0);
}

}  // namespace
}  // namespace bwshare::hpl
