// Equivalence of the incremental component-scoped rate refresh with the
// full per-event re-solve (sim::RefreshMode, docs/PERFORMANCE.md): identical
// completion times to 1e-9 relative tolerance on randomized schedules from
// every graph::generator family, with and without fat-tree inner-link
// coupling, plus the component-restricted provider entry points themselves.
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "flowsim/fluid_network.hpp"
#include "graph/generator.hpp"
#include "models/registry.hpp"
#include "sim/engine.hpp"
#include "sim/rate_model.hpp"
#include "sim/schedule.hpp"
#include "topo/fattree.hpp"
#include "util/rng.hpp"

namespace bwshare::sim {
namespace {

constexpr double kTol = 1e-9;

/// One maximally concurrent phase: every communication of the scheme is
/// posted non-blocking, then everyone waits.
AppTrace trace_from_scheme(const graph::CommGraph& scheme) {
  AppTrace trace(scheme.num_nodes());
  for (graph::CommId i = 0; i < scheme.size(); ++i) {
    const auto& c = scheme.comm(i);
    trace.push(c.dst, Event::irecv(c.src, c.bytes));
  }
  for (graph::CommId i = 0; i < scheme.size(); ++i) {
    const auto& c = scheme.comm(i);
    trace.push(c.src, Event::isend(c.dst, c.bytes));
  }
  for (TaskId t = 0; t < trace.num_tasks(); ++t)
    trace.push(t, Event::wait_all());
  return trace;
}

Placement identity_placement(int n) {
  std::vector<topo::NodeId> nodes(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) nodes[static_cast<size_t>(i)] = i;
  return Placement(std::move(nodes));
}

SimResult run_mode(const AppTrace& trace, const topo::ClusterSpec& cluster,
                   const Placement& placement,
                   const flowsim::RateProvider& provider, RefreshMode mode) {
  EngineConfig cfg;
  cfg.refresh = mode;
  return run_simulation(trace, cluster, placement, provider, cfg);
}

void expect_equivalent(const SimResult& full, const SimResult& inc) {
  ASSERT_EQ(full.comms.size(), inc.comms.size());
  const auto rel = [](double a, double b) {
    const double scale = std::max(std::abs(a), std::abs(b));
    return scale == 0.0 ? 0.0 : std::abs(a - b) / scale;
  };
  EXPECT_LE(rel(full.makespan, inc.makespan), kTol);
  for (size_t i = 0; i < full.comms.size(); ++i) {
    EXPECT_LE(rel(full.comms[i].start, inc.comms[i].start), kTol) << i;
    EXPECT_LE(rel(full.comms[i].finish, inc.comms[i].finish), kTol) << i;
  }
  for (size_t t = 0; t < full.tasks.size(); ++t) {
    EXPECT_NEAR(full.tasks[t].send_blocked_seconds,
                inc.tasks[t].send_blocked_seconds,
                kTol * (1.0 + full.tasks[t].send_blocked_seconds))
        << t;
  }
}

/// Full vs incremental vs cross-check on one scheme under one provider.
void check_scheme(const graph::CommGraph& scheme,
                  const flowsim::RateProvider& provider,
                  const topo::NetworkCalibration& cal) {
  const auto trace = trace_from_scheme(scheme);
  ASSERT_NO_THROW(trace.validate());
  const auto cluster =
      topo::ClusterSpec::uniform("equiv", scheme.num_nodes(), 1, cal);
  const auto placement = identity_placement(scheme.num_nodes());
  const auto full =
      run_mode(trace, cluster, placement, provider, RefreshMode::kFull);
  const auto inc =
      run_mode(trace, cluster, placement, provider, RefreshMode::kIncremental);
  expect_equivalent(full, inc);
  // The cross-check mode re-solves the full problem after every refresh and
  // throws on any per-event rate divergence beyond 1e-9 relative.
  EXPECT_NO_THROW(run_mode(trace, cluster, placement, provider,
                           RefreshMode::kCrossCheck));
}

class GeneratedSchemes
    : public ::testing::TestWithParam<std::tuple<const char*, uint64_t>> {};

TEST_P(GeneratedSchemes, FluidProviderMatchesFullRefresh) {
  const auto spec = graph::parse_generator_spec(std::get<0>(GetParam()));
  const auto scheme = graph::generate_scheme(spec, std::get<1>(GetParam()));
  const auto cal = topo::gigabit_ethernet_calibration();
  const flowsim::FluidRateProvider provider(cal);
  check_scheme(scheme, provider, cal);
}

TEST_P(GeneratedSchemes, GigeModelProviderMatchesFullRefresh) {
  const auto spec = graph::parse_generator_spec(std::get<0>(GetParam()));
  const auto scheme = graph::generate_scheme(spec, std::get<1>(GetParam()));
  const auto cal = topo::gigabit_ethernet_calibration();
  const ModelRateProvider provider(models::make_model("gige"), cal);
  check_scheme(scheme, provider, cal);
}

TEST_P(GeneratedSchemes, MyrinetModelProviderMatchesFullRefresh) {
  const auto spec = graph::parse_generator_spec(std::get<0>(GetParam()));
  const auto scheme = graph::generate_scheme(spec, std::get<1>(GetParam()));
  const auto cal = topo::myrinet2000_calibration();
  const ModelRateProvider provider(models::make_model("myrinet"), cal);
  check_scheme(scheme, provider, cal);
}

TEST_P(GeneratedSchemes, FatTreeCoupledFluidMatchesFullRefresh) {
  // An oversubscribed two-level tree: inner links constrain and *couple*
  // conflict components that share no endpoint. The engine must merge them
  // via RateProvider::coupling_keys for the restricted solve to stay exact.
  const auto spec = graph::parse_generator_spec(std::get<0>(GetParam()));
  const auto scheme = graph::generate_scheme(spec, std::get<1>(GetParam()));
  const auto cal = topo::gigabit_ethernet_calibration();
  topo::FatTree::Params params;
  params.num_hosts = scheme.num_nodes();
  params.radix = 4;
  params.host_bandwidth = cal.link_bandwidth;
  params.uplink_factor = 0.5;  // 2:1 oversubscription per edge uplink
  params.num_core = 1;
  const flowsim::FluidRateProvider provider(cal, topo::FatTree(params));
  check_scheme(scheme, provider, cal);
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, GeneratedSchemes,
    ::testing::Combine(::testing::Values("ring:nodes=8",
                                         "hotspot:nodes=9,bytes=2M",
                                         "random:nodes=10,comms=18,spread=1",
                                         "alltoall:nodes=4"),
                       ::testing::Values(1u, 2u, 3u)));

// Staggered schedules: random compute bursts, eager and rendezvous sizes,
// non-blocking patterns and multi-core placements (intra-node comms share
// the per-node shm engine — a coupling the conflict graph alone misses).
class StaggeredFuzz : public ::testing::TestWithParam<int> {};

TEST_P(StaggeredFuzz, BothModesAgreeOnRandomTraces) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7777777 + 5);
  const int tasks = 4 + static_cast<int>(rng.below(5));
  AppTrace trace(tasks);
  const int rounds = 2 + static_cast<int>(rng.below(3));
  for (int round = 0; round < rounds; ++round) {
    for (TaskId src = 0; src < tasks; ++src) {
      if (rng.uniform() < 0.35) continue;
      TaskId dst = static_cast<TaskId>(rng.below(static_cast<uint64_t>(tasks)));
      if (dst == src) dst = (dst + 1) % tasks;
      const double bytes = rng.uniform() < 0.3 ? 1e3 : rng.uniform(2e5, 6e6);
      trace.push(dst, Event::irecv(src, bytes));
      if (rng.uniform() < 0.5) {
        trace.push(src, Event::isend(dst, bytes));
        trace.push(src, Event::wait_all());
      } else {
        trace.push(src, Event::send(dst, bytes));
      }
    }
    for (TaskId t = 0; t < tasks; ++t) {
      if (rng.uniform() < 0.5)
        trace.push(t, Event::compute(rng.uniform(0.0, 0.02)));
      trace.push(t, Event::wait_all());
    }
    if (rng.uniform() < 0.4) trace.push_barrier_all();
  }
  ASSERT_NO_THROW(trace.validate());

  const auto cluster = topo::ClusterSpec::uniform(
      "fuzz", (tasks + 1) / 2, 2, topo::myrinet2000_calibration());
  const auto placement =
      make_placement(SchedulingPolicy::kRandom, cluster, tasks, rng());
  const flowsim::FluidRateProvider provider(cluster.network());
  const auto full =
      run_mode(trace, cluster, placement, provider, RefreshMode::kFull);
  const auto inc =
      run_mode(trace, cluster, placement, provider, RefreshMode::kIncremental);
  expect_equivalent(full, inc);
  EXPECT_NO_THROW(run_mode(trace, cluster, placement, provider,
                           RefreshMode::kCrossCheck));
}

INSTANTIATE_TEST_SUITE_P(Seeds, StaggeredFuzz, ::testing::Range(0, 12));

// --- component-restricted provider entry points ---------------------------

TEST(RateProviderSubset, ModelProviderInducedSolveMatchesProjection) {
  // Two disjoint fans: each is endpoint-closed, so the restricted solve
  // must reproduce the full solve's rates exactly.
  graph::CommGraph g;
  g.add("a", 0, 1, 4e6);
  g.add("b", 0, 2, 4e6);
  g.add("c", 5, 6, 4e6);
  g.add("d", 5, 7, 4e6);
  const auto cal = topo::gigabit_ethernet_calibration();
  const ModelRateProvider provider(models::make_model("gige"), cal);
  const auto all = provider.rates(g);
  const std::vector<graph::CommId> left{0, 1};
  const std::vector<graph::CommId> right{2, 3};
  const auto left_rates = provider.rates(g, left);
  const auto right_rates = provider.rates(g, right);
  ASSERT_EQ(left_rates.size(), 2u);
  ASSERT_EQ(right_rates.size(), 2u);
  EXPECT_DOUBLE_EQ(left_rates[0], all[0]);
  EXPECT_DOUBLE_EQ(left_rates[1], all[1]);
  EXPECT_DOUBLE_EQ(right_rates[0], all[2]);
  EXPECT_DOUBLE_EQ(right_rates[1], all[3]);
}

TEST(RateProviderSubset, NonClosedSubsetsAreExpandedToClosure) {
  // A subset that is not endpoint-closed ({a} from the fan {a, b} sharing
  // source 0) must still yield the full solve's rates: the providers expand
  // to the coupling closure before solving, never solve `a` in isolation.
  graph::CommGraph g;
  g.add("a", 0, 1, 4e6);
  g.add("b", 0, 2, 4e6);
  const auto cal = topo::gigabit_ethernet_calibration();
  const std::vector<graph::CommId> lone{0};

  const flowsim::FluidRateProvider fluid(cal);
  EXPECT_DOUBLE_EQ(fluid.rates(g, lone)[0], fluid.rates(g)[0]);
  // Sanity: the shared TX link halves the rate, so an isolated solve of
  // comm a alone would have returned something strictly larger.
  graph::CommGraph solo;
  solo.add("a", 0, 1, 4e6);
  EXPECT_LT(fluid.rates(g)[0], fluid.rates(solo)[0]);

  const ModelRateProvider gige(models::make_model("gige"), cal);
  EXPECT_DOUBLE_EQ(gige.rates(g, lone)[0], gige.rates(g)[0]);
  EXPECT_LT(gige.rates(g)[0], gige.rates(solo)[0]);
}

TEST(RateProviderSubset, FluidMergesTopologyCoupledComponents) {
  // Hosts 0->4 and 1->5 share no endpoint but cross the same oversubscribed
  // edge-to-core uplink: a subset holding only one of them must be merged
  // with the other before solving, never solved in isolation.
  const auto cal = topo::gigabit_ethernet_calibration();
  topo::FatTree::Params params;
  params.num_hosts = 8;
  params.radix = 4;
  params.host_bandwidth = cal.link_bandwidth;
  params.uplink_factor = 0.5;
  params.num_core = 1;
  const flowsim::FluidRateProvider provider(cal, topo::FatTree(params));

  graph::CommGraph g;
  g.add("a", 0, 4, 4e6);
  g.add("b", 1, 5, 4e6);
  const auto all = provider.rates(g);
  const std::vector<graph::CommId> lone{0};
  const auto restricted = provider.rates(g, lone);
  ASSERT_EQ(restricted.size(), 1u);
  EXPECT_DOUBLE_EQ(restricted[0], all[0]);
  // Sanity: the shared uplink really constrains (each flow gets half of the
  // 0.5x-capacity trunk, i.e. less than its solo single-stream rate).
  graph::CommGraph solo;
  solo.add("a", 0, 4, 4e6);
  EXPECT_LT(all[0], provider.rates(solo)[0]);
}

TEST(RateProviderSubset, FluidCouplingKeysListInnerLinksOnly) {
  const auto cal = topo::gigabit_ethernet_calibration();
  topo::FatTree::Params params;
  params.num_hosts = 8;
  params.radix = 4;
  params.host_bandwidth = cal.link_bandwidth;
  params.uplink_factor = 0.5;
  params.num_core = 1;
  const topo::FatTree tree(params);
  const flowsim::FluidRateProvider coupled(cal, tree);
  // Cross-edge route: host uplink + edge-up + edge-down + host downlink;
  // only the two inner hops are coupling keys.
  EXPECT_EQ(coupled.coupling_keys(0, 4).size(), 2u);
  // Same-edge route never leaves the edge switch: no inner links.
  EXPECT_TRUE(coupled.coupling_keys(0, 1).empty());
  // Intra-node traffic bypasses the NIC entirely.
  EXPECT_TRUE(coupled.coupling_keys(3, 3).empty());
  // Without a topology there is nothing beyond the endpoint hosts.
  const flowsim::FluidRateProvider flat(cal);
  EXPECT_TRUE(flat.coupling_keys(0, 4).empty());
}

TEST(RateProviderSubset, BaseDefaultProjectsFullSolve) {
  // A provider that only implements the one-argument rates() gets the safe
  // full-solve-and-project default for the restricted entry point.
  class ConstantProvider final : public flowsim::RateProvider {
   public:
    using flowsim::RateProvider::rates;  // keep the restricted overload
    [[nodiscard]] std::vector<double> rates(
        const graph::CommGraph& active) const override {
      std::vector<double> out;
      for (graph::CommId i = 0; i < active.size(); ++i)
        out.push_back(100.0 + static_cast<double>(i));
      return out;
    }
  };
  graph::CommGraph g;
  g.add("a", 0, 1, 1.0);
  g.add("b", 2, 3, 1.0);
  g.add("c", 4, 5, 1.0);
  const ConstantProvider provider;
  const std::vector<graph::CommId> subset{2, 0};
  const auto rates = provider.rates(g, subset);
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_DOUBLE_EQ(rates[0], 102.0);
  EXPECT_DOUBLE_EQ(rates[1], 100.0);
}

}  // namespace
}  // namespace bwshare::sim
