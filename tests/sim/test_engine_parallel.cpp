// Parallel vs serial component solving (sim::SolveMode): a replay under
// SolveMode::kParallel must be *bit-identical* to kSerial at any thread
// count — the per-component compute phases are read-only and disjoint, and
// the commit phase is sequential in component-id order, so no arithmetic
// may depend on scheduling. Exercised over the shared churn fuzz (heavy
// same-time batching via barriers and fan-ins), every generator family
// under the fluid, gige-model and myrinet-model providers, fat-tree
// coupling, and RefreshMode::kCrossCheck's parallel oracle (which re-solves
// every pool-solved component serially and throws on any bit of
// divergence). This suite is the TSan CI target for the engine: any data
// race between concurrent provider solves surfaces here.
#include <cstdint>
#include <tuple>

#include <gtest/gtest.h>

#include "engine_fuzz_util.hpp"
#include "flowsim/fluid_network.hpp"
#include "graph/generator.hpp"
#include "models/registry.hpp"
#include "sim/engine.hpp"
#include "sim/rate_model.hpp"
#include "sim/schedule.hpp"
#include "topo/cluster.hpp"
#include "topo/fattree.hpp"
#include "util/rng.hpp"
#include "util/threadpool.hpp"

namespace bwshare::sim {
namespace {

SimResult run_solve(const AppTrace& trace, const topo::ClusterSpec& cluster,
                    const Placement& placement,
                    const flowsim::RateProvider& provider, SolveMode solve,
                    util::ThreadPool* pool, RefreshMode refresh,
                    double barrier_cost = 0.0) {
  EngineConfig cfg;
  cfg.refresh = refresh;
  cfg.solve = solve;
  cfg.solve_pool = pool;
  cfg.barrier_cost = barrier_cost;
  return run_simulation(trace, cluster, placement, provider, cfg);
}

/// The determinism contract, checked as the ISSUE states it: serial once,
/// then parallel on injected pools of 1, 2 and 8 workers — every replay
/// bit-identical — then kCrossCheck in parallel, whose oracle re-solves
/// each pool-solved component serially and throws on any divergence in
/// rates, event order or queue keys.
void check_parallel_matches_serial(const AppTrace& trace,
                                   const topo::ClusterSpec& cluster,
                                   const Placement& placement,
                                   const flowsim::RateProvider& provider,
                                   double barrier_cost = 0.0) {
  const auto serial =
      run_solve(trace, cluster, placement, provider, SolveMode::kSerial,
                nullptr, RefreshMode::kIncremental, barrier_cost);
  for (const int threads : {1, 2, 8}) {
    util::ThreadPool pool(threads);
    const auto parallel =
        run_solve(trace, cluster, placement, provider, SolveMode::kParallel,
                  &pool, RefreshMode::kIncremental, barrier_cost);
    expect_bit_identical(serial, parallel);
  }
  util::ThreadPool pool(2);
  SimResult crosschecked;
  EXPECT_NO_THROW(crosschecked = run_solve(
                      trace, cluster, placement, provider,
                      SolveMode::kParallel, &pool, RefreshMode::kCrossCheck,
                      barrier_cost));
  expect_bit_identical(serial, crosschecked);
}

// --- staggered churn fuzz --------------------------------------------------

class ParallelChurnFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ParallelChurnFuzz, ParallelSolveIsBitIdenticalToSerial) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 500009 + 13);
  const int tasks = 5 + static_cast<int>(rng.below(5));
  const auto trace = churn_trace(static_cast<uint64_t>(GetParam()), tasks);
  ASSERT_NO_THROW(trace.validate());
  // A positive barrier cost on odd seeds overshoots in-flight predictions,
  // exercising the pre-barrier-cost flush point.
  const double barrier_cost = GetParam() % 2 == 0 ? 0.0 : 5e-3;
  const auto cluster = topo::ClusterSpec::uniform(
      "parfuzz", (tasks + 1) / 2, 2, topo::gigabit_ethernet_calibration());
  const auto placement =
      make_placement(SchedulingPolicy::kRandom, cluster, tasks, rng());
  const flowsim::FluidRateProvider provider(cluster.network());
  check_parallel_matches_serial(trace, cluster, placement, provider,
                                barrier_cost);
}

TEST_P(ParallelChurnFuzz, ParallelSolveMatchesSerialUnderFatTreeCoupling) {
  // Oversubscribed inner links merge endpoint-disjoint transfers into one
  // component — the batch a flush fans out then mixes one big coupled
  // component with small independent ones (the worst case for balancing,
  // and for any unsoundness in the disjointness argument).
  const int tasks = 8;
  const auto trace =
      churn_trace(static_cast<uint64_t>(GetParam()) + 900, tasks);
  ASSERT_NO_THROW(trace.validate());
  const auto cal = topo::gigabit_ethernet_calibration();
  const auto cluster = topo::ClusterSpec::uniform("partree", tasks, 1, cal);
  topo::FatTree::Params params;
  params.num_hosts = tasks;
  params.radix = 4;
  params.host_bandwidth = cal.link_bandwidth;
  params.uplink_factor = 0.5;
  params.num_core = 1;
  const flowsim::FluidRateProvider provider(cal, topo::FatTree(params));
  const auto placement =
      make_placement(SchedulingPolicy::kRoundRobinNode, cluster, tasks);
  check_parallel_matches_serial(trace, cluster, placement, provider);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelChurnFuzz, ::testing::Range(0, 8));

// --- generator families x providers ----------------------------------------

// trace_from_scheme / identity_placement live in engine_fuzz_util.hpp,
// shared with the churn-scenario suite.

void check_scheme_parallel(const graph::CommGraph& scheme,
                           const flowsim::RateProvider& provider,
                           const topo::NetworkCalibration& cal) {
  const auto trace = trace_from_scheme(scheme);
  ASSERT_NO_THROW(trace.validate());
  const auto cluster =
      topo::ClusterSpec::uniform("parequiv", scheme.num_nodes(), 1, cal);
  check_parallel_matches_serial(trace, cluster,
                                identity_placement(scheme.num_nodes()),
                                provider);
}

class ParallelGeneratedSchemes
    : public ::testing::TestWithParam<std::tuple<const char*, uint64_t>> {};

TEST_P(ParallelGeneratedSchemes, FluidProviderMatchesSerial) {
  const auto spec = graph::parse_generator_spec(std::get<0>(GetParam()));
  const auto scheme = graph::generate_scheme(spec, std::get<1>(GetParam()));
  const auto cal = topo::gigabit_ethernet_calibration();
  const flowsim::FluidRateProvider provider(cal);
  check_scheme_parallel(scheme, provider, cal);
}

TEST_P(ParallelGeneratedSchemes, GigeModelProviderMatchesSerial) {
  const auto spec = graph::parse_generator_spec(std::get<0>(GetParam()));
  const auto scheme = graph::generate_scheme(spec, std::get<1>(GetParam()));
  const auto cal = topo::gigabit_ethernet_calibration();
  const ModelRateProvider provider(models::make_model("gige"), cal);
  check_scheme_parallel(scheme, provider, cal);
}

TEST_P(ParallelGeneratedSchemes, MyrinetModelProviderMatchesSerial) {
  const auto spec = graph::parse_generator_spec(std::get<0>(GetParam()));
  const auto scheme = graph::generate_scheme(spec, std::get<1>(GetParam()));
  const auto cal = topo::myrinet2000_calibration();
  const ModelRateProvider provider(models::make_model("myrinet"), cal);
  check_scheme_parallel(scheme, provider, cal);
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, ParallelGeneratedSchemes,
    ::testing::Combine(::testing::Values("ring:nodes=8",
                                         "hotspot:nodes=9,bytes=2M",
                                         "random:nodes=10,comms=18,spread=1",
                                         "alltoall:nodes=4"),
                       ::testing::Values(1u, 2u)));

// --- pool plumbing ---------------------------------------------------------

TEST(ParallelSolvePool, SharedInjectedPoolServesConsecutiveReplays) {
  // One process-wide pool across many simulations is the intended sweep
  // setup; each replay's flushes scope their tasks with a TaskGroup, so
  // consecutive (or interleaved) engines never wait on each other's work.
  const auto trace = churn_trace(4242, 7);
  const auto cluster = topo::ClusterSpec::uniform(
      "parpool", 4, 2, topo::myrinet2000_calibration());
  const auto placement =
      make_placement(SchedulingPolicy::kRoundRobinNode, cluster, 7);
  const flowsim::FluidRateProvider provider(cluster.network());
  const auto serial =
      run_solve(trace, cluster, placement, provider, SolveMode::kSerial,
                nullptr, RefreshMode::kIncremental);
  util::ThreadPool pool(3);
  for (int repeat = 0; repeat < 3; ++repeat) {
    const auto parallel =
        run_solve(trace, cluster, placement, provider, SolveMode::kParallel,
                  &pool, RefreshMode::kIncremental);
    expect_bit_identical(serial, parallel);
  }
}

TEST(ParallelSolvePool, LazyPrivatePoolHonorsSolveThreads) {
  // Without an injected pool the engine creates its own, sized by
  // solve_threads — the standalone-replay convenience path.
  const auto trace = churn_trace(7, 6);
  const auto cluster = topo::ClusterSpec::uniform(
      "parlazy", 3, 2, topo::gigabit_ethernet_calibration());
  const auto placement =
      make_placement(SchedulingPolicy::kRoundRobinNode, cluster, 6);
  const flowsim::FluidRateProvider provider(cluster.network());
  const auto serial =
      run_solve(trace, cluster, placement, provider, SolveMode::kSerial,
                nullptr, RefreshMode::kIncremental);
  EngineConfig cfg;
  cfg.refresh = RefreshMode::kIncremental;
  cfg.solve = SolveMode::kParallel;
  cfg.solve_threads = 2;
  const auto parallel =
      run_simulation(trace, cluster, placement, provider, cfg);
  expect_bit_identical(serial, parallel);
}

}  // namespace
}  // namespace bwshare::sim
