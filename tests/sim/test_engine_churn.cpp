// Fault-injection determinism suite for dynamic-cluster scenarios
// (sim/scenario.hpp): node join/leave/fail churn and background
// cross-traffic scripted onto a replay. The scenario machinery must not
// disturb any of the engine's equivalence contracts — under a scripted
// trace, RefreshMode::kIncremental stays bit-identical to kFull,
// QueueMode::kScan to kHeap, SolveMode::kParallel to kSerial at 1/2/8
// workers, and a RefreshMode::kCrossCheck replay (which re-solves every
// refresh fully and re-derives every event choice by linear scan) finishes
// without throwing. Fuzzed over the shared churn workload and over every
// generator family under the fluid, gige-model and myrinet-model
// providers, plus targeted semantic tests for the fail/leave/join and
// background-admission rules. Runs under the TSan CI job next to
// test_engine_parallel.cpp.
#include <cstdint>
#include <tuple>

#include <gtest/gtest.h>

#include "engine_fuzz_util.hpp"
#include "flowsim/fluid_network.hpp"
#include "graph/generator.hpp"
#include "models/registry.hpp"
#include "sim/engine.hpp"
#include "sim/rate_model.hpp"
#include "sim/schedule.hpp"
#include "topo/cluster.hpp"
#include "topo/fattree.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/threadpool.hpp"

namespace bwshare::sim {
namespace {

SimResult run_scenario(const AppTrace& trace, const topo::ClusterSpec& cluster,
                       const Placement& placement,
                       const flowsim::RateProvider& provider,
                       const Scenario& scenario, RefreshMode refresh,
                       QueueMode queue = QueueMode::kHeap,
                       SolveMode solve = SolveMode::kSerial,
                       util::ThreadPool* pool = nullptr,
                       double barrier_cost = 0.0) {
  EngineConfig cfg;
  cfg.refresh = refresh;
  cfg.queue = queue;
  cfg.solve = solve;
  cfg.solve_pool = pool;
  cfg.barrier_cost = barrier_cost;
  return run_simulation(trace, cluster, placement, provider, scenario, cfg);
}

/// The full determinism cross-product under one scripted scenario:
/// kFull/kHeap/kSerial is the reference; incremental (heap and scan),
/// parallel pools of 1, 2 and 8, and a kCrossCheck replay per pool size
/// must all reproduce it bit for bit.
void check_churn_determinism(const AppTrace& trace,
                             const topo::ClusterSpec& cluster,
                             const Placement& placement,
                             const flowsim::RateProvider& provider,
                             const Scenario& scenario,
                             double barrier_cost = 0.0) {
  const auto full =
      run_scenario(trace, cluster, placement, provider, scenario,
                   RefreshMode::kFull, QueueMode::kHeap, SolveMode::kSerial,
                   nullptr, barrier_cost);
  const auto incremental =
      run_scenario(trace, cluster, placement, provider, scenario,
                   RefreshMode::kIncremental, QueueMode::kHeap,
                   SolveMode::kSerial, nullptr, barrier_cost);
  expect_bit_identical(full, incremental);
  const auto scan =
      run_scenario(trace, cluster, placement, provider, scenario,
                   RefreshMode::kIncremental, QueueMode::kScan,
                   SolveMode::kSerial, nullptr, barrier_cost);
  expect_bit_identical(full, scan);
  for (const int threads : {1, 2, 8}) {
    util::ThreadPool pool(threads);
    const auto parallel =
        run_scenario(trace, cluster, placement, provider, scenario,
                     RefreshMode::kIncremental, QueueMode::kHeap,
                     SolveMode::kParallel, &pool, barrier_cost);
    expect_bit_identical(full, parallel);
    SimResult crosschecked;
    EXPECT_NO_THROW(
        crosschecked = run_scenario(trace, cluster, placement, provider,
                                    scenario, RefreshMode::kCrossCheck,
                                    QueueMode::kHeap, SolveMode::kParallel,
                                    &pool, barrier_cost));
    expect_bit_identical(full, crosschecked);
  }
}

// --- scripted scenario fuzz ------------------------------------------------

class ParallelChurnScenarioFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ParallelChurnScenarioFuzz, AllModesBitIdenticalUnderChurn) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 700001 + 29);
  const int tasks = 5 + static_cast<int>(rng.below(5));
  const auto trace = churn_trace(static_cast<uint64_t>(GetParam()), tasks);
  ASSERT_NO_THROW(trace.validate());
  const int nodes = (tasks + 1) / 2;
  const auto cluster = topo::ClusterSpec::uniform(
      "churnfuzz", nodes, 2, topo::gigabit_ethernet_calibration());
  const auto placement =
      make_placement(SchedulingPolicy::kRandom, cluster, tasks, rng());
  const flowsim::FluidRateProvider provider(cluster.network());
  const auto scenario =
      churn_scenario(static_cast<uint64_t>(GetParam()) + 17, nodes);
  ASSERT_NO_THROW(scenario.validate(tasks, nodes));
  // A positive barrier cost on odd seeds overshoots in-flight predictions,
  // stacking the pre-barrier-cost flush point on top of the script events.
  const double barrier_cost = GetParam() % 2 == 0 ? 0.0 : 5e-3;
  check_churn_determinism(trace, cluster, placement, provider, scenario,
                          barrier_cost);
}

TEST_P(ParallelChurnScenarioFuzz, FatTreeCouplingStaysDeterministic) {
  // Oversubscribed inner links merge endpoint-disjoint transfers — aborts
  // and background injections then dirty a large coupled component plus
  // small independent ones, the worst case for the flush batching.
  const int tasks = 8;
  const auto trace =
      churn_trace(static_cast<uint64_t>(GetParam()) + 1300, tasks);
  ASSERT_NO_THROW(trace.validate());
  const auto cal = topo::gigabit_ethernet_calibration();
  const auto cluster = topo::ClusterSpec::uniform("churntree", tasks, 1, cal);
  topo::FatTree::Params params;
  params.num_hosts = tasks;
  params.radix = 4;
  params.host_bandwidth = cal.link_bandwidth;
  params.uplink_factor = 0.5;
  params.num_core = 1;
  const flowsim::FluidRateProvider provider(cal, topo::FatTree(params));
  const auto placement =
      make_placement(SchedulingPolicy::kRoundRobinNode, cluster, tasks);
  const auto scenario =
      churn_scenario(static_cast<uint64_t>(GetParam()) + 71, tasks);
  check_churn_determinism(trace, cluster, placement, provider, scenario);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelChurnScenarioFuzz,
                         ::testing::Range(0, 6));

// --- generator families x providers under churn ----------------------------

void check_scheme_churn(const graph::CommGraph& scheme,
                        const flowsim::RateProvider& provider,
                        const topo::NetworkCalibration& cal, uint64_t seed) {
  const auto trace = trace_from_scheme(scheme);
  ASSERT_NO_THROW(trace.validate());
  const auto cluster =
      topo::ClusterSpec::uniform("churnequiv", scheme.num_nodes(), 1, cal);
  const auto scenario = churn_scenario(seed + 5, scheme.num_nodes());
  check_churn_determinism(trace, cluster,
                          identity_placement(scheme.num_nodes()), provider,
                          scenario);
}

class ParallelChurnGeneratedSchemes
    : public ::testing::TestWithParam<std::tuple<const char*, uint64_t>> {};

TEST_P(ParallelChurnGeneratedSchemes, FluidProviderDeterministicUnderChurn) {
  const auto spec = graph::parse_generator_spec(std::get<0>(GetParam()));
  const auto scheme = graph::generate_scheme(spec, std::get<1>(GetParam()));
  const auto cal = topo::gigabit_ethernet_calibration();
  const flowsim::FluidRateProvider provider(cal);
  check_scheme_churn(scheme, provider, cal, std::get<1>(GetParam()));
}

TEST_P(ParallelChurnGeneratedSchemes,
       GigeModelProviderDeterministicUnderChurn) {
  const auto spec = graph::parse_generator_spec(std::get<0>(GetParam()));
  const auto scheme = graph::generate_scheme(spec, std::get<1>(GetParam()));
  const auto cal = topo::gigabit_ethernet_calibration();
  const ModelRateProvider provider(models::make_model("gige"), cal);
  check_scheme_churn(scheme, provider, cal, std::get<1>(GetParam()));
}

TEST_P(ParallelChurnGeneratedSchemes,
       MyrinetModelProviderDeterministicUnderChurn) {
  const auto spec = graph::parse_generator_spec(std::get<0>(GetParam()));
  const auto scheme = graph::generate_scheme(spec, std::get<1>(GetParam()));
  const auto cal = topo::myrinet2000_calibration();
  const ModelRateProvider provider(models::make_model("myrinet"), cal);
  check_scheme_churn(scheme, provider, cal, std::get<1>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, ParallelChurnGeneratedSchemes,
    ::testing::Combine(::testing::Values("ring:nodes=8",
                                         "hotspot:nodes=9,bytes=2M",
                                         "random:nodes=10,comms=18,spread=1",
                                         "alltoall:nodes=4"),
                       ::testing::Values(1u, 2u)));

// --- fail / leave / join semantics -----------------------------------------

AppTrace one_rendezvous(double bytes) {
  AppTrace trace(2);
  trace.push(1, Event::irecv(0, bytes));
  trace.push(0, Event::isend(1, bytes));
  trace.push(0, Event::wait_all());
  trace.push(1, Event::wait_all());
  return trace;
}

struct Fixture {
  topo::ClusterSpec cluster = topo::ClusterSpec::uniform(
      "churnsem", 2, 1, topo::gigabit_ethernet_calibration());
  Placement placement = identity_placement(2);
  flowsim::FluidRateProvider provider{cluster.network()};
};

TEST(EngineChurn, FailAbortsInFlightTransfersAtTheFailureInstant) {
  Fixture f;
  const auto trace = one_rendezvous(4e7);
  const auto base = run_simulation(trace, f.cluster, f.placement, f.provider);
  ASSERT_GT(base.makespan, 0.01);

  Scenario scenario;
  scenario.churn.push_back({0.01, graph::ChurnKind::kFail, 1});
  const auto failed = run_simulation(trace, f.cluster, f.placement,
                                     f.provider, scenario);
  EXPECT_EQ(failed.aborted_comms, 1u);
  ASSERT_EQ(failed.comms.size(), 1u);
  EXPECT_TRUE(failed.comms[0].aborted);
  // The abort happens exactly when the script fires, and both blocked tasks
  // unblock there — the replay ends early instead of deadlocking.
  EXPECT_DOUBLE_EQ(failed.comms[0].finish, 0.01);
  EXPECT_LT(failed.makespan, base.makespan);
  // Aborted records carry a partial penalty and are excluded from the mean.
  EXPECT_DOUBLE_EQ(failed.average_penalty(), 1.0);
}

TEST(EngineChurn, LeaveDrainsInFlightTransfersUntouched) {
  // kLeave marks the node down for background admission but lets every
  // in-flight and future measured transfer drain — bit-identical replay.
  Fixture f;
  const auto trace = one_rendezvous(4e7);
  const auto base =
      run_simulation(trace, f.cluster, f.placement, f.provider);
  Scenario scenario;
  scenario.churn.push_back({0.01, graph::ChurnKind::kLeave, 1});
  const auto left = run_simulation(trace, f.cluster, f.placement, f.provider,
                                   scenario);
  EXPECT_EQ(left.aborted_comms, 0u);
  expect_bit_identical(base, left);
}

TEST(EngineChurn, MeasuredJobKeepsUsingAFailedNode) {
  // Transient-fault model: failures abort what was in flight, but the
  // measured job's later transfers still use the node, so replays always
  // terminate.
  Fixture f;
  AppTrace trace(2);
  trace.push(0, Event::compute(0.05));
  trace.push(1, Event::irecv(0, 1e6));
  trace.push(0, Event::isend(1, 1e6));
  trace.push(0, Event::wait_all());
  trace.push(1, Event::wait_all());
  Scenario scenario;
  scenario.churn.push_back({0.01, graph::ChurnKind::kFail, 1});
  const auto result = run_simulation(trace, f.cluster, f.placement,
                                     f.provider, scenario);
  EXPECT_EQ(result.aborted_comms, 0u);
  ASSERT_EQ(result.comms.size(), 1u);
  EXPECT_FALSE(result.comms[0].aborted);
  EXPECT_GT(result.makespan, 0.05);
}

// --- background cross-traffic ----------------------------------------------

TEST(EngineChurn, BackgroundFlowContendsButIsExcludedFromThePenaltyMean) {
  Fixture f;
  const auto trace = one_rendezvous(2e7);
  const auto base =
      run_simulation(trace, f.cluster, f.placement, f.provider);
  Scenario scenario;
  scenario.background.push_back({0.0, 0, 1, 2e7});
  const auto loaded = run_simulation(trace, f.cluster, f.placement,
                                     f.provider, scenario);
  EXPECT_EQ(loaded.background_comms, 1u);
  EXPECT_EQ(loaded.background_skipped, 0u);
  EXPECT_GT(loaded.makespan, base.makespan);
  ASSERT_EQ(loaded.comms.size(), 2u);
  size_t bg = loaded.comms[0].background ? 0 : 1;
  EXPECT_TRUE(loaded.comms[bg].background);
  EXPECT_EQ(loaded.comms[bg].src_task, -1);
  EXPECT_EQ(loaded.comms[bg].dst_task, -1);
  // average_penalty reflects only the measured record, which was slowed.
  EXPECT_DOUBLE_EQ(loaded.average_penalty(),
                   loaded.comms[1 - bg].penalty);
  EXPECT_GT(loaded.average_penalty(), 1.0);
}

TEST(EngineChurn, DownNodesRefuseBackgroundAdmission) {
  Fixture f;
  const auto trace = one_rendezvous(2e7);
  const auto base =
      run_simulation(trace, f.cluster, f.placement, f.provider);
  Scenario scenario;
  scenario.down_at_start.push_back(1);
  scenario.background.push_back({0.0, 0, 1, 2e7});
  const auto gated = run_simulation(trace, f.cluster, f.placement,
                                    f.provider, scenario);
  EXPECT_EQ(gated.background_comms, 0u);
  EXPECT_EQ(gated.background_skipped, 1u);
  // The skipped flow never entered the rate structure.
  EXPECT_DOUBLE_EQ(gated.makespan, base.makespan);
}

TEST(EngineChurn, JoinReopensBackgroundAdmission) {
  Fixture f;
  const auto trace = one_rendezvous(2e7);
  Scenario scenario;
  scenario.down_at_start.push_back(1);
  scenario.churn.push_back({0.005, graph::ChurnKind::kJoin, 1});
  scenario.background.push_back({0.01, 0, 1, 2e7});
  const auto result = run_simulation(trace, f.cluster, f.placement,
                                     f.provider, scenario);
  EXPECT_EQ(result.background_comms, 1u);
  EXPECT_EQ(result.background_skipped, 0u);
}

TEST(EngineChurn, ScriptEventsBeyondTheMakespanNeverFire) {
  Fixture f;
  const auto trace = one_rendezvous(2e7);
  const auto base =
      run_simulation(trace, f.cluster, f.placement, f.provider);
  Scenario scenario;
  scenario.background.push_back({base.makespan + 10.0, 0, 1, 2e7});
  scenario.churn.push_back(
      {base.makespan + 20.0, graph::ChurnKind::kFail, 1});
  const auto result = run_simulation(trace, f.cluster, f.placement,
                                     f.provider, scenario);
  EXPECT_EQ(result.background_comms, 0u);
  EXPECT_EQ(result.aborted_comms, 0u);
  expect_bit_identical(base, result);
}

// --- validation ------------------------------------------------------------

TEST(EngineChurn, ScenarioValidationRejectsBadScripts) {
  Fixture f;
  const auto trace = one_rendezvous(1e6);
  {
    Scenario s;
    s.churn.push_back({0.1, graph::ChurnKind::kFail, 7});  // node out of range
    EXPECT_THROW((void)run_simulation(trace, f.cluster, f.placement,
                                      f.provider, s),
                 Error);
  }
  {
    Scenario s;
    s.background.push_back({0.1, 0, 0, 1e6});  // self-flow
    EXPECT_THROW((void)run_simulation(trace, f.cluster, f.placement,
                                      f.provider, s),
                 Error);
  }
  {
    Scenario s;
    s.churn.push_back({-1.0, graph::ChurnKind::kJoin, 0});  // negative time
    EXPECT_THROW((void)run_simulation(trace, f.cluster, f.placement,
                                      f.provider, s),
                 Error);
  }
  {
    Scenario s;
    s.job_of = {0};  // wrong size for a 2-task trace
    EXPECT_THROW((void)run_simulation(trace, f.cluster, f.placement,
                                      f.provider, s),
                 Error);
  }
}

TEST(EngineChurn, EmptyScenarioMatchesTheLegacyOverload) {
  Fixture f;
  const auto trace = churn_trace(99, 6);
  const auto cluster = topo::ClusterSpec::uniform(
      "churnlegacy", 3, 2, topo::gigabit_ethernet_calibration());
  const auto placement =
      make_placement(SchedulingPolicy::kRoundRobinNode, cluster, 6);
  const flowsim::FluidRateProvider provider(cluster.network());
  const auto legacy = run_simulation(trace, cluster, placement, provider);
  const auto scripted =
      run_simulation(trace, cluster, placement, provider, Scenario{});
  expect_bit_identical(legacy, scripted);
}

}  // namespace
}  // namespace bwshare::sim
