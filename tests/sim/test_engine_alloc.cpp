// Steady-state allocation freedom of the incremental event loop
// (docs/PERFORMANCE.md "Memory layout").
//
// The engine's warm replay must never call the global allocator: transfer
// slots, components, match queues, staging buffers and the per-thread solve
// scratch (graph + util::Arena) are all reused storage. The test measures it
// the way the bench's alloc_per_event column does — the allocation-count
// delta between an R-round replay and a 1-round twin of the same schedule,
// both run after a warm-up replay so thread-local scratch is built. Setup
// costs (engine state, reserves) are identical for both and cancel; any
// remaining delta is a per-event allocation on the steady path, and the
// assertion is exact: zero.
#include <cstdint>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "flowsim/fluid_network.hpp"
#include "sim/engine.hpp"
#include "sim/schedule.hpp"
#include "topo/cluster.hpp"
#include "util/alloc_counter.hpp"
#include "util/rng.hpp"

namespace bwshare::sim {
namespace {

// Per round: a seeded random perfect matching of rendezvous messages,
// rounds separated by barriers — the bench scenario, shrunk. Fresh pairings
// every round exercise slot/component/match-queue reuse across rounds.
AppTrace matching_trace(int nodes, int rounds, uint64_t seed) {
  AppTrace trace(nodes);
  Rng rng(seed);
  std::vector<int> order(static_cast<size_t>(nodes));
  std::iota(order.begin(), order.end(), 0);
  for (int r = 0; r < rounds; ++r) {
    for (int i = nodes - 1; i > 0; --i) {
      const int j = static_cast<int>(rng.below(static_cast<uint64_t>(i + 1)));
      std::swap(order[static_cast<size_t>(i)], order[static_cast<size_t>(j)]);
    }
    for (int p = 0; p + 1 < nodes; p += 2) {
      const TaskId src = order[static_cast<size_t>(p)];
      const TaskId dst = order[static_cast<size_t>(p + 1)];
      trace.push(src, Event::send(dst, 4e6));
      trace.push(dst, Event::recv(src, 4e6));
    }
    trace.push_barrier_all();
  }
  return trace;
}

class EngineAllocTest : public ::testing::TestWithParam<QueueMode> {};

TEST_P(EngineAllocTest, WarmReplayMakesZeroSteadyStateAllocations) {
  constexpr int kNodes = 32;
  constexpr int kRounds = 6;
  const auto cal = topo::gigabit_ethernet_calibration();
  const auto cluster = topo::ClusterSpec::uniform("alloc", kNodes, 1, cal);
  const auto placement = make_placement(SchedulingPolicy::kRoundRobinNode,
                                        cluster, kNodes);
  const flowsim::FluidRateProvider provider(cal);
  const Scenario scenario;
  EngineConfig cfg;
  cfg.refresh = RefreshMode::kIncremental;
  cfg.queue = GetParam();

  const auto trace1 = matching_trace(kNodes, 1, /*seed=*/7);
  const auto trace = matching_trace(kNodes, kRounds, /*seed=*/7);

  const auto count_replay = [&](const AppTrace& t, int rounds) {
    const uint64_t before = util::alloc_count();
    const SimResult result =
        run_simulation(t, cluster, placement, provider, scenario, cfg);
    const uint64_t allocs = util::alloc_count() - before;
    EXPECT_EQ(result.comms.size(),
              static_cast<size_t>(kNodes / 2) * static_cast<size_t>(rounds));
    return allocs;
  };

  // Warm-up: builds the thread-local solve scratch and arena.
  (void)run_simulation(trace1, cluster, placement, provider, scenario, cfg);

  const uint64_t one_round = count_replay(trace1, 1);
  const uint64_t many_rounds = count_replay(trace, kRounds);
  EXPECT_EQ(many_rounds, one_round)
      << "rounds 2.." << kRounds << " of a warm replay allocated "
      << (many_rounds - one_round) << " times; the steady-state event loop "
      << "must not touch the global allocator";
}

INSTANTIATE_TEST_SUITE_P(Queues, EngineAllocTest,
                         ::testing::Values(QueueMode::kHeap, QueueMode::kScan),
                         [](const auto& info) {
                           return info.param == QueueMode::kHeap ? "Heap"
                                                                 : "Scan";
                         });

}  // namespace
}  // namespace bwshare::sim
