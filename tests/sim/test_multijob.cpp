// Multi-job co-scheduling (sim/multijob.hpp): N independently traced jobs
// merged onto one cluster with job-scoped barriers, plus per-job
// interference accounting against an identical-scenario alone replay.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine_fuzz_util.hpp"
#include "flowsim/fluid_network.hpp"
#include "sim/engine.hpp"
#include "sim/multijob.hpp"
#include "sim/report.hpp"
#include "sim/schedule.hpp"
#include "topo/cluster.hpp"
#include "util/error.hpp"

namespace bwshare::sim {
namespace {

AppTrace pair_exchange(double bytes) {
  AppTrace trace(2);
  trace.push(1, Event::irecv(0, bytes));
  trace.push(0, Event::isend(1, bytes));
  trace.push(0, Event::wait_all());
  trace.push(1, Event::wait_all());
  return trace;
}

Placement place_on(std::vector<topo::NodeId> nodes) {
  return Placement(std::move(nodes));
}

TEST(MultiJob, DisjointJobsDoNotInterfere) {
  const auto cluster = topo::ClusterSpec::uniform(
      "mj-disjoint", 4, 1, topo::gigabit_ethernet_calibration());
  const flowsim::FluidRateProvider provider(cluster.network());
  std::vector<JobSpec> jobs;
  jobs.push_back({"left", pair_exchange(2e7), place_on({0, 1})});
  jobs.push_back({"right", pair_exchange(2e7), place_on({2, 3})});
  const auto result = run_multi_job(jobs, cluster, provider);
  ASSERT_EQ(result.jobs.size(), 2u);
  ASSERT_EQ(result.job_of.size(), 4u);
  EXPECT_EQ(result.job_of, (std::vector<int>{0, 0, 1, 1}));
  for (const auto& job : result.jobs) {
    // Node-disjoint jobs live in disjoint conflict components, so sharing
    // the cluster costs them nothing — to the last bit.
    EXPECT_DOUBLE_EQ(job.makespan_shared, job.makespan_alone) << job.name;
    EXPECT_DOUBLE_EQ(job.interference_pct, 0.0) << job.name;
    EXPECT_EQ(job.num_tasks, 2);
  }
}

TEST(MultiJob, OverlappingJobsPayForTheSharedLinks) {
  const auto cluster = topo::ClusterSpec::uniform(
      "mj-overlap", 2, 2, topo::gigabit_ethernet_calibration());
  const flowsim::FluidRateProvider provider(cluster.network());
  std::vector<JobSpec> jobs;
  jobs.push_back({"a", pair_exchange(2e7), place_on({0, 1})});
  jobs.push_back({"b", pair_exchange(2e7), place_on({0, 1})});
  const auto result = run_multi_job(jobs, cluster, provider);
  for (const auto& job : result.jobs) {
    EXPECT_GT(job.makespan_shared, job.makespan_alone) << job.name;
    EXPECT_GT(job.interference_pct, 0.0) << job.name;
  }
  EXPECT_GE(result.combined.comms.size(), 2u);
}

TEST(MultiJob, BarriersStayJobScoped) {
  // Job "slow" holds its own barrier for 0.2 s of compute; job "quick" has
  // a single task that must finish long before — a shared global barrier
  // would drag it to 0.2 s.
  const auto cluster = topo::ClusterSpec::uniform(
      "mj-barrier", 3, 1, topo::gigabit_ethernet_calibration());
  const flowsim::FluidRateProvider provider(cluster.network());
  AppTrace slow(2);
  slow.push(0, Event::compute(0.2));
  slow.push_barrier_all();
  AppTrace quick(1);
  quick.push(0, Event::compute(0.01));
  std::vector<JobSpec> jobs;
  jobs.push_back({"slow", std::move(slow), place_on({0, 1})});
  jobs.push_back({"quick", std::move(quick), place_on({2})});
  const auto result = run_multi_job(jobs, cluster, provider);
  ASSERT_EQ(result.jobs.size(), 2u);
  EXPECT_GE(result.jobs[0].makespan_shared, 0.2);
  EXPECT_LT(result.jobs[1].makespan_shared, 0.05);
  EXPECT_DOUBLE_EQ(result.jobs[1].interference_pct, 0.0);
}

TEST(MultiJob, CombinedReplayMatchesAManualMerge) {
  // The runner's merge (task-id offsets + Scenario::job_of) must equal the
  // same replay assembled by hand — bit for bit.
  const auto cluster = topo::ClusterSpec::uniform(
      "mj-merge", 2, 2, topo::gigabit_ethernet_calibration());
  const flowsim::FluidRateProvider provider(cluster.network());
  std::vector<JobSpec> jobs;
  jobs.push_back({"a", pair_exchange(2e7), place_on({0, 1})});
  jobs.push_back({"b", pair_exchange(3e7), place_on({1, 0})});
  const auto result = run_multi_job(jobs, cluster, provider);

  AppTrace merged(4);
  merged.push(1, Event::irecv(0, 2e7));
  merged.push(0, Event::isend(1, 2e7));
  merged.push(0, Event::wait_all());
  merged.push(1, Event::wait_all());
  merged.push(3, Event::irecv(2, 3e7));
  merged.push(2, Event::isend(3, 3e7));
  merged.push(2, Event::wait_all());
  merged.push(3, Event::wait_all());
  Scenario scenario;
  scenario.job_of = {0, 0, 1, 1};
  const auto manual = run_simulation(merged, cluster, place_on({0, 1, 1, 0}),
                                     provider, scenario);
  expect_bit_identical(result.combined, manual);
}

TEST(MultiJob, ScenarioAppliesToSharedAndAloneRuns) {
  // A failure mid-replay aborts in both the shared and the alone runs, so
  // interference still isolates the co-scheduling effect.
  const auto cluster = topo::ClusterSpec::uniform(
      "mj-churn", 2, 2, topo::gigabit_ethernet_calibration());
  const flowsim::FluidRateProvider provider(cluster.network());
  std::vector<JobSpec> jobs;
  jobs.push_back({"a", pair_exchange(4e7), place_on({0, 1})});
  jobs.push_back({"b", pair_exchange(4e7), place_on({0, 1})});
  Scenario scenario;
  scenario.churn.push_back({0.01, graph::ChurnKind::kFail, 1});
  const auto result =
      run_multi_job(jobs, cluster, provider, scenario);
  EXPECT_EQ(result.combined.aborted_comms, 2u);
  for (const auto& job : result.jobs) {
    EXPECT_GT(job.makespan_alone, 0.0) << job.name;
    EXPECT_GT(job.makespan_shared, 0.0) << job.name;
  }
}

TEST(MultiJob, Validation) {
  const auto cluster = topo::ClusterSpec::uniform(
      "mj-bad", 2, 1, topo::gigabit_ethernet_calibration());
  const flowsim::FluidRateProvider provider(cluster.network());
  EXPECT_THROW((void)run_multi_job({}, cluster, provider), Error);
  std::vector<JobSpec> jobs;
  jobs.push_back({"a", pair_exchange(1e6), place_on({0, 1})});
  Scenario preset;
  preset.job_of = {0, 0};
  EXPECT_THROW((void)run_multi_job(jobs, cluster, provider, preset), Error);
}

TEST(MultiJob, TableRendersNamesAndInterference) {
  const auto cluster = topo::ClusterSpec::uniform(
      "mj-table", 2, 2, topo::gigabit_ethernet_calibration());
  const flowsim::FluidRateProvider provider(cluster.network());
  std::vector<JobSpec> jobs;
  jobs.push_back({"alpha", pair_exchange(2e7), place_on({0, 1})});
  jobs.push_back({"beta", pair_exchange(2e7), place_on({0, 1})});
  const auto result = run_multi_job(jobs, cluster, provider);
  const std::string table = render_multi_job_table(result);
  EXPECT_NE(table.find("alpha"), std::string::npos);
  EXPECT_NE(table.find("beta"), std::string::npos);
  EXPECT_NE(table.find("interference"), std::string::npos);
  EXPECT_NE(table.find("%"), std::string::npos);
}

}  // namespace
}  // namespace bwshare::sim
