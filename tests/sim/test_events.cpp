#include "sim/events.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace bwshare::sim {
namespace {

TEST(Events, Factories) {
  const auto c = Event::compute(1.5);
  EXPECT_EQ(c.kind, EventKind::kCompute);
  EXPECT_DOUBLE_EQ(c.seconds, 1.5);
  const auto s = Event::send(3, 1e6);
  EXPECT_EQ(s.kind, EventKind::kSend);
  EXPECT_EQ(s.peer, 3);
  const auto r = Event::recv_any(2e6);
  EXPECT_EQ(r.peer, kAnySource);
  EXPECT_THROW(Event::compute(-1.0), Error);
  EXPECT_THROW(Event::send(-2, 1.0), Error);
  EXPECT_THROW(Event::recv(-3, 1.0), Error);
}

TEST(AppTrace, PushAndTotals) {
  AppTrace trace(2);
  trace.push(0, Event::compute(1.0));
  trace.push(0, Event::send(1, 100.0));
  trace.push(1, Event::recv(0, 100.0));
  trace.push(1, Event::compute(2.0));
  EXPECT_EQ(trace.total_events(), 4u);
  EXPECT_DOUBLE_EQ(trace.total_compute_seconds(), 3.0);
  EXPECT_DOUBLE_EQ(trace.total_bytes_sent(), 100.0);
}

TEST(AppTrace, ValidateAcceptsMatchedTraffic) {
  AppTrace trace(3);
  trace.push(0, Event::send(1, 10.0));
  trace.push(2, Event::send(1, 20.0));
  trace.push(1, Event::recv(0, 10.0));
  trace.push(1, Event::recv_any(20.0));
  EXPECT_NO_THROW(trace.validate());
}

TEST(AppTrace, ValidateRejectsMissingRecv) {
  AppTrace trace(2);
  trace.push(0, Event::send(1, 10.0));
  EXPECT_THROW(trace.validate(), Error);
}

TEST(AppTrace, ValidateRejectsSelfSend) {
  AppTrace trace(2);
  trace.push(0, Event::send(0, 10.0));
  EXPECT_THROW(trace.validate(), Error);
}

TEST(AppTrace, ValidateRejectsUnbalancedBarriers) {
  AppTrace trace(2);
  trace.push(0, Event::barrier());
  EXPECT_THROW(trace.validate(), Error);
  trace.push(1, Event::barrier());
  EXPECT_NO_THROW(trace.validate());
}

TEST(AppTrace, PushBarrierAll) {
  AppTrace trace(3);
  trace.push_barrier_all();
  for (TaskId t = 0; t < 3; ++t) {
    ASSERT_EQ(trace.program(t).size(), 1u);
    EXPECT_EQ(trace.program(t)[0].kind, EventKind::kBarrier);
  }
}

}  // namespace
}  // namespace bwshare::sim
