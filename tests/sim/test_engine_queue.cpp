// Heap vs scan next-event selection (sim::QueueMode, the core::EventQueue
// finish-time index vs the legacy per-event linear scans). The two must be
// *bit-identical*: the heap keys on exactly the (finish_pred, record) order
// the scan's argmin uses, and the arithmetic per event is unchanged.
//
// The staggered fuzz here deliberately forces mid-flight re-predictions in
// both directions: hotspot fan-ins make every new transfer shrink its
// component's rates (finish times grow, increase-key), every completion
// grows them again (finish times shrink, decrease-key), and a positive
// barrier cost overshoots predictions so late completions clamp. Under
// RefreshMode::kCrossCheck the engine additionally re-derives every event
// choice by the legacy scan and throws the moment heap order diverges from
// scan order.
#include <cstdint>

#include <gtest/gtest.h>

#include "engine_fuzz_util.hpp"
#include "flowsim/fluid_network.hpp"
#include "sim/engine.hpp"
#include "sim/schedule.hpp"
#include "topo/cluster.hpp"
#include "topo/fattree.hpp"
#include "util/rng.hpp"

namespace bwshare::sim {
namespace {

SimResult run_cfg(const AppTrace& trace, const topo::ClusterSpec& cluster,
                  const Placement& placement,
                  const flowsim::RateProvider& provider, RefreshMode refresh,
                  QueueMode queue, double barrier_cost) {
  EngineConfig cfg;
  cfg.refresh = refresh;
  cfg.queue = queue;
  cfg.barrier_cost = barrier_cost;
  return run_simulation(trace, cluster, placement, provider, cfg);
}

class QueueFuzz : public ::testing::TestWithParam<int> {};

TEST_P(QueueFuzz, HeapIsBitIdenticalToScanOnChurningTraces) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 333331 + 7);
  const int tasks = 5 + static_cast<int>(rng.below(5));
  const auto trace = churn_trace(static_cast<uint64_t>(GetParam()), tasks);
  ASSERT_NO_THROW(trace.validate());
  // A positive barrier cost overshoots in-flight predictions, exercising
  // the clamped late-completion path of the queue.
  const double barrier_cost = GetParam() % 2 == 0 ? 0.0 : 5e-3;
  const auto cluster = topo::ClusterSpec::uniform(
      "queuefuzz", (tasks + 1) / 2, 2, topo::gigabit_ethernet_calibration());
  const auto placement =
      make_placement(SchedulingPolicy::kRandom, cluster, tasks, rng());
  const flowsim::FluidRateProvider provider(cluster.network());

  const auto heap = run_cfg(trace, cluster, placement, provider,
                            RefreshMode::kIncremental, QueueMode::kHeap,
                            barrier_cost);
  const auto scan = run_cfg(trace, cluster, placement, provider,
                            RefreshMode::kIncremental, QueueMode::kScan,
                            barrier_cost);
  expect_bit_identical(heap, scan);

  // kCrossCheck under the heap asserts heap-order == scan-order at every
  // event (next wake-up, next completion, completing slot) on top of the
  // per-event full-solve rate check; under the scan it is the legacy
  // equivalence harness. Both must hold on the same churning trace.
  const auto crosscheck_heap =
      run_cfg(trace, cluster, placement, provider, RefreshMode::kCrossCheck,
              QueueMode::kHeap, barrier_cost);
  expect_bit_identical(heap, crosscheck_heap);
  EXPECT_NO_THROW(run_cfg(trace, cluster, placement, provider,
                          RefreshMode::kCrossCheck, QueueMode::kScan,
                          barrier_cost));
}

TEST_P(QueueFuzz, HeapMatchesScanUnderFatTreeCoupling) {
  // Oversubscribed inner links couple endpoint-disjoint transfers into one
  // component: a single completion then re-predicts many finish times at
  // once, all of which the heap must re-key before the next pop.
  Rng rng(static_cast<uint64_t>(GetParam()) * 777001 + 3);
  const int tasks = 8;
  const auto trace = churn_trace(static_cast<uint64_t>(GetParam()) + 100, tasks);
  ASSERT_NO_THROW(trace.validate());
  const auto cal = topo::gigabit_ethernet_calibration();
  const auto cluster = topo::ClusterSpec::uniform("queuetree", tasks, 1, cal);
  topo::FatTree::Params params;
  params.num_hosts = tasks;
  params.radix = 4;
  params.host_bandwidth = cal.link_bandwidth;
  params.uplink_factor = 0.5;
  params.num_core = 1;
  const flowsim::FluidRateProvider provider(cal, topo::FatTree(params));
  const auto placement =
      make_placement(SchedulingPolicy::kRoundRobinNode, cluster, tasks);

  const auto heap = run_cfg(trace, cluster, placement, provider,
                            RefreshMode::kIncremental, QueueMode::kHeap, 0.0);
  const auto scan = run_cfg(trace, cluster, placement, provider,
                            RefreshMode::kIncremental, QueueMode::kScan, 0.0);
  expect_bit_identical(heap, scan);
  EXPECT_NO_THROW(run_cfg(trace, cluster, placement, provider,
                          RefreshMode::kCrossCheck, QueueMode::kHeap, 0.0));
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueueFuzz, ::testing::Range(0, 10));

TEST(QueueDeterminism, RepeatedHeapRunsAreIdentical) {
  const auto trace = churn_trace(42, 7);
  const auto cluster = topo::ClusterSpec::uniform(
      "queuedet", 4, 2, topo::myrinet2000_calibration());
  const auto placement =
      make_placement(SchedulingPolicy::kRoundRobinNode, cluster, 7);
  const flowsim::FluidRateProvider provider(cluster.network());
  const auto a = run_cfg(trace, cluster, placement, provider,
                         RefreshMode::kIncremental, QueueMode::kHeap, 1e-3);
  const auto b = run_cfg(trace, cluster, placement, provider,
                         RefreshMode::kIncremental, QueueMode::kHeap, 1e-3);
  expect_bit_identical(a, b);
}

}  // namespace
}  // namespace bwshare::sim
