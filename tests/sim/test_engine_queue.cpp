// Heap vs scan next-event selection (sim::QueueMode, the core::EventQueue
// finish-time index vs the legacy per-event linear scans). The two must be
// *bit-identical*: the heap keys on exactly the (finish_pred, record) order
// the scan's argmin uses, and the arithmetic per event is unchanged.
//
// The staggered fuzz here deliberately forces mid-flight re-predictions in
// both directions: hotspot fan-ins make every new transfer shrink its
// component's rates (finish times grow, increase-key), every completion
// grows them again (finish times shrink, decrease-key), and a positive
// barrier cost overshoots predictions so late completions clamp. Under
// RefreshMode::kCrossCheck the engine additionally re-derives every event
// choice by the legacy scan and throws the moment heap order diverges from
// scan order.
#include <cstdint>

#include <gtest/gtest.h>

#include "flowsim/fluid_network.hpp"
#include "sim/engine.hpp"
#include "sim/schedule.hpp"
#include "topo/cluster.hpp"
#include "topo/fattree.hpp"
#include "util/rng.hpp"

namespace bwshare::sim {
namespace {

SimResult run_cfg(const AppTrace& trace, const topo::ClusterSpec& cluster,
                  const Placement& placement,
                  const flowsim::RateProvider& provider, RefreshMode refresh,
                  QueueMode queue, double barrier_cost) {
  EngineConfig cfg;
  cfg.refresh = refresh;
  cfg.queue = queue;
  cfg.barrier_cost = barrier_cost;
  return run_simulation(trace, cluster, placement, provider, cfg);
}

/// Exact equality — heap and scan run the same arithmetic in the same
/// order, so every derived number must match to the last bit.
void expect_bit_identical(const SimResult& a, const SimResult& b) {
  ASSERT_EQ(a.comms.size(), b.comms.size());
  EXPECT_EQ(a.makespan, b.makespan);
  for (size_t i = 0; i < a.comms.size(); ++i) {
    EXPECT_EQ(a.comms[i].start, b.comms[i].start) << "comm " << i;
    EXPECT_EQ(a.comms[i].finish, b.comms[i].finish) << "comm " << i;
    EXPECT_EQ(a.comms[i].penalty, b.comms[i].penalty) << "comm " << i;
  }
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (size_t t = 0; t < a.tasks.size(); ++t) {
    EXPECT_EQ(a.tasks[t].finish_time, b.tasks[t].finish_time) << "task " << t;
    EXPECT_EQ(a.tasks[t].send_blocked_seconds, b.tasks[t].send_blocked_seconds)
        << "task " << t;
    EXPECT_EQ(a.tasks[t].recv_blocked_seconds, b.tasks[t].recv_blocked_seconds)
        << "task " << t;
    EXPECT_EQ(a.tasks[t].barrier_wait_seconds, b.tasks[t].barrier_wait_seconds)
        << "task " << t;
  }
}

/// Staggered trace with heavy prediction churn: rounds of hotspot fan-ins
/// (everyone funnels into a rotating sink) mixed with random pairs, eager
/// and rendezvous sizes, zero-length and short computes, barriers.
AppTrace churn_trace(uint64_t seed, int tasks) {
  Rng rng(seed * 9176959ULL + 11);
  AppTrace trace(tasks);
  const int rounds = 2 + static_cast<int>(rng.below(3));
  for (int round = 0; round < rounds; ++round) {
    const TaskId sink = static_cast<TaskId>(rng.below(static_cast<uint64_t>(tasks)));
    for (TaskId src = 0; src < tasks; ++src) {
      if (src == sink) continue;
      // The fan-in: staggered joins shrink rates (finish times re-predict
      // later); each completion restores them (re-predict earlier).
      const double bytes = rng.uniform() < 0.25 ? 2e3 : rng.uniform(3e5, 5e6);
      trace.push(sink, Event::irecv(src, bytes));
      if (rng.uniform() < 0.4)
        trace.push(src, Event::compute(rng.uniform(0.0, 0.01)));
      if (rng.uniform() < 0.5) {
        trace.push(src, Event::isend(sink, bytes));
        trace.push(src, Event::wait_all());
      } else {
        trace.push(src, Event::send(sink, bytes));
      }
    }
    trace.push(sink, Event::wait_all());
    // Extra cross traffic so several components churn at once.
    for (TaskId src = 0; src < tasks; ++src) {
      if (rng.uniform() < 0.5) continue;
      TaskId dst = static_cast<TaskId>(rng.below(static_cast<uint64_t>(tasks)));
      if (dst == src) dst = (dst + 1) % tasks;
      const double bytes = rng.uniform(1e5, 2e6);
      trace.push(dst, Event::irecv(src, bytes));
      trace.push(src, Event::isend(dst, bytes));
      trace.push(src, Event::wait_all());
    }
    for (TaskId t = 0; t < tasks; ++t) {
      if (rng.uniform() < 0.3)
        trace.push(t, Event::compute(rng.uniform() < 0.3
                                         ? 0.0
                                         : rng.uniform(0.0, 0.02)));
      trace.push(t, Event::wait_all());
    }
    trace.push_barrier_all();
  }
  return trace;
}

class QueueFuzz : public ::testing::TestWithParam<int> {};

TEST_P(QueueFuzz, HeapIsBitIdenticalToScanOnChurningTraces) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 333331 + 7);
  const int tasks = 5 + static_cast<int>(rng.below(5));
  const auto trace = churn_trace(static_cast<uint64_t>(GetParam()), tasks);
  ASSERT_NO_THROW(trace.validate());
  // A positive barrier cost overshoots in-flight predictions, exercising
  // the clamped late-completion path of the queue.
  const double barrier_cost = GetParam() % 2 == 0 ? 0.0 : 5e-3;
  const auto cluster = topo::ClusterSpec::uniform(
      "queuefuzz", (tasks + 1) / 2, 2, topo::gigabit_ethernet_calibration());
  const auto placement =
      make_placement(SchedulingPolicy::kRandom, cluster, tasks, rng());
  const flowsim::FluidRateProvider provider(cluster.network());

  const auto heap = run_cfg(trace, cluster, placement, provider,
                            RefreshMode::kIncremental, QueueMode::kHeap,
                            barrier_cost);
  const auto scan = run_cfg(trace, cluster, placement, provider,
                            RefreshMode::kIncremental, QueueMode::kScan,
                            barrier_cost);
  expect_bit_identical(heap, scan);

  // kCrossCheck under the heap asserts heap-order == scan-order at every
  // event (next wake-up, next completion, completing slot) on top of the
  // per-event full-solve rate check; under the scan it is the legacy
  // equivalence harness. Both must hold on the same churning trace.
  const auto crosscheck_heap =
      run_cfg(trace, cluster, placement, provider, RefreshMode::kCrossCheck,
              QueueMode::kHeap, barrier_cost);
  expect_bit_identical(heap, crosscheck_heap);
  EXPECT_NO_THROW(run_cfg(trace, cluster, placement, provider,
                          RefreshMode::kCrossCheck, QueueMode::kScan,
                          barrier_cost));
}

TEST_P(QueueFuzz, HeapMatchesScanUnderFatTreeCoupling) {
  // Oversubscribed inner links couple endpoint-disjoint transfers into one
  // component: a single completion then re-predicts many finish times at
  // once, all of which the heap must re-key before the next pop.
  Rng rng(static_cast<uint64_t>(GetParam()) * 777001 + 3);
  const int tasks = 8;
  const auto trace = churn_trace(static_cast<uint64_t>(GetParam()) + 100, tasks);
  ASSERT_NO_THROW(trace.validate());
  const auto cal = topo::gigabit_ethernet_calibration();
  const auto cluster = topo::ClusterSpec::uniform("queuetree", tasks, 1, cal);
  topo::FatTree::Params params;
  params.num_hosts = tasks;
  params.radix = 4;
  params.host_bandwidth = cal.link_bandwidth;
  params.uplink_factor = 0.5;
  params.num_core = 1;
  const flowsim::FluidRateProvider provider(cal, topo::FatTree(params));
  const auto placement =
      make_placement(SchedulingPolicy::kRoundRobinNode, cluster, tasks);

  const auto heap = run_cfg(trace, cluster, placement, provider,
                            RefreshMode::kIncremental, QueueMode::kHeap, 0.0);
  const auto scan = run_cfg(trace, cluster, placement, provider,
                            RefreshMode::kIncremental, QueueMode::kScan, 0.0);
  expect_bit_identical(heap, scan);
  EXPECT_NO_THROW(run_cfg(trace, cluster, placement, provider,
                          RefreshMode::kCrossCheck, QueueMode::kHeap, 0.0));
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueueFuzz, ::testing::Range(0, 10));

TEST(QueueDeterminism, RepeatedHeapRunsAreIdentical) {
  const auto trace = churn_trace(42, 7);
  const auto cluster = topo::ClusterSpec::uniform(
      "queuedet", 4, 2, topo::myrinet2000_calibration());
  const auto placement =
      make_placement(SchedulingPolicy::kRoundRobinNode, cluster, 7);
  const flowsim::FluidRateProvider provider(cluster.network());
  const auto a = run_cfg(trace, cluster, placement, provider,
                         RefreshMode::kIncremental, QueueMode::kHeap, 1e-3);
  const auto b = run_cfg(trace, cluster, placement, provider,
                         RefreshMode::kIncremental, QueueMode::kHeap, 1e-3);
  expect_bit_identical(a, b);
}

}  // namespace
}  // namespace bwshare::sim
