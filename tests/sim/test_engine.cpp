// Engine semantics: rendezvous blocking, eager sends, any-source matching,
// barriers, conflict-driven slowdown, deadlock detection.
#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include "flowsim/fluid_network.hpp"
#include "models/gige.hpp"
#include "models/myrinet.hpp"
#include "sim/rate_model.hpp"
#include "util/error.hpp"

namespace bwshare::sim {
namespace {

topo::ClusterSpec cluster(int nodes = 8) {
  return topo::ClusterSpec::uniform("test", nodes, 2,
                                    topo::gigabit_ethernet_calibration());
}

Placement identity_placement(int tasks) {
  std::vector<topo::NodeId> nodes(static_cast<size_t>(tasks));
  for (int t = 0; t < tasks; ++t) nodes[static_cast<size_t>(t)] = t;
  return Placement(std::move(nodes));
}

flowsim::FluidRateProvider fluid() {
  return flowsim::FluidRateProvider(topo::gigabit_ethernet_calibration());
}

TEST(Engine, SingleTransferTakesReferenceTime) {
  AppTrace trace(2);
  trace.push(0, Event::send(1, 20e6));
  trace.push(1, Event::recv(0, 20e6));
  const auto provider = fluid();
  const auto spec = cluster();
  const auto result =
      run_simulation(trace, spec, identity_placement(2), provider);
  const auto& net = spec.network();
  EXPECT_NEAR(result.makespan, net.latency + 20e6 / net.reference_bandwidth(),
              1e-3);
  ASSERT_EQ(result.comms.size(), 1u);
  EXPECT_NEAR(result.comms[0].penalty, 1.0, 0.01);
}

TEST(Engine, RendezvousSenderBlocksUntilDrained) {
  AppTrace trace(2);
  trace.push(0, Event::send(1, 20e6));
  trace.push(0, Event::compute(0.001));
  trace.push(1, Event::compute(0.05));  // receiver posts late
  trace.push(1, Event::recv(0, 20e6));
  const auto provider = fluid();
  const auto result =
      run_simulation(trace, cluster(), identity_placement(2), provider);
  // The transfer cannot start before the receive is posted at t=0.05.
  EXPECT_GE(result.comms[0].start, 0.05 - 1e-9);
  EXPECT_GT(result.tasks[0].send_blocked_seconds, 0.05);
}

TEST(Engine, EagerSendDoesNotBlockSender) {
  AppTrace trace(2);
  trace.push(0, Event::send(1, 1024.0));  // below eager threshold
  trace.push(0, Event::compute(0.5));
  trace.push(1, Event::compute(0.2));  // receive posted late
  trace.push(1, Event::recv(0, 1024.0));
  const auto provider = fluid();
  const auto result =
      run_simulation(trace, cluster(), identity_placement(2), provider);
  EXPECT_DOUBLE_EQ(result.tasks[0].send_blocked_seconds, 0.0);
  // Sender's makespan contribution is its compute, not the late receiver.
  EXPECT_NEAR(result.tasks[0].finish_time, 0.5, 1e-6);
}

TEST(Engine, AnySourceMatchesEarliestPostedSend) {
  AppTrace trace(3);
  trace.push(1, Event::compute(0.010));
  trace.push(1, Event::send(0, 1e6));
  trace.push(2, Event::compute(0.005));
  trace.push(2, Event::send(0, 2e6));
  trace.push(0, Event::recv_any(0.0));
  trace.push(0, Event::recv_any(0.0));
  const auto provider = fluid();
  const auto result =
      run_simulation(trace, cluster(), identity_placement(3), provider);
  // Records appear in posting order; task 2 posted first (t=5ms), so its
  // message matches the first any-source receive and transfers first.
  ASSERT_EQ(result.comms.size(), 2u);
  EXPECT_EQ(result.comms[0].src_task, 2);
  EXPECT_EQ(result.comms[1].src_task, 1);
  EXPECT_NEAR(result.comms[0].start, 0.005, 1e-6);
  // Task 0's program is sequential: the second receive is only posted after
  // the first transfer completes, so task 1's message starts later.
  EXPECT_GE(result.comms[1].start, result.comms[0].finish - 1e-6);
}

TEST(Engine, BarrierSynchronizesTasks) {
  AppTrace trace(3);
  trace.push(0, Event::compute(0.3));
  trace.push(1, Event::compute(0.1));
  trace.push(2, Event::compute(0.2));
  trace.push_barrier_all();
  trace.push(0, Event::compute(0.01));
  trace.push(1, Event::compute(0.01));
  trace.push(2, Event::compute(0.01));
  const auto provider = fluid();
  const auto result =
      run_simulation(trace, cluster(), identity_placement(3), provider);
  EXPECT_NEAR(result.makespan, 0.31, 1e-9);
  // Task 1 waited 0.2 at the barrier, task 0 didn't wait.
  EXPECT_NEAR(result.tasks[1].barrier_wait_seconds, 0.2, 1e-9);
  EXPECT_NEAR(result.tasks[0].barrier_wait_seconds, 0.0, 1e-9);
}

TEST(Engine, ConcurrentSendsFromOneNodeShareBandwidth) {
  // Tasks 0,1 on node 0 send to nodes 1,2 simultaneously: fig-2 S2 shape.
  AppTrace trace(4);
  trace.push(0, Event::send(2, 20e6));
  trace.push(1, Event::send(3, 20e6));
  trace.push(2, Event::recv(0, 20e6));
  trace.push(3, Event::recv(1, 20e6));
  Placement placement({0, 0, 1, 2});
  const auto provider = fluid();
  const auto result = run_simulation(trace, cluster(), placement, provider);
  for (const auto& c : result.comms) EXPECT_NEAR(c.penalty, 1.5, 0.02);
}

TEST(Engine, IntraNodeCommsUseSharedMemory) {
  AppTrace trace(2);
  trace.push(0, Event::send(1, 8e6));
  trace.push(1, Event::recv(0, 8e6));
  Placement placement({0, 0});  // same node
  const auto provider = fluid();
  const auto spec = cluster();
  const auto result = run_simulation(trace, spec, placement, provider);
  const auto& net = spec.network();
  EXPECT_NEAR(result.makespan, 8e6 / net.shm_bandwidth, 1e-3);
}

TEST(Engine, ModelProviderUsesPenalties) {
  // Two concurrent sends from one node under the GigE model: 1.5x each.
  AppTrace trace(4);
  trace.push(0, Event::send(2, 20e6));
  trace.push(1, Event::send(3, 20e6));
  trace.push(2, Event::recv(0, 20e6));
  trace.push(3, Event::recv(1, 20e6));
  Placement placement({0, 0, 1, 2});
  const auto model = std::make_shared<models::GigabitEthernetModel>();
  const ModelRateProvider provider(model,
                                   topo::gigabit_ethernet_calibration());
  const auto result = run_simulation(trace, cluster(), placement, provider);
  for (const auto& c : result.comms) EXPECT_NEAR(c.penalty, 1.5, 0.01);
}

TEST(Engine, StaggeredTransfersChangeRatesMidFlight) {
  // Second transfer starts halfway through the first: the first runs at
  // full speed, then shares, so its penalty lands strictly between 1 and
  // the fully shared value.
  AppTrace trace(4);
  trace.push(0, Event::send(2, 20e6));
  trace.push(1, Event::compute(0.1));
  trace.push(1, Event::send(3, 20e6));
  trace.push(2, Event::recv(0, 20e6));
  trace.push(3, Event::recv(1, 20e6));
  Placement placement({0, 0, 1, 2});
  const auto provider = fluid();
  const auto result = run_simulation(trace, cluster(), placement, provider);
  const auto& first = result.comms[0];
  EXPECT_GT(first.penalty, 1.05);
  EXPECT_LT(first.penalty, 1.5);
}

TEST(Engine, DeadlockIsDetected) {
  AppTrace trace(2);
  trace.push(0, Event::recv(1, 1e6));
  trace.push(1, Event::recv(0, 1e6));
  const auto provider = fluid();
  EXPECT_THROW(
      run_simulation(trace, cluster(), identity_placement(2), provider),
      Error);
}

TEST(Engine, MismatchedPlacementRejected) {
  AppTrace trace(3);
  const auto provider = fluid();
  EXPECT_THROW(
      run_simulation(trace, cluster(), identity_placement(2), provider),
      Error);
}

TEST(Engine, ZeroByteMessageCostsLatency) {
  AppTrace trace(2);
  trace.push(0, Event::send(1, 0.0));
  trace.push(1, Event::recv(0, 0.0));
  const auto provider = fluid();
  const auto result =
      run_simulation(trace, cluster(), identity_placement(2), provider);
  EXPECT_GT(result.makespan, 0.0);
  EXPECT_LT(result.makespan, 1e-3);
}

TEST(Engine, ResultAccountingIsConsistent) {
  AppTrace trace(3);
  trace.push(0, Event::send(1, 5e6));
  trace.push(0, Event::send(2, 5e6));
  trace.push(1, Event::recv(0, 5e6));
  trace.push(2, Event::recv(0, 5e6));
  const auto provider = fluid();
  const auto result =
      run_simulation(trace, cluster(), identity_placement(3), provider);
  EXPECT_EQ(result.comms.size(), 2u);
  EXPECT_EQ(result.tasks[0].sends, 2);
  EXPECT_EQ(result.tasks[1].recvs, 1);
  for (const auto& c : result.comms) {
    EXPECT_GE(c.finish, c.start);
    EXPECT_GE(c.start, c.send_post);
    EXPECT_GE(c.penalty, 0.99);
  }
  EXPECT_DOUBLE_EQ(result.task_comm_time(0),
                   result.tasks[0].send_blocked_seconds);
}

}  // namespace
}  // namespace bwshare::sim
