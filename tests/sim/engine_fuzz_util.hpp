// Shared fuzz machinery for the engine equivalence suites
// (test_engine_queue.cpp: heap vs scan; test_engine_parallel.cpp: parallel
// vs serial solve; test_engine_churn.cpp: dynamic-cluster scenarios). All
// compare whole replays bit-for-bit, and all want the same churning
// workload: staggered hotspot fan-ins force mid-flight re-predictions in
// both directions (joins shrink rates, completions grow them), mixed with
// eager and rendezvous sizes, zero-length computes and barriers.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/result_expect.hpp"
#include "graph/generator.hpp"
#include "sim/engine.hpp"
#include "sim/events.hpp"
#include "sim/schedule.hpp"
#include "topo/cluster.hpp"
#include "util/rng.hpp"

namespace bwshare::sim {

/// Staggered trace with heavy prediction churn: rounds of hotspot fan-ins
/// (everyone funnels into a rotating sink) mixed with random pairs, eager
/// and rendezvous sizes, zero-length and short computes, barriers.
inline AppTrace churn_trace(uint64_t seed, int tasks) {
  Rng rng(seed * 9176959ULL + 11);
  AppTrace trace(tasks);
  const int rounds = 2 + static_cast<int>(rng.below(3));
  for (int round = 0; round < rounds; ++round) {
    const TaskId sink = static_cast<TaskId>(rng.below(static_cast<uint64_t>(tasks)));
    for (TaskId src = 0; src < tasks; ++src) {
      if (src == sink) continue;
      // The fan-in: staggered joins shrink rates (finish times re-predict
      // later); each completion restores them (re-predict earlier).
      const double bytes = rng.uniform() < 0.25 ? 2e3 : rng.uniform(3e5, 5e6);
      trace.push(sink, Event::irecv(src, bytes));
      if (rng.uniform() < 0.4)
        trace.push(src, Event::compute(rng.uniform(0.0, 0.01)));
      if (rng.uniform() < 0.5) {
        trace.push(src, Event::isend(sink, bytes));
        trace.push(src, Event::wait_all());
      } else {
        trace.push(src, Event::send(sink, bytes));
      }
    }
    trace.push(sink, Event::wait_all());
    // Extra cross traffic so several components churn at once.
    for (TaskId src = 0; src < tasks; ++src) {
      if (rng.uniform() < 0.5) continue;
      TaskId dst = static_cast<TaskId>(rng.below(static_cast<uint64_t>(tasks)));
      if (dst == src) dst = (dst + 1) % tasks;
      const double bytes = rng.uniform(1e5, 2e6);
      trace.push(dst, Event::irecv(src, bytes));
      trace.push(src, Event::isend(dst, bytes));
      trace.push(src, Event::wait_all());
    }
    for (TaskId t = 0; t < tasks; ++t) {
      if (rng.uniform() < 0.3)
        trace.push(t, Event::compute(rng.uniform() < 0.3
                                         ? 0.0
                                         : rng.uniform(0.0, 0.02)));
      trace.push(t, Event::wait_all());
    }
    trace.push_barrier_all();
  }
  return trace;
}

// (trace_from_scheme used to live here; it is library code now —
// sim/events.hpp — because the serving layer lifts scheme queries through
// the same one-phase expansion.)

inline Placement identity_placement(int n) {
  std::vector<topo::NodeId> nodes(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) nodes[static_cast<size_t>(i)] = i;
  return Placement(std::move(nodes));
}

/// A seeded dynamic-cluster script: Poisson join/leave/fail churn plus
/// background cross-traffic over `horizon` seconds on `nodes` nodes. The
/// rates are tuned so a handful of each kind lands inside a typical
/// churn_trace makespan — enough to hit the abort and admission-gating
/// paths without drowning the measured job.
inline Scenario churn_scenario(uint64_t seed, int nodes,
                               double horizon = 0.5) {
  graph::ChurnSpec churn;
  churn.rate = 24.0;
  churn.horizon = horizon;
  churn.nodes = nodes;
  churn.p_fail = 0.6;
  graph::BackgroundSpec background;
  background.rate = 40.0;
  background.horizon = horizon;
  background.nodes = nodes;
  background.bytes = 8e5;
  background.spread = 2.0;
  Scenario scenario;
  scenario.churn = graph::generate_churn(churn, seed);
  scenario.background = graph::generate_background(background, seed);
  return scenario;
}

}  // namespace bwshare::sim
