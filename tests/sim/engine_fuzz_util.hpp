// Shared fuzz machinery for the engine equivalence suites
// (test_engine_queue.cpp: heap vs scan; test_engine_parallel.cpp: parallel
// vs serial solve). Both compare whole replays bit-for-bit, and both want
// the same churning workload: staggered hotspot fan-ins force mid-flight
// re-predictions in both directions (joins shrink rates, completions grow
// them), mixed with eager and rendezvous sizes, zero-length computes and
// barriers.
#pragma once

#include <cstdint>

#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "sim/events.hpp"
#include "util/rng.hpp"

namespace bwshare::sim {

/// Exact equality — the compared configurations run the same arithmetic in
/// the same order, so every derived number must match to the last bit.
inline void expect_bit_identical(const SimResult& a, const SimResult& b) {
  ASSERT_EQ(a.comms.size(), b.comms.size());
  EXPECT_EQ(a.makespan, b.makespan);
  for (size_t i = 0; i < a.comms.size(); ++i) {
    EXPECT_EQ(a.comms[i].start, b.comms[i].start) << "comm " << i;
    EXPECT_EQ(a.comms[i].finish, b.comms[i].finish) << "comm " << i;
    EXPECT_EQ(a.comms[i].penalty, b.comms[i].penalty) << "comm " << i;
  }
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (size_t t = 0; t < a.tasks.size(); ++t) {
    EXPECT_EQ(a.tasks[t].finish_time, b.tasks[t].finish_time) << "task " << t;
    EXPECT_EQ(a.tasks[t].send_blocked_seconds, b.tasks[t].send_blocked_seconds)
        << "task " << t;
    EXPECT_EQ(a.tasks[t].recv_blocked_seconds, b.tasks[t].recv_blocked_seconds)
        << "task " << t;
    EXPECT_EQ(a.tasks[t].barrier_wait_seconds, b.tasks[t].barrier_wait_seconds)
        << "task " << t;
  }
}

/// Staggered trace with heavy prediction churn: rounds of hotspot fan-ins
/// (everyone funnels into a rotating sink) mixed with random pairs, eager
/// and rendezvous sizes, zero-length and short computes, barriers.
inline AppTrace churn_trace(uint64_t seed, int tasks) {
  Rng rng(seed * 9176959ULL + 11);
  AppTrace trace(tasks);
  const int rounds = 2 + static_cast<int>(rng.below(3));
  for (int round = 0; round < rounds; ++round) {
    const TaskId sink = static_cast<TaskId>(rng.below(static_cast<uint64_t>(tasks)));
    for (TaskId src = 0; src < tasks; ++src) {
      if (src == sink) continue;
      // The fan-in: staggered joins shrink rates (finish times re-predict
      // later); each completion restores them (re-predict earlier).
      const double bytes = rng.uniform() < 0.25 ? 2e3 : rng.uniform(3e5, 5e6);
      trace.push(sink, Event::irecv(src, bytes));
      if (rng.uniform() < 0.4)
        trace.push(src, Event::compute(rng.uniform(0.0, 0.01)));
      if (rng.uniform() < 0.5) {
        trace.push(src, Event::isend(sink, bytes));
        trace.push(src, Event::wait_all());
      } else {
        trace.push(src, Event::send(sink, bytes));
      }
    }
    trace.push(sink, Event::wait_all());
    // Extra cross traffic so several components churn at once.
    for (TaskId src = 0; src < tasks; ++src) {
      if (rng.uniform() < 0.5) continue;
      TaskId dst = static_cast<TaskId>(rng.below(static_cast<uint64_t>(tasks)));
      if (dst == src) dst = (dst + 1) % tasks;
      const double bytes = rng.uniform(1e5, 2e6);
      trace.push(dst, Event::irecv(src, bytes));
      trace.push(src, Event::isend(dst, bytes));
      trace.push(src, Event::wait_all());
    }
    for (TaskId t = 0; t < tasks; ++t) {
      if (rng.uniform() < 0.3)
        trace.push(t, Event::compute(rng.uniform() < 0.3
                                         ? 0.0
                                         : rng.uniform(0.0, 0.02)));
      trace.push(t, Event::wait_all());
    }
    trace.push_barrier_all();
  }
  return trace;
}

}  // namespace bwshare::sim
