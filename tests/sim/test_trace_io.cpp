#include "sim/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "util/error.hpp"

namespace bwshare::sim {
namespace {

AppTrace sample_trace() {
  AppTrace trace(3);
  trace.push(0, Event::compute(0.25));
  trace.push(0, Event::send(1, 4e6));
  trace.push(1, Event::recv(0, 4e6));
  trace.push(2, Event::send(1, 1e3));
  trace.push(1, Event::recv_any(1e3));
  trace.push(1, Event::irecv(0, 2e3));
  trace.push(0, Event::isend(1, 2e3));
  trace.push(0, Event::wait_all());
  trace.push(1, Event::wait_all());
  trace.push_barrier_all();
  return trace;
}

TEST(TraceIo, RoundTrip) {
  const auto original = sample_trace();
  const auto text = write_trace(original);
  const auto parsed = read_trace(text);
  ASSERT_EQ(parsed.num_tasks(), original.num_tasks());
  for (TaskId t = 0; t < original.num_tasks(); ++t) {
    const auto& a = original.program(t);
    const auto& b = parsed.program(t);
    ASSERT_EQ(a.size(), b.size()) << "task " << t;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].kind, b[i].kind);
      EXPECT_EQ(a[i].peer, b[i].peer);
      EXPECT_DOUBLE_EQ(a[i].bytes, b[i].bytes);
      EXPECT_DOUBLE_EQ(a[i].seconds, b[i].seconds);
    }
  }
}

TEST(TraceIo, CommentsAndWhitespace) {
  const auto trace = read_trace(R"(
# a comment
tasks 2

0 send 1 100   # trailing comment
1 recv 0 100
)");
  EXPECT_EQ(trace.num_tasks(), 2);
  EXPECT_EQ(trace.program(0).size(), 1u);
}

TEST(TraceIo, Errors) {
  EXPECT_THROW(read_trace("0 send 1 100"), Error);       // no tasks line
  EXPECT_THROW(read_trace("tasks 0"), Error);            // bad count
  EXPECT_THROW(read_trace("tasks 2\n5 compute 1"), Error);  // task range
  EXPECT_THROW(read_trace("tasks 2\n0 explode"), Error);  // unknown kind
  EXPECT_THROW(read_trace("tasks 2\n0 send 1"), Error);   // missing size
  EXPECT_THROW(read_trace("tasks 2\nxyz barrier"), Error);  // bad task id
  EXPECT_THROW(read_trace("tasks 2\n1 send abc 100"), Error);  // bad peer
  EXPECT_THROW(read_trace("tasks 2\n0 send -1 100"), Error);   // peer range
  EXPECT_THROW(read_trace("tasks 2x\n0 send 1 100"), Error);   // bad count
  EXPECT_THROW(read_trace("tasks 2\n0 compute abc"), Error);   // bad duration
  EXPECT_THROW(read_trace("tasks 2\n0 send 1 junk"), Error);   // bad size
  EXPECT_THROW(read_trace("tasks 2\n0 send 1 -100"), Error);   // negative size
  EXPECT_THROW(read_trace("tasks 4294967297\n0 barrier"), Error);  // int wrap
  EXPECT_THROW(read_trace("tasks 2\n0 compute nan"), Error);   // non-finite
  EXPECT_THROW(read_trace("tasks 2\n0 send 1 1e999"), Error);  // overflow
}

TEST(TraceIo, StarAppliesEventToEveryTask) {
  const auto trace = read_trace(R"(
tasks 3
0 send 1 100
1 recv 0 100
* barrier
)");
  for (TaskId t = 0; t < trace.num_tasks(); ++t) {
    const auto& program = trace.program(t);
    ASSERT_FALSE(program.empty()) << "task " << t;
    EXPECT_EQ(program.back().kind, EventKind::kBarrier) << "task " << t;
  }
}

TEST(TraceIo, FileRoundTrip) {
  const auto original = sample_trace();
  const std::string path = ::testing::TempDir() + "/bwshare_trace.txt";
  write_trace_file(original, path);
  const auto parsed = read_trace_file(path);
  EXPECT_EQ(parsed.total_events(), original.total_events());
  std::remove(path.c_str());
  EXPECT_THROW(read_trace_file("/nonexistent/trace.txt"), Error);
}

}  // namespace
}  // namespace bwshare::sim
