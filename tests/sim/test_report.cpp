#include "sim/report.hpp"

#include <gtest/gtest.h>

#include "flowsim/fluid_network.hpp"
#include "sim/engine.hpp"

namespace bwshare::sim {
namespace {

SimResult sample_result() {
  AppTrace trace(3);
  trace.push(0, Event::compute(0.1));
  trace.push(0, Event::send(1, 20e6));
  trace.push(1, Event::recv(0, 20e6));
  trace.push(2, Event::send(1, 20e6));
  trace.push(1, Event::recv(2, 20e6));
  trace.push_barrier_all();
  const auto cluster = topo::ClusterSpec::uniform(
      "t", 3, 2, topo::gigabit_ethernet_calibration());
  const Placement placement({0, 1, 2});
  const flowsim::FluidRateProvider provider(cluster.network());
  return run_simulation(trace, cluster, placement, provider);
}

TEST(Report, TaskTableListsEveryTask) {
  const auto result = sample_result();
  const std::string table = render_task_table(result);
  EXPECT_NE(table.find("task"), std::string::npos);
  EXPECT_NE(table.find("send-blk"), std::string::npos);
  // Three task rows (0, 1, 2).
  EXPECT_NE(table.find("\n"), std::string::npos);
  int lines = 0;
  for (char c : table)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, 2 + 3);  // header + underline + 3 rows
}

TEST(Report, CommTableRespectsMaxRows) {
  const auto result = sample_result();
  const std::string all = render_comm_table(result);
  const std::string one = render_comm_table(result, 1);
  EXPECT_GT(all.size(), one.size());
  EXPECT_NE(one.find("penalty"), std::string::npos);
}

TEST(Report, SummaryMentionsKeyQuantities) {
  const auto result = sample_result();
  const std::string summary = render_summary(result);
  EXPECT_NE(summary.find("makespan"), std::string::npos);
  EXPECT_NE(summary.find("2 communications"), std::string::npos);
  EXPECT_NE(summary.find("average penalty"), std::string::npos);
}

TEST(Report, AveragePenaltyOfEmptyResultIsOne) {
  SimResult empty;
  EXPECT_DOUBLE_EQ(empty.average_penalty(), 1.0);
}

}  // namespace
}  // namespace bwshare::sim
