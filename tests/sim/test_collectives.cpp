// Collective trace builders: every algorithm must produce a valid,
// deadlock-free trace that actually delivers the payload, and show its
// characteristic conflict pattern under the models.
#include "sim/collectives.hpp"

#include <gtest/gtest.h>

#include "flowsim/fluid_network.hpp"
#include "sim/engine.hpp"
#include "util/error.hpp"

namespace bwshare::sim {
namespace {

topo::ClusterSpec cluster(int nodes) {
  return topo::ClusterSpec::uniform("test", nodes, 2,
                                    topo::myrinet2000_calibration());
}

Placement identity_placement(int tasks) {
  std::vector<topo::NodeId> nodes(static_cast<size_t>(tasks));
  for (int t = 0; t < tasks; ++t) nodes[static_cast<size_t>(t)] = t;
  return Placement(std::move(nodes));
}

SimResult run(const AppTrace& trace) {
  const int p = trace.num_tasks();
  const auto c = cluster(p);
  const flowsim::FluidRateProvider provider(c.network());
  return run_simulation(trace, c, identity_placement(p), provider);
}

class CollectiveSizes : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveSizes, RingBroadcastDeliversToEveryone) {
  const int p = GetParam();
  AppTrace trace(p);
  append_ring_broadcast(trace, 0, 4e6);
  EXPECT_NO_THROW(trace.validate());
  const auto result = run(trace);
  EXPECT_EQ(result.comms.size(), static_cast<size_t>(p - 1));
  // Strictly sequential hops: makespan ~ (p-1) hop times.
  const double hop = cluster(p).network().reference_time(4e6);
  EXPECT_NEAR(result.makespan, (p - 1) * hop, (p - 1) * hop * 0.05);
}

TEST_P(CollectiveSizes, BinomialBroadcastIsLogDepth) {
  const int p = GetParam();
  AppTrace trace(p);
  append_binomial_broadcast(trace, 0, 4e6);
  EXPECT_NO_THROW(trace.validate());
  const auto result = run(trace);
  EXPECT_EQ(result.comms.size(), static_cast<size_t>(p - 1));
  // Depth is ceil(log2 p) rounds; with conflicts it stays well below the
  // ring's p-1 sequential hops for larger p.
  if (p >= 8) {
    AppTrace ring(p);
    append_ring_broadcast(ring, 0, 4e6);
    const auto ring_result = run(ring);
    EXPECT_LT(result.makespan, ring_result.makespan);
  }
}

TEST_P(CollectiveSizes, ScatterIsAnOutgoingConflict) {
  const int p = GetParam();
  AppTrace trace(p);
  append_scatter(trace, 0, 4e6);
  EXPECT_NO_THROW(trace.validate());
  const auto result = run(trace);
  EXPECT_EQ(result.comms.size(), static_cast<size_t>(p - 1));
  // All p-1 transfers leave node 0 concurrently: penalties ~ p-1 when >= 2.
  if (p >= 3) {
    for (const auto& c : result.comms) EXPECT_GT(c.penalty, (p - 1) * 0.6);
  }
}

TEST_P(CollectiveSizes, GatherIsAnIncomeConflict) {
  const int p = GetParam();
  AppTrace trace(p);
  append_gather(trace, 0, 4e6);
  EXPECT_NO_THROW(trace.validate());
  const auto result = run(trace);
  EXPECT_EQ(result.comms.size(), static_cast<size_t>(p - 1));
  if (p >= 3) {
    for (const auto& c : result.comms) EXPECT_GT(c.penalty, (p - 1) * 0.6);
  }
}

TEST_P(CollectiveSizes, RingAllreduceCompletes) {
  const int p = GetParam();
  AppTrace trace(p);
  append_ring_allreduce(trace, 8e6);
  EXPECT_NO_THROW(trace.validate());
  const auto result = run(trace);
  // 2(p-1) rounds of p messages each.
  EXPECT_EQ(result.comms.size(), static_cast<size_t>(2 * (p - 1) * p));
}

TEST_P(CollectiveSizes, AllToAllCompletes) {
  const int p = GetParam();
  AppTrace trace(p);
  append_all_to_all(trace, 1e6);
  EXPECT_NO_THROW(trace.validate());
  const auto result = run(trace);
  EXPECT_EQ(result.comms.size(), static_cast<size_t>(p * (p - 1)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollectiveSizes, ::testing::Values(2, 3, 4, 8));

TEST(Collectives, NonRootBroadcast) {
  AppTrace trace(5);
  append_binomial_broadcast(trace, 3, 1e6);
  EXPECT_NO_THROW(trace.validate());
  const auto result = run(trace);
  EXPECT_EQ(result.comms.size(), 4u);
  // The root never receives.
  for (const auto& c : result.comms) EXPECT_NE(c.dst_task, 3);
}

TEST(Collectives, Validation) {
  AppTrace trace(4);
  EXPECT_THROW(append_ring_broadcast(trace, 9, 1e6), Error);
  AppTrace tiny(1);
  EXPECT_THROW(append_all_to_all(tiny, 1e6), Error);
}

}  // namespace
}  // namespace bwshare::sim
