// Non-blocking communication semantics: Isend/Irecv/WaitAll — the mechanism
// behind HPL's lookahead and the collective algorithms.
#include <gtest/gtest.h>

#include "flowsim/fluid_network.hpp"
#include "sim/engine.hpp"
#include "util/error.hpp"

namespace bwshare::sim {
namespace {

topo::ClusterSpec cluster(int nodes = 8) {
  return topo::ClusterSpec::uniform("test", nodes, 2,
                                    topo::gigabit_ethernet_calibration());
}

Placement identity_placement(int tasks) {
  std::vector<topo::NodeId> nodes(static_cast<size_t>(tasks));
  for (int t = 0; t < tasks; ++t) nodes[static_cast<size_t>(t)] = t;
  return Placement(std::move(nodes));
}

flowsim::FluidRateProvider fluid() {
  return flowsim::FluidRateProvider(topo::gigabit_ethernet_calibration());
}

TEST(NonBlocking, IrecvOverlapsComputeWithTransfer) {
  // Receiver posts irecv, computes 0.5 s while 20 MB flows in, then waits.
  AppTrace trace(2);
  trace.push(0, Event::send(1, 20e6));
  trace.push(1, Event::irecv(0, 20e6));
  trace.push(1, Event::compute(0.5));
  trace.push(1, Event::wait_all());
  const auto provider = fluid();
  const auto result =
      run_simulation(trace, cluster(), identity_placement(2), provider);
  const double transfer = cluster().network().reference_time(20e6);  // ~0.21s
  // Full overlap: makespan ~ max(compute, transfer) = 0.5, not the sum.
  EXPECT_NEAR(result.makespan, 0.5, 0.02);
  EXPECT_LT(result.tasks[1].recv_blocked_seconds, 0.01);
  EXPECT_GT(transfer, 0.1);  // sanity: the transfer was worth overlapping
}

TEST(NonBlocking, WaitAllBlocksUntilTransferDone) {
  // No compute to hide the transfer: waitall blocks for its duration.
  AppTrace trace(2);
  trace.push(0, Event::send(1, 20e6));
  trace.push(1, Event::irecv(0, 20e6));
  trace.push(1, Event::wait_all());
  const auto provider = fluid();
  const auto result =
      run_simulation(trace, cluster(), identity_placement(2), provider);
  EXPECT_NEAR(result.tasks[1].recv_blocked_seconds,
              cluster().network().reference_time(20e6), 1e-3);
}

TEST(NonBlocking, WaitAllWithNothingOutstandingIsFree) {
  AppTrace trace(2);
  trace.push(0, Event::wait_all());
  trace.push(0, Event::compute(0.1));
  trace.push(1, Event::compute(0.1));
  const auto provider = fluid();
  const auto result =
      run_simulation(trace, cluster(), identity_placement(2), provider);
  EXPECT_NEAR(result.makespan, 0.1, 1e-9);
}

TEST(NonBlocking, IsendDoesNotBlockLargeMessages) {
  // A 20 MB Isend returns immediately; the sender computes while it drains.
  AppTrace trace(2);
  trace.push(0, Event::isend(1, 20e6));
  trace.push(0, Event::compute(0.5));
  trace.push(0, Event::wait_all());
  trace.push(1, Event::recv(0, 20e6));
  const auto provider = fluid();
  const auto result =
      run_simulation(trace, cluster(), identity_placement(2), provider);
  EXPECT_NEAR(result.makespan, 0.5, 0.02);
  EXPECT_DOUBLE_EQ(result.tasks[0].send_blocked_seconds, 0.0);
}

TEST(NonBlocking, MultipleIrecvsOneWaitAll) {
  AppTrace trace(3);
  trace.push(0, Event::irecv(1, 4e6));
  trace.push(0, Event::irecv(2, 4e6));
  trace.push(0, Event::wait_all());
  trace.push(1, Event::send(0, 4e6));
  trace.push(2, Event::send(0, 4e6));
  const auto provider = fluid();
  const auto result =
      run_simulation(trace, cluster(), identity_placement(3), provider);
  // Both transfers contend for node 0's downlink -> each is penalized.
  ASSERT_EQ(result.comms.size(), 2u);
  for (const auto& c : result.comms) EXPECT_GT(c.penalty, 1.2);
}

TEST(NonBlocking, SendRecvCycleDeadlocksButIrecvCycleDoesNot) {
  // Classic ring exchange: blocking send+recv everywhere deadlocks under
  // rendezvous...
  AppTrace bad(3);
  for (TaskId t = 0; t < 3; ++t) {
    bad.push(t, Event::send((t + 1) % 3, 1e6));
    bad.push(t, Event::recv((t + 2) % 3, 1e6));
  }
  const auto provider = fluid();
  EXPECT_THROW(
      run_simulation(bad, cluster(), identity_placement(3), provider), Error);

  // ...while posting the receives first is safe.
  AppTrace good(3);
  for (TaskId t = 0; t < 3; ++t) {
    good.push(t, Event::irecv((t + 2) % 3, 1e6));
    good.push(t, Event::send((t + 1) % 3, 1e6));
    good.push(t, Event::wait_all());
  }
  const auto result =
      run_simulation(good, cluster(), identity_placement(3), provider);
  EXPECT_EQ(result.comms.size(), 3u);
}

TEST(NonBlocking, TraceValidationCountsIsendAndIrecv) {
  AppTrace trace(2);
  trace.push(0, Event::isend(1, 1e3));
  trace.push(1, Event::irecv(0, 1e3));
  EXPECT_NO_THROW(trace.validate());
  trace.push(0, Event::isend(1, 1e3));  // now unmatched
  EXPECT_THROW(trace.validate(), Error);
}

}  // namespace
}  // namespace bwshare::sim
