// Randomized engine stress: generated traces (random pairings, sizes,
// placements and non-blocking patterns) must always terminate with
// consistent accounting — no deadlock, no lost transfer, penalties >= 1.
#include <gtest/gtest.h>

#include "flowsim/fluid_network.hpp"
#include "sim/engine.hpp"
#include "sim/schedule.hpp"
#include "util/rng.hpp"

namespace bwshare::sim {
namespace {

class EngineFuzz : public ::testing::TestWithParam<int> {};

TEST_P(EngineFuzz, RandomTracesTerminateConsistently) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 1000003 + 17);
  const int tasks = 3 + static_cast<int>(rng.below(6));
  AppTrace trace(tasks);

  int expected_comms = 0;
  const int rounds = 2 + static_cast<int>(rng.below(4));
  for (int round = 0; round < rounds; ++round) {
    // A random derangement-ish pairing: task i sends to a random other.
    for (TaskId src = 0; src < tasks; ++src) {
      if (rng.uniform() < 0.4) continue;
      TaskId dst = static_cast<TaskId>(rng.below(static_cast<uint64_t>(tasks)));
      if (dst == src) dst = (dst + 1) % tasks;
      const double bytes = rng.uniform() < 0.3 ? 1e3 : rng.uniform(1e5, 8e6);
      // Receivers always post non-blocking first, so no ordering deadlocks.
      trace.push(dst, Event::irecv(src, bytes));
      if (rng.uniform() < 0.5) {
        trace.push(src, Event::isend(dst, bytes));
        trace.push(src, Event::wait_all());
      } else {
        trace.push(src, Event::send(dst, bytes));
      }
      ++expected_comms;
    }
    for (TaskId t = 0; t < tasks; ++t) {
      if (rng.uniform() < 0.5)
        trace.push(t, Event::compute(rng.uniform(0.0, 0.01)));
      trace.push(t, Event::wait_all());
    }
    if (rng.uniform() < 0.3) trace.push_barrier_all();
  }
  ASSERT_NO_THROW(trace.validate());

  const auto cluster = topo::ClusterSpec::uniform(
      "fuzz", tasks, 2, topo::myrinet2000_calibration());
  const auto placement = make_placement(SchedulingPolicy::kRandom, cluster,
                                        tasks, rng());
  const flowsim::FluidRateProvider provider(cluster.network());
  const auto result = run_simulation(trace, cluster, placement, provider);

  EXPECT_EQ(result.comms.size(), static_cast<size_t>(expected_comms));
  for (const auto& c : result.comms) {
    EXPECT_GE(c.start, c.send_post - 1e-12);
    EXPECT_GE(c.finish, c.start);
    EXPECT_GE(c.penalty, 0.99);
    EXPECT_LE(c.finish, result.makespan + 1e-6);
  }
  for (const auto& t : result.tasks) {
    EXPECT_GE(t.finish_time, 0.0);
    EXPECT_LE(t.finish_time, result.makespan + 1e-12);
    EXPECT_GE(t.send_blocked_seconds, 0.0);
    EXPECT_GE(t.recv_blocked_seconds, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineFuzz, ::testing::Range(0, 30));

}  // namespace
}  // namespace bwshare::sim
