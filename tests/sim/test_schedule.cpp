#include "sim/schedule.hpp"

#include <gtest/gtest.h>

#include <map>

#include "util/error.hpp"

namespace bwshare::sim {
namespace {

topo::ClusterSpec cluster(int nodes, int cores) {
  return topo::ClusterSpec::uniform("test", nodes, cores,
                                    topo::gigabit_ethernet_calibration());
}

TEST(Schedule, RoundRobinNodeCycles) {
  // 4 nodes x 2 cores, 6 tasks: 0,1,2,3 then wrap to 0,1.
  const auto p = make_placement(SchedulingPolicy::kRoundRobinNode,
                                cluster(4, 2), 6);
  EXPECT_EQ(p.nodes(), (std::vector<topo::NodeId>{0, 1, 2, 3, 0, 1}));
}

TEST(Schedule, RoundRobinProcessorFillsNodes) {
  // 4 nodes x 2 cores, 6 tasks: 0,0,1,1,2,2.
  const auto p = make_placement(SchedulingPolicy::kRoundRobinProcessor,
                                cluster(4, 2), 6);
  EXPECT_EQ(p.nodes(), (std::vector<topo::NodeId>{0, 0, 1, 1, 2, 2}));
}

TEST(Schedule, RandomIsDeterministicPerSeed) {
  const auto a = make_placement(SchedulingPolicy::kRandom, cluster(8, 2), 12, 7);
  const auto b = make_placement(SchedulingPolicy::kRandom, cluster(8, 2), 12, 7);
  EXPECT_EQ(a.nodes(), b.nodes());
  const auto c = make_placement(SchedulingPolicy::kRandom, cluster(8, 2), 12, 8);
  EXPECT_NE(a.nodes(), c.nodes());
}

TEST(Schedule, RandomRespectsCoreCapacity) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    const auto p =
        make_placement(SchedulingPolicy::kRandom, cluster(4, 2), 8, seed);
    std::map<topo::NodeId, int> count;
    for (int t = 0; t < p.num_tasks(); ++t) ++count[p.node_of(t)];
    for (const auto& [node, n] : count) EXPECT_LE(n, 2) << "node " << node;
  }
}

TEST(Schedule, AllPoliciesRespectCapacity) {
  for (const auto policy :
       {SchedulingPolicy::kRoundRobinNode, SchedulingPolicy::kRoundRobinProcessor,
        SchedulingPolicy::kRandom}) {
    const auto c = cluster(3, 2);
    const auto p = make_placement(policy, c, 6);
    std::map<topo::NodeId, int> count;
    for (int t = 0; t < 6; ++t) ++count[p.node_of(t)];
    for (const auto& [node, n] : count) EXPECT_LE(n, 2);
  }
}

TEST(Schedule, Colocation) {
  const auto p = make_placement(SchedulingPolicy::kRoundRobinProcessor,
                                cluster(4, 2), 4);
  EXPECT_TRUE(p.colocated(0, 1));
  EXPECT_FALSE(p.colocated(1, 2));
}

TEST(Schedule, CapacityValidation) {
  EXPECT_THROW(make_placement(SchedulingPolicy::kRoundRobinNode, cluster(2, 1), 3),
               Error);
  EXPECT_THROW(make_placement(SchedulingPolicy::kRandom, cluster(2, 1), 0),
               Error);
}

TEST(Schedule, PolicyNames) {
  EXPECT_EQ(to_string(SchedulingPolicy::kRoundRobinNode), "RRN");
  EXPECT_EQ(scheduling_policy_from_string("RRP"),
            SchedulingPolicy::kRoundRobinProcessor);
  EXPECT_EQ(scheduling_policy_from_string("random"), SchedulingPolicy::kRandom);
  EXPECT_THROW((void)scheduling_policy_from_string("fifo"), Error);
}

}  // namespace
}  // namespace bwshare::sim
