#include "models/baselines.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

#include "graph/schemes.hpp"
#include "models/registry.hpp"
#include "topo/network.hpp"

namespace bwshare::models {
namespace {

TEST(LogGPBaseline, IgnoresSharingEntirely) {
  const LinearLogGPModel model;
  for (int fan = 1; fan <= 5; ++fan) {
    const auto g = graph::schemes::outgoing_fan(fan);
    for (double p : model.penalties(g)) EXPECT_DOUBLE_EQ(p, 1.0);
  }
}

TEST(LogGPBaseline, TimeIsLinearInMessageSize) {
  LinearLogGPModel::Params params;
  params.latency = 1e-5;
  params.overhead = 1e-6;
  params.gap_per_byte = 1e-8;
  const LinearLogGPModel model(params);
  graph::CommGraph g;
  g.add("small", 0, 1, 1e6);
  g.add("large", 2, 3, 2e6);
  const auto cal = topo::gigabit_ethernet_calibration();
  const auto t = model.predict_times(g, cal);
  // Doubling the size roughly doubles the G term.
  const double fixed = params.latency + 2 * params.overhead;
  // (the "-1" in the G term shifts the ratio by ~1e-6)
  EXPECT_NEAR((t[1] - fixed) / (t[0] - fixed), 2.0, 1e-5);
}

TEST(KimLeeBaseline, UsesMaxConflictMultiplicity) {
  // a:0->1 in a 3-fan: multiplicity 3; add d:4->1 so a's destination sees 2;
  // a keeps max(3, 2) = 3 while d gets max(1, 2) = 2.
  const auto g = graph::schemes::fig2_scheme(4);
  const KimLeeModel model;
  const auto p = model.penalties(g);
  const auto id = [&](const char* label) {
    return static_cast<size_t>(*g.find(label));
  };
  EXPECT_DOUBLE_EQ(p[id("a")], 3.0);
  EXPECT_DOUBLE_EQ(p[id("b")], 3.0);
  EXPECT_DOUBLE_EQ(p[id("d")], 2.0);
}

TEST(KimLeeBaseline, NoConflictMeansUnitPenalty) {
  const auto g = graph::schemes::ring(6);
  const KimLeeModel model;
  for (double p : model.penalties(g)) EXPECT_DOUBLE_EQ(p, 1.0);
}

TEST(Registry, BuildsEveryRegisteredModel) {
  for (const auto& name : model_names()) {
    const auto model = make_model(name);
    ASSERT_NE(model, nullptr) << name;
    EXPECT_EQ(model->name(), name);
  }
}

TEST(Registry, UnknownNameThrows) { EXPECT_THROW(make_model("bogus"), Error); }

TEST(Registry, ModelForTechMatchesPaperAssignment) {
  EXPECT_EQ(model_for(topo::NetworkTech::kGigabitEthernet)->name(), "gige");
  EXPECT_EQ(model_for(topo::NetworkTech::kMyrinet2000)->name(), "myrinet");
  EXPECT_EQ(model_for(topo::NetworkTech::kInfinibandInfinihost3)->name(),
            "infiniband");
}

}  // namespace
}  // namespace bwshare::models
