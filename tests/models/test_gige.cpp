// Gigabit Ethernet model tests against the paper's §V-A formulas and the
// fig-2/fig-4 arithmetic.
#include "models/gige.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

#include "graph/schemes.hpp"
#include "topo/network.hpp"

namespace bwshare::models {
namespace {

constexpr double kBeta = 0.75;
constexpr double kGammaO = 0.115;
constexpr double kGammaI = 0.036;

TEST(GigeModel, SingleCommunicationHasUnitPenalty) {
  const auto g = graph::schemes::outgoing_fan(1);
  const GigabitEthernetModel model;
  EXPECT_EQ(model.penalties(g), std::vector<double>{1.0});
}

TEST(GigeModel, SymmetricOutgoingFanMatchesFig2) {
  // Fig 2 / §V-A: penalty of a symmetric outgoing fan is Δo·β
  // (1.5 for two comms, 2.25 for three with β = 0.75).
  const GigabitEthernetModel model;
  for (int fan = 2; fan <= 4; ++fan) {
    const auto g = graph::schemes::outgoing_fan(fan);
    for (double p : model.penalties(g))
      EXPECT_NEAR(p, fan * kBeta, 1e-12) << "fan " << fan;
  }
}

TEST(GigeModel, SymmetricFanEveryoneIsStronglySlow) {
  // All destinations have in-degree 1, so Cm_o is the whole fan and the
  // boost term vanishes: p = Δo·β·(1 + γo·0).
  const auto g = graph::schemes::outgoing_fan(3);
  const GigabitEthernetModel model;
  for (graph::CommId i = 0; i < g.size(); ++i) {
    const auto b = model.breakdown(g, i);
    EXPECT_TRUE(b.in_cm_o);
    EXPECT_EQ(b.card_cm_o, 3);
    EXPECT_NEAR(b.p_out, 3 * kBeta, 1e-12);
  }
}

TEST(GigeModel, Fig4BreakdownOfCommA) {
  // In the fig-4 scheme, a:0->1 competes with b:0->2 and c:0->3; c's
  // destination has in-degree 3, so Cm_o = {c} and a is *not* strongly slow:
  // p_o(a) = 3β(1 − γo).
  const auto g = graph::schemes::fig4_scheme();
  const GigabitEthernetModel model;
  const auto a = g.find("a");
  ASSERT_TRUE(a.has_value());
  const auto b = model.breakdown(g, *a);
  EXPECT_EQ(b.delta_o, 3);
  EXPECT_FALSE(b.in_cm_o);
  EXPECT_EQ(b.card_cm_o, 1);
  EXPECT_NEAR(b.p_out, 3 * kBeta * (1.0 - kGammaO), 1e-12);
  // a's destination (node 1) has in-degree 1: no reception conflict.
  EXPECT_DOUBLE_EQ(b.p_in, 1.0);
  EXPECT_NEAR(b.penalty, 3 * kBeta * (1.0 - kGammaO), 1e-12);
}

TEST(GigeModel, Fig4BreakdownOfCommF) {
  // f:4->3 competes for node 3 with c (Δo=3) and e (Δo=2): Cm_i = {c},
  // f is not strongly slow: p_i(f) = 3β(1 − γi). Its own node sends only f.
  const auto g = graph::schemes::fig4_scheme();
  const GigabitEthernetModel model;
  const auto f = g.find("f");
  ASSERT_TRUE(f.has_value());
  const auto b = model.breakdown(g, *f);
  EXPECT_EQ(b.delta_o, 1);
  EXPECT_DOUBLE_EQ(b.p_out, 1.0);
  EXPECT_EQ(b.delta_i, 3);
  EXPECT_FALSE(b.in_cm_i);
  EXPECT_EQ(b.card_cm_i, 1);
  EXPECT_NEAR(b.penalty, 3 * kBeta * (1.0 - kGammaI), 1e-12);
}

TEST(GigeModel, Fig4PredictedTimesMatchPaperTable) {
  // Paper fig 4 prints predicted times for 4 MB messages. With
  // t_ref ≈ 0.0477 s the model reproduces the printed predictions for
  // a, b, d, e, f. (For c the paper prints the reception penalty; the
  // model definition max(p_o, p_i) picks the larger emission penalty —
  // see DESIGN.md §2.)
  const auto g = graph::schemes::fig4_scheme(4e6);
  const GigabitEthernetModel model;

  auto cal = topo::gigabit_ethernet_calibration();
  // Back out the paper's effective reference rate: t_ref = 0.0477 s for
  // 4 MB including latency.
  const double t_ref = 0.0477;
  cal.latency = 0.0;
  cal.link_bandwidth = 4e6 / t_ref / cal.single_stream_efficiency;

  const auto times = model.predict_times(g, cal);
  const auto id = [&](const char* label) {
    return static_cast<size_t>(*g.find(label));
  };
  EXPECT_NEAR(times[id("a")], 0.095, 0.002);
  EXPECT_NEAR(times[id("b")], 0.095, 0.002);
  EXPECT_NEAR(times[id("d")], 0.069, 0.002);
  EXPECT_NEAR(times[id("e")], 0.103, 0.002);
  EXPECT_NEAR(times[id("f")], 0.103, 0.002);
  // c: model max(p_o, p_i) gives 0.132; the paper prints 0.113 (= p_i).
  EXPECT_NEAR(times[id("c")], 0.132, 0.002);
}

TEST(GigeModel, StronglySlowCommIsSlowerThanSiblings) {
  // d:4->1 raises node 1's in-degree; a:0->1 becomes the strongly slow
  // outgoing comm of node 0 and must be predicted slower than b and c.
  const auto g = graph::schemes::fig2_scheme(4);
  const GigabitEthernetModel model;
  const auto p = model.penalties(g);
  const auto id = [&](const char* label) {
    return static_cast<size_t>(*g.find(label));
  };
  EXPECT_GT(p[id("a")], p[id("b")]);
  EXPECT_DOUBLE_EQ(p[id("b")], p[id("c")]);
  // d itself: Δo=1, so only the reception side penalizes it.
  EXPECT_LT(p[id("d")], p[id("b")]);
  EXPECT_GT(p[id("d")], 1.0);
}

TEST(GigeModel, PenaltyNeverBelowOne) {
  // Even with aggressive parameters the clamp holds.
  GigeParams params;
  params.beta = 0.4;  // 2·β < 1 would "predict" speedup without the clamp
  params.gamma_o = 0.5;
  params.gamma_i = 0.5;
  const GigabitEthernetModel model(params);
  for (int fan = 1; fan <= 4; ++fan) {
    const auto g = graph::schemes::outgoing_fan(fan);
    for (double p : model.penalties(g)) EXPECT_GE(p, 1.0);
  }
}

TEST(GigeModel, RejectsInvalidParameters) {
  GigeParams bad;
  bad.beta = 0.0;
  EXPECT_THROW(GigabitEthernetModel{bad}, Error);
  bad = GigeParams{};
  bad.gamma_o = 1.5;
  EXPECT_THROW(GigabitEthernetModel{bad}, Error);
}

TEST(GigeModel, IntraNodeCommsAreExempt) {
  graph::CommGraph g;
  g.add("shm", 0, 0, 1e6);
  g.add("a", 0, 1, 1e6);
  g.add("b", 0, 2, 1e6);
  const GigabitEthernetModel model;
  const auto p = model.penalties(g);
  EXPECT_DOUBLE_EQ(p[0], 1.0);
  EXPECT_NEAR(p[1], 2 * kBeta, 1e-12);
}

// Parameterized monotonicity property: widening an outgoing fan never
// reduces anyone's penalty.
class GigeMonotonicityTest : public ::testing::TestWithParam<int> {};

TEST_P(GigeMonotonicityTest, FanPenaltyMonotoneInDegree) {
  const int fan = GetParam();
  const GigabitEthernetModel model;
  const auto smaller = model.penalties(graph::schemes::outgoing_fan(fan));
  const auto larger = model.penalties(graph::schemes::outgoing_fan(fan + 1));
  EXPECT_LE(smaller[0], larger[0] + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Fans, GigeMonotonicityTest, ::testing::Range(1, 8));

}  // namespace
}  // namespace bwshare::models
