// Closed-loop tests of the parameter estimators (§V-A): measuring a
// synthetic substrate that *is* the GigE model must recover its parameters.
#include "models/estimation.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

#include "models/gige.hpp"
#include "topo/network.hpp"

namespace bwshare::models {
namespace {

/// A MeasureFn backed by a GigE model with known parameters.
MeasureFn model_substrate(const GigeParams& params) {
  return [params](const graph::CommGraph& g) {
    const GigabitEthernetModel model(params);
    auto cal = topo::gigabit_ethernet_calibration();
    cal.latency = 0.0;  // keep T strictly proportional to penalty
    return model.predict_times(g, cal);
  };
}

TEST(Estimation, RecoversBetaExactly) {
  GigeParams truth;
  truth.beta = 0.8;
  const auto est = estimate_beta(model_substrate(truth));
  EXPECT_NEAR(est.beta, truth.beta, 1e-9);
  // Every fan degree individually agrees.
  for (double b : est.per_degree) EXPECT_NEAR(b, truth.beta, 1e-9);
}

TEST(Estimation, RecoversGammasExactly) {
  GigeParams truth;  // defaults: β=0.75, γo=0.115, γi=0.036
  const auto gamma = estimate_gammas(model_substrate(truth), truth.beta);
  EXPECT_NEAR(gamma.gamma_o, truth.gamma_o, 1e-9);
  EXPECT_NEAR(gamma.gamma_i, truth.gamma_i, 1e-9);
}

TEST(Estimation, FullCalibrationRoundTrips) {
  GigeParams truth;
  truth.beta = 0.7;
  truth.gamma_o = 0.2;
  truth.gamma_i = 0.05;
  const auto params = estimate_gige_params(model_substrate(truth));
  EXPECT_NEAR(params.beta, truth.beta, 1e-9);
  EXPECT_NEAR(params.gamma_o, truth.gamma_o, 1e-9);
  EXPECT_NEAR(params.gamma_i, truth.gamma_i, 1e-9);
}

TEST(Estimation, ReferenceTimeIsSingleCommTime) {
  GigeParams truth;
  const auto measure = model_substrate(truth);
  const double t_ref = measure_reference_time(measure, 20e6);
  const auto cal = topo::gigabit_ethernet_calibration();
  EXPECT_NEAR(t_ref, 20e6 / cal.reference_bandwidth(), 1e-9);
}

TEST(Estimation, GammasClampedToValidDomain) {
  // A perfectly fair substrate (γ = 0 exactly) must not yield negative γ.
  GigeParams truth;
  truth.gamma_o = 0.0;
  truth.gamma_i = 0.0;
  const auto params = estimate_gige_params(model_substrate(truth));
  EXPECT_GE(params.gamma_o, 0.0);
  EXPECT_GE(params.gamma_i, 0.0);
}

TEST(Estimation, RequiresAtLeastDegreeTwo) {
  GigeParams truth;
  EXPECT_THROW(estimate_beta(model_substrate(truth), 20e6, 1), Error);
}

}  // namespace
}  // namespace bwshare::models
