// InfiniBand extension-model tests against the paper's fig-2 InfiniHost III
// column.
#include "models/infiniband.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

#include "graph/schemes.hpp"

namespace bwshare::models {
namespace {

TEST(InfinibandModel, SingleCommunication) {
  const auto g = graph::schemes::outgoing_fan(1);
  const InfinibandModel model;
  EXPECT_EQ(model.penalties(g), std::vector<double>{1.0});
}

TEST(InfinibandModel, Fig2TwoWayFan) {
  // Paper fig 2 scheme S2: a = b = 1.725.
  const auto g = graph::schemes::fig2_scheme(2);
  const InfinibandModel model;
  for (double p : model.penalties(g)) EXPECT_NEAR(p, 1.725, 0.02);
}

TEST(InfinibandModel, Fig2ThreeWayFan) {
  // Paper fig 2 scheme S3: a = b = c = 2.61.
  const auto g = graph::schemes::fig2_scheme(3);
  const InfinibandModel model;
  for (double p : model.penalties(g)) EXPECT_NEAR(p, 2.61, 0.02);
}

TEST(InfinibandModel, Fig2DuplexConflictScheme5) {
  // Paper fig 2 scheme S5: outgoing a,b,c ≈ 3.66, incoming e ≈ 2.035.
  const auto g = graph::schemes::fig2_scheme(5);
  const InfinibandModel model;
  const auto p = model.penalties(g);
  const auto id = [&](const char* label) {
    return static_cast<size_t>(*g.find(label));
  };
  EXPECT_NEAR(p[id("a")], 3.66, 0.05);
  EXPECT_NEAR(p[id("b")], 3.66, 0.05);
  EXPECT_NEAR(p[id("c")], 3.66, 0.05);
  EXPECT_NEAR(p[id("e")], 2.035, 0.05);
}

TEST(InfinibandModel, SharesLessFairlyThanGigeButBetterThanMyrinet) {
  // Fig 2's qualitative ordering on a 3-fan: GigE 2.25 < IB 2.61 < Myrinet 3.
  const auto g = graph::schemes::outgoing_fan(3);
  const InfinibandModel model;
  for (double p : model.penalties(g)) {
    EXPECT_GT(p, 2.25);
    EXPECT_LT(p, 3.0);
  }
}

TEST(InfinibandModel, PenaltyNeverBelowOne) {
  for (int k = 1; k <= 6; ++k) {
    const auto g = graph::schemes::fig2_scheme(k);
    const InfinibandModel model;
    for (double p : model.penalties(g)) EXPECT_GE(p, 1.0);
  }
}

TEST(InfinibandModel, RejectsInvalidParameters) {
  InfinibandParams bad;
  bad.beta = -1.0;
  EXPECT_THROW(InfinibandModel{bad}, Error);
}

}  // namespace
}  // namespace bwshare::models
