// Tests for the maximal-independent-set enumerator underlying the Myrinet
// model, including exhaustive cross-checks on random graphs.
#include "models/mis.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/rng.hpp"

namespace bwshare::models {
namespace {

MisResult enumerate(const AdjacencyMatrix& g) {
  return enumerate_maximal_independent_sets(g);
}

TEST(Mis, EmptyGraphHasOneEmptySet) {
  const AdjacencyMatrix g(0);
  const auto result = enumerate(g);
  ASSERT_EQ(result.sets.size(), 1u);
  EXPECT_TRUE(result.sets[0].empty());
}

TEST(Mis, IsolatedVerticesFormOneFullSet) {
  const AdjacencyMatrix g(4);
  const auto result = enumerate(g);
  ASSERT_EQ(result.sets.size(), 1u);
  EXPECT_EQ(result.sets[0], (std::vector<int>{0, 1, 2, 3}));
}

TEST(Mis, TriangleHasThreeSingletons) {
  AdjacencyMatrix g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  const auto result = enumerate(g);
  ASSERT_EQ(result.sets.size(), 3u);
  for (const auto& s : result.sets) EXPECT_EQ(s.size(), 1u);
}

TEST(Mis, PathOfThree) {
  // 0-1-2: maximal independent sets {0,2} and {1}.
  AdjacencyMatrix g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const auto result = enumerate(g);
  ASSERT_EQ(result.sets.size(), 2u);
  EXPECT_EQ(result.sets[0], (std::vector<int>{0, 2}));
  EXPECT_EQ(result.sets[1], (std::vector<int>{1}));
}

TEST(Mis, StarGraph) {
  // Center 0 adjacent to 1..4: sets {1,2,3,4} and {0}.
  AdjacencyMatrix g(5);
  for (int leaf = 1; leaf < 5; ++leaf) g.add_edge(0, leaf);
  const auto result = enumerate(g);
  ASSERT_EQ(result.sets.size(), 2u);
  EXPECT_EQ(result.sets[0], (std::vector<int>{0}));
  EXPECT_EQ(result.sets[1], (std::vector<int>{1, 2, 3, 4}));
}

TEST(Mis, EmissionCounts) {
  AdjacencyMatrix g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const auto result = enumerate(g);
  const auto counts = emission_counts(result, 3);
  EXPECT_EQ(counts, (std::vector<uint64_t>{1, 1, 1}));
}

TEST(Mis, EnumerationCapTruncates) {
  // A perfect matching on 2k vertices has 2^k maximal independent sets...
  // actually each edge contributes "pick one endpoint": 2^k sets.
  AdjacencyMatrix g(16);
  for (int i = 0; i < 16; i += 2) g.add_edge(i, i + 1);
  const auto capped = enumerate_maximal_independent_sets(g, 10);
  EXPECT_FALSE(capped.complete);
  EXPECT_LE(capped.sets.size(), 10u);
  const auto full = enumerate_maximal_independent_sets(g);
  EXPECT_TRUE(full.complete);
  EXPECT_EQ(full.sets.size(), 256u);  // 2^8
}

// Brute-force cross-check on random graphs up to 12 vertices.
class MisRandomTest : public ::testing::TestWithParam<int> {};

std::vector<std::vector<int>> brute_force_mis(const AdjacencyMatrix& g) {
  const int n = g.size();
  std::vector<std::vector<int>> sets;
  for (unsigned mask = 0; mask < (1u << n); ++mask) {
    bool independent = true;
    for (int a = 0; a < n && independent; ++a)
      for (int b = a + 1; b < n && independent; ++b)
        if ((mask >> a & 1) && (mask >> b & 1) && g.adjacent(a, b))
          independent = false;
    if (!independent) continue;
    bool maximal = true;
    for (int v = 0; v < n && maximal; ++v) {
      if (mask >> v & 1) continue;
      bool blocked = false;
      for (int a = 0; a < n; ++a)
        if ((mask >> a & 1) && g.adjacent(a, v)) blocked = true;
      if (!blocked) maximal = false;
    }
    if (!maximal) continue;
    std::vector<int> set;
    for (int v = 0; v < n; ++v)
      if (mask >> v & 1) set.push_back(v);
    sets.push_back(std::move(set));
  }
  std::sort(sets.begin(), sets.end());
  return sets;
}

TEST_P(MisRandomTest, MatchesBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 3);
  const int n = 2 + static_cast<int>(rng.below(11));  // up to 12 vertices
  AdjacencyMatrix g(n);
  for (int a = 0; a < n; ++a)
    for (int b = a + 1; b < n; ++b)
      if (rng.uniform() < 0.35) g.add_edge(a, b);
  const auto result = enumerate(g);
  ASSERT_TRUE(result.complete);
  EXPECT_EQ(result.sets, brute_force_mis(g));
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, MisRandomTest, ::testing::Range(0, 50));

}  // namespace
}  // namespace bwshare::models
