// Myrinet model tests. The central anchor is the paper's own worked example:
// Fig 5 (state sets) and Fig 6 (penalty calculation) must be reproduced
// *exactly*.
#include "models/myrinet.hpp"

#include <gtest/gtest.h>

#include "graph/schemes.hpp"
#include "util/strings.hpp"

namespace bwshare::models {
namespace {

using graph::CommGraph;

TEST(MyrinetModel, Fig5StateSetsCountIsFive) {
  const auto g = graph::schemes::fig5_scheme();
  const MyrinetModel model;
  const auto analysis = model.analyze(g, /*materialize_sets=*/true);
  EXPECT_TRUE(analysis.complete);
  EXPECT_EQ(analysis.num_state_sets, 5u);
  EXPECT_EQ(analysis.state_sets.size(), 5u);
}

TEST(MyrinetModel, Fig5StateSetsAreMaximalAndIndependent) {
  const auto g = graph::schemes::fig5_scheme();
  const MyrinetModel model;
  const auto analysis = model.analyze(g, /*materialize_sets=*/true);
  const graph::ConflictGraph conflicts(
      g, graph::ConflictRule::kSharedEndpointSameDirection);

  for (const auto& set : analysis.state_sets) {
    // Independence: no two sending comms conflict.
    for (size_t i = 0; i < set.size(); ++i)
      for (size_t j = i + 1; j < set.size(); ++j)
        EXPECT_FALSE(conflicts.conflicts(set[i], set[j]))
            << "conflicting pair in send set";
    // Maximality: every non-member conflicts with some member.
    for (graph::CommId c = 0; c < g.size(); ++c) {
      if (std::find(set.begin(), set.end(), c) != set.end()) continue;
      bool blocked = false;
      for (graph::CommId s : set) blocked = blocked || conflicts.conflicts(c, s);
      EXPECT_TRUE(blocked) << "comm " << g.label(c)
                           << " could be added to a send set";
    }
  }
}

TEST(MyrinetModel, Fig6EmissionSums) {
  // Paper fig 6 "Sum" row: a=1, b=2, c=2, d=2, e=2, f=3.
  const auto g = graph::schemes::fig5_scheme();
  const MyrinetModel model;
  const auto analysis = model.analyze(g);
  const std::vector<uint64_t> expected{1, 2, 2, 2, 2, 3};
  EXPECT_EQ(analysis.emission, expected);
}

TEST(MyrinetModel, Fig6MinimumRow) {
  // Paper fig 6 "Minimum" row: a=1, b=1, c=1, d=2, e=2, f=2.
  const auto g = graph::schemes::fig5_scheme();
  const MyrinetModel model;
  const auto analysis = model.analyze(g);
  const std::vector<uint64_t> expected{1, 1, 1, 2, 2, 2};
  EXPECT_EQ(analysis.min_emission, expected);
}

TEST(MyrinetModel, Fig6Penalties) {
  // Paper fig 6 "penalty" row: a=b=c=5, d=e=f=2.5.
  const auto g = graph::schemes::fig5_scheme();
  const MyrinetModel model;
  const auto penalties = model.penalties(g);
  const std::vector<double> expected{5.0, 5.0, 5.0, 2.5, 2.5, 2.5};
  ASSERT_EQ(penalties.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i)
    EXPECT_DOUBLE_EQ(penalties[i], expected[i]) << "comm " << i;
}

TEST(MyrinetModel, SingleCommunicationHasUnitPenalty) {
  const auto g = graph::schemes::outgoing_fan(1);
  const MyrinetModel model;
  EXPECT_EQ(model.penalties(g), std::vector<double>{1.0});
}

TEST(MyrinetModel, OutgoingFanPenaltyEqualsFanDegree) {
  // k mutually conflicting comms -> k singleton state sets -> penalty k.
  for (int fan = 2; fan <= 6; ++fan) {
    const auto g = graph::schemes::outgoing_fan(fan);
    const MyrinetModel model;
    const auto penalties = model.penalties(g);
    for (double p : penalties) EXPECT_DOUBLE_EQ(p, fan) << "fan " << fan;
  }
}

TEST(MyrinetModel, IncomingFanPenaltyEqualsFanDegree) {
  for (int fan = 2; fan <= 6; ++fan) {
    const auto g = graph::schemes::incoming_fan(fan);
    const MyrinetModel model;
    const auto penalties = model.penalties(g);
    for (double p : penalties) EXPECT_DOUBLE_EQ(p, fan) << "fan " << fan;
  }
}

TEST(MyrinetModel, RingWithOneTaskPerNodeIsConflictFree) {
  // Ring comms share hosts only in opposite directions, which the paper's
  // Myrinet conflict rule ignores -> all penalties 1.
  const auto g = graph::schemes::ring(8);
  const MyrinetModel model;
  for (double p : model.penalties(g)) EXPECT_DOUBLE_EQ(p, 1.0);
}

TEST(MyrinetModel, SharedHostRuleMakesRingConflicted) {
  // Ablation rule: treating income/outgo as a conflict serializes the ring.
  MyrinetParams params;
  params.rule = graph::ConflictRule::kSharedHost;
  const MyrinetModel model(params);
  const auto g = graph::schemes::ring(6);
  for (double p : model.penalties(g)) EXPECT_GT(p, 1.0);
}

TEST(MyrinetModel, DisconnectedComponentsFactorize) {
  // Two independent 2-fans: per-component 2 sets; penalties stay 2 and the
  // global state count is 4.
  CommGraph g;
  g.add("a", 0, 1, 1e6);
  g.add("b", 0, 2, 1e6);
  g.add("c", 3, 4, 1e6);
  g.add("d", 3, 5, 1e6);
  const MyrinetModel model;
  const auto analysis = model.analyze(g);
  EXPECT_EQ(analysis.num_state_sets, 4u);
  for (double p : analysis.penalty) EXPECT_DOUBLE_EQ(p, 2.0);
  // Emission: each comm sends in 1 of its component's 2 sets, times the
  // other component's 2 sets.
  for (uint64_t e : analysis.emission) EXPECT_EQ(e, 2u);
}

TEST(MyrinetModel, IntraNodeCommsAreExemptFromPenalties) {
  CommGraph g;
  g.add("shm", 2, 2, 1e6);  // same node: shared-memory copy
  g.add("a", 0, 1, 1e6);
  g.add("b", 0, 3, 1e6);
  const MyrinetModel model;
  const auto penalties = model.penalties(g);
  EXPECT_DOUBLE_EQ(penalties[0], 1.0);
  EXPECT_DOUBLE_EQ(penalties[1], 2.0);
  EXPECT_DOUBLE_EQ(penalties[2], 2.0);
}

TEST(MyrinetModel, EmptyGraph) {
  const CommGraph g;
  const MyrinetModel model;
  EXPECT_TRUE(model.penalties(g).empty());
  const auto analysis = model.analyze(g);
  EXPECT_EQ(analysis.num_state_sets, 1u);
}

// Property sweep: penalties are always >= 1 and at most the number of
// communications, on a family of random-ish graphs.
class MyrinetPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MyrinetPropertyTest, PenaltiesBoundedByCommCount) {
  const int seed = GetParam();
  // Deterministic pseudo-random graph from the seed.
  CommGraph g;
  uint64_t state = static_cast<uint64_t>(seed) * 2654435761u + 1;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  const int comms = 2 + static_cast<int>(next() % 10);
  const int nodes = 3 + static_cast<int>(next() % 6);
  for (int i = 0; i < comms; ++i) {
    const int src = static_cast<int>(next() % nodes);
    int dst = static_cast<int>(next() % nodes);
    if (dst == src) dst = (dst + 1) % nodes;
    g.add(strformat("c%d", i), src, dst, 1e6);
  }
  const MyrinetModel model;
  const auto analysis = model.analyze(g);
  ASSERT_TRUE(analysis.complete);
  for (double p : analysis.penalty) {
    EXPECT_GE(p, 1.0);
    // A penalty can exceed the comm count (state-set counts grow up to
    // 3^(n/3) by Moon–Moser), but never the number of state sets.
    EXPECT_LE(p, static_cast<double>(analysis.num_state_sets));
  }
  // Emission coefficients never exceed the state-set count.
  for (uint64_t e : analysis.emission) EXPECT_LE(e, analysis.num_state_sets);
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, MyrinetPropertyTest,
                         ::testing::Range(0, 40));

}  // namespace
}  // namespace bwshare::models
