#include "mpi/minimpi.hpp"

#include <gtest/gtest.h>

#include "flowsim/fluid_network.hpp"
#include "sim/engine.hpp"
#include "util/error.hpp"

namespace bwshare::mpi {
namespace {

TEST(MiniMpi, RecordsPerRankPrograms) {
  MiniMpi mpi(3);
  mpi.run([](Rank& self) {
    self.compute(0.1 * (self.rank() + 1));
    if (self.rank() == 0) self.send(1, 1e6);
    if (self.rank() == 1) self.recv(0, 1e6);
    self.barrier();
  });
  const auto& trace = mpi.trace();
  EXPECT_EQ(trace.num_tasks(), 3);
  EXPECT_EQ(trace.program(0).size(), 3u);  // compute, send, barrier
  EXPECT_EQ(trace.program(2).size(), 2u);  // compute, barrier
}

TEST(MiniMpi, RingProgramRunsOnEngine) {
  const int p = 4;
  MiniMpi mpi(p);
  mpi.run([p](Rank& self) {
    // Classic ring: rank 0 starts, everyone forwards.
    if (self.rank() == 0) {
      self.send(1, 4e6);
      self.recv(p - 1, 4e6);
    } else {
      self.recv(self.rank() - 1, 4e6);
      self.send((self.rank() + 1) % p, 4e6);
    }
  });
  const auto cluster = topo::ClusterSpec::uniform(
      "t", p, 1, topo::myrinet2000_calibration());
  const auto placement = sim::make_placement(
      sim::SchedulingPolicy::kRoundRobinNode, cluster, p);
  const flowsim::FluidRateProvider provider(cluster.network());
  const auto result =
      sim::run_simulation(mpi.trace(), cluster, placement, provider);
  // Four sequential hops around the ring.
  const double hop = cluster.network().reference_time(4e6);
  EXPECT_NEAR(result.makespan, 4 * hop, 4 * hop * 0.05);
}

TEST(MiniMpi, SelfSendRejected) {
  MiniMpi mpi(2);
  EXPECT_THROW(mpi.run([](Rank& self) { self.send(self.rank(), 1.0); }),
               Error);
}

TEST(MiniMpi, RangeChecks) {
  MiniMpi mpi(2);
  EXPECT_THROW(mpi.run([](Rank& self) {
    if (self.rank() == 0) self.send(5, 1.0);
  }), Error);
  EXPECT_THROW(MiniMpi{0}, Error);
}

TEST(MiniMpi, UnmatchedTrafficFailsValidation) {
  MiniMpi mpi(2);
  mpi.run([](Rank& self) {
    if (self.rank() == 0) self.send(1, 1.0);  // no matching recv
  });
  EXPECT_THROW((void)mpi.trace(), Error);
}

}  // namespace
}  // namespace bwshare::mpi
