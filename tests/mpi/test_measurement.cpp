// The §IV-B measurement software must reproduce the substrate's fig-2
// penalties end-to-end (through real simulated MPI jobs with barriers).
#include "mpi/measurement.hpp"

#include <gtest/gtest.h>

#include "graph/schemes.hpp"
#include "models/gige.hpp"
#include "sim/rate_model.hpp"
#include "util/error.hpp"

namespace bwshare::mpi {
namespace {

topo::ClusterSpec gige_cluster() {
  return topo::ClusterSpec::uniform("gige", 8, 2,
                                    topo::gigabit_ethernet_calibration());
}

TEST(Measurement, ReferenceTimeMatchesCalibration) {
  const auto cluster = gige_cluster();
  const flowsim::FluidRateProvider provider(cluster.network());
  const auto m = measure_scheme_penalties(graph::schemes::outgoing_fan(1),
                                          cluster, provider);
  EXPECT_NEAR(m.t_ref, cluster.network().reference_time(20e6), 1e-3);
  EXPECT_NEAR(m.penalties[0], 1.0, 0.01);
}

TEST(Measurement, Fig2FanPenaltiesOnSubstrate) {
  const auto cluster = gige_cluster();
  const flowsim::FluidRateProvider provider(cluster.network());
  const auto m2 = measure_scheme_penalties(graph::schemes::fig2_scheme(2),
                                           cluster, provider);
  for (double p : m2.penalties) EXPECT_NEAR(p, 1.5, 0.03);
  const auto m3 = measure_scheme_penalties(graph::schemes::fig2_scheme(3),
                                           cluster, provider);
  for (double p : m3.penalties) EXPECT_NEAR(p, 2.25, 0.05);
}

TEST(Measurement, ModelProviderReproducesModelPenalties) {
  const auto cluster = gige_cluster();
  const auto model = std::make_shared<models::GigabitEthernetModel>();
  const sim::ModelRateProvider provider(model, cluster.network());
  const auto m = measure_scheme_penalties(graph::schemes::outgoing_fan(3),
                                          cluster, provider);
  for (double p : m.penalties) EXPECT_NEAR(p, 2.25, 0.02);
}

TEST(Measurement, MixedSizesGetSizeMatchedReferences) {
  graph::CommGraph scheme;
  scheme.add("big", 0, 1, 20e6);
  scheme.add("small", 2, 3, 4e6);  // unconflicted
  const auto cluster = gige_cluster();
  const flowsim::FluidRateProvider provider(cluster.network());
  const auto m = measure_scheme_penalties(scheme, cluster, provider);
  // Both comms are unconflicted: penalties ~1 despite different sizes.
  EXPECT_NEAR(m.penalties[0], 1.0, 0.02);
  EXPECT_NEAR(m.penalties[1], 1.0, 0.02);
}

TEST(Measurement, WarmupIterationsDoNotChangeSteadyState) {
  const auto cluster = gige_cluster();
  const flowsim::FluidRateProvider provider(cluster.network());
  MeasurementConfig no_warmup;
  no_warmup.warmup = 0;
  MeasurementConfig with_warmup;
  with_warmup.warmup = 3;
  const auto scheme = graph::schemes::fig2_scheme(3);
  const auto a = measure_scheme_penalties(scheme, cluster, provider, no_warmup);
  const auto b =
      measure_scheme_penalties(scheme, cluster, provider, with_warmup);
  for (size_t i = 0; i < a.penalties.size(); ++i)
    EXPECT_NEAR(a.penalties[i], b.penalties[i], 1e-6);
}

TEST(Measurement, Validation) {
  const auto cluster = gige_cluster();
  const flowsim::FluidRateProvider provider(cluster.network());
  EXPECT_THROW(
      measure_scheme_penalties(graph::CommGraph{}, cluster, provider), Error);
  MeasurementConfig bad;
  bad.iterations = 0;
  EXPECT_THROW(measure_scheme_penalties(graph::schemes::outgoing_fan(2),
                                        cluster, provider, bad),
               Error);
  // Scheme referencing node 20 on an 8-node cluster.
  graph::CommGraph big;
  big.add("x", 0, 20, 1e6);
  EXPECT_THROW(measure_scheme_penalties(big, cluster, provider), Error);
}

}  // namespace
}  // namespace bwshare::mpi
