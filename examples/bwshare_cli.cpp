// bwshare_cli — command-line front end to the paper's simulator.
//
//   bwshare_cli scheme data/fig2_s4.scheme [--network gige] [--model gige]
//       Run a communication scheme through the §IV-B measurement software:
//       substrate penalties vs model penalties, E_rel/E_abs.
//
//   bwshare_cli trace my.trace [--network myrinet] [--schedule RRP]
//               [--nodes 16] [--cores 2]
//       Replay an application trace (sim/trace_io format) under a
//       scheduling policy; prints the per-task and summary reports for the
//       substrate and the interconnect's model.
//
//   bwshare_cli sweep [--schemes mk1,mk2] [--networks gige,myrinet] ...
//       Run a whole measured-vs-predicted campaign grid (eval::Sweep) on a
//       thread pool; axis reference and column glossary in
//       docs/EXPERIMENTS.md.
//
//   bwshare_cli multijob a.trace b.trace [--network gige] [--schedule RRN]
//       Co-schedule several traced jobs on ONE shared cluster
//       (sim::run_multi_job) and report per-job interference.
//
//   bwshare_cli campaign [--rule best-arm] [--objective measured] ...
//       Adaptive Monte-Carlo campaign (eval::Campaign): the sweep axes
//       become candidate arms, replicates are drawn per arm until the
//       stopping rule fires — best arm separated, CIs tight, or hopeless
//       arms cut — instead of running the whole grid to completion.
//
//   bwshare_cli serve [--threads N] [--cache N] [--memo N] [--verify]
//       Prediction-as-a-service daemon (serve::QueryService): JSON-lines
//       queries on stdin, responses on stdout. A blank line flushes the
//       accumulated batch; repeats hit the result cache, near-duplicates
//       warm-start from memoized component solutions (docs/SERVING.md).
//
// The trace and multijob subcommands accept a dynamic-cluster scenario
// (--churn/--background, sim/scenario.hpp): seeded Poisson membership
// events and cross-traffic contending with the replay.
//
// Exit codes: 0 success, 1 runtime failure (including any errored sweep
// cell), 2 usage error (unknown subcommand or flag, missing argument).
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "eval/campaign.hpp"
#include "eval/experiment.hpp"
#include "eval/sweep.hpp"
#include "stats/sequential.hpp"
#include "util/csv.hpp"
#include "flowsim/fluid_network.hpp"
#include "graph/generator.hpp"
#include "graph/scheme_parser.hpp"
#include "models/registry.hpp"
#include "serve/protocol.hpp"
#include "sim/multijob.hpp"
#include "sim/rate_model.hpp"
#include "sim/report.hpp"
#include "sim/scenario.hpp"
#include "sim/trace_io.hpp"
#include "topo/cluster.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/parse.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/threadpool.hpp"

namespace {

using namespace bwshare;

int usage(const std::string& prog) {
  std::cerr
      << "usage: " << prog << " <subcommand> [options]\n"
      << "\n"
      << "subcommands:\n"
      << "  scheme <file.scheme>   substrate-vs-model penalty report for one\n"
      << "                         communication scheme (paper figs 4/7)\n"
      << "    --network gige|myrinet|ib  interconnect calibration\n"
      << "                               (default gige, the paper's IBM\n"
      << "                               eServer 326 cluster)\n"
      << "    --model <name>             penalty model: gige, myrinet,\n"
      << "                               infiniband, loggp, kimlee\n"
      << "                               (default: the network's own model)\n"
      << "    --nodes N                  cluster nodes (default max(16,\n"
      << "                               scheme nodes))\n"
      << "    --cores C                  cores per node (default 2, the\n"
      << "                               paper's dual-Opteron nodes)\n"
      << "\n"
      << "  trace <file.trace>     replay an application trace under a\n"
      << "                         scheduling policy (paper figs 8/9)\n"
      << "    --network gige|myrinet|ib  as above (default gige)\n"
      << "    --schedule RRN|RRP|Random  placement policy (default RRN,\n"
      << "                               §VI-A round-robin per node)\n"
      << "    --nodes N --cores C        cluster shape (default 16x2)\n"
      << "    --churn R                  node join/leave/fail events per\n"
      << "                               second of simulated time (default 0)\n"
      << "    --background R             background flows per second\n"
      << "                               contending with the job (default 0)\n"
      << "    --scenario-seed S          seed for the scripted scenario\n"
      << "                               (default 42)\n"
      << "\n"
      << "  multijob <a.trace> <b.trace> [...]\n"
      << "                         co-schedule traced jobs on one shared\n"
      << "                         cluster; per-job interference table\n"
      << "    --network/--schedule/--nodes/--cores/--churn/--background/\n"
      << "    --scenario-seed            as for trace\n"
      << "\n"
      << "  sweep                  run a campaign grid in parallel\n"
      << "                         (docs/EXPERIMENTS.md)\n"
      << "    --schemes a,b,...          built-ins (fig2_s1..fig2_s6, fig4,\n"
      << "                               fig5, mk1, mk2, optional @SIZE as\n"
      << "                               in mk1@8M), .scheme paths, or\n"
      << "                               generator specs family:key=value,...\n"
      << "                               with families ring, hotspot,\n"
      << "                               random, alltoall (default mk1,mk2)\n"
      << "    --traces a,b,...           trace files (default none)\n"
      << "    --networks a,b,...         (default gige,myrinet)\n"
      << "    --models a,b,...           model names or 'network'\n"
      << "                               (default gige,myrinet)\n"
      << "    --shapes NxC,...           cluster shapes (default 16x2)\n"
      << "    --schedules p1,p2,...      trace-cell policies (default RRN)\n"
      << "    --churn-rates r1,r2,...    membership-churn axis, events/s on\n"
      << "                               trace cells (default 0)\n"
      << "    --background-loads r1,...  background-flow axis, flows/s on\n"
      << "                               trace cells (default 0)\n"
      << "    --seeds s1,s2,...          (default 1,2,3)\n"
      << "    --threads N                worker threads (default: hardware)\n"
      << "    --csv PATH --json PATH     write per-cell results\n"
      << "    --marginals                print per-axis-value summaries\n"
      << "\n"
      << "  campaign               adaptive Monte-Carlo campaign with early\n"
      << "                         stopping (docs/EXPERIMENTS.md Campaigns)\n"
      << "    --schemes/--traces/--networks/--models/--shapes/--schedules/\n"
      << "    --churn-rates/--background-loads\n"
      << "                               arm axes, exactly as for sweep\n"
      << "                               (no --seeds: replicate seeds come\n"
      << "                               from the campaign's own stream)\n"
      << "    --objective measured|predicted|eabs\n"
      << "                               what arms compete on, lower wins\n"
      << "                               (default measured)\n"
      << "    --rule ci-width|best-arm|cutoff\n"
      << "                               stopping rule (default best-arm)\n"
      << "    --tolerance T              ci-width relative half-width target\n"
      << "                               (default 0.05)\n"
      << "    --confidence C             per-arm bootstrap CI level\n"
      << "                               (default 0.95)\n"
      << "    --min-replicates N         warm-up before any verdict\n"
      << "                               (default 8)\n"
      << "    --max-replicates N         per-arm budget (default 256)\n"
      << "    --batch N                  replicates per arm per round\n"
      << "                               (default 8)\n"
      << "    --resamples N              bootstrap resamples (default 400)\n"
      << "    --seed S                   campaign seed (default 42)\n"
      << "    --threads N --csv PATH --json PATH\n"
      << "                               as for sweep\n"
      << "\n"
      << "  serve                  prediction-as-a-service daemon: one flat\n"
      << "                         JSON query per stdin line, one JSON\n"
      << "                         response per line; a blank line flushes\n"
      << "                         the batch, {\"op\":\"stats\"} reports\n"
      << "                         counters (docs/SERVING.md)\n"
      << "    --threads N                replay workers per batch\n"
      << "                               (default: hardware)\n"
      << "    --cache N                  result-cache capacity in replays\n"
      << "                               (default 64; 0 = serve-through)\n"
      << "    --memo N                   warm-start store capacity in\n"
      << "                               component solutions (default 65536)\n"
      << "    --no-warm                  disable cross-query warm-start\n"
      << "    --verify                   bitwise-verify every warm answer\n"
      << "                               against a cold run (slow; oracle)\n";
  return 2;
}

/// Reject flags the subcommand does not understand; exit code 2.
bool check_flags(const CliArgs& args, const std::string& subcommand,
                 std::initializer_list<std::string_view> allowed) {
  const auto unknown = args.unknown_flags(allowed);
  for (const auto& flag : unknown) {
    std::cerr << args.program() << " " << subcommand << ": unknown option --"
              << flag << "\n";
  }
  return unknown.empty();
}

int run_scheme(const CliArgs& args, const std::string& path) {
  const auto parsed = graph::parse_scheme_file(path);
  const auto tech = topo::network_tech_from_string(args.get("network", "gige"));
  const int nodes = static_cast<int>(
      args.get_int("nodes", std::max(16, parsed.declared_nodes)));
  const auto cluster = topo::ClusterSpec::uniform(
      "cli", nodes, static_cast<int>(args.get_int("cores", 2)),
      topo::calibration_for(tech));

  const std::string model_name = args.get("model", "");
  const auto model = model_name.empty() ? models::model_for(tech)
                                        : models::make_model(model_name);

  const auto cmp = eval::compare_scheme(parsed.graph, cluster, *model);
  std::cout << "scheme \"" << parsed.name << "\" on " << to_string(tech)
            << " with model '" << model->name() << "':\n\n";
  TextTable table({"comm", "arc", "T_m [s]", "T_p [s]", "E_rel [%]"});
  for (graph::CommId i = 0; i < parsed.graph.size(); ++i) {
    const auto& c = parsed.graph.comm(i);
    table.add_row({std::string(parsed.graph.label(i)),
                   strformat("%d->%d", c.src, c.dst),
                   strformat("%.4f", cmp.measured[static_cast<size_t>(i)]),
                   strformat("%.4f", cmp.predicted[static_cast<size_t>(i)]),
                   strformat("%+.1f", cmp.erel[static_cast<size_t>(i)])});
  }
  std::cout << table.render()
            << strformat("\nE_abs over the scheme: %.1f %%\n", cmp.eabs);
  return 0;
}

/// Seeded dynamic-cluster scenario from the --churn / --background /
/// --scenario-seed flags: Poisson scripts over a 1 s horizon (the sweep
/// axes' convention, docs/EXPERIMENTS.md).
sim::Scenario scenario_from_flags(const CliArgs& args, int nodes) {
  sim::Scenario scenario;
  const double churn = args.get_double("churn", 0.0);
  const double background = args.get_double("background", 0.0);
  const auto seed =
      static_cast<uint64_t>(args.get_int("scenario-seed", 42));
  if (churn > 0.0) {
    graph::ChurnSpec spec;
    spec.rate = churn;
    spec.nodes = nodes;
    scenario.churn = graph::generate_churn(spec, seed);
  }
  if (background > 0.0) {
    graph::BackgroundSpec spec;
    spec.rate = background;
    spec.nodes = nodes;
    scenario.background = graph::generate_background(spec, seed);
  }
  return scenario;
}

void describe_scenario(const sim::Scenario& scenario) {
  if (scenario.empty()) return;
  std::cout << "scenario: " << scenario.churn.size()
            << " churn event(s), " << scenario.background.size()
            << " background flow(s)\n";
}

int run_trace(const CliArgs& args, const std::string& path) {
  const auto trace = sim::read_trace_file(path);
  trace.validate();
  const auto tech = topo::network_tech_from_string(args.get("network", "gige"));
  const auto cluster = topo::ClusterSpec::uniform(
      "cli", static_cast<int>(args.get_int("nodes", 16)),
      static_cast<int>(args.get_int("cores", 2)), topo::calibration_for(tech));
  const auto policy =
      sim::scheduling_policy_from_string(args.get("schedule", "RRN"));
  const auto placement =
      sim::make_placement(policy, cluster, trace.num_tasks());
  const auto scenario = scenario_from_flags(args, cluster.num_nodes());

  std::cout << "trace " << path << ": " << trace.num_tasks() << " tasks, "
            << trace.total_events() << " events, "
            << human_bytes(trace.total_bytes_sent()) << " sent; "
            << to_string(policy) << " on " << cluster.num_nodes() << "x"
            << cluster.node(0).cores << " " << to_string(tech) << "\n";
  describe_scenario(scenario);

  const flowsim::FluidRateProvider fluid(cluster.network());
  const auto measured =
      sim::run_simulation(trace, cluster, placement, fluid, scenario);
  std::cout << "\nsubstrate (\"measured\"): " << sim::render_summary(measured)
            << "\n" << sim::render_task_table(measured);

  std::shared_ptr<const models::PenaltyModel> model = models::model_for(tech);
  const sim::ModelRateProvider provider(model, cluster.network());
  const auto predicted =
      sim::run_simulation(trace, cluster, placement, provider, scenario);
  std::cout << "\nmodel '" << model->name()
            << "' (\"predicted\"): " << sim::render_summary(predicted) << "\n";
  return 0;
}

int run_multijob(const CliArgs& args, const std::vector<std::string>& paths) {
  const auto tech = topo::network_tech_from_string(args.get("network", "gige"));
  const auto cluster = topo::ClusterSpec::uniform(
      "cli", static_cast<int>(args.get_int("nodes", 16)),
      static_cast<int>(args.get_int("cores", 2)), topo::calibration_for(tech));
  const auto policy =
      sim::scheduling_policy_from_string(args.get("schedule", "RRN"));
  std::vector<sim::JobSpec> jobs;
  for (const auto& path : paths) {
    sim::JobSpec job;
    const auto slash = path.find_last_of('/');
    job.name = slash == std::string::npos ? path : path.substr(slash + 1);
    job.trace = sim::read_trace_file(path);
    job.trace.validate();
    // Each job is placed independently by the policy, so jobs overlap on
    // the cluster — the contention being measured.
    job.placement =
        sim::make_placement(policy, cluster, job.trace.num_tasks());
    jobs.push_back(std::move(job));
  }
  const auto scenario = scenario_from_flags(args, cluster.num_nodes());

  std::cout << "multijob: " << jobs.size() << " job(s), "
            << to_string(policy) << " on " << cluster.num_nodes() << "x"
            << cluster.node(0).cores << " " << to_string(tech) << "\n";
  describe_scenario(scenario);

  const flowsim::FluidRateProvider fluid(cluster.network());
  const auto result = sim::run_multi_job(jobs, cluster, fluid, scenario);
  std::cout << "\nshared replay: " << sim::render_summary(result.combined)
            << "\n\n" << sim::render_multi_job_table(result);
  return 0;
}

std::vector<std::string> split_list(const CliArgs& args,
                                    const std::string& flag,
                                    const std::string& fallback) {
  std::vector<std::string> out;
  for (const auto& item : split(args.get(flag, fallback), ',')) {
    const auto trimmed = trim(item);
    if (!trimmed.empty()) out.emplace_back(trimmed);
  }
  return out;
}

std::vector<double> split_double_list(const CliArgs& args,
                                      const std::string& flag,
                                      const std::string& fallback) {
  std::vector<double> out;
  for (const auto& item : split_list(args, flag, fallback)) {
    char* end = nullptr;
    const double value = std::strtod(item.c_str(), &end);
    BWS_CHECK(end != item.c_str() && *end == '\0',
              "--" + flag + " expects comma-separated numbers, got '" + item +
                  "'");
    out.push_back(value);
  }
  return out;
}

// Scheme lists are comma-separated, but generator specs carry commas of
// their own ("random:nodes=8,comms=12"). A token that looks like a bare
// key=value continues the preceding generator entry.
std::vector<std::string> split_scheme_list(const CliArgs& args,
                                           const std::string& flag,
                                           const std::string& fallback) {
  std::vector<std::string> out;
  for (const auto& item : split_list(args, flag, fallback)) {
    const bool continues_generator =
        !out.empty() && out.back().find(':') != std::string::npos &&
        item.find(':') == std::string::npos &&
        item.find('=') != std::string::npos;
    if (continues_generator) {
      out.back() += "," + item;
    } else {
      out.push_back(item);
    }
  }
  return out;
}

/// The grid axes shared by `sweep` and `campaign`: workloads, networks,
/// models, shapes, schedules and the dynamic-cluster rates. The default
/// scheme list differs per subcommand; `campaign` does not read --seeds
/// (replicate seeds come from the campaign's own stream).
eval::SweepSpec grid_axes_from_flags(const CliArgs& args,
                                     const std::string& default_schemes) {
  eval::SweepSpec spec;
  spec.schemes = split_scheme_list(args, "schemes", default_schemes);
  spec.traces = split_list(args, "traces", "");
  spec.networks.clear();
  for (const auto& name : split_list(args, "networks", "gige,myrinet")) {
    spec.networks.push_back(topo::network_tech_from_string(name));
  }
  spec.models = split_list(args, "models", "gige,myrinet");
  spec.shapes.clear();
  for (const auto& text : split_list(args, "shapes", "16x2")) {
    spec.shapes.push_back(eval::parse_sweep_shape(text));
  }
  spec.policies.clear();
  for (const auto& name : split_list(args, "schedules", "RRN")) {
    spec.policies.push_back(sim::scheduling_policy_from_string(name));
  }
  spec.churn_rates = split_double_list(args, "churn-rates", "0");
  spec.background_loads = split_double_list(args, "background-loads", "0");
  return spec;
}

int run_sweep(const CliArgs& args) {
  eval::SweepSpec spec = grid_axes_from_flags(args, "mk1,mk2");
  spec.seeds.clear();
  for (const auto& text : split_list(args, "seeds", "1,2,3")) {
    // try_parse_u64 is digits only: strtoull would silently wrap "-1" to
    // 2^64-1.
    std::uint64_t seed = 0;
    const auto st = try_parse_u64(text, seed);
    BWS_CHECK(st != ParseIntStatus::kMalformed,
              "--seeds expects comma-separated non-negative "
              "integers, got '" + text + "'");
    BWS_CHECK(st == ParseIntStatus::kOk,
              "--seeds value '" + text + "' is out of range");
    spec.seeds.push_back(seed);
  }

  const eval::Sweep sweep(std::move(spec));
  const int threads = static_cast<int>(args.get_int("threads", 0));
  const int effective_threads =
      threads > 0 ? threads : util::ThreadPool::hardware_threads();
  std::cout << "sweep: " << sweep.num_jobs() << " cells on "
            << effective_threads << " thread(s)\n";
  const auto result = sweep.run(threads);

  TextTable table({"kind", "workload", "network", "model", "shape", "policy",
                   "churn", "bg", "seed", "E_abs [%]", "status"});
  for (const auto& cell : result.cells) {
    table.add_row({cell.kind, cell.workload, cell.network, cell.model,
                   strformat("%dx%d", cell.nodes, cell.cores), cell.policy,
                   strformat("%g", cell.churn_rate),
                   strformat("%g", cell.background_load),
                   strformat("%llu",
                             static_cast<unsigned long long>(cell.seed)),
                   strformat("%.1f", cell.eabs_pct),
                   cell.ok ? "ok" : "ERROR: " + cell.error});
  }
  std::cout << "\n" << table.render();

  if (args.get_bool("marginals", false)) {
    TextTable marg({"axis", "value", "cells", "mean E_abs [%]",
                    "max E_abs [%]"});
    for (const auto& m : result.marginals) {
      marg.add_row({m.axis, m.value, strformat("%zu", m.cells),
                    strformat("%.1f", m.mean_eabs_pct),
                    strformat("%.1f", m.max_eabs_pct)});
    }
    std::cout << "\nmarginals:\n" << marg.render();
  }

  // A bare `--csv` parses as the value "true" (CliArgs boolean form) and
  // would silently create a file literally named "true" — reject it.
  const std::string csv_path = args.get("csv", "");
  BWS_CHECK(csv_path != "true", "--csv expects a path, e.g. --csv cells.csv");
  if (!csv_path.empty()) {
    util::write_text_file(csv_path, result.to_csv());
    std::cout << "\n[cells csv written to " << csv_path << "]\n";
  }
  const std::string json_path = args.get("json", "");
  BWS_CHECK(json_path != "true",
            "--json expects a path, e.g. --json cells.json");
  if (!json_path.empty()) {
    util::write_text_file(json_path, result.to_json());
    std::cout << "[json written to " << json_path << "]\n";
  }

  if (result.num_errors > 0) {
    std::cerr << "error: " << result.num_errors << " of "
              << result.cells.size() << " sweep cells failed\n";
    return 1;
  }
  return 0;
}

int run_campaign(const CliArgs& args) {
  eval::CampaignSpec spec;
  spec.grid = grid_axes_from_flags(args, "mk1,mk2");
  spec.objective = eval::objective_from_string(args.get("objective",
                                                        "measured"));
  spec.stop.rule =
      stats::stopping_rule_from_string(args.get("rule", "best-arm"));
  spec.stop.tolerance = args.get_double("tolerance", 0.05);
  spec.stop.confidence = args.get_double("confidence", 0.95);
  spec.stop.min_replicates =
      static_cast<int>(args.get_int("min-replicates", 8));
  spec.stop.max_replicates =
      static_cast<int>(args.get_int("max-replicates", 256));
  spec.stop.resamples =
      static_cast<size_t>(args.get_int("resamples", 400));
  spec.batch = static_cast<int>(args.get_int("batch", 8));
  spec.seed = static_cast<uint64_t>(args.get_int("seed", 42));
  spec.stop.ci_seed = spec.seed;

  const eval::Campaign campaign(std::move(spec));
  const int threads = static_cast<int>(args.get_int("threads", 0));
  const int effective_threads =
      threads > 0 ? threads : util::ThreadPool::hardware_threads();
  std::cout << "campaign: " << campaign.num_arms() << " arm(s), rule "
            << stats::to_string(campaign.spec().stop.rule) << ", objective "
            << eval::to_string(campaign.spec().objective) << ", up to "
            << campaign.spec().stop.max_replicates << " replicates/arm on "
            << effective_threads << " thread(s)\n";
  const auto result = campaign.run(threads);

  TextTable table({"arm", "kind", "workload", "network", "model", "shape",
                   "policy", "replicates", "mean", "95% CI", "status"});
  for (size_t i = 0; i < result.arms.size(); ++i) {
    const auto& arm = result.arms[i];
    table.add_row({strformat("%zu", i), arm.kind, arm.workload, arm.network,
                   arm.model, strformat("%dx%d", arm.nodes, arm.cores),
                   arm.policy, strformat("%d", arm.replicates),
                   strformat("%.4f", arm.mean),
                   strformat("[%.4f, %.4f]", arm.ci_low, arm.ci_high),
                   arm.error ? "ERROR: " + arm.error_msg : arm.status()});
  }
  std::cout << "\n" << table.render();

  std::cout << "\nstopped by " << result.stopped_by << " after "
            << result.rounds << " round(s): " << result.total_replicates
            << " replays vs " << result.exhaustive_replicates
            << " exhaustive ("
            << strformat("%.1fx", result.savings_factor()) << " saved)\n";
  if (result.winner >= 0) {
    const auto& w = result.arms[static_cast<size_t>(result.winner)];
    std::cout << "winner: arm " << result.winner << " — " << w.workload
              << " on " << w.network << " (" << w.model << ", "
              << strformat("%dx%d", w.nodes, w.cores);
    if (w.kind == "trace") std::cout << ", " << w.policy;
    std::cout << "), mean " << strformat("%.4f", w.mean) << " "
              << (result.objective == "eabs" ? "%" : "s") << "\n";
  }

  const std::string csv_path = args.get("csv", "");
  BWS_CHECK(csv_path != "true", "--csv expects a path, e.g. --csv arms.csv");
  if (!csv_path.empty()) {
    util::write_text_file(csv_path, result.to_csv());
    std::cout << "\n[arms csv written to " << csv_path << "]\n";
  }
  const std::string json_path = args.get("json", "");
  BWS_CHECK(json_path != "true",
            "--json expects a path, e.g. --json arms.json");
  if (!json_path.empty()) {
    util::write_text_file(json_path, result.to_json());
    std::cout << "[json written to " << json_path << "]\n";
  }

  if (result.winner < 0) {
    std::cerr << "error: every campaign arm failed\n";
    return 1;
  }
  return 0;
}

int run_serve(const CliArgs& args) {
  serve::ServiceConfig config;
  config.threads = static_cast<int>(args.get_int("threads", 0));
  const long cache = args.get_int("cache", 64);
  const long memo = args.get_int("memo", 65536);
  BWS_CHECK(cache >= 0, "--cache must be >= 0");
  BWS_CHECK(memo >= 0, "--memo must be >= 0");
  config.cache_capacity = static_cast<size_t>(cache);
  config.memo_capacity = static_cast<size_t>(memo);
  config.warm_start = !args.get_bool("no-warm", false);
  config.verify = args.get_bool("verify", false);
  const size_t failures =
      serve::run_serve_loop(std::cin, std::cout, config);
  if (failures > 0) {
    std::cerr << "error: " << failures << " request(s) failed\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto& pos = args.positional();
  if (pos.empty()) return usage(args.program());
  const std::string& subcommand = pos[0];
  try {
    if (subcommand == "scheme") {
      if (pos.size() < 2 ||
          !check_flags(args, subcommand,
                       {"network", "model", "nodes", "cores"})) {
        return usage(args.program());
      }
      return run_scheme(args, pos[1]);
    }
    if (subcommand == "trace") {
      if (pos.size() < 2 ||
          !check_flags(args, subcommand,
                       {"network", "schedule", "nodes", "cores", "churn",
                        "background", "scenario-seed"})) {
        return usage(args.program());
      }
      return run_trace(args, pos[1]);
    }
    if (subcommand == "multijob") {
      if (pos.size() < 3 ||
          !check_flags(args, subcommand,
                       {"network", "schedule", "nodes", "cores", "churn",
                        "background", "scenario-seed"})) {
        if (pos.size() < 3)
          std::cerr << args.program()
                    << " multijob: needs at least two trace files\n";
        return usage(args.program());
      }
      return run_multijob(
          args, std::vector<std::string>(pos.begin() + 1, pos.end()));
    }
    if (subcommand == "sweep") {
      // Workloads are flags (--schemes/--traces), never positionals; a
      // stray positional would otherwise silently run the default grid.
      if (pos.size() != 1) {
        std::cerr << args.program() << " sweep: unexpected argument '"
                  << pos[1] << "' (workloads go in --schemes/--traces)\n";
        return usage(args.program());
      }
      if (!check_flags(args, subcommand,
                       {"schemes", "traces", "networks", "models", "shapes",
                        "schedules", "churn-rates", "background-loads",
                        "seeds", "threads", "csv", "json", "marginals"})) {
        return usage(args.program());
      }
      return run_sweep(args);
    }
    if (subcommand == "campaign") {
      if (pos.size() != 1) {
        std::cerr << args.program() << " campaign: unexpected argument '"
                  << pos[1] << "' (workloads go in --schemes/--traces)\n";
        return usage(args.program());
      }
      if (!check_flags(args, subcommand,
                       {"schemes", "traces", "networks", "models", "shapes",
                        "schedules", "churn-rates", "background-loads",
                        "objective", "rule", "tolerance", "confidence",
                        "min-replicates", "max-replicates", "batch",
                        "resamples", "seed", "threads", "csv", "json"})) {
        return usage(args.program());
      }
      return run_campaign(args);
    }
    if (subcommand == "serve") {
      if (pos.size() != 1) {
        std::cerr << args.program() << " serve: unexpected argument '"
                  << pos[1] << "' (queries arrive on stdin)\n";
        return usage(args.program());
      }
      if (!check_flags(args, subcommand,
                       {"threads", "cache", "memo", "no-warm", "verify"})) {
        return usage(args.program());
      }
      return run_serve(args);
    }
    std::cerr << args.program() << ": unknown subcommand '" << subcommand
              << "'\n";
    return usage(args.program());
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
