// bwshare_cli — command-line front end to the paper's simulator.
//
//   bwshare_cli scheme data/fig2_s4.scheme [--network gige] [--model gige]
//       Run a communication scheme through the §IV-B measurement software:
//       substrate penalties vs model penalties, E_rel/E_abs.
//
//   bwshare_cli trace my.trace [--network myrinet] [--schedule RRP]
//               [--nodes 16] [--cores 2]
//       Replay an application trace (sim/trace_io format) under a
//       scheduling policy; prints the per-task and summary reports for the
//       substrate and the interconnect's model.
#include <iostream>

#include "eval/experiment.hpp"
#include "flowsim/fluid_network.hpp"
#include "graph/scheme_parser.hpp"
#include "models/registry.hpp"
#include "sim/rate_model.hpp"
#include "sim/report.hpp"
#include "sim/trace_io.hpp"
#include "topo/cluster.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace bwshare;

int usage(const char* prog) {
  std::cerr << "usage: " << prog << " scheme <file.scheme> [options]\n"
            << "       " << prog << " trace <file.trace> [options]\n"
            << "options: --network gige|myrinet|ib   interconnect (default gige)\n"
            << "         --model <name>              penalty model (default: the network's)\n"
            << "         --schedule RRN|RRP|Random   trace placement (default RRN)\n"
            << "         --nodes N --cores C         cluster shape (default 16x2)\n";
  return 2;
}

int run_scheme(const CliArgs& args, const std::string& path) {
  const auto parsed = graph::parse_scheme_file(path);
  const auto tech = topo::network_tech_from_string(args.get("network", "gige"));
  const int nodes = static_cast<int>(
      args.get_int("nodes", std::max(16, parsed.declared_nodes)));
  const auto cluster = topo::ClusterSpec::uniform(
      "cli", nodes, static_cast<int>(args.get_int("cores", 2)),
      topo::calibration_for(tech));

  const std::string model_name = args.get("model", "");
  const auto model = model_name.empty() ? models::model_for(tech)
                                        : models::make_model(model_name);

  const auto cmp = eval::compare_scheme(parsed.graph, cluster, *model);
  std::cout << "scheme \"" << parsed.name << "\" on " << to_string(tech)
            << " with model '" << model->name() << "':\n\n";
  TextTable table({"comm", "arc", "T_m [s]", "T_p [s]", "E_rel [%]"});
  for (graph::CommId i = 0; i < parsed.graph.size(); ++i) {
    const auto& c = parsed.graph.comm(i);
    table.add_row({c.label, strformat("%d->%d", c.src, c.dst),
                   strformat("%.4f", cmp.measured[static_cast<size_t>(i)]),
                   strformat("%.4f", cmp.predicted[static_cast<size_t>(i)]),
                   strformat("%+.1f", cmp.erel[static_cast<size_t>(i)])});
  }
  std::cout << table.render()
            << strformat("\nE_abs over the scheme: %.1f %%\n", cmp.eabs);
  return 0;
}

int run_trace(const CliArgs& args, const std::string& path) {
  const auto trace = sim::read_trace_file(path);
  trace.validate();
  const auto tech = topo::network_tech_from_string(args.get("network", "gige"));
  const auto cluster = topo::ClusterSpec::uniform(
      "cli", static_cast<int>(args.get_int("nodes", 16)),
      static_cast<int>(args.get_int("cores", 2)), topo::calibration_for(tech));
  const auto policy =
      sim::scheduling_policy_from_string(args.get("schedule", "RRN"));
  const auto placement =
      sim::make_placement(policy, cluster, trace.num_tasks());

  std::cout << "trace " << path << ": " << trace.num_tasks() << " tasks, "
            << trace.total_events() << " events, "
            << human_bytes(trace.total_bytes_sent()) << " sent; "
            << to_string(policy) << " on " << cluster.num_nodes() << "x"
            << cluster.node(0).cores << " " << to_string(tech) << "\n";

  const flowsim::FluidRateProvider fluid(cluster.network());
  const auto measured = sim::run_simulation(trace, cluster, placement, fluid);
  std::cout << "\nsubstrate (\"measured\"): " << sim::render_summary(measured)
            << "\n" << sim::render_task_table(measured);

  std::shared_ptr<const models::PenaltyModel> model = models::model_for(tech);
  const sim::ModelRateProvider provider(model, cluster.network());
  const auto predicted =
      sim::run_simulation(trace, cluster, placement, provider);
  std::cout << "\nmodel '" << model->name()
            << "' (\"predicted\"): " << sim::render_summary(predicted) << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.positional().size() < 2) return usage(argv[0]);
  try {
    if (args.positional()[0] == "scheme")
      return run_scheme(args, args.positional()[1]);
    if (args.positional()[0] == "trace")
      return run_trace(args, args.positional()[1]);
    return usage(argv[0]);
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
