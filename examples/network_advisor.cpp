// Network advisor: the paper's motivating use case — "help an HPC
// integrator to propose a network solution for a set of applications"
// (§I). Runs an application trace under all three interconnect models and
// reports predicted makespan and communication cost per network.
//
//   $ ./network_advisor [--tasks 16] [--panels 24]
#include <iostream>

#include "eval/experiment.hpp"
#include "hpl/hpl_trace.hpp"
#include "models/registry.hpp"
#include "mpi/minimpi.hpp"
#include "sim/rate_model.hpp"
#include "topo/cluster.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace bwshare;

/// A neighbour-exchange halo application recorded through MiniMPI: each
/// rank trades 8 MB with both ring neighbours, then computes.
sim::AppTrace halo_app(int ranks) {
  mpi::MiniMpi mpi(ranks);
  mpi.run([ranks](mpi::Rank& self) {
    const double bytes = 8e6;
    const int next = (self.rank() + 1) % ranks;
    const int prev = (self.rank() + ranks - 1) % ranks;
    for (int step = 0; step < 4; ++step) {
      // Even ranks send first; odd ranks receive first (classic deadlock-
      // free exchange).
      if (self.rank() % 2 == 0) {
        self.send(next, bytes);
        self.recv(prev, bytes);
        self.send(prev, bytes);
        self.recv(next, bytes);
      } else {
        self.recv(prev, bytes);
        self.send(next, bytes);
        self.recv(next, bytes);
        self.send(prev, bytes);
      }
      self.compute(0.05);
    }
  });
  return mpi.trace();
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const int tasks = static_cast<int>(args.get_int("tasks", 16));

  hpl::HplParams hpl_params;
  hpl_params.n = 20500;
  hpl_params.nb = 120;
  hpl_params.tasks = tasks;
  hpl_params.max_panels = static_cast<int>(args.get_int("panels", 24));

  struct App {
    std::string name;
    sim::AppTrace trace;
  };
  const std::vector<App> apps = {
      {"HPL (ring broadcast)", hpl::make_hpl_trace(hpl_params)},
      {"halo exchange", halo_app(tasks)},
  };

  struct Net {
    topo::ClusterSpec cluster;
  };
  const std::vector<Net> nets = {
      {topo::ClusterSpec::ibm_eserver326_gige(tasks)},
      {topo::ClusterSpec::ibm_eserver325_myrinet(tasks)},
      {topo::ClusterSpec::bull_novascale_ib(tasks)},
  };

  std::cout << "Predicted application performance per interconnect "
               "(model-driven simulator):\n";
  for (const auto& app : apps) {
    TextTable table({"interconnect", "makespan", "avg penalty",
                     "comm time (max task)"});
    for (const auto& net : nets) {
      auto model = models::model_for(net.cluster.network().tech);
      const std::shared_ptr<const models::PenaltyModel> shared(
          std::move(model));
      const sim::ModelRateProvider provider(shared, net.cluster.network());
      const auto placement =
          sim::make_placement(sim::SchedulingPolicy::kRoundRobinNode,
                              net.cluster, app.trace.num_tasks());
      const auto result =
          sim::run_simulation(app.trace, net.cluster, placement, provider);
      double worst_comm = 0.0;
      for (sim::TaskId t = 0; t < app.trace.num_tasks(); ++t)
        worst_comm = std::max(worst_comm, result.task_comm_time(t));
      table.add_row({to_string(net.cluster.network().tech),
                     human_seconds(result.makespan),
                     strformat("%.2f", result.average_penalty()),
                     human_seconds(worst_comm)});
    }
    std::cout << "\n  " << app.name << " (" << app.trace.num_tasks()
              << " tasks):\n"
              << table.render();
  }
  std::cout << "\nNote: InfiniBand wins on raw bandwidth even though GigE "
               "shares more gracefully\n(the paper's closing observation in "
               "SIV-C).\n";
  return 0;
}
