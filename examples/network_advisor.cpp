// Network advisor: the paper's motivating use case — "help an HPC
// integrator to propose a network solution for a set of applications"
// (§I). For each application the advisor runs an adaptive Monte-Carlo
// campaign (eval::Campaign, docs/EXPERIMENTS.md "Campaigns"): the three
// interconnects are candidate arms, replicates draw fresh seeded random
// placements, and sampling stops as soon as the fastest interconnect's
// confidence interval separates from every rival's — answering from a
// fraction of the replays the exhaustive fixed grid would burn.
//
//   $ ./network_advisor [--tasks 16] [--panels 24] [--confidence 0.95]
//                       [--max-replicates 40] [--batch 4] [--seed 42]
//                       [--threads 0]
#include <iostream>

#include "eval/campaign.hpp"
#include "hpl/hpl_trace.hpp"
#include "mpi/minimpi.hpp"
#include "topo/network.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace bwshare;

/// A neighbour-exchange halo application recorded through MiniMPI: each
/// rank trades 8 MB with both ring neighbours, then computes.
sim::AppTrace halo_app(int ranks) {
  mpi::MiniMpi mpi(ranks);
  mpi.run([ranks](mpi::Rank& self) {
    const double bytes = 8e6;
    const int next = (self.rank() + 1) % ranks;
    const int prev = (self.rank() + ranks - 1) % ranks;
    for (int step = 0; step < 4; ++step) {
      // Even ranks send first; odd ranks receive first (classic deadlock-
      // free exchange).
      if (self.rank() % 2 == 0) {
        self.send(next, bytes);
        self.recv(prev, bytes);
        self.send(prev, bytes);
        self.recv(next, bytes);
      } else {
        self.recv(prev, bytes);
        self.send(next, bytes);
        self.recv(next, bytes);
        self.send(prev, bytes);
      }
      self.compute(0.05);
    }
  });
  return mpi.trace();
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const int tasks = static_cast<int>(args.get_int("tasks", 16));

  hpl::HplParams hpl_params;
  hpl_params.n = 20500;
  hpl_params.nb = 120;
  hpl_params.tasks = tasks;
  hpl_params.max_panels = static_cast<int>(args.get_int("panels", 24));

  struct App {
    std::string name;
    sim::AppTrace trace;
  };
  const std::vector<App> apps = {
      {"HPL (ring broadcast)", hpl::make_hpl_trace(hpl_params)},
      {"halo exchange", halo_app(tasks)},
  };

  // One campaign per application: arms are the three interconnects; every
  // replicate replays the trace under a fresh seeded random placement, so
  // the verdict holds over placement noise, not for one lucky layout.
  eval::CampaignSpec spec;
  spec.grid.networks = {topo::NetworkTech::kGigabitEthernet,
                        topo::NetworkTech::kMyrinet2000,
                        topo::NetworkTech::kInfinibandInfinihost3};
  spec.grid.models = {"network"};
  spec.grid.shapes = {{tasks, 2}};
  spec.grid.policies = {sim::SchedulingPolicy::kRandom};
  spec.objective = eval::Objective::kMeasuredSeconds;
  spec.stop.rule = stats::StoppingRule::kBestArm;
  spec.stop.confidence = args.get_double("confidence", 0.95);
  spec.stop.min_replicates = 4;
  spec.stop.max_replicates =
      static_cast<int>(args.get_int("max-replicates", 40));
  spec.batch = static_cast<int>(args.get_int("batch", 4));
  spec.seed = static_cast<uint64_t>(args.get_int("seed", 42));
  spec.stop.ci_seed = spec.seed;
  const int threads = static_cast<int>(args.get_int("threads", 0));

  std::cout << "Interconnect advisor (adaptive campaign, best-arm rule at "
            << strformat("%.0f%%", spec.stop.confidence * 100.0)
            << " confidence):\n";
  size_t total_replays = 0;
  size_t exhaustive_replays = 0;
  for (const auto& app : apps) {
    std::vector<eval::ResolvedWorkload> workloads(1);
    workloads[0].key = app.name;
    workloads[0].trace = std::make_shared<const sim::AppTrace>(app.trace);
    const eval::Campaign campaign(spec, std::move(workloads));
    const auto result = campaign.run(threads);
    total_replays += result.total_replicates;
    exhaustive_replays += result.exhaustive_replicates;

    TextTable table({"interconnect", "replays", "makespan",
                     "95% CI", "verdict"});
    for (const auto& arm : result.arms) {
      table.add_row({arm.network, strformat("%d", arm.replicates),
                     human_seconds(arm.mean),
                     strformat("[%s, %s]", human_seconds(arm.ci_low).c_str(),
                               human_seconds(arm.ci_high).c_str()),
                     arm.error ? "ERROR: " + arm.error_msg : arm.status()});
    }
    std::cout << "\n  " << app.name << " (" << app.trace.num_tasks()
              << " tasks):\n" << table.render();
    if (result.winner >= 0) {
      const auto& w = result.arms[static_cast<size_t>(result.winner)];
      std::cout << "  -> recommend " << w.network << ": "
                << result.total_replicates << " replays ("
                << result.stopped_by << " after " << result.rounds
                << " rounds) vs " << result.exhaustive_replicates
                << " exhaustive, "
                << strformat("%.1fx", result.savings_factor()) << " saved\n";
    } else {
      std::cout << "  -> no recommendation: every arm failed\n";
    }
  }
  std::cout << "\ntotal: " << total_replays << " replays where the fixed "
            << "grid runs " << exhaustive_replays << "\n";
  std::cout << "\nNote: InfiniBand wins on raw bandwidth even though GigE "
               "shares more gracefully\n(the paper's closing observation in "
               "SIV-C).\n";
  return 0;
}
