// Scheme explorer: parse a communication scheme written in the description
// language (§IV-B), analyze its conflicts, print model penalties, and
// optionally emit Graphviz.
//
//   $ ./scheme_explorer my.scheme [--model myrinet] [--dot]
//   $ ./scheme_explorer            # uses a built-in demo scheme
#include <iostream>

#include "graph/conflict.hpp"
#include "graph/dot.hpp"
#include "graph/scheme_parser.hpp"
#include "models/registry.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

constexpr const char* kDemoScheme = R"(# fig-5 demo scheme
scheme "fig5 demo"
size 20M
comm a 0 -> 1
comm b 0 -> 2
comm c 0 -> 3
comm d 4 -> 1
comm e 2 -> 1
comm f 2 -> 5
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace bwshare;
  const CliArgs args(argc, argv);

  graph::ParsedScheme parsed;
  if (!args.positional().empty()) {
    parsed = graph::parse_scheme_file(args.positional()[0]);
  } else {
    parsed = graph::parse_scheme(kDemoScheme);
    std::cout << "(no scheme file given; using the built-in fig-5 demo)\n";
  }
  const auto& g = parsed.graph;
  std::cout << "scheme \"" << parsed.name << "\": " << g.size()
            << " communications over " << g.num_nodes() << " nodes\n\n";

  const auto conflicts = graph::classify_conflicts(g);
  const auto model = models::make_model(args.get("model", "myrinet"));
  const auto penalties = model->penalties(g);

  TextTable table({"comm", "arc", "size", "delta_o", "delta_i",
                   "conflict", strformat("penalty (%s)", model->name().c_str())});
  for (graph::CommId i = 0; i < g.size(); ++i) {
    const auto& c = g.comm(i);
    table.add_row({std::string(g.label(i)), strformat("%d->%d", c.src, c.dst),
                   human_bytes(c.bytes), strformat("%d", g.delta_o(i)),
                   strformat("%d", g.delta_i(i)),
                   to_string(conflicts[static_cast<size_t>(i)].dominant()),
                   strformat("%.2f", penalties[static_cast<size_t>(i)])});
  }
  std::cout << table.render();

  if (args.get_bool("dot", false)) {
    std::map<std::string, std::string> notes;
    for (graph::CommId i = 0; i < g.size(); ++i)
      notes[std::string(g.label(i))] =
          strformat("p=%.2f", penalties[static_cast<size_t>(i)]);
    std::cout << "\n" << graph::to_dot(g, notes);
  }
  return 0;
}
