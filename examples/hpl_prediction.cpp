// HPL scheduling advisor: predict how task placement (RRN / RRP / Random)
// changes Linpack's communication cost on a chosen interconnect — the
// paper's fig-8/9 experiment turned into a what-if tool.
//
//   $ ./hpl_prediction [--network myrinet] [--tasks 16] [--n 20500]
#include <iostream>

#include "eval/experiment.hpp"
#include "hpl/hpl_trace.hpp"
#include "models/registry.hpp"
#include "topo/cluster.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace bwshare;
  const CliArgs args(argc, argv);

  const auto tech =
      topo::network_tech_from_string(args.get("network", "myrinet"));
  const int tasks = static_cast<int>(args.get_int("tasks", 16));

  hpl::HplParams params;
  params.n = static_cast<int>(args.get_int("n", 20500));
  params.nb = static_cast<int>(args.get_int("nb", 120));
  params.tasks = tasks;
  params.max_panels = static_cast<int>(args.get_int("panels", 32));

  const auto cluster = topo::ClusterSpec::uniform(
      "advisor", tasks, 2, topo::calibration_for(tech));
  const auto model = models::model_for(tech);
  const auto trace = hpl::make_hpl_trace(params);

  std::cout << "HPL N=" << params.n << " on " << to_string(tech) << ", "
            << tasks << " tasks - scheduling comparison (predicted vs "
               "substrate):\n\n";

  TextTable table({"scheduling", "makespan (sim)", "makespan (model)",
                   "mean E_abs [%]"});
  for (const auto policy :
       {sim::SchedulingPolicy::kRoundRobinNode,
        sim::SchedulingPolicy::kRoundRobinProcessor,
        sim::SchedulingPolicy::kRandom}) {
    const auto cmp = eval::compare_application(trace, cluster, policy, *model);
    table.add_row({to_string(policy), human_seconds(cmp.measured_makespan),
                   human_seconds(cmp.predicted_makespan),
                   strformat("%.1f", cmp.mean_eabs)});
  }
  std::cout << table.render()
            << "\nRRP co-locates ring neighbours (half the hops become "
               "shared-memory copies);\nRandom placement scatters them and "
               "pays full network cost.\n";
  return 0;
}
