// Quickstart: define a communication scheme, ask both paper models for
// penalties, and cross-check against the simulated substrate.
//
//   $ ./quickstart
#include <iostream>

#include "flowsim/fluid_network.hpp"
#include "graph/comm_graph.hpp"
#include "models/gige.hpp"
#include "models/myrinet.hpp"
#include "topo/network.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace bwshare;

  // Three tasks on node 0 each stream 20 MB to a different node, while
  // node 4 sends into node 1 — fig-2 scheme S4.
  graph::CommGraph scheme;
  scheme.add("a", 0, 1, 20e6);
  scheme.add("b", 0, 2, 20e6);
  scheme.add("c", 0, 3, 20e6);
  scheme.add("d", 4, 1, 20e6);

  const models::GigabitEthernetModel gige;   // beta/gamma from the paper
  const models::MyrinetModel myrinet;        // send/wait state model

  const auto p_gige = gige.penalties(scheme);
  const auto p_myri = myrinet.penalties(scheme);

  // "Measured" on the simulated interconnects (saturated regime).
  const auto m_gige = flowsim::saturated_penalties(
      scheme, topo::gigabit_ethernet_calibration());
  const auto m_myri =
      flowsim::saturated_penalties(scheme, topo::myrinet2000_calibration());

  TextTable table({"comm", "GigE model", "GigE sim", "Myrinet model",
                   "Myrinet sim"});
  for (graph::CommId i = 0; i < scheme.size(); ++i) {
    const auto k = static_cast<size_t>(i);
    table.add_row({std::string(scheme.label(i)), strformat("%.2f", p_gige[k]),
                   strformat("%.2f", m_gige[k]), strformat("%.2f", p_myri[k]),
                   strformat("%.2f", m_myri[k])});
  }
  std::cout << "Bandwidth-sharing penalties (T_conflicted / T_alone):\n\n"
            << table.render() << "\n"
            << "Reading: on GigE three concurrent sends cost ~2.25x each "
               "(beta = 0.75);\nMyrinet serializes them (~3x). The income "
               "conflict d pays less on both.\n";
  return 0;
}
