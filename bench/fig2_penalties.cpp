// Experiment E1 — paper Fig 2: "Result of penalties depending of network".
//
// Runs the six incremental communication schemes through the §IV-B
// measurement software on the three interconnect substrates and prints the
// per-communication penalties next to the values the paper measured on its
// physical clusters. Shapes to check: GigE shares best (1.5/2.25 per
// stream), Myrinet serializes (1.9/2.8), InfiniBand sits between
// (1.725/2.61); scheme 5's income/outgo conflict at node 0 inflates the
// three outgoing penalties; scheme 6's f stays near 1.
#include <array>
#include <iostream>
#include <map>

#include "bench_util.hpp"
#include "flowsim/fluid_network.hpp"
#include "graph/schemes.hpp"
#include "topo/network.hpp"
#include "util/strings.hpp"

namespace {

using namespace bwshare;

// Paper fig-2 values, keyed by scheme and comm label.
const std::map<int, std::map<std::string, std::array<double, 3>>> kPaper = {
    // {scheme, {label, {GigE, Myrinet, Infiniband}}}
    {1, {{"a", {1.0, 1.0, 1.0}}}},
    {2, {{"a", {1.5, 1.9, 1.725}}, {"b", {1.5, 1.9, 1.725}}}},
    {3,
     {{"a", {2.25, 2.8, 2.61}},
      {"b", {2.25, 2.8, 2.61}},
      {"c", {2.25, 2.8, 2.61}}}},
    {4,
     {{"a", {2.15, 2.8, 2.61}},
      {"b", {2.15, 2.8, 2.61}},
      {"c", {2.15, 2.8, 2.61}},
      {"d", {1.15, 1.45, 1.14}}}},
    {5,
     {{"a", {4.4, 4.4, 3.663}},
      {"b", {2.6, 4.2, 3.66}},
      {"c", {2.6, 4.2, 3.66}},
      {"d", {2.6, 2.5, 2.035}},
      {"e", {2.6, 2.5, 2.035}}}},
    {6,
     {{"a", {4.4, 4.5, 3.935}},
      {"b", {2.0, 4.5, 3.935}},
      {"c", {3.3, 4.5, 3.935}},
      {"d", {2.6, 2.5, 1.995}},
      {"e", {2.6, 2.5, 1.995}},
      {"f", {1.4, 1.3, 1.01}}}},
};

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const double bytes = parse_size(args.get("size", "20M"));

  print_banner(std::cout, "Fig 2 — penalties per scheme and interconnect "
                          "(substrate vs paper)");
  std::cout << "  Message size " << human_bytes(bytes)
            << "; penalties in the saturated regime (P_i = T_i/T_ref).\n";

  const auto networks = {topo::gigabit_ethernet_calibration(),
                         topo::myrinet2000_calibration(),
                         topo::infiniband_calibration()};

  for (int scheme = 1; scheme <= 6; ++scheme) {
    const auto g = graph::schemes::fig2_scheme(scheme, bytes);
    TextTable table({"comm", "arc", "GigE", "paper", "Myrinet", "paper",
                     "Infiniband", "paper"});
    // Substrate penalties per network.
    std::vector<std::vector<double>> penalties;
    for (const auto& cal : networks)
      penalties.push_back(flowsim::saturated_penalties(g, cal));

    for (graph::CommId i = 0; i < g.size(); ++i) {
      const auto& c = g.comm(i);
      const std::string label(g.label(i));
      const auto& paper_row = kPaper.at(scheme).at(label);
      table.add_row({label, strformat("%d->%d", c.src, c.dst),
                     strformat("%.2f", penalties[0][static_cast<size_t>(i)]),
                     strformat("%.2f", paper_row[0]),
                     strformat("%.2f", penalties[1][static_cast<size_t>(i)]),
                     strformat("%.2f", paper_row[1]),
                     strformat("%.2f", penalties[2][static_cast<size_t>(i)]),
                     strformat("%.2f", paper_row[2])});
    }
    std::cout << "\n  Scheme S" << scheme << ":\n";
    bench::emit(args, strformat("fig2_s%d", scheme), table);
  }

  std::cout << "\n  Note: S5/S6 'd' diverges from the paper (see DESIGN.md "
               "S2 on the arrow-geometry reconstruction).\n";
  return 0;
}
