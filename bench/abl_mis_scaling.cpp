// Ablation A2 — scaling of the Myrinet model's maximal-independent-set
// enumeration (Bron–Kerbosch with pivoting) with conflict-graph size and
// density. google-benchmark microbenchmark.
#include <benchmark/benchmark.h>

#include "models/mis.hpp"
#include "util/rng.hpp"

namespace {

using namespace bwshare;

models::AdjacencyMatrix random_graph(int n, double density, uint64_t seed) {
  models::AdjacencyMatrix g(n);
  Rng rng(seed);
  for (int a = 0; a < n; ++a)
    for (int b = a + 1; b < n; ++b)
      if (rng.uniform() < density) g.add_edge(a, b);
  return g;
}

void BM_MisEnumeration(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const double density = static_cast<double>(state.range(1)) / 100.0;
  const auto g = random_graph(n, density, 1234);
  size_t sets = 0;
  for (auto _ : state) {
    const auto result = models::enumerate_maximal_independent_sets(g);
    sets = result.sets.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["sets"] = static_cast<double>(sets);
}

// Sparse (HPL-window-like) and denser (fig-2-like) conflict graphs.
BENCHMARK(BM_MisEnumeration)
    ->ArgsProduct({{6, 12, 18, 24}, {20, 50, 80}})
    ->Unit(benchmark::kMicrosecond);

void BM_MisFanClique(benchmark::State& state) {
  // Worst common case in practice: a k-fan is a k-clique.
  const int n = static_cast<int>(state.range(0));
  models::AdjacencyMatrix g(n);
  for (int a = 0; a < n; ++a)
    for (int b = a + 1; b < n; ++b) g.add_edge(a, b);
  for (auto _ : state) {
    const auto result = models::enumerate_maximal_independent_sets(g);
    benchmark::DoNotOptimize(result);
  }
}

BENCHMARK(BM_MisFanClique)->DenseRange(2, 16, 2)->Unit(benchmark::kMicrosecond);

}  // namespace
