// Experiments E2+E3 — paper §V-A and Fig 4: estimating the Gigabit Ethernet
// model parameters (β from outgoing-conflict sweeps, γo/γi from the fig-4
// scheme) and verifying the calibrated model's predictions per
// communication at 4 MB.
//
// The paper's numbers: β = 0.75, γo = 0.115, γi = 0.036, and the fig-4
// table of measured vs predicted times.
#include <iostream>

#include "bench_util.hpp"
#include "eval/experiment.hpp"
#include "flowsim/fluid_network.hpp"
#include "flowsim/packet.hpp"
#include "graph/schemes.hpp"
#include "models/estimation.hpp"
#include "models/gige.hpp"
#include "mpi/measurement.hpp"
#include "topo/cluster.hpp"
#include "util/strings.hpp"

namespace {

using namespace bwshare;

/// MeasureFn backed by the fluid substrate through the §IV-B software.
models::MeasureFn fluid_measure(const topo::ClusterSpec& cluster) {
  return [&cluster](const graph::CommGraph& scheme) {
    const flowsim::FluidRateProvider provider(cluster.network());
    return mpi::measure_times(scheme, cluster, provider);
  };
}

/// MeasureFn backed by the packet-level TCP simulator (finer asymmetries).
models::MeasureFn packet_measure(const topo::ClusterSpec& cluster) {
  return [&cluster](const graph::CommGraph& scheme) {
    flowsim::PacketSimConfig cfg;
    cfg.cal = cluster.network();
    return flowsim::measure_scheme_packet(scheme, cfg);
  };
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto cluster = topo::ClusterSpec::ibm_eserver326_gige(8);

  print_banner(std::cout,
               "Fig 3/4 + SV-A — GigE model parameter estimation");

  // --- β from simple outgoing conflicts (fluid substrate). -----------------
  const auto beta_fluid = models::estimate_beta(fluid_measure(cluster));
  const auto beta_packet = models::estimate_beta(packet_measure(cluster), 4e6);
  TextTable beta_table({"degree", "penalty/degree (fluid)",
                        "penalty/degree (packet)"});
  for (size_t k = 0; k < beta_fluid.per_degree.size(); ++k)
    beta_table.add_row({strformat("%zu", k + 2),
                        strformat("%.4f", beta_fluid.per_degree[k]),
                        strformat("%.4f", beta_packet.per_degree[k])});
  bench::emit(args, "fig4_beta", beta_table);
  std::cout << strformat(
      "  beta estimate: fluid %.4f, packet %.4f   (paper: 0.75)\n",
      beta_fluid.beta, beta_packet.beta);

  // --- γo and γi from the fig-4 scheme. ------------------------------------
  const auto gamma_fluid =
      models::estimate_gammas(fluid_measure(cluster), beta_fluid.beta);
  const auto gamma_packet =
      models::estimate_gammas(packet_measure(cluster), beta_packet.beta);
  TextTable gamma_table({"parameter", "fluid", "packet", "paper"});
  gamma_table.add_row({"gamma_o", strformat("%.4f", gamma_fluid.gamma_o),
                       strformat("%.4f", gamma_packet.gamma_o), "0.115"});
  gamma_table.add_row({"gamma_i", strformat("%.4f", gamma_fluid.gamma_i),
                       strformat("%.4f", gamma_packet.gamma_i), "0.036"});
  gamma_table.add_row({"t_ref(4MB)", human_seconds(gamma_fluid.t_ref),
                       human_seconds(gamma_packet.t_ref), "~0.0477 s"});
  std::cout << "\n";
  bench::emit(args, "fig4_gamma", gamma_table);

  // --- Fig 4 verification: measured vs predicted per communication. --------
  const models::GigabitEthernetModel paper_model;  // paper parameters
  const auto scheme = graph::schemes::fig4_scheme(4e6);
  const auto cmp = eval::compare_scheme(scheme, cluster, paper_model);

  // The paper's printed table for reference.
  const double paper_tm[] = {0.095, 0.099, 0.118, 0.068, 0.099, 0.103};
  const double paper_tp[] = {0.095, 0.095, 0.113, 0.069, 0.103, 0.103};

  TextTable verify({"comm", "T_m [s]", "T_p [s]", "E_rel [%]",
                    "paper T_m", "paper T_p"});
  for (graph::CommId i = 0; i < scheme.size(); ++i) {
    verify.add_row({std::string(scheme.label(i)),
                    strformat("%.4f", cmp.measured[static_cast<size_t>(i)]),
                    strformat("%.4f", cmp.predicted[static_cast<size_t>(i)]),
                    strformat("%+.1f", cmp.erel[static_cast<size_t>(i)]),
                    strformat("%.3f", paper_tm[i]),
                    strformat("%.3f", paper_tp[i])});
  }
  std::cout << "\n  Fig 4 verification (4 MB messages):\n";
  bench::emit(args, "fig4_verify", verify);
  std::cout << strformat("  E_abs over the scheme: %.1f %%\n", cmp.eabs);
  return 0;
}
