// Experiment E4 — paper Fig 5 & Fig 6: the Myrinet model's state-set
// enumeration on the worked example, reproduced exactly:
//   5 maximal send/wait state sets; emission sums a..f = 1 2 2 2 2 3;
//   per-source-node minima 1 1 1 2 2 2; penalties 5 5 5 2.5 2.5 2.5.
#include <iostream>

#include "bench_util.hpp"
#include "graph/schemes.hpp"
#include "models/myrinet.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace bwshare;
  const CliArgs args(argc, argv);

  print_banner(std::cout, "Fig 5/6 — Myrinet send/wait state enumeration");

  const auto g = graph::schemes::fig5_scheme();
  const models::MyrinetModel model;
  const auto analysis = model.analyze(g, /*materialize_sets=*/true);

  std::cout << "  Graph: ";
  for (graph::CommId i = 0; i < g.size(); ++i) {
    const auto& c = g.comm(i);
    std::cout << g.label(i) << ":" << c.src << "->" << c.dst << "  ";
  }
  std::cout << "\n\n  State sets (communications in 'send'):\n";
  for (size_t s = 0; s < analysis.state_sets.size(); ++s) {
    std::cout << "    " << (s + 1) << ": {";
    for (size_t k = 0; k < analysis.state_sets[s].size(); ++k) {
      if (k) std::cout << ", ";
      std::cout << g.label(analysis.state_sets[s][k]);
    }
    std::cout << "}\n";
  }
  std::cout << "\n  Total state sets: " << analysis.num_state_sets
            << "   (paper: 5)\n\n";

  TextTable table({"", "a", "b", "c", "d", "e", "f"});
  auto row = [&](const std::string& label, auto getter) {
    std::vector<std::string> cells{label};
    for (graph::CommId i = 0; i < g.size(); ++i) cells.push_back(getter(i));
    table.add_row(cells);
  };
  row("Sum", [&](graph::CommId i) {
    return strformat("%llu", static_cast<unsigned long long>(
                                 analysis.emission[static_cast<size_t>(i)]));
  });
  row("Minimum", [&](graph::CommId i) {
    return strformat("%llu",
                     static_cast<unsigned long long>(
                         analysis.min_emission[static_cast<size_t>(i)]));
  });
  row("penalty", [&](graph::CommId i) {
    return strformat("%.1f", analysis.penalty[static_cast<size_t>(i)]);
  });
  bench::emit(args, "fig5_fig6", table);
  std::cout << "  Paper fig 6:   Sum 1 2 2 2 2 3 | Minimum 1 1 1 2 2 2 | "
               "penalty 5 5 5 2.5 2.5 2.5\n";
  return 0;
}
